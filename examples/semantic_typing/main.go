// Semantic_typing demonstrates Gem's headline task: detecting the semantic
// type of numeric columns from their value distributions alone. It generates
// a Git-Tables-like corpus (measurement columns, no useful header context),
// embeds every column with Gem (D+S) and with the Squashing_GMM baseline,
// reports average precision for both, and prints the top-5 nearest
// neighbours of a few query columns so the behaviour is inspectable.
//
// Run with: go run ./examples/semantic_typing
package main

import (
	"fmt"
	"log"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/eval"
)

func main() {
	log.SetFlags(0)

	ds := data.GitTables(data.Config{Seed: 11, Scale: 0.3})
	fmt.Printf("corpus: %d numeric columns, %d semantic types\n\n",
		len(ds.Columns), ds.NumTypes())

	// Gem (D+S): numeric-only embeddings.
	gem, err := core.NewEmbedder(core.Config{
		Components:     30,
		Restarts:       3,
		Seed:           11,
		SubsampleStack: 8000,
	})
	if err != nil {
		log.Fatal(err)
	}
	gemEmb, err := gem.FitEmbed(ds)
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: Squashing_GMM with the same component budget.
	sq := &baselines.SquashingGMM{Components: 30, Restarts: 3, SubsampleStack: 8000, Seed: 11}
	sqEmb, err := sq.Embed(ds)
	if err != nil {
		log.Fatal(err)
	}

	labels := ds.Labels()
	gemAP, err := eval.AveragePrecisionByType(gemEmb, labels)
	if err != nil {
		log.Fatal(err)
	}
	sqAP, err := eval.AveragePrecisionByType(sqEmb, labels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("average precision — Gem (D+S): %.3f   Squashing_GMM: %.3f\n\n", gemAP, sqAP)

	// Inspect a few queries.
	sim, err := eval.CosineSimilarityMatrix(gemEmb)
	if err != nil {
		log.Fatal(err)
	}
	shown := 0
	for i, col := range ds.Columns {
		if i%17 != 0 || shown >= 3 {
			continue
		}
		shown++
		neighbors, err := eval.TopKNeighbors(sim, i, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("query %q (type %s) — top-5 neighbours:\n", col.Name, col.Type)
		for _, j := range neighbors {
			marker := " "
			if labels[j] == labels[i] {
				marker = "+"
			}
			fmt.Printf("  %s %-14s type=%-12s cos=%.3f\n",
				marker, ds.Columns[j].Name, labels[j], sim[i][j])
		}
		pr, err := eval.PrecisionRecallAtK(sim, labels, i)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  precision@%d = %.2f, recall = %.2f\n\n", pr.K, pr.Precision, pr.Recall)
	}
}
