// Similarity search walks the paper's retrieval use case end to end at
// catalog scale:
//
//  1. generate a synthetic multi-type catalog and embed every column with
//     Gem (numeric-only D+S, the Table 2 configuration);
//  2. build an HNSW index over the embeddings next to the exact flat
//     baseline;
//  3. query the index with one column and inspect whether the neighbours
//     share its ground-truth semantic type;
//  4. replay every column as a query and report recall@10 of the graph
//     against the exact scan.
//
// Run with: go run ./examples/similarity_search
package main

import (
	"fmt"
	"log"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/experiments"
	"github.com/gem-embeddings/gem/internal/pool"
)

func main() {
	log.SetFlags(0)

	// 1. A 600-column catalog drawn from the GDS type structure.
	const nColumns = 600
	ds := data.ScalabilityDataset(nColumns, 1)
	embedder, err := core.NewEmbedder(core.Config{
		Components:     32,
		Restarts:       2,
		Seed:           1,
		SubsampleStack: 6000,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := embedder.Fit(ds); err != nil {
		log.Fatal(err)
	}
	vs, err := embedder.EmbedVectors(ds, ann.Cosine)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded %d columns into %d dimensions\n\n", len(vs.Vectors), len(vs.Vectors[0]))

	// 2. Exact baseline and HNSW graph over the same vectors. The pool
	// parallelizes the graph build; the result is identical at any width.
	flat := ann.NewFlat(ann.Cosine)
	if err := flat.Add(vs.Vectors...); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	index, err := ann.NewHNSW(ann.HNSWConfig{Metric: ann.Cosine, Seed: 1}, pool.New(0))
	if err != nil {
		log.Fatal(err)
	}
	if err := index.Add(vs.Vectors...); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hnsw index built in %.2fs (M=%d)\n\n", time.Since(start).Seconds(), index.Config().M)

	// 3. Top-10 neighbours of one column: they should overwhelmingly carry
	// the query's semantic type.
	const query = 42
	res, err := index.Search(vs.Vectors[query], 11)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("nearest columns to %q (type %q):\n", vs.Names[query], ds.Columns[query].Type)
	for _, r := range res {
		if r.ID == query {
			continue
		}
		fmt.Printf("  %-26s type %-22s dist %.5f\n", vs.Names[r.ID], ds.Columns[r.ID].Type, r.Dist)
	}

	// 4. Recall@10 of the graph against the exact scan, all columns as
	// queries (each excluding itself), via the shared experiments harness.
	recall, _, _, err := experiments.ReplayQueries(flat, index, vs.Vectors, 10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrecall@10 vs flat over %d queries: %.4f\n", len(vs.Vectors), recall)
}
