// Header_composition reproduces the design question behind the paper's
// Table 3: given value embeddings (D+S) and header embeddings (C), how
// should they be composed? It generates a WDC-like corpus — whose headers
// are coarse-grained and overlapping, so headers alone cannot separate fine
// types like score_cricket vs score_rugby — and compares headers-only,
// values-only, and the three composition modes (concatenation, aggregation,
// autoencoder).
//
// Run with: go run ./examples/header_composition
package main

import (
	"fmt"
	"log"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/table"
)

func main() {
	log.SetFlags(0)

	ds := data.WDC(data.Config{Seed: 31, Scale: 0.08, Grain: data.Fine})
	fmt.Printf("corpus: %d columns, %d fine-grained types (overlapping headers)\n\n",
		len(ds.Columns), ds.NumTypes())

	labels := ds.Labels()
	report := func(name string, emb [][]float64) {
		ap, err := eval.AveragePrecisionByType(emb, labels)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-28s avg precision = %.3f\n", name, ap)
	}

	headersOnly, err := (&baselines.HeadersOnly{HeaderDim: 128}).Embed(ds)
	if err != nil {
		log.Fatal(err)
	}
	report("headers only", headersOnly)

	report("Gem (D+S)", gemEmbed(ds, core.Distributional|core.Statistical, core.Concatenation))
	report("Gem D+S+C (aggregation)", gemEmbed(ds, core.Distributional|core.Statistical|core.Contextual, core.Aggregation))
	report("Gem D+S+C (AE)", gemEmbed(ds, core.Distributional|core.Statistical|core.Contextual, core.AE))
	report("Gem D+S+C (concatenation)", gemEmbed(ds, core.Distributional|core.Statistical|core.Contextual, core.Concatenation))

	fmt.Println("\nWDC-like headers are shared across fine types, so headers alone stall;")
	fmt.Println("value distributions separate the fine types, and concatenation keeps")
	fmt.Println("both signals intact (the paper's best composition).")
}

func gemEmbed(ds *table.Dataset, feats core.Features, comp core.Composition) [][]float64 {
	e, err := core.NewEmbedder(core.Config{
		Components:     30,
		Restarts:       3,
		Seed:           31,
		SubsampleStack: 8000,
		Features:       feats,
		Composition:    comp,
		HeaderDim:      128,
		AEEpochs:       20,
	})
	if err != nil {
		log.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		log.Fatal(err)
	}
	return emb
}
