// Clustering demonstrates the paper's second downstream task (Table 4):
// grouping columns with the same semantic type by deep clustering over Gem
// embeddings. It generates a small GDS-like corpus, embeds columns three
// ways (headers only, values only, headers + values), clusters each
// representation with both TableDC and SDCN, and reports ARI and ACC.
//
// Run with: go run ./examples/clustering
package main

import (
	"fmt"
	"log"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/deepcluster"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/stats"
)

func main() {
	log.SetFlags(0)

	ds := data.GDS(data.Config{Seed: 21, Scale: 0.05, Grain: data.Fine})
	labels := ds.Labels()
	k := ds.NumTypes()
	fmt.Printf("corpus: %d columns, %d fine-grained types\n\n", len(ds.Columns), k)

	// Three input representations.
	headers, err := (&baselines.HeadersOnly{HeaderDim: 128}).Embed(ds)
	if err != nil {
		log.Fatal(err)
	}
	gem, err := core.NewEmbedder(core.Config{
		Components:     30,
		Restarts:       3,
		Seed:           21,
		SubsampleStack: 8000,
	})
	if err != nil {
		log.Fatal(err)
	}
	values, err := gem.FitEmbed(ds)
	if err != nil {
		log.Fatal(err)
	}
	// Combine the two views the way Gem's Eq. 11 does: L1-normalize each
	// part and concatenate.
	combined := make([][]float64, len(values))
	for i := range values {
		row := append([]float64(nil), stats.L1Normalize(values[i])...)
		row = append(row, stats.L1Normalize(headers[i])...)
		combined[i] = row
	}

	settings := []struct {
		name string
		rows [][]float64
	}{
		{"headers only", headers},
		{"values only (Gem D+S)", values},
		{"headers + values", combined},
	}
	algos := []struct {
		name string
		run  func([][]float64, deepcluster.Config) (*deepcluster.Result, error)
	}{
		{"TableDC", deepcluster.TableDC},
		{"SDCN", deepcluster.SDCN},
	}

	fmt.Printf("%-24s %-10s %8s %8s\n", "input", "algorithm", "ARI", "ACC")
	for _, setting := range settings {
		for _, algo := range algos {
			res, err := algo.run(setting.rows, deepcluster.Config{
				K:              k,
				LatentDim:      32,
				PretrainEpochs: 25,
				RefineIters:    15,
				Seed:           21,
			})
			if err != nil {
				log.Fatal(err)
			}
			ari, err := eval.AdjustedRandIndex(labels, res.Assignments)
			if err != nil {
				log.Fatal(err)
			}
			acc, err := eval.ClusterACC(labels, res.Assignments)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-24s %-10s %8.3f %8.3f\n", setting.name, algo.name, ari, acc)
		}
	}
	fmt.Println("\nheaders+values should dominate either signal alone (paper Table 4).")
}
