// Quickstart walks through the whole Gem pipeline on the paper's two
// motivating examples:
//
//   - the Figure 2 table (Price, Quantity, Discount): fit the GMM, inspect
//     the per-column signature (mean component probabilities + statistical
//     features) and the final embedding;
//   - the Figure 1 columns (Age, Rank, Test Score, Temperature): four
//     columns whose value distributions overlap pairwise, which numeric-only
//     embeddings confuse and header-aware Gem separates.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/table"
)

func main() {
	log.SetFlags(0)

	figure2()
	figure1()
}

// figure2 reproduces the running example of the paper's Figure 2.
func figure2() {
	ds := &table.Dataset{
		Name: "figure2",
		Columns: []table.Column{
			{Name: "Price", Values: []float64{20.99, 35.50, 40.00, 18.25, 27.80, 33.10}},
			{Name: "Quantity", Values: []float64{15, 30, 25, 40, 10, 20}},
			{Name: "Discount", Values: []float64{5, 10, 7, 12, 6, 9}},
		},
	}

	embedder, err := core.NewEmbedder(core.Config{
		Components: 3, // tiny table: three latent distributions
		Restarts:   5,
		Seed:       1,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := embedder.Fit(ds); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== Figure 2: Price / Quantity / Discount ==")
	model := embedder.Model()
	fmt.Printf("fitted GMM: %d components, converged=%v after %d iterations\n",
		model.K(), model.Converged, model.Iterations)
	for j := 0; j < model.K(); j++ {
		fmt.Printf("  component %d: weight=%.3f mean=%.2f stddev=%.2f\n",
			j, model.Weights[j], model.Means[j], model.Variances[j])
	}

	sigs, err := embedder.Signatures(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nsignatures (mean probability of belonging to each component):")
	for _, s := range sigs {
		fmt.Printf("  %-9s probs=%v\n", s.Column, rounded(s.MeanProbs))
	}

	emb, err := embedder.Embed(ds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nfinal embeddings (distributional + statistical, L1-normalized):")
	for i, col := range ds.Columns {
		fmt.Printf("  %-9s dim=%d first=%v\n", col.Name, len(emb[i]), rounded(emb[i][:4]))
	}
	fmt.Println()
}

// figure1 shows the motivating challenge: Age~Rank and TestScore~Temperature
// have overlapping value distributions.
func figure1() {
	cols := data.Figure1Columns(7)
	ds := &table.Dataset{Name: "figure1", Columns: cols}

	fmt.Println("== Figure 1: Age / Rank / Test Score / Temperature ==")

	// Values only: the two overlapping pairs are nearly indistinguishable.
	valueEmb := embed(ds, core.Distributional|core.Statistical)
	simAgeRank := cosine(valueEmb[0], valueEmb[1])
	simScoreTemp := cosine(valueEmb[2], valueEmb[3])
	simAgeScore := cosine(valueEmb[0], valueEmb[2])
	fmt.Printf("values only   : cos(Age, Rank)=%.3f cos(Score, Temp)=%.3f cos(Age, Score)=%.3f\n",
		simAgeRank, simScoreTemp, simAgeScore)

	// With headers: the overlapping pairs separate.
	fullEmb := embed(ds, core.Distributional|core.Statistical|core.Contextual)
	simAgeRank = cosine(fullEmb[0], fullEmb[1])
	simScoreTemp = cosine(fullEmb[2], fullEmb[3])
	fmt.Printf("with headers  : cos(Age, Rank)=%.3f cos(Score, Temp)=%.3f\n",
		simAgeRank, simScoreTemp)
	fmt.Println("\noverlapping value distributions keep numeric-only similarities high;")
	fmt.Println("composing header context (Gem D+S+C) pulls the semantic types apart.")
}

func embed(ds *table.Dataset, feats core.Features) [][]float64 {
	e, err := core.NewEmbedder(core.Config{
		Components: 8,
		Restarts:   3,
		Seed:       2,
		Features:   feats,
	})
	if err != nil {
		log.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		log.Fatal(err)
	}
	return emb
}

func cosine(a, b []float64) float64 {
	c, err := eval.CosineSimilarity(a, b)
	if err != nil {
		log.Fatal(err)
	}
	return c
}

func rounded(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(int(x*1000+0.5)) / 1000
	}
	return out
}
