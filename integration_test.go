package gem

import (
	"bytes"
	"math"
	"testing"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/deepcluster"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/table"
)

// TestPipelineCSVRoundTrip exercises the full user journey: generate a
// corpus, serialize it to CSV (gemgen's format), parse it back (gemembed's
// format), embed, and evaluate — everything a downstream user would chain.
func TestPipelineCSVRoundTrip(t *testing.T) {
	orig := data.GitTables(data.Config{Seed: 5, Scale: 0.08})

	var buf bytes.Buffer
	if err := orig.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	ds, err := table.ReadCSV(&buf, "roundtrip")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Columns) != len(orig.Columns) {
		t.Fatalf("round trip lost columns: %d vs %d", len(ds.Columns), len(orig.Columns))
	}

	e, err := core.NewEmbedder(core.Config{
		Components:     16,
		Restarts:       2,
		Seed:           5,
		SubsampleStack: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := eval.AveragePrecisionByType(emb, ds.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if ap < 0.2 {
		t.Errorf("pipeline average precision = %v, want >= 0.2", ap)
	}
}

// TestPipelineSaveLoadServesNewTables exercises the deployment pattern end
// to end: fit + save on one corpus, load elsewhere, embed incoming columns,
// and verify the embeddings cluster sensibly.
func TestPipelineSaveLoadServesNewTables(t *testing.T) {
	train := data.GitTables(data.Config{Seed: 6, Scale: 0.1})
	e, err := core.NewEmbedder(core.Config{
		Components:     16,
		Restarts:       2,
		Seed:           6,
		SubsampleStack: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(train); err != nil {
		t.Fatal(err)
	}
	var saved bytes.Buffer
	if err := e.Save(&saved); err != nil {
		t.Fatal(err)
	}
	served, err := core.LoadEmbedder(&saved)
	if err != nil {
		t.Fatal(err)
	}

	incoming := data.GitTables(data.Config{Seed: 777, Scale: 0.06})
	emb, err := served.Embed(incoming)
	if err != nil {
		t.Fatal(err)
	}
	// Embeddings of a *new* corpus under the saved model must still carry
	// type signal (the mixture was fitted on the same domain).
	ap, err := eval.AveragePrecisionByType(emb, incoming.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if ap < 0.2 {
		t.Errorf("served-model average precision = %v, want >= 0.2", ap)
	}
}

// TestPipelineEmbedThenCluster chains embedding into deep clustering and
// checks the metrics agree with each other (ACC high implies ARI and NMI
// clearly positive).
func TestPipelineEmbedThenCluster(t *testing.T) {
	ds := data.GitTables(data.Config{Seed: 7, Scale: 0.1})
	e, err := core.NewEmbedder(core.Config{
		Components:     16,
		Restarts:       2,
		Seed:           7,
		SubsampleStack: 4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	res, err := deepcluster.TableDC(emb, deepcluster.Config{
		K:              ds.NumTypes(),
		LatentDim:      16,
		PretrainEpochs: 20,
		RefineIters:    10,
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := ds.Labels()
	acc, err := eval.ClusterACC(labels, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	ari, err := eval.AdjustedRandIndex(labels, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	nmi, err := eval.NormalizedMutualInformation(labels, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.3 {
		t.Errorf("clustering ACC = %v, want >= 0.3", acc)
	}
	if ari <= 0 || nmi <= 0 {
		t.Errorf("ARI (%v) and NMI (%v) should be clearly positive", ari, nmi)
	}
	if math.IsNaN(acc + ari + nmi) {
		t.Error("metrics produced NaN")
	}
}

// TestPipelineBaselineComparison verifies the harness-level claim end to
// end on a mid-sized corpus: Gem (D+S) is at least competitive with every
// numeric-only baseline on Git Tables.
func TestPipelineBaselineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("comparison suite skipped in -short mode")
	}
	ds := data.GitTables(data.Config{Seed: 8, Scale: 0.15})
	e, err := core.NewEmbedder(core.Config{
		Components:     50,
		Restarts:       3,
		Seed:           8,
		SubsampleStack: 8000,
	})
	if err != nil {
		t.Fatal(err)
	}
	gemEmb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	gemAP, err := eval.AveragePrecisionByType(gemEmb, ds.Labels())
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []baselines.Method{
		&baselines.PLE{Bins: 50},
		&baselines.PAF{Frequencies: 50},
		&baselines.KSStatistic{},
	} {
		emb, err := m.Embed(ds)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		ap, err := eval.AveragePrecisionByType(emb, ds.Labels())
		if err != nil {
			t.Fatal(err)
		}
		if ap > gemAP {
			t.Errorf("%s (%v) beat Gem (%v) on GitTables", m.Name(), ap, gemAP)
		}
	}
}
