// Package gem holds the repository-level benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation, plus ablation
// benches for the design choices DESIGN.md §5 calls out. Each benchmark
// reports wall-clock time per experiment and, where meaningful, the headline
// quality metric via b.ReportMetric (shown as a custom unit in -benchmem
// output), so bench_output.txt documents both runtime and reproduced scores.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package gem

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/experiments"
	"github.com/gem-embeddings/gem/internal/gmm"
	"github.com/gem-embeddings/gem/internal/hungarian"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/table"
)

// benchOpts is the experiment configuration used by the table/figure
// benches: large enough that every reported trend is stable, small enough
// that the full suite runs in minutes.
func benchOpts() experiments.Options {
	return experiments.Options{
		Seed:           1,
		Scale:          0.08,
		Components:     50,
		Restarts:       2,
		SubsampleStack: 6000,
		HeaderDim:      128,
	}
}

// BenchmarkTable1DatasetStats regenerates the dataset-statistics table.
func BenchmarkTable1DatasetStats(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 4 {
			b.Fatalf("got %d rows", len(rows))
		}
	}
}

// BenchmarkTable2NumericOnly regenerates the numeric-only comparison and
// reports Gem's mean average precision across the four corpora plus its mean
// margin over the strongest baseline.
func BenchmarkTable2NumericOnly(b *testing.B) {
	b.ReportAllocs()
	var gemMean, margin float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		gemMean, margin = 0, 0
		for _, ds := range res.Datasets {
			gem := res.Scores["Gem (D+S)"][ds]
			gemMean += gem
			bestBaseline := 0.0
			for _, m := range res.Methods {
				if m == "Gem (D+S)" {
					continue
				}
				if s := res.Scores[m][ds]; s > bestBaseline {
					bestBaseline = s
				}
			}
			margin += gem - bestBaseline
		}
		gemMean /= float64(len(res.Datasets))
		margin /= float64(len(res.Datasets))
	}
	b.ReportMetric(gemMean, "gem-precision")
	b.ReportMetric(margin, "margin-vs-best-baseline")
}

// BenchmarkTable3HeadersValues regenerates the headers+values comparison and
// reports the concatenation composition's mean precision.
func BenchmarkTable3HeadersValues(b *testing.B) {
	b.ReportAllocs()
	var concatMean float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		concatMean = 0
		for _, ds := range res.Datasets {
			concatMean += res.Scores["Gem D+S+C (concatenation)"][ds]
		}
		concatMean /= float64(len(res.Datasets))
	}
	b.ReportMetric(concatMean, "concat-precision")
}

// BenchmarkTable4Clustering regenerates the deep-clustering comparison and
// reports Gem/TableDC headers+values ACC averaged over GDS and WDC. Runs at
// a reduced scale: deep clustering dominates suite runtime.
func BenchmarkTable4Clustering(b *testing.B) {
	b.ReportAllocs()
	opts := benchOpts()
	opts.Scale = 0.05
	var acc float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(opts)
		if err != nil {
			b.Fatal(err)
		}
		acc = 0
		for _, ds := range res.Datasets {
			acc += res.Cells["Gem"][ds]["TableDC/Headers + Values"].ACC
		}
		acc /= float64(len(res.Datasets))
	}
	b.ReportMetric(acc, "gem-tabledc-acc")
}

// BenchmarkFigure3Ablation regenerates the feature ablation and reports the
// D+C+S precision averaged over both corpora.
func BenchmarkFigure3Ablation(b *testing.B) {
	b.ReportAllocs()
	var full float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		full = 0
		n := 0
		for _, scores := range res.Scores {
			full += scores["D+C+S"]
			n++
		}
		full /= float64(n)
	}
	b.ReportMetric(full, "dcs-precision")
}

// BenchmarkFigure4Components regenerates the component sweep on a reduced
// grid and reports the precision spread (max-min) across component counts —
// the paper's claim is that this spread is small.
func BenchmarkFigure4Components(b *testing.B) {
	b.ReportAllocs()
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure4(benchOpts(), []int{10, 50, 100})
		if err != nil {
			b.Fatal(err)
		}
		spread = 0
		for _, scores := range res.Scores {
			lo, hi := 2.0, -1.0
			for _, m := range res.Components {
				if scores[m] < lo {
					lo = scores[m]
				}
				if scores[m] > hi {
					hi = scores[m]
				}
			}
			if hi-lo > spread {
				spread = hi - lo
			}
		}
	}
	b.ReportMetric(spread, "max-precision-spread")
}

// BenchmarkFigure5Scalability regenerates the runtime sweep (one repetition
// per point inside the bench loop) and reports the ratio of the KS
// statistic's runtime to Gem's at the largest size — the paper's Figure 5
// shows KS growing much faster.
func BenchmarkFigure5Scalability(b *testing.B) {
	b.ReportAllocs()
	sizes := []int{100, 300, 600}
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure5(benchOpts(), sizes, 1)
		if err != nil {
			b.Fatal(err)
		}
		last := sizes[len(sizes)-1]
		gem := res.Seconds["Gem"][last]
		ks := res.Seconds["KS statistic"][last]
		if gem > 0 {
			ratio = ks / gem
		}
	}
	b.ReportMetric(ratio, "ks-vs-gem-runtime-ratio")
}

// ---------------------------------------------------------------- ablations

// ablationCorpus is the corpus the design-choice ablations run on.
func ablationCorpus() *table.Dataset {
	return data.GDS(data.Config{Seed: 1, Scale: 0.1})
}

// ablationScore embeds the corpus with cfg and returns average precision.
func ablationScore(b *testing.B, ds *table.Dataset, cfg core.Config) float64 {
	b.Helper()
	e, err := core.NewEmbedder(cfg)
	if err != nil {
		b.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		b.Fatal(err)
	}
	ap, err := eval.AveragePrecisionByType(emb, ds.Labels())
	if err != nil {
		b.Fatal(err)
	}
	return ap
}

func ablationConfig() core.Config {
	return core.Config{
		Components:     50,
		Restarts:       3,
		Seed:           1,
		SubsampleStack: 8000,
	}
}

// BenchmarkAblationEMInit compares EM initialization methods (DESIGN.md §5):
// quantile seeding (the default) vs k-means++ vs random.
func BenchmarkAblationEMInit(b *testing.B) {
	b.ReportAllocs()
	ds := ablationCorpus()
	for name, init := range map[string]gmm.InitMethod{
		"quantile": gmm.InitQuantile,
		"kmeans":   gmm.InitKMeans,
		"random":   gmm.InitRandom,
	} {
		init := init
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ap float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.EMInit = init
				ap = ablationScore(b, ds, cfg)
			}
			b.ReportMetric(ap, "precision")
		})
	}
}

// BenchmarkAblationRestarts compares 1 vs 10 EM restarts (the paper uses 10).
func BenchmarkAblationRestarts(b *testing.B) {
	b.ReportAllocs()
	ds := ablationCorpus()
	for _, restarts := range []int{1, 10} {
		restarts := restarts
		b.Run(map[int]string{1: "restarts-1", 10: "restarts-10"}[restarts], func(b *testing.B) {
			b.ReportAllocs()
			var ap float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Restarts = restarts
				ap = ablationScore(b, ds, cfg)
			}
			b.ReportMetric(ap, "precision")
		})
	}
}

// BenchmarkAblationNormalization compares the paper's L1 row normalization
// (Eq. 9) against L2.
func BenchmarkAblationNormalization(b *testing.B) {
	b.ReportAllocs()
	ds := ablationCorpus()
	for name, norm := range map[string]core.Norm{"L1": core.L1, "L2": core.L2} {
		norm := norm
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ap float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.Normalization = norm
				ap = ablationScore(b, ds, cfg)
			}
			b.ReportMetric(ap, "precision")
		})
	}
}

// BenchmarkAblationLogStats compares the signed-log measurement of the
// statistical features (this repository's adaptation) against the raw
// feature values.
func BenchmarkAblationLogStats(b *testing.B) {
	b.ReportAllocs()
	ds := ablationCorpus()
	for name, raw := range map[string]bool{"log-stats": false, "raw-stats": true} {
		raw := raw
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ap float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig()
				cfg.RawStats = raw
				ap = ablationScore(b, ds, cfg)
			}
			b.ReportMetric(ap, "precision")
		})
	}
}

// BenchmarkAblationPLEBinning compares the paper-literal uniform-width PLE
// against the quantile-binned variant from the original PLE paper.
func BenchmarkAblationPLEBinning(b *testing.B) {
	b.ReportAllocs()
	ds := ablationCorpus()
	for name, quantile := range map[string]bool{"uniform": false, "quantile": true} {
		quantile := quantile
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var ap float64
			for i := 0; i < b.N; i++ {
				m := &baselines.PLE{Bins: 50, Quantile: quantile}
				emb, err := m.Embed(ds)
				if err != nil {
					b.Fatal(err)
				}
				ap, err = eval.AveragePrecisionByType(emb, ds.Labels())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(ap, "precision")
		})
	}
}

// ---------------------------------------------------------------- kernels

// BenchmarkGMMFit measures EM fitting on a 10k-value stack with 50
// components — the dominant cost of the Gem pipeline.
func BenchmarkGMMFit(b *testing.B) {
	ds := data.GitTables(data.Config{Seed: 1, Scale: 0.5})
	stack := ds.Stack()
	if len(stack) > 10000 {
		stack = stack[:10000]
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gmm.Fit(stack, gmm.Config{K: 50, Restarts: 1, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWidths is the worker grid for the parallel-EM benches: serial,
// small powers of two, and the host width.
func benchWidths() []int {
	widths := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > widths[len(widths)-1] {
		widths = append(widths, p)
	}
	return widths
}

// BenchmarkFitParallel measures the parallel EM engine end to end — the
// per-restart fan-out plus the chunked E-step — on a 10k-value stack with
// a 4-restart fit, across pool widths. The acceptance bar for the engine
// is >= 2x over workers-1 on a >= 4-core host; output is bit-identical at
// every width (pinned by the determinism suite), so the widths differ
// only in wall clock.
func BenchmarkFitParallel(b *testing.B) {
	ds := data.GitTables(data.Config{Seed: 1, Scale: 0.5})
	stack := ds.Stack()
	if len(stack) > 10000 {
		stack = stack[:10000]
	}
	for _, w := range benchWidths() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			p := pool.New(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := gmm.Fit(stack, gmm.Config{K: 50, Restarts: 4, Seed: 1, Pool: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSelectK measures BIC model selection over a candidate grid —
// the third level of the parallel engine: candidates × restarts × chunks
// all sharing one bounded pool.
func BenchmarkSelectK(b *testing.B) {
	ds := data.GitTables(data.Config{Seed: 1, Scale: 0.5})
	stack := ds.Stack()
	if len(stack) > 6000 {
		stack = stack[:6000]
	}
	ks := []int{5, 10, 25, 50}
	for _, w := range benchWidths() {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			p := pool.New(w)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := gmm.SelectK(stack, ks, gmm.Config{Restarts: 2, Seed: 1, Pool: p}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSignature measures per-column signature extraction (mean
// responsibilities + statistical features) once the mixture is fitted.
func BenchmarkSignature(b *testing.B) {
	ds := data.GitTables(data.Config{Seed: 1, Scale: 0.5})
	e, err := core.NewEmbedder(core.Config{Components: 50, Restarts: 1, Seed: 1, SubsampleStack: 8000})
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Signatures(ds); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmbedParallel measures the full Embed hot path (signatures,
// standardization, normalization) on a multi-column synthetic catalog across
// worker-pool widths — the scaling evidence for the concurrent column
// fan-out in core.Signatures.
func BenchmarkEmbedParallel(b *testing.B) {
	ds := data.GDS(data.Config{Seed: 1, Scale: 0.4})
	widths := []int{1, 2, 4}
	if p := runtime.GOMAXPROCS(0); p > widths[len(widths)-1] {
		widths = append(widths, p)
	}
	for _, w := range widths {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			e, err := core.NewEmbedder(core.Config{
				Components:     50,
				Restarts:       1,
				Seed:           1,
				SubsampleStack: 8000,
				Workers:        w,
			})
			if err != nil {
				b.Fatal(err)
			}
			if err := e.Fit(ds); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Embed(ds); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(ds.Columns)), "columns")
		})
	}
}

// BenchmarkSearch measures top-10 column retrieval over a 1000-column
// catalog embedding: the exact flat scan vs the HNSW graph, plus the graph
// build. The hnsw sub-bench reports recall@10 against the exact scan, so
// bench_output.txt documents the speed/recall trade at catalog scale.
func BenchmarkSearch(b *testing.B) {
	b.ReportAllocs()
	opts := experiments.Options{Seed: 1, Components: 16, Restarts: 1, SubsampleStack: 4000}
	opts.FillDefaults()
	ds := data.ScalabilityDataset(1000, opts.Seed)
	e, err := core.NewEmbedder(opts.GemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		b.Fatal(err)
	}
	vs, err := e.EmbedVectors(ds, ann.Cosine)
	if err != nil {
		b.Fatal(err)
	}
	flat := ann.NewFlat(ann.Cosine)
	if err := flat.Add(vs.Vectors...); err != nil {
		b.Fatal(err)
	}
	buildHNSW := func(b *testing.B) *ann.HNSW {
		h, err := ann.NewHNSW(ann.HNSWConfig{Metric: ann.Cosine, Seed: 1}, pool.New(0))
		if err != nil {
			b.Fatal(err)
		}
		if err := h.Add(vs.Vectors...); err != nil {
			b.Fatal(err)
		}
		return h
	}
	h := buildHNSW(b)

	b.Run("build", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			buildHNSW(b)
		}
	})
	b.Run("flat", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := flat.Search(vs.Vectors[i%len(vs.Vectors)], 10); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hnsw", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := h.Search(vs.Vectors[i%len(vs.Vectors)], 10); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		recall, _, _, err := experiments.ReplayQueries(flat, h, vs.Vectors, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(recall, "recall@10")
	})
}

// BenchmarkCosineMatrix measures the pairwise similarity matrix over 500
// columns of 57-dim embeddings — the evaluation-side kernel.
func BenchmarkCosineMatrix(b *testing.B) {
	ds := data.GDS(data.Config{Seed: 1, Scale: 0.2})
	e, err := core.NewEmbedder(core.Config{Components: 50, Restarts: 1, Seed: 1, SubsampleStack: 8000})
	if err != nil {
		b.Fatal(err)
	}
	emb, err := e.FitEmbed(ds)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.CosineSimilarityMatrix(emb); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHungarian measures the assignment solver on a 100x100 cost
// matrix (the clustering-ACC kernel).
func BenchmarkHungarian(b *testing.B) {
	n := 100
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = float64((i*7919 + j*104729) % 1000)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := hungarian.Solve(cost); err != nil {
			b.Fatal(err)
		}
	}
}
