package ann

// Reusable per-goroutine search scratch. Every allocation the query path
// needs — the reduced-precision query copies, the bounded candidate heaps,
// the HNSW visited set and beam buffers, the re-rank buffer and the result
// slice itself — lives in one scratch value that is reused across queries,
// so a steady-state search allocates nothing. The scratch is exposed two
// ways:
//
//   - Searcher is the caller-owned form: one goroutine, zero allocations,
//     results valid only until its next call. Batch drivers (benchmarks,
//     replay loops, the worker bodies of SearchBatch) hold one per worker.
//   - Index.Search / Index.SearchBatch stay allocation-light rather than
//     allocation-free: they borrow scratch from a package-level sync.Pool
//     and copy the results out, keeping the historical contract that
//     returned slices are caller-owned and never recycled.
//
// Scratch never carries information between queries — every buffer is
// length-reset before use — so recycling it through a sync.Pool cannot
// perturb results and the determinism contract (bit-identical output at
// every pool width) is untouched.

import (
	"fmt"
	"sort"
	"sync"

	"github.com/gem-embeddings/gem/internal/pool"
)

// scratch is the full set of buffers one in-flight search needs. It is
// index-agnostic: the same value serves Flat and HNSW at any precision, and
// a pooled scratch may move between indexes freely.
type scratch struct {
	sq  scanQuery // prepared query; its f32/i8 fields alias the buffers below
	f32 []float32 // reduced-precision query copies, reused across queries
	i8  []int8

	sel      candHeap // bounded farthest-first selection (Flat top-k / rerank pool)
	frontier candHeap // HNSW beam frontier (nearest-first)
	results  candHeap // HNSW beam result set (farthest-first)
	layer    []cand   // sorted base-layer beam output
	visited  []bool   // HNSW visited set, cleared per query
	eps      [1]cand  // entry-point slice for the base-layer beam

	cands []Result // re-rank candidate buffer
	out   []Result // final results (returned by searchInto)

	rsort resultSorter // allocation-free sort.Interface adapters
	csort candSorter

	arena []Result   // SearchBatch: results of all queries, back to back
	spans [][2]int   // SearchBatch: [start, end) of each query in arena
	batch [][]Result // SearchBatch: per-query views into arena
}

// reset re-arms a heap for a new query without freeing its backing array.
func (ch *candHeap) reset(min bool) {
	ch.items = ch.items[:0]
	ch.min = min
}

// resultSorter sorts []Result by (distance, id) through a pointer receiver,
// so sorting costs no allocation (sort.Slice allocates its closure and
// reflect-based swapper per call).
type resultSorter struct{ rs []Result }

func (s *resultSorter) Len() int      { return len(s.rs) }
func (s *resultSorter) Swap(i, j int) { s.rs[i], s.rs[j] = s.rs[j], s.rs[i] }
func (s *resultSorter) Less(i, j int) bool {
	if s.rs[i].Dist != s.rs[j].Dist {
		return s.rs[i].Dist < s.rs[j].Dist
	}
	return s.rs[i].ID < s.rs[j].ID
}

// sortResults sorts rs by (distance, id) using the scratch adapter.
func (s *resultSorter) sort(rs []Result) {
	s.rs = rs
	sort.Sort(s)
	s.rs = nil
}

// candSorter is resultSorter for []cand under candBefore.
type candSorter struct{ cs []cand }

func (s *candSorter) Len() int           { return len(s.cs) }
func (s *candSorter) Swap(i, j int)      { s.cs[i], s.cs[j] = s.cs[j], s.cs[i] }
func (s *candSorter) Less(i, j int) bool { return candBefore(s.cs[i], s.cs[j]) }

func (s *candSorter) sort(cs []cand) {
	s.cs = cs
	sort.Sort(s)
	s.cs = nil
}

// grow returns s with length n, reusing the backing array when it is wide
// enough. Contents are unspecified; callers overwrite every slot.
func grow[T any](s []T, n int) []T {
	if cap(s) < n {
		return make([]T, n)
	}
	return s[:n]
}

// scratches recycles search scratch across every index in the process.
// Get/Put order never influences results (see the file comment), so the
// pool is determinism-neutral.
var scratches = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch   { return scratches.Get().(*scratch) }
func putScratch(sc *scratch) { scratches.Put(sc) }

// searcherIndex is the scratch-driven search entry point both index types
// implement; Searcher and the shared Search/SearchBatch drivers dispatch
// through it.
type searcherIndex interface {
	Index
	// searchInto answers one query using sc's buffers. The returned slice
	// aliases sc and is valid only until sc's next use.
	searchInto(sc *scratch, q []float64, k int) ([]Result, error)
	// searchPool returns the pool SearchBatch fans out on (nil = serial).
	searchPool() *pool.Pool
}

// Searcher is a reusable single-goroutine search context over one index.
// Steady-state Search and SearchBatch through a Searcher perform zero heap
// allocations: every buffer, including the returned result slices, is owned
// by the Searcher and recycled on the next call.
//
// The scratch ownership contract: results returned by a Searcher are views
// into its scratch, valid only until the next Search/SearchBatch call on
// the same Searcher. Callers that need to retain results must copy them
// (or use Index.Search, which copies for them). A Searcher must not be
// shared between goroutines; create one per worker.
//
// A Searcher reads the index's live state on every call, so it remains
// valid across Add/Remove — but like Index.Search itself, calls must not
// race with mutations.
type Searcher struct {
	idx searcherIndex
	sc  scratch
}

// NewSearcher returns a Searcher over idx. Every index type in this
// package supports it; a foreign Index implementation fails with ErrInput.
func NewSearcher(idx Index) (*Searcher, error) {
	si, ok := idx.(searcherIndex)
	if !ok {
		return nil, fmt.Errorf("%w: index type %T has no scratch search path", ErrInput, idx)
	}
	return &Searcher{idx: si}, nil
}

// Search answers one query. The returned slice is scratch-backed: it is
// valid only until the next call on this Searcher.
func (s *Searcher) Search(q []float64, k int) ([]Result, error) {
	return s.idx.searchInto(&s.sc, q, k)
}

// SearchBatch answers qs[i] into out[i], serially on the calling
// goroutine. The returned slices share one scratch-backed arena, valid
// only until the next call on this Searcher. For parallel fan-out use
// Index.SearchBatch, which runs one Searcher-equivalent per worker.
func (s *Searcher) SearchBatch(qs [][]float64, k int) ([][]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	sc := &s.sc
	sc.arena = sc.arena[:0]
	sc.spans = grow(sc.spans, len(qs))
	for i, q := range qs {
		res, err := s.idx.searchInto(sc, q, k)
		if err != nil {
			return nil, err
		}
		start := len(sc.arena)
		sc.arena = append(sc.arena, res...)
		sc.spans[i] = [2]int{start, len(sc.arena)}
	}
	// Build the per-query views only after the arena stopped growing:
	// append may have moved it.
	sc.batch = grow(sc.batch, len(qs))
	for i, sp := range sc.spans {
		sc.batch[i] = sc.arena[sp[0]:sp[1]:sp[1]]
	}
	return sc.batch, nil
}

// copyResults copies a scratch-backed result slice into a fresh
// caller-owned one, preserving nil.
func copyResults(rs []Result) []Result {
	if rs == nil {
		return nil
	}
	out := make([]Result, len(rs))
	copy(out, rs)
	return out
}

// searchOne is the shared Index.Search driver: borrow scratch, search,
// copy the results out so the caller owns them.
func searchOne(idx searcherIndex, q []float64, k int) ([]Result, error) {
	sc := getScratch()
	res, err := idx.searchInto(sc, q, k)
	out := copyResults(res)
	putScratch(sc)
	return out, err
}

// searchBatchOver is the shared Index.SearchBatch driver. Queries are
// split into contiguous chunks fanned out on the index pool, one borrowed
// scratch per chunk; every query writes only its own slot, so the output
// is bit-identical to a sequential loop of Search calls at every pool
// width. On error the lowest-indexed failing query's error is returned —
// the same error a sequential loop would surface first.
func searchBatchOver(idx searcherIndex, qs [][]float64, k int) ([][]Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	p := idx.searchPool()
	out := make([][]Result, len(qs))
	errs := make([]error, len(qs))
	chunks := p.Workers()
	if chunks > len(qs) {
		chunks = len(qs)
	}
	size := (len(qs) + chunks - 1) / chunks
	_ = p.For(chunks, func(c int) error {
		lo, hi := c*size, (c+1)*size
		if hi > len(qs) {
			hi = len(qs)
		}
		sc := getScratch()
		defer putScratch(sc)
		for i := lo; i < hi; i++ {
			res, err := idx.searchInto(sc, qs[i], k)
			if err != nil {
				errs[i] = err
				continue
			}
			out[i] = copyResults(res)
		}
		return nil
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
