package ann

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// roundTrip saves idx and loads it back.
func roundTrip(t *testing.T, idx Index) Index {
	t.Helper()
	var buf bytes.Buffer
	if err := idx.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// TestPersistRoundTripBitIdentical: a loaded index must return results
// bit-identical to the original's — same ids, same float64 distance bits —
// for both implementations and both metrics.
func TestPersistRoundTripBitIdentical(t *testing.T) {
	vecs := randomVectors(250, 12, 17)
	qs := randomVectors(40, 12, 18)
	for _, metric := range []Metric{Cosine, Euclidean} {
		h, err := NewHNSW(HNSWConfig{Metric: metric, Seed: 6, M: 8, EfConstruction: 80, EfSearch: 48, BatchSize: 32}, pool.New(4))
		if err != nil {
			t.Fatal(err)
		}
		flat := NewFlat(metric)
		for _, idx := range []Index{flat, h} {
			if err := idx.Add(vecs...); err != nil {
				t.Fatal(err)
			}
		}
		for name, idx := range map[string]Index{"flat": flat, "hnsw": h} {
			t.Run(metric.String()+"/"+name, func(t *testing.T) {
				loaded := roundTrip(t, idx)
				if loaded.Len() != idx.Len() || loaded.Dim() != idx.Dim() || loaded.Metric() != idx.Metric() {
					t.Fatalf("loaded shape %d/%d/%v, want %d/%d/%v",
						loaded.Len(), loaded.Dim(), loaded.Metric(), idx.Len(), idx.Dim(), idx.Metric())
				}
				for qi, q := range qs {
					want, err := idx.Search(q, 10)
					if err != nil {
						t.Fatal(err)
					}
					got, err := loaded.Search(q, 10)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("query %d: %d vs %d results", qi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("query %d rank %d: loaded %+v, original %+v", qi, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestPersistHNSWConfigSurvives: the loaded index keeps the saved
// construction parameters (so later Adds extend the same graph family).
func TestPersistHNSWConfigSurvives(t *testing.T) {
	h, err := NewHNSW(HNSWConfig{Metric: Euclidean, Seed: 123, M: 6, EfConstruction: 70, EfSearch: 33, BatchSize: 9}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add(randomVectors(50, 6, 1)...); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, h).(*HNSW)
	if loaded.Config() != h.Config() {
		t.Fatalf("loaded config %+v, want %+v", loaded.Config(), h.Config())
	}
	// The loaded index must accept further Adds.
	if err := loaded.Add(randomVectors(20, 6, 2)...); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 70 {
		t.Fatalf("Len after post-load Add = %d, want 70", loaded.Len())
	}
}

// TestPersistEmptyIndex round-trips indexes with no vectors.
func TestPersistEmptyIndex(t *testing.T) {
	for name, idx := range testIndexes(t, Cosine) {
		t.Run(name, func(t *testing.T) {
			loaded := roundTrip(t, idx)
			if loaded.Len() != 0 {
				t.Fatalf("Len = %d, want 0", loaded.Len())
			}
			if res, err := loaded.Search([]float64{1}, 3); err != nil || res != nil {
				t.Fatalf("empty loaded Search = %v, %v", res, err)
			}
		})
	}
}

// TestPersistCorruptHeader covers the error paths of Load: every corrupt
// payload must fail with ErrFormat, never panic or succeed.
func TestPersistCorruptHeader(t *testing.T) {
	h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add(randomVectors(30, 4, 2)...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			raw := append([]byte(nil), good...)
			raw = mutate(raw)
			if _, err := Load(bytes.NewReader(raw), nil); !errors.Is(err, ErrFormat) {
				t.Errorf("Load err = %v, want ErrFormat", err)
			}
		})
	}
	corrupt("empty", func(b []byte) []byte { return nil })
	corrupt("bad-magic", func(b []byte) []byte { b[0] = 'X'; return b })
	corrupt("bad-version", func(b []byte) []byte { b[7] = 99; return b })
	corrupt("bad-kind", func(b []byte) []byte { b[8] = 77; return b })
	corrupt("bad-metric", func(b []byte) []byte { b[9] = 9; return b })
	corrupt("bad-precision", func(b []byte) []byte { b[10] = 7; return b })
	corrupt("truncated-header", func(b []byte) []byte { return b[:9] })
	corrupt("truncated-body", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("trailing-cut", func(b []byte) []byte { return b[:len(b)-3] })
	// Vector count beyond the allocation cap.
	corrupt("huge-count", func(b []byte) []byte {
		// dim is the first uint32 after magic(8)+kind(1)+metric(1)+prec(1)+
		// M/efC/efS/batch (4*4)+seed(8) = 35; n follows at 39.
		for i, v := range []byte{0xFF, 0xFF, 0xFF, 0xFF} {
			b[39+i] = v
		}
		return b
	})
	// A NaN smuggled into the vector payload (all-ones float64 bits) must
	// be rejected like Add/Search reject it.
	corrupt("nan-payload", func(b []byte) []byte {
		for i := 0; i < 8; i++ {
			b[43+i] = 0xFF // first component of vector 0 (payload starts at 43)
		}
		return b
	})
}

// TestPersistCorruptGraph covers graph-invariant validation: out-of-range
// neighbours and entry points must be rejected.
func TestPersistCorruptGraph(t *testing.T) {
	h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add(randomVectors(10, 2, 3)...); err != nil {
		t.Fatal(err)
	}
	// Corrupt the in-memory graph, then save: Load must reject it.
	h.links[0][0] = append(h.links[0][0], 999)
	var buf bytes.Buffer
	if err := h.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(&buf, nil); !errors.Is(err, ErrFormat) {
		t.Errorf("out-of-range neighbour: Load err = %v, want ErrFormat", err)
	}
}

// TestLoadV1Compat: indexes saved before the tombstone section (format
// v1) must still load, as fully-live indexes. A v1 file is byte-wise a v3
// file minus the precision header byte and minus its trailing zero-count
// tombstone section, with the version byte set to 1.
func TestLoadV1Compat(t *testing.T) {
	vecs := randomVectors(40, 6, 91)
	h, err := NewHNSW(HNSWConfig{Seed: 2, M: 6, EfConstruction: 40}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, idx := range map[string]Index{"flat": NewFlat(Cosine), "hnsw": h} {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			if err := idx.Save(&buf); err != nil {
				t.Fatal(err)
			}
			full := buf.Bytes()[:buf.Len()-4] // drop the empty tombstone section
			v1 := append([]byte(nil), full[:10]...)
			v1 = append(v1, full[11:]...) // drop the precision byte
			v1[7] = 1
			loaded, err := Load(bytes.NewReader(v1), nil)
			if err != nil {
				t.Fatalf("v1 load: %v", err)
			}
			if loaded.Len() != 40 || loaded.Live() != 40 {
				t.Fatalf("v1 loaded %d/%d live", loaded.Live(), loaded.Len())
			}
			want, err := idx.Search(vecs[3], 5)
			if err != nil {
				t.Fatal(err)
			}
			got, err := loaded.Search(vecs[3], 5)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("rank %d: %+v vs %+v", i, got[i], want[i])
				}
			}
			// Unknown future versions still fail loudly.
			v9 := append([]byte(nil), buf.Bytes()...)
			v9[7] = 9
			if _, err := Load(bytes.NewReader(v9), nil); !errors.Is(err, ErrFormat) {
				t.Fatalf("v9 load: %v", err)
			}
		})
	}
}
