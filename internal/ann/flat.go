package ann

import (
	"io"
	"sort"
)

// Flat is the exact brute-force index: Search scans every stored vector.
// It is the recall reference for HNSW and the right choice for small
// catalogs where an O(n·d) scan is already fast.
type Flat struct {
	metric   Metric
	dim      int
	vecs     [][]float64
	norms    []float64 // cached L2 norms (used by the cosine metric)
	deleted  []bool    // tombstones; Search skips marked slots
	nDeleted int
}

// NewFlat returns an empty exact index under the given metric.
func NewFlat(metric Metric) *Flat {
	return &Flat{metric: metric}
}

// Add implements Index.
func (f *Flat) Add(vecs ...[]float64) error {
	dim, err := checkAdd(f.dim, len(f.vecs), vecs)
	if err != nil {
		return err
	}
	f.dim = dim
	for _, v := range vecs {
		cp := make([]float64, len(v))
		copy(cp, v)
		f.vecs = append(f.vecs, cp)
		f.norms = append(f.norms, Norm(cp))
		f.deleted = append(f.deleted, false)
	}
	return nil
}

// Remove implements Index: the slot is tombstoned, not reclaimed.
func (f *Flat) Remove(id int) error {
	if err := checkRemove(f.deleted, id); err != nil {
		return err
	}
	f.deleted[id] = true
	f.nDeleted++
	return nil
}

// Len implements Index.
func (f *Flat) Len() int { return len(f.vecs) }

// Live implements Index.
func (f *Flat) Live() int { return len(f.vecs) - f.nDeleted }

// Dim implements Index.
func (f *Flat) Dim() int { return f.dim }

// Metric implements Index.
func (f *Flat) Metric() Metric { return f.metric }

// Rebuild implements Index: survivors are re-added in id order, so the
// result is byte-identical to a fresh Flat built from them.
func (f *Flat) Rebuild() ([]int, error) {
	mapping, live := liveMapping(f.vecs, f.deleted)
	nf := NewFlat(f.metric)
	if err := nf.Add(live...); err != nil {
		return nil, err
	}
	*f = *nf
	return mapping, nil
}

// Search implements Index: an exact scan over the live vectors, sorted by
// (distance, id).
func (f *Flat) Search(q []float64, k int) ([]Result, error) {
	if err := checkQuery(f.dim, q, k); err != nil {
		return nil, err
	}
	if k > f.Live() {
		k = f.Live()
	}
	if k == 0 {
		return nil, nil
	}
	qn := Norm(q)
	out := make([]Result, 0, f.Live())
	for i, v := range f.vecs {
		if f.deleted[i] {
			continue
		}
		out = append(out, Result{ID: i, Dist: f.metric.distNormed(q, qn, v, f.norms[i])})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	return out[:k:k], nil
}

// Save implements Index; see persist.go for the format.
func (f *Flat) Save(w io.Writer) error { return saveFlat(w, f) }
