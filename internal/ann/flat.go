package ann

import (
	"io"
	"sort"
)

// Flat is the exact brute-force index: Search scans every stored vector.
// It is the recall reference for HNSW and the right choice for small
// catalogs where an O(n·d) scan is already fast. At a reduced precision
// the scan runs on the quantized copy and the top candidates are re-scored
// in exact float64, so reported distances are always exact.
type Flat struct {
	st       vecStore
	deleted  []bool // tombstones; Search skips marked slots
	nDeleted int
}

// NewFlat returns an empty exact index under the given metric, scanning
// in full float64 precision.
func NewFlat(metric Metric) *Flat {
	return &Flat{st: newVecStore(metric, Float64)}
}

// NewFlatAt returns an empty index under the given metric whose scans run
// at the given precision. An invalid precision falls back to Float64 at
// the first Add — use checkPrecision-validating constructors (HNSWConfig)
// when the precision comes from user input.
func NewFlatAt(metric Metric, prec Precision) (*Flat, error) {
	if err := checkPrecision(prec); err != nil {
		return nil, err
	}
	return &Flat{st: newVecStore(metric, prec)}, nil
}

// Add implements Index.
func (f *Flat) Add(vecs ...[]float64) error {
	dim, err := checkAdd(f.st.dim, f.st.len(), vecs)
	if err != nil {
		return err
	}
	f.st.add(dim, vecs)
	for range vecs {
		f.deleted = append(f.deleted, false)
	}
	return nil
}

// Remove implements Index: the slot is tombstoned, not reclaimed.
func (f *Flat) Remove(id int) error {
	if err := checkRemove(f.deleted, id); err != nil {
		return err
	}
	f.deleted[id] = true
	f.nDeleted++
	return nil
}

// Len implements Index.
func (f *Flat) Len() int { return f.st.len() }

// Live implements Index.
func (f *Flat) Live() int { return f.st.len() - f.nDeleted }

// Dim implements Index.
func (f *Flat) Dim() int { return f.st.dim }

// Metric implements Index.
func (f *Flat) Metric() Metric { return f.st.metric }

// Precision implements Index.
func (f *Flat) Precision() Precision { return f.st.prec }

// Rebuild implements Index: survivors are re-added in id order, so the
// result is byte-identical to a fresh Flat built from them.
func (f *Flat) Rebuild() ([]int, error) {
	mapping, live := liveMapping(f.st.vecs, f.deleted)
	nf := &Flat{st: newVecStore(f.st.metric, f.st.prec)}
	if err := nf.Add(live...); err != nil {
		return nil, err
	}
	*f = *nf
	return mapping, nil
}

// Search implements Index: an exact scan over the live vectors, sorted by
// (distance, id). At a reduced precision the scan keeps the rerankDepth(k)
// nearest candidates under the quantized kernel and re-scores them in
// float64, so the returned distances are the exact metric distances.
func (f *Flat) Search(q []float64, k int) ([]Result, error) {
	if err := checkQuery(f.st.dim, q, k); err != nil {
		return nil, err
	}
	if k > f.Live() {
		k = f.Live()
	}
	if k == 0 {
		return nil, nil
	}
	sq := f.st.query(q)
	if f.st.prec == Float64 {
		out := make([]Result, 0, f.Live())
		for i := range f.st.vecs {
			if f.deleted[i] {
				continue
			}
			out = append(out, Result{ID: i, Dist: f.st.scanDist(&sq, i)})
		}
		sort.Slice(out, func(a, b int) bool {
			if out[a].Dist != out[b].Dist {
				return out[a].Dist < out[b].Dist
			}
			return out[a].ID < out[b].ID
		})
		return out[:k:k], nil
	}
	// Reduced precision: bounded selection under the scan kernel (a
	// farthest-first heap of the best rerankDepth(k) candidates beats
	// sorting the full scan), then the exact float64 re-rank.
	r := rerankDepth(k)
	best := &candHeap{min: false}
	for i := range f.st.vecs {
		if f.deleted[i] {
			continue
		}
		c := cand{id: int32(i), dist: f.st.scanDist(&sq, i)}
		if best.len() < r {
			best.push(c)
			continue
		}
		if candBefore(c, best.peek()) {
			best.pop()
			best.push(c)
		}
	}
	cands := make([]Result, best.len())
	for i := range cands {
		c := best.pop()
		cands[i] = Result{ID: int(c.id), Dist: c.dist}
	}
	out := f.st.rerank(&sq, cands)
	if len(out) > k {
		out = out[:k:k]
	}
	return out, nil
}

// Save implements Index; see persist.go for the format.
func (f *Flat) Save(w io.Writer) error { return saveFlat(w, f) }
