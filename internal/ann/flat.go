package ann

import (
	"io"

	"github.com/gem-embeddings/gem/internal/pool"
)

// Flat is the exact brute-force index: Search scans every stored vector.
// It is the recall reference for HNSW and the right choice for small
// catalogs where an O(n·d) scan is already fast. At a reduced precision
// the scan runs on the quantized copy and the top candidates are re-scored
// in exact float64, so reported distances are always exact.
type Flat struct {
	st       vecStore
	deleted  []bool // tombstones; Search skips marked slots
	nDeleted int
	pool     *pool.Pool // bounds SearchBatch fan-out; nil = serial
}

// NewFlat returns an empty exact index under the given metric, scanning
// in full float64 precision.
func NewFlat(metric Metric) *Flat {
	return &Flat{st: newVecStore(metric, Float64)}
}

// NewFlatAt returns an empty index under the given metric whose scans run
// at the given precision. An invalid precision falls back to Float64 at
// the first Add — use checkPrecision-validating constructors (HNSWConfig)
// when the precision comes from user input.
func NewFlatAt(metric Metric, prec Precision) (*Flat, error) {
	if err := checkPrecision(prec); err != nil {
		return nil, err
	}
	return &Flat{st: newVecStore(metric, prec)}, nil
}

// SetPool sets the worker pool SearchBatch fans queries out on. The pool
// is a pure throughput knob: results are bit-identical at every width,
// including the nil (serial) default.
func (f *Flat) SetPool(p *pool.Pool) { f.pool = p }

// searchPool implements searcherIndex.
func (f *Flat) searchPool() *pool.Pool { return f.pool }

// Add implements Index.
func (f *Flat) Add(vecs ...[]float64) error {
	dim, err := checkAdd(f.st.dim, f.st.len(), vecs)
	if err != nil {
		return err
	}
	f.st.add(dim, vecs)
	for range vecs {
		f.deleted = append(f.deleted, false)
	}
	return nil
}

// Remove implements Index: the slot is tombstoned, not reclaimed.
func (f *Flat) Remove(id int) error {
	if err := checkRemove(f.deleted, id); err != nil {
		return err
	}
	f.deleted[id] = true
	f.nDeleted++
	return nil
}

// Len implements Index.
func (f *Flat) Len() int { return f.st.len() }

// Live implements Index.
func (f *Flat) Live() int { return f.st.len() - f.nDeleted }

// Dim implements Index.
func (f *Flat) Dim() int { return f.st.dim }

// Metric implements Index.
func (f *Flat) Metric() Metric { return f.st.metric }

// Precision implements Index.
func (f *Flat) Precision() Precision { return f.st.prec }

// Rebuild implements Index: survivors are re-added in id order, so the
// result is byte-identical to a fresh Flat built from them.
func (f *Flat) Rebuild() ([]int, error) {
	mapping, live := liveMapping(f.st.vecs, f.deleted)
	nf := &Flat{st: newVecStore(f.st.metric, f.st.prec), pool: f.pool}
	if err := nf.Add(live...); err != nil {
		return nil, err
	}
	*f = *nf
	return mapping, nil
}

// selectNearest scans the live vectors under the scan kernel and fills
// sc.sel with the m nearest candidates under the (distance, id) total
// order — a farthest-first heap of size m, O(n log m) and no O(n) result
// slice. The heap holds exactly the m first entries of the fully sorted
// scan, so downstream consumers see the same candidates the historical
// full-materialize-and-sort produced.
func (f *Flat) selectNearest(sc *scratch, sq *scanQuery, m int) {
	sel := &sc.sel
	sel.reset(false)
	for i := range f.st.vecs {
		if f.deleted[i] {
			continue
		}
		c := cand{id: int32(i), dist: f.st.scanDist(sq, i)}
		if sel.len() < m {
			sel.push(c)
			continue
		}
		if candBefore(c, sel.peek()) {
			sel.pop()
			sel.push(c)
		}
	}
}

// searchInto implements searcherIndex; see Search for semantics.
func (f *Flat) searchInto(sc *scratch, q []float64, k int) ([]Result, error) {
	if err := checkQuery(f.st.dim, q, k); err != nil {
		return nil, err
	}
	if k > f.Live() {
		k = f.Live()
	}
	if k == 0 {
		return nil, nil
	}
	sq := f.st.queryInto(sc, q)
	if f.st.prec == Float64 {
		// Exact scan: the heap IS the answer. Popping farthest-first fills
		// the output back to front, leaving it nearest-first.
		f.selectNearest(sc, sq, k)
		n := sc.sel.len()
		sc.out = grow(sc.out, n)
		for i := n - 1; i >= 0; i-- {
			c := sc.sel.pop()
			sc.out[i] = Result{ID: int(c.id), Dist: c.dist}
		}
		return sc.out, nil
	}
	// Reduced precision: bounded selection under the scan kernel, then the
	// exact float64 re-rank of the survivors.
	f.selectNearest(sc, sq, rerankDepth(k))
	sc.cands = grow(sc.cands, sc.sel.len())
	for i := range sc.cands {
		c := sc.sel.pop()
		sc.cands[i] = Result{ID: int(c.id), Dist: c.dist}
	}
	out := f.st.rerank(sq, sc.cands, &sc.rsort)
	if len(out) > k {
		out = out[:k:k]
	}
	return out, nil
}

// Search implements Index: an exact scan over the live vectors, sorted by
// (distance, id). At a reduced precision the scan keeps the rerankDepth(k)
// nearest candidates under the quantized kernel and re-scores them in
// float64, so the returned distances are the exact metric distances. The
// returned slice is caller-owned; hot loops that want the allocation-free
// variant should hold a Searcher.
func (f *Flat) Search(q []float64, k int) ([]Result, error) {
	return searchOne(f, q, k)
}

// SearchBatch implements Index: it answers every query of the batch in one
// call, fanning contiguous query chunks out on the pool (SetPool) with one
// reusable scratch per worker. Output is bit-identical to calling Search
// per query, at every pool width.
func (f *Flat) SearchBatch(qs [][]float64, k int) ([][]Result, error) {
	return searchBatchOver(f, qs, k)
}

// Save implements Index; see persist.go for the format.
func (f *Flat) Save(w io.Writer) error { return saveFlat(w, f) }
