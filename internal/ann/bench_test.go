package ann

import (
	"fmt"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// benchCorpus is the shared benchmark workload: big enough that the scan
// and beam costs dominate, small enough to build quickly.
const (
	benchN   = 2000
	benchDim = 32
	benchK   = 10
)

func benchIndex(b *testing.B, kind string, prec Precision) Index {
	b.Helper()
	vecs := randomVectors(benchN, benchDim, 17)
	var idx Index
	switch kind {
	case "flat":
		f, err := NewFlatAt(Cosine, prec)
		if err != nil {
			b.Fatal(err)
		}
		idx = f
	case "hnsw":
		h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 17, Precision: prec}, pool.New(4))
		if err != nil {
			b.Fatal(err)
		}
		idx = h
	}
	if err := idx.Add(vecs...); err != nil {
		b.Fatal(err)
	}
	return idx
}

// BenchmarkSearcherSearch measures the scratch-backed single-query path.
// The Flat rows must report 0 allocs/op at every precision — that is the
// Searcher contract, enforced as a test by TestSearcherZeroAllocFlat.
func BenchmarkSearcherSearch(b *testing.B) {
	qs := randomVectors(64, benchDim, 23)
	for _, kind := range []string{"flat", "hnsw"} {
		for _, prec := range allPrecisions {
			b.Run(kind+"/"+prec.String(), func(b *testing.B) {
				s, err := NewSearcher(benchIndex(b, kind, prec))
				if err != nil {
					b.Fatal(err)
				}
				if _, err := s.Search(qs[0], benchK); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := s.Search(qs[i%len(qs)], benchK); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkIndexSearch measures the copying Index.Search path for
// comparison with the Searcher: the difference is the copy-out cost.
func BenchmarkIndexSearch(b *testing.B) {
	qs := randomVectors(64, benchDim, 23)
	for _, kind := range []string{"flat", "hnsw"} {
		b.Run(kind, func(b *testing.B) {
			idx := benchIndex(b, kind, Float64)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := idx.Search(qs[i%len(qs)], benchK); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSearchBatch measures Index.SearchBatch across batch sizes and
// fan-out widths; allocs/op divided by the batch size is the per-query
// allocation cost of the batched path.
func BenchmarkSearchBatch(b *testing.B) {
	queries := randomVectors(256, benchDim, 29)
	for _, kind := range []string{"flat", "hnsw"} {
		for _, size := range []int{1, 16, 256} {
			for _, workers := range []int{1, 4} {
				name := fmt.Sprintf("%s/b%d/w%d", kind, size, workers)
				b.Run(name, func(b *testing.B) {
					idx := benchIndex(b, kind, Float64)
					setBenchPool(b, idx, pool.New(workers))
					qs := queries[:size]
					if _, err := idx.SearchBatch(qs, benchK); err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if _, err := idx.SearchBatch(qs, benchK); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

func setBenchPool(b *testing.B, idx Index, p *pool.Pool) {
	b.Helper()
	switch v := idx.(type) {
	case *Flat:
		v.SetPool(p)
	case *HNSW:
		v.SetPool(p)
	default:
		b.Fatalf("unknown index type %T", idx)
	}
}
