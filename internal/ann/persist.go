package ann

// Binary persistence for the index types. The format is little-endian:
//
//	magic     [8]byte  "gemann\x00\x03" (name + format version)
//	kind      uint8    1 = Flat, 2 = HNSW
//	metric    uint8
//	precision uint8    (format version 3+)
//
// followed by the kind-specific body and a tombstone section (a count and
// the strictly increasing removed ids). Format version 2 added the
// tombstones so a mutable index survives a save/load round trip mid-churn;
// version 3 added the precision tag and, for int8 indexes, a per-vector
// scale section directly after the vectors. Vectors are always stored as
// raw float64 bits — the authoritative form in every precision mode — so a
// loaded index returns bit-identical search results: derived quantities
// (norms, float32 copies, int8 codes) are recomputed on load with the same
// deterministic procedure used at build time, and the HNSW adjacency is
// stored verbatim. The int8 scales are recomputable too; storing them
// makes the file self-describing and lets Load cross-check a corrupt or
// truncated scale section against the vectors (ErrFormat on any mismatch).

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"github.com/gem-embeddings/gem/internal/pool"
)

var magic = [8]byte{'g', 'e', 'm', 'a', 'n', 'n', 0, 3}

const (
	kindFlat uint8 = 1
	kindHNSW uint8 = 2

	// formatV1 is the pre-tombstone layout; Load still reads it (as an
	// index with no removals) so indexes saved by older builds keep
	// working. Save always writes the current version.
	formatV1 uint8 = 1
	// formatV3 added the precision header byte and the int8 scale section.
	// Older files decode as Float64.
	formatV3 uint8 = 3
)

// maxPersistCount caps counts read from index bytes (vectors, neighbours)
// so a corrupt length cannot drive a huge allocation.
const maxPersistCount = 1 << 28

// maxPersistDim caps the vector dimensionality, far above any real
// embedding width: one decoded row must stay a modest allocation even on
// adversarial input.
const maxPersistDim = 1 << 20

// Load reads an index saved by Flat.Save or HNSW.Save, dispatching on the
// header. The current format and the older layouts are accepted (a v1 file
// loads with zero removals, pre-v3 files load as Float64). The pool bounds
// the parallelism of future Add calls on a loaded HNSW and of SearchBatch
// fan-out on either kind; nil is valid and means serial.
func Load(r io.Reader, p *pool.Pool) (Index, error) {
	br := bufio.NewReader(r)
	var m [8]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrFormat, err)
	}
	version := m[7]
	m[7] = magic[7]
	if m != magic || version < formatV1 || version > magic[7] {
		m[7] = version
		return nil, fmt.Errorf("%w: bad magic %q", ErrFormat, m[:])
	}
	var kind, metric uint8
	if err := readLE(br, &kind, &metric); err != nil {
		return nil, err
	}
	if metric > uint8(Euclidean) {
		return nil, fmt.Errorf("%w: unknown metric %d", ErrFormat, metric)
	}
	prec := Float64
	if version >= formatV3 {
		var pb uint8
		if err := readLE(br, &pb); err != nil {
			return nil, err
		}
		if pb > uint8(Int8) {
			return nil, fmt.Errorf("%w: unknown precision %d", ErrFormat, pb)
		}
		prec = Precision(pb)
	}
	switch kind {
	case kindFlat:
		return loadFlat(br, Metric(metric), prec, version, p)
	case kindHNSW:
		return loadHNSW(br, Metric(metric), prec, version, p)
	default:
		return nil, fmt.Errorf("%w: unknown index kind %d", ErrFormat, kind)
	}
}

// readLE decodes a sequence of fixed-size little-endian values, wrapping
// the first failure in ErrFormat.
func readLE(r io.Reader, vs ...any) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("%w: truncated or unreadable: %v", ErrFormat, err)
		}
	}
	return nil
}

// writeLE encodes a sequence of fixed-size little-endian values.
func writeLE(w io.Writer, vs ...any) error {
	for _, v := range vs {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return fmt.Errorf("ann: writing index: %w", err)
		}
	}
	return nil
}

// readCount reads a uint32 count and bounds-checks it.
func readCount(r io.Reader, what string) (int, error) {
	var n uint32
	if err := readLE(r, &n); err != nil {
		return 0, err
	}
	if n > maxPersistCount {
		return 0, fmt.Errorf("%w: %s count %d exceeds limit", ErrFormat, what, n)
	}
	return int(n), nil
}

// writeVectors writes dim, n and the stacked vector payload.
func writeVectors(w io.Writer, dim int, vecs [][]float64) error {
	if err := writeLE(w, uint32(dim), uint32(len(vecs))); err != nil {
		return err
	}
	for _, v := range vecs {
		if err := writeLE(w, v); err != nil {
			return err
		}
	}
	return nil
}

// readVectors reads the payload written by writeVectors.
func readVectors(r io.Reader) (dim int, vecs [][]float64, err error) {
	if dim, err = readCount(r, "dimension"); err != nil {
		return 0, nil, err
	}
	n, err := readCount(r, "vector")
	if err != nil {
		return 0, nil, err
	}
	if n > 0 && dim == 0 {
		return 0, nil, fmt.Errorf("%w: %d vectors with dimension 0", ErrFormat, n)
	}
	if dim > maxPersistDim {
		return 0, nil, fmt.Errorf("%w: dimension %d exceeds limit", ErrFormat, dim)
	}
	// Grow incrementally rather than preallocating n slots: a corrupt
	// header can claim millions of vectors it does not contain, and memory
	// use must track the bytes actually present, not the claim.
	for i := 0; i < n; i++ {
		v := make([]float64, dim)
		if err := readLE(r, v); err != nil {
			return 0, nil, err
		}
		// Reject non-finite payloads here, for both index kinds: Add and
		// Search refuse NaN/Inf because they break the strict distance
		// order, so a corrupt payload must not sneak them in via Load.
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0, nil, fmt.Errorf("%w: vector %d component %d is not finite", ErrFormat, i, j)
			}
		}
		vecs = append(vecs, v)
	}
	return dim, vecs, nil
}

// writeScales writes the int8 scale section: a count (the vector count)
// followed by the per-vector quantization scales.
func writeScales(w io.Writer, scales []float32) error {
	return writeLE(w, uint32(len(scales)), scales)
}

// readScales reads the section written by writeScales and validates it
// against the scales recomputed from the vectors: quantization is
// deterministic in the vector alone, so any divergence — wrong count,
// truncation, a flipped or non-finite value — is corruption, and the one
// consumer of the section (the scan kernels) must never see it.
func readScales(r io.Reader, want []float32) error {
	cnt, err := readCount(r, "scale")
	if err != nil {
		return err
	}
	if cnt != len(want) {
		return fmt.Errorf("%w: %d scales for %d vectors", ErrFormat, cnt, len(want))
	}
	got := make([]float32, cnt)
	if err := readLE(r, got); err != nil {
		return err
	}
	for i, s := range got {
		if math.IsNaN(float64(s)) || math.IsInf(float64(s), 0) {
			return fmt.Errorf("%w: scale %d is not finite", ErrFormat, i)
		}
		if s != want[i] {
			return fmt.Errorf("%w: scale %d does not match its vector (%g, want %g)", ErrFormat, i, s, want[i])
		}
	}
	return nil
}

// writeTombstones writes the removed-id section: a count followed by the
// removed ids in increasing order.
func writeTombstones(w io.Writer, deleted []bool, nDeleted int) error {
	if err := writeLE(w, uint32(nDeleted)); err != nil {
		return err
	}
	for id, dead := range deleted {
		if dead {
			if err := writeLE(w, uint32(id)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readTombstones reads the section written by writeTombstones, validating
// that ids are strictly increasing and in range. Version-1 files predate
// the section: they decode as "no removals".
func readTombstones(r io.Reader, n int, version uint8) (deleted []bool, nDeleted int, err error) {
	if version < 2 {
		return make([]bool, n), 0, nil
	}
	cnt, err := readCount(r, "tombstone")
	if err != nil {
		return nil, 0, err
	}
	if cnt > n {
		return nil, 0, fmt.Errorf("%w: %d tombstones for %d vectors", ErrFormat, cnt, n)
	}
	deleted = make([]bool, n)
	prev := -1
	for i := 0; i < cnt; i++ {
		var id uint32
		if err := readLE(r, &id); err != nil {
			return nil, 0, err
		}
		if int(id) >= n || int(id) <= prev {
			return nil, 0, fmt.Errorf("%w: tombstone id %d out of order or range (n=%d)", ErrFormat, id, n)
		}
		deleted[id] = true
		prev = int(id)
	}
	return deleted, cnt, nil
}

// saveFlat writes a Flat index.
func saveFlat(w io.Writer, f *Flat) error {
	bw := bufio.NewWriter(w)
	if err := writeLE(bw, magic, kindFlat, uint8(f.st.metric), uint8(f.st.prec)); err != nil {
		return err
	}
	if err := writeVectors(bw, f.st.dim, f.st.vecs); err != nil {
		return err
	}
	if f.st.prec == Int8 {
		if err := writeScales(bw, f.st.scales); err != nil {
			return err
		}
	}
	if err := writeTombstones(bw, f.deleted, f.nDeleted); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ann: writing index: %w", err)
	}
	return nil
}

// loadFlat reads a Flat body (header already consumed). The scan copies
// are rebuilt from the float64 vectors through the same Add path a fresh
// build uses; the persisted int8 scales only cross-check that rebuild.
func loadFlat(r io.Reader, metric Metric, prec Precision, version uint8, p *pool.Pool) (*Flat, error) {
	dim, vecs, err := readVectors(r)
	if err != nil {
		return nil, err
	}
	f := &Flat{st: newVecStore(metric, prec), pool: p}
	if err := f.Add(vecs...); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	f.st.dim = dim
	if prec == Int8 {
		if err := readScales(r, f.st.scales); err != nil {
			return nil, err
		}
	}
	if f.deleted, f.nDeleted, err = readTombstones(r, len(vecs), version); err != nil {
		return nil, err
	}
	return f, nil
}

// saveHNSW writes an HNSW index: config, vectors (plus int8 scales), entry
// point, then the per-node level and adjacency lists verbatim.
func saveHNSW(w io.Writer, h *HNSW) error {
	bw := bufio.NewWriter(w)
	if err := writeLE(bw, magic, kindHNSW, uint8(h.cfg.Metric), uint8(h.st.prec),
		uint32(h.cfg.M), uint32(h.cfg.EfConstruction), uint32(h.cfg.EfSearch),
		uint32(h.cfg.BatchSize), h.cfg.Seed); err != nil {
		return err
	}
	if err := writeVectors(bw, h.st.dim, h.st.vecs); err != nil {
		return err
	}
	if h.st.prec == Int8 {
		if err := writeScales(bw, h.st.scales); err != nil {
			return err
		}
	}
	if err := writeLE(bw, int32(h.entry), int32(h.maxLvl)); err != nil {
		return err
	}
	for id := range h.st.vecs {
		if err := writeLE(bw, uint8(h.levels[id])); err != nil {
			return err
		}
		for _, nbs := range h.links[id] {
			if err := writeLE(bw, uint32(len(nbs)), nbs); err != nil {
				return err
			}
		}
	}
	if err := writeTombstones(bw, h.deleted, h.nDeleted); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("ann: writing index: %w", err)
	}
	return nil
}

// loadHNSW reads an HNSW body (header already consumed) and validates the
// graph invariants so a corrupt adjacency cannot cause out-of-range panics.
func loadHNSW(r io.Reader, metric Metric, prec Precision, version uint8, p *pool.Pool) (*HNSW, error) {
	var mM, efC, efS, batch uint32
	var seed int64
	if err := readLE(r, &mM, &efC, &efS, &batch, &seed); err != nil {
		return nil, err
	}
	if mM > maxPersistCount || efC > maxPersistCount || efS > maxPersistCount || batch > maxPersistCount {
		return nil, fmt.Errorf("%w: implausible config (M=%d efC=%d efS=%d batch=%d)", ErrFormat, mM, efC, efS, batch)
	}
	h, err := NewHNSW(HNSWConfig{
		Metric: metric, M: int(mM), EfConstruction: int(efC),
		EfSearch: int(efS), Seed: seed, BatchSize: int(batch), Precision: prec,
	}, p)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	dim, vecs, err := readVectors(r)
	if err != nil {
		return nil, err
	}
	// Rebuild the scan copies (norms, float32 rows, int8 codes) through the
	// same deterministic path a fresh build uses; the persisted scales only
	// cross-check it. The adjacency is read verbatim below — Add is never
	// called, so the graph is exactly the saved one.
	h.st.add(dim, vecs)
	h.st.dim = dim
	if prec == Int8 {
		if err := readScales(r, h.st.scales); err != nil {
			return nil, err
		}
	}
	var entry, maxLvl int32
	if err := readLE(r, &entry, &maxLvl); err != nil {
		return nil, err
	}
	n := len(vecs)
	if n == 0 {
		if entry != -1 {
			return nil, fmt.Errorf("%w: empty index with entry %d", ErrFormat, entry)
		}
		if _, _, err := readTombstones(r, 0, version); err != nil {
			return nil, err
		}
		return h, nil
	}
	if entry < 0 || int(entry) >= n || maxLvl < 0 || maxLvl > maxLevelCap {
		return nil, fmt.Errorf("%w: entry %d / max level %d out of range for %d vectors", ErrFormat, entry, maxLvl, n)
	}
	h.levels = make([]int, n)
	h.links = make([][][]int32, n)
	for id := 0; id < n; id++ {
		var lvl uint8
		if err := readLE(r, &lvl); err != nil {
			return nil, err
		}
		if int(lvl) > maxLevelCap {
			return nil, fmt.Errorf("%w: node %d level %d exceeds cap", ErrFormat, id, lvl)
		}
		h.levels[id] = int(lvl)
		h.links[id] = make([][]int32, int(lvl)+1)
		for l := 0; l <= int(lvl); l++ {
			cnt, err := readCount(r, "neighbour")
			if err != nil {
				return nil, err
			}
			if cnt > n {
				return nil, fmt.Errorf("%w: node %d layer %d claims %d neighbours in a %d-node graph", ErrFormat, id, l, cnt, n)
			}
			nbs := make([]int32, cnt)
			if err := readLE(r, nbs); err != nil {
				return nil, err
			}
			h.links[id][l] = nbs
		}
	}
	// Validate adjacency only after every node's level is known: a link may
	// reference a node that appears later in the file, and search assumes
	// any layer-l neighbour exists on layer l.
	for id := 0; id < n; id++ {
		for l, nbs := range h.links[id] {
			for _, nb := range nbs {
				if nb < 0 || int(nb) >= n || h.levels[nb] < l {
					return nil, fmt.Errorf("%w: node %d layer %d links to invalid node %d", ErrFormat, id, l, nb)
				}
			}
		}
	}
	if h.levels[entry] < int(maxLvl) {
		return nil, fmt.Errorf("%w: entry %d has level %d, max level is %d", ErrFormat, entry, h.levels[entry], maxLvl)
	}
	if h.deleted, h.nDeleted, err = readTombstones(r, n, version); err != nil {
		return nil, err
	}
	h.entry = int(entry)
	h.maxLvl = int(maxLvl)
	return h, nil
}
