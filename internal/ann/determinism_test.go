package ann

import (
	"bytes"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// allPrecisions is the sweep every determinism test runs: the bit-identity
// contract holds per precision tier, not just for the float64 path.
var allPrecisions = []Precision{Float64, Float32, Int8}

// TestHNSWDeterministicAcrossWorkers is the construction-determinism pin:
// the same vectors, config and seed must yield a byte-identical graph (and
// therefore bit-identical search results) at every worker-pool width,
// including nil (serial) — at every precision tier, since the reduced-
// precision kernels drive candidate selection during construction.
// Serialized bytes capture the full graph state — vectors, levels,
// adjacency, entry point — so comparing them compares everything.
func TestHNSWDeterministicAcrossWorkers(t *testing.T) {
	vecs := randomVectors(600, 16, 21)
	for _, prec := range allPrecisions {
		t.Run(prec.String(), func(t *testing.T) {
			build := func(p *pool.Pool) []byte {
				h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 42, Precision: prec}, p)
				if err != nil {
					t.Fatal(err)
				}
				if err := h.Add(vecs...); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := h.Save(&buf); err != nil {
					t.Fatal(err)
				}
				return buf.Bytes()
			}
			ref := build(pool.New(1))
			for _, workers := range []int{2, 8} {
				if got := build(pool.New(workers)); !bytes.Equal(ref, got) {
					t.Fatalf("workers=%d built a different graph than workers=1", workers)
				}
			}
			// nil pool (serial fallback) must agree too.
			if got := build(nil); !bytes.Equal(ref, got) {
				t.Fatal("nil-pool build differs from pooled builds")
			}
		})
	}
}

// TestHNSWSeedPinned: different seeds yield different graphs (the level
// draw actually depends on the seed), same seeds identical ones — i.e.
// construction is a pure function of (vectors, config, seed).
func TestHNSWSeedPinned(t *testing.T) {
	vecs := randomVectors(300, 8, 5)
	build := func(seed int64) []byte {
		h, err := NewHNSW(HNSWConfig{Metric: Euclidean, Seed: seed}, pool.New(4))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Add(vecs...); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b, c := build(1), build(1), build(2)
	if !bytes.Equal(a, b) {
		t.Error("same seed built different graphs")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds built identical graphs (levels not seed-driven?)")
	}
}

// TestHNSWSearchDeterministic: repeated identical queries return identical
// results (no map-iteration or scheduling dependence in the search path),
// at every precision tier — the re-rank path included.
func TestHNSWSearchDeterministic(t *testing.T) {
	vecs := randomVectors(400, 12, 13)
	q := randomVectors(1, 12, 99)[0]
	for _, prec := range allPrecisions {
		t.Run(prec.String(), func(t *testing.T) {
			h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 3, Precision: prec}, pool.New(8))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			first, err := h.Search(q, 20)
			if err != nil {
				t.Fatal(err)
			}
			for rep := 0; rep < 10; rep++ {
				got, err := h.Search(q, 20)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(first) {
					t.Fatalf("rep %d: %d results, want %d", rep, len(got), len(first))
				}
				for i := range got {
					if got[i] != first[i] {
						t.Fatalf("rep %d rank %d: %+v != %+v", rep, i, got[i], first[i])
					}
				}
			}
		})
	}
}
