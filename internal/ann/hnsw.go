package ann

import (
	"fmt"
	"io"
	"math"
	"sort"

	"github.com/gem-embeddings/gem/internal/pool"
)

// HNSWConfig parametrizes the HNSW graph index.
type HNSWConfig struct {
	// Metric is the distance the index answers queries under.
	Metric Metric
	// M is the maximum out-degree per node per layer above the base layer;
	// the base layer allows 2M. Default 16.
	M int
	// EfConstruction is the candidate-beam width used while inserting.
	// Larger builds a better graph, slower. Default 200.
	EfConstruction int
	// EfSearch is the default candidate-beam width of Search (raised to k
	// when k is larger). Larger is more accurate, slower. Default 100.
	EfSearch int
	// Seed pins node level assignment. Two indexes built from the same
	// vectors, config and seed are identical.
	Seed int64
	// BatchSize is the number of insertions whose candidate searches are
	// fanned out in parallel between sequential graph commits. It is part
	// of the index definition: changing BatchSize changes the built graph
	// (deterministically), changing the worker-pool width never does.
	// Default 64.
	BatchSize int
	// Precision selects the scan precision of the distance kernels
	// (default Float64). Like M and Seed it is part of the index
	// definition: construction scores candidates with the scan kernels, so
	// each precision builds its own (deterministic) graph. Searches at a
	// reduced precision re-rank their candidates in exact float64.
	Precision Precision
}

func (c *HNSWConfig) fillDefaults() {
	if c.M <= 0 {
		c.M = 16
	}
	if c.EfConstruction <= 0 {
		c.EfConstruction = 200
	}
	if c.EfSearch <= 0 {
		c.EfSearch = 100
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
}

// maxLevelCap bounds node levels so corrupt or adversarial level draws
// cannot allocate unbounded per-node layer slices.
const maxLevelCap = 30

// HNSW is a Hierarchical Navigable Small World graph index
// (Malkov & Yashunin). Construction is deterministic for a given
// (vectors, config, seed) triple at every worker-pool width: levels come
// from hashing (seed, id), insertions are committed sequentially in id
// order, and only the read-only candidate searches of each insertion batch
// run on the worker pool, against the graph frozen before the batch.
type HNSW struct {
	cfg  HNSWConfig
	pool *pool.Pool
	mL   float64 // level multiplier 1/ln(M)

	st     vecStore
	levels []int
	// links[id][lvl] lists the out-neighbours of id at layer lvl
	// (0 <= lvl <= levels[id]). Edges are created in both directions at
	// insertion, but degree pruning drops them one-sided (standard HNSW),
	// so the graph is directed and not necessarily symmetric.
	links  [][][]int32
	entry  int // id of the entry point, -1 while empty
	maxLvl int

	// deleted tombstones removed ids. The graph keeps tombstoned nodes as
	// routing waypoints (standard mark-delete HNSW); Search widens its beam
	// by the tombstone count (clamped, see widenEf) and filters them from
	// results, and Rebuild compacts them away deterministically.
	deleted  []bool
	nDeleted int
}

// NewHNSW returns an empty HNSW index. The pool bounds the parallelism of
// Add's candidate searches; nil runs them serially. The built graph is
// identical either way.
func NewHNSW(cfg HNSWConfig, p *pool.Pool) (*HNSW, error) {
	cfg.fillDefaults()
	if cfg.M < 2 {
		return nil, fmt.Errorf("%w: M = %d (need >= 2)", ErrInput, cfg.M)
	}
	if err := checkPrecision(cfg.Precision); err != nil {
		return nil, err
	}
	return &HNSW{
		cfg:   cfg,
		pool:  p,
		mL:    1 / math.Log(float64(cfg.M)),
		st:    newVecStore(cfg.Metric, cfg.Precision),
		entry: -1,
	}, nil
}

// Config returns the effective (default-filled) configuration.
func (h *HNSW) Config() HNSWConfig { return h.cfg }

// SetEfSearch overrides the search beam width. Unlike M, EfConstruction
// and Seed — which are baked into the graph at build time — EfSearch is a
// pure query-time knob, so it may be changed at any point, including on a
// loaded index. Values < 1 are ignored.
func (h *HNSW) SetEfSearch(ef int) {
	if ef > 0 {
		h.cfg.EfSearch = ef
	}
}

// Len implements Index.
func (h *HNSW) Len() int { return h.st.len() }

// Live implements Index.
func (h *HNSW) Live() int { return h.st.len() - h.nDeleted }

// Dim implements Index.
func (h *HNSW) Dim() int { return h.st.dim }

// Precision implements Index.
func (h *HNSW) Precision() Precision { return h.st.prec }

// Remove implements Index. The node stays in the graph as a routing
// waypoint — unlinking it would degrade the neighbourhoods of every node it
// connects — but it stops appearing in Search results. Rebuild reclaims the
// space once tombstones accumulate.
func (h *HNSW) Remove(id int) error {
	if err := checkRemove(h.deleted, id); err != nil {
		return err
	}
	h.deleted[id] = true
	h.nDeleted++
	return nil
}

// Rebuild implements Index: the surviving vectors are re-inserted in id
// order into a fresh graph under the same configuration and pool, so the
// result is byte-identical to a fresh HNSW built from the survivors — the
// same determinism contract as the batched build, at every pool width.
func (h *HNSW) Rebuild() ([]int, error) {
	mapping, live := liveMapping(h.st.vecs, h.deleted)
	nh, err := NewHNSW(h.cfg, h.pool)
	if err != nil {
		return nil, err
	}
	if err := nh.Add(live...); err != nil {
		return nil, err
	}
	*h = *nh
	return mapping, nil
}

// Metric implements Index.
func (h *HNSW) Metric() Metric { return h.cfg.Metric }

// Save implements Index; see persist.go for the format.
func (h *HNSW) Save(w io.Writer) error { return saveHNSW(w, h) }

// levelFor draws node id's level from a splitmix64 hash of (seed, id), so
// levels depend only on the seed and the insertion position — never on
// scheduling or batch boundaries.
func (h *HNSW) levelFor(id int) int {
	x := uint64(h.cfg.Seed)*0x9E3779B97F4A7C15 + uint64(id) + 1
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	// Uniform in (0, 1], never 0, so the log is finite.
	u := (float64(x>>11) + 1) / (1 << 53)
	l := int(-math.Log(u) * h.mL)
	if l > maxLevelCap {
		l = maxLevelCap
	}
	return l
}

// maxM returns the out-degree cap of a layer.
func (h *HNSW) maxM(lvl int) int {
	if lvl == 0 {
		return 2 * h.cfg.M
	}
	return h.cfg.M
}

// distIDs returns the scan-precision distance between two stored vectors
// — construction scores candidates with the same kernels a search scans
// with, so the graph is a pure function of (vectors, config, seed) per
// precision tier.
func (h *HNSW) distIDs(a, b int32) float64 {
	sq := h.st.queryOf(int(a))
	return h.st.scanDist(&sq, int(b))
}

// distQ returns the scan-precision distance from a prepared query to a
// stored vector.
func (h *HNSW) distQ(q *scanQuery, id int32) float64 {
	return h.st.scanDist(q, int(id))
}

// cand is a candidate neighbour during construction and search.
type cand struct {
	id   int32
	dist float64
}

// candBefore is the total order on candidates: nearer first, ties broken
// by lower id. Every heap, sort and greedy step uses it, which is what
// makes search deterministic on corpora with duplicate columns
// (distance-0 ties are common there).
func candBefore(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// candHeap is a binary heap of candidates. min selects nearest-first
// (candidate frontier) or farthest-first (bounded result set) order.
type candHeap struct {
	items []cand
	min   bool
}

func (ch *candHeap) before(a, b cand) bool {
	if ch.min {
		return candBefore(a, b)
	}
	return candBefore(b, a)
}

func (ch *candHeap) len() int   { return len(ch.items) }
func (ch *candHeap) peek() cand { return ch.items[0] }

func (ch *candHeap) push(c cand) {
	ch.items = append(ch.items, c)
	i := len(ch.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !ch.before(ch.items[i], ch.items[p]) {
			break
		}
		ch.items[i], ch.items[p] = ch.items[p], ch.items[i]
		i = p
	}
}

func (ch *candHeap) pop() cand {
	top := ch.items[0]
	last := len(ch.items) - 1
	ch.items[0] = ch.items[last]
	ch.items = ch.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < last && ch.before(ch.items[l], ch.items[best]) {
			best = l
		}
		if r < last && ch.before(ch.items[r], ch.items[best]) {
			best = r
		}
		if best == i {
			break
		}
		ch.items[i], ch.items[best] = ch.items[best], ch.items[i]
		i = best
	}
	return top
}

// greedyStep walks layer lvl greedily from cur towards q until no
// neighbour improves, and returns the local minimum.
func (h *HNSW) greedyStep(q *scanQuery, cur cand, lvl int) cand {
	for {
		improved := false
		for _, nb := range h.links[cur.id][lvl] {
			c := cand{id: nb, dist: h.distQ(q, nb)}
			if candBefore(c, cur) {
				cur = c
				improved = true
			}
		}
		if !improved {
			return cur
		}
	}
}

// searchLayer is the beam search of HNSW (Algorithm 2): starting from eps,
// it keeps the ef nearest visited nodes of layer lvl and expands the
// nearest unexpanded candidate until no candidate can improve the result
// set. visited must be a caller-owned scratch slice of at least Len()
// false values; it is left dirty. The construction path calls this
// allocating wrapper once per (insertion, layer) — each layer's result is
// retained as the next layer's entry points — while the query path goes
// through searchLayerInto with fully reused scratch.
func (h *HNSW) searchLayer(q *scanQuery, eps []cand, ef, lvl int, visited []bool) []cand {
	var frontier, results candHeap
	var out []cand
	var cs candSorter
	return h.searchLayerInto(q, eps, ef, lvl, visited, &frontier, &results, &out, &cs)
}

// searchLayerInto is searchLayer with every buffer caller-provided: the two
// beam heaps, the (sorted) output slice and the sorter scratch are reset
// and reused, so a steady-state call allocates nothing. The returned slice
// aliases *out.
func (h *HNSW) searchLayerInto(q *scanQuery, eps []cand, ef, lvl int, visited []bool,
	frontier, results *candHeap, out *[]cand, cs *candSorter) []cand {
	frontier.reset(true)
	results.reset(false)
	for _, e := range eps {
		if visited[e.id] {
			continue
		}
		visited[e.id] = true
		frontier.push(e)
		results.push(e)
	}
	for results.len() > ef {
		results.pop()
	}
	for frontier.len() > 0 {
		c := frontier.pop()
		if results.len() >= ef && candBefore(results.peek(), c) {
			break
		}
		for _, nb := range h.links[c.id][lvl] {
			if visited[nb] {
				continue
			}
			visited[nb] = true
			d := cand{id: nb, dist: h.distQ(q, nb)}
			if results.len() < ef || candBefore(d, results.peek()) {
				frontier.push(d)
				results.push(d)
				if results.len() > ef {
					results.pop()
				}
			}
		}
	}
	*out = grow(*out, len(results.items))
	copy(*out, results.items)
	cs.sort(*out)
	return *out
}

// selectNeighbors is the diversity heuristic of HNSW (Algorithm 4): scan
// candidates nearest-first and keep one only if it is closer to the base
// vector than to every already-kept neighbour, up to m. cands must carry
// distances to base; it is sorted in place.
func (h *HNSW) selectNeighbors(cands []cand, m int) []cand {
	sort.Slice(cands, func(i, j int) bool { return candBefore(cands[i], cands[j]) })
	kept := make([]cand, 0, m)
	for _, c := range cands {
		if len(kept) == m {
			break
		}
		good := true
		for _, r := range kept {
			if h.distIDs(c.id, r.id) < c.dist {
				good = false
				break
			}
		}
		if good {
			kept = append(kept, c)
		}
	}
	return kept
}

// Add implements Index. Insertions are processed in fixed-size batches:
// each batch first runs every member's candidate search in parallel on the
// worker pool against the graph as it stood before the batch, then commits
// the members sequentially in id order (linking them to the snapshot
// candidates plus the batch members already committed). Graph state
// therefore never depends on the pool width, only on the insertion order,
// config and seed.
func (h *HNSW) Add(vecs ...[]float64) error {
	dim, err := checkAdd(h.st.dim, h.st.len(), vecs)
	if err != nil {
		return err
	}
	start := h.st.len()
	h.st.add(dim, vecs)
	for i := range vecs {
		id := start + i
		lvl := h.levelFor(id)
		h.levels = append(h.levels, lvl)
		h.links = append(h.links, make([][]int32, lvl+1))
		h.deleted = append(h.deleted, false)
	}
	for bs := start; bs < h.st.len(); bs += h.cfg.BatchSize {
		be := bs + h.cfg.BatchSize
		if be > h.st.len() {
			be = h.st.len()
		}
		h.insertBatch(bs, be)
	}
	return nil
}

// insertBatch inserts ids [bs, be): parallel candidate search against the
// pre-batch graph, then sequential commits.
func (h *HNSW) insertBatch(bs, be int) {
	// Phase 1: per-member beam searches, read-only on the pre-batch graph.
	// snapEntry/snapMax freeze the descent start so a commit that raises
	// the entry point cannot leak into a sibling's search.
	snapEntry, snapMax := h.entry, h.maxLvl
	cands := make([][][]cand, be-bs)
	if snapEntry >= 0 {
		// Pool.For distributes ids dynamically, but each id writes only its
		// own cands slot, so the collected candidates are order-independent.
		_ = h.pool.For(be-bs, func(i int) error {
			id := bs + i
			q, lvl := h.st.queryOf(id), h.levels[id]
			cur := cand{id: int32(snapEntry), dist: h.distQ(&q, int32(snapEntry))}
			for l := snapMax; l > lvl; l-- {
				cur = h.greedyStep(&q, cur, l)
			}
			top := lvl
			if snapMax < top {
				top = snapMax
			}
			perLvl := make([][]cand, top+1)
			visited := make([]bool, bs)
			eps := []cand{cur}
			for l := top; l >= 0; l-- {
				for v := range visited {
					visited[v] = false
				}
				res := h.searchLayer(&q, eps, h.cfg.EfConstruction, l, visited)
				perLvl[l] = res
				eps = res
			}
			cands[i] = perLvl
			return nil
		})
	}
	// Phase 2: sequential commits in id order.
	for id := bs; id < be; id++ {
		h.commit(id, bs, cands[id-bs])
	}
}

// commit links node id into the graph: its candidates are the snapshot
// beam-search results plus every batch sibling already committed, selected
// by the diversity heuristic per layer, with symmetric links and degree
// pruning. Runs strictly sequentially in id order.
func (h *HNSW) commit(id, bs int, perLvl [][]cand) {
	lvl := h.levels[id]
	if h.entry < 0 {
		h.entry, h.maxLvl = id, lvl
		return
	}
	// Distances to already-committed batch siblings, computed once and
	// reused on every layer both share.
	sibs := make([]cand, 0, id-bs)
	for j := bs; j < id; j++ {
		sibs = append(sibs, cand{id: int32(j), dist: h.distIDs(int32(id), int32(j))})
	}
	for l := lvl; l >= 0; l-- {
		var merged []cand
		if l < len(perLvl) {
			merged = append(merged, perLvl[l]...)
		}
		for _, s := range sibs {
			if h.levels[s.id] >= l {
				merged = append(merged, s)
			}
		}
		if len(merged) == 0 {
			continue
		}
		sel := h.selectNeighbors(merged, h.cfg.M)
		nbs := make([]int32, len(sel))
		for k, c := range sel {
			nbs[k] = c.id
		}
		h.links[id][l] = nbs
		for _, c := range sel {
			h.links[c.id][l] = append(h.links[c.id][l], int32(id))
			if limit := h.maxM(l); len(h.links[c.id][l]) > limit {
				h.prune(c.id, l, limit)
			}
		}
	}
	if lvl > h.maxLvl {
		h.entry, h.maxLvl = id, lvl
	}
}

// prune re-selects node id's layer-l neighbours down to limit with the
// same diversity heuristic used at insertion.
func (h *HNSW) prune(id int32, l, limit int) {
	old := h.links[id][l]
	cands := make([]cand, len(old))
	for i, nb := range old {
		cands[i] = cand{id: nb, dist: h.distIDs(id, nb)}
	}
	sel := h.selectNeighbors(cands, limit)
	nbs := make([]int32, len(sel))
	for i, c := range sel {
		nbs[i] = c.id
	}
	h.links[id][l] = nbs
}

// widenEf widens a search beam to absorb tombstoned candidates: dead
// nodes still route and occupy beam slots, so without widening a churned
// index would return fewer (or worse) live results. The widening is
// clamped at twice the base beam — a bound on the quality degradation a
// tombstone pile can cause — so the total beam never exceeds 3×base and
// unbounded churn without compaction cannot degrade Search to a
// near-brute-force scan of the whole graph.
func widenEf(base, nDeleted int) int {
	w := nDeleted
	if w > 2*base {
		w = 2 * base
	}
	return base + w
}

// searchInto implements searcherIndex; see Search for semantics.
func (h *HNSW) searchInto(sc *scratch, q []float64, k int) ([]Result, error) {
	if err := checkQuery(h.st.dim, q, k); err != nil {
		return nil, err
	}
	if k > h.Live() {
		k = h.Live()
	}
	if k == 0 || h.entry < 0 {
		return nil, nil
	}
	sq := h.st.queryInto(sc, q)
	cur := cand{id: int32(h.entry), dist: h.distQ(sq, int32(h.entry))}
	for l := h.maxLvl; l >= 1; l-- {
		cur = h.greedyStep(sq, cur, l)
	}
	base := h.cfg.EfSearch
	if k > base {
		base = k
	}
	ef := widenEf(base, h.nDeleted)
	sc.visited = grow(sc.visited, h.st.len())
	for i := range sc.visited {
		sc.visited[i] = false
	}
	sc.eps[0] = cur
	res := h.searchLayerInto(sq, sc.eps[:], ef, 0, sc.visited,
		&sc.frontier, &sc.results, &sc.layer, &sc.csort)
	if h.st.prec == Float64 {
		sc.out = sc.out[:0]
		for _, c := range res {
			if h.deleted[c.id] {
				continue
			}
			sc.out = append(sc.out, Result{ID: int(c.id), Dist: c.dist})
			if len(sc.out) == k {
				break
			}
		}
		return sc.out, nil
	}
	// Reduced precision: collect the nearest live scan candidates up to the
	// re-rank depth, then re-score them exactly.
	depth := rerankDepth(k)
	sc.cands = sc.cands[:0]
	for _, c := range res {
		if h.deleted[c.id] {
			continue
		}
		sc.cands = append(sc.cands, Result{ID: int(c.id), Dist: c.dist})
		if len(sc.cands) == depth {
			break
		}
	}
	out := h.st.rerank(sq, sc.cands, &sc.rsort)
	if len(out) > k {
		out = out[:k:k]
	}
	return out, nil
}

// Search implements Index: greedy descent from the entry point through the
// upper layers, then a beam search of the base layer with
// ef = max(EfSearch, k) widened by the tombstone count (clamped, see
// widenEf). Tombstoned nodes route but never appear in the result. At a
// reduced precision the beam runs on the scan kernels and the surviving
// candidates are re-scored in exact float64, so the returned distances are
// the exact metric distances in every mode. The returned slice is
// caller-owned; hot loops that want the allocation-free variant should
// hold a Searcher.
func (h *HNSW) Search(q []float64, k int) ([]Result, error) {
	return searchOne(h, q, k)
}

// SearchBatch implements Index: it answers every query of the batch in one
// call, fanning contiguous query chunks out on the construction pool with
// one reusable scratch per worker. Output is bit-identical to calling
// Search per query, at every pool width.
func (h *HNSW) SearchBatch(qs [][]float64, k int) ([][]Result, error) {
	return searchBatchOver(h, qs, k)
}

// SetPool replaces the worker pool Add and SearchBatch fan out on. Like
// the pool passed to NewHNSW it is a pure throughput knob — the graph and
// every search result are bit-identical at every width; nil means serial.
func (h *HNSW) SetPool(p *pool.Pool) { h.pool = p }

// searchPool implements searcherIndex.
func (h *HNSW) searchPool() *pool.Pool { return h.pool }
