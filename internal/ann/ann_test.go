package ann

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestMetricDistance(t *testing.T) {
	a := []float64{1, 0, 0}
	b := []float64{0, 1, 0}
	c := []float64{2, 0, 0}
	zero := []float64{0, 0, 0}

	if d := Cosine.Distance(a, b); math.Abs(d-1) > 1e-15 {
		t.Errorf("cosine distance of orthogonal vectors = %v, want 1", d)
	}
	if d := Cosine.Distance(a, c); math.Abs(d) > 1e-15 {
		t.Errorf("cosine distance of parallel vectors = %v, want 0", d)
	}
	if d := Cosine.Distance(a, zero); d != 1 {
		t.Errorf("cosine distance to zero vector = %v, want 1 (similarity 0)", d)
	}
	if d := Euclidean.Distance(a, c); math.Abs(d-1) > 1e-15 {
		t.Errorf("euclidean distance = %v, want 1", d)
	}
	if s := CosineSimilarity(zero, zero); s != 0 {
		t.Errorf("cosine similarity of zero vectors = %v, want 0", s)
	}
}

func TestParseMetric(t *testing.T) {
	for spec, want := range map[string]Metric{"cosine": Cosine, "cos": Cosine, "l2": Euclidean, "euclidean": Euclidean} {
		got, err := ParseMetric(spec)
		if err != nil || got != want {
			t.Errorf("ParseMetric(%q) = %v, %v; want %v", spec, got, err, want)
		}
	}
	if _, err := ParseMetric("manhattan"); !errors.Is(err, ErrInput) {
		t.Errorf("ParseMetric(manhattan) err = %v, want ErrInput", err)
	}
	if Cosine.String() != "cosine" || Euclidean.String() != "l2" {
		t.Errorf("metric String() mismatch: %q, %q", Cosine.String(), Euclidean.String())
	}
}

func TestFlatSearchExact(t *testing.T) {
	f := NewFlat(Euclidean)
	vecs := [][]float64{{0, 0}, {1, 0}, {3, 0}, {0, 2}}
	if err := f.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	res, err := f.Search([]float64{0.9, 0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 || res[0].ID != 1 || res[1].ID != 0 {
		t.Fatalf("Search = %+v, want ids [1 0]", res)
	}
	if math.Abs(res[0].Dist-0.1) > 1e-12 {
		t.Errorf("nearest dist = %v, want 0.1", res[0].Dist)
	}
}

func TestFlatTieBreakByID(t *testing.T) {
	f := NewFlat(Euclidean)
	// Duplicate vectors: ties must resolve to lower ids, in order.
	if err := f.Add([]float64{5}, []float64{5}, []float64{5}, []float64{1}); err != nil {
		t.Fatal(err)
	}
	res, err := f.Search([]float64{5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2} {
		if res[i].ID != want {
			t.Fatalf("tie-broken ids = %v, want [0 1 2]", res)
		}
	}
}

// TestSearchKValidation pins the k contract on every index kind: any
// negative k is ErrInput with the offending value named (so HTTP layers
// can map it to 400 verbatim), k = 0 is an empty answer, and positive k
// truncates to the live size. A request must never panic or silently
// clamp a negative k to something positive.
func TestSearchKValidation(t *testing.T) {
	for name, idx := range testIndexes(t, Euclidean) {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add([]float64{1, 2}, []float64{3, 4}, []float64{5, 6}); err != nil {
				t.Fatal(err)
			}
			q := []float64{1, 2}
			for _, tc := range []struct {
				k       int
				wantErr bool
				wantLen int
			}{
				{k: -1, wantErr: true},
				{k: -10, wantErr: true},
				{k: math.MinInt, wantErr: true},
				{k: 0, wantLen: 0},
				{k: 2, wantLen: 2},
				{k: 100, wantLen: 3},
			} {
				res, err := idx.Search(q, tc.k)
				if tc.wantErr {
					if !errors.Is(err, ErrInput) {
						t.Errorf("Search(k=%d) err = %v, want ErrInput", tc.k, err)
					}
					if res != nil {
						t.Errorf("Search(k=%d) returned results alongside the error", tc.k)
					}
					if !strings.Contains(err.Error(), fmt.Sprintf("k = %d", tc.k)) {
						t.Errorf("Search(k=%d) error does not name the value: %v", tc.k, err)
					}
					continue
				}
				if err != nil || len(res) != tc.wantLen {
					t.Errorf("Search(k=%d) = %d results, %v; want %d", tc.k, len(res), err, tc.wantLen)
				}
			}
		})
	}
}

func TestIndexInputValidation(t *testing.T) {
	for name, idx := range testIndexes(t, Euclidean) {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add([]float64{1, 2}); err != nil {
				t.Fatal(err)
			}
			if err := idx.Add([]float64{1, 2, 3}); !errors.Is(err, ErrInput) {
				t.Errorf("dim-mismatched Add err = %v, want ErrInput", err)
			}
			if err := idx.Add([]float64{}); !errors.Is(err, ErrInput) {
				t.Errorf("empty-vector Add err = %v, want ErrInput", err)
			}
			if err := idx.Add([]float64{math.NaN(), 0}); !errors.Is(err, ErrInput) {
				t.Errorf("NaN Add err = %v, want ErrInput", err)
			}
			if _, err := idx.Search([]float64{1}, 1); !errors.Is(err, ErrInput) {
				t.Errorf("dim-mismatched Search err = %v, want ErrInput", err)
			}
			if _, err := idx.Search([]float64{math.NaN(), 0}, 1); !errors.Is(err, ErrInput) {
				t.Errorf("NaN Search err = %v, want ErrInput", err)
			}
			if _, err := idx.Search([]float64{math.Inf(1), 0}, 1); !errors.Is(err, ErrInput) {
				t.Errorf("Inf Search err = %v, want ErrInput", err)
			}
			if _, err := idx.Search([]float64{1, 2}, -1); !errors.Is(err, ErrInput) {
				t.Errorf("negative-k Search err = %v, want ErrInput", err)
			}
			if res, err := idx.Search([]float64{1, 2}, 0); err != nil || len(res) != 0 {
				t.Errorf("k=0 Search = %v, %v; want empty", res, err)
			}
			// k beyond Len truncates.
			res, err := idx.Search([]float64{1, 2}, 10)
			if err != nil || len(res) != 1 {
				t.Errorf("k>Len Search = %v, %v; want 1 hit", res, err)
			}
		})
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	for name, idx := range testIndexes(t, Cosine) {
		t.Run(name, func(t *testing.T) {
			res, err := idx.Search([]float64{1, 2}, 5)
			if err != nil || res != nil {
				t.Errorf("empty-index Search = %v, %v; want nil, nil", res, err)
			}
			if idx.Len() != 0 || idx.Dim() != 0 || idx.Metric() != Cosine {
				t.Errorf("empty index state: len %d dim %d metric %v", idx.Len(), idx.Dim(), idx.Metric())
			}
		})
	}
}

// testIndexes returns one empty index per implementation, keyed by name.
func testIndexes(t *testing.T, m Metric) map[string]Index {
	t.Helper()
	h, err := NewHNSW(HNSWConfig{Metric: m, Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Index{"flat": NewFlat(m), "hnsw": h}
}

// randomVectors draws n clustered vectors of width dim: a seeded mixture
// of gaussian bumps, which resembles embedding geometry far better than
// i.i.d. uniform noise.
func randomVectors(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	nClusters := 12
	centers := make([][]float64, nClusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for j := range centers[c] {
			centers[c][j] = rng.NormFloat64() * 3
		}
	}
	out := make([][]float64, n)
	for i := range out {
		c := centers[rng.Intn(nClusters)]
		v := make([]float64, dim)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.5
		}
		out[i] = v
	}
	return out
}

// recallAt compares two result lists by id overlap.
func recallAt(exact, approx []Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	got := make(map[int]bool, len(approx))
	for _, r := range approx {
		got[r.ID] = true
	}
	hit := 0
	for _, r := range exact {
		if got[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}
