package ann

import (
	"sort"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// fullSortSearch is the historical float64 Flat search: materialize every
// live distance, fully sort by (distance, id), truncate to k. The bounded
// farthest-first heap that replaced it must reproduce this result for
// result, ties included.
func fullSortSearch(f *Flat, q []float64, k int) []Result {
	sq := f.st.query(q)
	out := make([]Result, 0, f.Live())
	for i := range f.st.vecs {
		if f.deleted[i] {
			continue
		}
		out = append(out, Result{ID: i, Dist: f.st.scanDist(&sq, i)})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Dist != out[b].Dist {
			return out[a].Dist < out[b].Dist
		}
		return out[a].ID < out[b].ID
	})
	if k > len(out) {
		k = len(out)
	}
	return out[:k:k]
}

// sameResults compares two result lists for exact (bit-level) equality.
func sameResults(t *testing.T, label string, got, want []Result) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestFlatFloat64TopKMatchesFullSort pins the bounded-heap float64 scan
// against the full-sort reference. Duplicate stored vectors force exact
// distance ties, so the (distance, id) tie-break order is exercised, and a
// tombstone stripe checks the heap honors deletions like the sort did.
func TestFlatFloat64TopKMatchesFullSort(t *testing.T) {
	base := randomVectors(150, 8, 7)
	vecs := append([][]float64{}, base...)
	for _, v := range base[:50] { // exact duplicates → tied distances
		vecs = append(vecs, append([]float64(nil), v...))
	}
	queries := randomVectors(20, 8, 99)
	queries = append(queries, vecs[3], vecs[170]) // zero-distance ties
	for _, metric := range []Metric{Euclidean, Cosine} {
		t.Run(metric.String(), func(t *testing.T) {
			f := NewFlat(metric)
			if err := f.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			for id := 0; id < len(vecs); id += 7 {
				if err := f.Remove(id); err != nil {
					t.Fatal(err)
				}
			}
			for _, k := range []int{1, 3, 10, 37, len(vecs)} {
				for qi, q := range queries {
					got, err := f.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, metric.String(), got, fullSortSearch(f, q, k))
					_ = qi
				}
			}
		})
	}
}

// setIndexPool installs a SearchBatch fan-out pool on either index kind.
func setIndexPool(t *testing.T, idx Index, p *pool.Pool) {
	t.Helper()
	switch v := idx.(type) {
	case *Flat:
		v.SetPool(p)
	case *HNSW:
		v.SetPool(p)
	default:
		t.Fatalf("unknown index type %T", idx)
	}
}

// TestSearchBatchMatchesLoopedSearch is the batching determinism pin:
// Index.SearchBatch must be bit-identical to a sequential loop of Search
// calls at every pool width (nil/1/2/8), for both index kinds at every
// precision tier, on a tombstone-heavy index.
func TestSearchBatchMatchesLoopedSearch(t *testing.T) {
	vecs := randomVectors(300, 10, 11)
	queries := randomVectors(37, 10, 55)
	const k = 9
	for _, prec := range allPrecisions {
		for _, kind := range []string{"flat", "hnsw"} {
			t.Run(kind+"/"+prec.String(), func(t *testing.T) {
				var idx Index
				switch kind {
				case "flat":
					f, err := NewFlatAt(Cosine, prec)
					if err != nil {
						t.Fatal(err)
					}
					idx = f
				case "hnsw":
					h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 9, Precision: prec}, pool.New(2))
					if err != nil {
						t.Fatal(err)
					}
					idx = h
				}
				if err := idx.Add(vecs...); err != nil {
					t.Fatal(err)
				}
				for id := 0; id < len(vecs); id += 2 { // tombstone-heavy: half the slots
					if err := idx.Remove(id); err != nil {
						t.Fatal(err)
					}
				}
				want := make([][]Result, len(queries))
				for i, q := range queries {
					var err error
					if want[i], err = idx.Search(q, k); err != nil {
						t.Fatal(err)
					}
				}
				pools := map[string]*pool.Pool{
					"nil": nil, "w1": pool.New(1), "w2": pool.New(2), "w8": pool.New(8),
				}
				for name, p := range pools {
					setIndexPool(t, idx, p)
					got, err := idx.SearchBatch(queries, k)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("%s: %d batches, want %d", name, len(got), len(want))
					}
					for i := range got {
						sameResults(t, name, got[i], want[i])
					}
				}
			})
		}
	}
}

// TestSearchBatchEdgeCases: empty batches are nil, and the error of the
// lowest-indexed failing query is the one reported at every pool width.
func TestSearchBatchEdgeCases(t *testing.T) {
	f := NewFlat(Euclidean)
	if err := f.Add(randomVectors(20, 4, 1)...); err != nil {
		t.Fatal(err)
	}
	if got, err := f.SearchBatch(nil, 3); err != nil || got != nil {
		t.Fatalf("empty batch: got %v, %v", got, err)
	}
	qs := randomVectors(6, 4, 2)
	qs[1] = []float64{1, 2}    // wrong dim: first failure
	qs[4] = []float64{1, 2, 3} // wrong dim too, but later
	wantErr := func(p *pool.Pool) {
		f.SetPool(p)
		_, err := f.SearchBatch(qs, 3)
		if err == nil {
			t.Fatal("expected a dimension error")
		}
		_, lowest := f.Search(qs[1], 3)
		if err.Error() != lowest.Error() {
			t.Fatalf("got %q, want the lowest-indexed query's error %q", err, lowest)
		}
	}
	wantErr(nil)
	wantErr(pool.New(8))
}

// TestSearcherMatchesIndexSearch: the scratch-backed Searcher answers
// exactly like the copying Index.Search, query after query on the same
// reused scratch, for both kinds at every precision.
func TestSearcherMatchesIndexSearch(t *testing.T) {
	vecs := randomVectors(250, 12, 31)
	queries := randomVectors(30, 12, 77)
	const k = 12
	for _, prec := range allPrecisions {
		for _, kind := range []string{"flat", "hnsw"} {
			t.Run(kind+"/"+prec.String(), func(t *testing.T) {
				var idx Index
				switch kind {
				case "flat":
					f, err := NewFlatAt(Euclidean, prec)
					if err != nil {
						t.Fatal(err)
					}
					idx = f
				case "hnsw":
					h, err := NewHNSW(HNSWConfig{Metric: Euclidean, Seed: 4, Precision: prec}, pool.New(2))
					if err != nil {
						t.Fatal(err)
					}
					idx = h
				}
				if err := idx.Add(vecs...); err != nil {
					t.Fatal(err)
				}
				s, err := NewSearcher(idx)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range queries {
					want, err := idx.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					got, err := s.Search(q, k)
					if err != nil {
						t.Fatal(err)
					}
					sameResults(t, "searcher", got, want)
				}
				want, err := idx.SearchBatch(queries, k)
				if err != nil {
					t.Fatal(err)
				}
				got, err := s.SearchBatch(queries, k)
				if err != nil {
					t.Fatal(err)
				}
				for i := range got {
					sameResults(t, "searcher batch", got[i], want[i])
				}
			})
		}
	}
}

// TestSearcherZeroAllocFlat is the hot-path memory contract: steady-state
// Search and SearchBatch through a Searcher over a Flat index allocate
// nothing, at all three precisions.
func TestSearcherZeroAllocFlat(t *testing.T) {
	vecs := randomVectors(400, 16, 3)
	qs := randomVectors(8, 16, 71)
	for _, prec := range allPrecisions {
		t.Run(prec.String(), func(t *testing.T) {
			f, err := NewFlatAt(Cosine, prec)
			if err != nil {
				t.Fatal(err)
			}
			if err := f.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			s, err := NewSearcher(f)
			if err != nil {
				t.Fatal(err)
			}
			// Warm: first calls size the scratch buffers.
			for _, q := range qs {
				if _, err := s.Search(q, 10); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := s.SearchBatch(qs, 10); err != nil {
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, err := s.Search(qs[0], 10); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("Searcher.Search allocates %.1f per op, want 0", allocs)
			}
			if allocs := testing.AllocsPerRun(50, func() {
				if _, err := s.SearchBatch(qs, 10); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("Searcher.SearchBatch allocates %.1f per op, want 0", allocs)
			}
		})
	}
}
