package ann

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// removeEvery tombstones every step-th id and returns the removed set.
func removeEvery(t *testing.T, idx Index, step int) map[int]bool {
	t.Helper()
	removed := make(map[int]bool)
	for id := 0; id < idx.Len(); id += step {
		if err := idx.Remove(id); err != nil {
			t.Fatalf("remove %d: %v", id, err)
		}
		removed[id] = true
	}
	return removed
}

// TestRemoveBasics: tombstone bookkeeping and input validation, for both
// index kinds.
func TestRemoveBasics(t *testing.T) {
	vecs := randomVectors(60, 8, 3)
	h, err := NewHNSW(HNSWConfig{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, idx := range map[string]Index{"flat": NewFlat(Cosine), "hnsw": h} {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			if idx.Live() != 60 || idx.Len() != 60 {
				t.Fatalf("live %d / len %d, want 60/60", idx.Live(), idx.Len())
			}
			if err := idx.Remove(-1); !errors.Is(err, ErrInput) {
				t.Errorf("remove -1: %v", err)
			}
			if err := idx.Remove(60); !errors.Is(err, ErrInput) {
				t.Errorf("remove 60: %v", err)
			}
			if err := idx.Remove(7); err != nil {
				t.Fatal(err)
			}
			if err := idx.Remove(7); !errors.Is(err, ErrInput) {
				t.Errorf("double remove: %v", err)
			}
			if idx.Live() != 59 || idx.Len() != 60 {
				t.Fatalf("after remove: live %d / len %d, want 59/60", idx.Live(), idx.Len())
			}
			// The removed id never appears, even when k asks for everything.
			res, err := idx.Search(vecs[7], idx.Len())
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 59 {
				t.Fatalf("got %d results, want 59", len(res))
			}
			for _, r := range res {
				if r.ID == 7 {
					t.Fatal("tombstoned id 7 appeared in results")
				}
			}
		})
	}
}

// TestRemoveRebuildMatchesFreshBuild pins the acceptance criterion: an
// index that has seen N inserts and M removes, then a compaction, is
// byte-identical to a fresh build of the surviving vectors — at every
// worker-pool width.
func TestRemoveRebuildMatchesFreshBuild(t *testing.T) {
	vecs := randomVectors(300, 10, 11)
	cfg := HNSWConfig{Metric: Cosine, Seed: 5, M: 8, EfConstruction: 60, BatchSize: 32}
	for _, workers := range []int{1, 2, 8} {
		p := pool.New(workers)

		churned, err := NewHNSW(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		// Interleave adds and removes: two insert waves with removes between.
		if err := churned.Add(vecs[:200]...); err != nil {
			t.Fatal(err)
		}
		removed := removeEvery(t, churned, 5)
		if err := churned.Add(vecs[200:]...); err != nil {
			t.Fatal(err)
		}
		mapping, err := churned.Rebuild()
		if err != nil {
			t.Fatal(err)
		}

		var survivors [][]float64
		for id, v := range vecs {
			if !removed[id] {
				survivors = append(survivors, v)
			}
		}
		fresh, err := NewHNSW(cfg, p)
		if err != nil {
			t.Fatal(err)
		}
		if err := fresh.Add(survivors...); err != nil {
			t.Fatal(err)
		}

		var got, want bytes.Buffer
		if err := churned.Save(&got); err != nil {
			t.Fatal(err)
		}
		if err := fresh.Save(&want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Bytes(), want.Bytes()) {
			t.Fatalf("workers=%d: rebuilt index differs from fresh build of survivors", workers)
		}

		// The mapping is dense over survivors and -1 on the removed.
		next := 0
		for id := range vecs {
			switch {
			case removed[id] && mapping[id] != -1:
				t.Fatalf("workers=%d: removed id %d mapped to %d", workers, id, mapping[id])
			case !removed[id]:
				if mapping[id] != next {
					t.Fatalf("workers=%d: id %d mapped to %d, want %d", workers, id, mapping[id], next)
				}
				next++
			}
		}
	}
}

// TestRebuildByteIdenticalAcrossWorkers: one churn history, rebuilt under
// pools of different widths, yields one graph.
func TestRebuildByteIdenticalAcrossWorkers(t *testing.T) {
	vecs := randomVectors(250, 8, 21)
	cfg := HNSWConfig{Seed: 9, M: 8, EfConstruction: 50, BatchSize: 16}
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		h, err := NewHNSW(cfg, pool.New(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Add(vecs...); err != nil {
			t.Fatal(err)
		}
		removeEvery(t, h, 3)
		if _, err := h.Rebuild(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("workers=%d: rebuild not byte-identical to workers=1", workers)
		}
	}
}

// TestTombstoneSearchExactAgainstFlat: with the beam wider than the
// catalog the HNSW base-layer search is exhaustive, so its filtered
// results must equal the exact scan's under the same tombstone set.
func TestTombstoneSearchExactAgainstFlat(t *testing.T) {
	vecs := randomVectors(120, 6, 31)
	qs := randomVectors(25, 6, 32)
	h, err := NewHNSW(HNSWConfig{Seed: 2, EfSearch: 512}, nil)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(Cosine)
	for _, idx := range []Index{flat, h} {
		if err := idx.Add(vecs...); err != nil {
			t.Fatal(err)
		}
		removeEvery(t, idx, 4)
	}
	for qi, q := range qs {
		want, err := flat.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Search(q, 10)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d vs %d results", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d rank %d: hnsw %+v, flat %+v", qi, i, got[i], want[i])
			}
		}
	}
}

// TestPersistTombstonesRoundTrip: a save/load mid-churn preserves the
// tombstone set — searches stay bit-identical and a rebuild of the loaded
// index still matches a fresh build of the survivors.
func TestPersistTombstonesRoundTrip(t *testing.T) {
	vecs := randomVectors(150, 7, 41)
	qs := randomVectors(20, 7, 42)
	h, err := NewHNSW(HNSWConfig{Seed: 3, M: 6, EfConstruction: 60}, nil)
	if err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(Euclidean)
	for name, idx := range map[string]Index{"flat": flat, "hnsw": h} {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			removed := removeEvery(t, idx, 6)
			loaded := roundTrip(t, idx)
			if loaded.Live() != idx.Live() || loaded.Len() != idx.Len() {
				t.Fatalf("loaded live/len %d/%d, want %d/%d",
					loaded.Live(), loaded.Len(), idx.Live(), idx.Len())
			}
			for qi, q := range qs {
				want, err := idx.Search(q, 8)
				if err != nil {
					t.Fatal(err)
				}
				got, err := loaded.Search(q, 8)
				if err != nil {
					t.Fatal(err)
				}
				if len(got) != len(want) {
					t.Fatalf("query %d: %d vs %d results", qi, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("query %d rank %d: loaded %+v, original %+v", qi, i, got[i], want[i])
					}
				}
			}
			// A removed id must stay removed across the round trip.
			for id := range removed {
				if err := loaded.Remove(id); !errors.Is(err, ErrInput) {
					t.Fatalf("re-remove of persisted tombstone %d: %v", id, err)
				}
			}
		})
	}
}

// TestRemoveAllThenSearch: an index whose every vector is tombstoned
// returns empty results, and Add after Rebuild restarts the id space.
func TestRemoveAllThenSearch(t *testing.T) {
	vecs := randomVectors(20, 5, 51)
	h, err := NewHNSW(HNSWConfig{Seed: 7}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for name, idx := range map[string]Index{"flat": NewFlat(Cosine), "hnsw": h} {
		t.Run(name, func(t *testing.T) {
			if err := idx.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			removeEvery(t, idx, 1)
			if idx.Live() != 0 {
				t.Fatalf("live %d, want 0", idx.Live())
			}
			res, err := idx.Search(vecs[0], 5)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 0 {
				t.Fatalf("got %d results from an all-tombstoned index", len(res))
			}
			if _, err := idx.Rebuild(); err != nil {
				t.Fatal(err)
			}
			if idx.Len() != 0 || idx.Dim() != 0 {
				t.Fatalf("after rebuild of empty survivors: len %d dim %d", idx.Len(), idx.Dim())
			}
			if err := idx.Add(vecs[0]); err != nil {
				t.Fatal(err)
			}
			res, err = idx.Search(vecs[0], 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(res) != 1 || res[0].ID != 0 {
				t.Fatalf("fresh add after empty rebuild: %+v", res)
			}
		})
	}
}
