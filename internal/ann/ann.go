// Package ann provides nearest-neighbour search over Gem column
// embeddings at catalog scale: an exact brute-force baseline (Flat) and an
// HNSW graph index (HNSW) behind one Index interface, with cosine and
// Euclidean metrics, deterministic construction, parallel index build on a
// shared internal/pool worker pool, and binary persistence.
//
// The paper's headline workload is retrieving columns whose numerical
// distribution resembles a query column; a fixed-width embedding makes that
// a vector-search problem. Flat gives the exact answer in O(n·d) per query
// and is the recall reference; HNSW answers the same queries in roughly
// logarithmic time with recall governed by its ef parameters.
//
// Determinism: index construction and search are bit-identical for a given
// (vectors, config, seed) triple at every worker-pool width. HNSW assigns
// node levels by hashing (seed, id) rather than drawing from a shared RNG,
// batches insertions so that graph mutations happen sequentially in id
// order while the expensive candidate searches fan out in parallel against
// the immutable pre-batch graph, and breaks every distance tie by lower id.
//
// This package is also the repository's single home for vector metric
// kernels: eval's cosine similarity delegates here, so there is exactly one
// implementation of the dot/norm/cosine arithmetic.
//
//gem:deterministic
//gem:pooled
package ann

import (
	"errors"
	"fmt"
	"io"
	"math"
)

// ErrInput is returned for malformed vectors, queries and configuration.
var ErrInput = errors.New("ann: invalid input")

// ErrFormat is returned when persisted index bytes cannot be decoded.
var ErrFormat = errors.New("ann: invalid index data")

// Metric identifies the distance function of an index.
type Metric uint8

const (
	// Cosine is cosine distance, 1 - cos(a, b). Zero vectors have
	// similarity 0 with everything (distance 1), matching eval's
	// convention.
	Cosine Metric = iota
	// Euclidean is the L2 distance.
	Euclidean
)

// String names the metric the way the CLIs spell it.
func (m Metric) String() string {
	switch m {
	case Euclidean:
		return "l2"
	default:
		return "cosine"
	}
}

// ParseMetric parses the CLI spelling of a metric.
func ParseMetric(s string) (Metric, error) {
	switch s {
	case "cosine", "cos":
		return Cosine, nil
	case "l2", "euclidean":
		return Euclidean, nil
	default:
		return 0, fmt.Errorf("%w: unknown metric %q (want cosine|l2)", ErrInput, s)
	}
}

// Dot returns the inner product of equal-length vectors. Like every
// kernel in this package it runs in fixed-width blocks with four
// independent accumulator chains: the FP adds of different chains overlap
// instead of serializing on one accumulator's latency, and the fixed chain
// assignment keeps the summation order — and therefore every bit of the
// result — independent of anything but the inputs.
func Dot(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return (s0 + s1) + (s2 + s3)
}

// Norm returns the L2 norm of v (blocked like Dot).
func Norm(v []float64) float64 {
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(v); i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i] * v[i]
	}
	return math.Sqrt((s0 + s1) + (s2 + s3))
}

// CosineSimilarity returns the cosine of the angle between equal-length
// vectors. Zero vectors have similarity 0 with everything. This is the
// shared implementation behind eval.CosineSimilarity and the Cosine metric.
func CosineSimilarity(a, b []float64) float64 {
	dot := Dot(a, b)
	na, nb := Norm(a), Norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (na * nb)
}

// EuclideanDistance returns the L2 distance between equal-length vectors
// (blocked like Dot).
func EuclideanDistance(a, b []float64) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+3 < len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return math.Sqrt((s0 + s1) + (s2 + s3))
}

// Distance returns the metric's distance between equal-length vectors:
// 1-cos for Cosine (range [0, 2]), L2 for Euclidean.
func (m Metric) Distance(a, b []float64) float64 {
	if m == Euclidean {
		return EuclideanDistance(a, b)
	}
	return 1 - CosineSimilarity(a, b)
}

// distNormed is Distance with both L2 norms precomputed — the inner-loop
// form every index uses so norms are not recomputed per comparison.
func (m Metric) distNormed(a []float64, na float64, b []float64, nb float64) float64 {
	if m == Euclidean {
		return EuclideanDistance(a, b)
	}
	if na == 0 || nb == 0 {
		return 1
	}
	return 1 - Dot(a, b)/(na*nb)
}

// Result is one search hit: the id of a stored vector (its Add order,
// starting at 0) and its metric distance to the query.
type Result struct {
	ID   int
	Dist float64
}

// Index is the common contract of the exact and approximate indexes.
// Vectors are identified by insertion order; Search returns the k stored
// vectors closest to the query under the index metric, nearest first, with
// exact distance ties broken by lower id.
//
// Indexes are mutable: Remove tombstones a vector (its id keeps its slot
// but stops appearing in results) and Rebuild compacts the tombstones away
// deterministically — the rebuilt index is byte-identical to one freshly
// built from the surviving vectors in id order, at every worker-pool width.
// This incremental add/remove/compact regime is what lets a catalog stay
// live while columns join and leave it.
type Index interface {
	// Add appends vectors to the index. All vectors of an index must share
	// one dimensionality, fixed by the first Add.
	Add(vecs ...[]float64) error
	// Remove tombstones the vector with the given id. The id keeps its
	// slot (Len is unchanged, later ids do not shift) but the vector no
	// longer appears in Search results. Removing an out-of-range or
	// already-removed id fails with ErrInput.
	Remove(id int) error
	// Search returns up to k nearest live stored vectors, nearest first.
	Search(q []float64, k int) ([]Result, error)
	// SearchBatch answers qs[i] into result slot i, fanning query chunks
	// out on the index's worker pool with per-worker reusable scratch.
	// Output is bit-identical to a sequential loop of Search calls at
	// every pool width; on error the lowest-indexed failing query's error
	// is returned. Both indexes also support the allocation-free
	// single-goroutine form via NewSearcher.
	SearchBatch(qs [][]float64, k int) ([][]Result, error)
	// Len returns the number of stored vector slots, including tombstones.
	Len() int
	// Live returns the number of live (non-tombstoned) vectors.
	Live() int
	// Dim returns the vector dimensionality (0 while empty).
	Dim() int
	// Metric returns the index's distance metric.
	Metric() Metric
	// Precision returns the scan precision of the index's distance
	// kernels. Reduced precisions re-rank their top candidates in exact
	// float64 (see Precision).
	Precision() Precision
	// Rebuild compacts tombstones away: survivors are re-inserted in id
	// order under the same configuration, producing an index byte-identical
	// to a fresh build of the surviving vectors. It returns the id
	// remapping, mapping[oldID] = newID, with -1 for removed ids.
	Rebuild() ([]int, error)
	// Save writes the index in the binary format Load reads.
	Save(w io.Writer) error
}

// checkRemove validates a tombstone request against the current id space.
func checkRemove(deleted []bool, id int) error {
	if id < 0 || id >= len(deleted) {
		return fmt.Errorf("%w: remove id %d out of range [0, %d)", ErrInput, id, len(deleted))
	}
	if deleted[id] {
		return fmt.Errorf("%w: id %d already removed", ErrInput, id)
	}
	return nil
}

// liveMapping computes the Rebuild id remapping and the surviving vectors
// in id order.
func liveMapping(vecs [][]float64, deleted []bool) (mapping []int, live [][]float64) {
	mapping = make([]int, len(vecs))
	live = make([][]float64, 0, len(vecs))
	for id := range vecs {
		if deleted[id] {
			mapping[id] = -1
			continue
		}
		mapping[id] = len(live)
		live = append(live, vecs[id])
	}
	return mapping, live
}

// checkAdd validates a batch of vectors against an index's current
// dimensionality and returns the (possibly newly fixed) dimension.
func checkAdd(dim, n int, vecs [][]float64) (int, error) {
	for i, v := range vecs {
		if len(v) == 0 {
			return 0, fmt.Errorf("%w: vector %d is empty", ErrInput, n+i)
		}
		if dim == 0 {
			dim = len(v)
		}
		if len(v) != dim {
			return 0, fmt.Errorf("%w: vector %d has dim %d, index has %d", ErrInput, n+i, len(v), dim)
		}
		for j, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 0, fmt.Errorf("%w: vector %d component %d is not finite", ErrInput, n+i, j)
			}
		}
	}
	return dim, nil
}

// checkQuery validates a search query. Non-finite components are rejected
// like they are on Add: NaN distances break the total order every heap and
// sort relies on, which would silently return garbage rankings.
func checkQuery(dim int, q []float64, k int) error {
	if k < 0 {
		return fmt.Errorf("%w: k = %d", ErrInput, k)
	}
	if dim != 0 && len(q) != dim {
		return fmt.Errorf("%w: query has dim %d, index has %d", ErrInput, len(q), dim)
	}
	for i, x := range q {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: query component %d is not finite", ErrInput, i)
		}
	}
	return nil
}
