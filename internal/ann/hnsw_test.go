package ann

import (
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// TestHNSWRecallVsFlat pins the quality bar of the approximate index: on
// 1000 clustered vectors, recall@10 against the exact scan must reach 0.95
// under both metrics (the ISSUE's acceptance threshold; the embedding-space
// version of this check lives in internal/experiments).
func TestHNSWRecallVsFlat(t *testing.T) {
	const (
		n, dim, k = 1000, 24, 10
		queries   = 200
	)
	vecs := randomVectors(n, dim, 7)
	qs := randomVectors(queries, dim, 8)
	for _, metric := range []Metric{Cosine, Euclidean} {
		t.Run(metric.String(), func(t *testing.T) {
			flat := NewFlat(metric)
			if err := flat.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			h, err := NewHNSW(HNSWConfig{Metric: metric, Seed: 1}, pool.New(4))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			var total float64
			for _, q := range qs {
				exact, err := flat.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				approx, err := h.Search(q, k)
				if err != nil {
					t.Fatal(err)
				}
				total += recallAt(exact, approx)
			}
			recall := total / queries
			if recall < 0.95 {
				t.Errorf("recall@%d = %.4f, want >= 0.95", k, recall)
			}
		})
	}
}

// TestHNSWSmallIndexExhaustive: with EfSearch >= n and a connected graph
// the beam search degenerates to an exact scan, so every query must match
// Flat exactly, including distances and tie order.
func TestHNSWSmallIndexExhaustive(t *testing.T) {
	const n, dim, k = 200, 16, 10
	vecs := randomVectors(n, dim, 3)
	flat := NewFlat(Cosine)
	h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 2, EfSearch: n}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	if err := h.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	for qi, q := range randomVectors(50, dim, 4) {
		exact, err := flat.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		approx, err := h.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(exact) != len(approx) {
			t.Fatalf("query %d: %d vs %d results", qi, len(approx), len(exact))
		}
		for i := range exact {
			if exact[i] != approx[i] {
				t.Fatalf("query %d rank %d: hnsw %+v, flat %+v", qi, i, approx[i], exact[i])
			}
		}
	}
}

// TestHNSWIncrementalAdd verifies that vectors added across several Add
// calls are all retrievable.
func TestHNSWIncrementalAdd(t *testing.T) {
	vecs := randomVectors(300, 8, 11)
	h, err := NewHNSW(HNSWConfig{Metric: Euclidean, Seed: 5, EfSearch: 300, BatchSize: 7}, pool.New(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(vecs); i += 50 {
		if err := h.Add(vecs[i : i+50]...); err != nil {
			t.Fatal(err)
		}
	}
	if h.Len() != 300 {
		t.Fatalf("Len = %d, want 300", h.Len())
	}
	// Each stored vector must find itself as its own nearest neighbour.
	for i, v := range vecs {
		res, err := h.Search(v, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res) != 1 || res[0].Dist > 1e-12 {
			t.Fatalf("vector %d: self-search = %+v", i, res)
		}
	}
}

// TestHNSWDuplicateVectors: heavy duplication (identical columns are
// common in real catalogs) must neither break construction nor tie order.
func TestHNSWDuplicateVectors(t *testing.T) {
	h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 9, EfSearch: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var vecs [][]float64
	for i := 0; i < 60; i++ {
		vecs = append(vecs, []float64{1, 2, 3})
	}
	vecs = append(vecs, []float64{-1, 2, 0.5})
	if err := h.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	res, err := h.Search([]float64{1, 2, 3}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []int{0, 1, 2, 3, 4} {
		if res[i].ID != want {
			t.Fatalf("duplicate tie order = %+v, want ids 0..4", res)
		}
	}
}

func TestHNSWConfigValidation(t *testing.T) {
	if _, err := NewHNSW(HNSWConfig{M: 1}, nil); err == nil {
		t.Error("M=1 accepted, want error")
	}
	h, err := NewHNSW(HNSWConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	cfg := h.Config()
	if cfg.M != 16 || cfg.EfConstruction != 200 || cfg.EfSearch != 100 || cfg.BatchSize != 64 {
		t.Errorf("defaults = %+v", cfg)
	}
}

// TestHNSWSetEfSearch: the query-time beam width is adjustable after
// construction (and after Load); non-positive values are ignored.
func TestHNSWSetEfSearch(t *testing.T) {
	h, err := NewHNSW(HNSWConfig{Seed: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	h.SetEfSearch(512)
	if got := h.Config().EfSearch; got != 512 {
		t.Errorf("EfSearch = %d, want 512", got)
	}
	h.SetEfSearch(0)
	h.SetEfSearch(-3)
	if got := h.Config().EfSearch; got != 512 {
		t.Errorf("EfSearch after ignored sets = %d, want 512", got)
	}
}
