package ann

// Precision-tiered distance kernels. An index stores its vectors in the
// authoritative float64 form and, when a reduced precision is selected,
// keeps a contiguous scan copy (float32, or int8 codes with a per-vector
// scale) that the hot distance kernels run on. Scanning touches half (or a
// quarter) of the bytes per comparison; the candidates that survive the
// scan are then re-scored exactly in float64, so the reduced precision can
// only cost recall inside the candidate set, never reorder the final
// ranking against the exact distances (the quantize-then-rerank shape).
//
// Every kernel accumulates in fixed-width blocks with independent
// accumulator chains, so results are bit-identical at every worker-pool
// width and on every run — the same determinism contract as the float64
// path, per precision tier.

import (
	"fmt"
	"math"
)

// Precision selects the storage and scan precision of an index's distance
// kernels. The float64 vectors remain authoritative in every mode: they
// back persistence and the exact re-rank of scan candidates.
type Precision uint8

const (
	// Float64 scans the authoritative vectors directly; no re-rank needed.
	Float64 Precision = iota
	// Float32 scans a contiguous float32 copy and re-ranks in float64.
	Float32
	// Int8 scans symmetric int8 codes (per-vector scale maxAbs/127) and
	// re-ranks in float64.
	Int8
)

// String names the precision the way the CLIs spell it.
func (p Precision) String() string {
	switch p {
	case Float32:
		return "float32"
	case Int8:
		return "int8"
	default:
		return "float64"
	}
}

// ParsePrecision parses the CLI spelling of a precision tier.
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "float64", "f64":
		return Float64, nil
	case "float32", "f32":
		return Float32, nil
	case "int8", "i8":
		return Int8, nil
	default:
		return 0, fmt.Errorf("%w: unknown precision %q (want float64|float32|int8)", ErrInput, s)
	}
}

// checkPrecision validates a configured precision value.
func checkPrecision(p Precision) error {
	if p > Int8 {
		return fmt.Errorf("%w: unknown precision %d", ErrInput, p)
	}
	return nil
}

// rerankDepth is how many scan-order candidates the reduced-precision
// tiers re-score in float64 before cutting to k. Wide enough that a
// neighbour displaced by quantization noise still makes the candidate set,
// narrow enough that the re-rank cost stays a small constant per query.
func rerankDepth(k int) int { return 4*k + 16 }

// dotF32 is the float32 inner product, blocked into four independent
// accumulator chains. Accumulation is in float32 (the scan precision);
// the fixed chain assignment makes the sum order deterministic.
func dotF32(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += a[i] * b[i]
		s1 += a[i+1] * b[i+1]
		s2 += a[i+2] * b[i+2]
		s3 += a[i+3] * b[i+3]
	}
	for ; i < len(a); i++ {
		s0 += a[i] * b[i]
	}
	return float64((s0 + s1) + (s2 + s3))
}

// sqSumF32 is the blocked float32 sum of squares.
func sqSumF32(v []float32) float64 {
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+3 < len(v); i += 4 {
		s0 += v[i] * v[i]
		s1 += v[i+1] * v[i+1]
		s2 += v[i+2] * v[i+2]
		s3 += v[i+3] * v[i+3]
	}
	for ; i < len(v); i++ {
		s0 += v[i] * v[i]
	}
	return float64((s0 + s1) + (s2 + s3))
}

// l2SqF32 is the blocked float32 squared Euclidean distance.
func l2SqF32(a, b []float32) float64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 float32
	i := 0
	for ; i+3 < len(a); i += 4 {
		d0 := a[i] - b[i]
		d1 := a[i+1] - b[i+1]
		d2 := a[i+2] - b[i+2]
		d3 := a[i+3] - b[i+3]
		s0 += d0 * d0
		s1 += d1 * d1
		s2 += d2 * d2
		s3 += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s0 += d * d
	}
	return float64((s0 + s1) + (s2 + s3))
}

// dotI8 is the blocked int8 inner product: terms are exact in int32
// (magnitude at most 127·127) and accumulate in four independent int64
// chains, which cannot overflow below 2^49 dimensions — far beyond the
// persistence cap.
func dotI8(a, b []int8) int64 {
	b = b[:len(a)]
	var s0, s1, s2, s3 int64
	i := 0
	for ; i+3 < len(a); i += 4 {
		s0 += int64(int32(a[i]) * int32(b[i]))
		s1 += int64(int32(a[i+1]) * int32(b[i+1]))
		s2 += int64(int32(a[i+2]) * int32(b[i+2]))
		s3 += int64(int32(a[i+3]) * int32(b[i+3]))
	}
	for ; i < len(a); i++ {
		s0 += int64(int32(a[i]) * int32(b[i]))
	}
	return (s0 + s1) + (s2 + s3)
}

// quantizeScale returns the symmetric int8 quantization scale of v:
// maxAbs/127, or 0 for the all-zero vector. Deterministic in v alone, so
// the scales persisted alongside an int8 index can be validated exactly
// against the vectors on load.
func quantizeScale(v []float64) float32 {
	var maxAbs float64
	for _, x := range v {
		if a := math.Abs(x); a > maxAbs {
			maxAbs = a
		}
	}
	return float32(maxAbs / 127)
}

// quantizeInto fills codes with round(x/scale) clamped to [-127, 127].
func quantizeInto(codes []int8, v []float64, scale float32) {
	if scale == 0 {
		for i := range codes {
			codes[i] = 0
		}
		return
	}
	inv := 1 / float64(scale)
	for i, x := range v {
		q := math.Round(x * inv)
		if q > 127 {
			q = 127
		}
		if q < -127 {
			q = -127
		}
		codes[i] = int8(q)
	}
}

// vecStore holds an index's vectors: the authoritative float64 form
// (persistence, Rebuild, exact re-rank) plus the contiguous scan copy of
// the configured precision. All appends go through add, so the scan copy
// never drifts from the vectors.
type vecStore struct {
	metric Metric
	prec   Precision
	dim    int
	vecs   [][]float64
	norms  []float64 // exact float64 L2 norms (float64 scan + re-rank)

	f32 []float32 // Float32: contiguous n×dim scan copy
	n32 []float64 // Float32: L2 norms of the float32 copy

	codes  []int8    // Int8: contiguous n×dim symmetric codes
	scales []float32 // Int8: per-vector quantization scale
	ni8    []float64 // Int8: L2 norms of the dequantized codes
}

func newVecStore(metric Metric, prec Precision) vecStore {
	return vecStore{metric: metric, prec: prec}
}

func (s *vecStore) len() int { return len(s.vecs) }

// add appends validated vectors (see checkAdd) and their scan copies.
func (s *vecStore) add(dim int, vecs [][]float64) {
	s.dim = dim
	for _, v := range vecs {
		cp := make([]float64, len(v))
		copy(cp, v)
		s.vecs = append(s.vecs, cp)
		s.norms = append(s.norms, Norm(cp))
		switch s.prec {
		case Float32:
			row := make([]float32, len(cp))
			for i, x := range cp {
				row[i] = float32(x)
			}
			s.f32 = append(s.f32, row...)
			s.n32 = append(s.n32, math.Sqrt(sqSumF32(row)))
		case Int8:
			scale := quantizeScale(cp)
			row := make([]int8, len(cp))
			quantizeInto(row, cp, scale)
			s.codes = append(s.codes, row...)
			s.scales = append(s.scales, scale)
			s.ni8 = append(s.ni8, float64(scale)*math.Sqrt(float64(dotI8(row, row))))
		}
	}
}

// row32 returns stored vector id's float32 scan row.
func (s *vecStore) row32(id int) []float32 { return s.f32[id*s.dim : (id+1)*s.dim] }

// rowI8 returns stored vector id's int8 code row.
func (s *vecStore) rowI8(id int) []int8 { return s.codes[id*s.dim : (id+1)*s.dim] }

// scanQuery is one query prepared for the store's scan precision: the
// float64 form plus the reduced representation, each quantized exactly
// once per search.
type scanQuery struct {
	f64 []float64
	n64 float64 // exact float64 norm (re-rank)

	f32 []float32
	i8  []int8
	qs  float32 // int8 quantization scale of the query
	nq  float64 // scan-space query norm (cosine denominator)
}

// query prepares q for scanning. The float64 fields are always filled —
// they drive the exact re-rank.
func (s *vecStore) query(q []float64) scanQuery {
	var sc scratch
	return *s.queryInto(&sc, q)
}

// queryInto prepares q for scanning into sc's reusable buffers and returns
// sc.sq. Steady state this allocates nothing: the reduced-precision copies
// live in sc and are overwritten per query.
func (s *vecStore) queryInto(sc *scratch, q []float64) *scanQuery {
	sq := &sc.sq
	*sq = scanQuery{f64: q, n64: Norm(q)}
	switch s.prec {
	case Float64:
		sq.nq = sq.n64
	case Float32:
		sc.f32 = grow(sc.f32, len(q))
		for i, x := range q {
			sc.f32[i] = float32(x)
		}
		sq.f32 = sc.f32
		sq.nq = math.Sqrt(sqSumF32(sq.f32))
	case Int8:
		sc.i8 = grow(sc.i8, len(q))
		sq.qs = quantizeScale(q)
		quantizeInto(sc.i8, q, sq.qs)
		sq.i8 = sc.i8
		sq.nq = float64(sq.qs) * math.Sqrt(float64(dotI8(sq.i8, sq.i8)))
	}
	return sq
}

// queryOf views stored vector id as a scanQuery without copying — the
// insertion path scores stored vectors against each other with the same
// kernels a search uses.
func (s *vecStore) queryOf(id int) scanQuery {
	sq := scanQuery{f64: s.vecs[id], n64: s.norms[id]}
	switch s.prec {
	case Float64:
		sq.nq = sq.n64
	case Float32:
		sq.f32 = s.row32(id)
		sq.nq = s.n32[id]
	case Int8:
		sq.i8 = s.rowI8(id)
		sq.qs = s.scales[id]
		sq.nq = s.ni8[id]
	}
	return sq
}

// scanDist returns the scan-precision distance from a prepared query to
// stored vector id. In Float64 mode this IS the exact metric distance.
func (s *vecStore) scanDist(q *scanQuery, id int) float64 {
	switch s.prec {
	case Float32:
		if s.metric == Euclidean {
			return math.Sqrt(l2SqF32(q.f32, s.row32(id)))
		}
		nb := s.n32[id]
		if q.nq == 0 || nb == 0 {
			return 1
		}
		return 1 - dotF32(q.f32, s.row32(id))/(q.nq*nb)
	case Int8:
		dot := float64(q.qs) * float64(s.scales[id]) * float64(dotI8(q.i8, s.rowI8(id)))
		if s.metric == Euclidean {
			d2 := q.nq*q.nq + s.ni8[id]*s.ni8[id] - 2*dot
			if d2 < 0 {
				d2 = 0
			}
			return math.Sqrt(d2)
		}
		nb := s.ni8[id]
		if q.nq == 0 || nb == 0 {
			return 1
		}
		return 1 - dot/(q.nq*nb)
	default:
		return s.metric.distNormed(q.f64, q.n64, s.vecs[id], s.norms[id])
	}
}

// exactDist returns the exact float64 metric distance from a prepared
// query to stored vector id — the re-rank scorer.
func (s *vecStore) exactDist(q *scanQuery, id int) float64 {
	return s.metric.distNormed(q.f64, q.n64, s.vecs[id], s.norms[id])
}

// rerank re-scores scan-order candidates exactly in float64 and returns
// them sorted by (exact distance, id), using the caller's sorter scratch so
// the sort allocates nothing. In Float64 mode the scan distances already
// are exact, so callers skip this.
func (s *vecStore) rerank(q *scanQuery, cands []Result, so *resultSorter) []Result {
	for i := range cands {
		cands[i].Dist = s.exactDist(q, cands[i].ID)
	}
	so.sort(cands)
	return cands
}
