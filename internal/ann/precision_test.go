package ann

import (
	"bytes"
	"encoding/binary"
	"errors"
	"math"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

func TestParsePrecision(t *testing.T) {
	cases := map[string]Precision{
		"float64": Float64, "f64": Float64,
		"float32": Float32, "f32": Float32,
		"int8": Int8, "i8": Int8,
	}
	for s, want := range cases {
		got, err := ParsePrecision(s)
		if err != nil || got != want {
			t.Errorf("ParsePrecision(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, p := range allPrecisions {
		if got, err := ParsePrecision(p.String()); err != nil || got != p {
			t.Errorf("round trip %v: got %v, %v", p, got, err)
		}
	}
	if _, err := ParsePrecision("fp16"); !errors.Is(err, ErrInput) {
		t.Errorf("ParsePrecision(fp16) err = %v, want ErrInput", err)
	}
	if err := checkPrecision(Precision(7)); !errors.Is(err, ErrInput) {
		t.Errorf("checkPrecision(7) err = %v, want ErrInput", err)
	}
	if _, err := NewFlatAt(Cosine, Precision(7)); !errors.Is(err, ErrInput) {
		t.Errorf("NewFlatAt(7) err = %v, want ErrInput", err)
	}
	if _, err := NewHNSW(HNSWConfig{Precision: Precision(7)}, nil); !errors.Is(err, ErrInput) {
		t.Errorf("NewHNSW precision 7 err = %v, want ErrInput", err)
	}
}

// TestQuantization pins the symmetric int8 scheme: round-trip error is at
// most half a quantization step, and the all-zero vector is representable.
func TestQuantization(t *testing.T) {
	for _, v := range randomVectors(20, 32, 7) {
		scale := quantizeScale(v)
		codes := make([]int8, len(v))
		quantizeInto(codes, v, scale)
		for i, x := range v {
			deq := float64(scale) * float64(codes[i])
			if eps := float64(scale)/2 + 1e-12; math.Abs(deq-x) > eps {
				t.Fatalf("component %d: dequant %g vs %g exceeds half-step %g", i, deq, x, eps)
			}
		}
	}
	zero := make([]float64, 8)
	if s := quantizeScale(zero); s != 0 {
		t.Fatalf("zero-vector scale = %g, want 0", s)
	}
	codes := []int8{5, -3}
	quantizeInto(codes, zero[:2], 0)
	if codes[0] != 0 || codes[1] != 0 {
		t.Fatalf("zero-scale codes = %v, want zeros", codes)
	}
}

// TestFlatReducedPrecisionExactWhenCovered: when the candidate set covers
// the whole index (n <= rerankDepth(k)), the reduced-precision Flat must
// return results bit-identical to the float64 Flat — the re-rank restores
// the exact distances and the exact order.
func TestFlatReducedPrecisionExactWhenCovered(t *testing.T) {
	vecs := randomVectors(50, 12, 31) // rerankDepth(10) = 56 >= 50
	qs := randomVectors(20, 12, 32)
	for _, metric := range []Metric{Cosine, Euclidean} {
		ref := NewFlat(metric)
		if err := ref.Add(vecs...); err != nil {
			t.Fatal(err)
		}
		for _, prec := range []Precision{Float32, Int8} {
			t.Run(metric.String()+"/"+prec.String(), func(t *testing.T) {
				f, err := NewFlatAt(metric, prec)
				if err != nil {
					t.Fatal(err)
				}
				if err := f.Add(vecs...); err != nil {
					t.Fatal(err)
				}
				if f.Precision() != prec {
					t.Fatalf("Precision() = %v, want %v", f.Precision(), prec)
				}
				for qi, q := range qs {
					want, err := ref.Search(q, 10)
					if err != nil {
						t.Fatal(err)
					}
					got, err := f.Search(q, 10)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("query %d rank %d: %+v, want %+v", qi, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// recallVs returns the fraction of ids in want that also appear in got.
func recallVs(got, want []Result) float64 {
	if len(want) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(got))
	for _, r := range got {
		ids[r.ID] = true
	}
	hit := 0
	for _, r := range want {
		if ids[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(want))
}

// TestReducedPrecisionRecall: on a larger catalog the quantized tiers must
// keep high recall against the exact float64 scan, and every distance they
// report must be the exact float64 metric distance (the re-rank contract).
func TestReducedPrecisionRecall(t *testing.T) {
	vecs := randomVectors(2000, 16, 41)
	qs := randomVectors(50, 16, 42)
	ref := NewFlat(Cosine)
	if err := ref.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	build := func(prec Precision, hnsw bool) Index {
		if hnsw {
			h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 9, Precision: prec}, pool.New(4))
			if err != nil {
				t.Fatal(err)
			}
			if err := h.Add(vecs...); err != nil {
				t.Fatal(err)
			}
			return h
		}
		f, err := NewFlatAt(Cosine, prec)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Add(vecs...); err != nil {
			t.Fatal(err)
		}
		return f
	}
	for _, tc := range []struct {
		name      string
		idx       Index
		minRecall float64
	}{
		{"flat/float32", build(Float32, false), 0.999},
		{"flat/int8", build(Int8, false), 0.95},
		{"hnsw/float32", build(Float32, true), 0.99},
		{"hnsw/int8", build(Int8, true), 0.90},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var recall float64
			for _, q := range qs {
				want, err := ref.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				got, err := tc.idx.Search(q, 10)
				if err != nil {
					t.Fatal(err)
				}
				for i, r := range got {
					if exact := Cosine.Distance(q, vecs[r.ID]); r.Dist != exact {
						t.Fatalf("rank %d id %d: Dist %v, exact %v — re-rank must report exact distances", i, r.ID, r.Dist, exact)
					}
				}
				recall += recallVs(got, want)
			}
			recall /= float64(len(qs))
			if recall < tc.minRecall {
				t.Fatalf("mean recall@10 = %.4f, want >= %.4f", recall, tc.minRecall)
			}
		})
	}
}

// TestPersistPrecisionRoundTrip: every precision tier survives a save/load
// round trip with bit-identical re-saved bytes and bit-identical search
// results, for both index kinds.
func TestPersistPrecisionRoundTrip(t *testing.T) {
	vecs := randomVectors(120, 10, 51)
	qs := randomVectors(10, 10, 52)
	for _, prec := range allPrecisions {
		h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 4, Precision: prec}, nil)
		if err != nil {
			t.Fatal(err)
		}
		f, err := NewFlatAt(Cosine, prec)
		if err != nil {
			t.Fatal(err)
		}
		for name, idx := range map[string]Index{"flat": f, "hnsw": h} {
			t.Run(name+"/"+prec.String(), func(t *testing.T) {
				if err := idx.Add(vecs...); err != nil {
					t.Fatal(err)
				}
				if err := idx.Remove(7); err != nil {
					t.Fatal(err)
				}
				var buf bytes.Buffer
				if err := idx.Save(&buf); err != nil {
					t.Fatal(err)
				}
				loaded, err := Load(bytes.NewReader(buf.Bytes()), nil)
				if err != nil {
					t.Fatal(err)
				}
				if loaded.Precision() != prec {
					t.Fatalf("loaded precision %v, want %v", loaded.Precision(), prec)
				}
				var again bytes.Buffer
				if err := loaded.Save(&again); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(buf.Bytes(), again.Bytes()) {
					t.Fatal("re-saved bytes differ from the original save")
				}
				for qi, q := range qs {
					want, err := idx.Search(q, 8)
					if err != nil {
						t.Fatal(err)
					}
					got, err := loaded.Search(q, 8)
					if err != nil {
						t.Fatal(err)
					}
					if len(got) != len(want) {
						t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("query %d rank %d: %+v, want %+v", qi, i, got[i], want[i])
						}
					}
				}
			})
		}
	}
}

// TestPersistCorruptScales: the int8 scale section is validated bit-exactly
// against the vectors on load — truncation, count mismatches and flipped or
// non-finite values must all fail with ErrFormat, never panic.
func TestPersistCorruptScales(t *testing.T) {
	const n, dim = 12, 4
	f, err := NewFlatAt(Cosine, Int8)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Add(randomVectors(n, dim, 61)...); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Flat v3 layout: magic(8)+kind(1)+metric(1)+prec(1)=11, dim/n uint32s,
	// then the vector payload; the scale section count sits right after it.
	countOff := 11 + 8 + n*dim*8
	scalesOff := countOff + 4
	if got := binary.LittleEndian.Uint32(good[countOff:]); got != n {
		t.Fatalf("scale count at offset %d = %d, want %d (layout drifted?)", countOff, got, n)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Run(name, func(t *testing.T) {
			raw := mutate(append([]byte(nil), good...))
			if _, err := Load(bytes.NewReader(raw), nil); !errors.Is(err, ErrFormat) {
				t.Errorf("Load err = %v, want ErrFormat", err)
			}
		})
	}
	corrupt("count-mismatch", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[countOff:], n-1)
		return b
	})
	corrupt("truncated-scales", func(b []byte) []byte {
		return b[:scalesOff+2]
	})
	corrupt("flipped-scale", func(b []byte) []byte {
		b[scalesOff+1] ^= 0x40 // perturb vector 0's scale mantissa/exponent
		return b
	})
	corrupt("nan-scale", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[scalesOff:], math.Float32bits(float32(math.NaN())))
		return b
	})
	corrupt("inf-scale", func(b []byte) []byte {
		binary.LittleEndian.PutUint32(b[scalesOff+4:], math.Float32bits(float32(math.Inf(1))))
		return b
	})
}

// TestWidenEfClamp pins the deleted-aware ef widening: proportional for
// light churn, clamped at 2x the base once tombstones dominate, so a
// mass-removal cannot widen the beam without bound.
func TestWidenEfClamp(t *testing.T) {
	for _, tc := range []struct{ base, nDeleted, want int }{
		{100, 0, 100},
		{100, 50, 150},
		{100, 200, 300},
		{100, 4500, 300}, // clamp: was base+4500 before the fix
		{64, 64, 128},
		{10, 1 << 20, 30},
	} {
		if got := widenEf(tc.base, tc.nDeleted); got != tc.want {
			t.Errorf("widenEf(%d, %d) = %d, want %d", tc.base, tc.nDeleted, got, tc.want)
		}
	}
}

// TestHNSWMassRemoval is the regression test for the unbounded ef widening:
// after removing 90% of a 5k-vector index, Search must still return k live
// results with solid recall against an exact scan of the same survivors —
// and the clamped beam keeps the query cost bounded.
func TestHNSWMassRemoval(t *testing.T) {
	const n, dim, k = 5000, 16, 10
	vecs := randomVectors(n, dim, 71)
	h, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 8, M: 8, EfConstruction: 80, EfSearch: 64}, pool.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	flat := NewFlat(Cosine)
	if err := flat.Add(vecs...); err != nil {
		t.Fatal(err)
	}
	// Remove 90%: every id not divisible by 10.
	for id := 0; id < n; id++ {
		if id%10 == 0 {
			continue
		}
		if err := h.Remove(id); err != nil {
			t.Fatal(err)
		}
		if err := flat.Remove(id); err != nil {
			t.Fatal(err)
		}
	}
	if h.Live() != n/10 {
		t.Fatalf("Live = %d, want %d", h.Live(), n/10)
	}
	qs := randomVectors(30, dim, 72)
	var recall float64
	for _, q := range qs {
		want, err := flat.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		got, err := h.Search(q, k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != k {
			t.Fatalf("Search returned %d results, want %d", len(got), k)
		}
		for _, r := range got {
			if r.ID%10 != 0 {
				t.Fatalf("result id %d is tombstoned", r.ID)
			}
		}
		recall += recallVs(got, want)
	}
	recall /= float64(len(qs))
	if recall < 0.8 {
		t.Fatalf("recall@%d after 90%% removal = %.3f, want >= 0.8", k, recall)
	}
}
