package ann

import (
	"bytes"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the index loader. The contract under
// test is "corrupt input errors, never panics": whatever the mutation —
// bad magic, truncated records, implausible counts, broken adjacency — Load
// must either return an error or an index whose basic operations work.
func FuzzLoad(f *testing.F) {
	// Seed with real saves of both kinds, with and without tombstones, so
	// the fuzzer starts from structurally valid inputs and mutates inward.
	seedIndex := func(idx Index) {
		var buf bytes.Buffer
		if err := idx.Save(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	vecs := randomVectors(30, 5, 77)
	flat := NewFlat(Cosine)
	if err := flat.Add(vecs...); err != nil {
		f.Fatal(err)
	}
	seedIndex(flat)
	if err := flat.Remove(3); err != nil {
		f.Fatal(err)
	}
	seedIndex(flat)
	h, err := NewHNSW(HNSWConfig{Metric: Euclidean, Seed: 4, M: 4, EfConstruction: 20, BatchSize: 8}, nil)
	if err != nil {
		f.Fatal(err)
	}
	if err := h.Add(vecs...); err != nil {
		f.Fatal(err)
	}
	seedIndex(h)
	for _, id := range []int{0, 7, 29} {
		if err := h.Remove(id); err != nil {
			f.Fatal(err)
		}
	}
	seedIndex(h)
	// Reduced-precision saves: v3 headers plus, for int8, the per-vector
	// scale section — the fuzzer mutates into truncated and corrupt scales.
	for _, prec := range []Precision{Float32, Int8} {
		pf, err := NewFlatAt(Euclidean, prec)
		if err != nil {
			f.Fatal(err)
		}
		if err := pf.Add(vecs...); err != nil {
			f.Fatal(err)
		}
		seedIndex(pf)
		ph, err := NewHNSW(HNSWConfig{Metric: Cosine, Seed: 5, M: 4, EfConstruction: 20, Precision: prec}, nil)
		if err != nil {
			f.Fatal(err)
		}
		if err := ph.Add(vecs...); err != nil {
			f.Fatal(err)
		}
		if err := ph.Remove(11); err != nil {
			f.Fatal(err)
		}
		seedIndex(ph)
	}
	f.Add([]byte{})
	f.Add([]byte("gemann\x00\x02"))
	f.Add([]byte("gemann\x00\x03"))

	f.Fuzz(func(t *testing.T, data []byte) {
		idx, err := Load(bytes.NewReader(data), nil)
		if err != nil {
			return
		}
		// A load that succeeds must hand back a usable index: searching and
		// a save round trip must not panic either.
		if idx.Live() < 0 || idx.Live() > idx.Len() {
			t.Fatalf("live %d out of range [0, %d]", idx.Live(), idx.Len())
		}
		if idx.Dim() > 0 {
			q := make([]float64, idx.Dim())
			if _, err := idx.Search(q, 3); err != nil {
				t.Fatalf("search on loaded index: %v", err)
			}
		}
		if err := idx.Save(&bytes.Buffer{}); err != nil {
			t.Fatalf("re-save of loaded index: %v", err)
		}
	})
}
