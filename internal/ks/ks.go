// Package ks implements the Kolmogorov–Smirnov machinery behind the paper's
// KS-statistic baseline (§4.1.3): for each numeric column, the one-sample KS
// statistic is computed against each of seven fitted reference distributions
// (normal, uniform, exponential, beta, gamma, lognormal, logistic); the
// vector of statistics is the column's feature vector — different semantic
// types exhibit different goodness-of-fit patterns.
package ks

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/gem-embeddings/gem/internal/dist"
)

// ErrInput is returned for empty samples.
var ErrInput = errors.New("ks: invalid input")

// Statistic returns the one-sample Kolmogorov–Smirnov statistic
// D_n = sup_x |F_n(x) - F(x)| of the sample xs against the distribution d.
func Statistic(xs []float64, d dist.Distribution) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), fmt.Errorf("%w: empty sample", ErrInput)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	n := float64(len(sorted))
	var maxD float64
	for i, x := range sorted {
		cdf := d.CDF(x)
		// Compare against the ECDF just below and at x (the sup is attained
		// at a jump point on one of the two sides).
		dPlus := (float64(i)+1)/n - cdf
		dMinus := cdf - float64(i)/n
		if dPlus > maxD {
			maxD = dPlus
		}
		if dMinus > maxD {
			maxD = dMinus
		}
	}
	return maxD, nil
}

// FeatureNames lists the reference families in feature order (the canonical
// dist.FamilyNames order).
func FeatureNames() []string { return dist.FamilyNames() }

// Features returns the KS feature vector of a column: the KS statistic of
// the column against each fitted reference family, in FeatureNames order.
// Families the sample cannot support (e.g. lognormal for negative values)
// receive feature value 1, the maximal possible KS distance — "this family
// does not describe the column at all".
func Features(xs []float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrInput)
	}
	fitted, _ := dist.Families(xs)
	byName := make(map[string]dist.Distribution, len(fitted))
	for _, d := range fitted {
		byName[d.Name()] = d
	}
	names := FeatureNames()
	out := make([]float64, len(names))
	for i, name := range names {
		d, ok := byName[name]
		if !ok {
			out[i] = 1
			continue
		}
		stat, err := Statistic(xs, d)
		if err != nil {
			return nil, err
		}
		if math.IsNaN(stat) {
			stat = 1
		}
		out[i] = stat
	}
	return out, nil
}
