package ks

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/dist"
)

func TestStatisticPerfectFit(t *testing.T) {
	// The KS statistic of a sample against a distribution it was drawn from
	// should be small (≈ 1/sqrt(n) scale).
	rng := rand.New(rand.NewSource(1))
	n, _ := dist.NewNormal(0, 1)
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = n.Rand(rng)
	}
	d, err := Statistic(xs, n)
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.03 {
		t.Errorf("KS statistic on own sample = %v, want < 0.03", d)
	}
}

func TestStatisticBadFit(t *testing.T) {
	// Uniform data against a narrow normal: the statistic should be large.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	n, _ := dist.NewNormal(0, 1)
	d, err := Statistic(xs, n)
	if err != nil {
		t.Fatal(err)
	}
	if d < 0.5 {
		t.Errorf("KS statistic for a terrible fit = %v, want > 0.5", d)
	}
}

func TestStatisticBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n, _ := dist.NewNormal(5, 2)
	for trial := 0; trial < 20; trial++ {
		m := 1 + rng.Intn(50)
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		d, err := Statistic(xs, n)
		if err != nil {
			t.Fatal(err)
		}
		if d < 0 || d > 1 {
			t.Fatalf("KS statistic %v outside [0, 1]", d)
		}
	}
}

func TestStatisticSinglePoint(t *testing.T) {
	n, _ := dist.NewNormal(0, 1)
	d, err := Statistic([]float64{0}, n)
	if err != nil {
		t.Fatal(err)
	}
	// ECDF jumps 0→1 at x=0 where CDF=0.5, so D = 0.5.
	if math.Abs(d-0.5) > 1e-12 {
		t.Errorf("single-point KS = %v, want 0.5", d)
	}
}

func TestStatisticEmpty(t *testing.T) {
	n, _ := dist.NewNormal(0, 1)
	if _, err := Statistic(nil, n); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
}

func TestFeaturesLength(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = 1 + math.Abs(rng.NormFloat64())
	}
	f, err := Features(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(f) != 7 {
		t.Fatalf("feature vector length %d, want 7", len(f))
	}
	for i, v := range f {
		if v < 0 || v > 1 || math.IsNaN(v) {
			t.Errorf("feature %d (%s) = %v outside [0, 1]", i, FeatureNames()[i], v)
		}
	}
}

func TestFeaturesUnfittableFamiliesAreOne(t *testing.T) {
	// Negative sample: exponential, gamma, lognormal cannot fit → feature 1.
	xs := []float64{-5, -3, -8, -1, -2, -4}
	f, err := Features(xs)
	if err != nil {
		t.Fatal(err)
	}
	names := FeatureNames()
	for i, name := range names {
		switch name {
		case "exponential", "gamma", "lognormal":
			if f[i] != 1 {
				t.Errorf("%s on negative sample = %v, want 1", name, f[i])
			}
		}
	}
}

func TestFeaturesDiscriminateFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	// Normal-ish sample: the normal feature should be among the smallest.
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 50 + 5*rng.NormFloat64()
	}
	f, err := Features(xs)
	if err != nil {
		t.Fatal(err)
	}
	names := FeatureNames()
	idx := map[string]int{}
	for i, n := range names {
		idx[n] = i
	}
	if f[idx["normal"]] > f[idx["uniform"]] {
		t.Errorf("normal sample: KS(normal)=%v should beat KS(uniform)=%v",
			f[idx["normal"]], f[idx["uniform"]])
	}
	if f[idx["normal"]] > f[idx["exponential"]] {
		t.Errorf("normal sample: KS(normal)=%v should beat KS(exponential)=%v",
			f[idx["normal"]], f[idx["exponential"]])
	}

	// Uniform sample: the uniform feature wins.
	ys := make([]float64, 2000)
	for i := range ys {
		ys[i] = rng.Float64() * 10
	}
	g, err := Features(ys)
	if err != nil {
		t.Fatal(err)
	}
	if g[idx["uniform"]] > g[idx["normal"]] {
		t.Errorf("uniform sample: KS(uniform)=%v should beat KS(normal)=%v",
			g[idx["uniform"]], g[idx["normal"]])
	}
}

func TestFeaturesEmpty(t *testing.T) {
	if _, err := Features(nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
}

func TestFeatureNamesStable(t *testing.T) {
	want := []string{"normal", "uniform", "exponential", "beta", "gamma", "lognormal", "logistic"}
	got := FeatureNames()
	if len(got) != len(want) {
		t.Fatalf("FeatureNames length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FeatureNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}
