package dist

import (
	"fmt"
	"math"
)

// maxMomentShape caps the shape parameters produced by moment matching: a
// sample whose implied gamma/beta shape exceeds this is effectively a point
// mass, and such a fit is numerically meaningless.
const maxMomentShape = 1e6

// familyNames is the canonical family order; internal/ks exposes it as its
// KS feature order, so it must stay stable.
var familyNames = []string{
	"normal", "uniform", "exponential", "beta", "gamma", "lognormal", "logistic",
}

// FamilyNames returns the canonical family names in fitting order. The
// returned slice is a copy.
func FamilyNames() []string {
	return append([]string(nil), familyNames...)
}

// Fitted is a Distribution estimated from a sample by Families, tagged with
// the estimator that produced it.
type Fitted struct {
	Distribution
	// Method names the estimator used: "mle" or "moments".
	Method string
}

// sampleStats holds the one-pass summary Families fits from.
type sampleStats struct {
	n          int
	min, max   float64
	mean, vari float64 // vari is the population variance (MLE denominator n)
}

func summarize(xs []float64) sampleStats {
	s := sampleStats{n: len(xs), min: math.Inf(1), max: math.Inf(-1)}
	for _, x := range xs {
		s.mean += x
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	s.mean /= float64(s.n)
	for _, x := range xs {
		d := x - s.mean
		s.vari += d * d
	}
	s.vari /= float64(s.n)
	return s
}

// Families fits every family the sample supports and returns the fitted
// distributions in FamilyNames order (unsupported families are skipped, not
// errors — a negative sample simply yields no exponential/gamma/lognormal
// fit). Estimators are MLE where closed-form (normal, uniform, exponential,
// lognormal) and method-of-moments otherwise (beta, gamma, logistic).
// Only an empty or non-finite sample is an error.
func Families(xs []float64) ([]Fitted, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrInput)
	}
	for i, x := range xs {
		if !isFinite(x) {
			return nil, fmt.Errorf("%w: non-finite value %v at index %d", ErrInput, x, i)
		}
	}
	s := summarize(xs)
	out := make([]Fitted, 0, len(familyNames))

	// normal: needs spread.
	if s.vari > 0 {
		if d, err := NewNormal(s.mean, math.Sqrt(s.vari)); err == nil {
			out = append(out, Fitted{Distribution: d, Method: "mle"})
		}
	}

	// uniform: needs a non-degenerate range.
	if s.max > s.min {
		if d, err := NewUniform(s.min, s.max); err == nil {
			out = append(out, Fitted{Distribution: d, Method: "mle"})
		}
	}

	// exponential: non-negative support, positive mean.
	if s.min >= 0 && s.mean > 0 {
		if d, err := NewExponential(1 / s.mean); err == nil {
			out = append(out, Fitted{Distribution: d, Method: "mle"})
		}
	}

	// beta: sample confined to [0, 1] with spread; moment matching requires
	// vari < mean*(1-mean), which then yields positive shapes. Near-constant
	// samples imply absurd shapes — treat those as unsupported.
	if s.min >= 0 && s.max <= 1 && s.vari > 0 {
		if common := s.mean*(1-s.mean)/s.vari - 1; common > 0 {
			a := s.mean * common
			b := (1 - s.mean) * common
			if a <= maxMomentShape && b <= maxMomentShape {
				if d, err := NewBeta(a, b); err == nil {
					out = append(out, Fitted{Distribution: d, Method: "moments"})
				}
			}
		}
	}

	// gamma: non-negative support with positive mean and spread; the same
	// near-constant shape guard applies.
	if s.min >= 0 && s.mean > 0 && s.vari > 0 {
		alpha := s.mean * s.mean / s.vari
		beta := s.mean / s.vari
		if alpha <= maxMomentShape {
			if d, err := NewGamma(alpha, beta); err == nil {
				out = append(out, Fitted{Distribution: d, Method: "moments"})
			}
		}
	}

	// lognormal: strictly positive support with spread in log space.
	if s.min > 0 {
		var lm, lv float64
		for _, x := range xs {
			lm += math.Log(x)
		}
		lm /= float64(s.n)
		for _, x := range xs {
			d := math.Log(x) - lm
			lv += d * d
		}
		lv /= float64(s.n)
		if lv > 0 {
			if d, err := NewLogNormal(lm, math.Sqrt(lv)); err == nil {
				out = append(out, Fitted{Distribution: d, Method: "mle"})
			}
		}
	}

	// logistic: needs spread; scale from the variance identity var=(pi*s)^2/3.
	if s.vari > 0 {
		if d, err := NewLogistic(s.mean, math.Sqrt(3*s.vari)/math.Pi); err == nil {
			out = append(out, Fitted{Distribution: d, Method: "moments"})
		}
	}

	return out, nil
}
