package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func names(fitted []Fitted) map[string]Fitted {
	m := make(map[string]Fitted, len(fitted))
	for _, f := range fitted {
		m[f.Name()] = f
	}
	return m
}

func TestFamilyNamesStableAndCopied(t *testing.T) {
	want := []string{"normal", "uniform", "exponential", "beta", "gamma", "lognormal", "logistic"}
	got := FamilyNames()
	if len(got) != len(want) {
		t.Fatalf("FamilyNames length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("FamilyNames[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	got[0] = "mutated"
	if FamilyNames()[0] != "normal" {
		t.Error("FamilyNames returns a shared slice; want a copy")
	}
}

func TestFamiliesEmptyAndNonFinite(t *testing.T) {
	if _, err := Families(nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty sample: want ErrInput, got %v", err)
	}
	if _, err := Families([]float64{1, math.NaN(), 2}); !errors.Is(err, ErrInput) {
		t.Errorf("NaN sample: want ErrInput, got %v", err)
	}
	if _, err := Families([]float64{1, math.Inf(1)}); !errors.Is(err, ErrInput) {
		t.Errorf("Inf sample: want ErrInput, got %v", err)
	}
}

func TestFamiliesOrderMatchesFamilyNames(t *testing.T) {
	// A sample in (0,1) supports every family; fitted order must follow the
	// canonical order.
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 0.1 + 0.8*rng.Float64()
	}
	fitted, err := Families(xs)
	if err != nil {
		t.Fatal(err)
	}
	if len(fitted) != len(familyNames) {
		t.Fatalf("got %d families, want all %d", len(fitted), len(familyNames))
	}
	for i, f := range fitted {
		if f.Name() != familyNames[i] {
			t.Errorf("fitted[%d] = %s, want %s", i, f.Name(), familyNames[i])
		}
		if f.Method != "mle" && f.Method != "moments" {
			t.Errorf("fitted[%d] method %q, want mle|moments", i, f.Method)
		}
	}
}

func TestFamiliesSupportGuards(t *testing.T) {
	cases := []struct {
		name    string
		xs      []float64
		absent  []string
		present []string
	}{
		{
			name:    "negative values exclude positive-support families and beta",
			xs:      []float64{-5, -3, -8, -1, -2, -4},
			absent:  []string{"exponential", "gamma", "lognormal", "beta"},
			present: []string{"normal", "uniform", "logistic"},
		},
		{
			name:    "zeros exclude lognormal but not gamma/exponential",
			xs:      []float64{0, 1, 2, 3, 0, 5},
			absent:  []string{"lognormal", "beta"},
			present: []string{"normal", "uniform", "exponential", "gamma", "logistic"},
		},
		{
			name:    "values above 1 exclude beta",
			xs:      []float64{0.5, 1.5, 2.5, 0.7, 1.1},
			absent:  []string{"beta"},
			present: []string{"normal", "uniform", "exponential", "gamma", "lognormal", "logistic"},
		},
		{
			name:    "constant positive column keeps only exponential",
			xs:      []float64{4, 4, 4, 4},
			absent:  []string{"normal", "uniform", "beta", "gamma", "lognormal", "logistic"},
			present: []string{"exponential"},
		},
		{
			name:   "constant zero column fits nothing",
			xs:     []float64{0, 0, 0},
			absent: FamilyNames(),
		},
	}
	for _, c := range cases {
		fitted, err := Families(c.xs)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		byName := names(fitted)
		for _, n := range c.absent {
			if _, ok := byName[n]; ok {
				t.Errorf("%s: family %s fitted but sample cannot support it", c.name, n)
			}
		}
		for _, n := range c.present {
			if _, ok := byName[n]; !ok {
				t.Errorf("%s: family %s missing", c.name, n)
			}
		}
	}
}

func TestFamiliesParameterRecovery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 50000

	// Normal(10, 3): MLE should recover both parameters closely.
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 10 + 3*rng.NormFloat64()
	}
	fitted, err := Families(xs)
	if err != nil {
		t.Fatal(err)
	}
	nm, ok := names(fitted)["normal"].Distribution.(Normal)
	if !ok {
		t.Fatal("normal family missing or wrong concrete type")
	}
	if math.Abs(nm.Mu-10) > 0.1 || math.Abs(nm.Sigma-3) > 0.1 {
		t.Errorf("normal fit (%v, %v), want ≈ (10, 3)", nm.Mu, nm.Sigma)
	}

	// Exponential(rate 0.5): mean 2.
	for i := range xs {
		xs[i] = rng.ExpFloat64() * 2
	}
	fitted, err = Families(xs)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := names(fitted)["exponential"].Distribution.(Exponential)
	if !ok {
		t.Fatal("exponential family missing")
	}
	if math.Abs(ex.Rate-0.5) > 0.02 {
		t.Errorf("exponential rate %v, want ≈ 0.5", ex.Rate)
	}

	// Gamma(3, 2): moment estimates alpha=mean²/var, beta=mean/var.
	g := Gamma{Alpha: 3, Beta: 2}
	for i := range xs {
		xs[i] = g.Rand(rng)
	}
	fitted, err = Families(xs)
	if err != nil {
		t.Fatal(err)
	}
	gf, ok := names(fitted)["gamma"].Distribution.(Gamma)
	if !ok {
		t.Fatal("gamma family missing")
	}
	if math.Abs(gf.Alpha-3) > 0.2 || math.Abs(gf.Beta-2) > 0.15 {
		t.Errorf("gamma fit (%v, %v), want ≈ (3, 2)", gf.Alpha, gf.Beta)
	}

	// Beta(2, 5): moment matching on a confined sample.
	bd := Beta{A: 2, B: 5}
	for i := range xs {
		xs[i] = bd.Rand(rng)
	}
	fitted, err = Families(xs)
	if err != nil {
		t.Fatal(err)
	}
	bf, ok := names(fitted)["beta"].Distribution.(Beta)
	if !ok {
		t.Fatal("beta family missing")
	}
	if math.Abs(bf.A-2) > 0.2 || math.Abs(bf.B-5) > 0.4 {
		t.Errorf("beta fit (%v, %v), want ≈ (2, 5)", bf.A, bf.B)
	}
}

func TestFamiliesFitQuality(t *testing.T) {
	// The family the data came from should have a small KS-style sup
	// discrepancy between its CDF and the ECDF — indirectly validating every
	// estimator end to end.
	rng := rand.New(rand.NewSource(4))
	n := 20000
	gens := []struct {
		family string
		draw   func() float64
	}{
		{"normal", func() float64 { return 5 + 2*rng.NormFloat64() }},
		{"uniform", func() float64 { return -3 + 6*rng.Float64() }},
		{"exponential", func() float64 { return rng.ExpFloat64() / 3 }},
		{"lognormal", func() float64 { return math.Exp(1 + 0.4*rng.NormFloat64()) }},
		{"gamma", func() float64 { return Gamma{Alpha: 4, Beta: 1}.Rand(rng) }},
		{"beta", func() float64 { return Beta{A: 3, B: 2}.Rand(rng) }},
		{"logistic", func() float64 { return Logistic{Mu: 0, S: 2}.Rand(rng) }},
	}
	for _, g := range gens {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.draw()
		}
		fitted, err := Families(xs)
		if err != nil {
			t.Fatal(err)
		}
		f, ok := names(fitted)[g.family]
		if !ok {
			t.Fatalf("%s: own family not fitted", g.family)
		}
		// Coarse ECDF sup-distance on a probe grid.
		var maxD float64
		for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
			x := f.Quantile(p)
			var below int
			for _, v := range xs {
				if v <= x {
					below++
				}
			}
			d := math.Abs(float64(below)/float64(n) - p)
			if d > maxD {
				maxD = d
			}
		}
		if maxD > 0.05 {
			t.Errorf("%s: fitted-CDF vs ECDF discrepancy %v, want < 0.05", g.family, maxD)
		}
	}
}
