// Package dist is the parametric-distribution subsystem behind the KS
// baseline (internal/ks) and the synthetic corpus generators
// (internal/data): seven classical families — normal, uniform, exponential,
// beta, gamma, lognormal, logistic — behind one Distribution interface, plus
// moment/MLE fitting with support guards (Families).
//
// Special-function work (incomplete gamma/beta, the normal CDF and its
// inverse) is delegated to internal/mathx; everything here is the
// distribution-level layer: densities, CDFs, quantiles and samplers, each
// written to be safe for concurrent read-only use once constructed.
package dist

import (
	"errors"
	"math"
	"math/rand"
)

// ErrParam is returned (wrapped) by constructors for invalid parameters.
var ErrParam = errors.New("dist: invalid parameter")

// ErrInput is returned by Families for unusable samples.
var ErrInput = errors.New("dist: invalid input")

// Distribution is a univariate parametric distribution. Implementations are
// immutable value types: all methods are read-only and safe for concurrent
// use (Rand's determinism is carried entirely by the caller's rng).
type Distribution interface {
	// Name returns the canonical family name ("normal", "gamma", ...).
	Name() string
	// PDF returns the density at x (0 outside the support).
	PDF(x float64) float64
	// CDF returns P(X <= x), in [0, 1] and monotone non-decreasing.
	CDF(x float64) float64
	// Quantile returns the p-quantile for p in [0, 1]; p of 0 or 1 maps to
	// the support bounds (possibly ±Inf). Out-of-range p returns NaN.
	Quantile(p float64) float64
	// Rand draws one sample using rng.
	Rand(rng *rand.Rand) float64
}

// invertCDF numerically inverts d.CDF on the bracket [lo, hi] by bisection.
// The bracket must satisfy CDF(lo) <= p <= CDF(hi); callers pick the support
// bounds (expanding finite brackets first when the support is unbounded).
func invertCDF(d Distribution, p, lo, hi float64) float64 {
	for i := 0; i < 200 && hi-lo > 1e-14*(1+math.Abs(lo)+math.Abs(hi)); i++ {
		mid := lo + (hi-lo)/2
		if d.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo + (hi-lo)/2
}

// checkP validates a quantile probability, returning NaN pass-through
// semantics: ok is false when p is outside [0, 1] or NaN.
func checkP(p float64) bool { return !math.IsNaN(p) && p >= 0 && p <= 1 }
