package dist

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/gem-embeddings/gem/internal/mathx"
)

const sqrt2Pi = 2.5066282746310002 // sqrt(2*pi)

// ---------------------------------------------------------------- normal

// Normal is the Gaussian distribution N(Mu, Sigma^2).
type Normal struct {
	Mu, Sigma float64
}

// NewNormal returns N(mu, sigma^2), rejecting sigma <= 0 and non-finite
// parameters.
func NewNormal(mu, sigma float64) (Normal, error) {
	if !isFinite(mu) || !isFinite(sigma) || sigma <= 0 {
		return Normal{}, fmt.Errorf("%w: NewNormal(mu=%v, sigma=%v)", ErrParam, mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Name implements Distribution.
func (n Normal) Name() string { return "normal" }

// PDF implements Distribution.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-z*z/2) / (n.Sigma * sqrt2Pi)
}

// CDF implements Distribution.
func (n Normal) CDF(x float64) float64 {
	return mathx.NormalCDF((x - n.Mu) / n.Sigma)
}

// Quantile implements Distribution.
func (n Normal) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return math.Inf(-1)
	case 1:
		return math.Inf(1)
	}
	z, err := mathx.NormalQuantile(p)
	if err != nil {
		return math.NaN()
	}
	return n.Mu + n.Sigma*z
}

// Rand implements Distribution.
func (n Normal) Rand(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// ---------------------------------------------------------------- lognormal

// LogNormal is the distribution of exp(N(Mu, Sigma^2)); support (0, +Inf).
type LogNormal struct {
	Mu, Sigma float64
}

// NewLogNormal returns LogNormal(mu, sigma), rejecting sigma <= 0.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if !isFinite(mu) || !isFinite(sigma) || sigma <= 0 {
		return LogNormal{}, fmt.Errorf("%w: NewLogNormal(mu=%v, sigma=%v)", ErrParam, mu, sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Name implements Distribution.
func (l LogNormal) Name() string { return "lognormal" }

// PDF implements Distribution.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-z*z/2) / (x * l.Sigma * sqrt2Pi)
}

// CDF implements Distribution.
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return mathx.NormalCDF((math.Log(x) - l.Mu) / l.Sigma)
}

// Quantile implements Distribution.
func (l LogNormal) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	z, err := mathx.NormalQuantile(p)
	if err != nil {
		return math.NaN()
	}
	return math.Exp(l.Mu + l.Sigma*z)
}

// Rand implements Distribution.
func (l LogNormal) Rand(rng *rand.Rand) float64 {
	return math.Exp(l.Mu + l.Sigma*rng.NormFloat64())
}

// ---------------------------------------------------------------- exponential

// Exponential is the exponential distribution with rate Rate; support
// [0, +Inf), mean 1/Rate.
type Exponential struct {
	Rate float64
}

// NewExponential returns Exponential(rate), rejecting rate <= 0.
func NewExponential(rate float64) (Exponential, error) {
	if !isFinite(rate) || rate <= 0 {
		return Exponential{}, fmt.Errorf("%w: NewExponential(rate=%v)", ErrParam, rate)
	}
	return Exponential{Rate: rate}, nil
}

// Name implements Distribution.
func (e Exponential) Name() string { return "exponential" }

// PDF implements Distribution.
func (e Exponential) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	return e.Rate * math.Exp(-e.Rate*x)
}

// CDF implements Distribution.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Rate * x)
}

// Quantile implements Distribution.
func (e Exponential) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	if p == 1 {
		return math.Inf(1)
	}
	return -math.Log1p(-p) / e.Rate
}

// Rand implements Distribution.
func (e Exponential) Rand(rng *rand.Rand) float64 {
	return rng.ExpFloat64() / e.Rate
}

// ---------------------------------------------------------------- uniform

// Uniform is the continuous uniform distribution on [Lo, Hi].
type Uniform struct {
	Lo, Hi float64
}

// NewUniform returns Uniform(lo, hi), rejecting hi <= lo.
func NewUniform(lo, hi float64) (Uniform, error) {
	if !isFinite(lo) || !isFinite(hi) || hi <= lo {
		return Uniform{}, fmt.Errorf("%w: NewUniform(lo=%v, hi=%v)", ErrParam, lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Name implements Distribution.
func (u Uniform) Name() string { return "uniform" }

// PDF implements Distribution.
func (u Uniform) PDF(x float64) float64 {
	if x < u.Lo || x > u.Hi {
		return 0
	}
	return 1 / (u.Hi - u.Lo)
}

// CDF implements Distribution.
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	}
	return (x - u.Lo) / (u.Hi - u.Lo)
}

// Quantile implements Distribution.
func (u Uniform) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	return u.Lo + p*(u.Hi-u.Lo)
}

// Rand implements Distribution.
func (u Uniform) Rand(rng *rand.Rand) float64 {
	return u.Lo + rng.Float64()*(u.Hi-u.Lo)
}

// ---------------------------------------------------------------- gamma

// Gamma is the gamma distribution with shape Alpha and rate Beta; support
// [0, +Inf), mean Alpha/Beta.
type Gamma struct {
	Alpha, Beta float64
}

// NewGamma returns Gamma(alpha, beta), rejecting non-positive parameters.
func NewGamma(alpha, beta float64) (Gamma, error) {
	if !isFinite(alpha) || !isFinite(beta) || alpha <= 0 || beta <= 0 {
		return Gamma{}, fmt.Errorf("%w: NewGamma(alpha=%v, beta=%v)", ErrParam, alpha, beta)
	}
	return Gamma{Alpha: alpha, Beta: beta}, nil
}

// Name implements Distribution.
func (g Gamma) Name() string { return "gamma" }

// PDF implements Distribution.
func (g Gamma) PDF(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x == 0 {
		switch {
		case g.Alpha < 1:
			return math.Inf(1)
		case g.Alpha == 1:
			return g.Beta
		default:
			return 0
		}
	}
	lg, _ := math.Lgamma(g.Alpha)
	return math.Exp(g.Alpha*math.Log(g.Beta) + (g.Alpha-1)*math.Log(x) - g.Beta*x - lg)
}

// CDF implements Distribution.
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	p, err := mathx.GammaIncP(g.Alpha, g.Beta*x)
	if err != nil {
		// Very large shapes exhaust the series/CF iteration budget; there
		// the Wilson–Hilferty cube-root normal approximation is accurate
		// (error < 1e-4 for Alpha beyond a few hundred) and monotone.
		a := g.Alpha
		z := (math.Cbrt(g.Beta*x/a) - (1 - 1/(9*a))) * 3 * math.Sqrt(a)
		return mathx.NormalCDF(z)
	}
	return p
}

// Quantile implements Distribution.
func (g Gamma) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return math.Inf(1)
	}
	// Expand a finite bracket from the mean+k·std scale until it covers p,
	// then bisect.
	mean := g.Alpha / g.Beta
	std := math.Sqrt(g.Alpha) / g.Beta
	hi := mean + 8*std
	for g.CDF(hi) < p {
		hi *= 2
	}
	return invertCDF(g, p, 0, hi)
}

// Rand implements Distribution. It uses the Marsaglia–Tsang squeeze method
// (shape >= 1) with the standard boost for shape < 1.
func (g Gamma) Rand(rng *rand.Rand) float64 {
	alpha := g.Alpha
	boost := 1.0
	if alpha < 1 {
		// G(alpha) = G(alpha+1) * U^(1/alpha).
		u := rng.Float64()
		for u == 0 {
			u = rng.Float64()
		}
		boost = math.Pow(u, 1/alpha)
		alpha++
	}
	d := alpha - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		x := rng.NormFloat64()
		v := 1 + c*x
		if v <= 0 {
			continue
		}
		v = v * v * v
		u := rng.Float64()
		if u < 1-0.0331*x*x*x*x {
			return boost * d * v / g.Beta
		}
		if u > 0 && math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return boost * d * v / g.Beta
		}
	}
}

// ---------------------------------------------------------------- beta

// Beta is the beta distribution with shapes A and B; support [0, 1].
type Beta struct {
	A, B float64
}

// NewBeta returns Beta(a, b), rejecting non-positive parameters.
func NewBeta(a, b float64) (Beta, error) {
	if !isFinite(a) || !isFinite(b) || a <= 0 || b <= 0 {
		return Beta{}, fmt.Errorf("%w: NewBeta(a=%v, b=%v)", ErrParam, a, b)
	}
	return Beta{A: a, B: b}, nil
}

// Name implements Distribution.
func (b Beta) Name() string { return "beta" }

// PDF implements Distribution.
func (b Beta) PDF(x float64) float64 {
	if x < 0 || x > 1 {
		return 0
	}
	lb, err := mathx.LogBeta(b.A, b.B)
	if err != nil {
		return math.NaN()
	}
	if x == 0 {
		switch {
		case b.A < 1:
			return math.Inf(1)
		case b.A == 1:
			return math.Exp(-lb)
		default:
			return 0
		}
	}
	if x == 1 {
		switch {
		case b.B < 1:
			return math.Inf(1)
		case b.B == 1:
			return math.Exp(-lb)
		default:
			return 0
		}
	}
	return math.Exp((b.A-1)*math.Log(x) + (b.B-1)*math.Log1p(-x) - lb)
}

// CDF implements Distribution.
func (b Beta) CDF(x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	p, err := mathx.BetaInc(b.A, b.B, x)
	if err != nil {
		// Extreme shapes can exhaust the continued-fraction budget; fall
		// back to the normal approximation, accurate exactly in that
		// large-shape regime.
		s := b.A + b.B
		mean := b.A / s
		sd := math.Sqrt(b.A * b.B / (s * s * (s + 1)))
		return mathx.NormalCDF((x - mean) / sd)
	}
	return p
}

// Quantile implements Distribution.
func (b Beta) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return 0
	case 1:
		return 1
	}
	return invertCDF(b, p, 0, 1)
}

// Rand implements Distribution, via the ratio of two gamma draws.
func (b Beta) Rand(rng *rand.Rand) float64 {
	ga := Gamma{Alpha: b.A, Beta: 1}.Rand(rng)
	gb := Gamma{Alpha: b.B, Beta: 1}.Rand(rng)
	if ga+gb == 0 {
		return 0.5
	}
	return ga / (ga + gb)
}

// ---------------------------------------------------------------- logistic

// Logistic is the logistic distribution with location Mu and scale S;
// variance (pi*S)^2/3.
type Logistic struct {
	Mu, S float64
}

// NewLogistic returns Logistic(mu, s), rejecting s <= 0.
func NewLogistic(mu, s float64) (Logistic, error) {
	if !isFinite(mu) || !isFinite(s) || s <= 0 {
		return Logistic{}, fmt.Errorf("%w: NewLogistic(mu=%v, s=%v)", ErrParam, mu, s)
	}
	return Logistic{Mu: mu, S: s}, nil
}

// Name implements Distribution.
func (l Logistic) Name() string { return "logistic" }

// PDF implements Distribution. The symmetric exp(-|z|) form avoids overflow
// in either tail.
func (l Logistic) PDF(x float64) float64 {
	z := math.Abs(x-l.Mu) / l.S
	e := math.Exp(-z)
	return e / (l.S * (1 + e) * (1 + e))
}

// CDF implements Distribution.
func (l Logistic) CDF(x float64) float64 {
	return 1 / (1 + math.Exp(-(x-l.Mu)/l.S))
}

// Quantile implements Distribution.
func (l Logistic) Quantile(p float64) float64 {
	if !checkP(p) {
		return math.NaN()
	}
	switch p {
	case 0:
		return math.Inf(-1)
	case 1:
		return math.Inf(1)
	}
	return l.Mu + l.S*math.Log(p/(1-p))
}

// Rand implements Distribution, by inverse transform.
func (l Logistic) Rand(rng *rand.Rand) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return l.Mu + l.S*math.Log(u/(1-u))
}

// isFinite reports whether x is neither NaN nor ±Inf.
func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }
