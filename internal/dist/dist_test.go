package dist

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// families used by the cross-family tests, with their true mean/variance.
func testFamilies() []struct {
	d          Distribution
	mean, vari float64
} {
	return []struct {
		d          Distribution
		mean, vari float64
	}{
		{Normal{Mu: 3, Sigma: 2}, 3, 4},
		{LogNormal{Mu: 0, Sigma: 0.5}, math.Exp(0.125), (math.Exp(0.25) - 1) * math.Exp(0.25)},
		{Exponential{Rate: 2}, 0.5, 0.25},
		{Uniform{Lo: -1, Hi: 3}, 1, 16.0 / 12},
		{Gamma{Alpha: 3, Beta: 2}, 1.5, 0.75},
		{Beta{A: 2, B: 5}, 2.0 / 7, 2.0 * 5 / (49 * 8)},
		{Logistic{Mu: -2, S: 1.5}, -2, math.Pi * math.Pi * 2.25 / 3},
	}
}

func TestPDFCDFSpotChecks(t *testing.T) {
	// Closed-form reference values (computed analytically / via scipy).
	cases := []struct {
		name     string
		d        Distribution
		x        float64
		pdf, cdf float64
	}{
		{"normal std at 0", Normal{Mu: 0, Sigma: 1}, 0, 0.3989422804014327, 0.5},
		{"normal std at 1.96", Normal{Mu: 0, Sigma: 1}, 1.96, 0.05844094433345147, 0.9750021048517795},
		{"normal shifted", Normal{Mu: 5, Sigma: 2}, 5, 0.19947114020071635, 0.5},
		{"lognormal at 1", LogNormal{Mu: 0, Sigma: 1}, 1, 0.3989422804014327, 0.5},
		{"lognormal at e", LogNormal{Mu: 0, Sigma: 1}, math.E, math.Exp(-1.5) / math.Sqrt(2*math.Pi), 0.8413447460685429},
		{"exponential at 0", Exponential{Rate: 2}, 0, 2, 0},
		{"exponential at mean", Exponential{Rate: 2}, 0.5, 2 * math.Exp(-1), 1 - math.Exp(-1)},
		{"uniform mid", Uniform{Lo: 0, Hi: 4}, 1, 0.25, 0.25},
		{"gamma(1,1)=exp(1)", Gamma{Alpha: 1, Beta: 1}, 1, math.Exp(-1), 1 - math.Exp(-1)},
		{"gamma(2,1) at 2", Gamma{Alpha: 2, Beta: 1}, 2, 2 * math.Exp(-2), 1 - 3*math.Exp(-2)},
		{"beta(1,1)=uniform", Beta{A: 1, B: 1}, 0.3, 1, 0.3},
		{"beta(2,2) at 1/2", Beta{A: 2, B: 2}, 0.5, 1.5, 0.5},
		{"beta(2,5) at 0.2", Beta{A: 2, B: 5}, 0.2, 2.4576, 0.34464},
		{"logistic at mu", Logistic{Mu: 0, S: 1}, 0, 0.25, 0.5},
		{"logistic at 2", Logistic{Mu: 0, S: 1}, 2, 0.10499358540350652, 0.8807970779778823},
	}
	for _, c := range cases {
		if got := c.d.PDF(c.x); math.Abs(got-c.pdf) > 1e-10 {
			t.Errorf("%s: PDF(%v) = %v, want %v", c.name, c.x, got, c.pdf)
		}
		if got := c.d.CDF(c.x); math.Abs(got-c.cdf) > 1e-10 {
			t.Errorf("%s: CDF(%v) = %v, want %v", c.name, c.x, got, c.cdf)
		}
	}
}

func TestSupportBoundaries(t *testing.T) {
	// Densities and CDFs vanish below the support for one-sided families.
	for _, d := range []Distribution{
		LogNormal{Mu: 0, Sigma: 1},
		Exponential{Rate: 1},
		Gamma{Alpha: 2, Beta: 1},
	} {
		if got := d.PDF(-1); got != 0 {
			t.Errorf("%s: PDF(-1) = %v, want 0", d.Name(), got)
		}
		if got := d.CDF(-1); got != 0 {
			t.Errorf("%s: CDF(-1) = %v, want 0", d.Name(), got)
		}
	}
	b := Beta{A: 2, B: 3}
	if b.PDF(1.5) != 0 || b.PDF(-0.5) != 0 {
		t.Errorf("beta: PDF outside [0,1] nonzero")
	}
	if b.CDF(1.5) != 1 || b.CDF(-0.5) != 0 {
		t.Errorf("beta: CDF outside [0,1] not clamped")
	}
	u := Uniform{Lo: 2, Hi: 5}
	if u.CDF(1) != 0 || u.CDF(6) != 1 {
		t.Errorf("uniform: CDF not clamped outside [Lo,Hi]")
	}
}

func TestQuantileCDFRoundTrip(t *testing.T) {
	// Quantile(CDF(x)) ≈ x across the bulk of each support.
	for _, f := range testFamilies() {
		d := f.d
		for _, p := range []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			x := d.Quantile(p)
			if math.IsNaN(x) {
				t.Fatalf("%s: Quantile(%v) is NaN", d.Name(), p)
			}
			back := d.CDF(x)
			if math.Abs(back-p) > 1e-8 {
				t.Errorf("%s: CDF(Quantile(%v)) = %v, want %v", d.Name(), p, back, p)
			}
			x2 := d.Quantile(back)
			tol := 1e-6 * (1 + math.Abs(x))
			if math.Abs(x2-x) > tol {
				t.Errorf("%s: Quantile(CDF(%v)) = %v, drift > %v", d.Name(), x, x2, tol)
			}
		}
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	for _, f := range testFamilies() {
		d := f.d
		for _, p := range []float64{-0.1, 1.1, math.NaN()} {
			if got := d.Quantile(p); !math.IsNaN(got) {
				t.Errorf("%s: Quantile(%v) = %v, want NaN", d.Name(), p, got)
			}
		}
		lo, hi := d.Quantile(0), d.Quantile(1)
		if math.IsNaN(lo) || math.IsNaN(hi) || lo >= hi {
			t.Errorf("%s: Quantile(0)=%v, Quantile(1)=%v: want a valid support interval", d.Name(), lo, hi)
		}
	}
}

func TestRandSampleMoments(t *testing.T) {
	const n = 200000
	rng := rand.New(rand.NewSource(7))
	for _, f := range testFamilies() {
		var sum float64
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = f.d.Rand(rng)
			sum += xs[i]
		}
		mean := sum / n
		var vari float64
		for _, x := range xs {
			d := x - mean
			vari += d * d
		}
		vari /= n
		// 5-sigma-ish tolerances on 200k samples, scaled by the true spread.
		meanTol := 5 * math.Sqrt(f.vari/n) * 3
		if math.Abs(mean-f.mean) > meanTol+1e-9 {
			t.Errorf("%s: sample mean %v, want %v (tol %v)", f.d.Name(), mean, f.mean, meanTol)
		}
		if math.Abs(vari-f.vari) > 0.1*f.vari {
			t.Errorf("%s: sample variance %v, want %v ±10%%", f.d.Name(), vari, f.vari)
		}
	}
}

func TestRandRespectsSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	checks := []struct {
		d      Distribution
		lo, hi float64
	}{
		{Exponential{Rate: 3}, 0, math.Inf(1)},
		{LogNormal{Mu: 1, Sigma: 2}, 0, math.Inf(1)},
		{Gamma{Alpha: 0.3, Beta: 2}, 0, math.Inf(1)}, // exercises the alpha<1 boost
		{Gamma{Alpha: 7, Beta: 0.5}, 0, math.Inf(1)},
		{Beta{A: 0.4, B: 0.7}, 0, 1},
		{Uniform{Lo: -2, Hi: -1}, -2, -1},
	}
	for _, c := range checks {
		for i := 0; i < 5000; i++ {
			x := c.d.Rand(rng)
			if math.IsNaN(x) || x < c.lo || x > c.hi {
				t.Fatalf("%s: sample %v outside [%v, %v]", c.d.Name(), x, c.lo, c.hi)
			}
		}
	}
}

func TestConstructorsRejectBadParams(t *testing.T) {
	bad := []error{}
	collect := func(err error) {
		if err != nil {
			bad = append(bad, err)
		}
	}
	_, err := NewNormal(0, 0)
	collect(err)
	_, err = NewNormal(math.NaN(), 1)
	collect(err)
	_, err = NewLogNormal(0, -1)
	collect(err)
	_, err = NewExponential(0)
	collect(err)
	_, err = NewUniform(3, 3)
	collect(err)
	_, err = NewGamma(-1, 1)
	collect(err)
	_, err = NewGamma(1, math.Inf(1))
	collect(err)
	_, err = NewBeta(0, 1)
	collect(err)
	_, err = NewLogistic(0, 0)
	collect(err)
	if len(bad) != 9 {
		t.Fatalf("expected 9 rejections, got %d", len(bad))
	}
	for _, err := range bad {
		if !errors.Is(err, ErrParam) {
			t.Errorf("error %v does not wrap ErrParam", err)
		}
	}
}

func TestConstructorsAcceptGoodParams(t *testing.T) {
	if _, err := NewNormal(0, 1); err != nil {
		t.Error(err)
	}
	if _, err := NewLogNormal(-1, 2); err != nil {
		t.Error(err)
	}
	if _, err := NewExponential(0.1); err != nil {
		t.Error(err)
	}
	if _, err := NewUniform(-1, 1); err != nil {
		t.Error(err)
	}
	if _, err := NewGamma(0.5, 3); err != nil {
		t.Error(err)
	}
	if _, err := NewBeta(2, 2); err != nil {
		t.Error(err)
	}
	if _, err := NewLogistic(5, 0.2); err != nil {
		t.Error(err)
	}
}

func TestNames(t *testing.T) {
	want := map[string]Distribution{
		"normal":      Normal{Mu: 0, Sigma: 1},
		"uniform":     Uniform{Lo: 0, Hi: 1},
		"exponential": Exponential{Rate: 1},
		"beta":        Beta{A: 1, B: 1},
		"gamma":       Gamma{Alpha: 1, Beta: 1},
		"lognormal":   LogNormal{Mu: 0, Sigma: 1},
		"logistic":    Logistic{Mu: 0, S: 1},
	}
	for name, d := range want {
		if d.Name() != name {
			t.Errorf("%T.Name() = %q, want %q", d, d.Name(), name)
		}
	}
}
