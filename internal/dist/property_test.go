package dist

import (
	"math"
	"math/rand"
	"testing"
)

// randomSample draws a sample from a randomly chosen generator shape so the
// property tests sweep constants, mixtures, heavy tails, negatives and
// confined ranges.
func randomSample(rng *rand.Rand) []float64 {
	n := 2 + rng.Intn(400)
	xs := make([]float64, n)
	switch rng.Intn(7) {
	case 0: // gaussian, arbitrary location/scale
		mu, s := rng.NormFloat64()*100, math.Abs(rng.NormFloat64())*50+1e-6
		for i := range xs {
			xs[i] = mu + s*rng.NormFloat64()
		}
	case 1: // strictly positive, heavy tail
		for i := range xs {
			xs[i] = math.Exp(rng.NormFloat64() * 2)
		}
	case 2: // confined to [0,1]
		for i := range xs {
			xs[i] = rng.Float64()
		}
	case 3: // negative shifted uniform
		for i := range xs {
			xs[i] = -100 + 30*rng.Float64()
		}
	case 4: // constant column
		c := rng.NormFloat64() * 10
		for i := range xs {
			xs[i] = c
		}
	case 5: // discrete/repetitive small support
		for i := range xs {
			xs[i] = float64(rng.Intn(5))
		}
	default: // bimodal mixture straddling zero
		for i := range xs {
			if rng.Intn(2) == 0 {
				xs[i] = -5 + rng.NormFloat64()
			} else {
				xs[i] = 5 + rng.NormFloat64()
			}
		}
	}
	return xs
}

// TestPropertyFittedCDFMonotoneBounded checks, for every family fitted to
// every random sample, that the CDF is monotone non-decreasing and bounded
// in [0, 1] over a probe grid spanning the support and beyond it.
func TestPropertyFittedCDFMonotoneBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		xs := randomSample(rng)
		fitted, err := Families(xs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		span := hi - lo
		if span == 0 {
			span = math.Abs(hi) + 1
		}
		for _, f := range fitted {
			prev := math.Inf(-1)
			for i := 0; i <= 60; i++ {
				// Grid from below the sample min to above the max.
				x := lo - span + float64(i)/60*3*span
				c := f.CDF(x)
				if math.IsNaN(c) || c < 0 || c > 1 {
					t.Fatalf("trial %d: %s CDF(%v) = %v outside [0,1]", trial, f.Name(), x, c)
				}
				if c < prev-1e-12 {
					t.Fatalf("trial %d: %s CDF decreases at %v: %v < %v", trial, f.Name(), x, c, prev)
				}
				prev = c
				if p := f.PDF(x); math.IsNaN(p) || p < 0 {
					t.Fatalf("trial %d: %s PDF(%v) = %v negative or NaN", trial, f.Name(), x, p)
				}
			}
		}
	}
}

// TestPropertyFamiliesRespectSupport checks Families never returns a family
// whose support cannot contain the sample.
func TestPropertyFamiliesRespectSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 300; trial++ {
		xs := randomSample(rng)
		fitted, err := Families(xs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			lo, hi = math.Min(lo, x), math.Max(hi, x)
		}
		for _, f := range fitted {
			switch f.Name() {
			case "exponential", "gamma":
				if lo < 0 {
					t.Fatalf("trial %d: %s fitted to sample with min %v < 0", trial, f.Name(), lo)
				}
			case "lognormal":
				if lo <= 0 {
					t.Fatalf("trial %d: lognormal fitted to sample with min %v <= 0", trial, lo)
				}
			case "beta":
				if lo < 0 || hi > 1 {
					t.Fatalf("trial %d: beta fitted to sample range [%v, %v]", trial, lo, hi)
				}
			}
			// Whatever was fitted must give every sample point a defined,
			// in-range CDF value.
			for _, x := range xs {
				if c := f.CDF(x); math.IsNaN(c) || c < 0 || c > 1 {
					t.Fatalf("trial %d: %s CDF(sample %v) = %v", trial, f.Name(), x, c)
				}
			}
		}
	}
}

// TestPropertyQuantileMonotone checks quantiles are non-decreasing in p for
// fitted families — the inverse counterpart of CDF monotonicity, which also
// exercises the numeric inversion used by gamma and beta.
func TestPropertyQuantileMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 40; trial++ {
		xs := randomSample(rng)
		fitted, err := Families(xs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for _, f := range fitted {
			prev := math.Inf(-1)
			for _, p := range []float64{0.02, 0.1, 0.3, 0.5, 0.7, 0.9, 0.98} {
				q := f.Quantile(p)
				if math.IsNaN(q) {
					t.Fatalf("trial %d: %s Quantile(%v) NaN", trial, f.Name(), p)
				}
				if q < prev-1e-9*(1+math.Abs(prev)) {
					t.Fatalf("trial %d: %s Quantile decreases at p=%v: %v < %v", trial, f.Name(), p, q, prev)
				}
				prev = q
			}
		}
	}
}
