package deepcluster

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/mathx"
)

// blobs generates k well-separated Gaussian blobs in dim dimensions and
// returns rows plus ground-truth labels.
func blobs(k, perCluster, dim int, seed int64) ([][]float64, []string) {
	rng := rand.New(rand.NewSource(seed))
	rows := make([][]float64, 0, k*perCluster)
	labels := make([]string, 0, k*perCluster)
	for c := 0; c < k; c++ {
		center := make([]float64, dim)
		for t := range center {
			center[t] = float64(c*10) * math.Cos(float64(t+c))
		}
		for i := 0; i < perCluster; i++ {
			row := make([]float64, dim)
			for t := range row {
				row[t] = center[t] + 0.5*rng.NormFloat64()
			}
			rows = append(rows, row)
			labels = append(labels, string(rune('a'+c)))
		}
	}
	return rows, labels
}

func fastCfg(k int) Config {
	return Config{
		K:              k,
		LatentDim:      8,
		Hidden:         []int{32},
		PretrainEpochs: 40,
		RefineIters:    10,
		Seed:           1,
	}
}

func TestSDCNSeparatesBlobs(t *testing.T) {
	rows, labels := blobs(3, 40, 12, 2)
	res, err := SDCN(rows, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := eval.ClusterACC(labels, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("SDCN ACC on separated blobs = %v, want >= 0.9", acc)
	}
	ari, _ := eval.AdjustedRandIndex(labels, res.Assignments)
	if ari < 0.8 {
		t.Errorf("SDCN ARI = %v, want >= 0.8", ari)
	}
}

func TestTableDCSeparatesBlobs(t *testing.T) {
	rows, labels := blobs(3, 40, 12, 3)
	res, err := TableDC(rows, fastCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	acc, err := eval.ClusterACC(labels, res.Assignments)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.9 {
		t.Errorf("TableDC ACC on separated blobs = %v, want >= 0.9", acc)
	}
}

func TestResultShapes(t *testing.T) {
	rows, _ := blobs(2, 20, 6, 4)
	res, err := SDCN(rows, fastCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assignments) != len(rows) {
		t.Errorf("assignments length %d, want %d", len(res.Assignments), len(rows))
	}
	if len(res.Latent) != len(rows) || len(res.Latent[0]) != 6 {
		// latent clamped to min(LatentDim=8, input=6)
		t.Errorf("latent shape %dx%d, want %dx6", len(res.Latent), len(res.Latent[0]), len(rows))
	}
	if len(res.Q) != len(rows) || len(res.Q[0]) != 2 {
		t.Errorf("Q shape wrong")
	}
	if len(res.Centroids) != 2 {
		t.Errorf("centroids count %d, want 2", len(res.Centroids))
	}
	for _, a := range res.Assignments {
		if a < 0 || a >= 2 {
			t.Fatalf("assignment %d outside [0, 2)", a)
		}
	}
}

func TestQRowsSumToOne(t *testing.T) {
	rows, _ := blobs(3, 15, 5, 5)
	for name, run := range map[string]func([][]float64, Config) (*Result, error){
		"SDCN":    SDCN,
		"TableDC": TableDC,
	} {
		res, err := run(rows, fastCfg(3))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i, row := range res.Q {
			var s float64
			for _, v := range row {
				if v < 0 {
					t.Fatalf("%s: negative q at row %d", name, i)
				}
				s += v
			}
			if !mathx.AlmostEqual(s, 1, 1e-9) {
				t.Errorf("%s: Q row %d sums to %v", name, i, s)
			}
		}
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		rows [][]float64
		k    int
	}{
		{nil, 2},
		{[][]float64{{}}, 1},
		{[][]float64{{1, 2}, {1}}, 1},
		{[][]float64{{1, 2}}, 0},
		{[][]float64{{1, 2}}, 5},
	}
	for i, tc := range cases {
		if _, err := SDCN(tc.rows, Config{K: tc.k}); !errors.Is(err, ErrInput) {
			t.Errorf("SDCN case %d: want ErrInput, got %v", i, err)
		}
		if _, err := TableDC(tc.rows, Config{K: tc.k}); !errors.Is(err, ErrInput) {
			t.Errorf("TableDC case %d: want ErrInput, got %v", i, err)
		}
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	rows, _ := blobs(2, 20, 6, 6)
	a, err := TableDC(rows, fastCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	b, err := TableDC(rows, fastCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatal("TableDC not deterministic under fixed seed")
		}
	}
}

func TestTargetDistributionSharpens(t *testing.T) {
	q := [][]float64{
		{0.6, 0.4},
		{0.7, 0.3},
		{0.4, 0.6},
	}
	p := targetDistribution(q)
	// Sharpening: dominant entries grow.
	if p[0][0] <= q[0][0] {
		t.Errorf("p[0][0] = %v should exceed q[0][0] = %v", p[0][0], q[0][0])
	}
	for i, row := range p {
		var s float64
		for _, v := range row {
			s += v
		}
		if !mathx.AlmostEqual(s, 1, 1e-9) {
			t.Errorf("p row %d sums to %v", i, s)
		}
	}
	if targetDistribution(nil) != nil {
		t.Error("empty q should give nil p")
	}
}

func TestStudentTKernel(t *testing.T) {
	centroids := [][]float64{{0, 0}, {10, 0}}
	q := studentT([]float64{0.1, 0}, centroids)
	if q[0] <= q[1] {
		t.Errorf("point near centroid 0 should favour it: %v", q)
	}
	if !mathx.AlmostEqual(q[0]+q[1], 1, 1e-12) {
		t.Errorf("kernel output must normalize: %v", q)
	}
}

func TestKNNIndices(t *testing.T) {
	rows := [][]float64{{0}, {1}, {10}, {11}}
	nb := knnIndices(rows, 1)
	if nb[0][0] != 1 || nb[1][0] != 0 || nb[2][0] != 3 || nb[3][0] != 2 {
		t.Errorf("knnIndices = %v", nb)
	}
	// k clamps to n-1.
	nb = knnIndices(rows, 10)
	if len(nb[0]) != 3 {
		t.Errorf("clamped k: got %d neighbours", len(nb[0]))
	}
}

func TestPropagateSmooths(t *testing.T) {
	z := [][]float64{{0}, {2}}
	nb := [][]int{{1}, {0}}
	out := propagate(z, nb)
	if out[0][0] != 1 || out[1][0] != 1 {
		t.Errorf("propagate = %v, want both 1", out)
	}
}

func TestInverseVariances(t *testing.T) {
	z := [][]float64{{0, 100}, {2, 104}, {4, 96}}
	iv := inverseVariances(z)
	// First coordinate has smaller variance → larger inverse variance.
	if iv[0] <= iv[1] {
		t.Errorf("inverseVariances = %v, want iv[0] > iv[1]", iv)
	}
}
