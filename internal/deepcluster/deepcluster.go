// Package deepcluster implements the two deep-clustering algorithms of the
// paper's Table 4 on this repository's substrates: SDCN (Bo et al., WWW'20)
// and TableDC (Rauf et al., 2024). Both are reimplemented in simplified but
// structurally faithful form (see DESIGN.md §4, substitution 4):
//
//   - Both pretrain an autoencoder on the input embeddings and initialize
//     cluster centroids with k-means in the latent space.
//   - Both then refine clusters with DEC-style self-supervision: a soft
//     assignment distribution Q is computed from latent-centroid distances,
//     sharpened into a target distribution P, and centroids are re-estimated
//     against P; iterate.
//   - SDCN additionally propagates the latent representation over a
//     k-nearest-neighbour graph of the inputs (its GCN branch) and blends
//     the structural and autoencoder views before refinement — its "dual
//     self-supervision".
//   - TableDC replaces the Student-t kernel with a Cauchy kernel over the
//     Mahalanobis distance (shared diagonal covariance), its signature
//     design for dense, heavily overlapping embedding spaces.
package deepcluster

import (
	"errors"
	"fmt"
	"math"

	"github.com/gem-embeddings/gem/internal/autoencoder"
	"github.com/gem-embeddings/gem/internal/kmeans"
)

// ErrInput is returned for invalid clustering inputs.
var ErrInput = errors.New("deepcluster: invalid input")

// Config controls a deep-clustering run.
type Config struct {
	// K is the number of clusters (required).
	K int
	// LatentDim is the AE bottleneck width. Default 32 (clamped to input
	// width).
	LatentDim int
	// Hidden is the AE encoder hidden widths. Default [128].
	Hidden []int
	// PretrainEpochs is the AE reconstruction pretraining length. Default 30.
	PretrainEpochs int
	// RefineIters is the number of self-supervised refinement iterations.
	// Default 20.
	RefineIters int
	// UpdateInterval is how often the target distribution P is refreshed.
	// Default 5.
	UpdateInterval int
	// KNN is the neighbourhood size of SDCN's graph branch. Default 5.
	KNN int
	// GraphBlend is SDCN's mixing weight between the AE view and the
	// graph-propagated view. Default 0.5.
	GraphBlend float64
	// Seed makes the run deterministic.
	Seed int64
}

func (c *Config) fillDefaults(inputDim int) {
	if c.LatentDim <= 0 {
		c.LatentDim = 32
	}
	if c.LatentDim > inputDim {
		c.LatentDim = inputDim
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{128}
	}
	if c.PretrainEpochs <= 0 {
		c.PretrainEpochs = 30
	}
	if c.RefineIters <= 0 {
		c.RefineIters = 20
	}
	if c.UpdateInterval <= 0 {
		c.UpdateInterval = 5
	}
	if c.KNN <= 0 {
		c.KNN = 5
	}
	if c.GraphBlend <= 0 || c.GraphBlend >= 1 {
		c.GraphBlend = 0.5
	}
}

// Result holds a deep-clustering outcome.
type Result struct {
	// Assignments maps each input row to a cluster in [0, K).
	Assignments []int
	// Latent is the refined latent representation of each row.
	Latent [][]float64
	// Q is the final soft-assignment matrix (rows sum to 1).
	Q [][]float64
	// Centroids are the final cluster centers in latent space.
	Centroids [][]float64
}

// kernel computes the soft-assignment row for one latent point.
type kernel func(z []float64, centroids [][]float64) []float64

// SDCN clusters the rows with the (simplified) Structural Deep Clustering
// Network: AE pretraining, KNN-graph propagation of the latent view, and
// DEC-style dual self-supervised refinement with a Student-t kernel.
func SDCN(rows [][]float64, cfg Config) (*Result, error) {
	if err := checkRows(rows, cfg.K); err != nil {
		return nil, err
	}
	cfg.fillDefaults(len(rows[0]))
	z, err := pretrainLatent(rows, cfg)
	if err != nil {
		return nil, fmt.Errorf("deepcluster: SDCN: %w", err)
	}
	// Graph branch: one round of normalized KNN propagation blended with the
	// AE view (the structural/dual supervision signal).
	neighbors := knnIndices(rows, cfg.KNN)
	zg := propagate(z, neighbors)
	blend := cfg.GraphBlend
	for i := range z {
		for j := range z[i] {
			z[i][j] = (1-blend)*z[i][j] + blend*zg[i][j]
		}
	}
	return refine(z, cfg, studentT)
}

// TableDC clusters the rows with the (simplified) TableDC algorithm: AE
// pretraining and self-supervised refinement with a Cauchy kernel over the
// Mahalanobis distance under a shared diagonal covariance.
func TableDC(rows [][]float64, cfg Config) (*Result, error) {
	if err := checkRows(rows, cfg.K); err != nil {
		return nil, err
	}
	cfg.fillDefaults(len(rows[0]))
	z, err := pretrainLatent(rows, cfg)
	if err != nil {
		return nil, fmt.Errorf("deepcluster: TableDC: %w", err)
	}
	invVar := inverseVariances(z)
	mahalanobisCauchy := func(zi []float64, centroids [][]float64) []float64 {
		out := make([]float64, len(centroids))
		var sum float64
		for j, c := range centroids {
			var d2 float64
			for t := range zi {
				d := zi[t] - c[t]
				d2 += d * d * invVar[t]
			}
			v := 1 / (1 + d2) // Cauchy kernel on Mahalanobis distance
			out[j] = v
			sum += v
		}
		for j := range out {
			out[j] /= sum
		}
		return out
	}
	return refine(z, cfg, mahalanobisCauchy)
}

// inverseVariances returns 1/var per latent coordinate (variance floored to
// keep the Mahalanobis metric finite on collapsed coordinates).
func inverseVariances(z [][]float64) []float64 {
	dim := len(z[0])
	n := float64(len(z))
	mean := make([]float64, dim)
	for _, row := range z {
		for t, v := range row {
			mean[t] += v
		}
	}
	for t := range mean {
		mean[t] /= n
	}
	out := make([]float64, dim)
	for _, row := range z {
		for t, v := range row {
			d := v - mean[t]
			out[t] += d * d
		}
	}
	for t := range out {
		v := out[t] / n
		if v < 1e-9 {
			v = 1e-9
		}
		out[t] = 1 / v
	}
	return out
}

func checkRows(rows [][]float64, k int) error {
	if len(rows) == 0 {
		return fmt.Errorf("%w: no rows", ErrInput)
	}
	if len(rows[0]) == 0 {
		return fmt.Errorf("%w: zero-width rows", ErrInput)
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return fmt.Errorf("%w: row %d has width %d, want %d", ErrInput, i, len(r), width)
		}
	}
	if k < 1 {
		return fmt.Errorf("%w: K = %d", ErrInput, k)
	}
	if k > len(rows) {
		return fmt.Errorf("%w: K = %d > %d rows", ErrInput, k, len(rows))
	}
	return nil
}

// pretrainLatent trains the AE and returns latent codes.
func pretrainLatent(rows [][]float64, cfg Config) ([][]float64, error) {
	ae, err := autoencoder.New(autoencoder.Config{
		InputDim:  len(rows[0]),
		Hidden:    cfg.Hidden,
		LatentDim: cfg.LatentDim,
		Seed:      cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	if _, err := ae.Train(rows, autoencoder.TrainConfig{
		Epochs:       cfg.PretrainEpochs,
		BatchSize:    64,
		LearningRate: 1e-3,
		Seed:         cfg.Seed,
	}); err != nil {
		return nil, err
	}
	return ae.Encode(rows)
}

// studentT is DEC/SDCN's soft assignment: q_ij ∝ (1 + ||z-mu||^2)^-1
// (Student's t with one degree of freedom).
func studentT(z []float64, centroids [][]float64) []float64 {
	out := make([]float64, len(centroids))
	var sum float64
	for j, c := range centroids {
		var d2 float64
		for t := range z {
			d := z[t] - c[t]
			d2 += d * d
		}
		v := 1 / (1 + d2)
		out[j] = v
		sum += v
	}
	for j := range out {
		out[j] /= sum
	}
	return out
}

// refine runs the DEC-style alternating refinement: compute Q, sharpen into
// P every UpdateInterval iterations, and re-estimate centroids as
// P-weighted means.
func refine(z [][]float64, cfg Config, kern kernel) (*Result, error) {
	n := len(z)
	dim := len(z[0])
	km, err := kmeans.Run(z, kmeans.Config{K: cfg.K, Restarts: 4, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("deepcluster: centroid init: %w", err)
	}
	centroids := km.Centroids

	q := make([][]float64, n)
	var p [][]float64
	for iter := 0; iter < cfg.RefineIters; iter++ {
		for i := range z {
			q[i] = kern(z[i], centroids)
		}
		if iter%cfg.UpdateInterval == 0 || p == nil {
			p = targetDistribution(q)
		}
		// M-step: centroids as P-weighted means of latent points.
		for j := 0; j < cfg.K; j++ {
			var wsum float64
			acc := make([]float64, dim)
			for i := 0; i < n; i++ {
				w := p[i][j]
				wsum += w
				for t := 0; t < dim; t++ {
					acc[t] += w * z[i][t]
				}
			}
			if wsum <= 1e-12 {
				continue // dead cluster: keep previous centroid
			}
			for t := 0; t < dim; t++ {
				centroids[j][t] = acc[t] / wsum
			}
		}
	}
	for i := range z {
		q[i] = kern(z[i], centroids)
	}
	assign := make([]int, n)
	for i, row := range q {
		best, bestV := 0, math.Inf(-1)
		for j, v := range row {
			if v > bestV {
				bestV = v
				best = j
			}
		}
		assign[i] = best
	}
	return &Result{Assignments: assign, Latent: z, Q: q, Centroids: centroids}, nil
}

// targetDistribution sharpens Q into DEC's target P:
// p_ij ∝ q_ij^2 / f_j with f_j the cluster's total soft mass.
func targetDistribution(q [][]float64) [][]float64 {
	if len(q) == 0 {
		return nil
	}
	k := len(q[0])
	f := make([]float64, k)
	for _, row := range q {
		for j, v := range row {
			f[j] += v
		}
	}
	p := make([][]float64, len(q))
	for i, row := range q {
		pr := make([]float64, k)
		var sum float64
		for j, v := range row {
			var w float64
			if f[j] > 0 {
				w = v * v / f[j]
			}
			pr[j] = w
			sum += w
		}
		if sum > 0 {
			for j := range pr {
				pr[j] /= sum
			}
		}
		p[i] = pr
	}
	return p
}

// knnIndices returns, for every row, the indices of its k nearest
// neighbours by Euclidean distance in the input space.
func knnIndices(rows [][]float64, k int) [][]int {
	n := len(rows)
	if k > n-1 {
		k = n - 1
	}
	out := make([][]int, n)
	type cand struct {
		j int
		d float64
	}
	for i := 0; i < n; i++ {
		cands := make([]cand, 0, n-1)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			var d2 float64
			for t := range rows[i] {
				d := rows[i][t] - rows[j][t]
				d2 += d * d
			}
			cands = append(cands, cand{j, d2})
		}
		// Partial selection sort of the k nearest.
		ids := make([]int, 0, k)
		for t := 0; t < k; t++ {
			best := t
			for u := t + 1; u < len(cands); u++ {
				if cands[u].d < cands[best].d {
					best = u
				}
			}
			cands[t], cands[best] = cands[best], cands[t]
			ids = append(ids, cands[t].j)
		}
		out[i] = ids
	}
	return out
}

// propagate averages each latent row with its graph neighbours (one step of
// normalized adjacency propagation, self-loop included).
func propagate(z [][]float64, neighbors [][]int) [][]float64 {
	out := make([][]float64, len(z))
	for i := range z {
		acc := append([]float64(nil), z[i]...)
		for _, j := range neighbors[i] {
			for t := range acc {
				acc[t] += z[j][t]
			}
		}
		inv := 1 / float64(len(neighbors[i])+1)
		for t := range acc {
			acc[t] *= inv
		}
		out[i] = acc
	}
	return out
}
