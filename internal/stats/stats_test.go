package stats

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/gem-embeddings/gem/internal/mathx"
)

func TestMeanBasic(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"single", []float64{7}, 7},
		{"pair", []float64{1, 3}, 2},
		{"negatives", []float64{-2, -4, -6}, -4},
		{"mixed", []float64{-1, 0, 1}, 0},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Mean(tc.xs)
			if err != nil {
				t.Fatal(err)
			}
			if !mathx.AlmostEqual(got, tc.want, 1e-12) {
				t.Errorf("Mean(%v) = %v, want %v", tc.xs, got, tc.want)
			}
		})
	}
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Mean(nil): want ErrEmpty, got %v", err)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(v, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", v)
	}
	sd, _ := StdDev(xs)
	if !mathx.AlmostEqual(sd, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
	sv, _ := SampleVariance(xs)
	if !mathx.AlmostEqual(sv, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want 32/7", sv)
	}
	if sv1, _ := SampleVariance([]float64{3}); sv1 != 0 {
		t.Errorf("SampleVariance(single) = %v, want 0", sv1)
	}
}

func TestVarianceNonNegativeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e8))
			}
		}
		if len(clean) == 0 {
			return true
		}
		v, err := Variance(clean)
		return err == nil && v >= -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSkewnessSymmetricIsZero(t *testing.T) {
	xs := []float64{-3, -1, 0, 1, 3}
	s, err := Skewness(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(s, 0, 1e-12) {
		t.Errorf("Skewness(symmetric) = %v, want 0", s)
	}
	s, _ = Skewness([]float64{5, 5, 5})
	if s != 0 {
		t.Errorf("Skewness(constant) = %v, want 0", s)
	}
	right, _ := Skewness([]float64{1, 1, 1, 10})
	if right <= 0 {
		t.Errorf("right-tailed sample should have positive skew, got %v", right)
	}
}

func TestKurtosis(t *testing.T) {
	// Two-point symmetric distribution has kurtosis 1, excess -2.
	k, err := Kurtosis([]float64{-1, 1, -1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(k, -2, 1e-12) {
		t.Errorf("Kurtosis(±1) = %v, want -2", k)
	}
	if k, _ := Kurtosis([]float64{2, 2}); k != 0 {
		t.Errorf("Kurtosis(constant) = %v, want 0", k)
	}
}

func TestMinMaxRange(t *testing.T) {
	xs := []float64{3, -2, 8, 0}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	rg, _ := Range(xs)
	if lo != -2 || hi != 8 || rg != 10 {
		t.Errorf("Min/Max/Range = %v/%v/%v, want -2/8/10", lo, hi, rg)
	}
	if _, err := Range(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Range(nil): want ErrEmpty, got %v", err)
	}
}

func TestCoefficientOfVariation(t *testing.T) {
	cv, err := CoefficientOfVariation([]float64{10, 10, 10})
	if err != nil || cv != 0 {
		t.Errorf("CV(constant) = %v, %v; want 0", cv, err)
	}
	cv, _ = CoefficientOfVariation([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !mathx.AlmostEqual(cv, 0.4, 1e-12) {
		t.Errorf("CV = %v, want 0.4", cv)
	}
	// Zero-mean sample falls back to the stddev.
	cv, _ = CoefficientOfVariation([]float64{-1, 1})
	if !mathx.AlmostEqual(cv, 1, 1e-12) {
		t.Errorf("CV(zero mean) = %v, want 1", cv)
	}
}

func TestUniqueCount(t *testing.T) {
	if n := UniqueCount([]float64{1, 1, 2, 3, 3, 3}); n != 3 {
		t.Errorf("UniqueCount = %d, want 3", n)
	}
	if n := UniqueCount(nil); n != 0 {
		t.Errorf("UniqueCount(nil) = %d, want 0", n)
	}
	if n := UniqueCount([]float64{math.NaN(), math.NaN(), 1}); n != 2 {
		t.Errorf("UniqueCount with NaNs = %d, want 2", n)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct{ p, want float64 }{
		{0, 15}, {100, 50}, {50, 35}, {25, 20}, {40, 29},
	}
	for _, tc := range tests {
		got, err := Percentile(xs, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		if !mathx.AlmostEqual(got, tc.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if v, err := Percentile([]float64{9}, 75); err != nil || v != 9 {
		t.Errorf("Percentile(single) = %v, %v; want 9", v, err)
	}
}

func TestPercentileWithinBounds(t *testing.T) {
	f := func(xs []float64, p float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		p = math.Abs(math.Mod(p, 100))
		v, err := Percentile(clean, p)
		if err != nil {
			return false
		}
		lo, _ := Min(clean)
		hi, _ := Max(clean)
		return v >= lo-1e-9 && v <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedian(t *testing.T) {
	m, err := Median([]float64{5, 1, 3})
	if err != nil || m != 3 {
		t.Errorf("Median = %v, %v; want 3", m, err)
	}
}

func TestHistogram(t *testing.T) {
	counts, err := Histogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range counts {
		if c != 2 {
			t.Errorf("bin %d count = %d, want 2", i, c)
		}
	}
	counts, _ = Histogram([]float64{4, 4, 4}, 3)
	if counts[0] != 3 || counts[1] != 0 {
		t.Errorf("constant sample histogram = %v, want all in bin 0", counts)
	}
	if _, err := Histogram([]float64{1}, 0); err == nil {
		t.Error("Histogram with 0 bins should fail")
	}
}

func TestHistogramConservesMass(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		counts, err := Histogram(clean, 7)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(clean)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEntropy(t *testing.T) {
	// Uniform over 4 bins: entropy = log(4).
	xs := []float64{0.1, 1.1, 2.1, 3.1}
	h, err := Entropy(xs, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !mathx.AlmostEqual(h, math.Log(4), 1e-9) {
		t.Errorf("Entropy = %v, want log 4 = %v", h, math.Log(4))
	}
	h, _ = Entropy([]float64{5, 5, 5, 5}, 4)
	if h != 0 {
		t.Errorf("Entropy(constant) = %v, want 0", h)
	}
}

func TestEntropyNonNegativeAndBounded(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		h, err := Entropy(clean, 10)
		if err != nil {
			return false
		}
		return h >= 0 && h <= math.Log(10)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestECDF(t *testing.T) {
	e, err := NewECDF([]float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct{ x, want float64 }{
		{0.5, 0}, {1, 0.25}, {2.5, 0.5}, {4, 1}, {10, 1},
	}
	for _, tc := range tests {
		if got := e.At(tc.x); got != tc.want {
			t.Errorf("ECDF.At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if e.Len() != 4 {
		t.Errorf("Len = %d, want 4", e.Len())
	}
	if _, err := NewECDF(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("NewECDF(nil): want ErrEmpty, got %v", err)
	}
}

func TestECDFMonotoneProperty(t *testing.T) {
	e, err := NewECDF([]float64{3, 1, 4, 1, 5, 9, 2, 6})
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		a = math.Mod(a, 20)
		b = math.Mod(b, 20)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a > b {
			a, b = b, a
		}
		return e.At(a) <= e.At(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStandardize(t *testing.T) {
	rows := [][]float64{{1, 10}, {2, 20}, {3, 30}}
	out, err := Standardize(rows)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		col := []float64{out[0][j], out[1][j], out[2][j]}
		m, _ := Mean(col)
		sd, _ := StdDev(col)
		if !mathx.AlmostEqual(m, 0, 1e-12) || !mathx.AlmostEqual(sd, 1, 1e-12) {
			t.Errorf("column %d not standardized: mean=%v sd=%v", j, m, sd)
		}
	}
	// Constant column becomes zeros.
	out, _ = Standardize([][]float64{{5, 1}, {5, 2}})
	if out[0][0] != 0 || out[1][0] != 0 {
		t.Errorf("constant column should standardize to 0, got %v", out)
	}
	if _, err := Standardize([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged input should fail")
	}
	if _, err := Standardize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Standardize(nil): want ErrEmpty, got %v", err)
	}
}

func TestL1Normalize(t *testing.T) {
	v := L1Normalize([]float64{1, -1, 2})
	var sum float64
	for _, x := range v {
		sum += math.Abs(x)
	}
	if !mathx.AlmostEqual(sum, 1, 1e-12) {
		t.Errorf("L1 norm after normalize = %v, want 1", sum)
	}
	z := L1Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("zero vector should stay zero, got %v", z)
	}
}

func TestL1NormalizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e6))
			}
		}
		out := L1Normalize(clean)
		var sum float64
		for _, x := range out {
			sum += math.Abs(x)
		}
		allZero := true
		for _, x := range clean {
			if x != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			return sum == 0
		}
		return mathx.AlmostEqual(sum, 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestL2Normalize(t *testing.T) {
	v := L2Normalize([]float64{3, 4})
	if !mathx.AlmostEqual(v[0], 0.6, 1e-12) || !mathx.AlmostEqual(v[1], 0.8, 1e-12) {
		t.Errorf("L2Normalize(3,4) = %v, want (0.6, 0.8)", v)
	}
	z := L2Normalize([]float64{0})
	if z[0] != 0 {
		t.Errorf("zero vector should stay zero, got %v", z)
	}
}
