// Package stats provides descriptive statistics for numeric column values:
// the seven statistical features Gem extracts from each column (unique count,
// mean, coefficient of variation, entropy, range, 10th and 90th percentile),
// plus the moments, ECDF and standardization utilities the baselines and the
// synthetic data generators need.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/gem-embeddings/gem/internal/mathx"
)

// ErrEmpty is returned when a statistic is requested over an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs using compensated summation.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	return mathx.KahanSum(xs) / float64(len(xs)), nil
}

// Variance returns the population variance of xs (divide by n).
func Variance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)), nil
}

// SampleVariance returns the unbiased sample variance of xs (divide by n-1).
// For a single observation it returns 0.
func SampleVariance(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if len(xs) == 1 {
		return 0, nil
	}
	m, _ := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return math.NaN(), err
	}
	return math.Sqrt(v), nil
}

// Skewness returns the population skewness (third standardized moment).
// It returns 0 for constant samples.
func Skewness(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	m, _ := Mean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	n := float64(len(xs))
	m2 /= n
	m3 /= n
	if m2 == 0 {
		return 0, nil
	}
	return m3 / math.Pow(m2, 1.5), nil
}

// Kurtosis returns the population excess kurtosis (fourth standardized moment
// minus 3). It returns 0 for constant samples.
func Kurtosis(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	m, _ := Mean(xs)
	var m2, m4 float64
	for _, x := range xs {
		d := x - m
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	n := float64(len(xs))
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0, nil
	}
	return m4/(m2*m2) - 3, nil
}

// Min returns the smallest value in xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m, nil
}

// Max returns the largest value in xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m, nil
}

// Range returns max(xs) - min(xs).
func Range(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	return hi - lo, nil
}

// CoefficientOfVariation returns stddev/|mean|. When the mean is zero it
// returns the standard deviation itself so the feature stays finite, which is
// the behaviour the Gem feature vector needs (a normalized dispersion proxy).
func CoefficientOfVariation(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	m, _ := Mean(xs)
	sd, _ := StdDev(xs)
	if m == 0 {
		return sd, nil
	}
	return sd / math.Abs(m), nil
}

// UniqueCount returns the number of distinct values in xs. NaN values are
// counted as a single distinct value.
func UniqueCount(xs []float64) int {
	seen := make(map[float64]struct{}, len(xs))
	nan := false
	for _, x := range xs {
		if math.IsNaN(x) {
			nan = true
			continue
		}
		seen[x] = struct{}{}
	}
	n := len(seen)
	if nan {
		n++
	}
	return n
}

// Percentile returns the p-th percentile of xs for p in [0, 100] using linear
// interpolation between closest ranks (the same convention as NumPy's
// default).
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return math.NaN(), fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Entropy returns the Shannon entropy (in nats) of the empirical distribution
// of xs discretized into bins equal-width bins across [min, max]. A constant
// sample has zero entropy. bins must be positive.
func Entropy(xs []float64, bins int) (float64, error) {
	if len(xs) == 0 {
		return math.NaN(), ErrEmpty
	}
	if bins <= 0 {
		return math.NaN(), fmt.Errorf("stats: entropy needs bins > 0, got %d", bins)
	}
	counts, err := Histogram(xs, bins)
	if err != nil {
		return math.NaN(), err
	}
	n := float64(len(xs))
	var h float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / n
		h -= p * math.Log(p)
	}
	return h, nil
}

// Histogram returns the counts of xs over bins equal-width bins spanning
// [min(xs), max(xs)]. The top edge is inclusive. A constant sample puts all
// mass in the first bin.
func Histogram(xs []float64, bins int) ([]int, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if bins <= 0 {
		return nil, fmt.Errorf("stats: histogram needs bins > 0, got %d", bins)
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	counts := make([]int, bins)
	if lo == hi {
		counts[0] = len(xs)
		return counts, nil
	}
	w := (hi - lo) / float64(bins)
	for _, x := range xs {
		idx := int((x - lo) / w)
		if idx >= bins {
			idx = bins - 1
		}
		if idx < 0 {
			idx = 0
		}
		counts[idx]++
	}
	return counts, nil
}

// ECDF returns the empirical CDF of xs evaluated at x:
// the fraction of samples <= x.
type ECDF struct {
	sorted []float64
}

// NewECDF builds an empirical CDF over xs.
func NewECDF(xs []float64) (*ECDF, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &ECDF{sorted: sorted}, nil
}

// At returns the fraction of samples <= x.
func (e *ECDF) At(x float64) float64 {
	idx := sort.SearchFloat64s(e.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(e.sorted))
}

// Sorted returns the underlying sorted sample (shared, do not mutate).
func (e *ECDF) Sorted() []float64 { return e.sorted }

// Len returns the number of samples behind the ECDF.
func (e *ECDF) Len() int { return len(e.sorted) }

// Standardize z-scores each coordinate of the rows in-place-free: it returns
// a new matrix where column j of the input has mean 0 and stddev 1 across
// rows. Zero-variance columns become all zeros. rows must be rectangular.
func Standardize(rows [][]float64) ([][]float64, error) {
	if len(rows) == 0 {
		return nil, ErrEmpty
	}
	width := len(rows[0])
	for i, r := range rows {
		if len(r) != width {
			return nil, fmt.Errorf("stats: standardize row %d has %d values, want %d", i, len(r), width)
		}
	}
	out := make([][]float64, len(rows))
	for i := range out {
		out[i] = make([]float64, width)
	}
	col := make([]float64, len(rows))
	for j := 0; j < width; j++ {
		for i := range rows {
			col[i] = rows[i][j]
		}
		m, _ := Mean(col)
		sd, _ := StdDev(col)
		for i := range rows {
			if sd == 0 {
				out[i][j] = 0
			} else {
				out[i][j] = (rows[i][j] - m) / sd
			}
		}
	}
	return out, nil
}

// L1Normalize scales v so that the sum of absolute values is 1 (Eq. 9 and 10
// of the paper). The zero vector is returned unchanged.
func L1Normalize(v []float64) []float64 {
	var norm float64
	for _, x := range v {
		norm += math.Abs(x)
	}
	out := make([]float64, len(v))
	if norm == 0 {
		copy(out, v)
		return out
	}
	for i, x := range v {
		out[i] = x / norm
	}
	return out
}

// L2Normalize scales v to unit Euclidean norm. The zero vector is returned
// unchanged.
func L2Normalize(v []float64) []float64 {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	out := make([]float64, len(v))
	if ss == 0 {
		copy(out, v)
		return out
	}
	norm := math.Sqrt(ss)
	for i, x := range v {
		out[i] = x / norm
	}
	return out
}
