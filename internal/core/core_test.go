package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/mathx"
	"github.com/gem-embeddings/gem/internal/table"
)

// smallCorpus returns a tiny deterministic corpus with distinguishable types.
func smallCorpus() *table.Dataset {
	return data.GitTables(data.Config{Seed: 1, Scale: 0.1})
}

// fastCfg keeps EM cheap for tests.
func fastCfg() Config {
	return Config{
		Components:     12,
		Restarts:       2,
		MaxIter:        60,
		Seed:           42,
		SubsampleStack: 4000,
	}
}

func TestNewEmbedderDefaults(t *testing.T) {
	e, err := NewEmbedder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := e.Config()
	if cfg.Components != 50 {
		t.Errorf("default Components = %d, want 50", cfg.Components)
	}
	if cfg.Tol != 1e-3 {
		t.Errorf("default Tol = %v, want 1e-3", cfg.Tol)
	}
	if cfg.Restarts != 10 {
		t.Errorf("default Restarts = %d, want 10", cfg.Restarts)
	}
	if cfg.Features != Distributional|Statistical {
		t.Errorf("default Features = %v, want D+S", cfg.Features)
	}
}

func TestFitAndEmbedShapes(t *testing.T) {
	ds := smallCorpus()
	e, err := NewEmbedder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	if e.Model() == nil {
		t.Fatal("Model nil after Fit")
	}
	emb, err := e.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != len(ds.Columns) {
		t.Fatalf("got %d embeddings for %d columns", len(emb), len(ds.Columns))
	}
	wantDim := 12 + 7 // components + statistical features
	for i, row := range emb {
		if len(row) != wantDim {
			t.Fatalf("embedding %d has dim %d, want %d", i, len(row), wantDim)
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("embedding %d has non-finite value", i)
			}
		}
	}
}

func TestEmbedBeforeFitFails(t *testing.T) {
	e, _ := NewEmbedder(fastCfg())
	if _, err := e.Embed(smallCorpus()); !errors.Is(err, ErrState) {
		t.Errorf("want ErrState, got %v", err)
	}
	if _, err := e.Signatures(smallCorpus()); !errors.Is(err, ErrState) {
		t.Errorf("Signatures: want ErrState, got %v", err)
	}
	if _, err := e.AssignComponent([]float64{1}); !errors.Is(err, ErrState) {
		t.Errorf("AssignComponent: want ErrState, got %v", err)
	}
}

func TestFitEmptyDatasetFails(t *testing.T) {
	e, _ := NewEmbedder(fastCfg())
	if err := e.Fit(&table.Dataset{}); !errors.Is(err, ErrInput) {
		t.Errorf("want ErrInput, got %v", err)
	}
	if err := e.Fit(nil); !errors.Is(err, ErrInput) {
		t.Errorf("nil: want ErrInput, got %v", err)
	}
}

func TestL1RowsSumToOneForDistributionalOnly(t *testing.T) {
	ds := smallCorpus()
	cfg := fastCfg()
	cfg.Features = Distributional
	e, _ := NewEmbedder(cfg)
	emb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	// Mean responsibilities are non-negative, so L1 normalization makes each
	// row sum to exactly 1.
	for i, row := range emb {
		var s float64
		for _, v := range row {
			if v < -1e-12 {
				t.Fatalf("row %d has negative probability %v", i, v)
			}
			s += v
		}
		if !mathx.AlmostEqual(s, 1, 1e-9) {
			t.Errorf("row %d sums to %v, want 1", i, s)
		}
	}
}

func TestSignatures(t *testing.T) {
	ds := smallCorpus()
	e, _ := NewEmbedder(fastCfg())
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	sigs, err := e.Signatures(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(sigs) != len(ds.Columns) {
		t.Fatalf("got %d signatures", len(sigs))
	}
	for i, s := range sigs {
		if s.Column != ds.Columns[i].Name {
			t.Errorf("signature %d column %q, want %q", i, s.Column, ds.Columns[i].Name)
		}
		if len(s.MeanProbs) != 12 {
			t.Errorf("signature %d has %d mean probs, want 12", i, len(s.MeanProbs))
		}
		var sum float64
		for _, p := range s.MeanProbs {
			sum += p
		}
		if !mathx.AlmostEqual(sum, 1, 1e-9) {
			t.Errorf("signature %d mean probs sum to %v", i, sum)
		}
		if len(s.Stats) != 7 {
			t.Errorf("signature %d has %d stats, want 7", i, len(s.Stats))
		}
	}
}

func TestStatisticalFeatures(t *testing.T) {
	values := []float64{1, 2, 2, 3, 4, 10}
	f, err := StatisticalFeatures(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	names := StatFeatureNames()
	if len(f) != len(names) || len(f) != 7 {
		t.Fatalf("feature count = %d, want 7", len(f))
	}
	// Scale-carrying features are measured in signed log space.
	if !mathx.AlmostEqual(f[0], math.Log1p(5), 1e-12) { // unique count
		t.Errorf("unique_count = %v, want log1p(5)", f[0])
	}
	if !mathx.AlmostEqual(f[1], math.Log1p(22.0/6), 1e-12) { // mean
		t.Errorf("mean = %v, want log1p(22/6)", f[1])
	}
	if !mathx.AlmostEqual(f[4], math.Log1p(9), 1e-12) { // range
		t.Errorf("range = %v, want log1p(9)", f[4])
	}
	if _, err := StatisticalFeatures(nil, 10); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
}

func TestRawStatisticalFeatures(t *testing.T) {
	values := []float64{1, 2, 2, 3, 4, 10}
	f, err := RawStatisticalFeatures(values, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f[0] != 5 { // unique count
		t.Errorf("unique_count = %v, want 5", f[0])
	}
	if !mathx.AlmostEqual(f[1], 22.0/6, 1e-12) { // mean
		t.Errorf("mean = %v, want %v", f[1], 22.0/6)
	}
	if f[4] != 9 { // range
		t.Errorf("range = %v, want 9", f[4])
	}
	if _, err := RawStatisticalFeatures(nil, 10); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
}

func TestSlogProperties(t *testing.T) {
	if slog(0) != 0 {
		t.Error("slog(0) != 0")
	}
	if slog(-3) != -slog(3) {
		t.Error("slog must be odd")
	}
	if slog(math.E-1) != 1 {
		t.Errorf("slog(e-1) = %v, want 1", slog(math.E-1))
	}
}

func TestEmbedDeterministic(t *testing.T) {
	ds := smallCorpus()
	mk := func() [][]float64 {
		e, _ := NewEmbedder(fastCfg())
		emb, err := e.FitEmbed(ds)
		if err != nil {
			t.Fatal(err)
		}
		return emb
	}
	a, b := mk(), mk()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("embedding not deterministic at [%d][%d]", i, j)
			}
		}
	}
}

func TestFeatureCombinationDims(t *testing.T) {
	ds := smallCorpus()
	headerDim := 64
	cases := []struct {
		feats Features
		comp  Composition
		dim   int
	}{
		{Distributional, Concatenation, 12},
		{Statistical, Concatenation, 7},
		{Contextual, Concatenation, headerDim},
		{Distributional | Statistical, Concatenation, 19},
		{Distributional | Contextual, Concatenation, 12 + headerDim},
		{Statistical | Contextual, Concatenation, 7 + headerDim},
		{Distributional | Statistical | Contextual, Concatenation, 19 + headerDim},
		{Distributional | Statistical | Contextual, Aggregation, headerDim},
		{Distributional | Statistical | Contextual, AE, 16},
	}
	for _, tc := range cases {
		cfg := fastCfg()
		cfg.Features = tc.feats
		cfg.Composition = tc.comp
		cfg.HeaderDim = headerDim
		cfg.AELatent = 16
		cfg.AEEpochs = 2
		e, err := NewEmbedder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		emb, err := e.FitEmbed(ds)
		if err != nil {
			t.Fatalf("%v/%v: %v", tc.feats, tc.comp, err)
		}
		if len(emb[0]) != tc.dim {
			t.Errorf("%v/%v: dim = %d, want %d", tc.feats, tc.comp, len(emb[0]), tc.dim)
		}
	}
}

func TestFeaturesString(t *testing.T) {
	tests := []struct {
		f    Features
		want string
	}{
		{Distributional, "D"},
		{Statistical, "S"},
		{Contextual, "C"},
		{Distributional | Statistical, "D+S"},
		{Distributional | Statistical | Contextual, "D+S+C"},
		{0, "none"},
	}
	for _, tc := range tests {
		if got := tc.f.String(); got != tc.want {
			t.Errorf("Features(%d).String() = %q, want %q", tc.f, got, tc.want)
		}
	}
	if Concatenation.String() != "concatenation" || Aggregation.String() != "aggregation" || AE.String() != "AE" {
		t.Error("Composition.String wrong")
	}
}

func TestGemSeparatesDistinctTypes(t *testing.T) {
	// The headline behaviour: Gem (D+S) must achieve decent average
	// precision on a corpus with distinguishable distributions.
	ds := smallCorpus()
	e, _ := NewEmbedder(fastCfg())
	emb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	ap, err := eval.AveragePrecisionByType(emb, ds.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if ap < 0.2 {
		t.Errorf("Gem (D+S) average precision = %v, want >= 0.2", ap)
	}
}

func TestContextualHelpsWhenHeadersInformative(t *testing.T) {
	ds := data.GDS(data.Config{Seed: 3, Scale: 0.05, Grain: data.Fine})
	base := fastCfg()
	base.Components = 8

	dOnly := base
	dOnly.Features = Distributional | Statistical
	e1, _ := NewEmbedder(dOnly)
	emb1, err := e1.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	ap1, _ := eval.AveragePrecisionByType(emb1, ds.Labels())

	dsc := base
	dsc.Features = Distributional | Statistical | Contextual
	e2, _ := NewEmbedder(dsc)
	emb2, err := e2.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	ap2, _ := eval.AveragePrecisionByType(emb2, ds.Labels())

	if ap2 <= ap1 {
		t.Errorf("adding headers on GDS-like data should help: D+S=%v, D+S+C=%v", ap1, ap2)
	}
}

func TestAssignComponent(t *testing.T) {
	ds := smallCorpus()
	e, _ := NewEmbedder(fastCfg())
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	vals := ds.Columns[0].Values[:5]
	assign, err := e.AssignComponent(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(assign) != 5 {
		t.Fatalf("got %d assignments", len(assign))
	}
	for _, a := range assign {
		if a < 0 || a >= e.Model().K() {
			t.Errorf("assignment %d outside [0, %d)", a, e.Model().K())
		}
	}
}

func TestL2NormalizationOption(t *testing.T) {
	ds := smallCorpus()
	cfg := fastCfg()
	cfg.Normalization = L2
	cfg.Features = Distributional
	e, _ := NewEmbedder(cfg)
	emb, err := e.FitEmbed(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range emb {
		var ss float64
		for _, v := range row {
			ss += v * v
		}
		if !mathx.AlmostEqual(math.Sqrt(ss), 1, 1e-9) {
			t.Errorf("row %d L2 norm = %v, want 1", i, math.Sqrt(ss))
		}
	}
}

func TestSubsampleDeterministicProperty(t *testing.T) {
	f := func(seed int64) bool {
		xs := make([]float64, 100)
		for i := range xs {
			xs[i] = float64(i)
		}
		a := subsample(xs, 10, seed)
		b := subsample(xs, 10, seed)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		// All sampled values must come from xs without duplication of index
		// (values are unique here, so check distinctness).
		seen := map[float64]bool{}
		for _, v := range a {
			if v < 0 || v > 99 || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestFeaturesHas(t *testing.T) {
	cases := []struct {
		name string
		f, g Features
		want bool
	}{
		{"single bit present", Distributional | Statistical, Distributional, true},
		{"single bit absent", Distributional, Contextual, false},
		{"full mask on full set", Distributional | Statistical | Contextual, Distributional | Statistical | Contextual, true},
		// Multi-bit mask: Has asks for ALL families of the mask. A D-only
		// config does NOT have D+S (the pre-fix f&g != 0 said it did).
		{"multi-bit mask on partial set", Distributional, Distributional | Statistical, false},
		{"multi-bit mask on superset", Distributional | Statistical | Contextual, Distributional | Statistical, true},
		{"multi-bit mask exact", Statistical | Contextual, Statistical | Contextual, true},
		{"disjoint multi-bit mask", Statistical, Distributional | Contextual, false},
	}
	for _, c := range cases {
		if got := c.f.Has(c.g); got != c.want {
			t.Errorf("%s: (%v).Has(%v) = %v, want %v", c.name, c.f, c.g, got, c.want)
		}
	}
}

func TestSubsampleFullDraw(t *testing.T) {
	// k == n must return a permutation of xs (every value exactly once).
	xs := []float64{4, 8, 15, 16, 23, 42}
	got := subsample(xs, len(xs), 3)
	seen := map[float64]bool{}
	for _, v := range got {
		seen[v] = true
	}
	if len(seen) != len(xs) {
		t.Errorf("full draw lost values: %v", got)
	}
}

func TestHeaderEmbedderExposed(t *testing.T) {
	e, _ := NewEmbedder(fastCfg())
	if e.HeaderEmbedder() == nil {
		t.Fatal("HeaderEmbedder nil")
	}
	v := e.HeaderEmbedder().Embed("price")
	if len(v) != e.Config().HeaderDim {
		t.Errorf("header dim = %d, want %d", len(v), e.Config().HeaderDim)
	}
}
