package core

import (
	"errors"
	"math"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/data"
)

func TestEmbedVectors(t *testing.T) {
	ds := data.GitTables(data.Config{Seed: 1, Scale: 0.1})
	e, err := NewEmbedder(Config{Components: 8, Restarts: 1, Seed: 1, SubsampleStack: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.EmbedVectors(ds, ann.Cosine); !errors.Is(err, ErrState) {
		t.Fatalf("EmbedVectors before Fit err = %v, want ErrState", err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	raw, err := e.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}

	vs, err := e.EmbedVectors(ds, ann.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs.Vectors) != len(ds.Columns) || len(vs.Names) != len(ds.Columns) {
		t.Fatalf("got %d vectors / %d names for %d columns", len(vs.Vectors), len(vs.Names), len(ds.Columns))
	}
	for i, row := range vs.Vectors {
		if vs.Names[i] != ds.Columns[i].Name {
			t.Fatalf("row %d named %q, column is %q", i, vs.Names[i], ds.Columns[i].Name)
		}
		if n := ann.Norm(row); math.Abs(n-1) > 1e-12 {
			t.Fatalf("cosine row %d has norm %v, want 1", i, n)
		}
	}
	// Cosine normalization must not change cosine geometry.
	for _, j := range []int{1, len(raw) / 2, len(raw) - 1} {
		want := ann.CosineSimilarity(raw[0], raw[j])
		got := ann.CosineSimilarity(vs.Vectors[0], vs.Vectors[j])
		if math.Abs(want-got) > 1e-12 {
			t.Fatalf("cosine(0, %d) changed: %v -> %v", j, want, got)
		}
	}

	// Euclidean passes rows through untouched.
	e2, err := NewEmbedder(Config{Components: 8, Restarts: 1, Seed: 1, SubsampleStack: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.Fit(ds); err != nil {
		t.Fatal(err)
	}
	vsE, err := e2.EmbedVectors(ds, ann.Euclidean)
	if err != nil {
		t.Fatal(err)
	}
	for i := range raw {
		for j := range raw[i] {
			if vsE.Vectors[i][j] != raw[i][j] {
				t.Fatalf("euclidean row %d differs from Embed output", i)
			}
		}
	}

	if got := vs.Find(ds.Columns[3].Name); got < 0 || vs.Names[got] != ds.Columns[3].Name {
		t.Errorf("Find(%q) = %d", ds.Columns[3].Name, got)
	}
	if got := vs.Find("no_such_column"); got != -1 {
		t.Errorf("Find(missing) = %d, want -1", got)
	}
}
