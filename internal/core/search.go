package core

import (
	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// VectorSet couples embedding rows with the column names they embed — the
// unit of exchange between the embedding pipeline and the internal/ann
// indexes. Row i of Vectors embeds the column Names[i].
type VectorSet struct {
	Names   []string
	Vectors [][]float64
}

// Find returns the row index of the first column with the given name, or
// -1 when absent.
func (vs *VectorSet) Find(name string) int {
	for i, n := range vs.Names {
		if n == name {
			return i
		}
	}
	return -1
}

// EmbedVectors runs the full Gem pipeline on ds and prepares the rows for
// similarity search under the given metric. Under ann.Cosine each row is
// brought to unit L2 norm: cosine rankings are unchanged (so recall
// numbers are identical either way), but stored and query vectors then
// live on the unit sphere, where cosine and Euclidean neighbourhoods
// coincide and persisted indexes are scale-free. Under ann.Euclidean rows
// are passed through untouched — L2 distances are exactly distances
// between Gem embeddings.
func (e *Embedder) EmbedVectors(ds *table.Dataset, metric ann.Metric) (*VectorSet, error) {
	emb, err := e.Embed(ds)
	if err != nil {
		return nil, err
	}
	if metric == ann.Cosine {
		for i, row := range emb {
			emb[i] = stats.L2Normalize(row)
		}
	}
	return &VectorSet{Names: ds.Headers(), Vectors: emb}, nil
}
