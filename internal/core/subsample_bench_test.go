package core

import (
	"math/rand"
	"testing"
)

// BenchmarkSubsample measures the stack-subsampling cost at the scale the
// SubsampleStack cap is for: a 10M-value stack capped to 100k. The partial
// Fisher–Yates does O(k) work on a sparse index view, where the previous
// rng.Perm allocated and shuffled all 10M indices per call.
func BenchmarkSubsample(b *testing.B) {
	const n, k = 10_000_000, 100_000
	xs := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := subsample(xs, k, int64(i))
		if len(out) != k {
			b.Fatalf("got %d values, want %d", len(out), k)
		}
	}
}
