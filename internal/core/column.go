package core

// Single-column embedding: the serve layer's unit of work. The batched
// Embed standardizes statistical features across the columns it is handed
// (Eq. 7), which makes a row depend on its batch; serving demands the
// opposite — an embedding that is a pure function of (column, fitted
// embedder) so that cached, single and coalesced-batch answers are
// bit-identical. ColumnSignature and EmbedSignature deliver that by
// standardizing against the corpus moments frozen at Fit time.

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"hash"
	"math"

	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// ColumnSignature computes the signature of a single column under the
// fitted model — the same code path the batched Signatures fans out, so the
// result is bit-identical to the column's row in any batch.
func (e *Embedder) ColumnSignature(col table.Column) (Signature, error) {
	if e.model == nil {
		return Signature{}, ErrState
	}
	if len(col.Values) == 0 {
		return Signature{}, fmt.Errorf("%w: column %q is empty", ErrInput, col.Name)
	}
	sig, err := e.columnSignature(col)
	if err != nil {
		return Signature{}, fmt.Errorf("core: column %q: %w", col.Name, err)
	}
	return sig, nil
}

// EmbedSignature turns one signature into a final embedding row,
// standardizing statistical features against the frozen corpus moments
// instead of an incoming batch. It is a pure per-column function of the
// fitted embedder: for columns of the fitting corpus it reproduces the
// batched Embed rows exactly, and for any column it returns the same bytes
// whether called alone or for every member of a coalesced batch.
//
// The AE composition is rejected: the autoencoder trains across a dataset
// and has no per-column semantics.
func (e *Embedder) EmbedSignature(sig Signature) ([]float64, error) {
	if e.model == nil {
		return nil, ErrState
	}
	if e.cfg.Features.Has(Contextual) && e.cfg.Composition == AE {
		return nil, fmt.Errorf("%w: AE composition trains across a dataset and cannot embed single columns", ErrInput)
	}
	var a []float64
	if e.cfg.Features.Has(Distributional) {
		a = append(a, stats.L2Normalize(sig.MeanProbs)...)
	}
	if e.cfg.Features.Has(Statistical) {
		if e.moments == nil {
			return nil, fmt.Errorf("%w: no frozen feature moments (fit this embedder, or re-save it with a version that persists moments)", ErrState)
		}
		if len(sig.Stats) != len(e.moments.Mean) {
			return nil, fmt.Errorf("%w: signature has %d statistical features, moments have %d", ErrInput, len(sig.Stats), len(e.moments.Mean))
		}
		z := make([]float64, len(sig.Stats))
		for j, x := range sig.Stats {
			if sd := e.moments.Std[j]; sd != 0 {
				z[j] = (x - e.moments.Mean[j]) / sd
			}
		}
		a = append(a, stats.L2Normalize(z)...)
	}
	value := e.normalize(a)
	if !e.cfg.Features.Has(Contextual) {
		return value, nil
	}
	header := e.normalize(e.headers.Embed(sig.Column))
	if len(value) == 0 {
		return header, nil
	}
	rows, err := e.compose([][]float64{value}, [][]float64{header})
	if err != nil {
		return nil, err
	}
	return rows[0], nil
}

// EmbedColumn is ColumnSignature followed by EmbedSignature — the cache-miss
// path of the serve layer.
func (e *Embedder) EmbedColumn(col table.Column) ([]float64, error) {
	sig, err := e.ColumnSignature(col)
	if err != nil {
		return nil, err
	}
	return e.EmbedSignature(sig)
}

// Fingerprint returns a stable hex digest identifying everything that
// determines this embedder's output for a given column: the
// embedding-relevant configuration, the mixture parameters and the frozen
// feature moments. Two embedders with equal fingerprints produce
// bit-identical embeddings for any column, which is what makes the digest a
// safe component of content-addressed caches. Fit-procedure knobs that do
// not change the output given the fitted model (Tol, MaxIter, Restarts,
// Seed, SubsampleStack, Workers) are deliberately excluded, so re-deriving
// an identical model keeps cache entries valid. Fails before Fit.
func (e *Embedder) Fingerprint() (string, error) {
	if e.model == nil {
		return "", ErrState
	}
	h := sha256.New()
	h.Write([]byte("gem-embedder-fp-v1\x00"))
	hashU64(h,
		uint64(e.cfg.Features),
		uint64(e.cfg.Composition),
		uint64(e.cfg.Normalization),
		uint64(e.cfg.HeaderDim),
		uint64(e.cfg.EntropyBins),
		uint64(e.cfg.AELatent),
		uint64(e.cfg.AEEpochs),
		boolBit(e.cfg.RawStats),
	)
	hashU64(h, uint64(len(e.model.Weights)))
	hashFloats(h, e.model.Weights, e.model.Means, e.model.Variances)
	if e.moments == nil {
		hashU64(h, 0)
	} else {
		hashU64(h, uint64(len(e.moments.Mean)))
		hashFloats(h, e.moments.Mean, e.moments.Std)
	}
	return fmt.Sprintf("%x", h.Sum(nil)), nil
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func hashU64(h hash.Hash, vs ...uint64) {
	var buf [8]byte
	for _, v := range vs {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
}

func hashFloats(h hash.Hash, slices ...[]float64) {
	var buf [8]byte
	for _, s := range slices {
		for _, v := range s {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
}
