package core

import (
	"bytes"
	"errors"
	"testing"

	"github.com/gem-embeddings/gem/internal/table"
)

// TestEmbedColumnMatchesBatchedEmbed pins the serve-layer contract: for
// columns of the fitting corpus, the single-column path (frozen moments)
// reproduces the batched Embed rows bit-exactly, because the batch
// standardization over the fitting corpus IS the frozen standardization.
func TestEmbedColumnMatchesBatchedEmbed(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"D+S", fastCfg()},
		{"D only", func() Config { c := fastCfg(); c.Features = Distributional; return c }()},
		{"S only", func() Config { c := fastCfg(); c.Features = Statistical; return c }()},
		{"D+S+C concat", func() Config {
			c := fastCfg()
			c.Features = Distributional | Statistical | Contextual
			c.HeaderDim = 32
			return c
		}()},
		{"D+S+C agg", func() Config {
			c := fastCfg()
			c.Features = Distributional | Statistical | Contextual
			c.Composition = Aggregation
			c.HeaderDim = 32
			return c
		}()},
		{"L2 norm", func() Config { c := fastCfg(); c.Normalization = L2; return c }()},
		{"raw stats", func() Config { c := fastCfg(); c.RawStats = true; return c }()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ds := smallCorpus()
			e, err := NewEmbedder(tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			batch, err := e.FitEmbed(ds)
			if err != nil {
				t.Fatal(err)
			}
			for i, col := range ds.Columns {
				row, err := e.EmbedColumn(col)
				if err != nil {
					t.Fatalf("EmbedColumn(%q): %v", col.Name, err)
				}
				if len(row) != len(batch[i]) {
					t.Fatalf("column %d: dim %d vs batched %d", i, len(row), len(batch[i]))
				}
				for j := range row {
					if row[j] != batch[i][j] {
						t.Fatalf("column %d (%q) component %d: single %v != batched %v",
							i, col.Name, j, row[j], batch[i][j])
					}
				}
			}
		})
	}
}

func TestColumnSignatureMatchesBatch(t *testing.T) {
	ds := smallCorpus()
	e, err := NewEmbedder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	sigs, err := e.Signatures(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, col := range ds.Columns {
		sig, err := e.ColumnSignature(col)
		if err != nil {
			t.Fatal(err)
		}
		if sig.Column != sigs[i].Column {
			t.Fatalf("column %d name %q vs %q", i, sig.Column, sigs[i].Column)
		}
		for j := range sig.MeanProbs {
			if sig.MeanProbs[j] != sigs[i].MeanProbs[j] {
				t.Fatalf("column %d mean-prob %d differs", i, j)
			}
		}
		for j := range sig.Stats {
			if sig.Stats[j] != sigs[i].Stats[j] {
				t.Fatalf("column %d stat %d differs", i, j)
			}
		}
	}
}

func TestColumnPathErrors(t *testing.T) {
	e, err := NewEmbedder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.ColumnSignature(table.Column{Name: "x", Values: []float64{1}}); !errors.Is(err, ErrState) {
		t.Errorf("unfitted ColumnSignature: want ErrState, got %v", err)
	}
	if _, err := e.EmbedSignature(Signature{}); !errors.Is(err, ErrState) {
		t.Errorf("unfitted EmbedSignature: want ErrState, got %v", err)
	}
	if _, err := e.Fingerprint(); !errors.Is(err, ErrState) {
		t.Errorf("unfitted Fingerprint: want ErrState, got %v", err)
	}
	if err := e.Fit(smallCorpus()); err != nil {
		t.Fatal(err)
	}
	if _, err := e.ColumnSignature(table.Column{Name: "empty"}); !errors.Is(err, ErrInput) {
		t.Errorf("empty column: want ErrInput, got %v", err)
	}

	aeCfg := fastCfg()
	aeCfg.Features = Distributional | Statistical | Contextual
	aeCfg.Composition = AE
	aeCfg.HeaderDim = 16
	ae, err := NewEmbedder(aeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ae.Fit(smallCorpus()); err != nil {
		t.Fatal(err)
	}
	if _, err := ae.EmbedColumn(smallCorpus().Columns[0]); !errors.Is(err, ErrInput) {
		t.Errorf("AE composition: want ErrInput, got %v", err)
	}
}

func TestFingerprintStability(t *testing.T) {
	ds := smallCorpus()
	mk := func(cfg Config) *Embedder {
		e, err := NewEmbedder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := e.Fit(ds); err != nil {
			t.Fatal(err)
		}
		return e
	}
	a := mk(fastCfg())
	b := mk(fastCfg())
	fa, err := a.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fb, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fa != fb {
		t.Errorf("same config+corpus must fingerprint identically:\n  %s\n  %s", fa, fb)
	}

	// Workers must not matter: it is a host property, not an identity.
	wcfg := fastCfg()
	wcfg.Workers = 1
	fw, err := mk(wcfg).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fw != fa {
		t.Errorf("worker count changed the fingerprint")
	}

	// A different seed fits a different mixture.
	scfg := fastCfg()
	scfg.Seed = 777
	fs, err := mk(scfg).Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fs == fa {
		t.Errorf("different mixture fingerprints collide")
	}

	// Save/Load must preserve the fingerprint (model and moments survive).
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := back.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fl != fa {
		t.Errorf("fingerprint changed across Save/Load:\n  %s\n  %s", fa, fl)
	}
}

// TestEmbedColumnAfterReload is the serve deployment mode end to end: fit,
// persist, load, and serve single columns bit-identically to the original
// embedder.
func TestEmbedColumnAfterReload(t *testing.T) {
	ds := smallCorpus()
	e, err := NewEmbedder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Moments() == nil {
		t.Fatal("moments not persisted")
	}
	for _, col := range ds.Columns[:3] {
		want, err := e.EmbedColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		got, err := back.EmbedColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[j] != want[j] {
				t.Fatalf("column %q component %d differs after reload", col.Name, j)
			}
		}
	}
}

// TestEmbedSignatureNoMoments covers loading a legacy file without frozen
// moments: statistical configs must fail with a clear state error instead
// of silently standardizing against nothing.
func TestEmbedSignatureNoMoments(t *testing.T) {
	ds := smallCorpus()
	e, err := NewEmbedder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	e.moments = nil // simulate a legacy save file
	if _, err := e.EmbedColumn(ds.Columns[0]); !errors.Is(err, ErrState) {
		t.Errorf("missing moments: want ErrState, got %v", err)
	}
}
