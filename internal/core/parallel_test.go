package core

import (
	"bytes"
	"math"
	"reflect"
	"runtime"
	"testing"

	"github.com/gem-embeddings/gem/internal/table"
)

func TestWorkersDefault(t *testing.T) {
	e, err := NewEmbedder(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := e.Config().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("default Workers = %d, want GOMAXPROCS = %d", got, want)
	}
}

// TestWorkersNotPersisted asserts Save does not bake the saving host's
// worker count into the blob: a loaded embedder defaults to the loading
// host's GOMAXPROCS.
func TestWorkersNotPersisted(t *testing.T) {
	cfg := fastCfg()
	cfg.Workers = 999
	e, err := NewEmbedder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(smallCorpus()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadEmbedder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := loaded.Config().Workers, runtime.GOMAXPROCS(0); got != want {
		t.Errorf("loaded Workers = %d, want loading-host default %d", got, want)
	}
}

// embedWith fits and embeds the shared corpus with a given worker count.
func embedWith(t *testing.T, workers int, feats Features) ([]Signature, [][]float64) {
	t.Helper()
	ds := smallCorpus()
	cfg := fastCfg()
	cfg.Workers = workers
	cfg.Features = feats
	e, err := NewEmbedder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	sigs, err := e.Signatures(ds)
	if err != nil {
		t.Fatal(err)
	}
	emb, err := e.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	return sigs, emb
}

// TestParallelMatchesSerial asserts the parallel fan-out produces
// bit-identical signatures and embeddings to the serial path, for every
// feature combination that exercises a distinct code path. Since
// embedWith refits per worker count, this pins the whole pipeline — the
// parallel EM engine included — not just the column fan-out.
func TestParallelMatchesSerial(t *testing.T) {
	for _, feats := range []Features{
		Distributional | Statistical,
		Distributional | Statistical | Contextual,
	} {
		serialSigs, serialEmb := embedWith(t, 1, feats)
		for _, workers := range []int{2, 8, 16, runtime.GOMAXPROCS(0)} {
			sigs, emb := embedWith(t, workers, feats)
			if !reflect.DeepEqual(serialSigs, sigs) {
				t.Fatalf("features %v: signatures differ between workers=1 and workers=%d", feats, workers)
			}
			if !reflect.DeepEqual(serialEmb, emb) {
				t.Fatalf("features %v: embeddings differ between workers=1 and workers=%d", feats, workers)
			}
		}
	}
}

// TestParallelDeterministicAcrossRuns asserts repeated parallel runs are
// row-for-row identical (no scheduling-order leakage into the output).
func TestParallelDeterministicAcrossRuns(t *testing.T) {
	_, first := embedWith(t, 8, Distributional|Statistical)
	for run := 0; run < 3; run++ {
		_, again := embedWith(t, 8, Distributional|Statistical)
		if !reflect.DeepEqual(first, again) {
			t.Fatalf("run %d: parallel embedding differs from first run", run)
		}
	}
}

// TestParallelWorkersExceedColumns covers pools wider than the work list.
func TestParallelWorkersExceedColumns(t *testing.T) {
	ds := &table.Dataset{Columns: []table.Column{
		{Name: "a", Type: "t", Values: []float64{1, 2, 3, 4, 5}},
		{Name: "b", Type: "t", Values: []float64{10, 20, 30, 40, 50}},
	}}
	cfg := fastCfg()
	cfg.Components = 3
	cfg.Workers = 64
	e, err := NewEmbedder(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	emb, err := e.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != 2 {
		t.Fatalf("got %d rows, want 2", len(emb))
	}
	for i, row := range emb {
		for _, v := range row {
			if math.IsNaN(v) {
				t.Fatalf("row %d contains NaN", i)
			}
		}
	}
}

// TestParallelErrorPropagation asserts a failing column surfaces its error
// through the pool (an empty column makes MeanResponsibilities fail).
func TestParallelErrorPropagation(t *testing.T) {
	ds := &table.Dataset{Columns: []table.Column{
		{Name: "good", Type: "t", Values: []float64{1, 2, 3, 4, 5, 6}},
		{Name: "empty", Type: "t", Values: nil},
		{Name: "also-good", Type: "t", Values: []float64{7, 8, 9, 10, 11}},
	}}
	for _, workers := range []int{1, 4} {
		cfg := fastCfg()
		cfg.Components = 2
		cfg.Workers = workers
		e, err := NewEmbedder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fitDS := &table.Dataset{Columns: []table.Column{ds.Columns[0], ds.Columns[2]}}
		if err := e.Fit(fitDS); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Signatures(ds); err == nil {
			t.Fatalf("workers=%d: expected error for empty column, got nil", workers)
		}
	}
}

// The worker-pool mechanics themselves (coverage, cancellation, nesting,
// the concurrency bound) are tested in internal/pool, which core shares
// with the EM engine.
