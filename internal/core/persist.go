package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/gem-embeddings/gem/internal/gmm"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/table"
	"github.com/gem-embeddings/gem/internal/textembed"
)

// embedderJSON is the stable on-disk representation of a fitted embedder.
type embedderJSON struct {
	Config Config          `json:"config"`
	Model  json.RawMessage `json:"model"`
	// Moments carries the frozen corpus-level feature moments so a loaded
	// embedder can serve single columns (EmbedColumn). Absent in files
	// saved before moments existed and for configs without statistical
	// features.
	Moments *StatMoments `json:"stat_moments,omitempty"`
}

// Save persists the embedder configuration, its fitted mixture and the
// frozen feature moments as JSON, enabling the deployment pattern where one
// corpus-level model embeds incoming tables without refitting. Fails if the
// embedder is unfitted.
func (e *Embedder) Save(w io.Writer) error {
	if e.model == nil {
		return ErrState
	}
	var modelBuf bytes.Buffer
	if err := e.model.Save(&modelBuf); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(embedderJSON{Config: e.cfg, Model: modelBuf.Bytes(), Moments: e.moments}); err != nil {
		return fmt.Errorf("core: saving embedder: %w", err)
	}
	return nil
}

// LoadEmbedder reads an embedder saved by Save, ready to Embed immediately.
func LoadEmbedder(r io.Reader) (*Embedder, error) {
	var ej embedderJSON
	if err := json.NewDecoder(r).Decode(&ej); err != nil {
		return nil, fmt.Errorf("core: loading embedder: %w", err)
	}
	if len(ej.Model) == 0 || string(ej.Model) == "null" {
		return nil, fmt.Errorf("%w: embedder file declares no model payload (was it saved by an unfitted embedder, or truncated?)", ErrInput)
	}
	cfg := ej.Config
	cfg.fillDefaults()
	model, err := gmm.Load(bytes.NewReader(ej.Model))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	he, err := textembed.New(cfg.HeaderDim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Embedder{cfg: cfg, model: model, headers: he, moments: ej.Moments, pool: pool.New(cfg.Workers)}, nil
}

// FitWithBIC fits the embedder selecting the component count by the Bayesian
// Information Criterion over the candidate list (the paper's model-selection
// procedure, §4.1.4). It returns the BIC per candidate. The winning K
// replaces cfg.Components for this embedder.
func (e *Embedder) FitWithBIC(ds *table.Dataset, candidates []int) (map[int]float64, error) {
	if ds == nil || len(ds.Columns) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrInput)
	}
	if len(candidates) == 0 {
		candidates = []int{5, 10, 25, 50, 75, 100}
	}
	stack := ds.Stack()
	if e.cfg.SubsampleStack > 0 && len(stack) > e.cfg.SubsampleStack {
		stack = subsample(stack, e.cfg.SubsampleStack, e.cfg.Seed)
	}
	best, bics, err := gmm.SelectK(stack, candidates, gmm.Config{
		Tol:      e.cfg.Tol,
		MaxIter:  e.cfg.MaxIter,
		Restarts: e.cfg.Restarts,
		Seed:     e.cfg.Seed,
		Init:     e.cfg.EMInit,
		Pool:     e.pool,
	})
	if err != nil {
		return nil, fmt.Errorf("core: BIC selection: %w", err)
	}
	e.model = best
	e.cfg.Components = best.K()
	if err := e.freezeMoments(ds); err != nil {
		return nil, err
	}
	return bics, nil
}
