package core

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/gem-embeddings/gem/internal/gmm"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/table"
	"github.com/gem-embeddings/gem/internal/textembed"
)

// embedderJSON is the stable on-disk representation of a fitted embedder.
type embedderJSON struct {
	Config Config          `json:"config"`
	Model  json.RawMessage `json:"model"`
}

// Save persists the embedder configuration and its fitted mixture as JSON,
// enabling the deployment pattern where one corpus-level model embeds
// incoming tables without refitting. Fails if the embedder is unfitted.
func (e *Embedder) Save(w io.Writer) error {
	if e.model == nil {
		return ErrState
	}
	var modelBuf jsonBuffer
	if err := e.model.Save(&modelBuf); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(embedderJSON{Config: e.cfg, Model: modelBuf.data}); err != nil {
		return fmt.Errorf("core: saving embedder: %w", err)
	}
	return nil
}

// LoadEmbedder reads an embedder saved by Save, ready to Embed immediately.
func LoadEmbedder(r io.Reader) (*Embedder, error) {
	var ej embedderJSON
	if err := json.NewDecoder(r).Decode(&ej); err != nil {
		return nil, fmt.Errorf("core: loading embedder: %w", err)
	}
	cfg := ej.Config
	cfg.fillDefaults()
	model, err := gmm.Load(bytesReader(ej.Model))
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	he, err := textembed.New(cfg.HeaderDim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Embedder{cfg: cfg, model: model, headers: he, pool: pool.New(cfg.Workers)}, nil
}

// jsonBuffer is a minimal io.Writer accumulating bytes (avoids importing
// bytes just for one buffer).
type jsonBuffer struct{ data []byte }

func (b *jsonBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

// bytesReader adapts a byte slice to io.Reader.
func bytesReader(data []byte) io.Reader { return &sliceReader{data: data} }

type sliceReader struct {
	data []byte
	pos  int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.pos >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.pos:])
	r.pos += n
	return n, nil
}

// FitWithBIC fits the embedder selecting the component count by the Bayesian
// Information Criterion over the candidate list (the paper's model-selection
// procedure, §4.1.4). It returns the BIC per candidate. The winning K
// replaces cfg.Components for this embedder.
func (e *Embedder) FitWithBIC(ds *table.Dataset, candidates []int) (map[int]float64, error) {
	if ds == nil || len(ds.Columns) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrInput)
	}
	if len(candidates) == 0 {
		candidates = []int{5, 10, 25, 50, 75, 100}
	}
	stack := ds.Stack()
	if e.cfg.SubsampleStack > 0 && len(stack) > e.cfg.SubsampleStack {
		stack = subsample(stack, e.cfg.SubsampleStack, e.cfg.Seed)
	}
	best, bics, err := gmm.SelectK(stack, candidates, gmm.Config{
		Tol:      e.cfg.Tol,
		MaxIter:  e.cfg.MaxIter,
		Restarts: e.cfg.Restarts,
		Seed:     e.cfg.Seed,
		Init:     e.cfg.EMInit,
		Pool:     e.pool,
	})
	if err != nil {
		return nil, fmt.Errorf("core: BIC selection: %w", err)
	}
	e.model = best
	e.cfg.Components = best.K()
	return bics, nil
}
