package core

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/data"
)

func TestSaveLoadEmbedderRoundTrip(t *testing.T) {
	ds := smallCorpus()
	e, err := NewEmbedder(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	want, err := e.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("embedding [%d][%d] differs after reload: %v vs %v",
					i, j, got[i][j], want[i][j])
			}
		}
	}
	if back.Config().Components != e.Config().Components {
		t.Error("config not preserved")
	}
}

func TestSaveUnfittedFails(t *testing.T) {
	e, _ := NewEmbedder(fastCfg())
	var buf bytes.Buffer
	if err := e.Save(&buf); !errors.Is(err, ErrState) {
		t.Errorf("want ErrState, got %v", err)
	}
}

func TestLoadEmbedderRejectsMalformed(t *testing.T) {
	if _, err := LoadEmbedder(strings.NewReader("not json")); err == nil {
		t.Error("garbage should fail to load")
	}
	if _, err := LoadEmbedder(strings.NewReader(`{"config":{},"model":{}}`)); err == nil {
		t.Error("empty model should fail validation")
	}
	// A declared-but-empty model payload gets a clear ErrInput, not a
	// confusing JSON decode error from deep inside gmm.
	for _, src := range []string{`{"config":{}}`, `{"config":{},"model":null}`} {
		_, err := LoadEmbedder(strings.NewReader(src))
		if !errors.Is(err, ErrInput) {
			t.Errorf("%s: want ErrInput, got %v", src, err)
		}
		if err == nil || !strings.Contains(err.Error(), "no model payload") {
			t.Errorf("%s: error should name the missing payload, got %v", src, err)
		}
	}
}

func TestEmbedNewColumnsWithSavedModel(t *testing.T) {
	// The deployment pattern: fit on one corpus, embed a different one.
	train := smallCorpus()
	e, _ := NewEmbedder(fastCfg())
	if err := e.Fit(train); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEmbedder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	incoming := data.GitTables(data.Config{Seed: 99, Scale: 0.05})
	emb, err := back.Embed(incoming)
	if err != nil {
		t.Fatal(err)
	}
	if len(emb) != len(incoming.Columns) {
		t.Fatalf("got %d embeddings for %d columns", len(emb), len(incoming.Columns))
	}
}

func TestFitWithBIC(t *testing.T) {
	ds := smallCorpus()
	e, err := NewEmbedder(Config{Restarts: 2, Seed: 7, SubsampleStack: 2000})
	if err != nil {
		t.Fatal(err)
	}
	bics, err := e.FitWithBIC(ds, []int{2, 6, 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(bics) != 3 {
		t.Fatalf("got %d BIC entries, want 3", len(bics))
	}
	// The selected K must be the argmin of the returned BICs.
	bestK, bestV := 0, 0.0
	first := true
	for k, v := range bics {
		if first || v < bestV {
			bestK, bestV = k, v
			first = false
		}
	}
	if e.Model().K() != bestK {
		t.Errorf("selected K = %d, BIC argmin = %d", e.Model().K(), bestK)
	}
	if e.Config().Components != bestK {
		t.Errorf("config Components = %d, want %d", e.Config().Components, bestK)
	}
	// The embedder is usable immediately.
	if _, err := e.Embed(ds); err != nil {
		t.Fatal(err)
	}
	if _, err := e.FitWithBIC(nil, nil); !errors.Is(err, ErrInput) {
		t.Errorf("nil dataset: want ErrInput, got %v", err)
	}
}
