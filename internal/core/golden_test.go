package core

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/gem-embeddings/gem/internal/table"
)

// goldenFingerprint is the SHA-256 over the raw float64 bits of the
// embedding matrix produced by goldenCatalog under goldenConfig. It pins
// the numerics of the whole pipeline — EM fitting (restarts, chunked
// E-step, M-step), the signature mechanism, feature standardization and
// normalization — so a refactor that silently changes any float cannot
// pass. If a change is SUPPOSED to alter numerics, update this constant
// in the same commit and say so in the commit message.
//
// Last intentional change: the E-step density was regrouped into the
// folded c1 + d²·c2 form (weightedLogPDFs) — same math, different float
// association.
const goldenFingerprint = "5dfbe790cfcbf218bd9f83c727b0931f80224a42029ce163db10021c7a78dd90"

// goldenCatalog builds a fixed-seed synthetic catalog with distinct
// column shapes (gaussians, mixtures, uniform, lognormal, constant-ish),
// self-contained so the fingerprint depends on nothing but core and gmm.
func goldenCatalog() *table.Dataset {
	rng := rand.New(rand.NewSource(424242))
	mk := func(name string, n int, gen func() float64) table.Column {
		vs := make([]float64, n)
		for i := range vs {
			vs[i] = gen()
		}
		return table.Column{Name: name, Type: "golden", Values: vs}
	}
	return &table.Dataset{Columns: []table.Column{
		mk("gauss_narrow", 400, func() float64 { return 10 + rng.NormFloat64() }),
		mk("gauss_wide", 400, func() float64 { return -5 + 8*rng.NormFloat64() }),
		mk("bimodal", 500, func() float64 {
			if rng.Float64() < 0.5 {
				return -20 + rng.NormFloat64()
			}
			return 20 + rng.NormFloat64()
		}),
		mk("uniform", 300, func() float64 { return rng.Float64() * 100 }),
		mk("lognormal", 350, func() float64 { return math.Exp(2 + 0.7*rng.NormFloat64()) }),
		mk("small_ints", 250, func() float64 { return float64(rng.Intn(7)) }),
		mk("near_constant", 200, func() float64 { return 3 + 1e-6*rng.NormFloat64() }),
		mk("heavy_tail", 450, func() float64 { return rng.NormFloat64() / (rng.Float64() + 0.05) }),
	}}
}

// goldenConfig exercises the parallel EM engine (several restarts, a
// multi-chunk stack is not needed — determinism across widths is pinned
// elsewhere; here one fixed width pins the values themselves).
func goldenConfig() Config {
	return Config{
		Components: 12,
		Restarts:   4,
		Seed:       99,
		Workers:    4,
	}
}

// fingerprint hashes the embedding matrix bit-exactly.
func fingerprint(emb [][]float64) string {
	h := sha256.New()
	var buf [8]byte
	for _, row := range emb {
		for _, v := range row {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestGoldenEmbeddingFingerprint embeds the golden catalog and compares
// against the checked-in fingerprint.
func TestGoldenEmbeddingFingerprint(t *testing.T) {
	if runtime.GOARCH != "amd64" {
		// Go may fuse a*b+c into FMA on other architectures, which
		// perturbs low-order bits; the fingerprint is amd64's.
		t.Skipf("golden fingerprint is recorded for amd64, running on %s", runtime.GOARCH)
	}
	e, err := NewEmbedder(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	emb, err := e.FitEmbed(goldenCatalog())
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(emb); got != goldenFingerprint {
		t.Fatalf("embedding fingerprint changed:\n  got  %s\n  want %s\n"+
			"If this numeric change is intentional, update goldenFingerprint.", got, goldenFingerprint)
	}
}

// TestGoldenFingerprintStableAcrossWorkers re-embeds the golden catalog
// at other worker counts and expects the identical fingerprint — the
// end-to-end form of the determinism contract.
func TestGoldenFingerprintStableAcrossWorkers(t *testing.T) {
	var ref string
	for _, w := range []int{1, 2, 8, runtime.GOMAXPROCS(0)} {
		cfg := goldenConfig()
		cfg.Workers = w
		e, err := NewEmbedder(cfg)
		if err != nil {
			t.Fatal(err)
		}
		emb, err := e.FitEmbed(goldenCatalog())
		if err != nil {
			t.Fatal(err)
		}
		fp := fingerprint(emb)
		if ref == "" {
			ref = fp
			continue
		}
		if fp != ref {
			t.Fatalf("workers=%d: fingerprint %s differs from %s", w, fp, ref)
		}
	}
}
