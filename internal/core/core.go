// Package core implements Gem — Gaussian Mixture Model Embeddings for
// numerical feature distributions (the paper's primary contribution, §3).
//
// The pipeline, following Algorithm 1:
//
//  1. All numeric values of all columns are stacked into one 1-D sample and a
//     GMM with m components is fitted by EM (§3.1, Eq. 1–5).
//  2. Signature mechanism (§3.2): for every column, the responsibility of
//     each component for each value is averaged, yielding the distributional
//     embedding m_i (Figure 2, Eq. 6).
//  3. Seven statistical features are extracted per column — unique count,
//     mean, coefficient of variation, entropy, range, 10th and 90th
//     percentile — and standardized across columns (Eq. 7).
//  4. The augmented vector a_i = [m_i ‖ f̃_i] is L1-normalized into the
//     probability-matrix row P_i (Eq. 8–9).
//  5. Contextual header embeddings S_i (§3.3, Eq. 10; here the deterministic
//     SBERT substitute from internal/textembed) are composed with P_i by
//     concatenation (Eq. 11/13), aggregation, or an autoencoder.
//
// Every step is independently accessible so the ablation of Figure 3
// (D, S, C and all combinations) can be reproduced exactly.
//
//gem:deterministic
//gem:pooled
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"github.com/gem-embeddings/gem/internal/autoencoder"
	"github.com/gem-embeddings/gem/internal/gmm"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
	"github.com/gem-embeddings/gem/internal/textembed"
)

// ErrState is returned when Embed is called before Fit.
var ErrState = errors.New("core: embedder not fitted")

// ErrInput is returned for invalid inputs.
var ErrInput = errors.New("core: invalid input")

// Features is a bit set selecting which of Gem's three feature families an
// embedding includes (Figure 3's ablation axes).
type Features uint8

const (
	// Distributional selects the GMM mean-responsibility signature (D).
	Distributional Features = 1 << iota
	// Statistical selects the seven standardized statistical features (S).
	Statistical
	// Contextual selects the header embeddings (C).
	Contextual
)

// Has reports whether f includes g: every bit of g must be set in f, so a
// multi-bit mask asks for ALL of its families, not any one of them.
func (f Features) Has(g Features) bool { return f&g == g }

// String renders the combination the way the paper does ("D+S+C").
func (f Features) String() string {
	s := ""
	if f.Has(Distributional) {
		s += "D"
	}
	if f.Has(Statistical) {
		if s != "" {
			s += "+"
		}
		s += "S"
	}
	if f.Has(Contextual) {
		if s != "" {
			s += "+"
		}
		s += "C"
	}
	if s == "" {
		return "none"
	}
	return s
}

// Composition selects how value and header embeddings are merged (Table 3).
type Composition int

const (
	// Concatenation joins the parts side by side (Eq. 11/13) — the paper's
	// best-performing mode.
	Concatenation Composition = iota
	// Aggregation averages the parts into a single fixed-width vector.
	Aggregation
	// AE compresses the concatenated parts with an autoencoder.
	AE
)

// String names the composition mode.
func (c Composition) String() string {
	switch c {
	case Aggregation:
		return "aggregation"
	case AE:
		return "AE"
	default:
		return "concatenation"
	}
}

// Norm selects the vector normalization applied to signature rows.
type Norm int

const (
	// L1 normalization is what the paper specifies (Eq. 9–10).
	L1 Norm = iota
	// L2 normalization is provided for the ablation of that design choice.
	L2
)

// Config parametrizes a Gem embedder.
type Config struct {
	// Components is the number of GMM components m. Default 50 (the paper's
	// setting; Figure 4 shows 5–100 behave similarly).
	Components int
	// Tol is the EM convergence threshold on the log-likelihood change.
	// Default 1e-3 (paper §3.1).
	Tol float64
	// MaxIter caps EM iterations per restart. Default 200.
	MaxIter int
	// Restarts is the number of EM initializations. Default 10 (paper
	// §4.1.4).
	Restarts int
	// Seed drives all randomness (EM restarts, subsampling, AE training).
	Seed int64
	// Features selects D/S/C. Default Distributional|Statistical — the
	// numeric-only Gem (D+S) of Table 2.
	Features Features
	// Composition selects how C is merged with D/S when Contextual is
	// enabled. Default Concatenation.
	Composition Composition
	// Normalization selects L1 (paper) or L2 row normalization. Default L1.
	Normalization Norm
	// HeaderDim is the width of header embeddings. Default
	// textembed.DefaultDim (384).
	HeaderDim int
	// SubsampleStack caps the number of stacked values used to fit the GMM
	// (a deterministic uniform subsample). 0 means no cap. Fitting EM on a
	// bounded subsample leaves the mixture estimate essentially unchanged
	// while keeping large corpora fast.
	SubsampleStack int
	// EntropyBins is the histogram bin count of the entropy feature.
	// Default 20.
	EntropyBins int
	// AELatent is the latent width of the AE composition. Default 64.
	AELatent int
	// AEEpochs is the AE composition's training epochs. Default 30.
	AEEpochs int
	// EMInit selects the EM initialization method. Default quantile
	// seeding (see gmm.InitQuantile).
	EMInit gmm.InitMethod
	// RawStats disables the signed-log measurement of the scale-carrying
	// statistical features (see StatisticalFeatures). Exposed for the
	// ablation benches; the log measurement is the default.
	RawStats bool
	// Workers bounds the total parallelism of the embedder: one shared
	// internal/pool worker pool serves the column fan-out of
	// Signatures/Embed AND the EM engine's restart/chunk/candidate
	// fan-out (see gmm.Config.Pool), so nested parallelism cannot
	// oversubscribe — columns × restarts × chunks collapse onto Workers
	// bounded slots. Default GOMAXPROCS; 1 runs everything serially.
	// Results are written to index-addressed slots and reduced in index
	// order, so output is bit-identical for every worker count. Excluded
	// from persistence: the right width is a property of the loading
	// host, not the saving one.
	Workers int `json:"-"`
}

func (c *Config) fillDefaults() {
	if c.Components <= 0 {
		c.Components = 50
	}
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Restarts <= 0 {
		c.Restarts = 10
	}
	if c.Features == 0 {
		c.Features = Distributional | Statistical
	}
	if c.HeaderDim <= 0 {
		c.HeaderDim = textembed.DefaultDim
	}
	if c.EntropyBins <= 0 {
		c.EntropyBins = 20
	}
	if c.AELatent <= 0 {
		c.AELatent = 64
	}
	if c.AEEpochs <= 0 {
		c.AEEpochs = 30
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
}

// StatMoments holds the per-feature mean and standard deviation of the
// statistical features across the fitting corpus columns (population
// standard deviation, matching stats.Standardize), frozen at Fit time.
// They make single-column embeddings batch-independent: EmbedSignature
// standardizes against the corpus moments instead of the incoming batch,
// so the serve layer can answer for one column at a time.
type StatMoments struct {
	Mean []float64 `json:"mean"`
	Std  []float64 `json:"std"`
}

// Embedder produces Gem embeddings for numeric columns.
type Embedder struct {
	cfg     Config
	model   *gmm.Model
	headers *textembed.Embedder
	// moments are the frozen corpus-level feature moments; nil until Fit
	// (or when the config selects no statistical features).
	moments *StatMoments
	// pool is the one bounded worker pool shared by every parallel layer
	// of the pipeline (column fan-out and nested EM), sized by
	// cfg.Workers. See the internal/pool package comment for the
	// no-oversubscription contract.
	pool *pool.Pool
	// fitStats is the telemetry of the last Fit call; nil before Fit and
	// on loaded embedders. Excluded from persistence: it describes one
	// fitting run on one host, not the model.
	fitStats *gmm.FitStats
}

// NewEmbedder returns an unfitted embedder.
func NewEmbedder(cfg Config) (*Embedder, error) {
	cfg.fillDefaults()
	he, err := textembed.New(cfg.HeaderDim)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &Embedder{cfg: cfg, headers: he, pool: pool.New(cfg.Workers)}, nil
}

// Config returns the effective (default-filled) configuration.
func (e *Embedder) Config() Config { return e.cfg }

// SetWorkers rebuilds the embedder's shared worker pool at the given width
// (non-positive means GOMAXPROCS). Workers is a property of the running
// host and is excluded from persistence, so this is how a loaded embedder
// gets a non-default width. The pool width never changes results, only
// wall-clock; do not call concurrently with embedding work.
func (e *Embedder) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	e.cfg.Workers = n
	e.pool = pool.New(n)
}

// Model returns the fitted GMM, or nil before Fit.
func (e *Embedder) Model() *gmm.Model { return e.model }

// Fit stacks all column values of ds into one sample (optionally
// subsampled) and fits the GMM (Algorithm 1, line 9).
func (e *Embedder) Fit(ds *table.Dataset) error {
	if ds == nil || len(ds.Columns) == 0 {
		return fmt.Errorf("%w: empty dataset", ErrInput)
	}
	stack := ds.Stack()
	if e.cfg.SubsampleStack > 0 && len(stack) > e.cfg.SubsampleStack {
		stack = subsample(stack, e.cfg.SubsampleStack, e.cfg.Seed)
	}
	m, st, err := gmm.FitWithStats(stack, gmm.Config{
		K:        e.cfg.Components,
		Tol:      e.cfg.Tol,
		MaxIter:  e.cfg.MaxIter,
		Restarts: e.cfg.Restarts,
		Seed:     e.cfg.Seed,
		Init:     e.cfg.EMInit,
		Pool:     e.pool,
	})
	if err != nil {
		return fmt.Errorf("core: fitting GMM: %w", err)
	}
	e.model = m
	e.fitStats = st
	return e.freezeMoments(ds)
}

// FitStats returns the telemetry recorded by the last Fit call: per-restart
// iteration counts and likelihoods, the winning restart, the winner's
// log-likelihood trajectory, and E/M-step wall-clock. Nil before Fit and on
// embedders restored by LoadEmbedder.
func (e *Embedder) FitStats() *gmm.FitStats { return e.fitStats }

// freezeMoments computes and stores the corpus-level feature moments of ds
// (see StatMoments). A no-op when the configuration selects no statistical
// features. The pass over the columns is repeated by a later Embed on the
// same dataset, but it cannot be deferred to one: the moments must exist
// even when the embedder goes straight to Save (the serve deployment mode),
// and the cost is one sort-dominated scan per column — marginal next to the
// EM iterations Fit just ran.
func (e *Embedder) freezeMoments(ds *table.Dataset) error {
	if !e.cfg.Features.Has(Statistical) {
		return nil
	}
	statFn := StatisticalFeatures
	if e.cfg.RawStats {
		statFn = RawStatisticalFeatures
	}
	feats := make([][]float64, len(ds.Columns))
	err := e.pool.For(len(ds.Columns), func(i int) error {
		fs, err := statFn(ds.Columns[i].Values, e.cfg.EntropyBins)
		if err != nil {
			return fmt.Errorf("core: column %d (%q): %w", i, ds.Columns[i].Name, err)
		}
		feats[i] = fs
		return nil
	})
	if err != nil {
		return err
	}
	width := len(feats[0])
	mom := &StatMoments{Mean: make([]float64, width), Std: make([]float64, width)}
	col := make([]float64, len(feats))
	for j := 0; j < width; j++ {
		for i := range feats {
			col[i] = feats[i][j]
		}
		mom.Mean[j], _ = stats.Mean(col)
		mom.Std[j], _ = stats.StdDev(col)
	}
	e.moments = mom
	return nil
}

// Moments returns the frozen corpus-level feature moments, or nil before
// Fit (or when the configuration selects no statistical features).
func (e *Embedder) Moments() *StatMoments { return e.moments }

// subsample picks k values from xs uniformly without replacement,
// deterministically in seed. It runs a partial Fisher–Yates shuffle on a
// sparse view of the index permutation: only the k drawn slots and the
// entries they displace are materialized in a map, so the cost is O(k) time
// and memory regardless of len(xs) — where a full rng.Perm would allocate
// and shuffle all n indices to use just the first k.
func subsample(xs []float64, k int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	n := len(xs)
	displaced := make(map[int]int, 2*k)
	at := func(i int) int {
		if j, ok := displaced[i]; ok {
			return j
		}
		return i
	}
	out := make([]float64, k)
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		vi, vj := at(i), at(j)
		displaced[i], displaced[j] = vj, vi
		out[i] = xs[vj]
	}
	return out
}

// StatFeatureNames lists the seven statistical features in vector order.
func StatFeatureNames() []string {
	return []string{"unique_count", "mean", "cv", "entropy", "range", "p10", "p90"}
}

// StatisticalFeatures computes the paper's seven statistical features for
// one column (§3.2). EntropyBins controls the entropy histogram.
//
// Scale-carrying features (unique count, mean, range, percentiles, CV) are
// measured in signed log space, sign(x)·log(1+|x|), before the cross-column
// standardization of Eq. 7. On corpora whose column magnitudes span several
// decades, raw z-scores of these features collapse: the few huge-scale
// columns capture all the variance and the bulk of columns become an almost
// constant block, which washes out cosine similarity. The log measurement
// keeps the z-scores informative across decades; the raw-vs-log choice is
// benchmarked in the ablation benches (DESIGN.md §5).
func StatisticalFeatures(values []float64, entropyBins int) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empty column", ErrInput)
	}
	if entropyBins <= 0 {
		entropyBins = 20
	}
	mean, err := stats.Mean(values)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cv, _ := stats.CoefficientOfVariation(values)
	ent, _ := stats.Entropy(values, entropyBins)
	rng, _ := stats.Range(values)
	p10, _ := stats.Percentile(values, 10)
	p90, _ := stats.Percentile(values, 90)
	return []float64{
		slog(float64(stats.UniqueCount(values))),
		slog(mean),
		slog(cv),
		ent,
		slog(rng),
		slog(p10),
		slog(p90),
	}, nil
}

// RawStatisticalFeatures is StatisticalFeatures without the signed-log
// measurement — the literal raw feature values. Used by the ablation bench
// that quantifies the log-space design choice.
func RawStatisticalFeatures(values []float64, entropyBins int) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empty column", ErrInput)
	}
	if entropyBins <= 0 {
		entropyBins = 20
	}
	mean, err := stats.Mean(values)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	cv, _ := stats.CoefficientOfVariation(values)
	ent, _ := stats.Entropy(values, entropyBins)
	rng, _ := stats.Range(values)
	p10, _ := stats.Percentile(values, 10)
	p90, _ := stats.Percentile(values, 90)
	return []float64{
		float64(stats.UniqueCount(values)),
		mean,
		cv,
		ent,
		rng,
		p10,
		p90,
	}, nil
}

// slog is the signed log transform sign(x)·log(1+|x|).
func slog(x float64) float64 {
	if x >= 0 {
		return math.Log1p(x)
	}
	return -math.Log1p(-x)
}

// Signature is the per-column output of the signature mechanism before
// normalization and composition.
type Signature struct {
	// Column is the header of the column.
	Column string
	// MeanProbs is the distributional embedding m_i: the column's mean
	// responsibility per GMM component (sums to 1).
	MeanProbs []float64
	// Stats holds the raw (unstandardized) statistical features f_i.
	Stats []float64
}

// Signatures computes the signature of every column in ds under the fitted
// model.
func (e *Embedder) Signatures(ds *table.Dataset) ([]Signature, error) {
	if e.model == nil {
		return nil, ErrState
	}
	if ds == nil || len(ds.Columns) == 0 {
		return nil, fmt.Errorf("%w: empty dataset", ErrInput)
	}
	// Per-column work is independent and the model is read-only once
	// fitted, so columns fan out across the worker pool; each worker
	// writes only its own slot, keeping output order deterministic.
	out := make([]Signature, len(ds.Columns))
	err := e.pool.For(len(ds.Columns), func(i int) error {
		sig, err := e.columnSignature(ds.Columns[i])
		if err != nil {
			return fmt.Errorf("core: column %d (%q): %w", i, ds.Columns[i].Name, err)
		}
		out[i] = sig
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// columnSignature computes one column's signature; the exact code path the
// batched Signatures fans out, so single-column and batched results are
// bit-identical. The error is unwrapped for the callers to contextualize.
func (e *Embedder) columnSignature(col table.Column) (Signature, error) {
	mp, err := e.model.MeanResponsibilities(col.Values)
	if err != nil {
		return Signature{}, err
	}
	statFn := StatisticalFeatures
	if e.cfg.RawStats {
		statFn = RawStatisticalFeatures
	}
	fs, err := statFn(col.Values, e.cfg.EntropyBins)
	if err != nil {
		return Signature{}, err
	}
	return Signature{Column: col.Name, MeanProbs: mp, Stats: fs}, nil
}

// Embed runs the full Gem pipeline on ds and returns one embedding row per
// column. Fit must have been called first (typically on the same dataset).
func (e *Embedder) Embed(ds *table.Dataset) ([][]float64, error) {
	sigs, err := e.Signatures(ds)
	if err != nil {
		return nil, err
	}

	n := len(sigs)
	// Standardize statistical features across columns (Eq. 7).
	var stdStats [][]float64
	if e.cfg.Features.Has(Statistical) {
		raw := make([][]float64, n)
		for i, s := range sigs {
			raw[i] = s.Stats
		}
		stdStats, err = stats.Standardize(raw)
		if err != nil {
			return nil, fmt.Errorf("core: standardizing features: %w", err)
		}
	}

	// Value embedding P_i (Eq. 8–9): the selected value-side parts are
	// concatenated and normalized. Each part is first brought to unit L2
	// norm so that neither the m-wide responsibility profile nor the
	// 7-wide z-score block dominates cosine similarity by magnitude alone
	// (a block-balance refinement of Eq. 8; the unbalanced variant is
	// covered by the ablation benches).
	valueRows := make([][]float64, n)
	for i := range sigs {
		var a []float64
		if e.cfg.Features.Has(Distributional) {
			a = append(a, stats.L2Normalize(sigs[i].MeanProbs)...)
		}
		if e.cfg.Features.Has(Statistical) {
			a = append(a, stats.L2Normalize(stdStats[i])...)
		}
		valueRows[i] = e.normalize(a)
	}

	// Contextual embedding S_i (Eq. 10). The header embedder is read-only,
	// so headers fan out across the same worker pool.
	var headerRows [][]float64
	if e.cfg.Features.Has(Contextual) {
		headerRows = make([][]float64, n)
		if err := e.pool.For(n, func(i int) error {
			headerRows[i] = e.normalize(e.headers.Embed(ds.Columns[i].Name))
			return nil
		}); err != nil {
			return nil, err
		}
	}

	switch {
	case !e.cfg.Features.Has(Contextual):
		return valueRows, nil
	case len(valueRows[0]) == 0:
		// Contextual only.
		return headerRows, nil
	default:
		return e.compose(valueRows, headerRows)
	}
}

// FitEmbed is Fit followed by Embed on the same dataset.
func (e *Embedder) FitEmbed(ds *table.Dataset) ([][]float64, error) {
	if err := e.Fit(ds); err != nil {
		return nil, err
	}
	return e.Embed(ds)
}

// compose merges value and header embeddings per the configured mode.
func (e *Embedder) compose(value, header [][]float64) ([][]float64, error) {
	n := len(value)
	switch e.cfg.Composition {
	case Aggregation:
		// Summarize the two parts into one fixed-width vector: each part is
		// zero-padded to the wider width and the parts are averaged. This
		// "compresses diverse characteristics into a less detailed form",
		// which is exactly the information loss the paper attributes to
		// aggregation.
		width := len(value[0])
		if len(header[0]) > width {
			width = len(header[0])
		}
		out := make([][]float64, n)
		for i := 0; i < n; i++ {
			row := make([]float64, width)
			for j, v := range value[i] {
				row[j] += v / 2
			}
			for j, v := range header[i] {
				row[j] += v / 2
			}
			out[i] = row
		}
		return out, nil
	case AE:
		concat := concatRows(value, header)
		ae, err := autoencoder.New(autoencoder.Config{
			InputDim:  len(concat[0]),
			Hidden:    []int{128},
			LatentDim: e.cfg.AELatent,
			Seed:      e.cfg.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("core: AE composition: %w", err)
		}
		if _, err := ae.Train(concat, autoencoder.TrainConfig{
			Epochs:       e.cfg.AEEpochs,
			BatchSize:    64,
			LearningRate: 1e-3,
			Seed:         e.cfg.Seed,
		}); err != nil {
			return nil, fmt.Errorf("core: AE composition: %w", err)
		}
		z, err := ae.Encode(concat)
		if err != nil {
			return nil, fmt.Errorf("core: AE composition: %w", err)
		}
		return z, nil
	default: // Concatenation (Eq. 11/13)
		return concatRows(value, header), nil
	}
}

func concatRows(a, b [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		row := make([]float64, 0, len(a[i])+len(b[i]))
		row = append(row, a[i]...)
		row = append(row, b[i]...)
		out[i] = row
	}
	return out
}

// normalize applies the configured row normalization.
func (e *Embedder) normalize(v []float64) []float64 {
	if e.cfg.Normalization == L2 {
		return stats.L2Normalize(v)
	}
	return stats.L1Normalize(v)
}

// AssignComponent returns, for each value of a column, the index of the GMM
// component with the highest responsibility (Eq. 12) — the paper's
// interpretation of a value's latent "semantic distribution".
func (e *Embedder) AssignComponent(values []float64) ([]int, error) {
	if e.model == nil {
		return nil, ErrState
	}
	out := make([]int, len(values))
	for i, x := range values {
		r := e.model.Responsibilities(x)
		best, bestV := 0, math.Inf(-1)
		for j, v := range r {
			if v > bestV {
				bestV = v
				best = j
			}
		}
		out[i] = best
	}
	return out, nil
}

// HeaderEmbedder exposes the contextual embedding component so callers
// (baselines, examples) can reuse the identical header representation.
func (e *Embedder) HeaderEmbedder() *textembed.Embedder { return e.headers }
