// Package pool provides a shared, bounded worker pool for index-parallel
// loops. One Pool is meant to be shared by every parallel layer of a
// pipeline — in Gem: the per-column fan-out in core, the per-restart and
// per-chunk fan-out inside EM, and the per-candidate fan-out of model
// selection — so that nested parallelism cannot oversubscribe the machine.
//
// The no-oversubscription contract: the pool holds w-1 worker tokens; the
// goroutine that calls For always executes work itself (caller-runs), and
// extra goroutines are spawned only for tokens that can be acquired
// without blocking. With c goroutines independently calling For on one
// Pool, at most c + w - 1 loop bodies run at once — so for the common
// single-entry-point pipeline (c = 1, including arbitrarily deep nesting,
// because a nested caller already occupies its slot) the bound is exactly
// w. A nested For that finds every token busy degrades to a serial loop
// on its caller — it never queues, never blocks, and never deadlocks —
// and columns × restarts × chunks all collapse onto the same w slots.
//
// Determinism: For distributes indices dynamically, so WHICH goroutine
// runs an index is scheduling-dependent — but callers that write results
// only to index-addressed slots and reduce them in index order after For
// returns get output that is bit-identical for every pool width. All of
// Gem's hot loops follow that discipline.
//
// The contract is enforced statically by gemlint's poolgo analyzer (see
// internal/lint): packages marked //gem:pooled may not spawn naked
// goroutines for fan-out, and a function already receiving a *Pool may
// not construct another one.
package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a bounded worker pool. The zero value is not usable; call New.
// A nil *Pool is valid and runs every For serially on the caller, which
// makes it the natural "no parallelism" default for config structs.
type Pool struct {
	// tokens holds capacity for workers-1 helper goroutines. Acquiring is
	// always non-blocking: a For call takes what is free and runs the
	// remainder on its caller.
	tokens  chan struct{}
	workers int
}

// New returns a Pool bounded to workers concurrent loop bodies. A
// non-positive workers defaults to GOMAXPROCS. New(1) yields a pool whose
// For is a plain serial loop.
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{workers: workers}
	if workers > 1 {
		p.tokens = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			p.tokens <- struct{}{}
		}
	}
	return p
}

// Workers returns the pool's concurrency bound (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// For runs fn(i) for every i in [0, n), using the calling goroutine plus
// as many helper goroutines as it can acquire from the pool without
// blocking (at most min(workers-1, n-1)). Indices are pulled from a
// shared counter so uneven per-index costs balance across workers.
//
// An error cancels remaining work; among errors observed before
// cancellation takes effect, the lowest-index one is returned, so
// reporting matches the serial path whenever failures race each other.
// Callers needing a fully deterministic error regardless of scheduling
// should record errors per index and scan them after For returns.
//
// fn must write its results to index-addressed slots; see the package
// comment for the determinism discipline.
func (p *Pool) For(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if p == nil || p.workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next    atomic.Int64
		failed  atomic.Bool
		mu      sync.Mutex
		bestIdx int
		bestErr error
	)
	work := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n || failed.Load() {
				return
			}
			if err := fn(i); err != nil {
				mu.Lock()
				if bestErr == nil || i < bestIdx {
					bestIdx, bestErr = i, err
				}
				mu.Unlock()
				failed.Store(true)
				return
			}
		}
	}
	var wg sync.WaitGroup
spawn:
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case tok := <-p.tokens:
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer func() { p.tokens <- tok }()
				work()
			}()
		default:
			break spawn // no free tokens: the caller handles the rest
		}
	}
	work()
	wg.Wait()
	return bestErr
}
