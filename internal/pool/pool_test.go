package pool

import (
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce asserts full, exactly-once coverage of the
// index space for a spread of pool widths relative to n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	for _, workers := range []int{1, 2, 7, 64, 2000} {
		var visited [n]atomic.Bool
		if err := New(workers).For(n, func(i int) error {
			if visited[i].Swap(true) {
				t.Errorf("workers=%d: index %d visited twice", workers, i)
			}
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for i := range visited {
			if !visited[i].Load() {
				t.Fatalf("workers=%d: index %d never visited", workers, i)
			}
		}
	}
}

// TestNilPoolRunsSerially asserts the nil pool is a valid serial default.
func TestNilPoolRunsSerially(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Errorf("nil pool Workers = %d, want 1", got)
	}
	order := make([]int, 0, 10)
	if err := p.For(10, func(i int) error {
		order = append(order, i) // no locking: must be single-goroutine
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("nil pool ran out of order: %v", order)
		}
	}
}

// TestForErrorCancels asserts an error stops remaining work and surfaces.
func TestForErrorCancels(t *testing.T) {
	const n = 10000
	sentinel := errors.New("boom")
	var calls atomic.Int64
	err := New(4).For(n, func(i int) error {
		calls.Add(1)
		if i == 10 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel error", err)
	}
	if c := calls.Load(); c >= n {
		t.Errorf("error did not cancel remaining work: %d calls", c)
	}
}

// TestForSerialErrorIsFirstIndex asserts the serial path reports the
// lowest-index error, the reference behavior for the parallel path.
func TestForSerialErrorIsFirstIndex(t *testing.T) {
	e7 := errors.New("seven")
	e9 := errors.New("nine")
	err := New(1).For(20, func(i int) error {
		switch i {
		case 7:
			return e7
		case 9:
			return e9
		}
		return nil
	})
	if !errors.Is(err, e7) {
		t.Fatalf("got %v, want error from index 7", err)
	}
}

// TestConcurrencyNeverExceedsBound asserts the no-oversubscription
// contract for flat loops: at most `workers` bodies run at once.
func TestConcurrencyNeverExceedsBound(t *testing.T) {
	prev := runtime.GOMAXPROCS(8) // let goroutines actually overlap
	defer runtime.GOMAXPROCS(prev)
	const workers = 3
	var cur, peak atomic.Int64
	if err := New(workers).For(500, func(i int) error {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		for j := 0; j < 1000; j++ {
			_ = j // hold the slot long enough for overlap to show
		}
		cur.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent bodies, bound is %d", p, workers)
	}
}

// TestNestedForSharesOneBound asserts nesting on a shared pool neither
// deadlocks nor exceeds the bound: outer × inner bodies together stay
// within `workers` concurrent executions.
func TestNestedForSharesOneBound(t *testing.T) {
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)
	const workers = 4
	p := New(workers)
	var cur, peak atomic.Int64
	var total atomic.Int64
	err := p.For(8, func(outer int) error {
		return p.For(16, func(inner int) error {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			total.Add(1)
			cur.Add(-1)
			return nil
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested loops ran %d bodies, want %d", got, 8*16)
	}
	if pk := peak.Load(); pk > workers {
		t.Errorf("nested concurrency peaked at %d, bound is %d", pk, workers)
	}
}

// TestDeepNestingTerminates asserts three levels of nesting (the
// columns × restarts × chunks shape) complete with full coverage.
func TestDeepNestingTerminates(t *testing.T) {
	p := New(4)
	var total atomic.Int64
	err := p.For(5, func(a int) error {
		return p.For(4, func(b int) error {
			return p.For(3, func(c int) error {
				total.Add(1)
				return nil
			})
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := total.Load(); got != 5*4*3 {
		t.Fatalf("ran %d bodies, want %d", got, 5*4*3)
	}
}

// TestTokensReturned asserts helper tokens are released: a second For
// after a first one can still spawn helpers (indirectly: repeated wide
// loops keep completing and covering every index).
func TestTokensReturned(t *testing.T) {
	p := New(8)
	for round := 0; round < 50; round++ {
		var count atomic.Int64
		if err := p.For(64, func(i int) error {
			count.Add(1)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if count.Load() != 64 {
			t.Fatalf("round %d: ran %d bodies, want 64", round, count.Load())
		}
	}
	if free := len(p.tokens); free != p.workers-1 {
		t.Errorf("after quiescence %d tokens free, want %d", free, p.workers-1)
	}
}

// TestNewDefaults asserts the GOMAXPROCS default and the serial width-1
// pool shape.
func TestNewDefaults(t *testing.T) {
	if got, want := New(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(0).Workers() = %d, want %d", got, want)
	}
	if got, want := New(-3).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Errorf("New(-3).Workers() = %d, want %d", got, want)
	}
	p := New(1)
	if p.tokens != nil {
		t.Error("width-1 pool should not allocate tokens")
	}
	if err := p.For(0, func(int) error { t.Error("fn called for n=0"); return nil }); err != nil {
		t.Fatal(err)
	}
}
