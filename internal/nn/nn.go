// Package nn implements the small feed-forward neural network substrate the
// reproduction's learned baselines run on: dense layers with Xavier
// initialization, ReLU/sigmoid/tanh activations, inverted dropout, MSE and
// softmax cross-entropy losses, and the Adam optimizer. Sherlock_SC and
// Sato_SC train classifier networks over statistical+header features;
// Pythagoras_SC trains a degenerate GCN; the autoencoder package composes two
// of these networks; the deep-clustering models reuse all of it.
package nn

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"github.com/gem-embeddings/gem/internal/matrix"
)

// ErrConfig is returned for invalid network or training configuration.
var ErrConfig = errors.New("nn: invalid configuration")

// Activation identifies a layer non-linearity.
type Activation int

const (
	// Identity passes values through (use for output/logit layers).
	Identity Activation = iota
	// ReLU is max(0, x).
	ReLU
	// Sigmoid is 1/(1+e^-x).
	Sigmoid
	// Tanh is the hyperbolic tangent.
	Tanh
)

func (a Activation) apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// derivFromOutput returns the activation derivative expressed in terms of
// the activated output value (valid for all supported activations).
func (a Activation) derivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Loss identifies the training objective.
type Loss int

const (
	// MSE is mean squared error over all outputs (for autoencoders and
	// regression).
	MSE Loss = iota
	// CrossEntropy is softmax cross-entropy; targets must be one-hot rows.
	CrossEntropy
)

// Config describes a feed-forward network.
type Config struct {
	// Sizes lists layer widths from input to output, e.g. [64, 32, 10].
	Sizes []int
	// Hidden is the activation for all hidden layers. Default ReLU.
	Hidden Activation
	// Output is the activation of the final layer. Default Identity
	// (logits for CrossEntropy, raw values for MSE).
	Output Activation
	// Dropout is the drop probability applied to hidden activations during
	// training (inverted dropout). 0 disables.
	Dropout float64
	// Seed makes initialization and dropout deterministic.
	Seed int64
}

// layer is one dense layer.
type layer struct {
	w   *matrix.Dense // inDim x outDim
	b   []float64
	act Activation
}

// Network is a feed-forward neural network.
type Network struct {
	layers  []*layer
	dropout float64
	rng     *rand.Rand

	// Adam state, lazily initialized by Train.
	mW, vW []*matrix.Dense
	mB, vB [][]float64
	adamT  int
}

// New constructs a network with Xavier-uniform initial weights.
func New(cfg Config) (*Network, error) {
	if len(cfg.Sizes) < 2 {
		return nil, fmt.Errorf("%w: need at least input and output sizes, got %v", ErrConfig, cfg.Sizes)
	}
	for i, s := range cfg.Sizes {
		if s < 1 {
			return nil, fmt.Errorf("%w: layer %d has size %d", ErrConfig, i, s)
		}
	}
	if cfg.Dropout < 0 || cfg.Dropout >= 1 {
		return nil, fmt.Errorf("%w: dropout %v outside [0, 1)", ErrConfig, cfg.Dropout)
	}
	if cfg.Hidden == 0 {
		cfg.Hidden = ReLU
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{dropout: cfg.Dropout, rng: rng}
	for l := 0; l+1 < len(cfg.Sizes); l++ {
		in, out := cfg.Sizes[l], cfg.Sizes[l+1]
		w := matrix.New(in, out)
		limit := math.Sqrt(6.0 / float64(in+out))
		for i := 0; i < in; i++ {
			for j := 0; j < out; j++ {
				w.Set(i, j, (rng.Float64()*2-1)*limit)
			}
		}
		act := cfg.Hidden
		if l+2 == len(cfg.Sizes) {
			act = cfg.Output
		}
		n.layers = append(n.layers, &layer{w: w, b: make([]float64, out), act: act})
	}
	return n, nil
}

// NumLayers returns the number of dense layers.
func (n *Network) NumLayers() int { return len(n.layers) }

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.layers[0].w.Rows() }

// OutputDim returns the output width.
func (n *Network) OutputDim() int { return n.layers[len(n.layers)-1].w.Cols() }

// forward runs the network over a batch. When training is true, inverted
// dropout masks are applied to hidden activations and returned so backprop
// can reuse them. The returned slice holds the activation of every layer,
// with index 0 being the input itself.
func (n *Network) forward(x *matrix.Dense, training bool) (acts []*matrix.Dense, masks []*matrix.Dense, err error) {
	acts = make([]*matrix.Dense, 0, len(n.layers)+1)
	acts = append(acts, x)
	masks = make([]*matrix.Dense, len(n.layers))
	cur := x
	for li, l := range n.layers {
		z, err := matrix.Mul(cur, l.w)
		if err != nil {
			return nil, nil, fmt.Errorf("nn: layer %d: %w", li, err)
		}
		z, _ = matrix.AddRowVector(z, l.b)
		z.ApplyInPlace(l.act.apply)
		if training && n.dropout > 0 && li+1 < len(n.layers) {
			keep := 1 - n.dropout
			mask := matrix.New(z.Rows(), z.Cols())
			for i := 0; i < z.Rows(); i++ {
				for j := 0; j < z.Cols(); j++ {
					if n.rng.Float64() < keep {
						mask.Set(i, j, 1/keep)
					}
				}
			}
			z, _ = matrix.Hadamard(z, mask)
			masks[li] = mask
		}
		acts = append(acts, z)
		cur = z
	}
	return acts, masks, nil
}

// Forward runs inference (no dropout) and returns the output batch.
func (n *Network) Forward(x *matrix.Dense) (*matrix.Dense, error) {
	acts, _, err := n.forward(x, false)
	if err != nil {
		return nil, err
	}
	return acts[len(acts)-1], nil
}

// HiddenActivations runs inference and returns the activation of layer
// `layerIdx` (1-based over dense layers; layerIdx = NumLayers()-1 is the
// penultimate layer commonly used as an embedding).
func (n *Network) HiddenActivations(x *matrix.Dense, layerIdx int) (*matrix.Dense, error) {
	if layerIdx < 1 || layerIdx > len(n.layers) {
		return nil, fmt.Errorf("%w: layer index %d outside [1, %d]", ErrConfig, layerIdx, len(n.layers))
	}
	acts, _, err := n.forward(x, false)
	if err != nil {
		return nil, err
	}
	return acts[layerIdx], nil
}

// TrainConfig controls gradient-descent training.
type TrainConfig struct {
	// Epochs is the number of passes over the data. Default 50.
	Epochs int
	// BatchSize is the mini-batch size. Default 32 (clamped to n).
	BatchSize int
	// LearningRate is Adam's step size. Default 1e-3.
	LearningRate float64
	// Loss selects the objective. Default MSE.
	Loss Loss
	// L2 is the weight-decay coefficient. Default 0.
	L2 float64
	// Seed shuffles batches deterministically.
	Seed int64
}

func (c *TrainConfig) fillDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 50
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 1e-3
	}
}

// Train fits the network to (x, y) and returns the final epoch's mean loss.
// For CrossEntropy, y must contain one-hot rows; for MSE, y is the target
// matrix (for autoencoders, y == x).
func (n *Network) Train(x, y *matrix.Dense, cfg TrainConfig) (float64, error) {
	if x.Rows() != y.Rows() {
		return 0, fmt.Errorf("%w: %d inputs vs %d targets", ErrConfig, x.Rows(), y.Rows())
	}
	if x.Cols() != n.InputDim() {
		return 0, fmt.Errorf("%w: input dim %d, network expects %d", ErrConfig, x.Cols(), n.InputDim())
	}
	if y.Cols() != n.OutputDim() {
		return 0, fmt.Errorf("%w: target dim %d, network outputs %d", ErrConfig, y.Cols(), n.OutputDim())
	}
	cfg.fillDefaults()
	n.initAdam()
	shuffleRng := rand.New(rand.NewSource(cfg.Seed))

	nRows := x.Rows()
	batch := cfg.BatchSize
	if batch > nRows {
		batch = nRows
	}
	order := make([]int, nRows)
	for i := range order {
		order[i] = i
	}

	var epochLoss float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		shuffleRng.Shuffle(nRows, func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss = 0
		batches := 0
		for start := 0; start < nRows; start += batch {
			end := start + batch
			if end > nRows {
				end = nRows
			}
			bx := matrix.New(end-start, x.Cols())
			by := matrix.New(end-start, y.Cols())
			for i := start; i < end; i++ {
				bx.SetRow(i-start, x.RawRow(order[i]))
				by.SetRow(i-start, y.RawRow(order[i]))
			}
			loss, err := n.step(bx, by, cfg)
			if err != nil {
				return 0, err
			}
			epochLoss += loss
			batches++
		}
		epochLoss /= float64(batches)
	}
	return epochLoss, nil
}

// step performs one forward/backward/update pass over a batch and returns
// the batch loss.
func (n *Network) step(bx, by *matrix.Dense, cfg TrainConfig) (float64, error) {
	acts, masks, err := n.forward(bx, true)
	if err != nil {
		return 0, err
	}
	out := acts[len(acts)-1]
	rows := float64(out.Rows())

	// Output delta and loss.
	delta := matrix.New(out.Rows(), out.Cols())
	var loss float64
	switch cfg.Loss {
	case CrossEntropy:
		for i := 0; i < out.Rows(); i++ {
			probs := softmaxRow(out.RawRow(i))
			target := by.RawRow(i)
			for j, p := range probs {
				delta.Set(i, j, (p-target[j])/rows)
				if target[j] > 0 {
					loss -= target[j] * math.Log(math.Max(p, 1e-15))
				}
			}
		}
		loss /= rows
	default: // MSE
		for i := 0; i < out.Rows(); i++ {
			o := out.RawRow(i)
			t := by.RawRow(i)
			for j := range o {
				d := o[j] - t[j]
				loss += d * d
				// d/dz = 2*(o-t)*act'(o) / (rows*cols)
				delta.Set(i, j, 2*d*n.layers[len(n.layers)-1].act.derivFromOutput(o[j])/(rows*float64(out.Cols())))
			}
		}
		loss /= rows * float64(out.Cols())
	}

	// Backprop.
	n.adamT++
	for li := len(n.layers) - 1; li >= 0; li-- {
		l := n.layers[li]
		prev := acts[li]
		gradW, err := matrix.MulTransA(prev, delta)
		if err != nil {
			return 0, err
		}
		if cfg.L2 > 0 {
			wPenalty := matrix.Scale(l.w, cfg.L2)
			gradW, _ = matrix.Add(gradW, wPenalty)
		}
		gradB := matrix.ColSums(delta)

		// Propagate delta before updating weights.
		if li > 0 {
			back, err := matrix.MulTransB(delta, l.w)
			if err != nil {
				return 0, err
			}
			prevAct := acts[li]
			_ = prevAct
			// Derivative of the previous layer's activation, evaluated on
			// its (possibly dropped-out) output.
			prevLayer := n.layers[li-1]
			newDelta := matrix.New(back.Rows(), back.Cols())
			for i := 0; i < back.Rows(); i++ {
				br := back.RawRow(i)
				ar := acts[li].RawRow(i)
				nr := newDelta.RawRow(i)
				for j := range br {
					nr[j] = br[j] * prevLayer.act.derivFromOutput(ar[j])
				}
			}
			if masks[li-1] != nil {
				newDelta, _ = matrix.Hadamard(newDelta, masks[li-1])
			}
			delta = newDelta
		}
		n.adamUpdate(li, gradW, gradB, cfg.LearningRate)
	}
	return loss, nil
}

func (n *Network) initAdam() {
	if n.mW != nil {
		return
	}
	n.mW = make([]*matrix.Dense, len(n.layers))
	n.vW = make([]*matrix.Dense, len(n.layers))
	n.mB = make([][]float64, len(n.layers))
	n.vB = make([][]float64, len(n.layers))
	for i, l := range n.layers {
		n.mW[i] = matrix.New(l.w.Rows(), l.w.Cols())
		n.vW[i] = matrix.New(l.w.Rows(), l.w.Cols())
		n.mB[i] = make([]float64, len(l.b))
		n.vB[i] = make([]float64, len(l.b))
	}
}

// adamUpdate applies one Adam step to layer li.
func (n *Network) adamUpdate(li int, gradW *matrix.Dense, gradB []float64, lr float64) {
	const (
		beta1 = 0.9
		beta2 = 0.999
		eps   = 1e-8
	)
	t := float64(n.adamT)
	bc1 := 1 - math.Pow(beta1, t)
	bc2 := 1 - math.Pow(beta2, t)
	l := n.layers[li]
	for i := 0; i < l.w.Rows(); i++ {
		for j := 0; j < l.w.Cols(); j++ {
			g := gradW.At(i, j)
			m := beta1*n.mW[li].At(i, j) + (1-beta1)*g
			v := beta2*n.vW[li].At(i, j) + (1-beta2)*g*g
			n.mW[li].Set(i, j, m)
			n.vW[li].Set(i, j, v)
			l.w.Set(i, j, l.w.At(i, j)-lr*(m/bc1)/(math.Sqrt(v/bc2)+eps))
		}
	}
	for j, g := range gradB {
		m := beta1*n.mB[li][j] + (1-beta1)*g
		v := beta2*n.vB[li][j] + (1-beta2)*g*g
		n.mB[li][j] = m
		n.vB[li][j] = v
		l.b[j] -= lr * (m / bc1) / (math.Sqrt(v/bc2) + eps)
	}
}

// softmaxRow returns the softmax of a logit row.
func softmaxRow(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		e := math.Exp(v - maxV)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Softmax applies a row-wise softmax to a logit matrix.
func Softmax(logits *matrix.Dense) *matrix.Dense {
	out := matrix.New(logits.Rows(), logits.Cols())
	for i := 0; i < logits.Rows(); i++ {
		out.SetRow(i, softmaxRow(logits.RawRow(i)))
	}
	return out
}

// OneHot encodes integer class labels as a one-hot matrix with numClasses
// columns.
func OneHot(labels []int, numClasses int) (*matrix.Dense, error) {
	if len(labels) == 0 || numClasses < 1 {
		return nil, fmt.Errorf("%w: %d labels, %d classes", ErrConfig, len(labels), numClasses)
	}
	out := matrix.New(len(labels), numClasses)
	for i, l := range labels {
		if l < 0 || l >= numClasses {
			return nil, fmt.Errorf("%w: label %d outside [0, %d)", ErrConfig, l, numClasses)
		}
		out.Set(i, l, 1)
	}
	return out, nil
}
