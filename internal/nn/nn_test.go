package nn

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/matrix"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Sizes: []int{3}}); !errors.Is(err, ErrConfig) {
		t.Errorf("single layer: want ErrConfig, got %v", err)
	}
	if _, err := New(Config{Sizes: []int{3, 0}}); !errors.Is(err, ErrConfig) {
		t.Errorf("zero width: want ErrConfig, got %v", err)
	}
	if _, err := New(Config{Sizes: []int{3, 2}, Dropout: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("dropout 1: want ErrConfig, got %v", err)
	}
	n, err := New(Config{Sizes: []int{4, 8, 2}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if n.NumLayers() != 2 || n.InputDim() != 4 || n.OutputDim() != 2 {
		t.Errorf("shape accessors wrong: %d layers, in %d, out %d",
			n.NumLayers(), n.InputDim(), n.OutputDim())
	}
}

func TestForwardShapeAndDeterminism(t *testing.T) {
	n, err := New(Config{Sizes: []int{3, 5, 2}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := matrix.FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	out1, err := n.Forward(x)
	if err != nil {
		t.Fatal(err)
	}
	if out1.Rows() != 2 || out1.Cols() != 2 {
		t.Fatalf("output shape %dx%d, want 2x2", out1.Rows(), out1.Cols())
	}
	out2, _ := n.Forward(x)
	if !matrix.Equal(out1, out2, 0) {
		t.Error("inference must be deterministic")
	}
	// Two networks with the same seed produce identical outputs.
	n2, _ := New(Config{Sizes: []int{3, 5, 2}, Seed: 7})
	out3, _ := n2.Forward(x)
	if !matrix.Equal(out1, out3, 0) {
		t.Error("same seed must give identical initialization")
	}
}

func TestTrainMSELearnsLinearMap(t *testing.T) {
	// Fit y = 2*x1 - x2 with a linear network (no hidden layers).
	rng := rand.New(rand.NewSource(2))
	nRows := 200
	x := matrix.New(nRows, 2)
	y := matrix.New(nRows, 1)
	for i := 0; i < nRows; i++ {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		x.Set(i, 0, a)
		x.Set(i, 1, b)
		y.Set(i, 0, 2*a-b)
	}
	n, err := New(Config{Sizes: []int{2, 1}, Output: Identity, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := n.Train(x, y, TrainConfig{Epochs: 200, BatchSize: 32, LearningRate: 0.01, Loss: MSE, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 1e-3 {
		t.Errorf("final MSE = %v, want < 1e-3", loss)
	}
	out, _ := n.Forward(x)
	for i := 0; i < 5; i++ {
		if math.Abs(out.At(i, 0)-y.At(i, 0)) > 0.1 {
			t.Errorf("prediction %d: %v vs %v", i, out.At(i, 0), y.At(i, 0))
		}
	}
}

func TestTrainXORWithHiddenLayer(t *testing.T) {
	x, _ := matrix.FromRows([][]float64{{0, 0}, {0, 1}, {1, 0}, {1, 1}})
	y, _ := matrix.FromRows([][]float64{{0}, {1}, {1}, {0}})
	n, err := New(Config{Sizes: []int{2, 8, 1}, Hidden: Tanh, Output: Sigmoid, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	_, err = n.Train(x, y, TrainConfig{Epochs: 2000, BatchSize: 4, LearningRate: 0.05, Loss: MSE, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	out, _ := n.Forward(x)
	for i, want := range []float64{0, 1, 1, 0} {
		got := out.At(i, 0)
		if math.Abs(got-want) > 0.2 {
			t.Errorf("XOR row %d: got %v, want %v", i, got, want)
		}
	}
}

func TestTrainCrossEntropyClassifier(t *testing.T) {
	// Two well-separated 2-D blobs.
	rng := rand.New(rand.NewSource(8))
	nPer := 60
	rows := make([][]float64, 0, 2*nPer)
	labels := make([]int, 0, 2*nPer)
	for i := 0; i < nPer; i++ {
		rows = append(rows, []float64{rng.NormFloat64() * 0.5, rng.NormFloat64() * 0.5})
		labels = append(labels, 0)
		rows = append(rows, []float64{4 + rng.NormFloat64()*0.5, 4 + rng.NormFloat64()*0.5})
		labels = append(labels, 1)
	}
	x, _ := matrix.FromRows(rows)
	y, err := OneHot(labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := New(Config{Sizes: []int{2, 16, 2}, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := n.Train(x, y, TrainConfig{Epochs: 100, BatchSize: 16, LearningRate: 0.01, Loss: CrossEntropy, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.1 {
		t.Errorf("final CE loss = %v, want < 0.1", loss)
	}
	out, _ := n.Forward(x)
	probs := Softmax(out)
	correct := 0
	for i, l := range labels {
		pred := 0
		if probs.At(i, 1) > probs.At(i, 0) {
			pred = 1
		}
		if pred == l {
			correct++
		}
	}
	if acc := float64(correct) / float64(len(labels)); acc < 0.98 {
		t.Errorf("classifier accuracy = %v, want >= 0.98", acc)
	}
}

func TestTrainWithDropoutStillLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nRows := 150
	x := matrix.New(nRows, 4)
	y := matrix.New(nRows, 1)
	for i := 0; i < nRows; i++ {
		var s float64
		for j := 0; j < 4; j++ {
			v := rng.NormFloat64()
			x.Set(i, j, v)
			s += v
		}
		y.Set(i, 0, s)
	}
	n, err := New(Config{Sizes: []int{4, 32, 1}, Dropout: 0.2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	loss, err := n.Train(x, y, TrainConfig{Epochs: 150, BatchSize: 32, LearningRate: 0.005, Loss: MSE, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if loss > 0.5 {
		t.Errorf("dropout training loss = %v, want < 0.5", loss)
	}
}

func TestTrainValidation(t *testing.T) {
	n, _ := New(Config{Sizes: []int{2, 2}, Seed: 1})
	x := matrix.New(3, 2)
	yBadRows := matrix.New(2, 2)
	if _, err := n.Train(x, yBadRows, TrainConfig{}); !errors.Is(err, ErrConfig) {
		t.Errorf("row mismatch: want ErrConfig, got %v", err)
	}
	yBadCols := matrix.New(3, 5)
	if _, err := n.Train(x, yBadCols, TrainConfig{}); !errors.Is(err, ErrConfig) {
		t.Errorf("col mismatch: want ErrConfig, got %v", err)
	}
	xBad := matrix.New(3, 7)
	y := matrix.New(3, 2)
	if _, err := n.Train(xBad, y, TrainConfig{}); !errors.Is(err, ErrConfig) {
		t.Errorf("input dim mismatch: want ErrConfig, got %v", err)
	}
}

func TestHiddenActivations(t *testing.T) {
	n, _ := New(Config{Sizes: []int{3, 6, 4, 2}, Seed: 14})
	x := matrix.New(5, 3)
	h, err := n.HiddenActivations(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Rows() != 5 || h.Cols() != 4 {
		t.Errorf("hidden activations shape %dx%d, want 5x4", h.Rows(), h.Cols())
	}
	if _, err := n.HiddenActivations(x, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("layer 0: want ErrConfig, got %v", err)
	}
	if _, err := n.HiddenActivations(x, 9); !errors.Is(err, ErrConfig) {
		t.Errorf("layer 9: want ErrConfig, got %v", err)
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	logits, _ := matrix.FromRows([][]float64{{1, 2, 3}, {-5, 0, 5}, {1000, 1000, 1000}})
	probs := Softmax(logits)
	for i := 0; i < probs.Rows(); i++ {
		var s float64
		for j := 0; j < probs.Cols(); j++ {
			p := probs.At(i, j)
			if p < 0 || p > 1 || math.IsNaN(p) {
				t.Fatalf("prob[%d][%d] = %v", i, j, p)
			}
			s += p
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("row %d sums to %v", i, s)
		}
	}
	// Monotonicity: bigger logit → bigger probability.
	if !(probs.At(0, 2) > probs.At(0, 1) && probs.At(0, 1) > probs.At(0, 0)) {
		t.Error("softmax not monotone in logits")
	}
}

func TestOneHot(t *testing.T) {
	oh, err := OneHot([]int{0, 2, 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{1, 0, 0}, {0, 0, 1}, {0, 1, 0}}
	for i := range want {
		for j := range want[i] {
			if oh.At(i, j) != want[i][j] {
				t.Errorf("OneHot[%d][%d] = %v, want %v", i, j, oh.At(i, j), want[i][j])
			}
		}
	}
	if _, err := OneHot([]int{3}, 3); !errors.Is(err, ErrConfig) {
		t.Errorf("out-of-range label: want ErrConfig, got %v", err)
	}
	if _, err := OneHot(nil, 3); !errors.Is(err, ErrConfig) {
		t.Errorf("empty: want ErrConfig, got %v", err)
	}
}

func TestActivationDerivatives(t *testing.T) {
	// Numerical check: derivFromOutput(f(x)) ≈ (f(x+h)-f(x-h)) / 2h.
	for _, act := range []Activation{Identity, Sigmoid, Tanh} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			h := 1e-6
			numeric := (act.apply(x+h) - act.apply(x-h)) / (2 * h)
			analytic := act.derivFromOutput(act.apply(x))
			if math.Abs(numeric-analytic) > 1e-5 {
				t.Errorf("activation %d at %v: numeric %v vs analytic %v", act, x, numeric, analytic)
			}
		}
	}
	// ReLU away from the kink.
	if ReLU.derivFromOutput(ReLU.apply(2)) != 1 || ReLU.derivFromOutput(ReLU.apply(-2)) != 0 {
		t.Error("ReLU derivative wrong")
	}
}

func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	x := matrix.New(100, 3)
	y := matrix.New(100, 2)
	for i := 0; i < 100; i++ {
		for j := 0; j < 3; j++ {
			x.Set(i, j, rng.NormFloat64())
		}
		y.Set(i, 0, x.At(i, 0)+x.At(i, 1))
		y.Set(i, 1, x.At(i, 2)*2)
	}
	n, _ := New(Config{Sizes: []int{3, 16, 2}, Seed: 16})
	first, err := n.Train(x, y, TrainConfig{Epochs: 1, LearningRate: 0.01, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	last, err := n.Train(x, y, TrainConfig{Epochs: 100, LearningRate: 0.01, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if last >= first {
		t.Errorf("loss did not decrease: first %v, last %v", first, last)
	}
}
