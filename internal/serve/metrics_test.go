package serve

import (
	"bytes"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/obs"
)

const searchBody = `{"column":{"name":"cost","values":[10,21,34,11,50,3]},"k":2}`

// TestMetricsDeterminismNeutral is the tentpole's hard constraint: /embed
// and /search bodies are byte-identical with metrics (and the slow log) on
// vs off, at workers 1, 2 and 8, cold and cached.
func TestMetricsDeterminismNeutral(t *testing.T) {
	var ref []byte // metrics-off, workers 1, cold /embed answer
	var refSearch []byte
	for _, workers := range []int{1, 2, 8} {
		for _, metricsOn := range []bool{false, true} {
			cfg := Config{Index: ann.NewFlat(ann.Cosine)}
			if metricsOn {
				cfg.Metrics = obs.NewRegistry()
				cfg.SlowThreshold = time.Nanosecond // trace + log every request
				cfg.SlowLog = log.New(&syncBuffer{}, "", 0)
			}
			ts := httpServer(t, workers, cfg)
			code, cold := post(t, ts.URL+"/embed", embedBody)
			if code != http.StatusOK {
				t.Fatalf("workers=%d metrics=%v: embed status %d: %s", workers, metricsOn, code, cold)
			}
			_, cached := post(t, ts.URL+"/embed", embedBody)
			code, search := post(t, ts.URL+"/search", searchBody)
			if code != http.StatusOK {
				t.Fatalf("workers=%d metrics=%v: search status %d: %s", workers, metricsOn, code, search)
			}
			if ref == nil {
				ref, refSearch = cold, search
				continue
			}
			if !bytes.Equal(ref, cold) || !bytes.Equal(ref, cached) {
				t.Errorf("workers=%d metrics=%v: /embed body differs from reference", workers, metricsOn)
			}
			if !bytes.Equal(refSearch, search) {
				t.Errorf("workers=%d metrics=%v: /search body differs from reference:\n%s\n%s", workers, metricsOn, refSearch, search)
			}
		}
	}
}

// metricValue extracts the value of the first exposition line whose series
// name+labels start with prefix.
func metricValue(t *testing.T, exposition, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(exposition, "\n") {
		if !strings.HasPrefix(line, prefix) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("no series with prefix %q in exposition:\n%s", prefix, exposition)
	return 0
}

// TestMetricsExposition drives traffic through a 2-shard server and pins
// the acceptance series: per-endpoint counters and latency histograms,
// cache hits/misses, stage timings, and per-shard search fan-out timings.
func TestMetricsExposition(t *testing.T) {
	cfg := Config{Metrics: obs.NewRegistry()}
	s, closeAll := newShardedServer(t, t.TempDir(), 2, 2, cfg)
	defer closeAll()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Enroll enough columns that both shards own some, then embed (one
	// miss + one hit) and search.
	var cols []string
	for i := 0; i < 8; i++ {
		cols = append(cols, fmt.Sprintf(`{"name":"c%d","values":[%d,%d,%d]}`, i, i+1, 2*i+3, 7*i+5))
	}
	if code, body := post(t, ts.URL+"/columns", `{"columns":[`+strings.Join(cols, ",")+`]}`); code != http.StatusOK {
		t.Fatalf("add columns: status %d: %s", code, body)
	}
	post(t, ts.URL+"/embed", embedBody)
	post(t, ts.URL+"/embed", embedBody)
	if code, body := post(t, ts.URL+"/search", searchBody); code != http.StatusOK {
		t.Fatalf("search: status %d: %s", code, body)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	exp := string(raw)

	for prefix, min := range map[string]float64{
		`gem_http_requests_total{endpoint="/embed"}`:          2,
		`gem_http_requests_total{endpoint="/search"}`:         1,
		`gem_http_requests_total{endpoint="/columns"}`:        1,
		`gem_http_request_seconds_count{endpoint="/embed"}`:   2,
		`gem_cache_hits_total`:                                1,
		`gem_cache_misses_total`:                              1,
		`gem_batches_total`:                                   1,
		`gem_embed_stage_seconds_count{stage="cache_lookup"}`: 1,
		`gem_embed_stage_seconds_count{stage="signatures"}`:   1,
		`gem_embed_stage_seconds_count{stage="batch_wait"}`:   1,
		`gem_search_stage_seconds_count{stage="embed"}`:       1,
		`gem_search_stage_seconds_count{stage="scatter"}`:     1,
		`gem_search_stage_seconds_count{stage="merge"}`:       1,
		`gem_search_shard_seconds_count{shard="0"}`:           1,
		`gem_search_shard_seconds_count{shard="1"}`:           1,
		`gem_catalog_live_columns`:                            8,
		`gem_uptime_seconds`:                                  0,
		`gem_build_info`:                                      1,
	} {
		if got := metricValue(t, exp, prefix); got < min {
			t.Errorf("%s = %v, want >= %v", prefix, got, min)
		}
	}
	// A histogram family must expose cumulative buckets ending in +Inf.
	if !strings.Contains(exp, `gem_http_request_seconds_bucket{endpoint="/embed",le="+Inf"}`) {
		t.Error("missing +Inf bucket for the /embed latency histogram")
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestSlowRequestLog pins the slow-log record shape: one line per slow
// request with a request id, the endpoint, the status, and a stage
// breakdown — and nothing about it in the response body.
func TestSlowRequestLog(t *testing.T) {
	buf := &syncBuffer{}
	s := newTestServer(t, 1, Config{
		Index:         ann.NewFlat(ann.Cosine),
		SlowThreshold: time.Nanosecond, // everything is slow
		SlowLog:       log.New(buf, "", 0),
	})
	h := s.Handler()

	// Direct ServeHTTP keeps the log write synchronous with the assertion.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/embed", strings.NewReader(embedBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("embed status %d: %s", rec.Code, rec.Body.String())
	}
	if strings.Contains(rec.Body.String(), "id=") {
		t.Error("response body leaked a request id")
	}
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/search", strings.NewReader(searchBody)))
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d: %s", rec.Code, rec.Body.String())
	}

	got := buf.String()
	lines := strings.Split(strings.TrimSpace(got), "\n")
	if len(lines) != 2 {
		t.Fatalf("slow log has %d lines, want 2:\n%s", len(lines), got)
	}
	embedLine := regexp.MustCompile(`^slow request id=1 endpoint=/embed method=POST status=200 total_ms=\d+\.\d{3} stages=\[cache_lookup=\d+\.\d{3}ms batch_wait=\d+\.\d{3}ms signatures=\d+\.\d{3}ms index_add=\d+\.\d{3}ms\]$`)
	if !embedLine.MatchString(lines[0]) {
		t.Errorf("embed slow-log line does not match the pinned format:\n%s", lines[0])
	}
	for _, want := range []string{"slow request id=2 endpoint=/search", "embed=", "scatter=", "merge="} {
		if !strings.Contains(lines[1], want) {
			t.Errorf("search slow-log line missing %q:\n%s", want, lines[1])
		}
	}
}

// TestMetricsDisabled pins the off switch: without a registry /metrics is
// a JSON 404 and serving works untouched.
func TestMetricsDisabled(t *testing.T) {
	ts := httpServer(t, 1, Config{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/metrics without a registry: status %d, want 404", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/metrics 404 Content-Type = %q, want application/json", ct)
	}
	if code, _ := post(t, ts.URL+"/embed", embedBody); code != http.StatusOK {
		t.Errorf("embed with metrics off: status %d", code)
	}
}
