package serve

import (
	"math"
	"testing"
)

// TestLatencyPercentilesInterpolated pins the percentile estimator to the
// linearly interpolated h = p·(n−1) convention on a known vector. With the
// ten samples 1..10 the exact answers are p50 = 5.5, p90 = 9.1, p99 = 9.91;
// the old truncating estimator reported 5, 9 and 9 — the p99 regression on
// small samples this test guards.
func TestLatencyPercentilesInterpolated(t *testing.T) {
	r := newLatencyRing(64)
	for i := 1; i <= 10; i++ {
		r.record(float64(i))
	}
	p50, p90, p99 := r.percentiles()
	for _, tc := range []struct {
		name      string
		got, want float64
	}{
		{"p50", p50, 5.5},
		{"p90", p90, 9.1},
		{"p99", p99, 9.91},
	} {
		if math.Abs(tc.got-tc.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", tc.name, tc.got, tc.want)
		}
	}
}

// TestLatencyPercentilesEdgeCases: empty ring reports zeros, a single
// sample is every percentile, and wraparound drops the oldest samples.
func TestLatencyPercentilesEdgeCases(t *testing.T) {
	r := newLatencyRing(4)
	if p50, p90, p99 := r.percentiles(); p50 != 0 || p90 != 0 || p99 != 0 {
		t.Fatalf("empty ring: %v %v %v, want zeros", p50, p90, p99)
	}
	r.record(3)
	if p50, p90, p99 := r.percentiles(); p50 != 3 || p90 != 3 || p99 != 3 {
		t.Fatalf("single sample: %v %v %v, want all 3", p50, p90, p99)
	}
	// Overfill: the ring keeps only the last 4 samples (100, 200, 300, 400).
	for _, v := range []float64{1, 2, 100, 200, 300, 400} {
		r.record(v)
	}
	p50, _, p99 := r.percentiles()
	if want := 250.0; math.Abs(p50-want) > 1e-9 {
		t.Errorf("wrapped p50 = %v, want %v", p50, want)
	}
	if want := 397.0; math.Abs(p99-want) > 1e-9 {
		t.Errorf("wrapped p99 = %v, want %v", p99, want)
	}
}
