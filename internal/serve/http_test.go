package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
)

func httpServer(t *testing.T, workers int, cfg Config) *httptest.Server {
	t.Helper()
	s := newTestServer(t, workers, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

const embedBody = `{"table":"t1","columns":[` +
	`{"name":"price","values":[9.99,20,35.5,12,48,3.2]},` +
	`{"name":"quantity","values":[5,30,25,14,2,9]}]}`

// TestHTTPEmbedByteIdentical is the HTTP form of the determinism pin: the
// same POST body yields byte-identical responses cold, cached, coalesced
// and across servers with different worker counts.
func TestHTTPEmbedByteIdentical(t *testing.T) {
	ts1 := httpServer(t, 1, Config{MaxBatch: 1})
	code, cold := post(t, ts1.URL+"/embed", embedBody)
	if code != http.StatusOK {
		t.Fatalf("cold POST: status %d: %s", code, cold)
	}
	_, cached := post(t, ts1.URL+"/embed", embedBody)
	if !bytes.Equal(cold, cached) {
		t.Errorf("cached response differs from cold:\n%s\n%s", cold, cached)
	}

	ts2 := httpServer(t, 8, Config{MaxBatch: 32, BatchWindow: 2 * time.Millisecond})
	// Concurrent identical posts coalesce in one batch on the second
	// server; every byte must still match the first server's cold answer.
	var wg sync.WaitGroup
	results := make([][]byte, 8)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts2.URL+"/embed", "application/json", strings.NewReader(embedBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			results[i], _ = io.ReadAll(resp.Body)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !bytes.Equal(cold, r) {
			t.Errorf("coalesced response %d differs from cold reference:\n%s\n%s", i, cold, r)
		}
	}

	var parsed embedResponse
	if err := json.Unmarshal(cold, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Embeddings) != 2 || parsed.Dim == 0 {
		t.Errorf("unexpected response shape: %+v", parsed)
	}
	if len(parsed.Embeddings[0].Embedding) != parsed.Dim {
		t.Errorf("row width %d != dim %d", len(parsed.Embeddings[0].Embedding), parsed.Dim)
	}
}

func TestHTTPStatsAndHealthz(t *testing.T) {
	ts := httpServer(t, 2, Config{})
	post(t, ts.URL+"/embed", embedBody)
	post(t, ts.URL+"/embed", embedBody)

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Errorf("hits/misses = %d/%d, want 2/2", st.Hits, st.Misses)
	}
	if st.Requests != 2 {
		t.Errorf("requests = %d, want 2", st.Requests)
	}
	if st.LatencyP50Ms <= 0 {
		t.Errorf("p50 latency = %v, want > 0", st.LatencyP50Ms)
	}

	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Fingerprint == "" || h.Dim == 0 || h.Components == 0 {
		t.Errorf("healthz = %+v", h)
	}
}

func TestHTTPSearch(t *testing.T) {
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Cosine)})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)

	post(t, ts.URL+"/embed", embedBody)
	code, body := post(t, ts.URL+"/search",
		`{"column":{"name":"cost","values":[10,21,34,11,50,3]},"k":1}`)
	if code != http.StatusOK {
		t.Fatalf("search: status %d: %s", code, body)
	}
	var sr searchResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || sr.Results[0].Name == "" {
		t.Errorf("search results = %+v", sr.Results)
	}
}

func TestHTTPErrors(t *testing.T) {
	ts := httpServer(t, 1, Config{})
	if code, _ := post(t, ts.URL+"/embed", "{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d", code)
	}
	if code, body := post(t, ts.URL+"/embed", `{"columns":[{"name":"x","values":[]}]}`); code != http.StatusBadRequest {
		t.Errorf("empty column: status %d: %s", code, body)
	}
	if code, _ := post(t, ts.URL+"/search", `{"column":{"name":"x","values":[1,2]},"k":3}`); code != http.StatusNotImplemented {
		t.Errorf("search without index: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/embed")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /embed: status %d", resp.StatusCode)
	}
}
