package serve

// Tests of the sharded serving path: a server over an N-shard catalog
// answers the HTTP surface byte-identically to the unsharded server fed
// the same mutations, survives restart from its per-shard stores, and the
// request-hardening knobs (body cap, k validation) hold at the HTTP
// layer.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/shard"
)

// newShardedServer assembles a server over n flat shards with per-shard
// stores under dir, mirroring what gemserve -shards n builds.
func newShardedServer(t *testing.T, dir string, n, workers int, cfg Config) (*Server, func()) {
	t.Helper()
	emb := fittedEmbedder(t, workers)
	fp, err := emb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	idxs := make([]ann.Index, n)
	stores := make([]*catalog.Store, n)
	for i := range idxs {
		idxs[i] = ann.NewFlat(ann.Euclidean)
		st, err := catalog.Open(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), StoreIdentityShard(fp, idxs[i], i, n))
		if err != nil {
			t.Fatal(err)
		}
		stores[i] = st
	}
	cat, err := shard.New(shard.Config{Indexes: idxs, Stores: stores, Pool: pool.New(workers)})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Catalog = cat
	s, err := New(emb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	closeAll := func() {
		s.Close()
		for _, st := range stores {
			st.Close()
		}
	}
	return s, closeAll
}

// TestShardedServerMatchesUnsharded: the serving-layer version of the
// determinism pin — /search, /columns and /stats shapes from a sharded
// server match the unsharded server byte for byte (exact flat indexes, so
// sharding must not change a single result).
func TestShardedServerMatchesUnsharded(t *testing.T) {
	ds := testCatalog()
	mutate := func(t *testing.T, s *Server) {
		t.Helper()
		if _, err := s.AddColumns(context.Background(), ds.Columns[:10]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveColumns(ds.Columns[2].Name, "@5", "@8"); err != nil {
			t.Fatal(err)
		}
	}
	capture := func(t *testing.T, s *Server) map[string][]byte {
		t.Helper()
		h := s.Handler()
		out := make(map[string][]byte)
		for name, req := range map[string][3]string{
			"search":  {"POST", "/search", `{"column":` + colJSON(ds.Columns[3]) + `,"k":6}`},
			"search2": {"POST", "/search", `{"column":` + colJSON(ds.Columns[12]) + `,"k":3}`},
			"columns": {"GET", "/columns", ""},
		} {
			code, b := doReq(t, h, req[0], req[1], req[2])
			if code != http.StatusOK {
				t.Fatalf("%s: status %d: %s", name, code, b)
			}
			out[name] = b
		}
		return out
	}

	// Reference: the legacy unsharded configuration.
	emb := fittedEmbedder(t, 2)
	fp, err := emb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	refIdx := ann.NewFlat(ann.Euclidean)
	refStore, err := catalog.Open(t.TempDir(), StoreIdentity(fp, refIdx))
	if err != nil {
		t.Fatal(err)
	}
	defer refStore.Close()
	ref, err := New(emb, Config{Index: refIdx, Store: refStore})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	mutate(t, ref)
	want := capture(t, ref)

	for _, n := range []int{1, 2, 4} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("shards=%d/workers=%d", n, workers), func(t *testing.T) {
				dir := t.TempDir()
				s, closeAll := newShardedServer(t, dir, n, workers, Config{})
				mutate(t, s)
				got := capture(t, s)
				for name, w := range want {
					if !bytes.Equal(w, got[name]) {
						t.Errorf("%s diverges from unsharded:\nunsharded: %s\nsharded:   %s", name, w, got[name])
					}
				}
				if st := s.Stats(); st.Shards != n || st.StoreColumns != 7 {
					t.Fatalf("stats shards/store: %+v", st)
				}
				closeAll()

				// Restart from the per-shard stores: still byte-identical.
				s2, closeAll2 := newShardedServer(t, dir, n, workers, Config{})
				defer closeAll2()
				got2 := capture(t, s2)
				for name, w := range want {
					if !bytes.Equal(w, got2[name]) {
						t.Errorf("%s diverges after sharded restart:\nwant: %s\ngot:  %s", name, w, got2[name])
					}
				}
			})
		}
	}
}

// TestShardedStoreIdentityBinding: shard stores cannot be opened at the
// wrong coordinate — the identity string embeds (i, n).
func TestShardedStoreIdentityBinding(t *testing.T) {
	idx := ann.NewFlat(ann.Euclidean)
	if StoreIdentityShard("fp", idx, 0, 1) != StoreIdentity("fp", idx) {
		t.Fatal("single-shard identity must stay the legacy identity")
	}
	a := StoreIdentityShard("fp", idx, 0, 2)
	b := StoreIdentityShard("fp", idx, 1, 2)
	c := StoreIdentityShard("fp", idx, 0, 4)
	if a == b || a == c || a == StoreIdentity("fp", idx) {
		t.Fatalf("shard coordinates not bound: %q %q %q", a, b, c)
	}

	// A server whose catalog stores carry the wrong binding must refuse
	// to start.
	emb := fittedEmbedder(t, 2)
	idxs := []ann.Index{ann.NewFlat(ann.Euclidean), ann.NewFlat(ann.Euclidean)}
	stores := make([]*catalog.Store, 2)
	for i := range stores {
		st, err := catalog.Open(filepath.Join(t.TempDir(), "s"), "wrong-binding")
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		stores[i] = st
	}
	cat, err := shard.New(shard.Config{Indexes: idxs, Stores: stores})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(emb, Config{Catalog: cat}); !errors.Is(err, ErrInput) {
		t.Fatalf("mis-bound shard stores accepted: %v", err)
	}
}

// TestConfigCatalogExclusive: Catalog cannot be combined with the legacy
// index/store fields.
func TestConfigCatalogExclusive(t *testing.T) {
	emb := fittedEmbedder(t, 2)
	cat, err := shard.New(shard.Config{Indexes: []ann.Index{ann.NewFlat(ann.Euclidean)}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(emb, Config{Catalog: cat, Index: ann.NewFlat(ann.Euclidean)}); !errors.Is(err, ErrInput) {
		t.Fatalf("Catalog+Index accepted: %v", err)
	}
}

// TestHTTPBodyCap: oversized POST bodies fail with 413 on every decoding
// endpoint, and within-cap requests are unaffected.
func TestHTTPBodyCap(t *testing.T) {
	idx := ann.NewFlat(ann.Euclidean)
	s := newTestServer(t, 2, Config{Index: idx, MaxBodyBytes: 512})
	h := s.Handler()

	big := `{"columns":[{"name":"huge","values":[` + strings.Repeat("1,", 400) + `1]}]}`
	for _, path := range []string{"/embed", "/columns"} {
		code, body := doReq(t, h, "POST", path, big)
		if code != http.StatusRequestEntityTooLarge {
			t.Fatalf("POST %s with %d-byte body: status %d: %s", path, len(big), code, body)
		}
		if !strings.Contains(string(body), "request body exceeds 512 bytes") {
			t.Fatalf("POST %s 413 body: %s", path, body)
		}
	}
	bigSearch := `{"column":{"name":"huge","values":[` + strings.Repeat("1,", 400) + `1]},"k":3}`
	if code, body := doReq(t, h, "POST", "/search", bigSearch); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("POST /search oversized: status %d: %s", code, body)
	}

	ds := testCatalog()
	small := colsJSON(ds.Columns[:1])
	if len(small) >= 512 {
		t.Fatalf("test fixture too large for the cap: %d bytes", len(small))
	}
	if code, body := doReq(t, h, "POST", "/embed", small); code != http.StatusOK {
		t.Fatalf("within-cap embed: status %d: %s", code, body)
	}
}

// TestHTTPSearchKValidation: negative k is rejected with 400 at the HTTP
// layer (and ErrInput at the method layer); k = 0 means the default 10.
func TestHTTPSearchKValidation(t *testing.T) {
	ds := testCatalog()
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:12]); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	for _, k := range []int{-1, -100} {
		if _, err := s.Search(context.Background(), ds.Columns[0], k); !errors.Is(err, ErrInput) {
			t.Fatalf("Search(k=%d) = %v, want ErrInput", k, err)
		}
		code, body := doReq(t, h, "POST", "/search", fmt.Sprintf(`{"column":%s,"k":%d}`, colJSON(ds.Columns[0]), k))
		if code != http.StatusBadRequest {
			t.Fatalf("/search k=%d: status %d: %s", k, code, body)
		}
	}
	code, body := doReq(t, h, "POST", "/search", `{"column":`+colJSON(ds.Columns[0])+`}`)
	if code != http.StatusOK {
		t.Fatalf("/search default k: status %d: %s", code, body)
	}
	var resp struct {
		Results []Hit `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 10 {
		t.Fatalf("default k returned %d hits, want 10", len(resp.Results))
	}
}
