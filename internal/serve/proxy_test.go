package serve

// Proxy tests run two real shard servers behind httptest listeners and
// drive the front door over actual HTTP: the merged /search must equal a
// single server holding the union of both shards' columns, byte-layout
// determinism must hold across repeats, and the failure paths (dead
// backend, mixed-model fleet, bad k) must answer with the right status.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/table"
)

// newProxyFleet starts nBackends store-less shard servers over one shared
// fitted model, splits cols round-robin across them, and returns the
// proxy plus the per-backend servers (for direct inspection).
func newProxyFleet(t *testing.T, nBackends int, cols []table.Column) (*Proxy, []*Server) {
	t.Helper()
	servers := make([]*Server, nBackends)
	backends := make([]string, nBackends)
	for i := range servers {
		servers[i] = newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
		ts := httptest.NewServer(servers[i].Handler())
		t.Cleanup(ts.Close)
		backends[i] = ts.URL
	}
	for i, c := range cols {
		if _, err := servers[i%nBackends].AddColumns(context.Background(), []table.Column{c}); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewProxy(ProxyConfig{Backends: backends})
	if err != nil {
		t.Fatal(err)
	}
	return p, servers
}

func TestProxySearchMergesShards(t *testing.T) {
	ds := testCatalog()
	cols := ds.Columns[:12]
	p, _ := newProxyFleet(t, 2, cols)
	h := p.Handler()

	// Reference: one server holding every column. Distances must agree
	// hit for hit; ids differ (backend-local), so compare (name, dist).
	ref := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	if _, err := ref.AddColumns(context.Background(), cols); err != nil {
		t.Fatal(err)
	}

	for _, k := range []int{1, 3, 8, 20} {
		q := ds.Columns[15] // not indexed anywhere: no self-hit filtering asymmetry
		wantHits, err := ref.Search(context.Background(), q, k)
		if err != nil {
			t.Fatal(err)
		}
		code, body := doReq(t, h, "POST", "/search", fmt.Sprintf(`{"column":%s,"k":%d}`, colJSON(q), k))
		if code != http.StatusOK {
			t.Fatalf("k=%d: status %d: %s", k, code, body)
		}
		var resp proxySearchResponse
		if err := json.Unmarshal(body, &resp); err != nil {
			t.Fatal(err)
		}
		if len(resp.Results) != len(wantHits) {
			t.Fatalf("k=%d: %d merged hits, reference has %d", k, len(resp.Results), len(wantHits))
		}
		for i, got := range resp.Results {
			if got.Name != wantHits[i].Name || got.Dist != wantHits[i].Dist {
				t.Fatalf("k=%d hit %d: got (%s, %g), want (%s, %g)",
					k, i, got.Name, got.Dist, wantHits[i].Name, wantHits[i].Dist)
			}
			if got.Shard < 0 || got.Shard >= 2 {
				t.Fatalf("k=%d hit %d: shard %d out of range", k, i, got.Shard)
			}
		}

		// Determinism: repeated identical queries return identical bytes.
		_, body2 := doReq(t, h, "POST", "/search", fmt.Sprintf(`{"column":%s,"k":%d}`, colJSON(q), k))
		if !bytes.Equal(body, body2) {
			t.Fatalf("k=%d: repeated query diverged:\n%s\n%s", k, body, body2)
		}
	}
}

func TestProxySearchRejectsBadK(t *testing.T) {
	ds := testCatalog()
	p, _ := newProxyFleet(t, 2, ds.Columns[:4])
	h := p.Handler()
	for _, k := range []int{-1, -50} {
		code, body := doReq(t, h, "POST", "/search", fmt.Sprintf(`{"column":%s,"k":%d}`, colJSON(ds.Columns[0]), k))
		if code != http.StatusBadRequest {
			t.Fatalf("k=%d: status %d: %s", k, code, body)
		}
	}
	// k omitted → default 10.
	code, body := doReq(t, h, "POST", "/search", `{"column":`+colJSON(ds.Columns[9])+`}`)
	if code != http.StatusOK {
		t.Fatalf("default k: status %d: %s", code, body)
	}
}

func TestProxyBodyCap(t *testing.T) {
	ds := testCatalog()
	servers := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	ts := httptest.NewServer(servers.Handler())
	defer ts.Close()
	p, err := NewProxy(ProxyConfig{Backends: []string{ts.URL}, MaxBodyBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	big := `{"column":{"name":"huge","values":[` + strings.Repeat("1,", 400) + `1]},"k":3}`
	code, body := doReq(t, p.Handler(), "POST", "/search", big)
	if code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized proxy body: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "request body exceeds 512 bytes") {
		t.Fatalf("413 body: %s", body)
	}
	small := fmt.Sprintf(`{"column":%s,"k":2}`, colJSON(ds.Columns[0]))
	if len(small) >= 512 {
		t.Fatalf("fixture too large for cap: %d bytes", len(small))
	}
	if code, body := doReq(t, p.Handler(), "POST", "/search", small); code != http.StatusOK {
		t.Fatalf("within-cap search: status %d: %s", code, body)
	}
}

func TestProxyDeadBackend(t *testing.T) {
	ds := testCatalog()
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:4]); err != nil {
		t.Fatal(err)
	}
	live := httptest.NewServer(s.Handler())
	defer live.Close()
	dead := httptest.NewServer(http.NotFoundHandler())
	dead.Close() // connection refused from here on

	p, err := NewProxy(ProxyConfig{Backends: []string{live.URL, dead.URL}})
	if err != nil {
		t.Fatal(err)
	}
	for _, req := range [][3]string{
		{"POST", "/search", fmt.Sprintf(`{"column":%s,"k":2}`, colJSON(ds.Columns[0]))},
		{"GET", "/healthz", ""},
		{"GET", "/stats", ""},
	} {
		code, body := doReq(t, p.Handler(), req[0], req[1], req[2])
		if code != http.StatusBadGateway {
			t.Fatalf("%s %s with dead backend: status %d: %s", req[0], req[1], code, body)
		}
		if !strings.Contains(string(body), "shard 1") {
			t.Fatalf("%s %s error does not name the dead shard: %s", req[0], req[1], body)
		}
	}
}

func TestProxyHealthzAggregates(t *testing.T) {
	ds := testCatalog()
	p, servers := newProxyFleet(t, 2, ds.Columns[:9])
	code, body := doReq(t, p.Handler(), "GET", "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("healthz: status %d: %s", code, body)
	}
	var resp proxyHealthResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	wantSize := servers[0].IndexLen() + servers[1].IndexLen()
	if resp.Status != "ok" || resp.Shards != 2 || resp.IndexSize != wantSize || resp.Fingerprint == "" {
		t.Fatalf("healthz aggregate: %+v (want index_size %d)", resp, wantSize)
	}
}

func TestProxyHealthzRejectsMixedFleet(t *testing.T) {
	// Two backends, one of which lies about its fingerprint: the proxy
	// must refuse to report healthy, because cross-shard distances from
	// different models are not comparable.
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	real := httptest.NewServer(s.Handler())
	defer real.Close()
	imposter := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, healthResponse{Status: "ok", Fingerprint: "some-other-model"})
	}))
	defer imposter.Close()

	p, err := NewProxy(ProxyConfig{Backends: []string{real.URL, imposter.URL}})
	if err != nil {
		t.Fatal(err)
	}
	code, body := doReq(t, p.Handler(), "GET", "/healthz", "")
	if code != http.StatusBadGateway {
		t.Fatalf("mixed fleet healthz: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "different model") {
		t.Fatalf("mixed fleet error: %s", body)
	}
}

func TestProxyStatsAggregates(t *testing.T) {
	ds := testCatalog()
	p, servers := newProxyFleet(t, 2, ds.Columns[:6])
	// Generate some backend traffic so requests > 0.
	if _, err := servers[0].Embed(context.Background(), ds.Columns[:2]); err != nil {
		t.Fatal(err)
	}
	code, body := doReq(t, p.Handler(), "GET", "/stats", "")
	if code != http.StatusOK {
		t.Fatalf("stats: status %d: %s", code, body)
	}
	var resp proxyStatsResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Shards != 2 || len(resp.Backends) != 2 {
		t.Fatalf("stats shape: %+v", resp)
	}
	if want := servers[0].IndexLen() + servers[1].IndexLen(); resp.IndexSize != want {
		t.Fatalf("stats index_size %d, want %d", resp.IndexSize, want)
	}
}

func TestNewProxyValidation(t *testing.T) {
	if _, err := NewProxy(ProxyConfig{}); err == nil {
		t.Fatal("empty backend list accepted")
	}
	if _, err := NewProxy(ProxyConfig{Backends: []string{"10.0.0.1:8080"}}); err == nil {
		t.Fatal("schemeless backend accepted")
	}
	p, err := NewProxy(ProxyConfig{Backends: []string{"http://a/", "https://b"}})
	if err != nil {
		t.Fatal(err)
	}
	if p.backends[0] != "http://a" || p.backends[1] != "https://b" {
		t.Fatalf("backend normalization: %v", p.backends)
	}
}
