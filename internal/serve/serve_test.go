package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

// testCatalog is the fixed corpus every serve test fits on and replays.
func testCatalog() *table.Dataset {
	return data.ScalabilityDataset(30, 5)
}

// fittedEmbedder fits, persists and reloads an embedder — the serve
// deployment mode: every server in these tests runs on the same persisted
// model bytes.
func fittedEmbedder(t testing.TB, workers int) *core.Embedder {
	t.Helper()
	e, err := core.NewEmbedder(core.Config{
		Components:     8,
		Restarts:       1,
		Seed:           11,
		SubsampleStack: 2000,
		Workers:        workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(testCatalog()); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := core.LoadEmbedder(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back.SetWorkers(workers)
	return back
}

func newTestServer(t testing.TB, workers int, cfg Config) *Server {
	t.Helper()
	s, err := New(fittedEmbedder(t, workers), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func rowsEqual(a, b [][]float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("row counts %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("row %d dims %d vs %d", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return fmt.Errorf("row %d component %d: %v vs %v", i, j, a[i][j], b[i][j])
			}
		}
	}
	return nil
}

// TestServeDeterministicAcrossPaths is the acceptance pin: for one fixed
// persisted embedder, responses are bit-identical across the cold path, the
// cached path, a batch of one, a coalesced concurrent batch, and server
// worker counts — all equal to the core single-column reference.
func TestServeDeterministicAcrossPaths(t *testing.T) {
	ds := testCatalog()
	cols := ds.Columns[:12]
	ref := fittedEmbedder(t, 2)
	want := make([][]float64, len(cols))
	for i, col := range cols {
		row, err := ref.EmbedColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = row
	}

	for _, tc := range []struct {
		name    string
		workers int
		cfg     Config
	}{
		{"serial batch-of-1", 1, Config{MaxBatch: 1}},
		{"parallel small batches", 4, Config{MaxBatch: 3, BatchWindow: time.Millisecond}},
		{"parallel wide batches no cache", 8, Config{MaxBatch: 64, BatchWindow: 2 * time.Millisecond, CacheSize: -1}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := newTestServer(t, tc.workers, tc.cfg)

			// Cold: one request per column, sequential.
			cold := make([][]float64, len(cols))
			for i, col := range cols {
				rows, err := s.Embed(context.Background(), []table.Column{col})
				if err != nil {
					t.Fatal(err)
				}
				cold[i] = rows[0]
			}
			if err := rowsEqual(cold, want); err != nil {
				t.Fatalf("cold path differs from reference: %v", err)
			}

			// Cached (or re-embedded when the cache is off): same answer.
			again, err := s.Embed(context.Background(), cols)
			if err != nil {
				t.Fatal(err)
			}
			if err := rowsEqual(again, want); err != nil {
				t.Fatalf("repeat path differs from reference: %v", err)
			}

			// Coalesced: every column arrives concurrently on its own
			// request; the batcher merges them arbitrarily.
			conc := make([][]float64, len(cols))
			var wg sync.WaitGroup
			errs := make([]error, len(cols))
			for i, col := range cols {
				wg.Add(1)
				go func(i int, col table.Column) {
					defer wg.Done()
					rows, err := s.Embed(context.Background(), []table.Column{col})
					if err != nil {
						errs[i] = err
						return
					}
					conc[i] = rows[0]
				}(i, col)
			}
			wg.Wait()
			for i, err := range errs {
				if err != nil {
					t.Fatalf("concurrent embed %d: %v", i, err)
				}
			}
			if err := rowsEqual(conc, want); err != nil {
				t.Fatalf("coalesced path differs from reference: %v", err)
			}
		})
	}
}

func TestServeCacheHitsAndEviction(t *testing.T) {
	s := newTestServer(t, 2, Config{CacheSize: 2})
	ds := testCatalog()
	ctx := context.Background()

	if _, err := s.Embed(ctx, ds.Columns[:1]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Embed(ctx, ds.Columns[:1]); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if st.HitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", st.HitRate)
	}

	// Two more distinct columns evict the first (CacheSize 2, LRU).
	if _, err := s.Embed(ctx, ds.Columns[1:3]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.CacheEntries != 2 {
		t.Fatalf("cache entries = %d, want 2", st.CacheEntries)
	}
	if _, err := s.Embed(ctx, ds.Columns[:1]); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Misses != 4 {
		t.Fatalf("evicted column should re-miss: misses = %d, want 4", st.Misses)
	}
}

func TestServeCoalescing(t *testing.T) {
	// A generous window plus concurrent one-column requests must produce at
	// least one multi-column batch.
	s := newTestServer(t, 4, Config{MaxBatch: 16, BatchWindow: 20 * time.Millisecond})
	ds := testCatalog()
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Embed(context.Background(), ds.Columns[i:i+1]); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.MaxBatch < 2 {
		t.Errorf("no coalescing observed: max batch %d over %d batches", st.MaxBatch, st.Batches)
	}
	if st.Batches >= 12 {
		t.Errorf("12 concurrent misses took %d batches, expected coalescing", st.Batches)
	}
}

// TestServeConcurrentHammer drives many clients with duplicate-heavy
// traffic; run under -race this is the race-cleanliness acceptance. Every
// response must equal the reference regardless of interleaving.
func TestServeConcurrentHammer(t *testing.T) {
	s := newTestServer(t, 4, Config{MaxBatch: 8, BatchWindow: 500 * time.Microsecond, CacheSize: 16})
	ds := testCatalog()
	pool := ds.Columns[:10]
	ref := fittedEmbedder(t, 2)
	want := make([][]float64, len(pool))
	for i, col := range pool {
		row, err := ref.EmbedColumn(col)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = row
	}

	const clients, perClient = 16, 25
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < perClient; r++ {
				i := (c*perClient + r*7) % len(pool)
				rows, err := s.Embed(context.Background(), []table.Column{pool[i]})
				if err != nil {
					t.Errorf("client %d: %v", c, err)
					return
				}
				if err := rowsEqual(rows, want[i:i+1]); err != nil {
					t.Errorf("client %d column %d: %v", c, i, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()

	st := s.Stats()
	if got := st.Hits + st.Misses; got != clients*perClient {
		t.Errorf("hits+misses = %d, want %d", got, clients*perClient)
	}
	if st.Requests != clients*perClient {
		t.Errorf("requests = %d, want %d", st.Requests, clients*perClient)
	}
	if st.Hits == 0 {
		t.Error("duplicate-heavy traffic produced no cache hits")
	}
	if st.Errors != 0 {
		t.Errorf("errors = %d", st.Errors)
	}
}

func TestServeRequestValidation(t *testing.T) {
	s := newTestServer(t, 1, Config{})
	ctx := context.Background()
	if _, err := s.Embed(ctx, nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty request: want ErrInput, got %v", err)
	}
	if _, err := s.Embed(ctx, []table.Column{{Name: "empty"}}); !errors.Is(err, ErrInput) {
		t.Errorf("empty column: want ErrInput, got %v", err)
	}
	bad := []table.Column{
		{Name: "ok", Values: []float64{1, 2}},
		{Name: "nan", Values: []float64{1, math.NaN()}},
	}
	if _, err := s.Embed(ctx, bad); !errors.Is(err, ErrInput) {
		t.Errorf("NaN column: want ErrInput, got %v", err)
	}
	if _, err := s.Embed(ctx, []table.Column{{Name: "inf", Values: []float64{math.Inf(1)}}}); !errors.Is(err, ErrInput) {
		t.Errorf("Inf column: want ErrInput, got %v", err)
	}
	// The bad batch must not have poisoned anything: the good column still
	// embeds.
	if _, err := s.Embed(ctx, bad[:1]); err != nil {
		t.Errorf("good column after bad batch: %v", err)
	}
}

func TestServeClose(t *testing.T) {
	s := newTestServer(t, 1, Config{})
	ds := testCatalog()
	if _, err := s.Embed(context.Background(), ds.Columns[:1]); err != nil {
		t.Fatal(err)
	}
	s.Close()
	_, err := s.Embed(context.Background(), ds.Columns[1:2])
	if !errors.Is(err, ErrClosed) {
		t.Errorf("after close: want ErrClosed, got %v", err)
	}
	// A fully cached request must honour the contract too, not quietly
	// keep succeeding.
	_, err = s.Embed(context.Background(), ds.Columns[:1])
	if !errors.Is(err, ErrClosed) {
		t.Errorf("cached request after close: want ErrClosed, got %v", err)
	}
}

func TestServeWarmIndex(t *testing.T) {
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Cosine)})
	ds := testCatalog()
	ctx := context.Background()

	if _, err := s.Embed(ctx, ds.Columns[:8]); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexLen(); got != 8 {
		t.Fatalf("index size = %d, want 8", got)
	}
	// Re-embedding the same columns must not duplicate index entries.
	if _, err := s.Embed(ctx, ds.Columns[:8]); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexLen(); got != 8 {
		t.Fatalf("index size after re-embed = %d, want 8", got)
	}

	// Searching an already-served column excludes its own content and
	// returns named neighbours.
	hits, err := s.Search(ctx, ds.Columns[0], 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) != 3 {
		t.Fatalf("got %d hits, want 3", len(hits))
	}
	for _, h := range hits {
		if h.Name == ds.Columns[0].Name {
			t.Errorf("query content leaked into its own results: %+v", h)
		}
		if h.Name == "" {
			t.Errorf("hit without a name: %+v", h)
		}
	}

	// Searching a NEW column feeds it into the warm index first.
	before := s.IndexLen()
	if _, err := s.Search(ctx, ds.Columns[20], 3); err != nil {
		t.Fatal(err)
	}
	if got := s.IndexLen(); got != before+1 {
		t.Errorf("search did not warm the index: %d -> %d", before, got)
	}
}

func TestServeSearchWithoutIndex(t *testing.T) {
	s := newTestServer(t, 1, Config{})
	_, err := s.Search(context.Background(), testCatalog().Columns[0], 3)
	if !errors.Is(err, ErrNoIndex) {
		t.Errorf("want ErrNoIndex, got %v", err)
	}
}

func TestServePreloadedIndexNames(t *testing.T) {
	// Preload a flat index with two vectors; one gets a name, the other
	// falls back to "@1".
	e := fittedEmbedder(t, 2)
	idx := ann.NewFlat(ann.Cosine)
	ds := testCatalog()
	vs, err := e.EmbedVectors(ds.Subset(2), ann.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	if err := idx.Add(vs.Vectors...); err != nil {
		t.Fatal(err)
	}
	s, err := New(e, Config{Index: idx, IndexNames: vs.Names[:1]})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hits, err := s.Search(context.Background(), ds.Columns[5], 2)
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, h := range hits {
		names[h.Name] = true
	}
	if !names[vs.Names[0]] || !names["@1"] {
		t.Errorf("preloaded names wrong: %v", hits)
	}
}

func TestCacheKeyNameOnlyWhenContextual(t *testing.T) {
	// Value-only embedder: the name does not enter the embedding, so a
	// renamed copy of a served column must hit the cache.
	s := newTestServer(t, 2, Config{})
	vals := []float64{2, 4, 8, 16, 32, 64}
	ctx := context.Background()
	a, err := s.Embed(ctx, []table.Column{{Name: "price", Values: vals}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Embed(ctx, []table.Column{{Name: "cost", Values: vals}})
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Hits != 1 || st.Misses != 1 {
		t.Errorf("renamed copy on value-only config: hits/misses = %d/%d, want 1/1", st.Hits, st.Misses)
	}
	if err := rowsEqual(a, b); err != nil {
		t.Fatalf("renamed copy answered differently: %v", err)
	}

	// Contextual embedder: the name DOES enter the embedding, so the
	// renamed copy must miss and embed separately.
	e, err := core.NewEmbedder(core.Config{
		Components:     8,
		Restarts:       1,
		Seed:           11,
		SubsampleStack: 2000,
		Workers:        2,
		Features:       core.Distributional | core.Statistical | core.Contextual,
		HeaderDim:      16,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(testCatalog()); err != nil {
		t.Fatal(err)
	}
	cs, err := New(e, Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(cs.Close)
	// "price" vs "temperature": semantically unrelated headers (textembed
	// deliberately gives synonyms like price/cost identical embeddings).
	ca, err := cs.Embed(ctx, []table.Column{{Name: "price", Values: vals}})
	if err != nil {
		t.Fatal(err)
	}
	cb, err := cs.Embed(ctx, []table.Column{{Name: "temperature", Values: vals}})
	if err != nil {
		t.Fatal(err)
	}
	if st := cs.Stats(); st.Hits != 0 || st.Misses != 2 {
		t.Errorf("renamed copy on contextual config: hits/misses = %d/%d, want 0/2", st.Hits, st.Misses)
	}
	if err := rowsEqual(ca, cb); err == nil {
		t.Error("contextual embeddings of unrelated column names should differ")
	}
}

func TestEmbedSnapshotsValues(t *testing.T) {
	// The caller may reuse its buffer the moment Embed returns: the cached
	// row must reflect the bytes at submission, not whatever the buffer
	// holds later.
	s := newTestServer(t, 2, Config{})
	vals := []float64{1, 2, 3, 4, 5, 6}
	col := table.Column{Name: "reused", Values: vals}
	want, err := s.Embed(context.Background(), []table.Column{col})
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		vals[i] = -99
	}
	again, err := s.Embed(context.Background(), []table.Column{{Name: "reused", Values: []float64{1, 2, 3, 4, 5, 6}}})
	if err != nil {
		t.Fatal(err)
	}
	if err := rowsEqual(again, want); err != nil {
		t.Errorf("cached row tied to the caller's mutated buffer: %v", err)
	}
}

func TestNewRejectsMismatchedIndex(t *testing.T) {
	e := fittedEmbedder(t, 2)
	idx := ann.NewFlat(ann.Cosine)
	if err := idx.Add([]float64{1, 2, 3}); err != nil { // wrong dim
		t.Fatal(err)
	}
	_, err := New(e, Config{Index: idx})
	if !errors.Is(err, ErrInput) {
		t.Errorf("mismatched index dim: want ErrInput at startup, got %v", err)
	}
	// An EMPTY index has no dimensionality yet and must be accepted.
	s, err := New(e, Config{Index: ann.NewFlat(ann.Cosine)})
	if err != nil {
		t.Fatalf("empty index rejected: %v", err)
	}
	s.Close()
}

func TestNewRejectsUnservable(t *testing.T) {
	unfitted, err := core.NewEmbedder(core.Config{Components: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(unfitted, Config{}); err == nil {
		t.Error("unfitted embedder must be rejected at startup")
	}

	aeCfg := core.Config{
		Components:     4,
		Restarts:       1,
		Seed:           1,
		SubsampleStack: 1000,
		Features:       core.Distributional | core.Statistical | core.Contextual,
		Composition:    core.AE,
		HeaderDim:      16,
	}
	ae, err := core.NewEmbedder(aeCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ae.Fit(testCatalog()); err != nil {
		t.Fatal(err)
	}
	if _, err := New(ae, Config{}); err == nil {
		t.Error("AE composition must be rejected at startup, not on the first request")
	}
}
