package serve

// The scatter-gather HTTP front door: a Proxy fans one /search out to N
// remote gemserve backends (one shard of the catalog each, typically on
// separate machines) and merges the per-backend top-k into one ranked
// answer. All backends must serve the same fitted model — that is what
// makes their distances comparable — and /healthz verifies it by
// comparing fingerprints.
//
// The merge is deterministic: hits order by (distance, backend, id), so
// repeated identical queries against unchanged backends return identical
// bytes no matter which backend answered first. Backend ids are local to
// their shard process; results therefore carry a "shard" field alongside
// the id, and the (shard, id) pair is the global handle.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/gem-embeddings/gem/internal/obs"
)

// ProxyConfig assembles a Proxy.
type ProxyConfig struct {
	// Backends are the base URLs of the shard servers, e.g.
	// "http://10.0.0.1:8080". At least one is required.
	Backends []string
	// Client issues the fan-out requests. Default http.DefaultClient.
	Client *http.Client
	// MaxBodyBytes caps one incoming request body, as in Config. Default
	// 8 MiB; negative disables the cap.
	MaxBodyBytes int64
	// Metrics, when set, receives the proxy's own request series plus
	// per-backend fan-out latency/error/health series, exposed at
	// GET /metrics (which additionally scrapes each backend's /stats and
	// re-exports its health and latency percentiles as gauges).
	Metrics *obs.Registry
}

// Proxy merges remote shard servers behind one /search endpoint. Safe
// for concurrent use.
type Proxy struct {
	backends []string
	client   *http.Client
	maxBody  int64
	reg      *obs.Registry
	start    time.Time
}

// NewProxy validates the backend list.
func NewProxy(cfg ProxyConfig) (*Proxy, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("%w: a proxy needs at least one backend", ErrInput)
	}
	//lint:gemallow detnondet start stamp feeds only the uptime gauge and health body
	p := &Proxy{client: cfg.Client, maxBody: cfg.MaxBodyBytes, reg: cfg.Metrics, start: time.Now()}
	for _, b := range cfg.Backends {
		if !strings.HasPrefix(b, "http://") && !strings.HasPrefix(b, "https://") {
			return nil, fmt.Errorf("%w: backend %q is not an http(s) URL", ErrInput, b)
		}
		p.backends = append(p.backends, strings.TrimRight(b, "/"))
	}
	if p.client == nil {
		p.client = http.DefaultClient
	}
	if p.maxBody == 0 {
		p.maxBody = 8 << 20
	}
	if p.reg != nil {
		goVersion, modVersion, revision := obs.BuildInfo()
		p.reg.Gauge("gem_build_info", "Build identity; value is always 1.",
			obs.Labels{"go_version": goVersion, "version": modVersion, "revision": revision}).Set(1)
		p.reg.GaugeFunc("gem_uptime_seconds", "Seconds since the proxy started.", nil,
			func() float64 { return time.Since(p.start).Seconds() })
	}
	return p, nil
}

// ProxyHit is one merged search result: a backend-local hit tagged with
// the shard (backend position) that holds it.
type ProxyHit struct {
	Shard int `json:"shard"`
	Hit
}

type proxySearchResponse struct {
	Results []ProxyHit `json:"results"`
}

// proxyBatchSearchResponse is the batched answer: one merged entry per
// query column, in request order.
type proxyBatchSearchResponse struct {
	Results []proxyBatchEntry `json:"results"`
}

type proxyBatchEntry struct {
	Column  string     `json:"column"`
	Results []ProxyHit `json:"results"`
}

type proxyHealthResponse struct {
	Status        string  `json:"status"`
	Shards        int     `json:"shards"`
	Fingerprint   string  `json:"fingerprint"`
	IndexSize     int     `json:"index_size"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
}

type proxyStatsResponse struct {
	Shards    int     `json:"shards"`
	IndexSize int     `json:"index_size"`
	Requests  int64   `json:"requests"`
	Backends  []Stats `json:"backends"`
}

// Handler returns the proxy's HTTP API:
//
//	POST /search   same payload as a shard server; merged top-k answer
//	GET  /healthz  aggregate liveness + model-identity agreement + build info
//	GET  /stats    per-backend counters plus fleet totals
//	GET  /metrics  Prometheus exposition incl. scraped backend health/latency
//
// The instrumentation middleware wraps the mux, so mux-generated 404/405
// bodies use the API's JSON error shape and every request is counted.
func (p *Proxy) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /search", p.handleSearch)
	mux.HandleFunc("GET /healthz", p.handleHealthz)
	mux.HandleFunc("GET /stats", p.handleStats)
	if p.reg != nil {
		mux.HandleFunc("GET /metrics", p.handleMetrics)
	}
	ins := &httpInstrumentor{met: newServeMetrics(p.reg)}
	return ins.wrap(mux)
}

// handleMetrics refreshes the re-exported backend gauges from a live
// /stats scrape of every backend, then serves the exposition. An
// unreachable backend only zeroes its up gauge — the scrape never fails
// the exposition.
func (p *Proxy) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var wg sync.WaitGroup
	for i := range p.backends {
		wg.Add(1)
		//lint:gemallow poolgo network fan-out blocks on I/O, not CPU; the pool budget is for compute
		go func(i int) {
			defer wg.Done()
			be := obs.Labels{"backend": strconv.Itoa(i)}
			var st Stats
			if err := p.call(r, http.MethodGet, p.backends[i]+"/stats", nil, &st); err != nil {
				p.reg.Gauge("gem_proxy_backend_up", "1 when the backend's last scrape succeeded.", be).Set(0)
				return
			}
			p.reg.Gauge("gem_proxy_backend_up", "1 when the backend's last scrape succeeded.", be).Set(1)
			p.reg.Gauge("gem_proxy_backend_index_size", "Live indexed columns on the backend.", be).Set(float64(st.IndexSize))
			p.reg.Gauge("gem_proxy_backend_requests", "Embed requests served by the backend.", be).Set(float64(st.Requests))
			p.reg.Gauge("gem_proxy_backend_uptime_seconds", "Backend uptime at last scrape.", be).Set(st.UptimeSeconds)
			p.reg.Gauge("gem_proxy_backend_latency_p50_ms", "Backend p50 embed latency at last scrape.", be).Set(st.LatencyP50Ms)
			p.reg.Gauge("gem_proxy_backend_latency_p99_ms", "Backend p99 embed latency at last scrape.", be).Set(st.LatencyP99Ms)
		}(i)
	}
	wg.Wait()
	p.reg.Handler().ServeHTTP(w, r)
}

// timedCall is call plus per-backend fan-out instrumentation: latency
// histogram, error counter, and an up gauge flipped by the outcome.
func (p *Proxy) timedCall(r *http.Request, i int, method, path string, body []byte, v any) error {
	if p.reg == nil {
		return p.call(r, method, p.backends[i]+path, body, v)
	}
	be := obs.Labels{"backend": strconv.Itoa(i)}
	//lint:gemallow detnondet backend latency histogram is scrape-only telemetry
	t0 := time.Now()
	err := p.call(r, method, p.backends[i]+path, body, v)
	p.reg.Histogram("gem_proxy_backend_seconds", "Fan-out request latency by backend.", be, obs.DefBuckets()).
		Observe(time.Since(t0).Seconds()) //lint:gemallow detnondet backend latency histogram is scrape-only telemetry
	if err != nil {
		p.reg.Counter("gem_proxy_backend_errors_total", "Failed fan-out requests by backend.", be).Inc()
		p.reg.Gauge("gem_proxy_backend_up", "1 when the backend's last scrape succeeded.", be).Set(0)
	} else {
		p.reg.Gauge("gem_proxy_backend_up", "1 when the backend's last scrape succeeded.", be).Set(1)
	}
	return err
}

// rawSearchRequest is the proxy's shallow view of a /search payload:
// shape and k are inspected, but column values are never parsed — the
// original body bytes ship to the backends verbatim, so front-door cost
// does not scale with the number of values in the batch.
type rawSearchRequest struct {
	Column  json.RawMessage   `json:"column"`
	Columns []json.RawMessage `json:"columns"`
	K       int               `json:"k"`
}

// rawPresent reports whether a raw field carries a value. An absent
// field, null, or an empty object all count as unset, matching the shard
// server's view of an empty column.
func rawPresent(m json.RawMessage) bool {
	s := strings.TrimSpace(string(m))
	return s != "" && s != "null" && s != "{}"
}

func (p *Proxy) handleSearch(w http.ResponseWriter, r *http.Request) {
	body := r.Body
	if p.maxBody > 0 {
		body = http.MaxBytesReader(w, body, p.maxBody)
	}
	payload, err := io.ReadAll(body)
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "reading request: "+err.Error())
		return
	}
	var req rawSearchRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return
	}
	// Mirror the shard server's k contract at the front door: negative k
	// is a client bug rejected before it costs a fan-out, 0 means the
	// default (which the backends apply identically to the forwarded
	// payload).
	if req.K < 0 {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("%s: k = %d", ErrInput, req.K))
		return
	}
	k := req.K
	if k == 0 {
		k = 10
	}
	batched := len(req.Columns) > 0
	if batched && rawPresent(req.Column) {
		writeError(w, http.StatusBadRequest, "request sets both column and columns; use one")
		return
	}
	if p.reg != nil {
		n := 1
		if batched {
			n = len(req.Columns)
		}
		p.reg.Histogram("gem_search_batch_size",
			"Queries answered per /search request.", nil, batchSizeBuckets()).Observe(float64(n))
	}
	// The whole batch ships to every backend in ONE request per backend
	// per round trip — the original body bytes, batched or not — so a
	// client batch of 256 queries costs the fan-out overhead once, not
	// 256 times, and the proxy never re-encodes the query values.

	if batched {
		resps := make([]searchBatchResponse, len(p.backends))
		if !p.fanoutSearch(w, r, payload, func(i int) any { return &resps[i] }) {
			return
		}
		entries := make([]proxyBatchEntry, len(req.Columns))
		per := make([][]Hit, len(p.backends))
		for j := range req.Columns {
			for i := range p.backends {
				// A backend answering a different number of entries than the
				// batch asked for is a contract violation, not a merge input.
				if len(resps[i].Results) != len(req.Columns) {
					writeError(w, http.StatusBadGateway,
						fmt.Sprintf("shard %d (%s): %d result entries for %d queries",
							i, p.backends[i], len(resps[i].Results), len(req.Columns)))
					return
				}
				per[i] = resps[i].Results[j].Results
			}
			// Backends echo the query column names in request order; shard
			// 0's echo names the entries, sparing a local parse of the batch.
			entries[j] = proxyBatchEntry{Column: resps[0].Results[j].Column, Results: mergeProxyHits(per, k)}
		}
		writeJSONCompact(w, proxyBatchSearchResponse{Results: entries})
		return
	}

	resps := make([]searchResponse, len(p.backends))
	if !p.fanoutSearch(w, r, payload, func(i int) any { return &resps[i] }) {
		return
	}
	per := make([][]Hit, len(p.backends))
	for i := range resps {
		per[i] = resps[i].Results
	}
	writeJSON(w, proxySearchResponse{Results: mergeProxyHits(per, k)})
}

// fanoutSearch POSTs the payload to every backend's /search concurrently,
// decoding backend i's answer into dst(i). On any backend failure it
// writes the 502 itself and reports false.
func (p *Proxy) fanoutSearch(w http.ResponseWriter, r *http.Request, payload []byte, dst func(i int) any) bool {
	errs := make([]error, len(p.backends))
	var wg sync.WaitGroup
	for i := range p.backends {
		wg.Add(1)
		//lint:gemallow poolgo network fan-out blocks on I/O, not CPU; the pool budget is for compute
		go func(i int) {
			defer wg.Done()
			errs[i] = p.timedCall(r, i, http.MethodPost, "/search", payload, dst(i))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d (%s): %v", i, p.backends[i], err))
			return false
		}
	}
	return true
}

// mergeProxyHits merges per-backend top-k lists into one ranked top-k by
// (distance, backend, id) — the deterministic order documented on Proxy.
func mergeProxyHits(per [][]Hit, k int) []ProxyHit {
	merged := make([]ProxyHit, 0, k)
	for i, hits := range per {
		for _, h := range hits {
			merged = append(merged, ProxyHit{Shard: i, Hit: h})
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		if merged[a].Shard != merged[b].Shard {
			return merged[a].Shard < merged[b].Shard
		}
		return merged[a].ID < merged[b].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	return merged
}

func (p *Proxy) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healths := make([]healthResponse, len(p.backends))
	errs := make([]error, len(p.backends))
	var wg sync.WaitGroup
	for i := range p.backends {
		wg.Add(1)
		//lint:gemallow poolgo network fan-out blocks on I/O, not CPU; the pool budget is for compute
		go func(i int) {
			defer wg.Done()
			errs[i] = p.timedCall(r, i, http.MethodGet, "/healthz", nil, &healths[i])
		}(i)
	}
	wg.Wait()
	total := 0
	for i := range p.backends {
		if errs[i] != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d (%s): %v", i, p.backends[i], errs[i]))
			return
		}
		// Distances are only comparable when every backend serves the
		// same fitted model; a mixed fleet is an operator error that must
		// not answer queries quietly.
		if healths[i].Fingerprint != healths[0].Fingerprint {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d (%s) serves a different model than shard 0", i, p.backends[i]))
			return
		}
		total += healths[i].IndexSize
	}
	goVersion, modVersion, revision := obs.BuildInfo()
	writeJSON(w, proxyHealthResponse{
		Status:      "ok",
		Shards:      len(p.backends),
		Fingerprint: healths[0].Fingerprint,
		IndexSize:   total,
		//lint:gemallow detnondet uptime is operator telemetry on the health endpoint
		UptimeSeconds: time.Since(p.start).Seconds(),
		GoVersion:     goVersion,
		Version:       modVersion,
		Revision:      revision,
	})
}

func (p *Proxy) handleStats(w http.ResponseWriter, r *http.Request) {
	all := make([]Stats, len(p.backends))
	errs := make([]error, len(p.backends))
	var wg sync.WaitGroup
	for i := range p.backends {
		wg.Add(1)
		//lint:gemallow poolgo network fan-out blocks on I/O, not CPU; the pool budget is for compute
		go func(i int) {
			defer wg.Done()
			errs[i] = p.timedCall(r, i, http.MethodGet, "/stats", nil, &all[i])
		}(i)
	}
	wg.Wait()
	resp := proxyStatsResponse{Shards: len(p.backends), Backends: all}
	for i := range p.backends {
		if errs[i] != nil {
			writeError(w, http.StatusBadGateway, fmt.Sprintf("shard %d (%s): %v", i, p.backends[i], errs[i]))
			return
		}
		resp.IndexSize += all[i].IndexSize
		resp.Requests += all[i].Requests
	}
	writeJSON(w, resp)
}

// call issues one backend request bound to the incoming request's
// context and decodes the JSON answer; a non-200 backend answer is
// surfaced as its error message.
func (p *Proxy) call(r *http.Request, method, url string, body []byte, v any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(r.Context(), method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(data, &e) == nil && e.Error != "" {
			return fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
		}
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	return json.Unmarshal(data, v)
}
