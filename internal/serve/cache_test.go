package serve

import "testing"

func k(b byte) cacheKey {
	var key cacheKey
	key[0] = b
	return key
}

// TestCacheEvictionOrderLRU pins the eviction policy byte for byte: the
// least recently *used* entry goes first, where both get and put-of-an-
// existing-key refresh recency.
func TestCacheEvictionOrderLRU(t *testing.T) {
	c := newCache(3)
	vec := func(v float64) []float64 { return []float64{v} }
	c.put(k(1), vec(1))
	c.put(k(2), vec(2))
	c.put(k(3), vec(3)) // recency: 3, 2, 1
	if _, ok := c.get(k(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	} // recency: 1, 3, 2
	c.put(k(4), vec(4)) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Fatal("key 2 survived; eviction is not least-recently-used")
	}
	for _, b := range []byte{1, 3, 4} {
		if _, ok := c.get(k(b)); !ok {
			t.Fatalf("key %d evicted out of order", b)
		}
	}
	// The loop got 1, 3, 4 in order → recency: 4, 3, 1.
	c.put(k(1), vec(1)) // existing key: refresh only → recency: 1, 4, 3
	c.put(k(5), vec(5)) // evicts 3
	if _, ok := c.get(k(3)); ok {
		t.Fatal("key 3 survived; put of an existing key must refresh recency")
	}
	for _, b := range []byte{1, 4, 5} {
		if _, ok := c.get(k(b)); !ok {
			t.Fatalf("key %d evicted out of order after refresh", b)
		}
	}
	if c.len() != 3 {
		t.Fatalf("cache holds %d entries, want 3", c.len())
	}
	// The idempotent put keeps the original row bytes.
	c.put(k(5), vec(99))
	if v, _ := c.get(k(5)); v[0] != 5 {
		t.Fatalf("idempotent put replaced the stored row: %v", v)
	}
}

// TestCacheDisabled: a nil cache (CacheSize < 0) never stores and never
// hits.
func TestCacheDisabled(t *testing.T) {
	c := newCache(-1)
	if c != nil {
		t.Fatal("negative size must disable the cache")
	}
	c.put(k(1), []float64{1})
	if _, ok := c.get(k(1)); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.len() != 0 {
		t.Fatal("disabled cache has entries")
	}
}
