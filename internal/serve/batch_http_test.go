package serve

// Batched /search wire-contract tests: a multi-column request must answer
// exactly what the same columns get one request at a time (entries in
// request order), the single-column shape must stay byte-compatible with
// the historical indented form, ambiguous payloads must be rejected, and
// the batch-size histogram must see every request — at both the shard
// server and the proxy front door.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/obs"
	"github.com/gem-embeddings/gem/internal/table"
)

// batchBody renders a batched /search request over the given columns.
func batchBody(cols []table.Column, k int) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = colJSON(c)
	}
	return fmt.Sprintf(`{"columns":[%s],"k":%d}`, strings.Join(parts, ","), k)
}

// TestHTTPSearchBatchedMatchesSingles: one batched request answers exactly
// what each column gets from its own single-column request, entries in
// request order, and repeated batches are byte-identical.
func TestHTTPSearchBatchedMatchesSingles(t *testing.T) {
	ds := testCatalog()
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:10]); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	queries := ds.Columns[10:14]
	const k = 5

	code, body := doReq(t, h, "POST", "/search", batchBody(queries, k))
	if code != http.StatusOK {
		t.Fatalf("batched search: status %d: %s", code, body)
	}
	var batched searchBatchResponse
	if err := json.Unmarshal(body, &batched); err != nil {
		t.Fatal(err)
	}
	if len(batched.Results) != len(queries) {
		t.Fatalf("%d batch entries, want %d", len(batched.Results), len(queries))
	}
	for i, q := range queries {
		if batched.Results[i].Column != q.Name {
			t.Errorf("entry %d named %q, want request-order %q", i, batched.Results[i].Column, q.Name)
		}
		scode, sbody := doReq(t, h, "POST", "/search",
			fmt.Sprintf(`{"column":%s,"k":%d}`, colJSON(q), k))
		if scode != http.StatusOK {
			t.Fatalf("single search %d: status %d: %s", i, scode, sbody)
		}
		var single searchResponse
		if err := json.Unmarshal(sbody, &single); err != nil {
			t.Fatal(err)
		}
		if len(single.Results) != len(batched.Results[i].Results) {
			t.Fatalf("entry %d: %d hits batched, %d single", i, len(batched.Results[i].Results), len(single.Results))
		}
		for j := range single.Results {
			if single.Results[j] != batched.Results[i].Results[j] {
				t.Errorf("entry %d hit %d: batched %+v, single %+v", i, j, batched.Results[i].Results[j], single.Results[j])
			}
		}
	}

	_, body2 := doReq(t, h, "POST", "/search", batchBody(queries, k))
	if !bytes.Equal(body, body2) {
		t.Errorf("repeated batched search diverged:\n%s\n%s", body, body2)
	}
}

// TestHTTPSearchSingleShapeUnchanged pins the wire compatibility split:
// single-column responses keep the historical indented encoding, batched
// responses are compact, and a batch of empty answers encodes hits as []
// rather than null.
func TestHTTPSearchSingleShapeUnchanged(t *testing.T) {
	ds := testCatalog()
	s := newTestServer(t, 2, Config{Index: ann.NewFlat(ann.Euclidean)})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:6]); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()

	_, single := doReq(t, h, "POST", "/search",
		fmt.Sprintf(`{"column":%s,"k":3}`, colJSON(ds.Columns[8])))
	if !strings.HasPrefix(string(single), "{\n  \"results\"") {
		t.Errorf("single-column response lost the historical indented shape:\n%s", single)
	}
	_, batched := doReq(t, h, "POST", "/search", batchBody(ds.Columns[8:9], 3))
	if strings.Contains(string(batched), "\n  ") {
		t.Errorf("batched response is indented, want compact:\n%s", batched)
	}

	// Empty answers: a server whose index holds nothing still answers one
	// entry per query with [] hits, never null.
	empty := newTestServer(t, 1, Config{Index: ann.NewFlat(ann.Euclidean)})
	code, body := doReq(t, empty.Handler(), "POST", "/search", batchBody(ds.Columns[:2], 4))
	if code != http.StatusOK {
		t.Fatalf("empty-index batched search: status %d: %s", code, body)
	}
	if strings.Contains(string(body), "null") {
		t.Errorf("empty hits encoded as null:\n%s", body)
	}
	var resp searchBatchResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("%d entries from empty index, want 2", len(resp.Results))
	}
}

// TestHTTPSearchBothShapesRejected: a payload setting both column and
// columns is ambiguous and must 400 at the shard server and the proxy.
func TestHTTPSearchBothShapesRejected(t *testing.T) {
	ds := testCatalog()
	s := newTestServer(t, 1, Config{Index: ann.NewFlat(ann.Euclidean)})
	both := fmt.Sprintf(`{"column":%s,"columns":[%s],"k":2}`,
		colJSON(ds.Columns[0]), colJSON(ds.Columns[1]))
	code, body := doReq(t, s.Handler(), "POST", "/search", both)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "use one") {
		t.Errorf("server both-shapes: status %d: %s", code, body)
	}

	p, _ := newProxyFleet(t, 2, ds.Columns[:4])
	code, body = doReq(t, p.Handler(), "POST", "/search", both)
	if code != http.StatusBadRequest || !strings.Contains(string(body), "use one") {
		t.Errorf("proxy both-shapes: status %d: %s", code, body)
	}
}

// TestProxySearchBatchedMatchesSingles: the proxy's batched fan-out merges
// each query exactly like its single-query path, entries in request order,
// byte-deterministic across repeats.
func TestProxySearchBatchedMatchesSingles(t *testing.T) {
	ds := testCatalog()
	p, _ := newProxyFleet(t, 2, ds.Columns[:12])
	h := p.Handler()
	queries := ds.Columns[12:16]
	const k = 6

	code, body := doReq(t, h, "POST", "/search", batchBody(queries, k))
	if code != http.StatusOK {
		t.Fatalf("proxy batched search: status %d: %s", code, body)
	}
	var batched proxyBatchSearchResponse
	if err := json.Unmarshal(body, &batched); err != nil {
		t.Fatal(err)
	}
	if len(batched.Results) != len(queries) {
		t.Fatalf("%d batch entries, want %d", len(batched.Results), len(queries))
	}
	for i, q := range queries {
		if batched.Results[i].Column != q.Name {
			t.Errorf("entry %d named %q, want %q", i, batched.Results[i].Column, q.Name)
		}
		scode, sbody := doReq(t, h, "POST", "/search",
			fmt.Sprintf(`{"column":%s,"k":%d}`, colJSON(q), k))
		if scode != http.StatusOK {
			t.Fatalf("proxy single search %d: status %d: %s", i, scode, sbody)
		}
		var single proxySearchResponse
		if err := json.Unmarshal(sbody, &single); err != nil {
			t.Fatal(err)
		}
		if len(single.Results) != len(batched.Results[i].Results) {
			t.Fatalf("entry %d: %d hits batched, %d single", i, len(batched.Results[i].Results), len(single.Results))
		}
		for j := range single.Results {
			if single.Results[j] != batched.Results[i].Results[j] {
				t.Errorf("entry %d hit %d: batched %+v, single %+v", i, j, batched.Results[i].Results[j], single.Results[j])
			}
		}
	}

	_, body2 := doReq(t, h, "POST", "/search", batchBody(queries, k))
	if !bytes.Equal(body, body2) {
		t.Errorf("repeated proxy batched search diverged:\n%s\n%s", body, body2)
	}
}

// TestProxyBatchEntryCountMismatch: a backend answering the wrong number
// of entries for the batch is a contract violation the proxy turns into a
// 502, never a partial merge.
func TestProxyBatchEntryCountMismatch(t *testing.T) {
	broken := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// One entry regardless of how many queries the batch carried.
		_, _ = io.Copy(io.Discard, r.Body)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"results":[{"column":"only","results":[]}]}`)
	}))
	defer broken.Close()
	p, err := NewProxy(ProxyConfig{Backends: []string{broken.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ds := testCatalog()
	code, body := doReq(t, p.Handler(), "POST", "/search", batchBody(ds.Columns[:3], 2))
	if code != http.StatusBadGateway {
		t.Fatalf("mismatched entry count: status %d: %s", code, body)
	}
	if !strings.Contains(string(body), "1 result entries for 3 queries") {
		t.Errorf("502 body does not name the violation: %s", body)
	}
}

// TestSearchBatchSizeHistogram: every /search request lands its query
// count in gem_search_batch_size, at the shard server and at the proxy.
func TestSearchBatchSizeHistogram(t *testing.T) {
	ds := testCatalog()
	reg := obs.NewRegistry()
	s := newTestServer(t, 1, Config{Index: ann.NewFlat(ann.Euclidean), Metrics: reg})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:6]); err != nil {
		t.Fatal(err)
	}
	h := s.Handler()
	doReq(t, h, "POST", "/search", fmt.Sprintf(`{"column":%s,"k":2}`, colJSON(ds.Columns[7])))
	doReq(t, h, "POST", "/search", batchBody(ds.Columns[7:10], 2))
	_, exp := doReq(t, h, "GET", "/metrics", "")
	if !strings.Contains(string(exp), "gem_search_batch_size_count 2") {
		t.Errorf("server batch-size histogram did not see both searches:\n%s",
			grepMetric(string(exp), "gem_search_batch_size"))
	}
	if !strings.Contains(string(exp), "gem_search_batch_size_sum 4") {
		t.Errorf("server batch-size histogram sum wrong (want 1+3=4):\n%s",
			grepMetric(string(exp), "gem_search_batch_size"))
	}

	preg := obs.NewRegistry()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	p, err := NewProxy(ProxyConfig{Backends: []string{ts.URL}, Metrics: preg})
	if err != nil {
		t.Fatal(err)
	}
	ph := p.Handler()
	doReq(t, ph, "POST", "/search", batchBody(ds.Columns[7:10], 2))
	_, pexp := doReq(t, ph, "GET", "/metrics", "")
	if !strings.Contains(string(pexp), "gem_search_batch_size_sum 3") {
		t.Errorf("proxy batch-size histogram missed the batch:\n%s",
			grepMetric(string(pexp), "gem_search_batch_size"))
	}
}

// grepMetric filters an exposition dump to one series for error messages.
func grepMetric(exp, name string) string {
	var out []string
	for _, line := range strings.Split(exp, "\n") {
		if strings.Contains(line, name) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
