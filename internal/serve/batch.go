package serve

import (
	"context"
	"sync"
	"time"
)

// job is one cache-missed column travelling through the micro-batcher.
// done is closed exactly once, after vec/err are set.
type job struct {
	col  columnWork
	key  cacheKey
	vec  []float64
	err  error
	done chan struct{}
	// enqueued (zero when tracing is off) and spans (nil when the request
	// is untraced) carry the observability context: the dispatcher
	// attributes batch-wait and signature time back to the submitting
	// request through them. Purely observational.
	enqueued time.Time
	spans    *spanSet
}

// columnWork is the minimal column payload a job carries (decoupled from
// table.Column so the batcher file has no table dependency).
type columnWork struct {
	name   string
	values []float64
}

func (j *job) finish(vec []float64, err error) {
	j.vec, j.err = vec, err
	close(j.done)
}

// batcher coalesces concurrently arriving jobs into batches: the dispatcher
// takes the first pending job, then keeps collecting until either maxBatch
// jobs are in hand or window has elapsed since the batch opened. Under a
// single client batches degenerate to size 1 (no added latency beyond the
// window); under concurrent clients the queue drains in large strides, each
// stride paying for one pooled signature pass.
type batcher struct {
	jobs     chan *job
	quit     chan struct{}
	finished chan struct{}
	stop     sync.Once
	// mu/closed fence submission against shutdown: submits hold the read
	// side across the channel send, so once close() has taken the write
	// side and set closed, no job can slip into the queue behind the final
	// drain and leave its submitter waiting forever.
	mu       sync.RWMutex
	closed   bool
	window   time.Duration
	maxBatch int
}

func newBatcher(queueDepth, maxBatch int, window time.Duration) *batcher {
	return &batcher{
		jobs:     make(chan *job, queueDepth),
		quit:     make(chan struct{}),
		finished: make(chan struct{}),
		window:   window,
		maxBatch: maxBatch,
	}
}

// submit enqueues a job, blocking for backpressure when the queue is full.
func (b *batcher) submit(ctx context.Context, j *job) error {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if b.closed {
		return ErrClosed
	}
	// While any submit holds the read lock the dispatcher is still
	// running, so a full queue always drains and this send cannot
	// deadlock against close().
	select {
	case b.jobs <- j:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the dispatcher loop; process receives every batch. Runs until
// close, then fails whatever is still queued so no submitter hangs.
func (b *batcher) run(process func([]*job)) {
	defer close(b.finished)
	for {
		select {
		case j := <-b.jobs:
			process(b.collect(j))
		case <-b.quit:
			b.drain()
			return
		}
	}
}

// collect gathers up to maxBatch jobs, waiting at most window after the
// first. A non-positive window skips the timer and takes only what is
// already queued.
func (b *batcher) collect(first *job) []*job {
	batch := []*job{first}
	if b.window <= 0 {
		for len(batch) < b.maxBatch {
			select {
			case j := <-b.jobs:
				batch = append(batch, j)
			default:
				return batch
			}
		}
		return batch
	}
	timer := time.NewTimer(b.window)
	defer timer.Stop()
	for len(batch) < b.maxBatch {
		select {
		case j := <-b.jobs:
			batch = append(batch, j)
		case <-timer.C:
			return batch
		case <-b.quit:
			// Shutting down: process what is in hand, run's drain handles
			// the rest.
			return batch
		}
	}
	return batch
}

// isClosed reports whether close has begun.
func (b *batcher) isClosed() bool {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.closed
}

// drain fails every queued job after shutdown.
func (b *batcher) drain() {
	for {
		select {
		case j := <-b.jobs:
			j.finish(nil, ErrClosed)
		default:
			return
		}
	}
}

// close stops the dispatcher and waits for it to finish, then fails
// whatever is left in the queue. Idempotent.
func (b *batcher) close() {
	b.stop.Do(func() {
		b.mu.Lock()
		b.closed = true
		b.mu.Unlock()
		close(b.quit)
	})
	<-b.finished
	b.drain()
}
