package serve

// HTTP JSON front end. /embed responses carry no cache flags, timings or
// any other request-varying field: the body is a pure function of the
// request payload, which is what lets the determinism tests (and the CI
// smoke) assert byte-identical answers across the cold, cached and
// coalesced paths. Operational signals live on /stats instead.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/gem-embeddings/gem/internal/obs"
	"github.com/gem-embeddings/gem/internal/table"
)

// columnJSON is the wire form of one incoming column.
type columnJSON struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func (c columnJSON) column() table.Column {
	return table.Column{Name: c.Name, Values: c.Values}
}

// embedRequest is the POST /embed payload.
type embedRequest struct {
	// Table optionally names the source table (informational).
	Table   string       `json:"table,omitempty"`
	Columns []columnJSON `json:"columns"`
}

// embedResponse is the POST /embed answer: one row per requested column, in
// request order.
type embedResponse struct {
	Dim        int             `json:"dim"`
	Embeddings []embeddingJSON `json:"embeddings"`
}

type embeddingJSON struct {
	Column    string    `json:"column"`
	Embedding []float64 `json:"embedding"`
}

// searchRequest is the POST /search payload. Exactly one of Column
// (single-query, the historical shape) or Columns (batched) is set; a
// single-column request and its response are byte-for-byte the historical
// wire format.
type searchRequest struct {
	Column  columnJSON   `json:"column"`
	Columns []columnJSON `json:"columns,omitempty"`
	K       int          `json:"k"`
}

// batched reports whether the request uses the multi-column form.
func (r *searchRequest) batched() bool { return len(r.Columns) > 0 }

// checkShape rejects a payload that sets both the single-column and the
// batched field: silently preferring one would mask a client bug.
func (r *searchRequest) checkShape() error {
	if r.batched() && (r.Column.Name != "" || len(r.Column.Values) > 0) {
		return fmt.Errorf("request sets both column and columns; use one")
	}
	return nil
}

// queryColumns returns the batch's query columns.
func (r *searchRequest) queryColumns() []table.Column {
	cols := make([]table.Column, len(r.Columns))
	for i, c := range r.Columns {
		cols[i] = c.column()
	}
	return cols
}

type searchResponse struct {
	Results []Hit `json:"results"`
}

// searchBatchResponse is the batched /search answer: one entry per query
// column, in request order.
type searchBatchResponse struct {
	Results []searchBatchEntry `json:"results"`
}

type searchBatchEntry struct {
	Column  string `json:"column"`
	Results []Hit  `json:"results"`
}

type healthResponse struct {
	Status      string `json:"status"`
	Fingerprint string `json:"fingerprint"`
	Components  int    `json:"components"`
	Dim         int    `json:"dim"`
	IndexSize   int    `json:"index_size"`
	// UptimeSeconds and the build identity fields (debug.ReadBuildInfo)
	// let fleet checks confirm WHICH binary answered, not just that one
	// did.
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	Version       string  `json:"version"`
	Revision      string  `json:"revision"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// columnsResponse is the GET /columns answer.
type columnsResponse struct {
	Columns []ColumnInfo `json:"columns"`
	Live    int          `json:"live"`
}

// addColumnsRequest is the POST /columns payload (same column shape as
// /embed).
type addColumnsRequest struct {
	Columns []columnJSON `json:"columns"`
}

type addColumnsResponse struct {
	IDs []int `json:"ids"`
	Dim int   `json:"dim"`
}

type removeColumnsResponse struct {
	Removed []int `json:"removed"`
}

type compactResponse struct {
	Live int `json:"live"`
}

// Handler returns the server's HTTP API:
//
//	POST /embed            {"columns":[{"name":...,"values":[...]}]} → embeddings
//	POST /search           {"column":{...},"k":10}                   → nearest indexed columns
//	                       {"columns":[{...},...],"k":10}            → batched: one result entry per query column
//	GET  /columns                                                    → live catalog columns
//	POST /columns          {"columns":[...]}                         → add (embed + index + journal)
//	DELETE /columns/{ref}  ref = header name or @id                  → remove
//	POST /columns/compact                                            → drop tombstones, snapshot the store
//	GET  /healthz                                                    → liveness + model identity + build info
//	GET  /stats                                                      → cache/batch/catalog counters
//	GET  /metrics                                                    → Prometheus exposition (when metrics are on)
//
// Every route is method-scoped; the instrumentation middleware wraps the
// mux, so mux-generated 404/405 bodies come back as the same JSON error
// shape the handlers produce, and every request (matched or not) lands in
// the per-endpoint metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /embed", s.handleEmbed)
	mux.HandleFunc("POST /search", s.handleSearch)
	mux.HandleFunc("GET /columns", s.handleColumnsList)
	mux.HandleFunc("POST /columns", s.handleColumnsAdd)
	mux.HandleFunc("DELETE /columns/{ref}", s.handleColumnsRemove)
	mux.HandleFunc("POST /columns/compact", s.handleCompact)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /stats", s.handleStats)
	if s.met.reg != nil {
		mux.Handle("GET /metrics", s.met.reg.Handler())
	}
	return s.ins.wrap(mux)
}

func (s *Server) handleColumnsList(w http.ResponseWriter, r *http.Request) {
	cols, err := s.Columns()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, columnsResponse{Columns: cols, Live: len(cols)})
}

// decodeBody decodes one JSON request body under the configured size cap
// and writes the error response itself when decoding fails: 413 when the
// cap cut the body off, 400 for malformed JSON. Reports whether decoding
// succeeded.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body := r.Body
	if s.cfg.MaxBodyBytes > 0 {
		body = http.MaxBytesReader(w, body, s.cfg.MaxBodyBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "decoding request: "+err.Error())
		return false
	}
	return true
}

func (s *Server) handleColumnsAdd(w http.ResponseWriter, r *http.Request) {
	var req addColumnsRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cols := make([]table.Column, len(req.Columns))
	for i, c := range req.Columns {
		cols[i] = c.column()
	}
	ids, err := s.AddColumns(r.Context(), cols)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, addColumnsResponse{IDs: ids, Dim: s.dim})
}

func (s *Server) handleColumnsRemove(w http.ResponseWriter, r *http.Request) {
	ids, err := s.RemoveColumns(r.PathValue("ref"))
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, removeColumnsResponse{Removed: ids})
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	live, err := s.CompactCatalog()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, compactResponse{Live: live})
}

func (s *Server) handleEmbed(w http.ResponseWriter, r *http.Request) {
	var req embedRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	cols := make([]table.Column, len(req.Columns))
	for i, c := range req.Columns {
		cols[i] = c.column()
	}
	rows, err := s.Embed(r.Context(), cols)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	resp := embedResponse{Dim: s.dim, Embeddings: make([]embeddingJSON, len(rows))}
	for i, row := range rows {
		resp.Embeddings[i] = embeddingJSON{Column: cols[i].Name, Embedding: row}
	}
	writeJSON(w, resp)
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req searchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if err := req.checkShape(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.batched() {
		cols := req.queryColumns()
		batches, err := s.SearchBatch(r.Context(), cols, req.K)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		resp := searchBatchResponse{Results: make([]searchBatchEntry, len(cols))}
		for i, hits := range batches {
			if hits == nil {
				hits = []Hit{}
			}
			resp.Results[i] = searchBatchEntry{Column: cols[i].Name, Results: hits}
		}
		writeJSONCompact(w, resp)
		return
	}
	hits, err := s.Search(r.Context(), req.Column.column(), req.K)
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	if hits == nil {
		hits = []Hit{}
	}
	writeJSON(w, searchResponse{Results: hits})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	goVersion, modVersion, revision := obs.BuildInfo()
	writeJSON(w, healthResponse{
		Status:      "ok",
		Fingerprint: s.fp,
		Components:  s.emb.Model().K(),
		Dim:         s.dim,
		IndexSize:   s.IndexLen(),
		//lint:gemallow detnondet uptime is operator telemetry on the health endpoint
		UptimeSeconds: time.Since(s.start).Seconds(),
		GoVersion:     goVersion,
		Version:       modVersion,
		Revision:      revision,
	})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrInput):
		return http.StatusBadRequest
	case errors.Is(err, ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, ErrNoIndex):
		return http.StatusNotImplemented
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeJSONCompact writes v without indentation. Batched /search answers
// use it: they are machine-consumed fan-out payloads whose encoding cost
// and bytes on the wire scale with batch size, and compact encoding is
// measurably cheaper. Single-query responses keep the historical indented
// form byte for byte.
func writeJSONCompact(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

// writeError is the blessed error writer: every error answer is the JSON
// {"error": ...} body, status and body set together.
//
//gem:errwriter
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(errorResponse{Error: msg})
}
