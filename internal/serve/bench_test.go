package serve

import (
	"context"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/table"
)

// benchColumn is a serving-sized column: long enough that the GMM hot path
// dominates a miss, so the hit/miss ratio reflects production traffic.
func benchColumn(name string, n int, seed int64) table.Column {
	rng := rand.New(rand.NewSource(seed))
	vs := make([]float64, n)
	for i := range vs {
		vs[i] = 40 + 9*rng.NormFloat64()
	}
	return table.Column{Name: name, Values: vs}
}

// BenchmarkServeCacheHit measures the cached path: content hash plus LRU
// lookup, no GMM work. Compare with BenchmarkServeCacheMiss — the
// acceptance bar is a >=10x gap in ns/op (measured ~100x or more at this
// column size).
func BenchmarkServeCacheHit(b *testing.B) {
	s := newTestServer(b, 0, Config{})
	col := benchColumn("hot", 2000, 1)
	if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.Hits != int64(b.N) {
		b.Fatalf("hits = %d, want %d", st.Hits, b.N)
	}
}

// BenchmarkServeCacheMiss measures the same column going through the full
// signature path every time (cache disabled).
func BenchmarkServeCacheMiss(b *testing.B) {
	s := newTestServer(b, 0, Config{CacheSize: -1})
	col := benchColumn("cold", 2000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := s.Stats(); st.Hits != 0 {
		b.Fatalf("cache disabled but hits = %d", st.Hits)
	}
}

// BenchmarkServeThroughput drives concurrent duplicate-heavy clients
// through the batcher — the serving analogue of the repo's parallel-EM
// benchmarks.
func BenchmarkServeThroughput(b *testing.B) {
	s := newTestServer(b, 0, Config{})
	pool := make([]table.Column, 16)
	for i := range pool {
		pool[i] = benchColumn("col", 2000, int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			col := pool[i%len(pool)]
			if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
