package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sync"

	"github.com/gem-embeddings/gem/internal/table"
)

// cacheKey content-addresses one column embedding: SHA-256 over the
// embedder fingerprint, the inputs the embedding depends on — the raw
// float64 bits of the values (length-prefixed, so distinct splits cannot
// collide) and, only when the embedder composes header embeddings, the
// column name. Everything that does NOT enter the embedding (Type, Table,
// and the name on value-only configs) is excluded, so renamed copies of a
// column hit the same entry whenever the embedder would answer them
// identically.
type cacheKey [32]byte

func keyFor(fingerprint, name string, col table.Column) cacheKey {
	h := sha256.New()
	h.Write([]byte(fingerprint))
	h.Write([]byte{0})
	h.Write([]byte(name))
	h.Write([]byte{0})
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(col.Values)))
	h.Write(buf[:])
	for _, v := range col.Values {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	var k cacheKey
	h.Sum(k[:0])
	return k
}

// cache is a bounded LRU map from content key to embedding row. Stored rows
// are shared with callers and must be treated as immutable. A nil *cache
// never hits and never stores, which is the "caching disabled" mode.
type cache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used
	m   map[cacheKey]*list.Element
}

type centry struct {
	key cacheKey
	vec []float64
}

func newCache(max int) *cache {
	if max <= 0 {
		return nil
	}
	return &cache{max: max, ll: list.New(), m: make(map[cacheKey]*list.Element, max)}
}

func (c *cache) get(k cacheKey) ([]float64, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*centry).vec, true
}

func (c *cache) put(k cacheKey, vec []float64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		// Idempotent: the same key always maps to the same bytes, so keep
		// the existing row and just refresh recency.
		c.ll.MoveToFront(el)
		return
	}
	c.m[k] = c.ll.PushFront(&centry{key: k, vec: vec})
	if c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*centry).key)
	}
}

func (c *cache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
