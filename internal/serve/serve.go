// Package serve is Gem's warm-model embedding server: a fitted
// core.Embedder held in memory answers Embed requests for incoming columns
// without refitting — the paper's deployment mode (§3.1), where one
// corpus-level mixture serves many tables.
//
// Three mechanisms make the hot path cheap:
//
//   - A content-hash cache: each column embedding is keyed by SHA-256 of
//     (embedder fingerprint, header, value bits), so a repeated column is
//     answered without touching the GMM at all.
//   - Micro-batching: cache misses from concurrently arriving requests are
//     coalesced into one pooled Signatures pass over the shared
//     internal/pool worker pool — tables stream in incrementally and are
//     embedded in batch-sized strides, not via whole-catalog calls.
//   - An optional warm-index hook: every fresh embedding is appended to an
//     internal/ann index, so similarity search stays current as columns
//     stream through.
//
// Determinism contract: an embedding is a pure function of (column values,
// header, fitted embedder). Responses are therefore byte-identical whether
// they are served cold, from the cache, from a batch of one, or from a
// coalesced batch, at every worker-pool width. This is inherited from
// core.EmbedSignature, which standardizes statistical features against the
// corpus moments frozen at Fit time rather than against the incoming batch;
// request isolation follows too — a malformed column is rejected before it
// can poison a coalesced batch.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// ErrClosed is returned for requests against a closed server.
var ErrClosed = errors.New("serve: server closed")

// ErrInput is returned for malformed requests.
var ErrInput = errors.New("serve: invalid input")

// ErrNoIndex is returned by Search when the server runs without an index.
var ErrNoIndex = errors.New("serve: no search index configured")

// Config parametrizes a Server.
type Config struct {
	// MaxBatch caps how many cache-missed columns one coalesced signature
	// pass embeds. Default 64.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits after a batch opens for
	// more columns to coalesce. Default 200µs; negative disables waiting
	// (each pass takes only what is already queued).
	BatchWindow time.Duration
	// CacheSize bounds the column-embedding LRU cache. Default 4096;
	// negative disables caching.
	CacheSize int
	// QueueDepth bounds the miss queue; submitters block (backpressure)
	// when it is full. Default 1024.
	QueueDepth int
	// Index, when set, receives every fresh embedding (metric-normalized
	// like core.EmbedVectors) so the search layer stays warm. The server
	// owns all access to it from New on.
	Index ann.Index
	// IndexNames are the column names behind any entries already in Index,
	// aligned by id; missing names render as "@i".
	IndexNames []string
	// LatencyWindow is how many recent request latencies the percentile
	// report keeps. Default 2048.
	LatencyWindow int
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 2048
	}
}

// Server hosts one warm embedder. Safe for concurrent use; create with New,
// release with Close.
type Server struct {
	emb *core.Embedder
	fp  string
	dim int
	// nameInKey records whether the column name enters the embedding
	// (contextual features): only then does it belong in the cache key.
	nameInKey bool
	cfg       Config
	cache     *cache
	b         *batcher

	idxMu    sync.RWMutex
	idx      ann.Index
	idxNames []string
	idxKeys  map[cacheKey]bool
	idxKeyOf []cacheKey // aligned with index ids; zero key for preloaded entries

	start time.Time
	ctr   counters
	lat   *latencyRing
}

// New validates that e can serve single columns (fitted, frozen moments
// when statistical features are selected, non-AE composition) and starts
// the dispatcher.
func New(e *core.Embedder, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	fp, err := e.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("serve: embedder not servable: %w", err)
	}
	// Probe the single-column path once with a shaped zero signature: this
	// surfaces AE composition and missing moments at startup instead of on
	// the first request, and fixes the embedding dimensionality.
	probe := core.Signature{Column: "__probe__", MeanProbs: make([]float64, e.Model().K())}
	if m := e.Moments(); m != nil {
		probe.Stats = make([]float64, len(m.Mean))
	}
	row, err := e.EmbedSignature(probe)
	if err != nil {
		return nil, fmt.Errorf("serve: embedder not servable: %w", err)
	}
	s := &Server{
		emb:       e,
		fp:        fp,
		dim:       len(row),
		nameInKey: e.Config().Features.Has(core.Contextual),
		cfg:       cfg,
		cache:     newCache(cfg.CacheSize),
		b:         newBatcher(cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow),
		start:     time.Now(),
		lat:       newLatencyRing(cfg.LatencyWindow),
	}
	if cfg.Index != nil {
		// A preloaded index must hold vectors of the served dimensionality,
		// or the warm-index hook would silently drop every Add and /search
		// would 500 on each request — fail at startup instead.
		if d := cfg.Index.Dim(); d != 0 && d != s.dim {
			return nil, fmt.Errorf("%w: index holds vectors of dim %d, embedder serves dim %d — was it built from this model and configuration?",
				ErrInput, d, s.dim)
		}
		s.idx = cfg.Index
		s.idxKeys = make(map[cacheKey]bool)
		s.idxKeyOf = make([]cacheKey, s.idx.Len())
		s.idxNames = make([]string, s.idx.Len())
		for i := range s.idxNames {
			if i < len(cfg.IndexNames) {
				s.idxNames[i] = cfg.IndexNames[i]
			} else {
				s.idxNames[i] = fmt.Sprintf("@%d", i)
			}
		}
	}
	go s.b.run(s.process)
	return s, nil
}

// Fingerprint returns the warm embedder's stable fingerprint (the cache-key
// component).
func (s *Server) Fingerprint() string { return s.fp }

// Dim returns the embedding dimensionality served.
func (s *Server) Dim() int { return s.dim }

// Close stops the dispatcher; queued and subsequent requests fail with
// ErrClosed.
func (s *Server) Close() { s.b.close() }

// Embed returns one embedding row per column, in request order. Rows are
// shared with the cache and must be treated as immutable. Cache-missed
// values are snapshotted at submission, so the caller may reuse its
// buffers as soon as the call returns — including after a context
// cancellation that abandons in-flight jobs. The whole request fails on
// the first malformed column (reported by name); columns are validated up
// front so a bad one is rejected before it can enter — and poison — a
// coalesced batch shared with other requests.
// key content-addresses one column for this server.
func (s *Server) key(col table.Column) cacheKey {
	name := ""
	if s.nameInKey {
		name = col.Name
	}
	return keyFor(s.fp, name, col)
}

func (s *Server) Embed(ctx context.Context, cols []table.Column) ([][]float64, error) {
	start := time.Now()
	if s.b.isClosed() {
		// Checked up front so even fully cached requests honour the Close
		// contract instead of quietly succeeding forever.
		return nil, ErrClosed
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrInput)
	}
	for _, col := range cols {
		if err := validateColumn(col); err != nil {
			return nil, err
		}
	}
	out := make([][]float64, len(cols))
	type pending struct {
		slot int
		j    *job
	}
	var waits []pending
	for i, col := range cols {
		key := s.key(col)
		if vec, ok := s.cache.get(key); ok {
			s.ctr.hits.Add(1)
			out[i] = vec
			continue
		}
		s.ctr.misses.Add(1)
		// Snapshot the values: the dispatcher may read them after this
		// call has returned (ctx cancellation abandons the job, not the
		// batch), and a caller-mutated slice would race AND be cached
		// under the key of the old bytes.
		vals := append([]float64(nil), col.Values...)
		j := &job{col: columnWork{name: col.Name, values: vals}, key: key, done: make(chan struct{})}
		if err := s.b.submit(ctx, j); err != nil {
			return nil, err
		}
		waits = append(waits, pending{slot: i, j: j})
	}
	for _, p := range waits {
		select {
		case <-p.j.done:
			if p.j.err != nil {
				return nil, fmt.Errorf("serve: column %q: %w", cols[p.slot].Name, p.j.err)
			}
			out[p.slot] = p.j.vec
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.ctr.requests.Add(1)
	s.ctr.columns.Add(int64(len(cols)))
	s.lat.record(time.Since(start).Seconds())
	return out, nil
}

// validateColumn enforces the request-isolation precondition.
func validateColumn(col table.Column) error {
	if len(col.Values) == 0 {
		return fmt.Errorf("%w: column %q is empty", ErrInput, col.Name)
	}
	for i, v := range col.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: column %q value %d is not finite", ErrInput, col.Name, i)
		}
	}
	return nil
}

// process embeds one coalesced batch: jobs are deduplicated by content key
// (concurrent identical misses are computed once), the unique columns go
// through one pooled Signatures pass, and every fresh row is cached and fed
// to the warm index. Each column's embedding is a pure per-column function
// (see the package comment), so splitting or merging batches cannot change
// any byte of any result.
func (s *Server) process(batch []*job) {
	groups := make(map[cacheKey][]*job, len(batch))
	var uniq []*job // first job per distinct key, in arrival order
	for _, j := range batch {
		if _, seen := groups[j.key]; !seen {
			uniq = append(uniq, j)
		}
		groups[j.key] = append(groups[j.key], j)
	}
	s.ctr.batches.Add(1)
	s.ctr.batchCols.Add(int64(len(uniq)))
	s.ctr.maxBatchObserved(int64(len(uniq)))

	sigs := make([]core.Signature, len(uniq))
	sigErrs := make([]error, len(uniq))
	if len(uniq) == 1 {
		// The single-column signature path: no dataset wrapping for the
		// common low-traffic case.
		sigs[0], sigErrs[0] = s.emb.ColumnSignature(table.Column{Name: uniq[0].col.name, Values: uniq[0].col.values})
	} else {
		ds := &table.Dataset{Name: "serve-batch", Columns: make([]table.Column, len(uniq))}
		for i, j := range uniq {
			ds.Columns[i] = table.Column{Name: j.col.name, Values: j.col.values}
		}
		batchSigs, err := s.emb.Signatures(ds)
		if err != nil {
			// The batched pass reports only its first failure; re-run each
			// column through the single-column path so every job gets its
			// own result or error and no column is failed by a neighbour.
			for i, j := range uniq {
				sigs[i], sigErrs[i] = s.emb.ColumnSignature(table.Column{Name: j.col.name, Values: j.col.values})
			}
		} else {
			copy(sigs, batchSigs)
		}
	}

	for i, j := range uniq {
		var vec []float64
		err := sigErrs[i]
		if err == nil {
			vec, err = s.emb.EmbedSignature(sigs[i])
		}
		if err == nil {
			s.cache.put(j.key, vec)
			s.feedIndex(j.key, j.col.name, vec)
		} else {
			s.ctr.errors.Add(1)
		}
		for _, dup := range groups[j.key] {
			dup.finish(vec, err)
		}
	}
}

// feedIndex appends a fresh embedding to the warm index (once per content
// key), normalized for the index metric the way core.EmbedVectors does.
func (s *Server) feedIndex(key cacheKey, name string, vec []float64) {
	if s.idx == nil {
		return
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.idxKeys[key] {
		return
	}
	v := vec
	if s.idx.Metric() == ann.Cosine {
		v = stats.L2Normalize(vec)
	}
	if err := s.idx.Add(v); err != nil {
		s.ctr.indexErrors.Add(1)
		return
	}
	s.idxKeys[key] = true
	s.idxNames = append(s.idxNames, name)
	s.idxKeyOf = append(s.idxKeyOf, key)
}

// Hit is one search result: an indexed column and its metric distance to
// the query.
type Hit struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	Dist float64 `json:"dist"`
}

// Search embeds the query column (through the cache and batcher like any
// Embed) and returns its k nearest indexed columns. Since serving a column
// feeds it into the warm index, the query's own content is excluded from
// its result.
func (s *Server) Search(ctx context.Context, col table.Column, k int) ([]Hit, error) {
	if s.idx == nil {
		return nil, ErrNoIndex
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInput, k)
	}
	rows, err := s.Embed(ctx, []table.Column{col})
	if err != nil {
		return nil, err
	}
	q := rows[0]
	if s.idx.Metric() == ann.Cosine {
		q = stats.L2Normalize(q)
	}
	qKey := s.key(col)
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	// k+1 covers the query's own indexed copy being among the nearest.
	res, err := s.idx.Search(q, k+1)
	if err != nil {
		return nil, fmt.Errorf("serve: search: %w", err)
	}
	hits := make([]Hit, 0, k)
	for _, r := range res {
		if r.ID < len(s.idxKeyOf) && s.idxKeyOf[r.ID] == qKey {
			continue
		}
		hits = append(hits, Hit{ID: r.ID, Name: s.idxNames[r.ID], Dist: r.Dist})
		if len(hits) == k {
			break
		}
	}
	return hits, nil
}

// IndexLen returns the number of indexed columns (0 without an index).
func (s *Server) IndexLen() int {
	if s.idx == nil {
		return 0
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.idx.Len()
}

// counters aggregates the hot-path statistics lock-free.
type counters struct {
	requests, columns   atomic.Int64
	hits, misses        atomic.Int64
	batches, batchCols  atomic.Int64
	maxBatch            atomic.Int64
	errors, indexErrors atomic.Int64
}

func (c *counters) maxBatchObserved(n int64) {
	for {
		cur := c.maxBatch.Load()
		if n <= cur || c.maxBatch.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the server's operational counters —
// everything deliberately kept OUT of /embed responses so those stay a pure
// function of the request.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Columns       int64   `json:"columns"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Batches       int64   `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	MaxBatch      int64   `json:"max_batch"`
	Errors        int64   `json:"errors"`
	IndexErrors   int64   `json:"index_errors"`
	CacheEntries  int     `json:"cache_entries"`
	IndexSize     int     `json:"index_size"`
	LatencyP50Ms  float64 `json:"latency_p50_ms"`
	LatencyP90Ms  float64 `json:"latency_p90_ms"`
	LatencyP99Ms  float64 `json:"latency_p99_ms"`
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	hits, misses := s.ctr.hits.Load(), s.ctr.misses.Load()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	batches, batchCols := s.ctr.batches.Load(), s.ctr.batchCols.Load()
	var meanBatch float64
	if batches > 0 {
		meanBatch = float64(batchCols) / float64(batches)
	}
	p50, p90, p99 := s.lat.percentiles()
	return Stats{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.ctr.requests.Load(),
		Columns:       s.ctr.columns.Load(),
		Hits:          hits,
		Misses:        misses,
		HitRate:       hitRate,
		Batches:       batches,
		MeanBatch:     meanBatch,
		MaxBatch:      s.ctr.maxBatch.Load(),
		Errors:        s.ctr.errors.Load(),
		IndexErrors:   s.ctr.indexErrors.Load(),
		CacheEntries:  s.cache.len(),
		IndexSize:     s.IndexLen(),
		LatencyP50Ms:  p50 * 1000,
		LatencyP90Ms:  p90 * 1000,
		LatencyP99Ms:  p99 * 1000,
	}
}

// latencyRing keeps the last n request latencies for percentile reporting.
type latencyRing struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	count int
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]float64, n)}
}

func (r *latencyRing) record(seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = seconds
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

func (r *latencyRing) percentiles() (p50, p90, p99 float64) {
	r.mu.Lock()
	snap := make([]float64, r.count)
	copy(snap, r.buf[:r.count])
	r.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(snap)
	at := func(p float64) float64 {
		i := int(p * float64(len(snap)-1))
		return snap[i]
	}
	return at(0.50), at(0.90), at(0.99)
}
