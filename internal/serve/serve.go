// Package serve is Gem's warm-model embedding server: a fitted
// core.Embedder held in memory answers Embed requests for incoming columns
// without refitting — the paper's deployment mode (§3.1), where one
// corpus-level mixture serves many tables.
//
// Three mechanisms make the hot path cheap:
//
//   - A content-hash cache: each column embedding is keyed by SHA-256 of
//     (embedder fingerprint, header, value bits), so a repeated column is
//     answered without touching the GMM at all.
//   - Micro-batching: cache misses from concurrently arriving requests are
//     coalesced into one pooled Signatures pass over the shared
//     internal/pool worker pool — tables stream in incrementally and are
//     embedded in batch-sized strides, not via whole-catalog calls.
//   - An optional warm-index hook: every fresh embedding is appended to an
//     internal/ann index, so similarity search stays current as columns
//     stream through.
//
// With a catalog store configured the server stops being a cache and
// becomes a durable, mutable catalog service: columns join and leave via
// the explicit /columns API, every mutation is journaled to an
// internal/catalog store, and a restarted server replays snapshot+journal
// into the index and the embedding cache — no re-embedding, and
// byte-identical /embed and /search responses to the server that wrote
// the journal, because the replayed op sequence drives the deterministic
// mutable index through the exact same states. In store mode /embed and
// /search never enroll columns implicitly (the auto-feed of the plain
// warm-index mode is off): enrollment must be deterministic in the store
// alone, and whether an /embed was a cache hit or miss is not.
//
// Determinism contract: an embedding is a pure function of (column values,
// header, fitted embedder). Responses are therefore byte-identical whether
// they are served cold, from the cache, from a batch of one, or from a
// coalesced batch, at every worker-pool width. This is inherited from
// core.EmbedSignature, which standardizes statistical features against the
// corpus moments frozen at Fit time rather than against the incoming batch;
// request isolation follows too — a malformed column is rejected before it
// can poison a coalesced batch.
//
// These contracts are enforced statically by gemlint (see internal/lint):
// detmaprange and detnondet guard the byte-identity guarantee, poolgo the
// worker-budget discipline, and errjson the rule that every error answer
// is the JSON {"error": ...} body produced by writeError.
//
//gem:deterministic
//gem:pooled
//gem:jsonerrors
package serve

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/obs"
	"github.com/gem-embeddings/gem/internal/shard"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// ErrClosed is returned for requests against a closed server.
var ErrClosed = errors.New("serve: server closed")

// ErrInput is returned for malformed requests.
var ErrInput = errors.New("serve: invalid input")

// ErrNoIndex is returned by Search and the catalog mutators when the
// server runs without an index.
var ErrNoIndex = errors.New("serve: no search index configured")

// ErrNotFound is returned when a catalog mutation names no live column.
var ErrNotFound = errors.New("serve: column not found")

// Config parametrizes a Server.
type Config struct {
	// MaxBatch caps how many cache-missed columns one coalesced signature
	// pass embeds. Default 64.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits after a batch opens for
	// more columns to coalesce. Default 200µs; negative disables waiting
	// (each pass takes only what is already queued).
	BatchWindow time.Duration
	// CacheSize bounds the column-embedding LRU cache. Default 4096;
	// negative disables caching.
	CacheSize int
	// QueueDepth bounds the miss queue; submitters block (backpressure)
	// when it is full. Default 1024.
	QueueDepth int
	// Index, when set, receives every fresh embedding (metric-normalized
	// like core.EmbedVectors) so the search layer stays warm. The server
	// owns all access to it from New on.
	Index ann.Index
	// IndexNames are the column names behind any entries already in Index,
	// aligned by id; missing names render as "@i". Mutually exclusive with
	// Store (a store replays its own names).
	IndexNames []string
	// Store, when set, makes the catalog durable: the store's recorded
	// add/remove history is replayed into Index (which must be empty) and
	// the embedding cache at startup, and every later index mutation is
	// journaled. The caller opens the store (bound to this embedder's
	// fingerprint) and closes it after Close.
	Store *catalog.Store
	// Catalog, when set, is a pre-assembled (possibly sharded) column
	// catalog the server adopts instead of building a single-shard one
	// from the fields above — mutually exclusive with Index, IndexNames
	// and Store. Any stores inside must be opened against
	// StoreIdentityShard; the server replays them at startup. The server
	// owns all access to the catalog from New on.
	Catalog *shard.Catalog
	// MaxBodyBytes caps one HTTP request body on the Handler's POST
	// endpoints (/embed, /search, /columns); oversized requests fail with
	// 413 before any JSON decoding. Default 8 MiB; negative disables the
	// cap. Direct method calls (Embed, AddColumns, ...) are not affected.
	MaxBodyBytes int64
	// CompactEvery, when positive, compacts the catalog (index rebuild +
	// store snapshot) automatically once that many removes have
	// accumulated since the last compaction. 0 means compaction only via
	// CompactCatalog.
	CompactEvery int
	// LatencyWindow is how many recent request latencies the percentile
	// report keeps. Default 2048.
	LatencyWindow int
	// Metrics, when set, receives the server's operational series (request
	// counters, stage timings, cache and catalog gauges) and is exposed at
	// GET /metrics. Nil disables metrics; the hot path then records
	// nothing. Instrumentation never alters a response body.
	Metrics *obs.Registry
	// SlowThreshold, when positive, logs a structured one-line record (with
	// request id and per-stage breakdown) for every HTTP request slower
	// than it. 0 disables the slow log.
	SlowThreshold time.Duration
	// SlowLog receives the slow-request records. Default log.Default().
	SlowLog *log.Logger
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 2048
	}
	if c.MaxBodyBytes == 0 {
		c.MaxBodyBytes = 8 << 20
	}
}

// Server hosts one warm embedder. Safe for concurrent use; create with New,
// release with Close.
type Server struct {
	emb *core.Embedder
	fp  string
	dim int
	// nameInKey records whether the column name enters the embedding
	// (contextual features): only then does it belong in the cache key.
	nameInKey bool
	cfg       Config
	cache     *cache
	b         *batcher

	// idxMu serializes catalog mutations; Search holds it shared (the
	// catalog allows concurrent read-only searches, nothing else). cat is
	// nil when the server runs without an index; it owns all membership
	// bookkeeping — names, content keys, liveness, the seen set — and the
	// shard routing.
	idxMu sync.RWMutex
	cat   *shard.Catalog
	// storeMode records that the catalog is durable: the /embed auto-feed
	// is disabled (membership must be deterministic in the stores alone)
	// and mutations journal before they touch an index.
	storeMode bool
	// store keeps the legacy single-store handle when the catalog was
	// assembled from Config.Store (nil for sharded or store-less servers).
	store *catalog.Store

	start time.Time
	ctr   counters
	lat   *latencyRing

	// met holds the metric instruments (no-op instances when metrics are
	// off); trace gates the hot-path time.Now() calls — true when either
	// metrics or the slow log wants stage timings.
	met   *serveMetrics
	trace bool
	ins   *httpInstrumentor
}

// New validates that e can serve single columns (fitted, frozen moments
// when statistical features are selected, non-AE composition) and starts
// the dispatcher.
func New(e *core.Embedder, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	fp, err := e.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("serve: embedder not servable: %w", err)
	}
	// Probe the single-column path once with a shaped zero signature: this
	// surfaces AE composition and missing moments at startup instead of on
	// the first request, and fixes the embedding dimensionality.
	probe := core.Signature{Column: "__probe__", MeanProbs: make([]float64, e.Model().K())}
	if m := e.Moments(); m != nil {
		probe.Stats = make([]float64, len(m.Mean))
	}
	row, err := e.EmbedSignature(probe)
	if err != nil {
		return nil, fmt.Errorf("serve: embedder not servable: %w", err)
	}
	s := &Server{
		emb:       e,
		fp:        fp,
		dim:       len(row),
		nameInKey: e.Config().Features.Has(core.Contextual),
		cfg:       cfg,
		cache:     newCache(cfg.CacheSize),
		b:         newBatcher(cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow),
		//lint:gemallow detnondet start stamp feeds only uptime telemetry
		start: time.Now(),
		lat:   newLatencyRing(cfg.LatencyWindow),
	}
	s.met = newServeMetrics(cfg.Metrics)
	s.trace = cfg.Metrics != nil || cfg.SlowThreshold > 0
	slowLog := cfg.SlowLog
	if slowLog == nil {
		slowLog = log.Default()
	}
	s.ins = &httpInstrumentor{met: s.met, trace: s.trace, slowThreshold: cfg.SlowThreshold, slowLog: slowLog}
	if cfg.Catalog != nil && (cfg.Index != nil || cfg.Store != nil || len(cfg.IndexNames) > 0) {
		return nil, fmt.Errorf("%w: Catalog is mutually exclusive with Index, IndexNames and Store", ErrInput)
	}
	if cfg.Store != nil && cfg.Index == nil {
		return nil, fmt.Errorf("%w: a catalog store needs an index to replay into", ErrInput)
	}
	cat := cfg.Catalog
	if cat == nil && cfg.Index != nil {
		// Legacy single-index configuration: wrap it into a one-shard
		// catalog. The pre-checks preserve the startup error contract.
		if cfg.Store != nil {
			if len(cfg.IndexNames) > 0 {
				return nil, fmt.Errorf("%w: IndexNames and Store are mutually exclusive (the store replays its own names)", ErrInput)
			}
			if cfg.Index.Len() != 0 {
				return nil, fmt.Errorf("%w: store replay needs an empty index, got %d preloaded vectors", ErrInput, cfg.Index.Len())
			}
		}
		var stores []*catalog.Store
		if cfg.Store != nil {
			stores = []*catalog.Store{cfg.Store}
		}
		var err error
		cat, err = shard.New(shard.Config{Indexes: []ann.Index{cfg.Index}, Stores: stores, PreloadNames: cfg.IndexNames})
		if err != nil {
			return nil, fmt.Errorf("serve: assembling catalog: %w", err)
		}
	}
	if cat != nil {
		// A preloaded index must hold vectors of the served dimensionality,
		// or the warm-index hook would silently drop every Add and /search
		// would 500 on each request — fail at startup instead.
		if d := cat.Dim(); d != 0 && d != s.dim {
			return nil, fmt.Errorf("%w: index holds vectors of dim %d, embedder serves dim %d — was it built from this model and configuration?",
				ErrInput, d, s.dim)
		}
		s.cat = cat
		s.store = cfg.Store
		if cat.Store(0) != nil {
			s.storeMode = true
			if err := s.replayCatalog(); err != nil {
				return nil, err
			}
		}
	}
	s.registerMetrics(cfg.Metrics)
	//lint:gemallow poolgo single long-lived batch dispatcher, not CPU fan-out; workers stay pooled
	go s.b.run(s.process)
	return s, nil
}

// StoreIdentity derives the binding string a catalog store must be opened
// with for this (embedder fingerprint, index) pair: the fingerprint plus
// everything that defines the index's graph — metric, scan precision
// (reduced-precision kernels steer HNSW construction, so the graph is
// per-precision), and for HNSW the construction parameters (EfSearch
// excluded: it is a pure query-time knob). Binding the store to this
// composite makes a restart with a
// different -metric or -seed fail loudly instead of silently replaying
// the journal into a differently-shaped graph, which would break the
// byte-identical restart contract.
func StoreIdentity(fingerprint string, idx ann.Index) string {
	id := fingerprint + "|metric=" + idx.Metric().String() + "|prec=" + idx.Precision().String()
	if h, ok := idx.(*ann.HNSW); ok {
		c := h.Config()
		id += fmt.Sprintf("|hnsw:m=%d,efc=%d,seed=%d,batch=%d", c.M, c.EfConstruction, c.Seed, c.BatchSize)
	}
	return id
}

// StoreIdentityShard is StoreIdentity for shard i of an n-shard catalog:
// the shard coordinate joins the binding so shard stores cannot be
// permuted, dropped or replayed at a different shard count — any of which
// would re-route keys and break the byte-identical restart contract. For
// n == 1 it is exactly StoreIdentity, so unsharded deployments keep their
// existing store directories.
func StoreIdentityShard(fingerprint string, idx ann.Index, i, n int) string {
	id := StoreIdentity(fingerprint, idx)
	if n > 1 {
		id += fmt.Sprintf("|shard=%d/%d", i, n)
	}
	return id
}

// replayCatalog validates each shard store's binding and replays the
// recorded history into the indexes and the embedding cache. Because the
// mutable indexes are deterministic in their op sequences, the result is
// the exact catalog state of the server that wrote the journals.
func (s *Server) replayCatalog() error {
	n := s.cat.Shards()
	for i := 0; i < n; i++ {
		st := s.cat.Store(i)
		want := StoreIdentityShard(s.fp, s.cat.Index(i), i, n)
		if st.Fingerprint() != "" && st.Fingerprint() != want {
			return fmt.Errorf("%w: store belongs to embedder+index %.24s…, server runs %.24s… — was the model refitted or the index reconfigured? use a fresh store directory",
				ErrInput, st.Fingerprint(), want)
		}
		if d := st.Dim(); d != 0 && d != s.dim {
			return fmt.Errorf("%w: store holds vectors of dim %d, embedder serves dim %d", ErrInput, d, s.dim)
		}
	}
	return s.cat.Replay(func(key catalog.Key, name string, vec []float64) {
		// Warm the embedding cache too: a restarted server answers /embed
		// for every stored column without re-embedding it.
		s.cache.put(cacheKey(key), vec)
	})
}

// Fingerprint returns the warm embedder's stable fingerprint (the cache-key
// component).
func (s *Server) Fingerprint() string { return s.fp }

// Dim returns the embedding dimensionality served.
func (s *Server) Dim() int { return s.dim }

// Close stops the dispatcher; queued and subsequent requests fail with
// ErrClosed.
func (s *Server) Close() { s.b.close() }

// Embed returns one embedding row per column, in request order. Rows are
// shared with the cache and must be treated as immutable. Cache-missed
// values are snapshotted at submission, so the caller may reuse its
// buffers as soon as the call returns — including after a context
// cancellation that abandons in-flight jobs. The whole request fails on
// the first malformed column (reported by name); columns are validated up
// front so a bad one is rejected before it can enter — and poison — a
// coalesced batch shared with other requests.
// key content-addresses one column for this server.
func (s *Server) key(col table.Column) cacheKey {
	name := ""
	if s.nameInKey {
		name = col.Name
	}
	return keyFor(s.fp, name, col)
}

func (s *Server) Embed(ctx context.Context, cols []table.Column) ([][]float64, error) {
	//lint:gemallow detnondet request timing feeds the latency ring, never the answer
	start := time.Now()
	if s.b.isClosed() {
		// Checked up front so even fully cached requests honour the Close
		// contract instead of quietly succeeding forever.
		return nil, ErrClosed
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrInput)
	}
	for _, col := range cols {
		if err := validateColumn(col); err != nil {
			return nil, err
		}
	}
	out := make([][]float64, len(cols))
	type pending struct {
		slot int
		j    *job
	}
	spans := spansFrom(ctx)
	var lookup time.Duration
	var waits []pending
	for i, col := range cols {
		key := s.key(col)
		var t0 time.Time
		if s.trace {
			t0 = time.Now()
		}
		vec, ok := s.cache.get(key)
		if s.trace {
			lookup += time.Since(t0)
		}
		if ok {
			s.ctr.hits.Add(1)
			s.met.cacheHits.Inc()
			out[i] = vec
			continue
		}
		s.ctr.misses.Add(1)
		s.met.cacheMisses.Inc()
		// Snapshot the values: the dispatcher may read them after this
		// call has returned (ctx cancellation abandons the job, not the
		// batch), and a caller-mutated slice would race AND be cached
		// under the key of the old bytes.
		vals := append([]float64(nil), col.Values...)
		j := &job{col: columnWork{name: col.Name, values: vals}, key: key, done: make(chan struct{}), spans: spans}
		if s.trace {
			j.enqueued = time.Now()
		}
		if err := s.b.submit(ctx, j); err != nil {
			return nil, err
		}
		waits = append(waits, pending{slot: i, j: j})
	}
	if s.trace {
		s.met.stageCacheLookup.Observe(lookup.Seconds())
		spans.add("cache_lookup", lookup)
	}
	for _, p := range waits {
		select {
		case <-p.j.done:
			if p.j.err != nil {
				return nil, fmt.Errorf("serve: column %q: %w", cols[p.slot].Name, p.j.err)
			}
			out[p.slot] = p.j.vec
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.ctr.requests.Add(1)
	s.ctr.columns.Add(int64(len(cols)))
	//lint:gemallow detnondet request timing feeds the latency ring, never the answer
	s.lat.record(time.Since(start).Seconds())
	return out, nil
}

// validateColumn enforces the request-isolation precondition.
func validateColumn(col table.Column) error {
	if len(col.Values) == 0 {
		return fmt.Errorf("%w: column %q is empty", ErrInput, col.Name)
	}
	for i, v := range col.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: column %q value %d is not finite", ErrInput, col.Name, i)
		}
	}
	return nil
}

// process embeds one coalesced batch: jobs are deduplicated by content key
// (concurrent identical misses are computed once), the unique columns go
// through one pooled Signatures pass, and every fresh row is cached and fed
// to the warm index. Each column's embedding is a pure per-column function
// (see the package comment), so splitting or merging batches cannot change
// any byte of any result.
func (s *Server) process(batch []*job) {
	groups := make(map[cacheKey][]*job, len(batch))
	var uniq []*job // first job per distinct key, in arrival order
	for _, j := range batch {
		if _, seen := groups[j.key]; !seen {
			uniq = append(uniq, j)
		}
		groups[j.key] = append(groups[j.key], j)
	}
	s.ctr.batches.Add(1)
	s.ctr.batchCols.Add(int64(len(uniq)))
	s.ctr.maxBatchObserved(int64(len(uniq)))
	s.met.batches.Inc()
	s.met.batchCols.Add(int64(len(uniq)))
	var sigStart time.Time
	if s.trace {
		// batch_wait is per job: queue entry to the moment its batch
		// started embedding.
		now := time.Now()
		for _, j := range batch {
			if !j.enqueued.IsZero() {
				d := now.Sub(j.enqueued)
				s.met.stageBatchWait.Observe(d.Seconds())
				j.spans.add("batch_wait", d)
			}
		}
		sigStart = now
	}

	sigs := make([]core.Signature, len(uniq))
	sigErrs := make([]error, len(uniq))
	if len(uniq) == 1 {
		// The single-column signature path: no dataset wrapping for the
		// common low-traffic case.
		sigs[0], sigErrs[0] = s.emb.ColumnSignature(table.Column{Name: uniq[0].col.name, Values: uniq[0].col.values})
	} else {
		ds := &table.Dataset{Name: "serve-batch", Columns: make([]table.Column, len(uniq))}
		for i, j := range uniq {
			ds.Columns[i] = table.Column{Name: j.col.name, Values: j.col.values}
		}
		batchSigs, err := s.emb.Signatures(ds)
		if err != nil {
			// The batched pass reports only its first failure; re-run each
			// column through the single-column path so every job gets its
			// own result or error and no column is failed by a neighbour.
			for i, j := range uniq {
				sigs[i], sigErrs[i] = s.emb.ColumnSignature(table.Column{Name: j.col.name, Values: j.col.values})
			}
		} else {
			copy(sigs, batchSigs)
		}
	}

	if s.trace {
		// The signature pass is shared by the whole batch; every job in it
		// waited on the pass, so each gets the full duration.
		sigD := time.Since(sigStart)
		s.met.stageSignatures.Observe(sigD.Seconds())
		for _, j := range batch {
			j.spans.add("signatures", sigD)
		}
	}

	for i, j := range uniq {
		var vec []float64
		err := sigErrs[i]
		if err == nil {
			vec, err = s.emb.EmbedSignature(sigs[i])
		}
		if err == nil {
			s.cache.put(j.key, vec)
			var t0 time.Time
			if s.trace {
				t0 = time.Now()
			}
			s.feedIndex(j.key, j.col.name, vec)
			if s.trace {
				d := time.Since(t0)
				s.met.stageIndexAdd.Observe(d.Seconds())
				j.spans.add("index_add", d)
			}
		} else {
			s.ctr.errors.Add(1)
			s.met.embedErrors.Inc()
		}
		for _, dup := range groups[j.key] {
			dup.finish(vec, err)
		}
	}
}

// feedIndex appends a fresh embedding to the warm index, normalized for
// the index metric the way core.EmbedVectors does. The auto-feed path adds
// each content key at most once, ever: a column that was explicitly
// removed stays removed until an explicit AddColumns brings it back, no
// matter how often its content is re-embedded.
//
// With a store configured the auto-feed is disabled entirely: it only
// fires on cache misses, and hit-or-miss is transient server state — a
// restarted server would enroll a different column set. Durable catalogs
// take members only through the explicit AddColumns path.
func (s *Server) feedIndex(key cacheKey, name string, vec []float64) {
	if s.cat == nil || s.storeMode {
		return
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.cat.Seen(catalog.Key(key)) {
		return
	}
	if _, err := s.cat.Add(catalog.Key(key), name, vec); err != nil {
		s.ctr.indexErrors.Add(1)
	}
}

// catalogAdd inserts one raw embedding through the sharded catalog
// (journal-first on the owning shard, so a store failure aborts the
// mutation and the caller sees the error instead of an index entry that
// silently vanishes on restart), translating store failures into the
// storeErrors counter. The caller holds idxMu.
func (s *Server) catalogAdd(key cacheKey, name string, vec []float64) (int, error) {
	id, err := s.cat.Add(catalog.Key(key), name, vec)
	if err != nil && errors.Is(err, shard.ErrStore) {
		s.ctr.storeErrors.Add(1)
	}
	return id, err
}

// catalogRemove is the remove-side twin of catalogAdd: journal first on
// the owning shard, then tombstone. The caller holds idxMu and
// guarantees id is live.
func (s *Server) catalogRemove(id int) error {
	err := s.cat.Remove(id)
	if err != nil && errors.Is(err, shard.ErrStore) {
		s.ctr.storeErrors.Add(1)
	}
	return err
}

// ColumnInfo describes one live indexed column.
type ColumnInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Key is the hex content key; empty for entries preloaded from a bare
	// index file (they have no recorded content).
	Key string `json:"key,omitempty"`
}

// Columns lists the live indexed columns in id order.
func (s *Server) Columns() ([]ColumnInfo, error) {
	if s.cat == nil {
		return nil, ErrNoIndex
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	out := make([]ColumnInfo, 0, s.cat.Live())
	for id := 0; id < s.cat.Len(); id++ {
		if !s.cat.IsLive(id) {
			continue
		}
		info := ColumnInfo{ID: id, Name: s.cat.Name(id)}
		if k := s.cat.Key(id); k != (catalog.Key{}) {
			info.Key = k.String()
		}
		out = append(out, info)
	}
	return out, nil
}

// AddColumns embeds the given columns (through the cache and batcher like
// any Embed) and ensures each is live in the catalog, journaling fresh
// adds. It returns one index id per column, in request order. Unlike the
// auto-feed of Embed, an explicit add resurrects previously removed
// content.
//
// The catalog is content-addressed: a column whose content key matches a
// live entry resolves to that entry's id — under a non-contextual
// embedder two identically-valued columns are one catalog entry, listed
// under the name it was first added with. The returned ids are therefore
// the authoritative handle; remove by "@id" when names are ambiguous.
//
// On error, earlier columns of the batch may already be durably enrolled;
// because enrollment is content-addressed and idempotent, retrying the
// identical batch completes it without duplicates.
func (s *Server) AddColumns(ctx context.Context, cols []table.Column) ([]int, error) {
	if s.cat == nil {
		return nil, ErrNoIndex
	}
	rows, err := s.Embed(ctx, cols)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(cols))
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	for i, col := range cols {
		id, err := s.catalogAdd(s.key(col), col.Name, rows[i])
		if err != nil {
			return nil, fmt.Errorf("serve: indexing column %q: %w", col.Name, err)
		}
		ids[i] = id
	}
	return ids, nil
}

// RemoveColumns removes live columns by reference — a header name (every
// live column with that name) or "@i" for a specific id — journaling each
// remove, and returns the removed ids in ascending order. Unknown
// references fail with ErrNotFound before anything is removed.
func (s *Server) RemoveColumns(refs ...string) ([]int, error) {
	if s.cat == nil {
		return nil, ErrNoIndex
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	seen := make(map[int]bool)
	var ids []int
	for _, ref := range refs {
		matched := false
		claim := func(id int) {
			// A ref that resolves to an id an earlier ref already claimed
			// is a matched no-op, not a miss: every column it names IS
			// being removed by this call.
			matched = true
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		if strings.HasPrefix(ref, "@") {
			id, err := strconv.Atoi(ref[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: column reference %q (want @i or a header name)", ErrInput, ref)
			}
			if s.cat.IsLive(id) {
				claim(id)
			}
		} else {
			for id := 0; id < s.cat.Len(); id++ {
				if s.cat.IsLive(id) && s.cat.Name(id) == ref {
					claim(id)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, ref)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := s.catalogRemove(id); err != nil {
			return nil, fmt.Errorf("serve: removing column %d: %w", id, err)
		}
	}
	s.ctr.removes.Add(int64(len(ids)))
	if s.cfg.CompactEvery > 0 && s.cat.RemovalsSinceCompact() >= s.cfg.CompactEvery {
		// Best-effort: the removals above are already journaled and
		// applied, so a failed compaction must not turn this call into an
		// error — it stays retriable via CompactCatalog, and store
		// failures are counted inside compactLocked.
		_ = s.compactLocked()
		// Compaction reassigns ids; the returned ids refer to the
		// pre-compaction numbering the caller observed.
	}
	return ids, nil
}

// CompactCatalog rebuilds the index without its tombstones and folds the
// store journal into a fresh snapshot, keeping both aligned id-for-id. It
// returns the live column count.
func (s *Server) CompactCatalog() (int, error) {
	if s.cat == nil {
		return 0, ErrNoIndex
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if err := s.compactLocked(); err != nil {
		return 0, err
	}
	return s.cat.Live(), nil
}

// compactLocked is CompactCatalog under an already-held idxMu. The
// catalog compacts its durable step FIRST: store compaction only needs
// the live entries, so a store failure (full disk, dead handle) aborts
// the compaction before the in-memory indexes and id maps are touched —
// memory and disk never diverge on the common failure path.
func (s *Server) compactLocked() error {
	diverged, err := s.cat.Compact()
	if diverged {
		// A shard store's live order is the contract that makes restart
		// replay line up with the rebuilt index; a mismatch means a
		// journal append failed earlier and the store lost a mutation.
		s.ctr.storeErrors.Add(1)
	}
	if err != nil {
		if errors.Is(err, shard.ErrStore) {
			s.ctr.storeErrors.Add(1)
		}
		return fmt.Errorf("serve: compacting catalog: %w", err)
	}
	s.ctr.compactions.Add(1)
	return nil
}

// Hit is one search result: an indexed column and its metric distance to
// the query.
type Hit struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	Dist float64 `json:"dist"`
}

// Search embeds the query column (through the cache and batcher like any
// Embed) and returns its k nearest indexed columns. Since serving a column
// feeds it into the warm index, the query's own content is excluded from
// its result. A single-column Search is exactly SearchBatch of one query.
func (s *Server) Search(ctx context.Context, col table.Column, k int) ([]Hit, error) {
	res, err := s.SearchBatch(ctx, []table.Column{col}, k)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SearchBatch answers a whole batch of query columns in one pass: all
// columns embed through one coalesced Embed call, the catalog scatter-
// gathers every query per shard in a single batched sweep, and each
// query's hits come back in its own slot (its own indexed copy excluded,
// like Search). Per-request stage spans (embed/scatter/merge) cover the
// whole batch; results are identical to calling Search per column.
func (s *Server) SearchBatch(ctx context.Context, cols []table.Column, k int) ([][]Hit, error) {
	if s.cat == nil {
		return nil, ErrNoIndex
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInput, k)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no query columns", ErrInput)
	}
	spans := spansFrom(ctx)
	var t0 time.Time
	if s.trace {
		t0 = time.Now()
	}
	rows, err := s.Embed(ctx, cols)
	if s.trace {
		d := time.Since(t0)
		s.met.stageSearchEmbed.Observe(d.Seconds())
		spans.add("embed", d)
	}
	if err != nil {
		return nil, err
	}
	qs := make([][]float64, len(rows))
	qKeys := make([]catalog.Key, len(cols))
	for i, row := range rows {
		q := row
		if s.cat.Metric() == ann.Cosine {
			q = stats.L2Normalize(q)
		}
		qs[i] = q
		qKeys[i] = catalog.Key(s.key(cols[i]))
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	s.met.searchBatchSize.Observe(float64(len(cols)))
	if s.trace {
		t0 = time.Now()
	}
	// k+1 covers each query's own indexed copy being among its nearest.
	res, err := s.cat.SearchBatch(qs, k+1)
	if s.trace {
		d := time.Since(t0)
		s.met.stageScatter.Observe(d.Seconds())
		spans.add("scatter", d)
	}
	if err != nil {
		return nil, fmt.Errorf("serve: search: %w", err)
	}
	if s.trace {
		t0 = time.Now()
	}
	out := make([][]Hit, len(cols))
	for i := range res {
		hits := make([]Hit, 0, k)
		for _, r := range res[i] {
			if s.cat.Key(r.ID) == qKeys[i] {
				continue
			}
			hits = append(hits, Hit{ID: r.ID, Name: s.cat.Name(r.ID), Dist: r.Dist})
			if len(hits) == k {
				break
			}
		}
		out[i] = hits
	}
	if s.trace {
		d := time.Since(t0)
		s.met.stageMerge.Observe(d.Seconds())
		spans.add("merge", d)
	}
	return out, nil
}

// IndexLen returns the number of live indexed columns (0 without an
// index).
func (s *Server) IndexLen() int {
	if s.cat == nil {
		return 0
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.cat.Live()
}

// indexShape snapshots (live, tombstones) under the read lock.
func (s *Server) indexShape() (live, tombstones int) {
	if s.cat == nil {
		return 0, 0
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.cat.Live(), s.cat.Len() - s.cat.Live()
}

// counters aggregates the hot-path statistics lock-free.
type counters struct {
	requests, columns   atomic.Int64
	hits, misses        atomic.Int64
	batches, batchCols  atomic.Int64
	maxBatch            atomic.Int64
	errors, indexErrors atomic.Int64
	removes             atomic.Int64
	compactions         atomic.Int64
	storeErrors         atomic.Int64
}

func (c *counters) maxBatchObserved(n int64) {
	for {
		cur := c.maxBatch.Load()
		if n <= cur || c.maxBatch.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the server's operational counters —
// everything deliberately kept OUT of /embed responses so those stay a pure
// function of the request.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Columns       int64   `json:"columns"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Batches       int64   `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	MaxBatch      int64   `json:"max_batch"`
	Errors        int64   `json:"errors"`
	IndexErrors   int64   `json:"index_errors"`
	CacheEntries  int     `json:"cache_entries"`
	IndexSize     int     `json:"index_size"`
	// IndexTombstones counts removed-but-not-yet-compacted slots.
	IndexTombstones int   `json:"index_tombstones"`
	Removes         int64 `json:"removes"`
	Compactions     int64 `json:"compactions"`
	// Shards is the catalog's shard count (0 without an index).
	Shards int `json:"shards"`
	// StoreColumns is the live size of the catalog store (0 without one);
	// StoreErrors counts journal/compaction failures — any non-zero value
	// means the durable catalog may be missing mutations.
	StoreColumns int     `json:"store_columns"`
	StoreErrors  int64   `json:"store_errors"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	hits, misses := s.ctr.hits.Load(), s.ctr.misses.Load()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	batches, batchCols := s.ctr.batches.Load(), s.ctr.batchCols.Load()
	var meanBatch float64
	if batches > 0 {
		meanBatch = float64(batchCols) / float64(batches)
	}
	p50, p90, p99 := s.lat.percentiles()
	live, tombstones := s.indexShape()
	storeCols, shards := 0, 0
	if s.cat != nil {
		shards = s.cat.Shards()
		storeCols = s.cat.StoreLen()
	}
	return Stats{
		//lint:gemallow detnondet uptime is operator telemetry in the stats body
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.ctr.requests.Load(),
		Columns:         s.ctr.columns.Load(),
		Hits:            hits,
		Misses:          misses,
		HitRate:         hitRate,
		Batches:         batches,
		MeanBatch:       meanBatch,
		MaxBatch:        s.ctr.maxBatch.Load(),
		Errors:          s.ctr.errors.Load(),
		IndexErrors:     s.ctr.indexErrors.Load(),
		CacheEntries:    s.cache.len(),
		IndexSize:       live,
		IndexTombstones: tombstones,
		Removes:         s.ctr.removes.Load(),
		Compactions:     s.ctr.compactions.Load(),
		Shards:          shards,
		StoreColumns:    storeCols,
		StoreErrors:     s.ctr.storeErrors.Load(),
		LatencyP50Ms:    p50 * 1000,
		LatencyP90Ms:    p90 * 1000,
		LatencyP99Ms:    p99 * 1000,
	}
}

// latencyRing keeps the last n request latencies for percentile reporting.
type latencyRing struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	count int
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]float64, n)}
}

func (r *latencyRing) record(seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = seconds
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

func (r *latencyRing) percentiles() (p50, p90, p99 float64) {
	r.mu.Lock()
	snap := make([]float64, r.count)
	copy(snap, r.buf[:r.count])
	r.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(snap)
	// Linear interpolation between the bracketing order statistics (the
	// h = p·(n−1) convention). Truncating h to an index instead rounds
	// every percentile down — on small samples p99 collapsed onto a much
	// lower order statistic (with 10 samples it reported the 9th-largest
	// value as p99).
	at := func(p float64) float64 {
		h := p * float64(len(snap)-1)
		lo := int(h)
		if lo >= len(snap)-1 {
			return snap[len(snap)-1]
		}
		return snap[lo] + (h-float64(lo))*(snap[lo+1]-snap[lo])
	}
	return at(0.50), at(0.90), at(0.99)
}
