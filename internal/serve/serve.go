// Package serve is Gem's warm-model embedding server: a fitted
// core.Embedder held in memory answers Embed requests for incoming columns
// without refitting — the paper's deployment mode (§3.1), where one
// corpus-level mixture serves many tables.
//
// Three mechanisms make the hot path cheap:
//
//   - A content-hash cache: each column embedding is keyed by SHA-256 of
//     (embedder fingerprint, header, value bits), so a repeated column is
//     answered without touching the GMM at all.
//   - Micro-batching: cache misses from concurrently arriving requests are
//     coalesced into one pooled Signatures pass over the shared
//     internal/pool worker pool — tables stream in incrementally and are
//     embedded in batch-sized strides, not via whole-catalog calls.
//   - An optional warm-index hook: every fresh embedding is appended to an
//     internal/ann index, so similarity search stays current as columns
//     stream through.
//
// With a catalog store configured the server stops being a cache and
// becomes a durable, mutable catalog service: columns join and leave via
// the explicit /columns API, every mutation is journaled to an
// internal/catalog store, and a restarted server replays snapshot+journal
// into the index and the embedding cache — no re-embedding, and
// byte-identical /embed and /search responses to the server that wrote
// the journal, because the replayed op sequence drives the deterministic
// mutable index through the exact same states. In store mode /embed and
// /search never enroll columns implicitly (the auto-feed of the plain
// warm-index mode is off): enrollment must be deterministic in the store
// alone, and whether an /embed was a cache hit or miss is not.
//
// Determinism contract: an embedding is a pure function of (column values,
// header, fitted embedder). Responses are therefore byte-identical whether
// they are served cold, from the cache, from a batch of one, or from a
// coalesced batch, at every worker-pool width. This is inherited from
// core.EmbedSignature, which standardizes statistical features against the
// corpus moments frozen at Fit time rather than against the incoming batch;
// request isolation follows too — a malformed column is rejected before it
// can poison a coalesced batch.
package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// ErrClosed is returned for requests against a closed server.
var ErrClosed = errors.New("serve: server closed")

// ErrInput is returned for malformed requests.
var ErrInput = errors.New("serve: invalid input")

// ErrNoIndex is returned by Search and the catalog mutators when the
// server runs without an index.
var ErrNoIndex = errors.New("serve: no search index configured")

// ErrNotFound is returned when a catalog mutation names no live column.
var ErrNotFound = errors.New("serve: column not found")

// Config parametrizes a Server.
type Config struct {
	// MaxBatch caps how many cache-missed columns one coalesced signature
	// pass embeds. Default 64.
	MaxBatch int
	// BatchWindow is how long the dispatcher waits after a batch opens for
	// more columns to coalesce. Default 200µs; negative disables waiting
	// (each pass takes only what is already queued).
	BatchWindow time.Duration
	// CacheSize bounds the column-embedding LRU cache. Default 4096;
	// negative disables caching.
	CacheSize int
	// QueueDepth bounds the miss queue; submitters block (backpressure)
	// when it is full. Default 1024.
	QueueDepth int
	// Index, when set, receives every fresh embedding (metric-normalized
	// like core.EmbedVectors) so the search layer stays warm. The server
	// owns all access to it from New on.
	Index ann.Index
	// IndexNames are the column names behind any entries already in Index,
	// aligned by id; missing names render as "@i". Mutually exclusive with
	// Store (a store replays its own names).
	IndexNames []string
	// Store, when set, makes the catalog durable: the store's recorded
	// add/remove history is replayed into Index (which must be empty) and
	// the embedding cache at startup, and every later index mutation is
	// journaled. The caller opens the store (bound to this embedder's
	// fingerprint) and closes it after Close.
	Store *catalog.Store
	// CompactEvery, when positive, compacts the catalog (index rebuild +
	// store snapshot) automatically once that many removes have
	// accumulated since the last compaction. 0 means compaction only via
	// CompactCatalog.
	CompactEvery int
	// LatencyWindow is how many recent request latencies the percentile
	// report keeps. Default 2048.
	LatencyWindow int
}

func (c *Config) fillDefaults() {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.BatchWindow == 0 {
		c.BatchWindow = 200 * time.Microsecond
	}
	if c.CacheSize == 0 {
		c.CacheSize = 4096
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 2048
	}
}

// Server hosts one warm embedder. Safe for concurrent use; create with New,
// release with Close.
type Server struct {
	emb *core.Embedder
	fp  string
	dim int
	// nameInKey records whether the column name enters the embedding
	// (contextual features): only then does it belong in the cache key.
	nameInKey bool
	cfg       Config
	cache     *cache
	b         *batcher

	idxMu    sync.RWMutex
	idx      ann.Index
	store    *catalog.Store
	idxNames []string
	idxKeyOf []cacheKey // aligned with index ids; zero key for preloaded entries
	idxLive  []bool     // aligned with index ids; false once tombstoned
	// idxSeen records every content key the auto-feed path has handled, so
	// a column that was explicitly removed is not silently resurrected by a
	// later /embed of the same content (only an explicit add brings it
	// back). idxIDOf maps the keys that are currently live to their id.
	idxSeen  map[cacheKey]bool
	idxIDOf  map[cacheKey]int
	removals int // removes since the last compaction (CompactEvery trigger)

	start time.Time
	ctr   counters
	lat   *latencyRing
}

// New validates that e can serve single columns (fitted, frozen moments
// when statistical features are selected, non-AE composition) and starts
// the dispatcher.
func New(e *core.Embedder, cfg Config) (*Server, error) {
	cfg.fillDefaults()
	fp, err := e.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("serve: embedder not servable: %w", err)
	}
	// Probe the single-column path once with a shaped zero signature: this
	// surfaces AE composition and missing moments at startup instead of on
	// the first request, and fixes the embedding dimensionality.
	probe := core.Signature{Column: "__probe__", MeanProbs: make([]float64, e.Model().K())}
	if m := e.Moments(); m != nil {
		probe.Stats = make([]float64, len(m.Mean))
	}
	row, err := e.EmbedSignature(probe)
	if err != nil {
		return nil, fmt.Errorf("serve: embedder not servable: %w", err)
	}
	s := &Server{
		emb:       e,
		fp:        fp,
		dim:       len(row),
		nameInKey: e.Config().Features.Has(core.Contextual),
		cfg:       cfg,
		cache:     newCache(cfg.CacheSize),
		b:         newBatcher(cfg.QueueDepth, cfg.MaxBatch, cfg.BatchWindow),
		start:     time.Now(),
		lat:       newLatencyRing(cfg.LatencyWindow),
	}
	if cfg.Store != nil && cfg.Index == nil {
		return nil, fmt.Errorf("%w: a catalog store needs an index to replay into", ErrInput)
	}
	if cfg.Index != nil {
		// A preloaded index must hold vectors of the served dimensionality,
		// or the warm-index hook would silently drop every Add and /search
		// would 500 on each request — fail at startup instead.
		if d := cfg.Index.Dim(); d != 0 && d != s.dim {
			return nil, fmt.Errorf("%w: index holds vectors of dim %d, embedder serves dim %d — was it built from this model and configuration?",
				ErrInput, d, s.dim)
		}
		s.idx = cfg.Index
		s.idxSeen = make(map[cacheKey]bool)
		s.idxIDOf = make(map[cacheKey]int)
		s.idxKeyOf = make([]cacheKey, s.idx.Len())
		s.idxNames = make([]string, s.idx.Len())
		s.idxLive = make([]bool, s.idx.Len())
		for i := range s.idxNames {
			s.idxLive[i] = true
			if i < len(cfg.IndexNames) {
				s.idxNames[i] = cfg.IndexNames[i]
			} else {
				s.idxNames[i] = fmt.Sprintf("@%d", i)
			}
		}
	}
	if cfg.Store != nil {
		if err := s.replayStore(cfg.Store, len(cfg.IndexNames) > 0); err != nil {
			return nil, err
		}
	}
	go s.b.run(s.process)
	return s, nil
}

// StoreIdentity derives the binding string a catalog store must be opened
// with for this (embedder fingerprint, index) pair: the fingerprint plus
// everything that defines the index's graph — metric, scan precision
// (reduced-precision kernels steer HNSW construction, so the graph is
// per-precision), and for HNSW the construction parameters (EfSearch
// excluded: it is a pure query-time knob). Binding the store to this
// composite makes a restart with a
// different -metric or -seed fail loudly instead of silently replaying
// the journal into a differently-shaped graph, which would break the
// byte-identical restart contract.
func StoreIdentity(fingerprint string, idx ann.Index) string {
	id := fingerprint + "|metric=" + idx.Metric().String() + "|prec=" + idx.Precision().String()
	if h, ok := idx.(*ann.HNSW); ok {
		c := h.Config()
		id += fmt.Sprintf("|hnsw:m=%d,efc=%d,seed=%d,batch=%d", c.M, c.EfConstruction, c.Seed, c.BatchSize)
	}
	return id
}

// replayStore drives the index and cache through the store's recorded
// history: snapshot entries first, then the journal ops, in order. Because
// the mutable index is deterministic in its op sequence, the result is the
// exact index state of the server that wrote the journal.
func (s *Server) replayStore(st *catalog.Store, haveNames bool) error {
	if haveNames {
		return fmt.Errorf("%w: IndexNames and Store are mutually exclusive (the store replays its own names)", ErrInput)
	}
	if s.idx.Len() != 0 {
		return fmt.Errorf("%w: store replay needs an empty index, got %d preloaded vectors", ErrInput, s.idx.Len())
	}
	if want := StoreIdentity(s.fp, s.idx); st.Fingerprint() != "" && st.Fingerprint() != want {
		return fmt.Errorf("%w: store belongs to embedder+index %.24s…, server runs %.24s… — was the model refitted or the index reconfigured? use a fresh store directory",
			ErrInput, st.Fingerprint(), want)
	}
	if d := st.Dim(); d != 0 && d != s.dim {
		return fmt.Errorf("%w: store holds vectors of dim %d, embedder serves dim %d", ErrInput, d, s.dim)
	}
	s.store = st
	// The snapshot section must be inserted with ONE batched Add: it was
	// written by a compaction, whose index rebuild inserts all survivors
	// in a single batched call, and HNSW graphs differ between batched and
	// one-at-a-time insertion of the same vectors (batch boundaries are
	// part of the graph definition). Journal ops, by contrast, were each
	// applied as individual calls originally, so they replay one at a
	// time. Mirroring the original call pattern is what makes the replayed
	// graph byte-identical to the pre-restart one.
	if snap := st.Snapshot(); len(snap) > 0 {
		vecs := make([][]float64, len(snap))
		for i, e := range snap {
			v := e.Vec
			if s.idx.Metric() == ann.Cosine {
				v = stats.L2Normalize(e.Vec)
			}
			vecs[i] = v
		}
		if err := s.idx.Add(vecs...); err != nil {
			return fmt.Errorf("serve: replaying store snapshot: %w", err)
		}
		for i, e := range snap {
			key := cacheKey(e.Key)
			// Warm the embedding cache too: a restarted server answers
			// /embed for every stored column without re-embedding it.
			s.cache.put(key, e.Vec)
			s.idxSeen[key] = true
			s.idxIDOf[key] = i
			s.idxNames = append(s.idxNames, e.Name)
			s.idxKeyOf = append(s.idxKeyOf, key)
			s.idxLive = append(s.idxLive, true)
		}
	}
	for _, op := range st.Ops() {
		key := cacheKey(op.Entry.Key)
		switch op.Kind {
		case catalog.OpAdd:
			s.cache.put(key, op.Entry.Vec)
			s.idxSeen[key] = true
			if _, err := s.indexAdd(key, op.Entry.Name, op.Entry.Vec, false); err != nil {
				return fmt.Errorf("serve: replaying store journal: %w", err)
			}
		case catalog.OpRemove:
			id, ok := s.idxIDOf[key]
			if !ok {
				return fmt.Errorf("serve: replaying store journal: remove of key %s that is not live", op.Entry.Key)
			}
			if err := s.removeID(id, false); err != nil {
				return fmt.Errorf("serve: replaying store journal: %w", err)
			}
		}
	}
	return nil
}

// Fingerprint returns the warm embedder's stable fingerprint (the cache-key
// component).
func (s *Server) Fingerprint() string { return s.fp }

// Dim returns the embedding dimensionality served.
func (s *Server) Dim() int { return s.dim }

// Close stops the dispatcher; queued and subsequent requests fail with
// ErrClosed.
func (s *Server) Close() { s.b.close() }

// Embed returns one embedding row per column, in request order. Rows are
// shared with the cache and must be treated as immutable. Cache-missed
// values are snapshotted at submission, so the caller may reuse its
// buffers as soon as the call returns — including after a context
// cancellation that abandons in-flight jobs. The whole request fails on
// the first malformed column (reported by name); columns are validated up
// front so a bad one is rejected before it can enter — and poison — a
// coalesced batch shared with other requests.
// key content-addresses one column for this server.
func (s *Server) key(col table.Column) cacheKey {
	name := ""
	if s.nameInKey {
		name = col.Name
	}
	return keyFor(s.fp, name, col)
}

func (s *Server) Embed(ctx context.Context, cols []table.Column) ([][]float64, error) {
	start := time.Now()
	if s.b.isClosed() {
		// Checked up front so even fully cached requests honour the Close
		// contract instead of quietly succeeding forever.
		return nil, ErrClosed
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("%w: no columns", ErrInput)
	}
	for _, col := range cols {
		if err := validateColumn(col); err != nil {
			return nil, err
		}
	}
	out := make([][]float64, len(cols))
	type pending struct {
		slot int
		j    *job
	}
	var waits []pending
	for i, col := range cols {
		key := s.key(col)
		if vec, ok := s.cache.get(key); ok {
			s.ctr.hits.Add(1)
			out[i] = vec
			continue
		}
		s.ctr.misses.Add(1)
		// Snapshot the values: the dispatcher may read them after this
		// call has returned (ctx cancellation abandons the job, not the
		// batch), and a caller-mutated slice would race AND be cached
		// under the key of the old bytes.
		vals := append([]float64(nil), col.Values...)
		j := &job{col: columnWork{name: col.Name, values: vals}, key: key, done: make(chan struct{})}
		if err := s.b.submit(ctx, j); err != nil {
			return nil, err
		}
		waits = append(waits, pending{slot: i, j: j})
	}
	for _, p := range waits {
		select {
		case <-p.j.done:
			if p.j.err != nil {
				return nil, fmt.Errorf("serve: column %q: %w", cols[p.slot].Name, p.j.err)
			}
			out[p.slot] = p.j.vec
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	s.ctr.requests.Add(1)
	s.ctr.columns.Add(int64(len(cols)))
	s.lat.record(time.Since(start).Seconds())
	return out, nil
}

// validateColumn enforces the request-isolation precondition.
func validateColumn(col table.Column) error {
	if len(col.Values) == 0 {
		return fmt.Errorf("%w: column %q is empty", ErrInput, col.Name)
	}
	for i, v := range col.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: column %q value %d is not finite", ErrInput, col.Name, i)
		}
	}
	return nil
}

// process embeds one coalesced batch: jobs are deduplicated by content key
// (concurrent identical misses are computed once), the unique columns go
// through one pooled Signatures pass, and every fresh row is cached and fed
// to the warm index. Each column's embedding is a pure per-column function
// (see the package comment), so splitting or merging batches cannot change
// any byte of any result.
func (s *Server) process(batch []*job) {
	groups := make(map[cacheKey][]*job, len(batch))
	var uniq []*job // first job per distinct key, in arrival order
	for _, j := range batch {
		if _, seen := groups[j.key]; !seen {
			uniq = append(uniq, j)
		}
		groups[j.key] = append(groups[j.key], j)
	}
	s.ctr.batches.Add(1)
	s.ctr.batchCols.Add(int64(len(uniq)))
	s.ctr.maxBatchObserved(int64(len(uniq)))

	sigs := make([]core.Signature, len(uniq))
	sigErrs := make([]error, len(uniq))
	if len(uniq) == 1 {
		// The single-column signature path: no dataset wrapping for the
		// common low-traffic case.
		sigs[0], sigErrs[0] = s.emb.ColumnSignature(table.Column{Name: uniq[0].col.name, Values: uniq[0].col.values})
	} else {
		ds := &table.Dataset{Name: "serve-batch", Columns: make([]table.Column, len(uniq))}
		for i, j := range uniq {
			ds.Columns[i] = table.Column{Name: j.col.name, Values: j.col.values}
		}
		batchSigs, err := s.emb.Signatures(ds)
		if err != nil {
			// The batched pass reports only its first failure; re-run each
			// column through the single-column path so every job gets its
			// own result or error and no column is failed by a neighbour.
			for i, j := range uniq {
				sigs[i], sigErrs[i] = s.emb.ColumnSignature(table.Column{Name: j.col.name, Values: j.col.values})
			}
		} else {
			copy(sigs, batchSigs)
		}
	}

	for i, j := range uniq {
		var vec []float64
		err := sigErrs[i]
		if err == nil {
			vec, err = s.emb.EmbedSignature(sigs[i])
		}
		if err == nil {
			s.cache.put(j.key, vec)
			s.feedIndex(j.key, j.col.name, vec)
		} else {
			s.ctr.errors.Add(1)
		}
		for _, dup := range groups[j.key] {
			dup.finish(vec, err)
		}
	}
}

// feedIndex appends a fresh embedding to the warm index, normalized for
// the index metric the way core.EmbedVectors does. The auto-feed path adds
// each content key at most once, ever: a column that was explicitly
// removed stays removed until an explicit AddColumns brings it back, no
// matter how often its content is re-embedded.
//
// With a store configured the auto-feed is disabled entirely: it only
// fires on cache misses, and hit-or-miss is transient server state — a
// restarted server would enroll a different column set. Durable catalogs
// take members only through the explicit AddColumns path.
func (s *Server) feedIndex(key cacheKey, name string, vec []float64) {
	if s.idx == nil || s.store != nil {
		return
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if s.idxSeen[key] {
		return
	}
	s.idxSeen[key] = true
	if _, err := s.indexAdd(key, name, vec, true); err != nil {
		s.ctr.indexErrors.Add(1)
	}
}

// indexAdd inserts one raw embedding into the index and, when journal is
// set, appends the matching add record to the store — journal FIRST, so a
// store failure aborts the mutation and the caller sees the error instead
// of an index entry that silently vanishes on restart. The caller holds
// idxMu (or is still inside New). Adding a key that is already live is a
// no-op returning the existing id.
func (s *Server) indexAdd(key cacheKey, name string, vec []float64, journal bool) (int, error) {
	if id, live := s.idxIDOf[key]; live {
		return id, nil
	}
	if journal && s.store != nil {
		op := catalog.Op{Kind: catalog.OpAdd, Entry: catalog.Entry{Key: catalog.Key(key), Name: name, Vec: vec}}
		if err := s.store.Append(op); err != nil {
			s.ctr.storeErrors.Add(1)
			return -1, fmt.Errorf("serve: journaling add: %w", err)
		}
	}
	v := vec
	if s.idx.Metric() == ann.Cosine {
		v = stats.L2Normalize(vec)
	}
	if err := s.idx.Add(v); err != nil {
		// The journal already has the add (the vector passed the store's
		// own validation, so this is out-of-memory territory): record the
		// divergence loudly rather than hiding it.
		if journal && s.store != nil {
			s.ctr.storeErrors.Add(1)
		}
		return -1, err
	}
	id := s.idx.Len() - 1
	s.idxIDOf[key] = id
	s.idxNames = append(s.idxNames, name)
	s.idxKeyOf = append(s.idxKeyOf, key)
	s.idxLive = append(s.idxLive, true)
	return id, nil
}

// removeID tombstones one live id and, when journal is set, first appends
// the matching remove record (same journal-first contract as indexAdd).
// The caller holds idxMu (or is inside New) and guarantees id is live.
func (s *Server) removeID(id int, journal bool) error {
	key := s.idxKeyOf[id]
	if journal && s.store != nil {
		op := catalog.Op{Kind: catalog.OpRemove, Entry: catalog.Entry{Key: catalog.Key(key)}}
		if err := s.store.Append(op); err != nil {
			s.ctr.storeErrors.Add(1)
			return fmt.Errorf("serve: journaling remove: %w", err)
		}
	}
	if err := s.idx.Remove(id); err != nil {
		if journal && s.store != nil {
			s.ctr.storeErrors.Add(1)
		}
		return err
	}
	s.idxLive[id] = false
	if key != (cacheKey{}) {
		delete(s.idxIDOf, key)
	}
	s.removals++
	return nil
}

// ColumnInfo describes one live indexed column.
type ColumnInfo struct {
	ID   int    `json:"id"`
	Name string `json:"name"`
	// Key is the hex content key; empty for entries preloaded from a bare
	// index file (they have no recorded content).
	Key string `json:"key,omitempty"`
}

// Columns lists the live indexed columns in id order.
func (s *Server) Columns() ([]ColumnInfo, error) {
	if s.idx == nil {
		return nil, ErrNoIndex
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	out := make([]ColumnInfo, 0, s.idx.Live())
	for id, live := range s.idxLive {
		if !live {
			continue
		}
		info := ColumnInfo{ID: id, Name: s.idxNames[id]}
		if s.idxKeyOf[id] != (cacheKey{}) {
			info.Key = catalog.Key(s.idxKeyOf[id]).String()
		}
		out = append(out, info)
	}
	return out, nil
}

// AddColumns embeds the given columns (through the cache and batcher like
// any Embed) and ensures each is live in the catalog, journaling fresh
// adds. It returns one index id per column, in request order. Unlike the
// auto-feed of Embed, an explicit add resurrects previously removed
// content.
//
// The catalog is content-addressed: a column whose content key matches a
// live entry resolves to that entry's id — under a non-contextual
// embedder two identically-valued columns are one catalog entry, listed
// under the name it was first added with. The returned ids are therefore
// the authoritative handle; remove by "@id" when names are ambiguous.
//
// On error, earlier columns of the batch may already be durably enrolled;
// because enrollment is content-addressed and idempotent, retrying the
// identical batch completes it without duplicates.
func (s *Server) AddColumns(ctx context.Context, cols []table.Column) ([]int, error) {
	if s.idx == nil {
		return nil, ErrNoIndex
	}
	rows, err := s.Embed(ctx, cols)
	if err != nil {
		return nil, err
	}
	ids := make([]int, len(cols))
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	for i, col := range cols {
		key := s.key(col)
		s.idxSeen[key] = true
		id, err := s.indexAdd(key, col.Name, rows[i], true)
		if err != nil {
			return nil, fmt.Errorf("serve: indexing column %q: %w", col.Name, err)
		}
		ids[i] = id
	}
	return ids, nil
}

// RemoveColumns removes live columns by reference — a header name (every
// live column with that name) or "@i" for a specific id — journaling each
// remove, and returns the removed ids in ascending order. Unknown
// references fail with ErrNotFound before anything is removed.
func (s *Server) RemoveColumns(refs ...string) ([]int, error) {
	if s.idx == nil {
		return nil, ErrNoIndex
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	seen := make(map[int]bool)
	var ids []int
	for _, ref := range refs {
		matched := false
		claim := func(id int) {
			// A ref that resolves to an id an earlier ref already claimed
			// is a matched no-op, not a miss: every column it names IS
			// being removed by this call.
			matched = true
			if !seen[id] {
				seen[id] = true
				ids = append(ids, id)
			}
		}
		if strings.HasPrefix(ref, "@") {
			id, err := strconv.Atoi(ref[1:])
			if err != nil {
				return nil, fmt.Errorf("%w: column reference %q (want @i or a header name)", ErrInput, ref)
			}
			if id >= 0 && id < len(s.idxLive) && s.idxLive[id] {
				claim(id)
			}
		} else {
			for id, live := range s.idxLive {
				if live && s.idxNames[id] == ref {
					claim(id)
				}
			}
		}
		if !matched {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, ref)
		}
	}
	sort.Ints(ids)
	for _, id := range ids {
		if err := s.removeID(id, true); err != nil {
			return nil, fmt.Errorf("serve: removing column %d: %w", id, err)
		}
	}
	s.ctr.removes.Add(int64(len(ids)))
	if s.cfg.CompactEvery > 0 && s.removals >= s.cfg.CompactEvery {
		// Best-effort: the removals above are already journaled and
		// applied, so a failed compaction must not turn this call into an
		// error — it stays retriable via CompactCatalog, and store
		// failures are counted inside compactLocked.
		_ = s.compactLocked()
		// Compaction reassigns ids; the returned ids refer to the
		// pre-compaction numbering the caller observed.
	}
	return ids, nil
}

// CompactCatalog rebuilds the index without its tombstones and folds the
// store journal into a fresh snapshot, keeping both aligned id-for-id. It
// returns the live column count.
func (s *Server) CompactCatalog() (int, error) {
	if s.idx == nil {
		return 0, ErrNoIndex
	}
	s.idxMu.Lock()
	defer s.idxMu.Unlock()
	if err := s.compactLocked(); err != nil {
		return 0, err
	}
	return s.idx.Live(), nil
}

// compactLocked is CompactCatalog under an already-held idxMu. The
// durable step runs FIRST: store.Compact only needs the live entries, so
// a store failure (full disk, dead handle) aborts the compaction before
// the in-memory index and id maps are touched — memory and disk never
// diverge on the common failure path.
func (s *Server) compactLocked() error {
	if s.store != nil {
		if s.store.Len() != s.idx.Live() {
			// The store's live order is the contract that makes restart
			// replay line up with the rebuilt index; a mismatch means a
			// journal append failed earlier and the store lost a mutation.
			s.ctr.storeErrors.Add(1)
		}
		if err := s.store.Compact(); err != nil {
			s.ctr.storeErrors.Add(1)
			return fmt.Errorf("serve: compacting store: %w", err)
		}
	}
	mapping, err := s.idx.Rebuild()
	if err != nil {
		return fmt.Errorf("serve: rebuilding index: %w", err)
	}
	names := make([]string, s.idx.Len())
	keys := make([]cacheKey, s.idx.Len())
	live := make([]bool, s.idx.Len())
	ids := make(map[cacheKey]int, s.idx.Len())
	for oldID, newID := range mapping {
		if newID < 0 {
			continue
		}
		names[newID] = s.idxNames[oldID]
		keys[newID] = s.idxKeyOf[oldID]
		live[newID] = true
		if keys[newID] != (cacheKey{}) {
			ids[keys[newID]] = newID
		}
	}
	s.idxNames, s.idxKeyOf, s.idxLive, s.idxIDOf = names, keys, live, ids
	s.removals = 0
	s.ctr.compactions.Add(1)
	return nil
}

// Hit is one search result: an indexed column and its metric distance to
// the query.
type Hit struct {
	ID   int     `json:"id"`
	Name string  `json:"name"`
	Dist float64 `json:"dist"`
}

// Search embeds the query column (through the cache and batcher like any
// Embed) and returns its k nearest indexed columns. Since serving a column
// feeds it into the warm index, the query's own content is excluded from
// its result.
func (s *Server) Search(ctx context.Context, col table.Column, k int) ([]Hit, error) {
	if s.idx == nil {
		return nil, ErrNoIndex
	}
	if k <= 0 {
		return nil, fmt.Errorf("%w: k = %d", ErrInput, k)
	}
	rows, err := s.Embed(ctx, []table.Column{col})
	if err != nil {
		return nil, err
	}
	q := rows[0]
	if s.idx.Metric() == ann.Cosine {
		q = stats.L2Normalize(q)
	}
	qKey := s.key(col)
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	// k+1 covers the query's own indexed copy being among the nearest.
	res, err := s.idx.Search(q, k+1)
	if err != nil {
		return nil, fmt.Errorf("serve: search: %w", err)
	}
	hits := make([]Hit, 0, k)
	for _, r := range res {
		if r.ID < len(s.idxKeyOf) && s.idxKeyOf[r.ID] == qKey {
			continue
		}
		hits = append(hits, Hit{ID: r.ID, Name: s.idxNames[r.ID], Dist: r.Dist})
		if len(hits) == k {
			break
		}
	}
	return hits, nil
}

// IndexLen returns the number of live indexed columns (0 without an
// index).
func (s *Server) IndexLen() int {
	if s.idx == nil {
		return 0
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.idx.Live()
}

// indexShape snapshots (live, tombstones) under the read lock.
func (s *Server) indexShape() (live, tombstones int) {
	if s.idx == nil {
		return 0, 0
	}
	s.idxMu.RLock()
	defer s.idxMu.RUnlock()
	return s.idx.Live(), s.idx.Len() - s.idx.Live()
}

// counters aggregates the hot-path statistics lock-free.
type counters struct {
	requests, columns   atomic.Int64
	hits, misses        atomic.Int64
	batches, batchCols  atomic.Int64
	maxBatch            atomic.Int64
	errors, indexErrors atomic.Int64
	removes             atomic.Int64
	compactions         atomic.Int64
	storeErrors         atomic.Int64
}

func (c *counters) maxBatchObserved(n int64) {
	for {
		cur := c.maxBatch.Load()
		if n <= cur || c.maxBatch.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Stats is a point-in-time snapshot of the server's operational counters —
// everything deliberately kept OUT of /embed responses so those stay a pure
// function of the request.
type Stats struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Requests      int64   `json:"requests"`
	Columns       int64   `json:"columns"`
	Hits          int64   `json:"hits"`
	Misses        int64   `json:"misses"`
	HitRate       float64 `json:"hit_rate"`
	Batches       int64   `json:"batches"`
	MeanBatch     float64 `json:"mean_batch"`
	MaxBatch      int64   `json:"max_batch"`
	Errors        int64   `json:"errors"`
	IndexErrors   int64   `json:"index_errors"`
	CacheEntries  int     `json:"cache_entries"`
	IndexSize     int     `json:"index_size"`
	// IndexTombstones counts removed-but-not-yet-compacted slots.
	IndexTombstones int   `json:"index_tombstones"`
	Removes         int64 `json:"removes"`
	Compactions     int64 `json:"compactions"`
	// StoreColumns is the live size of the catalog store (0 without one);
	// StoreErrors counts journal/compaction failures — any non-zero value
	// means the durable catalog may be missing mutations.
	StoreColumns int     `json:"store_columns"`
	StoreErrors  int64   `json:"store_errors"`
	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
}

// Stats snapshots the counters.
func (s *Server) Stats() Stats {
	hits, misses := s.ctr.hits.Load(), s.ctr.misses.Load()
	var hitRate float64
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	batches, batchCols := s.ctr.batches.Load(), s.ctr.batchCols.Load()
	var meanBatch float64
	if batches > 0 {
		meanBatch = float64(batchCols) / float64(batches)
	}
	p50, p90, p99 := s.lat.percentiles()
	live, tombstones := s.indexShape()
	storeCols := 0
	if s.store != nil {
		storeCols = s.store.Len()
	}
	return Stats{
		UptimeSeconds:   time.Since(s.start).Seconds(),
		Requests:        s.ctr.requests.Load(),
		Columns:         s.ctr.columns.Load(),
		Hits:            hits,
		Misses:          misses,
		HitRate:         hitRate,
		Batches:         batches,
		MeanBatch:       meanBatch,
		MaxBatch:        s.ctr.maxBatch.Load(),
		Errors:          s.ctr.errors.Load(),
		IndexErrors:     s.ctr.indexErrors.Load(),
		CacheEntries:    s.cache.len(),
		IndexSize:       live,
		IndexTombstones: tombstones,
		Removes:         s.ctr.removes.Load(),
		Compactions:     s.ctr.compactions.Load(),
		StoreColumns:    storeCols,
		StoreErrors:     s.ctr.storeErrors.Load(),
		LatencyP50Ms:    p50 * 1000,
		LatencyP90Ms:    p90 * 1000,
		LatencyP99Ms:    p99 * 1000,
	}
}

// latencyRing keeps the last n request latencies for percentile reporting.
type latencyRing struct {
	mu    sync.Mutex
	buf   []float64
	next  int
	count int
}

func newLatencyRing(n int) *latencyRing {
	return &latencyRing{buf: make([]float64, n)}
}

func (r *latencyRing) record(seconds float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = seconds
	r.next = (r.next + 1) % len(r.buf)
	if r.count < len(r.buf) {
		r.count++
	}
}

func (r *latencyRing) percentiles() (p50, p90, p99 float64) {
	r.mu.Lock()
	snap := make([]float64, r.count)
	copy(snap, r.buf[:r.count])
	r.mu.Unlock()
	if len(snap) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(snap)
	// Linear interpolation between the bracketing order statistics (the
	// h = p·(n−1) convention). Truncating h to an index instead rounds
	// every percentile down — on small samples p99 collapsed onto a much
	// lower order statistic (with 10 samples it reported the 9th-largest
	// value as p99).
	at := func(p float64) float64 {
		h := p * float64(len(snap)-1)
		lo := int(h)
		if lo >= len(snap)-1 {
			return snap[len(snap)-1]
		}
		return snap[lo] + (h-float64(lo))*(snap[lo+1]-snap[lo])
	}
	return at(0.50), at(0.90), at(0.99)
}
