package serve

// Tests of the durable mutable catalog: store replay at startup, the
// /columns lifecycle, compaction alignment, and the restart acceptance
// criterion — a server restarted from snapshot+journal answers /embed and
// /search byte-identically to the server that wrote them.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"math/rand"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/table"
)

// newCatalogServer builds a server on the shared test embedder with an
// empty HNSW index wired to a store in dir.
func newCatalogServer(t *testing.T, dir string, workers int, cfg Config) *Server {
	t.Helper()
	emb := fittedEmbedder(t, workers)
	fp, err := emb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	idx, err := ann.NewHNSW(ann.HNSWConfig{Seed: 4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	st, err := catalog.Open(dir, StoreIdentity(fp, idx))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	cfg.Index = idx
	cfg.Store = st
	s, err := New(emb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// doReq issues one request against a handler and returns status + body.
func doReq(t *testing.T, h http.Handler, method, path, body string) (int, []byte) {
	t.Helper()
	var r io.Reader
	if body != "" {
		r = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, path, r)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// mutateAndCapture drives one fixed mutation history against a fresh
// catalog server and then captures a fixed read-only request sequence. The
// restart test compares the captures byte for byte.
func mutateAndCapture(t *testing.T, s *Server, mutate bool) map[string][]byte {
	t.Helper()
	h := s.Handler()
	ds := testCatalog()
	if mutate {
		if _, err := s.AddColumns(context.Background(), ds.Columns[:9]); err != nil {
			t.Fatal(err)
		}
		if _, err := s.RemoveColumns(ds.Columns[2].Name, "@4"); err != nil {
			t.Fatal(err)
		}
	}
	out := make(map[string][]byte)
	capture := func(name, method, path, body string) {
		t.Helper()
		code, b := doReq(t, h, method, path, body)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", name, code, b)
		}
		out[name] = b
	}
	// The capture sequence touches only columns that both tests leave
	// enrolled and live: 3 as the search query, 6 and 7 for /embed. On a
	// restarted server every one of them must come straight out of the
	// store-warmed cache.
	capture("search", "POST", "/search",
		`{"column":`+colJSON(ds.Columns[3])+`,"k":5}`)
	capture("embed", "POST", "/embed", colsJSON(ds.Columns[6:8]))
	capture("columns", "GET", "/columns", "")
	return out
}

// colJSON renders one column as its wire object.
func colJSON(c table.Column) string {
	var b strings.Builder
	fmt.Fprintf(&b, `{"name":%q,"values":[`, c.Name)
	for j, v := range c.Values {
		if j > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, "%g", v)
	}
	b.WriteString("]}")
	return b.String()
}

// colsJSON renders columns as an /embed or /columns request body.
func colsJSON(cols []table.Column) string {
	var b strings.Builder
	b.WriteString(`{"columns":[`)
	for i, c := range cols {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(colJSON(c))
	}
	b.WriteString("]}")
	return b.String()
}

// TestCatalogRestartByteIdentical is the acceptance pin: a server
// restarted from snapshot+journal serves byte-identical /embed and
// /search (and /columns) responses to the pre-restart server, at several
// worker counts.
func TestCatalogRestartByteIdentical(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			dir := t.TempDir()
			a := newCatalogServer(t, dir, workers, Config{})
			want := mutateAndCapture(t, a, true)
			liveA := a.IndexLen()
			a.Close()
			if err := a.store.Close(); err != nil {
				t.Fatal(err)
			}

			// Restart: same store directory, fresh server. Workers differ on
			// purpose for the odd runs: responses must not depend on them.
			b := newCatalogServer(t, dir, workers, Config{})
			if b.IndexLen() != liveA {
				t.Fatalf("restarted live %d, want %d", b.IndexLen(), liveA)
			}
			// The restarted server must answer from the warmed cache: the
			// capture sequence includes previously stored columns.
			got := mutateAndCapture(t, b, false)
			for name, w := range want {
				if !bytes.Equal(w, got[name]) {
					t.Errorf("%s response changed across restart:\npre:  %s\npost: %s", name, w, got[name])
				}
			}
			st := b.Stats()
			if st.StoreErrors != 0 {
				t.Fatalf("store errors after restart: %+v", st)
			}
			// Every /embed of stored content after restart is a cache hit —
			// the "restart without re-embedding" guarantee. The capture
			// replayed 3 stored columns and 1 stored query column.
			if st.Misses != 0 {
				t.Errorf("restarted server re-embedded %d columns; stats %+v", st.Misses, st)
			}
		})
	}
}

// TestCatalogRestartAfterCompaction: compaction re-numbers ids; a restart
// from the compacted snapshot + later journal still matches the live
// server byte for byte.
func TestCatalogRestartAfterCompaction(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	a := newCatalogServer(t, dir, 2, Config{})
	if _, err := a.AddColumns(context.Background(), ds.Columns[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveColumns(ds.Columns[1].Name, ds.Columns[5].Name); err != nil {
		t.Fatal(err)
	}
	live, err := a.CompactCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if live != 6 {
		t.Fatalf("live after compaction %d, want 6", live)
	}
	// Post-compaction mutations land in the fresh journal.
	if _, err := a.AddColumns(context.Background(), ds.Columns[8:10]); err != nil {
		t.Fatal(err)
	}
	if _, err := a.RemoveColumns("@0"); err != nil {
		t.Fatal(err)
	}
	want := mutateAndCapture(t, a, false)
	wantStats := a.Stats()
	a.Close()
	if err := a.store.Close(); err != nil {
		t.Fatal(err)
	}

	b := newCatalogServer(t, dir, 2, Config{})
	got := mutateAndCapture(t, b, false)
	for name, w := range want {
		if !bytes.Equal(w, got[name]) {
			t.Errorf("%s response changed across post-compaction restart:\npre:  %s\npost: %s", name, w, got[name])
		}
	}
	st := b.Stats()
	if st.IndexSize != wantStats.IndexSize || st.IndexTombstones != wantStats.IndexTombstones {
		t.Fatalf("restarted shape %d/%d, want %d/%d",
			st.IndexSize, st.IndexTombstones, wantStats.IndexSize, wantStats.IndexTombstones)
	}
}

// TestCatalogCompactionAlignsStoreAndIndex: after interleaved adds,
// removes and a compaction, the store's live entries line up id-for-id
// with the index — searching any stored vector returns its own id.
func TestCatalogCompactionAlignsStoreAndIndex(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	s := newCatalogServer(t, dir, 2, Config{})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:10]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveColumns("@2", "@3", "@7"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CompactCatalog(); err != nil {
		t.Fatal(err)
	}
	live := s.store.Live()
	if len(live) != 7 || s.IndexLen() != 7 {
		t.Fatalf("store %d / index %d live entries, want 7", len(live), s.IndexLen())
	}
	cols, err := s.Columns()
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range live {
		if cols[i].ID != i || cols[i].Name != e.Name || cols[i].Key != e.Key.String() {
			t.Fatalf("entry %d misaligned: store %+v, server %+v", i, e, cols[i])
		}
	}
}

// TestCatalogRemoveSemantics: with a store, membership is explicit —
// /embed never enrolls (or resurrects) a column; AddColumns does. Unknown
// remove references 404.
func TestCatalogRemoveSemantics(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	s := newCatalogServer(t, dir, 2, Config{})
	col := ds.Columns[0]
	// Embedding is a pure read in store mode: no implicit enrollment,
	// because enrollment must be deterministic in the store and a cache
	// hit/miss is not.
	if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
		t.Fatal(err)
	}
	if s.IndexLen() != 0 {
		t.Fatalf("embed enrolled a column in store mode: %d", s.IndexLen())
	}
	ids, err := s.AddColumns(context.Background(), []table.Column{col})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 0 || s.IndexLen() != 1 {
		t.Fatalf("explicit add: ids %v live %d", ids, s.IndexLen())
	}
	// Adding the same content again is idempotent.
	ids, err = s.AddColumns(context.Background(), []table.Column{col})
	if err != nil || len(ids) != 1 || ids[0] != 0 || s.IndexLen() != 1 {
		t.Fatalf("re-add: ids %v live %d err %v", ids, s.IndexLen(), err)
	}
	if _, err := s.RemoveColumns(col.Name); err != nil {
		t.Fatal(err)
	}
	if s.IndexLen() != 0 {
		t.Fatalf("remove missed: %d", s.IndexLen())
	}
	// Re-embedding removed content must not bring it back; an explicit
	// re-add brings it back under a fresh id.
	if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
		t.Fatal(err)
	}
	if s.IndexLen() != 0 {
		t.Fatal("embed resurrected removed content")
	}
	ids, err = s.AddColumns(context.Background(), []table.Column{col})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 || ids[0] != 1 || s.IndexLen() != 1 {
		t.Fatalf("explicit re-add: ids %v live %d", ids, s.IndexLen())
	}
	if _, err := s.RemoveColumns("no-such-column"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown remove: %v", err)
	}
	if _, err := s.RemoveColumns("@99"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("out-of-range remove: %v", err)
	}
}

// TestCatalogAutoCompaction: CompactEvery triggers a compaction once
// enough removes accumulate.
func TestCatalogAutoCompaction(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	s := newCatalogServer(t, dir, 2, Config{CompactEvery: 3})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:8]); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RemoveColumns("@0", "@1"); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Compactions != 0 || st.IndexTombstones != 2 {
		t.Fatalf("compacted too early: %+v", st)
	}
	if _, err := s.RemoveColumns("@2"); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Compactions != 1 || st.IndexTombstones != 0 || st.IndexSize != 5 {
		t.Fatalf("auto-compaction missing: %+v", st)
	}
}

// TestCatalogConfigValidation: the startup error paths of the store
// wiring.
func TestCatalogConfigValidation(t *testing.T) {
	emb := fittedEmbedder(t, 2)
	fp, err := emb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	t.Run("store-without-index", func(t *testing.T) {
		st, err := catalog.Open(t.TempDir(), fp)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := New(emb, Config{Store: st}); !errors.Is(err, ErrInput) {
			t.Fatalf("want ErrInput, got %v", err)
		}
	})
	t.Run("store-with-preloaded-index", func(t *testing.T) {
		st, err := catalog.Open(t.TempDir(), fp)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		idx := ann.NewFlat(ann.Cosine)
		probe := make([]float64, 4)
		if err := idx.Add(probe); err != nil {
			t.Fatal(err)
		}
		if _, err := New(emb, Config{Store: st, Index: idx}); !errors.Is(err, ErrInput) {
			t.Fatalf("want ErrInput, got %v", err)
		}
	})
	t.Run("store-with-index-names", func(t *testing.T) {
		st, err := catalog.Open(t.TempDir(), fp)
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := New(emb, Config{Store: st, Index: ann.NewFlat(ann.Cosine), IndexNames: []string{"a"}}); !errors.Is(err, ErrInput) {
			t.Fatalf("want ErrInput, got %v", err)
		}
	})
	t.Run("fingerprint-mismatch", func(t *testing.T) {
		st, err := catalog.Open(t.TempDir(), "some-other-model")
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if _, err := New(emb, Config{Store: st, Index: ann.NewFlat(ann.Cosine)}); !errors.Is(err, ErrInput) {
			t.Fatalf("want ErrInput, got %v", err)
		}
	})
	t.Run("index-reconfigured", func(t *testing.T) {
		// Same embedder, different index seed: the graph the journal was
		// written against cannot be reproduced, so the open must fail.
		orig, err := ann.NewHNSW(ann.HNSWConfig{Seed: 4}, nil)
		if err != nil {
			t.Fatal(err)
		}
		st, err := catalog.Open(t.TempDir(), StoreIdentity(fp, orig))
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		reseeded, err := ann.NewHNSW(ann.HNSWConfig{Seed: 5}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := New(emb, Config{Store: st, Index: reseeded}); !errors.Is(err, ErrInput) {
			t.Fatalf("reconfigured index accepted: %v", err)
		}
	})
}

// TestCatalogHTTPLifecycle drives the /columns API end to end: list, add,
// remove, compact, and the 404/501 error paths.
func TestCatalogHTTPLifecycle(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	s := newCatalogServer(t, dir, 2, Config{})
	h := s.Handler()

	code, body := doReq(t, h, "GET", "/columns", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"live": 0`) {
		t.Fatalf("empty list: %d %s", code, body)
	}
	code, body = doReq(t, h, "POST", "/columns", colsJSON(ds.Columns[:4]))
	if code != http.StatusOK || !strings.Contains(string(body), `"ids": [`) {
		t.Fatalf("add: %d %s", code, body)
	}
	code, body = doReq(t, h, "DELETE", "/columns/"+ds.Columns[1].Name, "")
	if code != http.StatusOK {
		t.Fatalf("remove by name: %d %s", code, body)
	}
	code, body = doReq(t, h, "DELETE", "/columns/@0", "")
	if code != http.StatusOK {
		t.Fatalf("remove by id: %d %s", code, body)
	}
	code, body = doReq(t, h, "DELETE", "/columns/definitely-missing", "")
	if code != http.StatusNotFound {
		t.Fatalf("missing remove: %d %s", code, body)
	}
	code, body = doReq(t, h, "POST", "/columns/compact", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"live": 2`) {
		t.Fatalf("compact: %d %s", code, body)
	}
	code, body = doReq(t, h, "GET", "/columns", "")
	if code != http.StatusOK || !strings.Contains(string(body), `"live": 2`) {
		t.Fatalf("final list: %d %s", code, body)
	}

	// Without an index the whole surface 501s.
	bare := newTestServer(t, 2, Config{})
	code, _ = doReq(t, bare.Handler(), "GET", "/columns", "")
	if code != http.StatusNotImplemented {
		t.Fatalf("columns without index: %d", code)
	}
}

// TestStatsCountersUnderChurn hammers the catalog with concurrent embeds,
// adds and removes and then checks that the /stats counters and the
// index/store sizes are mutually consistent — the raciest invariants the
// idxMu protects.
func TestStatsCountersUnderChurn(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	s := newCatalogServer(t, dir, 4, Config{})

	var wg sync.WaitGroup
	var removedTotal, notFound int64
	var mu sync.Mutex
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				col := ds.Columns[(g*7+i)%len(ds.Columns)]
				switch i % 3 {
				case 0:
					if _, err := s.Embed(context.Background(), []table.Column{col}); err != nil {
						t.Errorf("embed: %v", err)
					}
				case 1:
					if _, err := s.AddColumns(context.Background(), []table.Column{col}); err != nil {
						t.Errorf("add: %v", err)
					}
				case 2:
					ids, err := s.RemoveColumns(col.Name)
					mu.Lock()
					if err == nil {
						removedTotal += int64(len(ids))
					} else if errors.Is(err, ErrNotFound) {
						notFound++
					} else {
						t.Errorf("remove: %v", err)
					}
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	st := s.Stats()
	if st.Errors != 0 || st.IndexErrors != 0 || st.StoreErrors != 0 {
		t.Fatalf("errors under churn: %+v", st)
	}
	if st.Removes != removedTotal {
		t.Fatalf("stats removes %d, observed %d", st.Removes, removedTotal)
	}
	cols, err := s.Columns()
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexSize != len(cols) {
		t.Fatalf("stats index size %d, listed %d", st.IndexSize, len(cols))
	}
	if st.StoreColumns != st.IndexSize {
		t.Fatalf("store %d vs index %d live columns", st.StoreColumns, st.IndexSize)
	}
	if int64(st.IndexTombstones) != st.Removes {
		t.Fatalf("tombstones %d, removes %d (no compaction ran)", st.IndexTombstones, st.Removes)
	}

	// The catalog is still fully functional: compaction drops every
	// tombstone and search answers.
	live, err := s.CompactCatalog()
	if err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.IndexTombstones != 0 || after.IndexSize != live || after.Compactions != 1 {
		t.Fatalf("post-compaction stats: %+v", after)
	}
	if live > 0 {
		if _, err := s.Search(context.Background(), ds.Columns[0], 3); err != nil {
			t.Fatalf("search after churn: %v", err)
		}
	}
}

// TestCatalogStoreFailurePropagates: when the journal cannot record a
// mutation, the mutation fails — the client must never get a success for
// a column that would vanish on restart.
func TestCatalogStoreFailurePropagates(t *testing.T) {
	dir := t.TempDir()
	ds := testCatalog()
	s := newCatalogServer(t, dir, 2, Config{})
	if _, err := s.AddColumns(context.Background(), ds.Columns[:2]); err != nil {
		t.Fatal(err)
	}
	// Kill the store out from under the server (shutdown race stand-in).
	if err := s.store.Close(); err != nil {
		t.Fatal(err)
	}
	before := s.IndexLen()
	if _, err := s.AddColumns(context.Background(), ds.Columns[2:3]); err == nil {
		t.Fatal("add with a dead store must fail")
	}
	if s.IndexLen() != before {
		t.Fatalf("failed add still mutated the index: %d -> %d", before, s.IndexLen())
	}
	if _, err := s.RemoveColumns("@0"); err == nil {
		t.Fatal("remove with a dead store must fail")
	}
	if s.IndexLen() != before || s.Stats().IndexTombstones != 0 {
		t.Fatal("failed remove still mutated the index")
	}
	if s.Stats().StoreErrors == 0 {
		t.Fatal("store errors not counted")
	}
}

// TestCatalogReplayMatchesCompactedGraph pins the replay-order contract
// at a size where it matters: HNSW graphs DIFFER between one batched
// insertion and one-at-a-time insertion of the same ~300 vectors, a
// compaction rebuilds the index with a batched insert, and the restart
// replay must mirror that — batched for the snapshot section, one at a
// time for the journal — or the restarted graph (and with it /search)
// diverges. Vectors are injected through the store directly because real
// Gem embeddings are too clustered at test sizes to expose the
// asymmetry.
func TestCatalogReplayMatchesCompactedGraph(t *testing.T) {
	const dim = 15 // the test embedder's output dimensionality
	rng := rand.New(rand.NewSource(99))
	randVec := func() []float64 {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		return v
	}
	key := func(i int) catalog.Key {
		var k catalog.Key
		k[0], k[1] = byte(i), byte(i>>8)
		return k
	}

	emb := fittedEmbedder(t, 2)
	fp, err := emb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	idxCfg := ann.HNSWConfig{Metric: ann.Euclidean, Seed: 4}
	idProbe, err := ann.NewHNSW(idxCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	identity := StoreIdentity(fp, idProbe)
	dir := t.TempDir()
	st, err := catalog.Open(dir, identity)
	if err != nil {
		t.Fatal(err)
	}
	// Pre-compaction history: 300 adds, 4 removes, then a compaction —
	// exactly what a server's CompactCatalog leaves behind (the store's
	// live order IS the rebuilt index's id order).
	vecs := make(map[catalog.Key][]float64)
	for i := 0; i < 300; i++ {
		e := catalog.Entry{Key: key(i), Name: fmt.Sprintf("c%d", i), Vec: randVec()}
		vecs[e.Key] = e.Vec
		if err := st.Append(catalog.Op{Kind: catalog.OpAdd, Entry: e}); err != nil {
			t.Fatal(err)
		}
	}
	for _, i := range []int{3, 17, 130, 250} {
		if err := st.Append(catalog.Op{Kind: catalog.OpRemove, Entry: catalog.Entry{Key: key(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	// Post-compaction journal traffic: more adds and a remove.
	for i := 300; i < 320; i++ {
		e := catalog.Entry{Key: key(i), Name: fmt.Sprintf("c%d", i), Vec: randVec()}
		vecs[e.Key] = e.Vec
		if err := st.Append(catalog.Op{Kind: catalog.OpAdd, Entry: e}); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append(catalog.Op{Kind: catalog.OpRemove, Entry: catalog.Entry{Key: key(5)}}); err != nil {
		t.Fatal(err)
	}
	snap, ops := st.Snapshot(), st.Ops()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reference: the graph the pre-restart server holds — the compaction's
	// batched rebuild of the snapshot, then the journal ops as the
	// individual calls they originally were. Euclidean metric so raw store
	// vectors feed the index unchanged.
	want, err := ann.NewHNSW(idxCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	snapVecs := make([][]float64, len(snap))
	idOf := make(map[catalog.Key]int)
	for i, e := range snap {
		snapVecs[i] = e.Vec
		idOf[e.Key] = i
	}
	if err := want.Add(snapVecs...); err != nil {
		t.Fatal(err)
	}
	for _, op := range ops {
		switch op.Kind {
		case catalog.OpAdd:
			if err := want.Add(vecs[op.Entry.Key]); err != nil {
				t.Fatal(err)
			}
			idOf[op.Entry.Key] = want.Len() - 1
		case catalog.OpRemove:
			if err := want.Remove(idOf[op.Entry.Key]); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Sanity: at this size the order of insertion genuinely shapes the
	// graph — a fully one-at-a-time build differs — so a replay that used
	// the wrong call pattern could not pass the comparison below.
	naive, err := ann.NewHNSW(idxCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range snapVecs {
		if err := naive.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	var nb, wb0 bytes.Buffer
	if err := naive.Save(&nb); err != nil {
		t.Fatal(err)
	}
	ref, err := ann.NewHNSW(idxCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.Add(snapVecs...); err != nil {
		t.Fatal(err)
	}
	if err := ref.Save(&wb0); err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(nb.Bytes(), wb0.Bytes()) {
		t.Fatal("test setup too small: batched and incremental builds coincide")
	}

	// Restart: the server replays the store into an empty index; the
	// resulting graph must equal the reference byte for byte.
	st2, err := catalog.Open(dir, identity)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	idx, err := ann.NewHNSW(idxCfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(emb, Config{Index: idx, Store: st2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	var wantB, gotB bytes.Buffer
	if err := want.Save(&wantB); err != nil {
		t.Fatal(err)
	}
	if err := idx.Save(&gotB); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(wantB.Bytes(), gotB.Bytes()) {
		t.Error("replayed graph differs from the pre-restart (compacted + journaled) graph")
	}
	if srv.IndexLen() != want.Live() {
		t.Fatalf("replayed live %d, want %d", srv.IndexLen(), want.Live())
	}
}
