package serve

// Satellite audit of the HTTP error contract: every error response — the
// handlers' own, the mux's 404/405, the body-cap 413 and the proxy's 502 —
// carries Content-Type application/json and the {"error": ...} shape.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
)

// checkJSONError asserts one error response: expected status, JSON
// Content-Type, non-empty {"error": ...} body.
func checkJSONError(t *testing.T, name string, resp *http.Response, wantCode int) {
	t.Helper()
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s: reading body: %v", name, err)
	}
	if resp.StatusCode != wantCode {
		t.Errorf("%s: status %d, want %d (body %q)", name, resp.StatusCode, wantCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("%s: Content-Type %q, want application/json", name, ct)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil {
		t.Errorf("%s: body is not the JSON error shape: %q", name, body)
	} else if e.Error == "" {
		t.Errorf("%s: empty error message in %q", name, body)
	}
}

func do(t *testing.T, method, url, body string) *http.Response {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestHTTPErrorContract drives every server error path in one table.
func TestHTTPErrorContract(t *testing.T) {
	plain := httpServer(t, 1, Config{MaxBodyBytes: 256})
	indexed := httpServer(t, 1, Config{Index: ann.NewFlat(ann.Cosine)})

	big := `{"columns":[{"name":"x","values":[` + strings.Repeat("1,", 400) + `1]}]}`
	cases := []struct {
		name     string
		base     *httptest.Server
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"mux 405 on GET /embed", plain, http.MethodGet, "/embed", "", http.StatusMethodNotAllowed},
		{"mux 405 on DELETE /search", plain, http.MethodDelete, "/search", "", http.StatusMethodNotAllowed},
		{"mux 405 on PUT /columns", indexed, http.MethodPut, "/columns", "", http.StatusMethodNotAllowed},
		{"mux 405 on POST /healthz", plain, http.MethodPost, "/healthz", "", http.StatusMethodNotAllowed},
		{"mux 404 on unknown path", plain, http.MethodGet, "/nope", "", http.StatusNotFound},
		{"malformed JSON", plain, http.MethodPost, "/embed", "{not json", http.StatusBadRequest},
		{"empty column", plain, http.MethodPost, "/embed", `{"columns":[{"name":"x","values":[]}]}`, http.StatusBadRequest},
		{"no columns", plain, http.MethodPost, "/embed", `{"columns":[]}`, http.StatusBadRequest},
		{"body over the cap", plain, http.MethodPost, "/embed", big, http.StatusRequestEntityTooLarge},
		{"search without an index", plain, http.MethodPost, "/search", `{"column":{"name":"x","values":[1,2]},"k":3}`, http.StatusNotImplemented},
		{"columns without an index", plain, http.MethodGet, "/columns", "", http.StatusNotImplemented},
		{"remove of unknown ref", indexed, http.MethodDelete, "/columns/ghost", "", http.StatusNotFound},
		{"negative k", indexed, http.MethodPost, "/search", `{"column":{"name":"x","values":[1,2]},"k":-1}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		checkJSONError(t, c.name, do(t, c.method, c.base.URL+c.path, c.body), c.wantCode)
	}
}

// TestProxyErrorContract covers the proxy's error paths, including the 502
// from a dead backend.
func TestProxyErrorContract(t *testing.T) {
	p, err := NewProxy(ProxyConfig{
		Backends:     []string{"http://127.0.0.1:1"}, // nothing listens there
		MaxBodyBytes: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p.Handler())
	defer ts.Close()

	big := `{"column":{"name":"x","values":[` + strings.Repeat("1,", 400) + `1]},"k":3}`
	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantCode int
	}{
		{"mux 405 on GET /search", http.MethodGet, "/search", "", http.StatusMethodNotAllowed},
		{"mux 404 on unknown path", http.MethodGet, "/nope", "", http.StatusNotFound},
		{"malformed JSON", http.MethodPost, "/search", "{not json", http.StatusBadRequest},
		{"negative k", http.MethodPost, "/search", `{"column":{"name":"x","values":[1]},"k":-1}`, http.StatusBadRequest},
		{"body over the cap", http.MethodPost, "/search", big, http.StatusRequestEntityTooLarge},
		{"dead backend", http.MethodPost, "/search", `{"column":{"name":"x","values":[1,2]},"k":3}`, http.StatusBadGateway},
		{"dead backend healthz", http.MethodGet, "/healthz", "", http.StatusBadGateway},
	}
	for _, c := range cases {
		checkJSONError(t, c.name, do(t, c.method, ts.URL+c.path, c.body), c.wantCode)
	}
}
