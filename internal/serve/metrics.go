package serve

// Metrics and request tracing for the HTTP layer. Everything here is
// observational: instruments are obs package atomics (nil-safe no-ops when
// metrics are off), span timings live in the request context and surface
// only through /metrics and the slow-request log — never in a response
// body, which is what keeps /embed and /search byte-identical with
// instrumentation on or off.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/gem-embeddings/gem/internal/obs"
)

// serveMetrics bundles the server's hot-path instruments. Built from a
// possibly-nil registry: with metrics off every instrument is nil and every
// operation no-ops, so call sites carry no flag checks.
type serveMetrics struct {
	reg *obs.Registry

	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	batches     *obs.Counter
	batchCols   *obs.Counter
	embedErrors *obs.Counter

	stageCacheLookup *obs.Histogram
	stageBatchWait   *obs.Histogram
	stageSignatures  *obs.Histogram
	stageIndexAdd    *obs.Histogram

	stageSearchEmbed *obs.Histogram
	stageScatter     *obs.Histogram
	stageMerge       *obs.Histogram

	searchBatchSize *obs.Histogram
}

// batchSizeBuckets covers the queries-per-request histogram: powers of two
// from single-query requests up past the largest sensible client batch.
func batchSizeBuckets() []float64 {
	return []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
}

func newServeMetrics(reg *obs.Registry) *serveMetrics {
	stage := func(name string) *obs.Histogram {
		return reg.Histogram("gem_embed_stage_seconds",
			"Wall-clock of one embed hot-path stage.",
			obs.Labels{"stage": name}, obs.DefBuckets())
	}
	searchStage := func(name string) *obs.Histogram {
		return reg.Histogram("gem_search_stage_seconds",
			"Wall-clock of one search hot-path stage.",
			obs.Labels{"stage": name}, obs.DefBuckets())
	}
	return &serveMetrics{
		reg:              reg,
		cacheHits:        reg.Counter("gem_cache_hits_total", "Embedding cache hits.", nil),
		cacheMisses:      reg.Counter("gem_cache_misses_total", "Embedding cache misses.", nil),
		batches:          reg.Counter("gem_batches_total", "Coalesced signature batches processed.", nil),
		batchCols:        reg.Counter("gem_batch_columns_total", "Distinct columns embedded across batches.", nil),
		embedErrors:      reg.Counter("gem_embed_errors_total", "Columns that failed to embed.", nil),
		stageCacheLookup: stage("cache_lookup"),
		stageBatchWait:   stage("batch_wait"),
		stageSignatures:  stage("signatures"),
		stageIndexAdd:    stage("index_add"),
		stageSearchEmbed: searchStage("embed"),
		stageScatter:     searchStage("scatter"),
		stageMerge:       searchStage("merge"),
		searchBatchSize: reg.Histogram("gem_search_batch_size",
			"Queries answered per /search request.", nil, batchSizeBuckets()),
	}
}

// httpRequest records one finished HTTP request on the shared per-endpoint
// families. Lazy get-or-create keeps the label space (endpoint × code)
// driven by traffic; the registry dedupes, and a nil registry no-ops.
func (m *serveMetrics) httpRequest(endpoint string, code int, seconds float64) {
	if m.reg == nil {
		return
	}
	m.reg.Counter("gem_http_requests_total", "HTTP requests by endpoint.",
		obs.Labels{"endpoint": endpoint}).Inc()
	m.reg.Histogram("gem_http_request_seconds", "HTTP request latency by endpoint.",
		obs.Labels{"endpoint": endpoint}, obs.DefBuckets()).Observe(seconds)
	if code >= 400 {
		m.reg.Counter("gem_http_errors_total", "HTTP error responses by endpoint and status code.",
			obs.Labels{"endpoint": endpoint, "code": strconv.Itoa(code)}).Inc()
	}
}

// registerMetrics installs the registry-resident series that need server
// state: uptime, build identity, cache and catalog gauges, and the
// per-shard search observer. Called once from New.
func (s *Server) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	goVersion, modVersion, revision := obs.BuildInfo()
	reg.Gauge("gem_build_info", "Build identity; value is always 1.",
		obs.Labels{"go_version": goVersion, "version": modVersion, "revision": revision}).Set(1)
	reg.GaugeFunc("gem_uptime_seconds", "Seconds since the server started.", nil,
		//lint:gemallow detnondet uptime gauge is scrape-only telemetry
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("gem_cache_entries", "Live embedding cache entries.", nil,
		func() float64 { return float64(s.cache.len()) })
	if s.cat == nil {
		return
	}
	reg.GaugeFunc("gem_catalog_live_columns", "Live indexed columns.", nil,
		func() float64 { live, _ := s.indexShape(); return float64(live) })
	reg.GaugeFunc("gem_catalog_tombstones", "Removed-but-not-compacted index slots.", nil,
		func() float64 { _, tombs := s.indexShape(); return float64(tombs) })
	shardHists := make([]*obs.Histogram, s.cat.Shards())
	for i := range shardHists {
		shardHists[i] = reg.Histogram("gem_search_shard_seconds",
			"Per-shard index search latency inside the scatter phase.",
			obs.Labels{"shard": strconv.Itoa(i)}, obs.DefBuckets())
	}
	s.cat.SetSearchObserver(func(shard int, seconds float64) {
		shardHists[shard].Observe(seconds)
	})
}

// spanSet accumulates named stage durations for one request. Stages of one
// request can be recorded from the request goroutine and the dispatcher
// goroutine concurrently, hence the mutex. A nil *spanSet no-ops.
type spanSet struct {
	mu    sync.Mutex
	order []string
	durs  map[string]time.Duration
}

func (ss *spanSet) add(name string, d time.Duration) {
	if ss == nil {
		return
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if ss.durs == nil {
		ss.durs = make(map[string]time.Duration, 8)
	}
	if _, seen := ss.durs[name]; !seen {
		ss.order = append(ss.order, name)
	}
	ss.durs[name] += d
}

// format renders "name=1.234ms name=0.017ms" in first-recorded order.
func (ss *spanSet) format() string {
	if ss == nil {
		return ""
	}
	ss.mu.Lock()
	defer ss.mu.Unlock()
	var b strings.Builder
	for i, name := range ss.order {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%.3fms", name, ss.durs[name].Seconds()*1000)
	}
	return b.String()
}

type spanCtxKey struct{}

func withSpans(ctx context.Context, ss *spanSet) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, ss)
}

// spansFrom returns the request's span collector, or nil (no-op) when the
// request was not traced.
func spansFrom(ctx context.Context) *spanSet {
	ss, _ := ctx.Value(spanCtxKey{}).(*spanSet)
	return ss
}

// endpointLabel collapses a request path onto a bounded endpoint label so
// client-chosen path segments cannot explode the metric label space.
func endpointLabel(path string) string {
	switch path {
	case "/embed", "/search", "/columns", "/columns/compact", "/healthz", "/stats", "/metrics":
		return path
	}
	if strings.HasPrefix(path, "/columns/") {
		return "/columns/{ref}"
	}
	return "other"
}

// responseRecorder captures the response status for the request metrics
// and normalizes error bodies: a ≥400 response whose handler did not set a
// JSON Content-Type (the mux's own text/plain 404/405, http.Error callers)
// is buffered and rewritten as the API's standard {"error": ...} body.
type responseRecorder struct {
	http.ResponseWriter
	code        int
	wroteHeader bool
	intercept   bool
	buf         bytes.Buffer
}

// WriteHeader is part of the JSON error interception layer: non-JSON
// error responses are held back and rewritten by flush.
//
//gem:errwriter
func (r *responseRecorder) WriteHeader(code int) {
	if r.wroteHeader {
		return
	}
	r.wroteHeader = true
	r.code = code
	if code >= 400 && !strings.HasPrefix(r.Header().Get("Content-Type"), "application/json") {
		// Hold the header back: the body arrives first (buffered), then
		// flush rewrites it as JSON.
		r.intercept = true
		return
	}
	r.ResponseWriter.WriteHeader(code)
}

// Write is part of the JSON error interception layer: intercepted error
// bodies buffer here until flush rewrites them.
//
//gem:errwriter
func (r *responseRecorder) Write(p []byte) (int, error) {
	if !r.wroteHeader {
		r.WriteHeader(http.StatusOK)
	}
	if r.intercept {
		return r.buf.Write(p)
	}
	return r.ResponseWriter.Write(p)
}

// flush completes an intercepted error response. Must be called after the
// handler returns.
//
//gem:errwriter
func (r *responseRecorder) flush() {
	if !r.wroteHeader {
		r.code = http.StatusOK
		return
	}
	if !r.intercept {
		return
	}
	msg := strings.TrimSpace(r.buf.String())
	if msg == "" {
		msg = http.StatusText(r.code)
	}
	r.Header().Set("Content-Type", "application/json")
	r.Header().Del("Content-Length")
	r.ResponseWriter.WriteHeader(r.code)
	_ = json.NewEncoder(r.ResponseWriter).Encode(errorResponse{Error: msg})
}

// httpInstrumentor is the outermost middleware shared by the shard server
// and the proxy: per-endpoint request/error counters and latency
// histograms, JSON-normalized error bodies, and (server only) span tracing
// plus the slow-request log.
type httpInstrumentor struct {
	met           *serveMetrics
	trace         bool
	slowThreshold time.Duration
	slowLog       *log.Logger
	reqID         atomic.Int64
}

func (ins *httpInstrumentor) wrap(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := endpointLabel(r.URL.Path)
		var spans *spanSet
		if ins.trace {
			spans = &spanSet{}
			r = r.WithContext(withSpans(r.Context(), spans))
		}
		rec := &responseRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r)
		rec.flush()
		total := time.Since(start)
		ins.met.httpRequest(endpoint, rec.code, total.Seconds())
		if ins.slowThreshold > 0 && total >= ins.slowThreshold {
			// The request id exists only in this log line — handing it to
			// the response would break the byte-identity contract.
			ins.slowLog.Printf("slow request id=%d endpoint=%s method=%s status=%d total_ms=%.3f stages=[%s]",
				ins.reqID.Add(1), endpoint, r.Method, rec.code, total.Seconds()*1000, spans.format())
		}
	})
}
