package som

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/gem-embeddings/gem/internal/mathx"
)

func bimodal(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = rng.NormFloat64()
		} else {
			xs[i] = 20 + rng.NormFloat64()
		}
	}
	return xs
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil, Config{Units: 3}); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
	if _, err := Train([]float64{1}, Config{Units: 0}); !errors.Is(err, ErrInput) {
		t.Errorf("Units=0: want ErrInput, got %v", err)
	}
	if _, err := Train([]float64{math.NaN()}, Config{Units: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("NaN: want ErrInput, got %v", err)
	}
}

func TestTrainPrototypesCoverData(t *testing.T) {
	xs := bimodal(600, 1)
	m, err := Train(xs, Config{Units: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Prototypes) != 10 {
		t.Fatalf("got %d prototypes, want 10", len(m.Prototypes))
	}
	if !sort.Float64sAreSorted(m.Prototypes) {
		t.Error("prototypes must be sorted ascending")
	}
	// Some prototypes near each mode.
	nearLow, nearHigh := false, false
	for _, p := range m.Prototypes {
		if math.Abs(p) < 3 {
			nearLow = true
		}
		if math.Abs(p-20) < 3 {
			nearHigh = true
		}
	}
	if !nearLow || !nearHigh {
		t.Errorf("prototypes %v do not cover both modes", m.Prototypes)
	}
}

func TestTrainDeterministic(t *testing.T) {
	xs := bimodal(200, 2)
	a, err := Train(xs, Config{Units: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(xs, Config{Units: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Prototypes {
		if a.Prototypes[i] != b.Prototypes[i] {
			t.Fatalf("same seed differs: %v vs %v", a.Prototypes, b.Prototypes)
		}
	}
}

func TestTrainSingleUnit(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	m, err := Train(xs, Config{Units: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The single prototype should settle near the mean.
	if math.Abs(m.Prototypes[0]-3) > 1.5 {
		t.Errorf("single prototype = %v, want near 3", m.Prototypes[0])
	}
}

func TestTrainConstantData(t *testing.T) {
	xs := []float64{5, 5, 5, 5}
	m, err := Train(xs, Config{Units: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range m.Prototypes {
		if math.Abs(p-5) > 1e-6 {
			t.Errorf("constant data prototype = %v, want 5", p)
		}
	}
	if m.Bandwidth <= 0 {
		t.Errorf("bandwidth must stay positive, got %v", m.Bandwidth)
	}
	// Activations must still be a valid distribution.
	a := m.Activations(5)
	var s float64
	for _, v := range a {
		s += v
	}
	if !mathx.AlmostEqual(s, 1, 1e-9) {
		t.Errorf("activations sum = %v, want 1", s)
	}
}

func TestBMUPicksNearest(t *testing.T) {
	m := &Map{Prototypes: []float64{0, 10, 20}, Bandwidth: 1}
	tests := []struct {
		x    float64
		want int
	}{{-5, 0}, {4, 0}, {6, 1}, {14, 1}, {16, 2}, {100, 2}}
	for _, tc := range tests {
		if got := m.BMU(tc.x); got != tc.want {
			t.Errorf("BMU(%v) = %d, want %d", tc.x, got, tc.want)
		}
	}
}

func TestActivationsSumToOneProperty(t *testing.T) {
	xs := bimodal(300, 3)
	m, err := Train(xs, Config{Units: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		x = math.Mod(x, 100)
		if math.IsNaN(x) {
			return true
		}
		a := m.Activations(x)
		var s float64
		for _, v := range a {
			if v < 0 {
				return false
			}
			s += v
		}
		return mathx.AlmostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestActivationsFarValue(t *testing.T) {
	m := &Map{Prototypes: []float64{0, 1}, Bandwidth: 0.001}
	a := m.Activations(1e9)
	// Astronomically far: all mass on the BMU.
	if a[1] != 1 || a[0] != 0 {
		t.Errorf("far-value activations = %v, want [0 1]", a)
	}
}

func TestMeanActivations(t *testing.T) {
	xs := bimodal(600, 4)
	m, err := Train(xs, Config{Units: 6, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// A column near the low mode should put most mass on low prototypes.
	col := []float64{-1, 0, 1, 0.5, -0.5}
	ma, err := m.MeanActivations(col)
	if err != nil {
		t.Fatal(err)
	}
	var s, lowMass float64
	for u, v := range ma {
		s += v
		if m.Prototypes[u] < 10 {
			lowMass += v
		}
	}
	if !mathx.AlmostEqual(s, 1, 1e-9) {
		t.Errorf("mean activations sum = %v, want 1", s)
	}
	if lowMass < 0.9 {
		t.Errorf("low-mode mass = %v, want > 0.9", lowMass)
	}
	if _, err := m.MeanActivations(nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty column: want ErrInput, got %v", err)
	}
}

func TestDistinctModesGetDistinctEmbeddings(t *testing.T) {
	xs := bimodal(600, 5)
	m, err := Train(xs, Config{Units: 10, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lowCol := []float64{-1, 0, 1}
	highCol := []float64{19, 20, 21}
	a, _ := m.MeanActivations(lowCol)
	b, _ := m.MeanActivations(highCol)
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	cos := dot / math.Sqrt(na*nb)
	if cos > 0.3 {
		t.Errorf("different modes should have dissimilar activations, cos = %v", cos)
	}
}
