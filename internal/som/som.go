// Package som implements a one-dimensional Self-Organizing Map (Kohonen
// map). It is the prototype-induction substrate of the Squashing_SOM
// baseline (paper §4.1.3): log-squashed numeric values are projected onto a
// 1-D grid of prototypes that preserves topological ordering; a column's
// embedding is its soft similarity to each prototype.
package som

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrInput is returned for invalid training inputs.
var ErrInput = errors.New("som: invalid input")

// Config controls SOM training.
type Config struct {
	// Units is the number of prototypes on the 1-D grid (required, >= 1).
	Units int
	// Epochs is the number of passes over the training data. Default 20.
	Epochs int
	// LearningRate is the initial learning rate, decayed linearly to ~0.
	// Default 0.5.
	LearningRate float64
	// Radius is the initial neighbourhood radius in grid units, decayed
	// exponentially. Default Units/2.
	Radius float64
	// Seed makes training deterministic.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.5
	}
	if c.Radius <= 0 {
		c.Radius = math.Max(float64(c.Units)/2, 1)
	}
}

// Map is a trained 1-D SOM over scalar inputs.
type Map struct {
	// Prototypes are the learned codebook values, sorted ascending (the 1-D
	// topology makes the trained map monotone up to noise; we sort to
	// guarantee it).
	Prototypes []float64
	// Bandwidth is the kernel width used by Activations, derived from the
	// typical inter-prototype spacing.
	Bandwidth float64
}

// Train fits a 1-D SOM to xs.
func Train(xs []float64, cfg Config) (*Map, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrInput)
	}
	if cfg.Units < 1 {
		return nil, fmt.Errorf("%w: Units = %d", ErrInput, cfg.Units)
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: non-finite value at index %d", ErrInput, i)
		}
	}
	cfg.fillDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	// Initialize prototypes evenly across the data range (a standard linear
	// initialization for 1-D maps; faster and more stable than random).
	protos := make([]float64, cfg.Units)
	if cfg.Units == 1 {
		protos[0] = (lo + hi) / 2
	} else {
		for i := range protos {
			protos[i] = lo + (hi-lo)*float64(i)/float64(cfg.Units-1)
		}
	}

	order := rng.Perm(len(xs))
	totalSteps := cfg.Epochs * len(xs)
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		for _, idx := range order {
			x := xs[idx]
			t := float64(step) / float64(totalSteps)
			lr := cfg.LearningRate * (1 - t)
			radius := cfg.Radius * math.Exp(-3*t)
			if radius < 0.5 {
				radius = 0.5
			}
			// Best matching unit.
			bmu, bestD := 0, math.Inf(1)
			for u, p := range protos {
				d := math.Abs(x - p)
				if d < bestD {
					bestD = d
					bmu = u
				}
			}
			// Neighbourhood update.
			for u := range protos {
				gd := float64(u - bmu)
				h := math.Exp(-gd * gd / (2 * radius * radius))
				protos[u] += lr * h * (x - protos[u])
			}
			step++
		}
	}
	sort.Float64s(protos)

	// Bandwidth from median inter-prototype gap; degenerate maps fall back
	// to the data spread.
	bw := medianGap(protos)
	if bw <= 0 {
		bw = (hi - lo) / math.Max(float64(cfg.Units), 1)
	}
	if bw <= 0 {
		bw = 1
	}
	return &Map{Prototypes: protos, Bandwidth: bw}, nil
}

func medianGap(sorted []float64) float64 {
	if len(sorted) < 2 {
		return 0
	}
	gaps := make([]float64, 0, len(sorted)-1)
	for i := 1; i < len(sorted); i++ {
		gaps = append(gaps, sorted[i]-sorted[i-1])
	}
	sort.Float64s(gaps)
	return gaps[len(gaps)/2]
}

// BMU returns the index of the best matching unit for x.
func (m *Map) BMU(x float64) int {
	best, bestD := 0, math.Inf(1)
	for u, p := range m.Prototypes {
		d := math.Abs(x - p)
		if d < bestD {
			bestD = d
			best = u
		}
	}
	return best
}

// Activations returns a normalized soft-similarity vector of x to every
// prototype using a Gaussian kernel of width Bandwidth. The result sums to 1.
func (m *Map) Activations(x float64) []float64 {
	out := make([]float64, len(m.Prototypes))
	var sum float64
	for u, p := range m.Prototypes {
		d := (x - p) / m.Bandwidth
		v := math.Exp(-0.5 * d * d)
		out[u] = v
		sum += v
	}
	if sum == 0 {
		// x is astronomically far from every prototype: assign all mass to
		// the nearest one.
		out[m.BMU(x)] = 1
		return out
	}
	for u := range out {
		out[u] /= sum
	}
	return out
}

// MeanActivations averages the activation vectors across a column of values.
// The result sums to 1 for a non-empty column.
func (m *Map) MeanActivations(values []float64) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empty column", ErrInput)
	}
	out := make([]float64, len(m.Prototypes))
	for _, x := range values {
		a := m.Activations(x)
		for u, v := range a {
			out[u] += v
		}
	}
	inv := 1 / float64(len(values))
	for u := range out {
		out[u] *= inv
	}
	return out, nil
}
