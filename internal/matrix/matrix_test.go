package matrix

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustFromRows(t *testing.T, rows [][]float64) *Dense {
	t.Helper()
	m, err := FromRows(rows)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	r, c := m.Dims()
	if r != 2 || c != 3 || m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %dx%d", r, c)
	}
	m.Set(1, 2, 7)
	if m.At(1, 2) != 7 {
		t.Errorf("At(1,2) = %v, want 7", m.At(1, 2))
	}
	row := m.Row(1)
	if row[2] != 7 {
		t.Errorf("Row(1)[2] = %v, want 7", row[2])
	}
	row[0] = 99 // copy: must not affect matrix
	if m.At(1, 0) != 0 {
		t.Error("Row must return a copy")
	}
	m.RawRow(1)[0] = 5 // raw: must affect matrix
	if m.At(1, 0) != 5 {
		t.Error("RawRow must alias storage")
	}
}

func TestFromRowsValidation(t *testing.T) {
	if _, err := FromRows(nil); !errors.Is(err, ErrShape) {
		t.Errorf("empty: want ErrShape, got %v", err)
	}
	if _, err := FromRows([][]float64{{1, 2}, {3}}); !errors.Is(err, ErrShape) {
		t.Errorf("ragged: want ErrShape, got %v", err)
	}
}

func TestMulKnown(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want := mustFromRows(t, [][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 0) {
		t.Errorf("Mul = %v, want %v", got.ToRows(), want.ToRows())
	}
	if _, err := Mul(a, New(3, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("shape mismatch: want ErrShape, got %v", err)
	}
}

func TestMulTransVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(4, 3)
	b := New(5, 3)
	c := New(4, 5)
	for _, m := range []*Dense{a, b, c} {
		for i := 0; i < m.rows; i++ {
			for j := 0; j < m.cols; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
	}
	// a * bᵀ == Mul(a, Transpose(b))
	got, err := MulTransB(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Mul(a, Transpose(b))
	if !Equal(got, want, 1e-12) {
		t.Error("MulTransB disagrees with explicit transpose")
	}
	// aᵀ * c == Mul(Transpose(a), c)
	got, err = MulTransA(a, c)
	if err != nil {
		t.Fatal(err)
	}
	want, _ = Mul(Transpose(a), c)
	if !Equal(got, want, 1e-12) {
		t.Error("MulTransA disagrees with explicit transpose")
	}
}

func TestAddSubHadamard(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	b := mustFromRows(t, [][]float64{{10, 20}, {30, 40}})
	sum, err := Add(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if sum.At(1, 1) != 44 {
		t.Errorf("Add wrong: %v", sum.ToRows())
	}
	diff, _ := Sub(b, a)
	if diff.At(0, 0) != 9 {
		t.Errorf("Sub wrong: %v", diff.ToRows())
	}
	had, _ := Hadamard(a, b)
	if had.At(1, 0) != 90 {
		t.Errorf("Hadamard wrong: %v", had.ToRows())
	}
	if _, err := Add(a, New(3, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	if _, err := Sub(a, New(1, 2)); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
	if _, err := Hadamard(a, New(2, 3)); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestScaleApplyTranspose(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, -2}, {3, -4}})
	s := Scale(a, 2)
	if s.At(1, 1) != -8 {
		t.Errorf("Scale wrong: %v", s.ToRows())
	}
	abs := Apply(a, math.Abs)
	if abs.At(0, 1) != 2 {
		t.Errorf("Apply wrong: %v", abs.ToRows())
	}
	tr := Transpose(a)
	if tr.Rows() != 2 || tr.At(0, 1) != 3 {
		t.Errorf("Transpose wrong: %v", tr.ToRows())
	}
	a.ApplyInPlace(func(x float64) float64 { return x * x })
	if a.At(1, 1) != 16 {
		t.Errorf("ApplyInPlace wrong: %v", a.ToRows())
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(6)
		c := 1 + rng.Intn(6)
		m := New(r, c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				m.Set(i, j, rng.NormFloat64())
			}
		}
		return Equal(Transpose(Transpose(m)), m, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMulAssociativityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		mk := func() *Dense {
			m := New(n, n)
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					m.Set(i, j, rng.NormFloat64())
				}
			}
			return m
		}
		a, b, c := mk(), mk(), mk()
		ab, _ := Mul(a, b)
		abc1, _ := Mul(ab, c)
		bc, _ := Mul(b, c)
		abc2, _ := Mul(a, bc)
		return Equal(abc1, abc2, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddRowVector(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}, {3, 4}})
	out, err := AddRowVector(a, []float64{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 0) != 11 || out.At(1, 1) != 24 {
		t.Errorf("AddRowVector wrong: %v", out.ToRows())
	}
	if _, err := AddRowVector(a, []float64{1}); !errors.Is(err, ErrShape) {
		t.Errorf("want ErrShape, got %v", err)
	}
}

func TestColSumsAndFrobenius(t *testing.T) {
	a := mustFromRows(t, [][]float64{{3, 0}, {4, 0}})
	cs := ColSums(a)
	if cs[0] != 7 || cs[1] != 0 {
		t.Errorf("ColSums = %v", cs)
	}
	if FrobeniusNorm(a) != 5 {
		t.Errorf("FrobeniusNorm = %v, want 5", FrobeniusNorm(a))
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mustFromRows(t, [][]float64{{1, 2}})
	b := a.Clone()
	b.Set(0, 0, 99)
	if a.At(0, 0) != 1 {
		t.Error("Clone must not share storage")
	}
}

func TestSetRowAndToRows(t *testing.T) {
	a := New(2, 2)
	a.SetRow(1, []float64{5, 6})
	rows := a.ToRows()
	if rows[1][0] != 5 || rows[1][1] != 6 {
		t.Errorf("SetRow/ToRows wrong: %v", rows)
	}
	defer func() {
		if recover() == nil {
			t.Error("SetRow with wrong length should panic")
		}
	}()
	a.SetRow(0, []float64{1})
}

func TestEqualShapes(t *testing.T) {
	if Equal(New(1, 2), New(2, 1), 1) {
		t.Error("different shapes must not be Equal")
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("New(0, 1) should panic")
		}
	}()
	New(0, 1)
}
