// Package matrix implements the small dense-matrix kernel used by the neural
// substrates (Sherlock_SC/Sato_SC/Pythagoras_SC networks, autoencoders, the
// deep-clustering models). It favours clarity and predictable allocation over
// BLAS-level performance; all experiment matrices are at most a few thousand
// rows by a few hundred columns.
package matrix

import (
	"errors"
	"fmt"
	"math"
)

// ErrShape is returned when operand dimensions are incompatible.
var ErrShape = errors.New("matrix: incompatible shapes")

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns an r x c zero matrix.
func New(r, c int) *Dense {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// FromRows builds a matrix from a rectangular slice of rows (copied).
func FromRows(rows [][]float64) (*Dense, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty input", ErrShape)
	}
	c := len(rows[0])
	m := New(len(rows), c)
	for i, row := range rows {
		if len(row) != c {
			return nil, fmt.Errorf("%w: row %d has %d values, want %d", ErrShape, i, len(row), c)
		}
		copy(m.data[i*c:(i+1)*c], row)
	}
	return m, nil
}

// Dims returns the (rows, cols) of m.
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns m[i, j].
func (m *Dense) At(i, j int) float64 { return m.data[i*m.cols+j] }

// Set assigns m[i, j] = v.
func (m *Dense) Set(i, j int, v float64) { m.data[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// RawRow returns row i backed by the matrix storage (no copy; do not resize).
func (m *Dense) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// SetRow copies v into row i.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("matrix: SetRow length %d, want %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// ToRows returns the matrix content as a fresh slice of row slices.
func (m *Dense) ToRows() [][]float64 {
	out := make([][]float64, m.rows)
	for i := range out {
		out[i] = m.Row(i)
	}
	return out
}

// Mul returns a * b.
func Mul(a, b *Dense) (*Dense, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d) * (%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// MulTransB returns a * bᵀ.
func MulTransB(a, b *Dense) (*Dense, error) {
	if a.cols != b.cols {
		return nil, fmt.Errorf("%w: (%dx%d) * (%dx%d)ᵀ", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, b.rows)
	for i := 0; i < a.rows; i++ {
		arow := a.data[i*a.cols : (i+1)*a.cols]
		for j := 0; j < b.rows; j++ {
			brow := b.data[j*b.cols : (j+1)*b.cols]
			var s float64
			for k := range arow {
				s += arow[k] * brow[k]
			}
			out.data[i*out.cols+j] = s
		}
	}
	return out, nil
}

// MulTransA returns aᵀ * b.
func MulTransA(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows {
		return nil, fmt.Errorf("%w: (%dx%d)ᵀ * (%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.cols, b.cols)
	for k := 0; k < a.rows; k++ {
		arow := a.data[k*a.cols : (k+1)*a.cols]
		brow := b.data[k*b.cols : (k+1)*b.cols]
		for i, av := range arow {
			if av == 0 {
				continue
			}
			orow := out.data[i*out.cols : (i+1)*out.cols]
			for j, bv := range brow {
				orow[j] += av * bv
			}
		}
	}
	return out, nil
}

// Add returns a + b.
func Add(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: (%dx%d) + (%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] + b.data[i]
	}
	return out, nil
}

// Sub returns a - b.
func Sub(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: (%dx%d) - (%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Hadamard returns the element-wise product a ⊙ b.
func Hadamard(a, b *Dense) (*Dense, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("%w: (%dx%d) ⊙ (%dx%d)", ErrShape, a.rows, a.cols, b.rows, b.cols)
	}
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] * b.data[i]
	}
	return out, nil
}

// Scale returns s * a as a new matrix.
func Scale(a *Dense, s float64) *Dense {
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] * s
	}
	return out
}

// Transpose returns aᵀ.
func Transpose(a *Dense) *Dense {
	out := New(a.cols, a.rows)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[j*out.cols+i] = a.data[i*a.cols+j]
		}
	}
	return out
}

// Apply returns f applied element-wise to a, as a new matrix.
func Apply(a *Dense, f func(float64) float64) *Dense {
	out := New(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = f(a.data[i])
	}
	return out
}

// ApplyInPlace applies f element-wise to a, mutating it.
func (m *Dense) ApplyInPlace(f func(float64) float64) {
	for i := range m.data {
		m.data[i] = f(m.data[i])
	}
}

// AddRowVector adds v to every row of a (broadcast), returning a new matrix.
func AddRowVector(a *Dense, v []float64) (*Dense, error) {
	if len(v) != a.cols {
		return nil, fmt.Errorf("%w: matrix has %d cols, vector has %d", ErrShape, a.cols, len(v))
	}
	out := New(a.rows, a.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out.data[i*a.cols+j] = a.data[i*a.cols+j] + v[j]
		}
	}
	return out, nil
}

// ColSums returns the per-column sums of a.
func ColSums(a *Dense) []float64 {
	out := make([]float64, a.cols)
	for i := 0; i < a.rows; i++ {
		for j := 0; j < a.cols; j++ {
			out[j] += a.data[i*a.cols+j]
		}
	}
	return out
}

// FrobeniusNorm returns sqrt(sum of squared entries).
func FrobeniusNorm(a *Dense) float64 {
	var ss float64
	for _, v := range a.data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Equal reports whether a and b agree element-wise within tol.
func Equal(a, b *Dense, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}
