package shard

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/pool"
)

// column is one dataset row of the tests.
type column struct {
	key  catalog.Key
	name string
	vec  []float64
}

func makeColumns(n, dim int, seed int64) []column {
	rng := rand.New(rand.NewSource(seed))
	cols := make([]column, n)
	for i := range cols {
		name := fmt.Sprintf("col-%03d", i)
		vec := make([]float64, dim)
		for j := range vec {
			vec[j] = rng.NormFloat64()
		}
		cols[i] = column{key: catalog.Key(sha256.Sum256([]byte(name))), name: name, vec: vec}
	}
	return cols
}

// scriptOp is one step of a deterministic add/remove workload. Remove
// targets are concrete global ids so every structure under test replays
// the exact same mutation sequence.
type scriptOp struct {
	add bool
	col int // dataset index, for adds
	id  int // global id, for removes
}

func makeScript(n int, seed int64) []scriptOp {
	rng := rand.New(rand.NewSource(seed))
	var (
		ops  []scriptOp
		live []int
	)
	for i := 0; i < n; i++ {
		ops = append(ops, scriptOp{add: true, col: i, id: i})
		live = append(live, i)
		if len(live) > 1 && rng.Intn(4) == 0 {
			j := rng.Intn(len(live))
			ops = append(ops, scriptOp{id: live[j]})
			live = append(live[:j], live[j+1:]...)
		}
	}
	return ops
}

// newIndexes builds n identically-configured empty indexes. kind is
// "flat" (exact float64 scan) or "hnsw" (graph index with an exhaustive
// search beam, so searches are still exact).
func newIndexes(t *testing.T, kind string, n int) []ann.Index {
	t.Helper()
	idxs := make([]ann.Index, n)
	for i := range idxs {
		switch kind {
		case "flat":
			idxs[i] = ann.NewFlat(ann.Euclidean)
		case "hnsw":
			h, err := ann.NewHNSW(ann.HNSWConfig{Metric: ann.Euclidean, M: 8, EfConstruction: 64, EfSearch: 4096, Seed: 42, BatchSize: 4}, nil)
			if err != nil {
				t.Fatalf("NewHNSW: %v", err)
			}
			idxs[i] = h
		default:
			t.Fatalf("unknown index kind %q", kind)
		}
	}
	return idxs
}

// applyScript replays a workload into a catalog, checking that global id
// assignment matches the script's expectation.
func applyScript(t *testing.T, c *Catalog, cols []column, ops []scriptOp) {
	t.Helper()
	for _, op := range ops {
		if op.add {
			id, err := c.Add(cols[op.col].key, cols[op.col].name, cols[op.col].vec)
			if err != nil {
				t.Fatalf("Add(%s): %v", cols[op.col].name, err)
			}
			if id != op.id {
				t.Fatalf("Add(%s) assigned id %d, want %d", cols[op.col].name, id, op.id)
			}
		} else if err := c.Remove(op.id); err != nil {
			t.Fatalf("Remove(%d): %v", op.id, err)
		}
	}
}

func queries(dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	qs := make([][]float64, 5)
	for i := range qs {
		qs[i] = make([]float64, dim)
		for j := range qs[i] {
			qs[i][j] = rng.NormFloat64()
		}
	}
	return qs
}

// TestScatterGatherMatchesUnsharded pins the tentpole contract: for exact
// searches, a sharded catalog answers byte-identically to the unsharded
// index built from the same global add/remove sequence — across shard
// counts, worker counts and both index kinds.
func TestScatterGatherMatchesUnsharded(t *testing.T) {
	const n, dim = 90, 8
	cols := makeColumns(n, dim, 1)
	ops := makeScript(n, 2)
	qs := queries(dim, 3)

	for _, kind := range []string{"flat", "hnsw"} {
		// Reference: one unsharded index fed the global sequence.
		ref := newIndexes(t, kind, 1)[0]
		for _, op := range ops {
			if op.add {
				if err := ref.Add(cols[op.col].vec); err != nil {
					t.Fatalf("ref add: %v", err)
				}
			} else if err := ref.Remove(op.id); err != nil {
				t.Fatalf("ref remove: %v", err)
			}
		}
		for _, shards := range []int{1, 2, 4} {
			for _, workers := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/shards=%d/workers=%d", kind, shards, workers), func(t *testing.T) {
					c, err := New(Config{Indexes: newIndexes(t, kind, shards), Pool: pool.New(workers)})
					if err != nil {
						t.Fatalf("New: %v", err)
					}
					applyScript(t, c, cols, ops)
					for qi, q := range qs {
						for _, k := range []int{1, 3, 10, n + 5} {
							want, err := ref.Search(q, k)
							if err != nil {
								t.Fatalf("ref search: %v", err)
							}
							got, err := c.Search(q, k)
							if err != nil {
								t.Fatalf("Search: %v", err)
							}
							if !reflect.DeepEqual(got, want) {
								t.Fatalf("query %d k=%d: sharded results diverge\n got %v\nwant %v", qi, k, got, want)
							}
						}
					}
				})
			}
		}
	}
}

// TestShardedRestartReplay pins crash recovery: a catalog replayed from
// its per-shard stores answers searches byte-identically to the process
// that wrote them, before and after compaction.
func TestShardedRestartReplay(t *testing.T) {
	const n, dim, shards = 60, 6, 3
	cols := makeColumns(n, dim, 4)
	ops := makeScript(n, 5)
	qs := queries(dim, 6)

	dir := t.TempDir()
	openStores := func() []*catalog.Store {
		sts := make([]*catalog.Store, shards)
		for i := range sts {
			st, err := catalog.Open(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)), "fp-test")
			if err != nil {
				t.Fatalf("open store %d: %v", i, err)
			}
			sts[i] = st
		}
		return sts
	}
	closeStores := func(sts []*catalog.Store) {
		for _, st := range sts {
			if err := st.Close(); err != nil {
				t.Fatalf("close store: %v", err)
			}
		}
	}

	sts := openStores()
	c, err := New(Config{Indexes: newIndexes(t, "hnsw", shards), Stores: sts, Pool: pool.New(2)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Replay(nil); err != nil {
		t.Fatalf("Replay of empty stores: %v", err)
	}
	applyScript(t, c, cols, ops)

	record := func(c *Catalog) [][]ann.Result {
		var out [][]ann.Result
		for _, q := range qs {
			res, err := c.Search(q, 10)
			if err != nil {
				t.Fatalf("Search: %v", err)
			}
			out = append(out, res)
		}
		return out
	}
	want := record(c)
	closeStores(sts)

	// Restart 1: replay the journals.
	sts = openStores()
	c2, err := New(Config{Indexes: newIndexes(t, "hnsw", shards), Stores: sts, Pool: pool.New(2)})
	if err != nil {
		t.Fatalf("New after restart: %v", err)
	}
	warmed := 0
	if err := c2.Replay(func(key catalog.Key, name string, vec []float64) { warmed++ }); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if warmed != c2.Len() {
		t.Fatalf("warm callback saw %d adds, catalog has %d", warmed, c2.Len())
	}
	if got := record(c2); !reflect.DeepEqual(got, want) {
		t.Fatalf("restart changed search results\n got %v\nwant %v", got, want)
	}
	for id := 0; id < c2.Len(); id++ {
		if c2.Name(id) != c.Name(id) || c2.Key(id) != c.Key(id) || c2.IsLive(id) != c.IsLive(id) {
			t.Fatalf("restart changed column %d: %q/%v vs %q/%v", id, c2.Name(id), c2.IsLive(id), c.Name(id), c.IsLive(id))
		}
	}

	// Compact, restart again: still byte-identical modulo the dense
	// renumbering, which a fresh replay must reproduce.
	if _, err := c2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	want2 := record(c2)
	closeStores(sts)

	sts = openStores()
	defer closeStores(sts)
	c3, err := New(Config{Indexes: newIndexes(t, "hnsw", shards), Stores: sts, Pool: pool.New(2)})
	if err != nil {
		t.Fatalf("New after compacted restart: %v", err)
	}
	if err := c3.Replay(nil); err != nil {
		t.Fatalf("Replay after compaction: %v", err)
	}
	if got := record(c3); !reflect.DeepEqual(got, want2) {
		t.Fatalf("compacted restart changed search results\n got %v\nwant %v", got, want2)
	}
}

// TestRebalanceMatchesFreshBuild removes every column owned by one shard,
// compacts, and requires scatter-gather to answer byte-identically to a
// fresh unsharded build of the survivors — the satellite regression test
// for rebalance correctness.
func TestRebalanceMatchesFreshBuild(t *testing.T) {
	const n, dim, shards = 80, 8, 4
	cols := makeColumns(n, dim, 7)
	qs := queries(dim, 8)

	for _, kind := range []string{"flat", "hnsw"} {
		t.Run(kind, func(t *testing.T) {
			c, err := New(Config{Indexes: newIndexes(t, kind, shards), Pool: pool.New(4)})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			var survivors []column
			for _, col := range cols {
				if _, err := c.Add(col.key, col.name, col.vec); err != nil {
					t.Fatalf("Add: %v", err)
				}
				if c.Owner(col.key) != 0 {
					survivors = append(survivors, col)
				}
			}
			if len(survivors) == n || len(survivors) == 0 {
				t.Fatalf("degenerate split: %d of %d columns survive", len(survivors), n)
			}
			for id := 0; id < c.Len(); id++ {
				if c.Owner(c.Key(id)) == 0 {
					if err := c.Remove(id); err != nil {
						t.Fatalf("Remove(%d): %v", id, err)
					}
				}
			}
			if _, err := c.Compact(); err != nil {
				t.Fatalf("Compact: %v", err)
			}
			if c.Len() != len(survivors) || c.Live() != len(survivors) {
				t.Fatalf("after compact: Len %d Live %d, want %d", c.Len(), c.Live(), len(survivors))
			}

			// Fresh unsharded build of the survivors in global-id order.
			ref := newIndexes(t, kind, 1)[0]
			for i, col := range survivors {
				if err := ref.Add(col.vec); err != nil {
					t.Fatalf("ref add: %v", err)
				}
				if c.Name(i) != col.name {
					t.Fatalf("survivor %d renumbered to %q, want %q", i, c.Name(i), col.name)
				}
			}
			for qi, q := range qs {
				for _, k := range []int{1, 5, len(survivors)} {
					want, err := ref.Search(q, k)
					if err != nil {
						t.Fatalf("ref search: %v", err)
					}
					got, err := c.Search(q, k)
					if err != nil {
						t.Fatalf("Search: %v", err)
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d k=%d after rebalance: results diverge\n got %v\nwant %v", qi, k, got, want)
					}
				}
			}
		})
	}
}

func TestAddDedupesLiveKeys(t *testing.T) {
	cols := makeColumns(3, 4, 9)
	c, err := New(Config{Indexes: newIndexes(t, "flat", 2)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	id0, err := c.Add(cols[0].key, cols[0].name, cols[0].vec)
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	again, err := c.Add(cols[0].key, "renamed", cols[0].vec)
	if err != nil {
		t.Fatalf("re-Add: %v", err)
	}
	if again != id0 {
		t.Fatalf("re-adding a live key assigned id %d, want %d", again, id0)
	}
	if c.Len() != 1 || c.Name(id0) != cols[0].name {
		t.Fatalf("dedupe mutated the catalog: Len %d name %q", c.Len(), c.Name(id0))
	}
	if err := c.Remove(id0); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if !c.Seen(cols[0].key) {
		t.Fatal("removed key no longer Seen")
	}
	if _, ok := c.IDOf(cols[0].key); ok {
		t.Fatal("removed key still resolves to a live id")
	}
	// Re-adding after removal is a fresh column with a fresh id.
	id1, err := c.Add(cols[0].key, cols[0].name, cols[0].vec)
	if err != nil {
		t.Fatalf("Add after remove: %v", err)
	}
	if id1 != 1 {
		t.Fatalf("re-added key got id %d, want 1", id1)
	}
}

func TestRemoveRejectsBadIDs(t *testing.T) {
	cols := makeColumns(1, 4, 10)
	c, err := New(Config{Indexes: newIndexes(t, "flat", 2)})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.Add(cols[0].key, cols[0].name, cols[0].vec); err != nil {
		t.Fatalf("Add: %v", err)
	}
	for _, id := range []int{-1, 1, 99} {
		if err := c.Remove(id); !errors.Is(err, ErrInput) {
			t.Fatalf("Remove(%d) = %v, want ErrInput", id, err)
		}
	}
	if err := c.Remove(0); err != nil {
		t.Fatalf("Remove(0): %v", err)
	}
	if err := c.Remove(0); !errors.Is(err, ErrInput) {
		t.Fatalf("double Remove(0) = %v, want ErrInput", err)
	}
}

func TestNewValidation(t *testing.T) {
	flat2 := newIndexes(t, "flat", 2)
	preloaded := ann.NewFlat(ann.Euclidean)
	if err := preloaded.Add([]float64{1, 2}, []float64{3, 4}); err != nil {
		t.Fatalf("preload: %v", err)
	}
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no indexes", Config{}},
		{"store count mismatch", Config{Indexes: flat2, Stores: make([]*catalog.Store, 1)}},
		{"metric mismatch", Config{Indexes: []ann.Index{ann.NewFlat(ann.Euclidean), ann.NewFlat(ann.Cosine)}}},
		{"preloaded multi-shard", Config{Indexes: []ann.Index{preloaded, ann.NewFlat(ann.Euclidean)}}},
		{"preloaded with stores", Config{Indexes: []ann.Index{preloaded}, Stores: make([]*catalog.Store, 1)}},
		{"preload names multi-shard", Config{Indexes: flat2, PreloadNames: []string{"a"}}},
	}
	for _, tc := range cases {
		if _, err := New(tc.cfg); !errors.Is(err, ErrInput) {
			t.Errorf("%s: New = %v, want ErrInput", tc.name, err)
		}
	}
}

func TestPreloadedAdoption(t *testing.T) {
	idx := ann.NewFlat(ann.Euclidean)
	if err := idx.Add([]float64{1, 0}, []float64{0, 1}, []float64{1, 1}); err != nil {
		t.Fatalf("preload: %v", err)
	}
	c, err := New(Config{Indexes: []ann.Index{idx}, PreloadNames: []string{"alpha", "beta"}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if c.Len() != 3 || c.Live() != 3 {
		t.Fatalf("Len %d Live %d, want 3/3", c.Len(), c.Live())
	}
	for id, want := range []string{"alpha", "beta", "@2"} {
		if c.Name(id) != want {
			t.Fatalf("Name(%d) = %q, want %q", id, c.Name(id), want)
		}
	}
	res, err := c.Search([]float64{1, 0}, 1)
	if err != nil || len(res) != 1 || res[0].ID != 0 {
		t.Fatalf("Search over preloaded index: %v %v", res, err)
	}
	if err := c.Remove(0); err != nil {
		t.Fatalf("Remove preloaded: %v", err)
	}
	if c.Live() != 2 {
		t.Fatalf("Live after remove = %d, want 2", c.Live())
	}
}

// TestReplayRejectsUnsequencedStores guards the multi-shard replay
// precondition: stores written independently (duplicate global sequence
// numbers) cannot be glued into one sharded catalog.
func TestReplayRejectsUnsequencedStores(t *testing.T) {
	dir := t.TempDir()
	cols := makeColumns(4, 4, 11)
	// Write two stores via two independent single-shard catalogs: each
	// assigns sequences from 1, so they collide.
	for i := 0; i < 2; i++ {
		st, err := catalog.Open(filepath.Join(dir, fmt.Sprintf("s%d", i)), "fp")
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		c, err := New(Config{Indexes: newIndexes(t, "flat", 1), Stores: []*catalog.Store{st}})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		if err := c.Replay(nil); err != nil {
			t.Fatalf("Replay: %v", err)
		}
		for j := 0; j < 2; j++ {
			col := cols[2*i+j]
			if _, err := c.Add(col.key, col.name, col.vec); err != nil {
				t.Fatalf("Add: %v", err)
			}
		}
		if err := st.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}
	}
	sts := make([]*catalog.Store, 2)
	for i := range sts {
		st, err := catalog.Open(filepath.Join(dir, fmt.Sprintf("s%d", i)), "fp")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer st.Close()
		sts[i] = st
	}
	c, err := New(Config{Indexes: newIndexes(t, "flat", 2), Stores: sts})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := c.Replay(nil); !errors.Is(err, ErrInput) {
		t.Fatalf("Replay of colliding stores = %v, want ErrInput", err)
	}
}

// TestCatalogSearchBatchMatchesSearch pins the batched scatter-gather: a
// Catalog.SearchBatch over a whole query set must be bit-identical to
// looping Catalog.Search, at every pool width, on both index kinds, after
// a tombstone-producing add/remove script.
func TestCatalogSearchBatchMatchesSearch(t *testing.T) {
	const n, dim, shards, k = 48, 6, 3, 7
	cols := makeColumns(n, dim, 21)
	ops := makeScript(n, 22)
	// A larger query set than the shared helper provides, so batches span
	// multiple fan-out chunks at every worker width.
	qs := queries(dim, 23)
	for i := int64(0); i < 4; i++ {
		qs = append(qs, queries(dim, 24+i)...)
	}
	for _, kind := range []string{"flat", "hnsw"} {
		// Reference answers from a single-worker catalog's sequential path.
		ref, err := New(Config{Indexes: newIndexes(t, kind, shards), Pool: pool.New(1)})
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		applyScript(t, ref, cols, ops)
		want := make([][]ann.Result, len(qs))
		for i, q := range qs {
			if want[i], err = ref.Search(q, k); err != nil {
				t.Fatalf("ref search: %v", err)
			}
		}
		for _, workers := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/workers=%d", kind, workers), func(t *testing.T) {
				c, err := New(Config{Indexes: newIndexes(t, kind, shards), Pool: pool.New(workers)})
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				applyScript(t, c, cols, ops)
				got, err := c.SearchBatch(qs, k)
				if err != nil {
					t.Fatalf("SearchBatch: %v", err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("batched results diverge from looped Search\n got %v\nwant %v", got, want)
				}
				// Looping Search on the same catalog agrees too.
				for i, q := range qs {
					one, err := c.Search(q, k)
					if err != nil {
						t.Fatalf("Search: %v", err)
					}
					if !reflect.DeepEqual(one, want[i]) {
						t.Fatalf("query %d: looped Search diverges across widths\n got %v\nwant %v", i, one, want[i])
					}
				}
			})
		}
	}
}
