package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"testing"

	"github.com/gem-embeddings/gem/internal/catalog"
)

// ringKey derives a deterministic content-like key (keys in production are
// SHA-256 outputs, so tests hash too).
func ringKey(i int) catalog.Key {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(i))
	return catalog.Key(sha256.Sum256(b[:]))
}

func TestRingSingleShardOwnsEverything(t *testing.T) {
	r := newRing(1, 64)
	for i := 0; i < 100; i++ {
		if got := r.owner(ringKey(i)); got != 0 {
			t.Fatalf("owner(%d) = %d in a 1-shard ring", i, got)
		}
	}
}

func TestRingDeterministicAcrossInstances(t *testing.T) {
	a, b := newRing(4, 64), newRing(4, 64)
	for i := 0; i < 1000; i++ {
		k := ringKey(i)
		if a.owner(k) != b.owner(k) {
			t.Fatalf("key %d: ring instances disagree (%d vs %d)", i, a.owner(k), b.owner(k))
		}
	}
}

func TestRingBalance(t *testing.T) {
	const shards, keys = 4, 10000
	r := newRing(shards, 64)
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.owner(ringKey(i))]++
	}
	// 64 virtual points per shard keeps the split loose but sane: every
	// shard sees at least 10% and at most 45% of a uniform key set.
	for s, n := range counts {
		if n < keys/10 || n > keys*45/100 {
			t.Fatalf("shard %d owns %d of %d keys: %v", s, n, keys, counts)
		}
	}
}

func TestRingRemapMovesOnlyToNewShard(t *testing.T) {
	const keys = 10000
	old, grown := newRing(4, 64), newRing(5, 64)
	moved := 0
	for i := 0; i < keys; i++ {
		k := ringKey(i)
		was, is := old.owner(k), grown.owner(k)
		if was == is {
			continue
		}
		moved++
		// Consistent hashing: growing the ring only reassigns keys to the
		// shard that joined.
		if is != 4 {
			t.Fatalf("key %d moved %d -> %d, not to the new shard", i, was, is)
		}
	}
	// ~1/5 of the keys should move; far less means the new shard is
	// starved, far more means the hash is not consistent.
	if moved < keys/10 || moved > keys*4/10 {
		t.Fatalf("%d of %d keys moved on 4 -> 5 growth", moved, keys)
	}
}
