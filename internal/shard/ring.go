package shard

// The consistent-hash ring that assigns every content key an owning
// shard. Each shard contributes `replicas` virtual points hashed from
// (shard, replica); a key is owned by the first point clockwise from the
// key's own hash. Consistent hashing is what keeps the assignment stable
// under resharding: going from N to N+1 shards moves ~1/(N+1) of the keys
// instead of nearly all of them, so an operator can split a catalog by
// replaying each store into a wider ring without re-embedding anything.
//
// The ring is pure arithmetic on (shards, replicas) — no RNG, no map
// iteration — so every process that builds it with the same parameters
// routes every key identically, which the scatter-gather determinism
// contract depends on.

import (
	"encoding/binary"
	"sort"

	"github.com/gem-embeddings/gem/internal/catalog"
)

type ringPoint struct {
	hash  uint64
	shard int
}

type ring struct {
	n      int
	points []ringPoint // sorted by hash
}

func newRing(shards, replicas int) *ring {
	r := &ring{n: shards}
	if shards <= 1 {
		return r
	}
	r.points = make([]ringPoint, 0, shards*replicas)
	for s := 0; s < shards; s++ {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(uint64(s), uint64(v)), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual points is vanishingly
		// unlikely; break it deterministically anyway.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// pointHash mixes one (shard, replica) pair through the splitmix64
// finalizer — the same mixer the HNSW level hash uses.
func pointHash(s, v uint64) uint64 {
	z := s*0x9e3779b97f4a7c15 + v*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// owner returns the shard that owns key. Content keys are SHA-256
// outputs, so their leading 8 bytes are already uniform on the ring.
func (r *ring) owner(key catalog.Key) int {
	if r.n <= 1 {
		return 0
	}
	h := binary.BigEndian.Uint64(key[:8])
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}
