// Package shard splits a column catalog — the membership bookkeeping, the
// durable store and the ANN index — into N consistent-hashed shards keyed
// by content hash, and answers searches by scatter-gather over all of
// them.
//
// The contract that makes sharding safe to adopt is determinism: for an
// exact (exhaustive) index, a sharded catalog returns byte-identical
// Search results to an unsharded one built from the same add/remove
// sequence, at any shard count and any worker count. That holds because
// global ids rank columns by add order, each shard's local-id order is a
// subsequence of that global order, so each shard's (distance, local-id)
// top-k maps exactly onto the global (distance, id) top-k restricted to
// that shard; merging the per-shard lists by (distance, global id) then
// reconstructs the unsharded answer. Approximate or reduced-precision
// indexes keep per-shard determinism (same inputs, same results) but may
// legitimately differ from an unsharded build, since graph construction
// and candidate reranking see different neighbor pools.
//
// Durability stays shard-local: each shard owns one catalog.Store, so
// crash recovery replays N small journals instead of one big one, and a
// torn record only costs its own shard. Entries persist a global sequence
// number (store format v2); replay sorts all shards' events by that
// sequence to rebuild the exact global id assignment the writing process
// used.
//
// A Catalog is passive and unsynchronized, like ann.Index: the caller
// (internal/serve) serializes mutations and may run Search concurrently
// with other Searches, but not with mutations.
//
//gem:deterministic
//gem:pooled
package shard

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/stats"
)

// ErrInput marks caller mistakes: bad configuration, ids out of range.
var ErrInput = errors.New("shard: invalid input")

// ErrStore marks a failure of the durable layer underneath a mutation —
// a journal append or compaction that did not complete, or an index that
// diverged from its journal. The catalog may be serving from memory what
// the store no longer guarantees; callers should surface it loudly.
var ErrStore = errors.New("shard: store failure")

// Config assembles a Catalog.
type Config struct {
	// Indexes are the per-shard ANN indexes; their count sets the shard
	// count. All must share one metric, precision and (once populated)
	// dimensionality. For determinism across processes, build them
	// identically (same HNSW config and seed).
	Indexes []ann.Index
	// Stores, when non-nil, pairs one durable store with each shard.
	Stores []*catalog.Store
	// Pool, when non-nil, fans Search out over shards.
	Pool *pool.Pool
	// Replicas is the virtual-point count per shard on the hash ring.
	// Default 64. Changing it reshuffles ownership; every process of one
	// deployment must agree on it.
	Replicas int
	// PreloadNames names the vectors already present in a preloaded
	// single-shard index (missing tails fall back to "@i"). Only a
	// store-less single-shard catalog can adopt a preloaded index.
	PreloadNames []string
}

// loc addresses one column inside its shard.
type loc struct {
	shard int
	local int
}

// Catalog is a sharded column catalog. Global ids are dense, assigned in
// add order, and renumbered on Compact — exactly the id discipline of a
// single ann index, so callers built against one keep working.
type Catalog struct {
	idxs   []ann.Index
	stores []*catalog.Store // nil, or one per shard
	ring   *ring
	pool   *pool.Pool

	names  []string      // by global id
	keys   []catalog.Key // by global id (zero for preloaded vectors)
	live   []bool        // by global id
	locOf  []loc         // global id -> shard-local address
	globOf [][]int       // shard -> local id -> global id
	idOf   map[catalog.Key]int
	seen   map[catalog.Key]bool

	// nextSeq is the next global sequence number to persist with an add.
	// Sequence 0 is reserved for legacy (format v1) entries.
	nextSeq  uint64
	removals int

	// searchObs, when set, observes each shard's Search wall-clock during
	// the scatter phase. Observation only — it must not influence results.
	searchObs func(shard int, seconds float64)
}

// SetSearchObserver installs fn to receive (shard, seconds) for every
// per-shard index search. Search fans out over a pool, so fn is called
// concurrently and must be safe for that. Set once before serving; nil
// uninstalls.
func (c *Catalog) SetSearchObserver(fn func(shard int, seconds float64)) { c.searchObs = fn }

// New validates the shard set and assembles a Catalog. Indexes must be
// empty, except that a single-shard store-less catalog may adopt one
// preloaded index (the -index-in serving path).
func New(cfg Config) (*Catalog, error) {
	n := len(cfg.Indexes)
	if n == 0 {
		return nil, fmt.Errorf("%w: a catalog needs at least one shard index", ErrInput)
	}
	if cfg.Stores != nil && len(cfg.Stores) != n {
		return nil, fmt.Errorf("%w: %d stores for %d shards", ErrInput, len(cfg.Stores), n)
	}
	metric, prec := cfg.Indexes[0].Metric(), cfg.Indexes[0].Precision()
	for i, idx := range cfg.Indexes {
		if idx == nil {
			return nil, fmt.Errorf("%w: shard %d has no index", ErrInput, i)
		}
		if idx.Metric() != metric || idx.Precision() != prec {
			return nil, fmt.Errorf("%w: shard %d index is %v/%v, shard 0 is %v/%v — shards must match", ErrInput, i, idx.Metric(), idx.Precision(), metric, prec)
		}
		if i > 0 && idx.Len() != 0 {
			return nil, fmt.Errorf("%w: shard %d index has %d preloaded vectors (only a single-shard catalog can adopt a preloaded index)", ErrInput, i, idx.Len())
		}
	}
	preloaded := cfg.Indexes[0].Len()
	if preloaded > 0 {
		if n > 1 {
			return nil, fmt.Errorf("%w: a preloaded index cannot be sharded (%d shards)", ErrInput, n)
		}
		if cfg.Stores != nil {
			return nil, fmt.Errorf("%w: a store replays into an empty index, got %d preloaded vectors", ErrInput, preloaded)
		}
	}
	if len(cfg.PreloadNames) > 0 && n > 1 {
		return nil, fmt.Errorf("%w: preload names only apply to a single-shard catalog", ErrInput)
	}
	replicas := cfg.Replicas
	if replicas <= 0 {
		replicas = 64
	}
	c := &Catalog{
		idxs:    cfg.Indexes,
		stores:  cfg.Stores,
		ring:    newRing(n, replicas),
		pool:    cfg.Pool,
		globOf:  make([][]int, n),
		idOf:    make(map[catalog.Key]int),
		seen:    make(map[catalog.Key]bool),
		nextSeq: 1,
	}
	for i := 0; i < preloaded; i++ {
		name := fmt.Sprintf("@%d", i)
		if i < len(cfg.PreloadNames) {
			name = cfg.PreloadNames[i]
		}
		c.names = append(c.names, name)
		c.keys = append(c.keys, catalog.Key{})
		c.live = append(c.live, true)
		c.locOf = append(c.locOf, loc{0, i})
		c.globOf[0] = append(c.globOf[0], i)
	}
	return c, nil
}

// replayEvent is one add observed during store replay, tagged with where
// it landed so the global order can be rebuilt.
type replayEvent struct {
	seq          uint64
	shard, local int
	key          catalog.Key
	name         string
}

// Replay rebuilds the in-memory catalog from the per-shard stores:
// snapshot entries as one batched index Add (the batch boundary is part of
// the deterministic graph definition), journal ops one at a time, then a
// stable sort of every add event by persisted sequence number to recover
// the global id assignment. warm, when non-nil, observes every replayed
// add (raw, un-normalized vector) — the serve layer uses it to pre-warm
// its embedding cache.
func (c *Catalog) Replay(warm func(key catalog.Key, name string, vec []float64)) error {
	if c.stores == nil {
		return fmt.Errorf("%w: catalog has no stores to replay", ErrInput)
	}
	if len(c.names) != 0 {
		return fmt.Errorf("%w: replay needs an empty catalog, got %d columns", ErrInput, len(c.names))
	}
	var evs []replayEvent
	liveLocal := make([][]bool, len(c.idxs))
	for si, st := range c.stores {
		idx := c.idxs[si]
		snap := st.Snapshot()
		if len(snap) > 0 {
			vecs := make([][]float64, len(snap))
			for i, e := range snap {
				vecs[i] = c.normalized(e.Vec)
			}
			if err := idx.Add(vecs...); err != nil {
				return fmt.Errorf("shard %d: replaying store snapshot: %w", si, err)
			}
		}
		localID := make(map[catalog.Key]int, len(snap))
		for i, e := range snap {
			localID[e.Key] = i
			evs = append(evs, replayEvent{seq: e.Seq, shard: si, local: i, key: e.Key, name: e.Name})
			liveLocal[si] = append(liveLocal[si], true)
			if warm != nil {
				warm(e.Key, e.Name, e.Vec)
			}
		}
		for _, op := range st.Ops() {
			switch op.Kind {
			case catalog.OpAdd:
				if err := idx.Add(c.normalized(op.Entry.Vec)); err != nil {
					return fmt.Errorf("shard %d: replaying store journal: %w", si, err)
				}
				li := idx.Len() - 1
				localID[op.Entry.Key] = li
				evs = append(evs, replayEvent{seq: op.Entry.Seq, shard: si, local: li, key: op.Entry.Key, name: op.Entry.Name})
				liveLocal[si] = append(liveLocal[si], true)
				if warm != nil {
					warm(op.Entry.Key, op.Entry.Name, op.Entry.Vec)
				}
			case catalog.OpRemove:
				li, ok := localID[op.Entry.Key]
				if !ok {
					return fmt.Errorf("shard %d: replaying store journal: remove of key %s that is not live", si, op.Entry.Key)
				}
				if err := idx.Remove(li); err != nil {
					return fmt.Errorf("shard %d: replaying store journal: %w", si, err)
				}
				delete(localID, op.Entry.Key)
				liveLocal[si][li] = false
			default:
				return fmt.Errorf("shard %d: replaying store journal: unknown op kind %d", si, op.Kind)
			}
		}
	}
	if len(c.idxs) > 1 {
		// Multi-shard replay leans on distinct persisted sequence numbers
		// to interleave the shards; duplicates mean the stores were not
		// written by one sharded catalog (or predate format v2).
		seqs := make(map[uint64]bool, len(evs))
		for _, e := range evs {
			if seqs[e.seq] {
				return fmt.Errorf("%w: duplicate sequence number %d across shards — stores lack the global ordering sharded replay needs", ErrInput, e.seq)
			}
			seqs[e.seq] = true
		}
	}
	// Stable: single-shard legacy entries all carry seq 0, and their
	// construction order above is the store's arrival order.
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].seq < evs[j].seq })
	for si, idx := range c.idxs {
		c.globOf[si] = make([]int, idx.Len())
	}
	for g, e := range evs {
		c.names = append(c.names, e.name)
		c.keys = append(c.keys, e.key)
		alive := liveLocal[e.shard][e.local]
		c.live = append(c.live, alive)
		c.locOf = append(c.locOf, loc{e.shard, e.local})
		c.globOf[e.shard][e.local] = g
		c.seen[e.key] = true
		if alive {
			c.idOf[e.key] = g
		}
		if e.seq >= c.nextSeq {
			c.nextSeq = e.seq + 1
		}
	}
	return nil
}

// Add routes one column to its owning shard: journal first (with the next
// global sequence number), then the index, normalized for the metric. A
// key that is already live dedupes to its existing id. The key is marked
// seen either way. Returns the column's global id.
func (c *Catalog) Add(key catalog.Key, name string, vec []float64) (int, error) {
	c.seen[key] = true
	if id, ok := c.idOf[key]; ok {
		return id, nil
	}
	si := c.ring.owner(key)
	seq := c.nextSeq
	if c.stores != nil {
		op := catalog.Op{Kind: catalog.OpAdd, Entry: catalog.Entry{Key: key, Name: name, Vec: vec, Seq: seq}}
		if err := c.stores[si].Append(op); err != nil {
			return -1, fmt.Errorf("%w: journaling add: %v", ErrStore, err)
		}
	}
	if err := c.idxs[si].Add(c.normalized(vec)); err != nil {
		if c.stores != nil {
			// The journal already has the add (the vector passed the
			// store's own validation, so this is out-of-memory
			// territory): the store now leads the index.
			return -1, fmt.Errorf("%w: index add after journaled add: %v", ErrStore, err)
		}
		return -1, err
	}
	li := c.idxs[si].Len() - 1
	g := len(c.names)
	c.names = append(c.names, name)
	c.keys = append(c.keys, key)
	c.live = append(c.live, true)
	c.locOf = append(c.locOf, loc{si, li})
	c.globOf[si] = append(c.globOf[si], g)
	c.idOf[key] = g
	c.nextSeq = seq + 1
	return g, nil
}

// Remove retires the column with the given global id: journal first on
// the owning shard, then tombstone its index slot.
func (c *Catalog) Remove(id int) error {
	if id < 0 || id >= len(c.live) || !c.live[id] {
		return fmt.Errorf("%w: id %d is not a live column", ErrInput, id)
	}
	l := c.locOf[id]
	key := c.keys[id]
	if c.stores != nil {
		op := catalog.Op{Kind: catalog.OpRemove, Entry: catalog.Entry{Key: key}}
		if err := c.stores[l.shard].Append(op); err != nil {
			return fmt.Errorf("%w: journaling remove: %v", ErrStore, err)
		}
	}
	if err := c.idxs[l.shard].Remove(l.local); err != nil {
		if c.stores != nil {
			return fmt.Errorf("%w: index remove after journaled remove: %v", ErrStore, err)
		}
		return err
	}
	c.live[id] = false
	if key != (catalog.Key{}) {
		delete(c.idOf, key)
	}
	c.removals++
	return nil
}

// Search scatter-gathers q across every shard and merges the per-shard
// top-k by (distance, global id) — for exact indexes, byte-identical to
// an unsharded search over the same columns. q must already be normalized
// for the metric (it goes to the indexes verbatim). Safe to call
// concurrently with other Searches, not with mutations.
func (c *Catalog) Search(q []float64, k int) ([]ann.Result, error) {
	res, err := c.SearchBatch([][]float64{q}, k)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// SearchBatch scatter-gathers a whole batch of queries in one pass: each
// shard answers every query of the batch in a single Index.SearchBatch
// call (one timing observation per shard per batch), and the per-shard
// answers are merged per query exactly as Search merges them. Output is
// bit-identical to calling Search once per query, at every pool width and
// shard count. Queries must already be normalized for the metric. Safe to
// call concurrently with other searches, not with mutations.
func (c *Catalog) SearchBatch(qs [][]float64, k int) ([][]ann.Result, error) {
	if len(qs) == 0 {
		return nil, nil
	}
	per := make([][][]ann.Result, len(c.idxs))
	errs := make([]error, len(c.idxs))
	_ = c.pool.For(len(c.idxs), func(i int) error {
		if c.searchObs != nil {
			t := time.Now()
			per[i], errs[i] = c.idxs[i].SearchBatch(qs, k)
			c.searchObs(i, time.Since(t).Seconds())
			return nil
		}
		per[i], errs[i] = c.idxs[i].SearchBatch(qs, k)
		return nil
	})
	// Report the lowest-shard error for determinism.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	outs := make([][]ann.Result, len(qs))
	for j := range qs {
		var out []ann.Result
		for si, shardRes := range per {
			for _, r := range shardRes[j] {
				out = append(out, ann.Result{ID: c.globOf[si][r.ID], Dist: r.Dist})
			}
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Dist != out[j].Dist {
				return out[i].Dist < out[j].Dist
			}
			return out[i].ID < out[j].ID
		})
		if len(out) > k {
			out = out[:k]
		}
		outs[j] = out
	}
	return outs, nil
}

// Compact folds every shard's journal into its snapshot, rebuilds every
// index without its tombstones, and renumbers the survivors densely in
// global add order — the same order a fresh Replay of the compacted
// stores would assign. Stores compact before indexes rebuild, so a crash
// in between costs tombstone cleanup, not data. diverged reports whether
// any shard's store and index disagreed on the live count going in.
func (c *Catalog) Compact() (diverged bool, err error) {
	if c.stores != nil {
		for si, st := range c.stores {
			if st.Len() != c.idxs[si].Live() {
				diverged = true
			}
			if err := st.Compact(); err != nil {
				return diverged, fmt.Errorf("%w: compacting store %d: %v", ErrStore, si, err)
			}
		}
	}
	mappings := make([][]int, len(c.idxs))
	for si, idx := range c.idxs {
		m, err := idx.Rebuild()
		if err != nil {
			return diverged, fmt.Errorf("shard %d: rebuilding index: %w", si, err)
		}
		mappings[si] = m
	}
	names := make([]string, 0, len(c.names)-c.removals)
	keys := make([]catalog.Key, 0, cap(names))
	livef := make([]bool, 0, cap(names))
	locs := make([]loc, 0, cap(names))
	globOf := make([][]int, len(c.idxs))
	for si, idx := range c.idxs {
		globOf[si] = make([]int, idx.Len())
	}
	idOf := make(map[catalog.Key]int, cap(names))
	for oldG, alive := range c.live {
		if !alive {
			continue
		}
		l := c.locOf[oldG]
		nl := mappings[l.shard][l.local]
		if nl < 0 {
			continue
		}
		g := len(names)
		names = append(names, c.names[oldG])
		keys = append(keys, c.keys[oldG])
		livef = append(livef, true)
		locs = append(locs, loc{l.shard, nl})
		globOf[l.shard][nl] = g
		if c.keys[oldG] != (catalog.Key{}) {
			idOf[c.keys[oldG]] = g
		}
	}
	c.names, c.keys, c.live, c.locOf, c.globOf, c.idOf = names, keys, livef, locs, globOf, idOf
	c.removals = 0
	return diverged, nil
}

// normalized returns vec prepared for the shard metric, the way
// core.EmbedVectors prepares index rows.
func (c *Catalog) normalized(vec []float64) []float64 {
	if c.idxs[0].Metric() == ann.Cosine {
		return stats.L2Normalize(vec)
	}
	return vec
}

// Shards returns the shard count.
func (c *Catalog) Shards() int { return len(c.idxs) }

// Index exposes shard i's index (for stats and persistence; the catalog
// still owns its mutation discipline).
func (c *Catalog) Index(i int) ann.Index { return c.idxs[i] }

// Store exposes shard i's store, or nil for a store-less catalog.
func (c *Catalog) Store(i int) *catalog.Store {
	if c.stores == nil {
		return nil
	}
	return c.stores[i]
}

// Metric returns the shared shard metric.
func (c *Catalog) Metric() ann.Metric { return c.idxs[0].Metric() }

// Precision returns the shared shard precision.
func (c *Catalog) Precision() ann.Precision { return c.idxs[0].Precision() }

// Dim returns the embedding dimensionality, or 0 before any column
// lands.
func (c *Catalog) Dim() int {
	for _, idx := range c.idxs {
		if d := idx.Dim(); d > 0 {
			return d
		}
	}
	return 0
}

// Len counts all global ids, tombstones included.
func (c *Catalog) Len() int { return len(c.names) }

// Live counts live columns.
func (c *Catalog) Live() int {
	n := 0
	for _, idx := range c.idxs {
		n += idx.Live()
	}
	return n
}

// StoreLen sums the live entries across shard stores (0 when store-less).
func (c *Catalog) StoreLen() int {
	n := 0
	for _, st := range c.stores {
		n += st.Len()
	}
	return n
}

// RemovalsSinceCompact counts removals since the last Compact (or ever).
func (c *Catalog) RemovalsSinceCompact() int { return c.removals }

// Seen reports whether key was ever added (even if since removed).
func (c *Catalog) Seen(key catalog.Key) bool { return c.seen[key] }

// IDOf resolves a live content key to its global id.
func (c *Catalog) IDOf(key catalog.Key) (int, bool) {
	id, ok := c.idOf[key]
	return id, ok
}

// Name returns the column name behind a global id.
func (c *Catalog) Name(id int) string { return c.names[id] }

// Key returns the content key behind a global id (zero for preloaded
// vectors).
func (c *Catalog) Key(id int) catalog.Key { return c.keys[id] }

// IsLive reports whether a global id is in range and not tombstoned.
func (c *Catalog) IsLive(id int) bool { return id >= 0 && id < len(c.live) && c.live[id] }

// Owner returns the shard that owns key.
func (c *Catalog) Owner(key catalog.Key) int { return c.ring.owner(key) }
