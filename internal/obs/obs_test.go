package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help", nil)
	c.Inc()
	c.Add(4)
	c.Add(-3) // counters only go up; negative adds are dropped
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "help", nil); again != c {
		t.Fatal("re-registration returned a different counter instance")
	}
}

func TestGaugeSetAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g", "", nil)
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

// TestHistogramBoundaryEdges pins the le-inclusive bucket contract:
// a value exactly on a boundary lands in that boundary's bucket, values
// above every boundary land in +Inf, and the cumulative counts add up.
func TestHistogramBoundaryEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil, []float64{1, 2, 4})
	for _, v := range []float64{
		0.5, // below the first bound -> bucket le=1
		1,   // exactly on a boundary -> bucket le=1 (inclusive)
		2,   // exactly on a boundary -> bucket le=2
		3,   // between bounds -> bucket le=4
		4,   // top boundary -> bucket le=4
		5,   // above every bound -> +Inf overflow
		math.Inf(1),
	} {
		h.Observe(v)
	}
	want := []int64{2, 1, 2, 2} // per-bucket (non-cumulative) counts
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d count = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 7 {
		t.Errorf("total count = %d, want 7", got)
	}
	if got := h.Sum(); !math.IsInf(got, 1) {
		t.Errorf("sum = %v, want +Inf (an Inf observation was recorded)", got)
	}
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", nil, []float64{1})
	h.Observe(0.25)
	h.Observe(0.5)
	if got := h.Sum(); got != 0.75 {
		t.Errorf("sum = %v, want 0.75", got)
	}
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ExpBuckets(0,2,3) did not panic")
		}
	}()
	ExpBuckets(0, 2, 3)
}

// TestConcurrentUpdates hammers one counter, one gauge and one histogram
// from many goroutines; run under -race this is the lock-free-safety
// check, and the final values pin that no update was lost.
func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "", nil)
	g := r.Gauge("g", "", nil)
	h := r.Histogram("h", "", nil, ExpBuckets(0.001, 2, 10))
	const workers, per = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%7) * 0.001)
				// Concurrent registration of the same coordinates must
				// stay idempotent too.
				if r.Counter("c_total", "", nil) != c {
					t.Error("concurrent re-registration returned a new instance")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != workers*per {
		t.Errorf("gauge = %v, want %d", got, workers*per)
	}
	if got := h.Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
}

// TestExpositionGolden pins the exact exposition bytes: family and series
// order, label rendering, cumulative histogram buckets, +Inf, sum/count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests served.", Labels{"endpoint": "/embed"}).Add(3)
	r.Counter("app_requests_total", "Requests served.", Labels{"endpoint": "/search"}).Add(1)
	r.Gauge("app_temperature", "", nil).Set(36.6)
	r.GaugeFunc("app_live", "Live entries.", nil, func() float64 { return 7 })
	h := r.Histogram("app_latency_seconds", "Request latency.", Labels{"endpoint": "/embed"}, []float64{0.01, 0.1})
	h.Observe(0.005)
	h.Observe(0.01) // boundary: lands in le="0.01"
	h.Observe(0.05)
	h.Observe(3)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP app_latency_seconds Request latency.
# TYPE app_latency_seconds histogram
app_latency_seconds_bucket{endpoint="/embed",le="0.01"} 2
app_latency_seconds_bucket{endpoint="/embed",le="0.1"} 3
app_latency_seconds_bucket{endpoint="/embed",le="+Inf"} 4
app_latency_seconds_sum{endpoint="/embed"} 3.065
app_latency_seconds_count{endpoint="/embed"} 4
# HELP app_live Live entries.
# TYPE app_live gauge
app_live 7
# HELP app_requests_total Requests served.
# TYPE app_requests_total counter
app_requests_total{endpoint="/embed"} 3
app_requests_total{endpoint="/search"} 1
# TYPE app_temperature gauge
app_temperature 36.6
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "", Labels{"path": "a\\b\"c\nd"}).Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `c_total{path="a\\b\"c\nd"} 1`
	if !strings.Contains(b.String(), want) {
		t.Errorf("exposition %q does not contain %q", b.String(), want)
	}
}

// TestNilSafety pins the off switch: a nil registry hands out nil
// instruments and every operation no-ops without panicking.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("c_total", "", nil)
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Error("nil counter has a value")
	}
	g := r.Gauge("g", "", nil)
	g.Set(1)
	g.Add(1)
	if g.Value() != 0 {
		t.Error("nil gauge has a value")
	}
	h := r.Histogram("h", "", nil, []float64{1})
	h.Observe(0.5)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram recorded an observation")
	}
	r.GaugeFunc("f", "", nil, func() float64 { return 1 })
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry exposition: %v", err)
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("registering m as a gauge after a counter did not panic")
		}
	}()
	r.Gauge("m", "", nil)
}

func TestBuildInfo(t *testing.T) {
	goVersion, modVersion, revision := BuildInfo()
	if goVersion == "" || modVersion == "" || revision == "" {
		t.Errorf("BuildInfo returned empties: %q %q %q", goVersion, modVersion, revision)
	}
	if !strings.HasPrefix(goVersion, "go") {
		t.Errorf("go version = %q", goVersion)
	}
}
