// Package obs is Gem's zero-dependency metrics core: atomic counters,
// gauges and fixed-boundary histograms behind a named registry with
// Prometheus text-format exposition.
//
// Design constraints, in order:
//
//   - Allocation-light hot path. Counter.Add and Histogram.Observe are a
//     handful of atomic operations — no maps, no locks, no allocation —
//     so instrumentation can sit on the serve layer's request path
//     without showing up in its latency percentiles.
//   - Determinism-neutral by construction. Metrics are write-only from
//     the instrumented code's point of view: nothing in this package
//     feeds back into request handling, so responses are byte-identical
//     with metrics on or off. The serve determinism suite pins that.
//   - Nil-safe off switch. Every method is a no-op on a nil receiver and
//     a nil *Registry hands out nil instruments, so callers wire
//     instrumentation unconditionally and disable it by not building a
//     registry — no flag checks at the call sites.
//
// Exposition is deterministic: families sort by name, series sort by
// label signature, and floats render in Go 'g' format, so golden tests
// can assert exact output and scrapes diff cleanly.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels are the constant label set of one series. Instruments are
// registered per label combination; the hot path never touches a label
// map.
type Labels map[string]string

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n (n < 0 is ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed upper-boundary buckets
// (Prometheus le semantics: bucket i counts v <= bounds[i], inclusive),
// with an implicit +Inf overflow bucket, plus a running sum. Boundaries
// are frozen at registration; Observe is lock-free.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Upper bound search: first boundary >= v. Values exactly on a
	// boundary land in that boundary's bucket (le is inclusive).
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of all observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// ExpBuckets returns n exponentially growing upper boundaries starting at
// start: start, start·factor, start·factor², … — the standard latency
// histogram shape. start must be positive and factor > 1.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("obs: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DefBuckets are the default latency boundaries in seconds: 100µs to
// ~3.3s in ×2 steps — wide enough for a cache hit and a cold sharded
// search to land in distinct buckets.
func DefBuckets() []float64 { return ExpBuckets(100e-6, 2, 16) }

// metricKind tags a registered family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// series is one registered (name, labels) instrument.
type series struct {
	labels string // rendered {k="v",...} signature, "" for none
	ctr    *Counter
	gauge  *Gauge
	fn     func() float64
	hist   *Histogram
}

// family groups the series of one metric name.
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series
	order  []string // label signatures in sorted order, maintained on insert
}

// Registry is a named collection of instruments. All methods are safe for
// concurrent use; registration takes a lock, instruments do not. A nil
// *Registry hands out nil instruments (whose methods no-op), which is the
// metrics-disabled mode.
type Registry struct {
	mu  sync.Mutex
	fam map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fam: make(map[string]*family)}
}

// lookup finds or creates the (name, labels) series, enforcing that one
// name keeps one kind and one help string.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels) *series {
	sig := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fam[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.fam[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	s, ok := f.series[sig]
	if !ok {
		s = &series{labels: sig}
		f.series[sig] = s
		i := sort.SearchStrings(f.order, sig)
		f.order = append(f.order, "")
		copy(f.order[i+1:], f.order[i:])
		f.order[i] = sig
	}
	return s
}

// Counter returns the counter for (name, labels), creating it on first
// use. Repeated calls with the same coordinates return the same instance.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindCounter, labels)
	if s.ctr == nil {
		s.ctr = &Counter{}
	}
	return s.ctr
}

// Gauge returns the gauge for (name, labels), creating it on first use.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed by fn at exposition
// time — for values that already live elsewhere (cache sizes, live column
// counts) and would otherwise need write-through shadowing. fn must be
// safe to call concurrently with anything.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	s := r.lookup(name, help, kindGaugeFunc, labels)
	s.fn = fn
}

// Histogram returns the histogram for (name, labels) with the given upper
// boundaries (ascending; an implicit +Inf bucket is appended), creating
// it on first use. Later calls with the same coordinates return the first
// instance; their bounds argument is ignored.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	s := r.lookup(name, help, kindHistogram, labels)
	if s.hist == nil {
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				panic(fmt.Sprintf("obs: histogram %q bounds not ascending at %d", name, i))
			}
		}
		s.hist = &Histogram{
			bounds: append([]float64(nil), bounds...),
			counts: make([]atomic.Int64, len(bounds)+1),
		}
	}
	return s.hist
}

// WritePrometheus renders every registered series in the Prometheus text
// exposition format (version 0.0.4), families sorted by name and series
// by label signature.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	// The registry lock is held across the whole render: registration is
	// rare and cheap, instrument updates never take this lock, and holding
	// it keeps family.order immutable while it is iterated. GaugeFunc
	// callbacks therefore must not register metrics (they read foreign
	// state, they don't create it).
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fam))
	for name := range r.fam {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.fam[name]
	}

	var b strings.Builder
	for _, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, sig := range f.order {
			s := f.series[sig]
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, sig, s.ctr.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, fmtFloat(s.gauge.Value()))
			case kindGaugeFunc:
				v := 0.0
				if s.fn != nil {
					v = s.fn()
				}
				fmt.Fprintf(&b, "%s%s %s\n", f.name, sig, fmtFloat(v))
			case kindHistogram:
				h := s.hist
				var cum int64
				for i, bound := range h.bounds {
					cum += h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLE(sig, fmtFloat(bound)), cum)
				}
				cum += h.counts[len(h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLE(sig, "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, sig, fmtFloat(h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, sig, cum)
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves the registry as GET /metrics content
// (text/plain; version=0.0.4).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// fmtFloat renders a float the shortest way that round-trips.
func fmtFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// renderLabels renders a deterministic {k="v",...} signature (empty
// string for no labels), escaping backslashes, quotes and newlines per
// the exposition format.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLE splices the le label into an existing signature, keeping the
// histogram's constant labels.
func withLE(sig, le string) string {
	if sig == "" {
		return `{le="` + le + `"}`
	}
	return sig[:len(sig)-1] + `,le="` + le + `"}`
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// BuildInfo reports the running binary's identity from
// debug.ReadBuildInfo: the Go toolchain version, the main module version,
// and the VCS revision when the build recorded one ("unknown" where the
// build info is absent, e.g. plain `go test` binaries).
func BuildInfo() (goVersion, modVersion, revision string) {
	goVersion, modVersion, revision = runtime.Version(), "unknown", "unknown"
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return
	}
	if bi.Main.Version != "" {
		modVersion = bi.Main.Version
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" {
			revision = s.Value
		}
	}
	return
}
