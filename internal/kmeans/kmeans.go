// Package kmeans implements Lloyd's algorithm with k-means++ seeding for
// d-dimensional data. It serves two roles in the Gem reproduction: seeding
// the EM algorithm for the Gaussian mixture model (cluster means become
// initial component means) and initializing the cluster centroids of the
// deep-clustering models (SDCN, TableDC) before their self-supervised
// refinement, as the original methods do.
package kmeans

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
)

// ErrInput is returned for invalid clustering inputs.
var ErrInput = errors.New("kmeans: invalid input")

// Result holds the output of a k-means run.
type Result struct {
	// Centroids are the final cluster centers, one row per cluster.
	Centroids [][]float64
	// Assignments maps each input point to its cluster index.
	Assignments []int
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// Config controls a k-means run.
type Config struct {
	// K is the number of clusters (required, >= 1).
	K int
	// MaxIter caps Lloyd iterations. Default 100.
	MaxIter int
	// Tol stops iteration when inertia improves by less than Tol relatively.
	// Default 1e-6.
	Tol float64
	// Restarts runs the whole algorithm this many times with different seeds
	// and keeps the best inertia. Default 1.
	Restarts int
	// Seed makes the run deterministic.
	Seed int64
}

func (c *Config) fillDefaults() {
	if c.MaxIter <= 0 {
		c.MaxIter = 100
	}
	if c.Tol <= 0 {
		c.Tol = 1e-6
	}
	if c.Restarts <= 0 {
		c.Restarts = 1
	}
}

// Run clusters points into cfg.K clusters. Points must be non-empty and
// rectangular, and K must not exceed the number of points.
func Run(points [][]float64, cfg Config) (*Result, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("%w: no points", ErrInput)
	}
	d := len(points[0])
	if d == 0 {
		return nil, fmt.Errorf("%w: zero-dimensional points", ErrInput)
	}
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrInput, i, len(p), d)
		}
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: K = %d", ErrInput, cfg.K)
	}
	if cfg.K > len(points) {
		return nil, fmt.Errorf("%w: K = %d > %d points", ErrInput, cfg.K, len(points))
	}
	cfg.fillDefaults()

	var best *Result
	for r := 0; r < cfg.Restarts; r++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*7919))
		res := runOnce(points, cfg, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func runOnce(points [][]float64, cfg Config, rng *rand.Rand) *Result {
	d := len(points[0])
	centroids := seedPlusPlus(points, cfg.K, rng)
	assignments := make([]int, len(points))
	prevInertia := math.Inf(1)
	iterations := 0

	for iter := 0; iter < cfg.MaxIter; iter++ {
		iterations = iter + 1
		// Assignment step.
		var inertia float64
		for i, p := range points {
			bestC, bestD := 0, math.Inf(1)
			for c, cent := range centroids {
				dd := sqDist(p, cent)
				if dd < bestD {
					bestD = dd
					bestC = c
				}
			}
			assignments[i] = bestC
			inertia += bestD
		}
		// Update step.
		counts := make([]int, cfg.K)
		sums := make([][]float64, cfg.K)
		for c := range sums {
			sums[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assignments[i]
			counts[c]++
			for j, v := range p {
				sums[c][j] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its
				// centroid to keep K clusters alive.
				far, farD := 0, -1.0
				for i, p := range points {
					dd := sqDist(p, centroids[assignments[i]])
					if dd > farD {
						farD = dd
						far = i
					}
				}
				copy(centroids[c], points[far])
				continue
			}
			for j := range centroids[c] {
				centroids[c][j] = sums[c][j] / float64(counts[c])
			}
		}
		if prevInertia-inertia <= cfg.Tol*math.Max(prevInertia, 1) {
			prevInertia = inertia
			break
		}
		prevInertia = inertia
	}

	// Final assignment with the final centroids.
	var inertia float64
	for i, p := range points {
		bestC, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			dd := sqDist(p, cent)
			if dd < bestD {
				bestD = dd
				bestC = c
			}
		}
		assignments[i] = bestC
		inertia += bestD
	}
	return &Result{
		Centroids:   centroids,
		Assignments: assignments,
		Inertia:     inertia,
		Iterations:  iterations,
	}
}

// seedPlusPlus picks K initial centroids by the k-means++ scheme: the first
// uniformly, each next proportional to squared distance from the nearest
// chosen centroid.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	d := len(points[0])
	centroids := make([][]float64, 0, k)
	first := append(make([]float64, 0, d), points[rng.Intn(len(points))]...)
	centroids = append(centroids, first)

	dists := make([]float64, len(points))
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			dd := math.Inf(1)
			for _, c := range centroids {
				if v := sqDist(p, c); v < dd {
					dd = v
				}
			}
			dists[i] = dd
			total += dd
		}
		var idx int
		if total == 0 {
			// All points coincide with existing centroids; pick uniformly.
			idx = rng.Intn(len(points))
		} else {
			target := rng.Float64() * total
			var cum float64
			for i, dd := range dists {
				cum += dd
				if cum >= target {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append(make([]float64, 0, d), points[idx]...))
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Assign returns the index of the nearest centroid for each point.
func Assign(points, centroids [][]float64) ([]int, error) {
	if len(points) == 0 || len(centroids) == 0 {
		return nil, fmt.Errorf("%w: empty points or centroids", ErrInput)
	}
	d := len(centroids[0])
	out := make([]int, len(points))
	for i, p := range points {
		if len(p) != d {
			return nil, fmt.Errorf("%w: point %d has dim %d, want %d", ErrInput, i, len(p), d)
		}
		bestC, bestD := 0, math.Inf(1)
		for c, cent := range centroids {
			dd := sqDist(p, cent)
			if dd < bestD {
				bestD = dd
				bestC = c
			}
		}
		out[i] = bestC
	}
	return out, nil
}
