package kmeans

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// twoBlobs returns two well-separated 2-D Gaussian blobs.
func twoBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	pts := make([][]float64, 0, 2*n)
	truth := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3})
		truth = append(truth, 0)
	}
	for i := 0; i < n; i++ {
		pts = append(pts, []float64{10 + rng.NormFloat64()*0.3, 10 + rng.NormFloat64()*0.3})
		truth = append(truth, 1)
	}
	return pts, truth
}

func TestRunSeparatesBlobs(t *testing.T) {
	pts, truth := twoBlobs(50, 1)
	res, err := Run(pts, Config{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// All points in the same blob must share a cluster.
	if res.Assignments[0] == res.Assignments[len(pts)-1] {
		t.Fatal("blobs not separated")
	}
	for i, a := range res.Assignments {
		if a != res.Assignments[truth[i]*50] {
			t.Fatalf("point %d misassigned", i)
		}
	}
	if res.Inertia > 100 {
		t.Errorf("inertia = %v, expected small for tight blobs", res.Inertia)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(nil, Config{K: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
	if _, err := Run([][]float64{{1}, {2}}, Config{K: 0}); !errors.Is(err, ErrInput) {
		t.Errorf("K=0: want ErrInput, got %v", err)
	}
	if _, err := Run([][]float64{{1}}, Config{K: 2}); !errors.Is(err, ErrInput) {
		t.Errorf("K>n: want ErrInput, got %v", err)
	}
	if _, err := Run([][]float64{{1, 2}, {1}}, Config{K: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("ragged: want ErrInput, got %v", err)
	}
	if _, err := Run([][]float64{{}}, Config{K: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("zero-dim: want ErrInput, got %v", err)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	pts, _ := twoBlobs(30, 2)
	a, err := Run(pts, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pts, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if a.Inertia != b.Inertia {
		t.Errorf("same seed gave different inertia: %v vs %v", a.Inertia, b.Inertia)
	}
	for i := range a.Assignments {
		if a.Assignments[i] != b.Assignments[i] {
			t.Fatalf("same seed gave different assignment at %d", i)
		}
	}
}

func TestRunKEqualsN(t *testing.T) {
	pts := [][]float64{{0}, {5}, {10}}
	res, err := Run(pts, Config{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-12 {
		t.Errorf("K = n should have zero inertia, got %v", res.Inertia)
	}
	seen := map[int]bool{}
	for _, a := range res.Assignments {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Errorf("K = n should use all clusters, got %v", res.Assignments)
	}
}

func TestRunSingleCluster(t *testing.T) {
	pts := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	res, err := Run(pts, Config{K: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Centroids[0][0]-2) > 1e-9 || math.Abs(res.Centroids[0][1]-2) > 1e-9 {
		t.Errorf("single centroid = %v, want (2,2)", res.Centroids[0])
	}
}

func TestRunIdenticalPoints(t *testing.T) {
	pts := [][]float64{{4, 4}, {4, 4}, {4, 4}, {4, 4}}
	res, err := Run(pts, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Errorf("identical points: inertia = %v, want 0", res.Inertia)
	}
}

func TestRestartsImproveOrEqual(t *testing.T) {
	pts, _ := twoBlobs(40, 5)
	single, err := Run(pts, Config{K: 4, Seed: 11, Restarts: 1})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Run(pts, Config{K: 4, Seed: 11, Restarts: 8})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Inertia > single.Inertia+1e-9 {
		t.Errorf("more restarts worsened inertia: %v > %v", multi.Inertia, single.Inertia)
	}
}

func TestInertiaNonIncreasingInKProperty(t *testing.T) {
	pts, _ := twoBlobs(25, 9)
	prev := math.Inf(1)
	for k := 1; k <= 6; k++ {
		res, err := Run(pts, Config{K: k, Seed: 13, Restarts: 6})
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev*1.05 { // small slack: Lloyd is a local optimizer
			t.Errorf("K=%d inertia %v > K=%d inertia %v", k, res.Inertia, k-1, prev)
		}
		prev = res.Inertia
	}
}

func TestAssignmentsAreNearestCentroidProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(30)
		pts := make([][]float64, n)
		for i := range pts {
			pts[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
		}
		k := 1 + rng.Intn(4)
		res, err := Run(pts, Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		for i, p := range pts {
			best, bestD := 0, math.Inf(1)
			for c, cent := range res.Centroids {
				d0 := p[0] - cent[0]
				d1 := p[1] - cent[1]
				dd := d0*d0 + d1*d1
				if dd < bestD {
					bestD = dd
					best = c
				}
			}
			cent := res.Centroids[res.Assignments[i]]
			d0 := p[0] - cent[0]
			d1 := p[1] - cent[1]
			if d0*d0+d1*d1 > bestD+1e-9 {
				_ = best
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAssign(t *testing.T) {
	centroids := [][]float64{{0, 0}, {10, 10}}
	pts := [][]float64{{1, 1}, {9, 9}, {-2, 0}}
	got, err := Assign(pts, centroids)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Assign = %v, want %v", got, want)
			break
		}
	}
	if _, err := Assign(nil, centroids); !errors.Is(err, ErrInput) {
		t.Errorf("empty points: want ErrInput, got %v", err)
	}
	if _, err := Assign([][]float64{{1}}, centroids); !errors.Is(err, ErrInput) {
		t.Errorf("dim mismatch: want ErrInput, got %v", err)
	}
}
