package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// The CSV exporters below emit plot-ready long-format data (one observation
// per row) for every experiment result, so the paper's figures can be
// regenerated with any plotting tool from gembench output.

// WriteCSV exports Table 2 as method,dataset,precision rows.
func (r *Table2Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "dataset", "avg_precision"}); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	for _, m := range r.Methods {
		for _, ds := range r.Datasets {
			if err := cw.Write([]string{m, ds, formatF(r.Scores[m][ds])}); err != nil {
				return fmt.Errorf("experiments: export: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Table 3 as method,dataset,precision rows.
func (r *Table3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "dataset", "avg_precision"}); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	for _, m := range r.Methods {
		for _, ds := range r.Datasets {
			if err := cw.Write([]string{m, ds, formatF(r.Scores[m][ds])}); err != nil {
				return fmt.Errorf("experiments: export: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Table 4 as embedding,dataset,algorithm,setting,ari,acc
// rows.
func (r *Table4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"embedding", "dataset", "algorithm", "setting", "ari", "acc"}); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	embeddings := make([]string, 0, len(r.Cells))
	for e := range r.Cells {
		embeddings = append(embeddings, e)
	}
	sort.Strings(embeddings)
	for _, emb := range embeddings {
		for _, ds := range r.Datasets {
			keys := make([]string, 0, len(r.Cells[emb][ds]))
			for k := range r.Cells[emb][ds] {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, key := range keys {
				cell := r.Cells[emb][ds][key]
				algo, setting := splitKey(key)
				if err := cw.Write([]string{emb, ds, algo, setting, formatF(cell.ARI), formatF(cell.ACC)}); err != nil {
					return fmt.Errorf("experiments: export: %w", err)
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Figure 3 as dataset,combo,precision rows.
func (r *Figure3Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "combo", "avg_precision"}); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	for _, ds := range sortedKeys(r.Scores) {
		for _, combo := range r.Combos {
			if err := cw.Write([]string{ds, combo, formatF(r.Scores[ds][combo])}); err != nil {
				return fmt.Errorf("experiments: export: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Figure 4 as dataset,components,precision rows.
func (r *Figure4Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"dataset", "components", "avg_precision"}); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	for _, ds := range sortedKeys(r.Scores) {
		for _, m := range r.Components {
			if err := cw.Write([]string{ds, strconv.Itoa(m), formatF(r.Scores[ds][m])}); err != nil {
				return fmt.Errorf("experiments: export: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSV exports Figure 5 as method,columns,seconds rows.
func (r *Figure5Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"method", "columns", "seconds"}); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	for _, m := range r.Methods {
		for _, n := range r.ColumnCounts {
			if err := cw.Write([]string{m, strconv.Itoa(n), formatF(r.Seconds[m][n])}); err != nil {
				return fmt.Errorf("experiments: export: %w", err)
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

func formatF(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// splitKey splits an "algo/setting" cell key.
func splitKey(key string) (algo, setting string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '/' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}
