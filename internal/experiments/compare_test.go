package experiments

import (
	"strings"
	"testing"
)

func benchFixture() *BenchReport {
	return &BenchReport{
		Schema: BenchSchemaVersion,
		Search: &SearchReport{
			RecallAtK: 0.99, FlatQPS: 1000, HNSWQPS: 8000,
			Tiers: []TierReport{
				{Precision: "float64", FlatRecallAtK: 1, RecallAtK: 0.99, FlatQPS: 1000, HNSWQPS: 8000},
				{Precision: "float32", FlatRecallAtK: 0.999, RecallAtK: 0.99, FlatQPS: 1800, HNSWQPS: 9000},
			},
		},
		Serve: &ServeReport{Points: []ServePointReport{
			{DupFraction: 0, QPS: 500, HitRate: 0},
			{DupFraction: 0.5, QPS: 900, HitRate: 0.45},
		}},
	}
}

// TestCompareBenchReports drives the regression gate over a table of
// mutations: identical reports pass, tolerated jitter passes, and each
// class of real regression produces a violation naming the metric.
func TestCompareBenchReports(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*BenchReport)
		want   string // substring of an expected violation; "" = pass
	}{
		{"identical", func(b *BenchReport) {}, ""},
		{"tolerated-jitter", func(b *BenchReport) {
			b.Search.RecallAtK -= 0.03
			b.Search.FlatQPS /= 2
			b.Serve.Points[1].HitRate -= 0.05
		}, ""},
		{"extra-tier-ok", func(b *BenchReport) {
			b.Search.Tiers = append(b.Search.Tiers, TierReport{Precision: "int8"})
		}, ""},
		{"schema-regress", func(b *BenchReport) { b.Schema = 1 }, "schema regressed"},
		{"recall-drop", func(b *BenchReport) { b.Search.RecallAtK = 0.8 }, "search recall@k dropped"},
		{"tier-recall-drop", func(b *BenchReport) { b.Search.Tiers[1].RecallAtK = 0.5 }, "tier float32 hnsw recall@k"},
		{"qps-collapse", func(b *BenchReport) { b.Search.HNSWQPS = 100 }, "hnsw search collapsed"},
		{"tier-qps-collapse", func(b *BenchReport) { b.Search.Tiers[1].FlatQPS = 10 }, "tier float32 flat search collapsed"},
		{"tier-missing", func(b *BenchReport) { b.Search.Tiers = b.Search.Tiers[:1] }, `tier "float32" missing`},
		{"search-missing", func(b *BenchReport) { b.Search = nil }, "search section missing"},
		{"serve-missing", func(b *BenchReport) { b.Serve = nil }, "serve section missing"},
		{"hit-rate-moved", func(b *BenchReport) { b.Serve.Points[1].HitRate = 0.1 }, "hit rate moved"},
		{"serve-point-missing", func(b *BenchReport) { b.Serve.Points = b.Serve.Points[:1] }, "serve point dup=0.50 missing"},
		{"serve-qps-collapse", func(b *BenchReport) { b.Serve.Points[0].QPS = 10 }, "serve dup=0.00 collapsed"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			fresh := benchFixture()
			tc.mutate(fresh)
			got := CompareBenchReports(benchFixture(), fresh)
			if tc.want == "" {
				if len(got) != 0 {
					t.Fatalf("want pass, got violations: %v", got)
				}
				return
			}
			for _, v := range got {
				if strings.Contains(v, tc.want) {
					return
				}
			}
			t.Fatalf("no violation containing %q in %v", tc.want, got)
		})
	}
}

// TestReadBenchReportRoundTrip: a written report decodes back.
func TestReadBenchReportRoundTrip(t *testing.T) {
	var buf strings.Builder
	if err := benchFixture().Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBenchReport(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema != BenchSchemaVersion || got.Search == nil || len(got.Search.Tiers) != 2 || got.Serve == nil {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if _, err := ReadBenchReport(strings.NewReader("{broken")); err == nil {
		t.Fatal("corrupt JSON: want error")
	}
}
