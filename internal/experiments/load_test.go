package experiments

import (
	"math"
	"strings"
	"testing"
)

func tinyLoadOpts() LoadOptions {
	return LoadOptions{
		Options: tinyOpts(),
		Columns: 40,
		Ops:     120,
		Clients: 4,
		Shards:  2,
	}
}

func TestLoadEval(t *testing.T) {
	opts := tinyLoadOpts()
	res, err := LoadEval(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 2 || res.Clients != 4 || res.Columns != 40 {
		t.Fatalf("shape: %+v", res)
	}
	total := res.Searches + res.Adds + res.Removes
	if total != 120 {
		t.Fatalf("op counts %d/%d/%d sum to %d, want 120", res.Searches, res.Adds, res.Removes, total)
	}
	// The mix tracks the default 0.75/0.15/0.10 split loosely (removes can
	// degrade to adds early in a stream).
	if res.Searches < 70 || res.Adds < 5 || res.Removes < 1 {
		t.Fatalf("implausible op mix: %d/%d/%d", res.Searches, res.Adds, res.Removes)
	}
	if res.LiveColumns != res.Columns+res.Adds-res.Removes {
		t.Fatalf("live %d, want %d", res.LiveColumns, res.Columns+res.Adds-res.Removes)
	}
	if res.QPS <= 0 || res.SearchP50Ms <= 0 || res.SearchP99Ms < res.SearchP50Ms {
		t.Fatalf("timings implausible: %+v", res)
	}
	if res.OpenLoopAchievedQPS <= 0 {
		t.Fatalf("open-loop probe recorded nothing: %+v", res)
	}
	if len(res.SLOViolations) != 0 {
		t.Fatalf("violations without SLOs configured: %v", res.SLOViolations)
	}
	for _, want := range []string{"load eval", "closed loop", "open loop", "p99"} {
		if !strings.Contains(res.String(), want) {
			t.Errorf("String() missing %q:\n%s", want, res.String())
		}
	}

	// Determinism of the non-wall-clock facts: a rerun realizes the same
	// op counts and final catalog size.
	res2, err := LoadEval(opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Searches != res.Searches || res2.Adds != res.Adds ||
		res2.Removes != res.Removes || res2.LiveColumns != res.LiveColumns {
		t.Fatalf("op stream not deterministic: %+v vs %+v", res2, res)
	}
}

func TestLoadEvalSLOViolation(t *testing.T) {
	opts := tinyLoadOpts()
	opts.SLO = LoadSLO{P50Ms: 1e-9} // unattainably tight: must be flagged
	res, err := LoadEval(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.SLOViolations) == 0 {
		t.Fatal("impossible SLO not flagged")
	}
	if !strings.Contains(res.SLOViolations[0], "search p50") {
		t.Fatalf("violation text: %v", res.SLOViolations)
	}
	if !strings.Contains(res.String(), "SLO VIOLATION") {
		t.Errorf("String() hides the violation:\n%s", res.String())
	}
}

func TestLoadEvalRejectsBadFractions(t *testing.T) {
	opts := tinyLoadOpts()
	opts.SearchFrac, opts.AddFrac, opts.RemoveFrac = 0.9, 0.3, 0.1
	if _, err := LoadEval(opts); err == nil || !strings.Contains(err.Error(), "sum to") {
		t.Fatalf("bad fraction sum: %v", err)
	}
	opts = tinyLoadOpts()
	opts.SearchFrac, opts.AddFrac, opts.RemoveFrac = 1.2, -0.3, 0.1
	if _, err := LoadEval(opts); err == nil || !strings.Contains(err.Error(), "non-negative") {
		t.Fatalf("negative fraction: %v", err)
	}
}

func TestPercentileMs(t *testing.T) {
	vals := []float64{1, 2, 3, 4, 5}
	for _, tc := range []struct{ p, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.9, 4.6},
	} {
		if got := percentileMs(vals, tc.p); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("percentileMs(%.2f) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentileMs(nil, 0.5); got != 0 {
		t.Errorf("empty sample percentile = %v", got)
	}
}

func TestCompareLoad(t *testing.T) {
	base := &LoadReport{
		Searches: 90, Adds: 20, Removes: 10, LiveColumns: 50,
		QPS:      1000,
		SLOP99Ms: 5,
	}
	same := &LoadReport{
		Searches: 90, Adds: 20, Removes: 10, LiveColumns: 50,
		QPS: 900, SearchP99Ms: 3,
	}
	if v := compareLoad(base, same); len(v) != 0 {
		t.Fatalf("clean run flagged: %v", v)
	}

	for name, fresh := range map[string]*LoadReport{
		"mix": {Searches: 91, Adds: 19, Removes: 10, LiveColumns: 50, QPS: 900},
		"live": {Searches: 90, Adds: 20, Removes: 10, LiveColumns: 49,
			QPS: 900},
		"qps-collapse": {Searches: 90, Adds: 20, Removes: 10, LiveColumns: 50,
			QPS: 10},
		"slo-breach": {Searches: 90, Adds: 20, Removes: 10, LiveColumns: 50,
			QPS: 900, SearchP99Ms: 50},
		"self-violation": {Searches: 90, Adds: 20, Removes: 10, LiveColumns: 50,
			QPS: 900, SLOViolations: []string{"search p95 breached"}},
	} {
		if v := compareLoad(base, fresh); len(v) == 0 {
			t.Errorf("%s regression not flagged", name)
		}
	}

	// The section gate: a baseline with load requires fresh load.
	b := &BenchReport{Schema: 3, Load: base}
	if v := CompareBenchReports(b, &BenchReport{Schema: 3}); len(v) == 0 ||
		!strings.Contains(v[0], "load section missing") {
		t.Errorf("missing load section not flagged: %v", v)
	}
}
