package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// RenderTable1 formats dataset statistics as a paper-style text table.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1: Dataset statistics (synthetic corpora; fine types in brackets)\n")
	fmt.Fprintf(&b, "%-12s %10s %18s %12s\n", "Dataset", "#Columns", "#GT clusters", "#Cells")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %10d %10d (%d) %12d\n",
			r.Dataset, r.Columns, r.CoarseTypes, r.FineTypes, r.TotalCells)
	}
	return b.String()
}

// String renders Table 2 in the paper's layout (methods × datasets).
func (r *Table2Result) String() string {
	var b strings.Builder
	b.WriteString("Table 2: Average precision, numeric-only, coarse-grained labels\n")
	fmt.Fprintf(&b, "%-24s", "Method")
	for _, ds := range r.Datasets {
		fmt.Fprintf(&b, " %12s", ds)
	}
	b.WriteString("\n")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "%-24s", m)
		for _, ds := range r.Datasets {
			fmt.Fprintf(&b, " %12.2f", r.Scores[m][ds])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders Table 3 in the paper's layout.
func (r *Table3Result) String() string {
	var b strings.Builder
	b.WriteString("Table 3: Average precision, headers + values, fine-grained labels\n")
	fmt.Fprintf(&b, "%-28s", "Method")
	for _, ds := range r.Datasets {
		fmt.Fprintf(&b, " %10s", ds)
	}
	b.WriteString("\n")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, "%-28s", m)
		for _, ds := range r.Datasets {
			fmt.Fprintf(&b, " %10.3f", r.Scores[m][ds])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders Table 4 with one row per embedding × algorithm × setting.
func (r *Table4Result) String() string {
	var b strings.Builder
	b.WriteString("Table 4: Clustering results (ARI / ACC)\n")
	fmt.Fprintf(&b, "%-14s %-10s %-18s", "Embedding", "Algo", "Setting")
	for _, ds := range r.Datasets {
		fmt.Fprintf(&b, " %16s", ds)
	}
	b.WriteString("\n")
	embeddings := make([]string, 0, len(r.Cells))
	for e := range r.Cells {
		embeddings = append(embeddings, e)
	}
	sort.Strings(embeddings)
	for _, emb := range embeddings {
		for _, algo := range []string{"TableDC", "SDCN"} {
			for _, setting := range r.Settings {
				key := algo + "/" + setting
				// Skip rows absent everywhere (e.g. SOM headers-only).
				present := false
				for _, ds := range r.Datasets {
					if _, ok := r.Cells[emb][ds][key]; ok {
						present = true
						break
					}
				}
				if !present {
					continue
				}
				fmt.Fprintf(&b, "%-14s %-10s %-18s", emb, algo, setting)
				for _, ds := range r.Datasets {
					cell, ok := r.Cells[emb][ds][key]
					if !ok {
						fmt.Fprintf(&b, " %16s", "-")
						continue
					}
					fmt.Fprintf(&b, "      %5.2f/%5.2f", cell.ARI, cell.ACC)
				}
				b.WriteString("\n")
			}
		}
	}
	return b.String()
}

// String renders the Figure 3 ablation series.
func (r *Figure3Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 3: Average precision per feature combination (fine-grained)\n")
	fmt.Fprintf(&b, "%-10s", "Combo")
	datasets := sortedKeys(r.Scores)
	for _, ds := range datasets {
		fmt.Fprintf(&b, " %10s", ds)
	}
	b.WriteString("\n")
	for _, combo := range r.Combos {
		fmt.Fprintf(&b, "%-10s", combo)
		for _, ds := range datasets {
			fmt.Fprintf(&b, " %10.3f", r.Scores[ds][combo])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders the Figure 4 component sweep.
func (r *Figure4Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 4: Precision vs number of GMM components\n")
	fmt.Fprintf(&b, "%-12s", "Components")
	datasets := sortedKeys(r.Scores)
	for _, ds := range datasets {
		fmt.Fprintf(&b, " %12s", ds)
	}
	b.WriteString("\n")
	for _, m := range r.Components {
		fmt.Fprintf(&b, "%-12d", m)
		for _, ds := range datasets {
			fmt.Fprintf(&b, " %12.3f", r.Scores[ds][m])
		}
		b.WriteString("\n")
	}
	return b.String()
}

// String renders the Figure 5 runtime sweep.
func (r *Figure5Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 5: Mean embedding runtime (seconds) vs number of columns\n")
	fmt.Fprintf(&b, "%-10s", "Columns")
	for _, m := range r.Methods {
		fmt.Fprintf(&b, " %14s", m)
	}
	b.WriteString("\n")
	for _, n := range r.ColumnCounts {
		fmt.Fprintf(&b, "%-10d", n)
		for _, m := range r.Methods {
			fmt.Fprintf(&b, " %14.3f", r.Seconds[m][n])
		}
		b.WriteString("\n")
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
