package experiments

// Approximate-nearest-neighbour evaluation: the paper's retrieval use case
// at catalog scale. A synthetic catalog is embedded with Gem, indexed both
// exactly (ann.Flat) and approximately (ann.HNSW), and every column is
// replayed as a query against both. The exact scan defines ground truth,
// so the HNSW numbers are true recall@k plus the speed bought by the
// graph. cmd/gemsearch's -recall mode and the repository BenchmarkSearch
// are thin wrappers around this.

import (
	"fmt"
	"strings"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/pool"
)

// SearchOptions scales the ANN evaluation. The embedded Options drive the
// corpus seed, the Gem configuration and — via Workers — the one bound on
// parallelism honored end to end: the embedder's shared pool and the HNSW
// build pool are both sized by it.
type SearchOptions struct {
	Options
	// Columns is the synthetic catalog size. 0 defaults to 1000·Scale.
	Columns int
	// K is the result depth recall is measured at. Default 10.
	K int
	// Metric selects the index distance. Default ann.Cosine (the paper's
	// similarity).
	Metric ann.Metric
	// M, EfConstruction and EfSearch tune the HNSW graph; 0 takes the
	// internal/ann defaults.
	M, EfConstruction, EfSearch int
}

// fillDefaults normalizes zero-valued search options.
func (o *SearchOptions) fillDefaults() {
	o.Options.FillDefaults()
	if o.Columns <= 0 {
		o.Columns = int(1000 * o.Scale)
		if o.Columns < 50 {
			o.Columns = 50
		}
	}
	if o.K <= 0 {
		o.K = 10
	}
}

// SearchResult reports one ANN evaluation run.
type SearchResult struct {
	// Columns, Dim and K describe the indexed workload.
	Columns, Dim, K int
	// Metric is the index distance.
	Metric ann.Metric
	// Recall is mean recall@K of HNSW against the exact scan over all
	// columns as queries (each query excludes itself).
	Recall float64
	// EmbedSeconds and BuildSeconds are the wall-clock costs of embedding
	// the catalog and of constructing the HNSW graph.
	EmbedSeconds, BuildSeconds float64
	// FlatQPS and HNSWQPS are single-threaded queries per second over the
	// full query replay.
	FlatQPS, HNSWQPS float64
}

// String renders the result as a small paper-style text table.
func (r *SearchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ANN search: %d columns, dim %d, metric %s\n", r.Columns, r.Dim, r.Metric)
	fmt.Fprintf(&b, "  recall@%-3d        %.4f\n", r.K, r.Recall)
	fmt.Fprintf(&b, "  embed             %.3fs\n", r.EmbedSeconds)
	fmt.Fprintf(&b, "  hnsw build        %.3fs\n", r.BuildSeconds)
	fmt.Fprintf(&b, "  flat search       %.0f qps\n", r.FlatQPS)
	fmt.Fprintf(&b, "  hnsw search       %.0f qps (%.1fx)\n", r.HNSWQPS, r.HNSWQPS/r.FlatQPS)
	return b.String()
}

// SearchEval builds the catalog, embeds it, constructs both indexes and
// replays every column as a query. Deterministic apart from the timing
// fields: the recall number is a pure function of (options, seed) at every
// worker count.
func SearchEval(opts SearchOptions) (*SearchResult, error) {
	opts.fillDefaults()
	ds, err := catalog.Synthetic(opts.Columns, opts.Seed).Load()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	e, err := core.NewEmbedder(opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	embedStart := time.Now()
	if err := e.Fit(ds); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	vs, err := e.EmbedVectors(ds, opts.Metric)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	embedSecs := time.Since(embedStart).Seconds()

	flat := ann.NewFlat(opts.Metric)
	if err := flat.Add(vs.Vectors...); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	h, err := ann.NewHNSW(ann.HNSWConfig{
		Metric: opts.Metric, M: opts.M, EfConstruction: opts.EfConstruction,
		EfSearch: opts.EfSearch, Seed: opts.Seed,
	}, pool.New(opts.Workers))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	buildStart := time.Now()
	if err := h.Add(vs.Vectors...); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	buildSecs := time.Since(buildStart).Seconds()

	recall, flatSecs, hnswSecs, err := ReplayQueries(flat, h, vs.Vectors, opts.K)
	if err != nil {
		return nil, err
	}
	n := float64(len(vs.Vectors))
	return &SearchResult{
		Columns:      len(vs.Vectors),
		Dim:          flat.Dim(),
		K:            opts.K,
		Metric:       opts.Metric,
		Recall:       recall,
		EmbedSeconds: embedSecs,
		BuildSeconds: buildSecs,
		FlatQPS:      n / flatSecs,
		HNSWQPS:      n / hnswSecs,
	}, nil
}

// ReplayQueries runs every vector as a query against both indexes and
// returns mean recall@k plus the per-index wall-clock seconds. Each query
// is searched with k+1 so the query vector itself (assumed stored at its
// own position) can be excluded from its result. This is the one
// implementation of the recall/QPS replay, shared by SearchEval,
// cmd/gemsearch's -recall mode and the repository BenchmarkSearch.
func ReplayQueries(flat, approx ann.Index, vecs [][]float64, k int) (recall, flatSecs, approxSecs float64, err error) {
	exact := make([][]ann.Result, len(vecs))
	start := time.Now()
	for i, q := range vecs {
		if exact[i], err = flat.Search(q, k+1); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: flat query %d: %v", ErrRun, i, err)
		}
	}
	flatSecs = time.Since(start).Seconds()
	got := make([][]ann.Result, len(vecs))
	start = time.Now()
	for i, q := range vecs {
		if got[i], err = approx.Search(q, k+1); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: hnsw query %d: %v", ErrRun, i, err)
		}
	}
	approxSecs = time.Since(start).Seconds()
	var total float64
	for i := range vecs {
		total += RecallAtK(exact[i], got[i], i, k)
	}
	return total / float64(len(vecs)), flatSecs, approxSecs, nil
}

// RecallAtK compares an approximate result list against the exact one for
// query self (both searched with k+1 so the query column itself can be
// dropped) and returns |exact∩approx| / |exact| over the top k.
func RecallAtK(exact, approx []ann.Result, self, k int) float64 {
	trim := func(rs []ann.Result) []ann.Result {
		out := make([]ann.Result, 0, k)
		for _, r := range rs {
			if r.ID == self {
				continue
			}
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
		return out
	}
	ex, ap := trim(exact), trim(approx)
	if len(ex) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(ap))
	for _, r := range ap {
		ids[r.ID] = true
	}
	hit := 0
	for _, r := range ex {
		if ids[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(ex))
}
