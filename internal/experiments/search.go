package experiments

// Approximate-nearest-neighbour evaluation: the paper's retrieval use case
// at catalog scale. A synthetic catalog is embedded with Gem, indexed both
// exactly (ann.Flat) and approximately (ann.HNSW), and every column is
// replayed as a query against both. The exact scan defines ground truth,
// so the HNSW numbers are true recall@k plus the speed bought by the
// graph. cmd/gemsearch's -recall mode and the repository BenchmarkSearch
// are thin wrappers around this.

import (
	"fmt"
	"strings"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/gmm"
	"github.com/gem-embeddings/gem/internal/pool"
)

// SearchOptions scales the ANN evaluation. The embedded Options drive the
// corpus seed, the Gem configuration and — via Workers — the one bound on
// parallelism honored end to end: the embedder's shared pool and the HNSW
// build pool are both sized by it.
type SearchOptions struct {
	Options
	// Columns is the synthetic catalog size. 0 defaults to 1000·Scale.
	Columns int
	// K is the result depth recall is measured at. Default 10.
	K int
	// Metric selects the index distance. Default ann.Cosine (the paper's
	// similarity).
	Metric ann.Metric
	// M, EfConstruction and EfSearch tune the HNSW graph; 0 takes the
	// internal/ann defaults.
	M, EfConstruction, EfSearch int
	// Precisions lists the scan-precision tiers to evaluate; every tier is
	// measured against the same exact float64 ground truth. Empty defaults
	// to all tiers (float64, float32, int8).
	Precisions []ann.Precision
	// BatchSizes and BatchWorkers shape the batched-search sweep: every
	// (size, workers) pair is one measured point. Empty defaults to
	// {1, 16, 256} and {1, 2, 8}.
	BatchSizes, BatchWorkers []int
	// ProxyBatchSize is the queries-per-request size of the proxy
	// round-trip comparison. Default 16; negative skips the proxy
	// comparison (unit tests of the in-process sweep set this).
	ProxyBatchSize int
}

// fillDefaults normalizes zero-valued search options.
func (o *SearchOptions) fillDefaults() {
	o.Options.FillDefaults()
	if o.Columns <= 0 {
		o.Columns = int(1000 * o.Scale)
		if o.Columns < 50 {
			o.Columns = 50
		}
	}
	if o.K <= 0 {
		o.K = 10
	}
	if len(o.Precisions) == 0 {
		o.Precisions = []ann.Precision{ann.Float64, ann.Float32, ann.Int8}
	}
	if len(o.BatchSizes) == 0 {
		o.BatchSizes = []int{1, 16, 256}
	}
	if len(o.BatchWorkers) == 0 {
		o.BatchWorkers = []int{1, 2, 8}
	}
	if o.ProxyBatchSize == 0 {
		o.ProxyBatchSize = 16
	}
}

// TierResult reports one scan-precision tier of a search evaluation. All
// recalls are measured against the exact float64 scan, so a tier's numbers
// quantify exactly what its quantization costs.
type TierResult struct {
	// Precision is the scan precision of both indexes in this tier.
	Precision ann.Precision
	// BuildSeconds is the wall-clock cost of the HNSW build at this tier.
	BuildSeconds float64
	// FlatRecall is mean recall@K of the tier's exact-scan index against
	// the float64 scan (1 by definition for the float64 tier).
	FlatRecall float64
	// HNSWRecall is mean recall@K of the tier's HNSW index.
	HNSWRecall float64
	// FlatQPS and HNSWQPS are single-threaded queries per second over the
	// full query replay.
	FlatQPS, HNSWQPS float64
}

// SearchResult reports one ANN evaluation run.
type SearchResult struct {
	// Columns, Dim and K describe the indexed workload.
	Columns, Dim, K int
	// Metric is the index distance.
	Metric ann.Metric
	// Recall is mean recall@K of HNSW against the exact scan over all
	// columns as queries (each query excludes itself), at the first
	// configured precision tier (float64 by default).
	Recall float64
	// EmbedSeconds is the wall-clock cost of fitting the model and
	// embedding the catalog; FitSeconds is the model-fit share of it.
	// BuildSeconds is the first tier's HNSW construction cost.
	EmbedSeconds, FitSeconds, BuildSeconds float64
	// FlatQPS and HNSWQPS are the first tier's single-threaded queries per
	// second over the full query replay.
	FlatQPS, HNSWQPS float64
	// Tiers holds the per-precision sweep, in Precisions order.
	Tiers []TierResult
	// Batch holds the batched-search sweep (SearchBatch QPS and
	// allocations per query across batch sizes and worker widths, plus
	// the proxy single-vs-batched round-trip comparison).
	Batch *BatchResult
	// FitStats is the EM fit telemetry behind FitSeconds: per-restart
	// iterations and likelihoods, the winner, and E/M-step wall-clock.
	FitStats *gmm.FitStats
}

// String renders the result as a small paper-style text table.
func (r *SearchResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ANN search: %d columns, dim %d, metric %s\n", r.Columns, r.Dim, r.Metric)
	fmt.Fprintf(&b, "  embed             %.3fs (fit %.3fs)\n", r.EmbedSeconds, r.FitSeconds)
	if st := r.FitStats; st != nil && st.Winner >= 0 {
		win := st.Restarts[st.Winner]
		fmt.Fprintf(&b, "  fit em            restart %d/%d won, logL %.2f, %d iters (%d total), E %.3fs / M %.3fs\n",
			st.Winner+1, len(st.Restarts), win.LogLikelihood, win.Iterations,
			st.Iterations(), st.EStepSeconds, st.MStepSeconds)
	}
	for _, tr := range r.Tiers {
		fmt.Fprintf(&b, "  [%s]\n", tr.Precision)
		fmt.Fprintf(&b, "    hnsw build      %.3fs\n", tr.BuildSeconds)
		fmt.Fprintf(&b, "    flat recall@%-3d %.4f  (%.0f qps)\n", r.K, tr.FlatRecall, tr.FlatQPS)
		fmt.Fprintf(&b, "    hnsw recall@%-3d %.4f  (%.0f qps, %.1fx flat)\n", r.K, tr.HNSWRecall, tr.HNSWQPS, tr.HNSWQPS/tr.FlatQPS)
	}
	if bt := r.Batch; bt != nil {
		fmt.Fprintf(&b, "  [batched]\n")
		for _, p := range bt.Points {
			fmt.Fprintf(&b, "    batch %-4d x%-2d  flat %.0f qps (%.1f allocs/q)  hnsw %.0f qps (%.1f allocs/q)\n",
				p.BatchSize, p.Workers, p.FlatQPS, p.FlatAllocs, p.HNSWQPS, p.HNSWAllocs)
		}
		if bt.ProxySingleQPS > 0 {
			fmt.Fprintf(&b, "    proxy           %.0f qps single, %.0f qps at batch %d (%.1fx, %d queries)\n",
				bt.ProxySingleQPS, bt.ProxyBatchQPS, bt.ProxyBatchSize, bt.ProxySpeedup, bt.ProxyQueries)
		}
	}
	return b.String()
}

// SearchEval builds the catalog, embeds it, constructs both indexes per
// configured precision tier and replays every column as a query against
// each. The exact float64 scan is computed once and is the ground truth for
// every tier. Deterministic apart from the timing fields: the recall
// numbers are pure functions of (options, seed) at every worker count.
func SearchEval(opts SearchOptions) (*SearchResult, error) {
	opts.fillDefaults()
	ds, err := catalog.Synthetic(opts.Columns, opts.Seed).Load()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	e, err := core.NewEmbedder(opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	embedStart := time.Now()
	if err := e.Fit(ds); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	fitSecs := time.Since(embedStart).Seconds()
	vs, err := e.EmbedVectors(ds, opts.Metric)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	embedSecs := time.Since(embedStart).Seconds()

	flat := ann.NewFlat(opts.Metric)
	if err := flat.Add(vs.Vectors...); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	exact, flatSecs, err := exactReplay(flat, vs.Vectors, opts.K)
	if err != nil {
		return nil, err
	}

	n := float64(len(vs.Vectors))
	tiers := make([]TierResult, 0, len(opts.Precisions))
	for _, prec := range opts.Precisions {
		tr := TierResult{Precision: prec}
		if prec == ann.Float64 {
			// The reference scan IS this tier's flat index; reuse its replay.
			tr.FlatRecall = 1
			tr.FlatQPS = n / flatSecs
		} else {
			tf, err := ann.NewFlatAt(opts.Metric, prec)
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrRun, err)
			}
			if err := tf.Add(vs.Vectors...); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrRun, err)
			}
			secs := 0.0
			if tr.FlatRecall, secs, err = replayAgainst(tf, vs.Vectors, exact, opts.K); err != nil {
				return nil, err
			}
			tr.FlatQPS = n / secs
		}
		h, err := ann.NewHNSW(ann.HNSWConfig{
			Metric: opts.Metric, M: opts.M, EfConstruction: opts.EfConstruction,
			EfSearch: opts.EfSearch, Seed: opts.Seed, Precision: prec,
		}, pool.New(opts.Workers))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRun, err)
		}
		buildStart := time.Now()
		if err := h.Add(vs.Vectors...); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRun, err)
		}
		tr.BuildSeconds = time.Since(buildStart).Seconds()
		secs := 0.0
		if tr.HNSWRecall, secs, err = replayAgainst(h, vs.Vectors, exact, opts.K); err != nil {
			return nil, err
		}
		tr.HNSWQPS = n / secs
		tiers = append(tiers, tr)
	}

	batch, err := batchEval(opts, e, ds, flat, vs.Vectors)
	if err != nil {
		return nil, err
	}

	first := tiers[0]
	return &SearchResult{
		Columns:      len(vs.Vectors),
		Dim:          flat.Dim(),
		K:            opts.K,
		Metric:       opts.Metric,
		Recall:       first.HNSWRecall,
		EmbedSeconds: embedSecs,
		FitSeconds:   fitSecs,
		BuildSeconds: first.BuildSeconds,
		FlatQPS:      first.FlatQPS,
		HNSWQPS:      first.HNSWQPS,
		Tiers:        tiers,
		Batch:        batch,
		FitStats:     e.FitStats(),
	}, nil
}

// exactReplay runs every vector as a query against the exact index and
// returns the ground-truth result lists plus the replay wall-clock.
func exactReplay(flat ann.Index, vecs [][]float64, k int) (exact [][]ann.Result, secs float64, err error) {
	exact = make([][]ann.Result, len(vecs))
	start := time.Now()
	for i, q := range vecs {
		if exact[i], err = flat.Search(q, k+1); err != nil {
			return nil, 0, fmt.Errorf("%w: flat query %d: %v", ErrRun, i, err)
		}
	}
	return exact, time.Since(start).Seconds(), nil
}

// replayAgainst runs every vector as a query against idx and scores it with
// recall@k against precomputed exact results (each query excludes itself,
// hence the k+1 searches).
func replayAgainst(idx ann.Index, vecs [][]float64, exact [][]ann.Result, k int) (recall, secs float64, err error) {
	got := make([][]ann.Result, len(vecs))
	start := time.Now()
	for i, q := range vecs {
		if got[i], err = idx.Search(q, k+1); err != nil {
			return 0, 0, fmt.Errorf("%w: query %d: %v", ErrRun, i, err)
		}
	}
	secs = time.Since(start).Seconds()
	var total float64
	for i := range vecs {
		total += RecallAtK(exact[i], got[i], i, k)
	}
	return total / float64(len(vecs)), secs, nil
}

// ReplayQueries runs every vector as a query against both indexes and
// returns mean recall@k plus the per-index wall-clock seconds. Each query
// is searched with k+1 so the query vector itself (assumed stored at its
// own position) can be excluded from its result. This is the one
// implementation of the recall/QPS replay, shared by SearchEval,
// cmd/gemsearch's -recall mode and the repository BenchmarkSearch.
func ReplayQueries(flat, approx ann.Index, vecs [][]float64, k int) (recall, flatSecs, approxSecs float64, err error) {
	exact, flatSecs, err := exactReplay(flat, vecs, k)
	if err != nil {
		return 0, 0, 0, err
	}
	recall, approxSecs, err = replayAgainst(approx, vecs, exact, k)
	return recall, flatSecs, approxSecs, err
}

// RecallAtK compares an approximate result list against the exact one for
// query self (both searched with k+1 so the query column itself can be
// dropped) and returns |exact∩approx| / |exact| over the top k.
func RecallAtK(exact, approx []ann.Result, self, k int) float64 {
	trim := func(rs []ann.Result) []ann.Result {
		out := make([]ann.Result, 0, k)
		for _, r := range rs {
			if r.ID == self {
				continue
			}
			out = append(out, r)
			if len(out) == k {
				break
			}
		}
		return out
	}
	ex, ap := trim(exact), trim(approx)
	if len(ex) == 0 {
		return 1
	}
	ids := make(map[int]bool, len(ap))
	for _, r := range ap {
		ids[r.ID] = true
	}
	hit := 0
	for _, r := range ex {
		if ids[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(ex))
}
