package experiments

import (
	"bytes"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/pool"
)

// searchTestOptions keeps the Gem side of the ANN tests cheap: the recall
// measurement compares two indexes over the same embedding space, so the
// mixture size barely matters.
func searchTestOptions() Options {
	return Options{Seed: 1, Components: 24, Restarts: 2, SubsampleStack: 4000}
}

// TestSearchEvalRecallAcceptance is the ISSUE 3 acceptance gate: HNSW
// recall@10 >= 0.95 against ann.Flat on a 1000-column synthetic catalog.
func TestSearchEvalRecallAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-column catalog embed in -short mode")
	}
	res, err := SearchEval(SearchOptions{Options: searchTestOptions(), Columns: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns != 1000 || res.K != 10 || res.Dim == 0 {
		t.Fatalf("unexpected workload shape: %+v", res)
	}
	if res.Recall < 0.95 {
		t.Fatalf("recall@10 = %.4f, want >= 0.95", res.Recall)
	}
	if res.FlatQPS <= 0 || res.HNSWQPS <= 0 || res.BuildSeconds < 0 {
		t.Fatalf("implausible timings: %+v", res)
	}
	if s := res.String(); !strings.Contains(s, "recall@10") {
		t.Errorf("String() = %q", s)
	}
}

// TestSearchIndexDeterministicAcrossWorkers pins the other half of the
// acceptance line on real Gem vectors: the HNSW graph built over a
// 1000-column catalog embedding is byte-identical for worker counts
// 1, 2 and 8.
func TestSearchIndexDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-column catalog embed in -short mode")
	}
	opts := searchTestOptions()
	ds := data.ScalabilityDataset(1000, opts.Seed)
	e, err := core.NewEmbedder(opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Fit(ds); err != nil {
		t.Fatal(err)
	}
	vs, err := e.EmbedVectors(ds, ann.Cosine)
	if err != nil {
		t.Fatal(err)
	}
	var ref []byte
	for _, workers := range []int{1, 2, 8} {
		h, err := ann.NewHNSW(ann.HNSWConfig{Metric: ann.Cosine, Seed: opts.Seed}, pool.New(workers))
		if err != nil {
			t.Fatal(err)
		}
		if err := h.Add(vs.Vectors...); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := h.Save(&buf); err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = buf.Bytes()
		} else if !bytes.Equal(ref, buf.Bytes()) {
			t.Fatalf("workers=%d built a different index over the catalog embedding", workers)
		}
	}
}

// TestSearchEvalSmall keeps a fast always-on check: tiny catalog, recall
// well-defined, defaults filled.
func TestSearchEvalSmall(t *testing.T) {
	res, err := SearchEval(SearchOptions{Options: searchTestOptions(), Columns: 120, K: 5, EfSearch: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Columns != 120 || res.K != 5 {
		t.Fatalf("shape: %+v", res)
	}
	if res.Recall < 0.9 {
		t.Fatalf("recall@5 on a 120-column catalog = %.4f, want >= 0.9", res.Recall)
	}
}

// TestRecallAtK exercises the recall arithmetic directly, including
// self-exclusion.
func TestRecallAtK(t *testing.T) {
	r := func(ids ...int) []ann.Result {
		out := make([]ann.Result, len(ids))
		for i, id := range ids {
			out[i] = ann.Result{ID: id}
		}
		return out
	}
	if got := RecallAtK(r(7, 1, 2, 3), r(7, 1, 2, 3), 7, 3); got != 1 {
		t.Errorf("identical lists recall = %v, want 1", got)
	}
	if got := RecallAtK(r(7, 1, 2, 3), r(7, 1, 9, 8), 7, 3); got != 1.0/3 {
		t.Errorf("one-of-three recall = %v, want 1/3", got)
	}
	if got := RecallAtK(nil, nil, 0, 10); got != 1 {
		t.Errorf("empty recall = %v, want 1", got)
	}
}
