package experiments

// Benchmark regression gating: CI diffs a fresh gembench report against the
// checked-in baseline (BENCH_10.json). Quality metrics (recall, hit rate)
// are reproducible and get tight tolerances; throughput gets a deliberately
// loose ratio floor, because CI runners share cores and jitter by integer
// factors — the gate exists to catch an order-of-magnitude cliff (an
// accidentally quadratic path, a disabled index), not a noisy ±20%.

import (
	"encoding/json"
	"fmt"
	"io"
)

const (
	// maxRecallDrop is the tolerated decrease in any recall@k metric.
	maxRecallDrop = 0.05
	// maxHitRateDelta is the tolerated absolute change in a serve cache
	// hit rate (hit rates are near-deterministic given the workload).
	maxHitRateDelta = 0.1
	// minQPSRatio is the floor on fresh/baseline throughput.
	minQPSRatio = 1.0 / 8
	// minProxySpeedup is the floor on the batched-vs-single proxy QPS
	// ratio. Batching's advantage is structural — one round trip and one
	// coalesced embed pass amortized over the whole batch — so unlike raw
	// QPS it is stable across runner speeds and gated as an absolute.
	minProxySpeedup = 2.0
	// maxAllocGrowth and allocSlack bound fresh allocations per query at
	// baseline·growth + slack. MemStats counts whole-process mallocs, so
	// the gate is loose: it exists to catch a reintroduced per-candidate
	// allocation, not to audit single allocs.
	maxAllocGrowth = 4.0
	allocSlack     = 32.0
)

// ReadBenchReport decodes a BenchReport from JSON.
func ReadBenchReport(r io.Reader) (*BenchReport, error) {
	var b BenchReport
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("%w: decoding bench report: %v", ErrRun, err)
	}
	return &b, nil
}

// CompareBenchReports diffs a fresh report against a baseline and returns
// one human-readable violation per regression (empty means the gate
// passes). Sections present in the baseline must be present in the fresh
// report; new sections and tiers in the fresh report are fine.
func CompareBenchReports(baseline, fresh *BenchReport) []string {
	var v []string
	if fresh.Schema < baseline.Schema {
		v = append(v, fmt.Sprintf("schema regressed: %d -> %d", baseline.Schema, fresh.Schema))
	}
	if baseline.Search != nil {
		if fresh.Search == nil {
			v = append(v, "search section missing from fresh report")
		} else {
			v = append(v, compareSearch(baseline.Search, fresh.Search)...)
		}
	}
	if baseline.Serve != nil {
		if fresh.Serve == nil {
			v = append(v, "serve section missing from fresh report")
		} else {
			v = append(v, compareServe(baseline.Serve, fresh.Serve)...)
		}
	}
	if baseline.Load != nil {
		if fresh.Load == nil {
			v = append(v, "load section missing from fresh report")
		} else {
			v = append(v, compareLoad(baseline.Load, fresh.Load)...)
		}
	}
	return v
}

func checkRecall(what string, base, got float64) []string {
	if got < base-maxRecallDrop {
		return []string{fmt.Sprintf("%s dropped %.4f -> %.4f (tolerance %.2f)", what, base, got, maxRecallDrop)}
	}
	return nil
}

func checkQPS(what string, base, got float64) []string {
	if base > 0 && got < base*minQPSRatio {
		return []string{fmt.Sprintf("%s collapsed %.0f -> %.0f qps (floor %.2fx baseline)", what, base, got, minQPSRatio)}
	}
	return nil
}

func compareSearch(base, got *SearchReport) []string {
	var v []string
	v = append(v, checkRecall("search recall@k", base.RecallAtK, got.RecallAtK)...)
	v = append(v, checkQPS("flat search", base.FlatQPS, got.FlatQPS)...)
	v = append(v, checkQPS("hnsw search", base.HNSWQPS, got.HNSWQPS)...)
	for _, bt := range base.Tiers {
		var gt *TierReport
		for i := range got.Tiers {
			if got.Tiers[i].Precision == bt.Precision {
				gt = &got.Tiers[i]
				break
			}
		}
		if gt == nil {
			v = append(v, fmt.Sprintf("precision tier %q missing from fresh report", bt.Precision))
			continue
		}
		v = append(v, checkRecall(fmt.Sprintf("tier %s flat recall@k", bt.Precision), bt.FlatRecallAtK, gt.FlatRecallAtK)...)
		v = append(v, checkRecall(fmt.Sprintf("tier %s hnsw recall@k", bt.Precision), bt.RecallAtK, gt.RecallAtK)...)
		v = append(v, checkQPS(fmt.Sprintf("tier %s flat search", bt.Precision), bt.FlatQPS, gt.FlatQPS)...)
		v = append(v, checkQPS(fmt.Sprintf("tier %s hnsw search", bt.Precision), bt.HNSWQPS, gt.HNSWQPS)...)
	}
	if base.Batch != nil {
		if got.Batch == nil {
			v = append(v, "batched-search section missing from fresh report")
		} else {
			v = append(v, compareBatch(base.Batch, got.Batch)...)
		}
	}
	return v
}

// compareBatch gates the batched-search section: the loose shared QPS
// floor per sweep point, an allocation ceiling relative to the baseline,
// and — whenever the baseline carried a proxy comparison — the absolute
// ≥2x batched-vs-single speedup contract.
func compareBatch(base, got *BatchReport) []string {
	var v []string
	for _, bp := range base.Points {
		var gp *BatchPointReport
		for i := range got.Points {
			if got.Points[i].BatchSize == bp.BatchSize && got.Points[i].Workers == bp.Workers {
				gp = &got.Points[i]
				break
			}
		}
		if gp == nil {
			v = append(v, fmt.Sprintf("batch point size=%d workers=%d missing from fresh report", bp.BatchSize, bp.Workers))
			continue
		}
		what := fmt.Sprintf("batch size=%d workers=%d", bp.BatchSize, bp.Workers)
		v = append(v, checkQPS(what+" flat", bp.FlatQPS, gp.FlatQPS)...)
		v = append(v, checkQPS(what+" hnsw", bp.HNSWQPS, gp.HNSWQPS)...)
		for _, c := range []struct {
			name      string
			base, got float64
		}{
			{"flat", bp.FlatAllocs, gp.FlatAllocs},
			{"hnsw", bp.HNSWAllocs, gp.HNSWAllocs},
		} {
			if limit := c.base*maxAllocGrowth + allocSlack; c.got > limit {
				v = append(v, fmt.Sprintf("%s %s allocations grew %.1f -> %.1f per query (limit %.1f)",
					what, c.name, c.base, c.got, limit))
			}
		}
	}
	if base.ProxySpeedup > 0 {
		v = append(v, checkQPS("proxy single-query search", base.ProxySingleQPS, got.ProxySingleQPS)...)
		v = append(v, checkQPS("proxy batched search", base.ProxyBatchQPS, got.ProxyBatchQPS)...)
		if got.ProxySpeedup < minProxySpeedup {
			v = append(v, fmt.Sprintf("proxy batch speedup %.2fx below the %.1fx floor (single %.0f qps, batched %.0f qps at batch %d)",
				got.ProxySpeedup, minProxySpeedup, got.ProxySingleQPS, got.ProxyBatchQPS, got.ProxyBatchSize))
		}
	}
	return v
}

func compareServe(base, got *ServeReport) []string {
	var v []string
	for _, bp := range base.Points {
		var gp *ServePointReport
		for i := range got.Points {
			if got.Points[i].DupFraction == bp.DupFraction {
				gp = &got.Points[i]
				break
			}
		}
		if gp == nil {
			v = append(v, fmt.Sprintf("serve point dup=%.2f missing from fresh report", bp.DupFraction))
			continue
		}
		if d := gp.HitRate - bp.HitRate; d < -maxHitRateDelta || d > maxHitRateDelta {
			v = append(v, fmt.Sprintf("serve dup=%.2f hit rate moved %.3f -> %.3f (tolerance %.2f)", bp.DupFraction, bp.HitRate, gp.HitRate, maxHitRateDelta))
		}
		v = append(v, checkQPS(fmt.Sprintf("serve dup=%.2f", bp.DupFraction), bp.QPS, gp.QPS)...)
	}
	return v
}

// compareLoad gates the load section. Op counts are deterministic in
// (options, seed), so a shifted traffic mix is an exact-match failure;
// throughput gets the shared loose floor; and the BASELINE's SLO ceilings
// — the checked-in contract — are enforced against the FRESH run's
// measured search percentiles, alongside any violations the fresh run
// already recorded against its own configuration.
func compareLoad(base, got *LoadReport) []string {
	var v []string
	if got.Searches != base.Searches || got.Adds != base.Adds || got.Removes != base.Removes {
		v = append(v, fmt.Sprintf("load op mix changed: %d/%d/%d searches/adds/removes, baseline %d/%d/%d",
			got.Searches, got.Adds, got.Removes, base.Searches, base.Adds, base.Removes))
	}
	if base.LiveColumns != 0 && got.LiveColumns != base.LiveColumns {
		v = append(v, fmt.Sprintf("load live columns after replay changed: %d, baseline %d", got.LiveColumns, base.LiveColumns))
	}
	v = append(v, checkQPS("load closed-loop", base.QPS, got.QPS)...)
	for _, c := range []struct {
		name       string
		limit, got float64
	}{
		{"search p50", base.SLOP50Ms, got.SearchP50Ms},
		{"search p95", base.SLOP95Ms, got.SearchP95Ms},
		{"search p99", base.SLOP99Ms, got.SearchP99Ms},
	} {
		if c.limit > 0 && c.got > c.limit {
			v = append(v, fmt.Sprintf("load %s %.3f ms exceeds baseline SLO %.3f ms", c.name, c.got, c.limit))
		}
	}
	for _, s := range got.SLOViolations {
		v = append(v, "load run-recorded SLO violation: "+s)
	}
	return v
}
