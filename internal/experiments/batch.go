package experiments

// Batched-search evaluation: the PR 10 hot path measured end to end. The
// in-process sweep drives Index.SearchBatch over a batch-size × worker
// grid and reports throughput plus heap allocations per query (the
// zero-allocation scratch contract, observed from outside via
// runtime.MemStats). The proxy comparison then stands up two real shard
// servers behind a fan-out proxy over loopback HTTP and measures how much
// a multi-column /search request amortizes per-request overhead against
// one-query-per-request traffic — the speedup the CI gate holds at ≥2x.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/serve"
	"github.com/gem-embeddings/gem/internal/table"
)

// BatchPoint is one cell of the batch-size × workers sweep. Allocations
// are whole-process malloc counts divided by queries, so they include the
// per-call [][]Result envelope and any pool-worker spin-up — the point is
// to catch a reintroduced per-candidate allocation (an order-of-magnitude
// cliff), not to audit single allocs.
type BatchPoint struct {
	// BatchSize is how many queries each SearchBatch call carried
	// (clamped to the catalog size).
	BatchSize int
	// Workers is the index pool width the batch fanned across.
	Workers int
	// FlatQPS and HNSWQPS are batched queries per second.
	FlatQPS, HNSWQPS float64
	// FlatAllocs and HNSWAllocs are heap allocations per query.
	FlatAllocs, HNSWAllocs float64
}

// BatchResult reports the batched-search sweep of one ANN evaluation.
type BatchResult struct {
	// K is the result depth, shared with the enclosing SearchResult.
	K int
	// Points holds the sweep grid, batch sizes within worker widths.
	Points []BatchPoint
	// ProxyBatchSize and ProxyQueries shape the proxy round-trip
	// comparison: ProxyQueries distinct query columns replayed against a
	// two-backend proxy, one per request vs ProxyBatchSize per request.
	ProxyBatchSize, ProxyQueries int
	// ProxySingleQPS and ProxyBatchQPS are end-to-end queries per second
	// through the proxy (HTTP + embed + scatter-gather included).
	ProxySingleQPS, ProxyBatchQPS float64
	// ProxySpeedup is ProxyBatchQPS / ProxySingleQPS.
	ProxySpeedup float64
}

// batchEval runs the batched-search sweep over an already-built float64
// flat index plus a fresh HNSW over the same vectors, then (unless
// disabled) the proxy round-trip comparison.
func batchEval(opts SearchOptions, e *core.Embedder, ds *table.Dataset, flat *ann.Flat, vecs [][]float64) (*BatchResult, error) {
	h, err := ann.NewHNSW(ann.HNSWConfig{
		Metric: opts.Metric, M: opts.M, EfConstruction: opts.EfConstruction,
		EfSearch: opts.EfSearch, Seed: opts.Seed,
	}, pool.New(opts.Workers))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	if err := h.Add(vecs...); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	res := &BatchResult{K: opts.K}
	for _, w := range opts.BatchWorkers {
		p := pool.New(w)
		flat.SetPool(p)
		h.SetPool(p)
		for _, b := range opts.BatchSizes {
			pt := BatchPoint{BatchSize: b, Workers: w}
			if pt.FlatQPS, pt.FlatAllocs, err = batchReplay(flat, vecs, b, opts.K); err != nil {
				return nil, err
			}
			if pt.HNSWQPS, pt.HNSWAllocs, err = batchReplay(h, vecs, b, opts.K); err != nil {
				return nil, err
			}
			res.Points = append(res.Points, pt)
		}
	}
	flat.SetPool(nil)
	if opts.ProxyBatchSize < 0 {
		return res, nil
	}
	res.ProxyBatchSize = opts.ProxyBatchSize
	if res.ProxySingleQPS, res.ProxyBatchQPS, res.ProxyQueries, err = proxyCompare(opts, e, ds); err != nil {
		return nil, err
	}
	if res.ProxySingleQPS > 0 {
		res.ProxySpeedup = res.ProxyBatchQPS / res.ProxySingleQPS
	}
	return res, nil
}

// batchReplay replays all vectors as queries through SearchBatch in
// chunks of b and returns throughput plus mallocs per query. One unmeasured
// pass first primes the per-worker scratch pool, so the measured passes see
// the steady state the zero-allocation contract is about.
func batchReplay(idx ann.Index, vecs [][]float64, b, k int) (qps, allocs float64, err error) {
	if b > len(vecs) {
		b = len(vecs)
	}
	pass := func() error {
		for off := 0; off < len(vecs); off += b {
			end := off + b
			if end > len(vecs) {
				end = len(vecs)
			}
			if _, err := idx.SearchBatch(vecs[off:end], k); err != nil {
				return fmt.Errorf("%w: batch replay at %d: %v", ErrRun, off, err)
			}
		}
		return nil
	}
	if err := pass(); err != nil { // warm the scratch pool
		return 0, 0, err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	if err := pass(); err != nil {
		return 0, 0, err
	}
	secs := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	n := float64(len(vecs))
	return n / secs, float64(after.Mallocs-before.Mallocs) / n, nil
}

// wireColumn mirrors the serve layer's column JSON shape.
type wireColumn struct {
	Name   string    `json:"name"`
	Values []float64 `json:"values"`
}

func toWire(cols []table.Column) []wireColumn {
	out := make([]wireColumn, len(cols))
	for i, c := range cols {
		out[i] = wireColumn{Name: c.Name, Values: c.Values}
	}
	return out
}

// proxyCompare stands up two single-shard servers over halves of the
// catalog behind a fan-out proxy (all loopback HTTP) and replays the same
// query set twice: one column per /search request, then ProxyBatchSize
// columns per request. Both backends share the already-fitted embedder —
// its post-fit embed paths are read-only. Returns end-to-end QPS for both
// shapes plus the distinct query count.
func proxyCompare(opts SearchOptions, e *core.Embedder, ds *table.Dataset) (singleQPS, batchQPS float64, nq int, err error) {
	// Bound the backend catalogs: round-trip amortization is what is
	// measured here, and it does not need the full corpus.
	cols := ds.Columns
	if len(cols) > 128 {
		cols = cols[:128]
	}
	half := (len(cols) + 1) / 2
	parts := [][]table.Column{cols[:half], cols[half:]}
	backends := make([]string, 0, len(parts))
	var cleanup []func()
	defer func() {
		for i := len(cleanup) - 1; i >= 0; i-- {
			cleanup[i]()
		}
	}()
	for _, part := range parts {
		srv, err := serve.New(e, serve.Config{Index: ann.NewFlat(opts.Metric)})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%w: %v", ErrRun, err)
		}
		cleanup = append(cleanup, srv.Close)
		if _, err := srv.AddColumns(context.Background(), part); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: preloading proxy backend: %v", ErrRun, err)
		}
		ts := httptest.NewServer(srv.Handler())
		cleanup = append(cleanup, ts.Close)
		backends = append(backends, ts.URL)
	}
	px, err := serve.NewProxy(serve.ProxyConfig{Backends: backends})
	if err != nil {
		return 0, 0, 0, fmt.Errorf("%w: %v", ErrRun, err)
	}
	front := httptest.NewServer(px.Handler())
	cleanup = append(cleanup, front.Close)

	queries := cols
	if len(queries) > 64 {
		queries = queries[:64]
	}
	nq = len(queries)
	wire := toWire(queries)
	singles := make([][]byte, nq)
	for i, c := range wire {
		if singles[i], err = json.Marshal(map[string]any{"column": c, "k": opts.K}); err != nil {
			return 0, 0, 0, fmt.Errorf("%w: %v", ErrRun, err)
		}
	}
	var batches [][]byte
	for off := 0; off < nq; off += opts.ProxyBatchSize {
		end := off + opts.ProxyBatchSize
		if end > nq {
			end = nq
		}
		body, err := json.Marshal(map[string]any{"columns": wire[off:end], "k": opts.K})
		if err != nil {
			return 0, 0, 0, fmt.Errorf("%w: %v", ErrRun, err)
		}
		batches = append(batches, body)
	}
	post := func(body []byte) error {
		resp, err := http.Post(front.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("%w: proxy search: %v", ErrRun, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
			return fmt.Errorf("%w: proxy search: status %d: %s", ErrRun, resp.StatusCode, msg)
		}
		_, err = io.Copy(io.Discard, resp.Body)
		return err
	}
	// Best-of-rounds: each shape is timed over enough passes that a round
	// issues ~128 requests regardless of request shape (a batched pass
	// has far fewer requests than a single-query pass), and the fastest
	// round wins, so a GC pause or scheduler hiccup in one round cannot
	// masquerade as a structural slowdown. The batched/single RATIO is
	// the gated quantity, and best-of keeps it at its structural value.
	replay := func(bodies [][]byte) (float64, error) {
		const rounds, reqTarget = 3, 128
		passes := reqTarget / len(bodies)
		if passes < 2 {
			passes = 2
		}
		best := 0.0
		for rd := 0; rd < rounds; rd++ {
			start := time.Now()
			for p := 0; p < passes; p++ {
				for _, body := range bodies {
					if err := post(body); err != nil {
						return 0, err
					}
				}
			}
			if qps := float64(passes*nq) / time.Since(start).Seconds(); qps > best {
				best = qps
			}
		}
		return best, nil
	}
	// Warm both shapes once: the first pass enrolls the query columns in
	// the backends' embed caches, so the measured passes compare request
	// shapes rather than cold-cache behaviour.
	for _, body := range batches {
		if err := post(body); err != nil {
			return 0, 0, 0, err
		}
	}
	if singleQPS, err = replay(singles); err != nil {
		return 0, 0, 0, err
	}
	if batchQPS, err = replay(batches); err != nil {
		return 0, 0, 0, err
	}
	return singleQPS, batchQPS, nq, nil
}
