package experiments

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
)

func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	records, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	return records
}

func TestTable2WriteCSV(t *testing.T) {
	res := &Table2Result{
		Datasets: []string{"A", "B"},
		Methods:  []string{"m1", "m2"},
		Scores: map[string]map[string]float64{
			"m1": {"A": 0.5, "B": 0.25},
			"m2": {"A": 0.75, "B": 0.125},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 5 {
		t.Fatalf("got %d rows, want 5", len(records))
	}
	if records[0][2] != "avg_precision" {
		t.Errorf("header = %v", records[0])
	}
	if records[1][0] != "m1" || records[1][1] != "A" || records[1][2] != "0.5" {
		t.Errorf("row 1 = %v", records[1])
	}
}

func TestTable3WriteCSV(t *testing.T) {
	res := &Table3Result{
		Datasets: []string{"WDC"},
		Methods:  []string{"Gem (D+S)"},
		Scores:   map[string]map[string]float64{"Gem (D+S)": {"WDC": 0.14}},
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Gem (D+S),WDC,0.14") {
		t.Errorf("unexpected csv:\n%s", buf.String())
	}
}

func TestTable4WriteCSV(t *testing.T) {
	res := &Table4Result{
		Datasets: []string{"GDS"},
		Settings: []string{"Values only"},
		Cells: map[string]map[string]map[string]Table4Cell{
			"Gem": {"GDS": {"TableDC/Values only": {ARI: 0.39, ACC: 0.48}}},
		},
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 2 {
		t.Fatalf("got %d rows, want 2", len(records))
	}
	want := []string{"Gem", "GDS", "TableDC", "Values only", "0.39", "0.48"}
	for i, v := range want {
		if records[1][i] != v {
			t.Errorf("row = %v, want %v", records[1], want)
			break
		}
	}
}

func TestFigureWriteCSVs(t *testing.T) {
	f3 := &Figure3Result{
		Combos: []string{"D", "S"},
		Scores: map[string]map[string]float64{"GDS": {"D": 0.3, "S": 0.39}},
	}
	var buf bytes.Buffer
	if err := f3.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if got := len(parseCSV(t, &buf)); got != 3 {
		t.Errorf("figure3 rows = %d, want 3", got)
	}

	f4 := &Figure4Result{
		Components: []int{10, 50},
		Scores:     map[string]map[int]float64{"WDC": {10: 0.2, 50: 0.21}},
	}
	buf.Reset()
	if err := f4.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	records := parseCSV(t, &buf)
	if len(records) != 3 || records[1][1] != "10" {
		t.Errorf("figure4 rows = %v", records)
	}

	f5 := &Figure5Result{
		ColumnCounts: []int{200},
		Methods:      []string{"Gem"},
		Seconds:      map[string]map[int]float64{"Gem": {200: 1.25}},
	}
	buf.Reset()
	if err := f5.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Gem,200,1.25") {
		t.Errorf("figure5 csv:\n%s", buf.String())
	}
}

func TestSplitKey(t *testing.T) {
	algo, setting := splitKey("TableDC/Headers + Values")
	if algo != "TableDC" || setting != "Headers + Values" {
		t.Errorf("splitKey = %q, %q", algo, setting)
	}
	algo, setting = splitKey("nokey")
	if algo != "nokey" || setting != "" {
		t.Errorf("splitKey(nokey) = %q, %q", algo, setting)
	}
}
