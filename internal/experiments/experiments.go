// Package experiments reproduces every table and figure of the paper's
// evaluation (§4) end to end: it generates the benchmark corpora, runs Gem
// and all baselines, computes the paper's metrics, and renders paper-style
// text tables. cmd/gembench and the repository-level benchmarks are thin
// wrappers around this package; EXPERIMENTS.md records paper-vs-measured
// numbers produced by it.
package experiments

import (
	"errors"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

// ErrRun is returned when an experiment fails.
var ErrRun = errors.New("experiments: run failed")

// Options scales experiments between quick smoke runs and full,
// paper-sized runs.
type Options struct {
	// Seed drives all corpus generation and model fitting.
	Seed int64
	// Scale multiplies corpus sizes (1.0 = paper-sized). Default 0.25,
	// which preserves every reported trend at a fraction of the runtime.
	Scale float64
	// Components is Gem's GMM component count m. Default 50.
	Components int
	// Restarts is the EM restart count. Default 3 (the paper's 10 changes
	// nothing measurable on these corpora; see the ablation bench).
	Restarts int
	// SubsampleStack caps the GMM/SOM fitting sample. Default 8000.
	SubsampleStack int
	// HeaderDim is the header-embedding width for contextual methods.
	// Default 128.
	HeaderDim int
	// Workers bounds each Gem embedder's shared worker pool (column
	// fan-out and the parallel EM engine together; see core.Config).
	// 0 defaults to GOMAXPROCS. Results are identical for every value.
	Workers int
}

// FillDefaults normalizes zero-valued options.
func (o *Options) FillDefaults() {
	if o.Scale <= 0 {
		o.Scale = 0.25
	}
	if o.Components <= 0 {
		o.Components = 50
	}
	if o.Restarts <= 0 {
		o.Restarts = 3
	}
	if o.SubsampleStack <= 0 {
		o.SubsampleStack = 8000
	}
	if o.HeaderDim <= 0 {
		o.HeaderDim = 128
	}
}

// GemConfig builds a core.Config from the options — the one translation of
// experiment options into an embedder configuration, shared by the harness
// and the CLIs (cmd/gemsearch builds its embedder through it so -workers
// reaches the shared pool the same way everywhere).
func (o Options) GemConfig(features core.Features, comp core.Composition) core.Config {
	return o.gemConfig(features, comp)
}

// gemConfig builds a core.Config from the options.
func (o Options) gemConfig(features core.Features, comp core.Composition) core.Config {
	return core.Config{
		Components:     o.Components,
		Restarts:       o.Restarts,
		Seed:           o.Seed,
		Features:       features,
		Composition:    comp,
		HeaderDim:      o.HeaderDim,
		SubsampleStack: o.SubsampleStack,
		AEEpochs:       15,
		Workers:        o.Workers,
	}
}

// GemMethod adapts a Gem configuration to the baselines.Method interface so
// the harness can evaluate Gem and baselines uniformly.
type GemMethod struct {
	// DisplayName is the row label, e.g. "Gem (D+S)".
	DisplayName string
	// Cfg is the full Gem configuration to run.
	Cfg core.Config
}

// Name implements baselines.Method.
func (g *GemMethod) Name() string { return g.DisplayName }

// Embed implements baselines.Method.
func (g *GemMethod) Embed(ds *table.Dataset) ([][]float64, error) {
	e, err := core.NewEmbedder(g.Cfg)
	if err != nil {
		return nil, err
	}
	return e.FitEmbed(ds)
}

var _ baselines.Method = (*GemMethod)(nil)

// corpusConfig converts options into a data.Config at the given grain.
func (o Options) corpusConfig(grain data.Grain) data.Config {
	return data.Config{Seed: o.Seed, Scale: o.Scale, Grain: grain}
}

// Table1Row is one dataset row of Table 1 (dataset statistics).
type Table1Row struct {
	Dataset     string
	Columns     int
	CoarseTypes int
	FineTypes   int
	TotalCells  int
}

// Table1 regenerates the dataset-statistics table (paper Table 1).
func Table1(opts Options) ([]Table1Row, error) {
	opts.FillDefaults()
	mk := func(name string, coarse, fine *table.Dataset) Table1Row {
		return Table1Row{
			Dataset:     name,
			Columns:     len(coarse.Columns),
			CoarseTypes: coarse.NumTypes(),
			FineTypes:   fine.NumTypes(),
			TotalCells:  coarse.TotalValues(),
		}
	}
	cc := opts.corpusConfig(data.Coarse)
	fc := opts.corpusConfig(data.Fine)
	rows := []Table1Row{
		mk("GDS", data.GDS(cc), data.GDS(fc)),
		mk("WDC", data.WDC(cc), data.WDC(fc)),
		mk("Sato Tables", data.SatoTables(cc), data.SatoTables(fc)),
		mk("Git Tables", data.GitTables(cc), data.GitTables(fc)),
	}
	return rows, nil
}
