package experiments

// Closed-loop load evaluation of the sharded serving path: a warm server
// over an N-shard catalog (real per-shard snapshot+journal stores, so the
// measured path is the durable one gemserve -shards runs) absorbs a mixed
// add/remove/search stream from concurrent closed-loop clients while one
// open-loop client probes at a fixed rate. The harness reports throughput
// plus search-latency percentiles and checks them against optional SLO
// thresholds; cmd/gembench's -exp load wraps this and CI gates the
// resulting BENCH_10.json against its checked-in baseline.
//
// Op streams are deterministic in (options, seed): each client owns a
// pregenerated sequence whose removals target columns that same client
// added (by name, so the op is valid no matter how the clients
// interleave). Wall-clock numbers (QPS, percentiles) are machine-
// dependent; the op counts and the final catalog size are not.

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/gem-embeddings/gem/internal/ann"
	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/pool"
	"github.com/gem-embeddings/gem/internal/serve"
	"github.com/gem-embeddings/gem/internal/shard"
	"github.com/gem-embeddings/gem/internal/table"
)

// LoadSLO carries latency ceilings in milliseconds for the closed-loop
// search stream; a zero field is not checked.
type LoadSLO struct {
	P50Ms, P95Ms, P99Ms float64
}

// LoadOptions scales the load evaluation.
type LoadOptions struct {
	Options
	// Columns is the catalog size preloaded before traffic starts.
	// 0 defaults to 150·Scale (min 40).
	Columns int
	// Ops is the total closed-loop operation count across all clients.
	// 0 defaults to 400·Scale (min 120).
	Ops int
	// Clients is the number of concurrent closed-loop clients. Default 6.
	Clients int
	// Shards is the catalog shard count. Default 2.
	Shards int
	// SearchFrac, AddFrac and RemoveFrac split the op stream. They must be
	// non-negative and sum to 1 (within rounding); all-zero defaults to
	// 0.75/0.15/0.10.
	SearchFrac, AddFrac, RemoveFrac float64
	// K is the /search depth. Default 5.
	K int
	// OpenLoopQPS is the fixed request rate of the concurrent open-loop
	// probe client. 0 defaults to 50; negative disables the probe.
	OpenLoopQPS float64
	// SLO holds optional latency ceilings; breaches are recorded in the
	// result (and fail the CI gate when present in the baseline report).
	SLO LoadSLO
}

func (o *LoadOptions) fillDefaults() error {
	o.Options.FillDefaults()
	if o.Columns <= 0 {
		o.Columns = int(150 * o.Scale)
		if o.Columns < 40 {
			o.Columns = 40
		}
	}
	if o.Ops <= 0 {
		o.Ops = int(400 * o.Scale)
		if o.Ops < 120 {
			o.Ops = 120
		}
	}
	if o.Clients <= 0 {
		o.Clients = 6
	}
	if o.Shards <= 0 {
		o.Shards = 2
	}
	if o.SearchFrac == 0 && o.AddFrac == 0 && o.RemoveFrac == 0 {
		o.SearchFrac, o.AddFrac, o.RemoveFrac = 0.75, 0.15, 0.10
	}
	if o.SearchFrac < 0 || o.AddFrac < 0 || o.RemoveFrac < 0 {
		return fmt.Errorf("%w: traffic fractions must be non-negative", ErrRun)
	}
	if s := o.SearchFrac + o.AddFrac + o.RemoveFrac; math.Abs(s-1) > 1e-9 {
		return fmt.Errorf("%w: traffic fractions sum to %.3f, want 1", ErrRun, s)
	}
	if o.K <= 0 {
		o.K = 5
	}
	if o.OpenLoopQPS == 0 {
		o.OpenLoopQPS = 50
	}
	return nil
}

// LoadResult reports one load evaluation run.
type LoadResult struct {
	Columns, Ops, Clients, Shards, K, Dim int
	SearchFrac, AddFrac, RemoveFrac       float64
	// Searches, Adds and Removes are the realized closed-loop op counts
	// (deterministic in options and seed).
	Searches, Adds, Removes int
	// QPS is closed-loop operations per wall-clock second.
	QPS float64
	// SearchP50Ms/P95Ms/P99Ms are closed-loop search latency percentiles.
	SearchP50Ms, SearchP95Ms, SearchP99Ms float64
	// MutateP99Ms is the p99 over adds and removes (journaled writes).
	MutateP99Ms float64
	// OpenLoopQPS is the requested probe rate; AchievedQPS what the probe
	// realized; OpenLoopP99Ms its latency tail.
	OpenLoopQPS, OpenLoopAchievedQPS, OpenLoopP99Ms float64
	// SLO echoes the configured ceilings; SLOViolations lists breaches.
	SLO           LoadSLO
	SLOViolations []string
	// LiveColumns is the catalog size after the run (preload + adds -
	// removes; deterministic).
	LiveColumns int
}

// String renders the result as a small text table.
func (r *LoadResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "load eval: %d-column catalog, %d shards, %d ops x %d clients (search/add/remove %.2f/%.2f/%.2f), k=%d, dim %d\n",
		r.Columns, r.Shards, r.Ops, r.Clients, r.SearchFrac, r.AddFrac, r.RemoveFrac, r.K, r.Dim)
	fmt.Fprintf(&b, "  closed loop: %8.0f qps  (%d searches, %d adds, %d removes; %d live after)\n",
		r.QPS, r.Searches, r.Adds, r.Removes, r.LiveColumns)
	fmt.Fprintf(&b, "  search ms:   p50 %7.3f  p95 %7.3f  p99 %7.3f   mutate p99 %7.3f\n",
		r.SearchP50Ms, r.SearchP95Ms, r.SearchP99Ms, r.MutateP99Ms)
	if r.OpenLoopQPS > 0 {
		fmt.Fprintf(&b, "  open loop:   %6.1f qps requested, %6.1f achieved, p99 %7.3f ms\n",
			r.OpenLoopQPS, r.OpenLoopAchievedQPS, r.OpenLoopP99Ms)
	}
	for _, v := range r.SLOViolations {
		fmt.Fprintf(&b, "  SLO VIOLATION: %s\n", v)
	}
	return b.String()
}

// loadOp is one pregenerated closed-loop operation.
type loadOp struct {
	kind byte // 's' search, 'a' add, 'r' remove
	col  table.Column
	name string // remove target
}

// LoadEval fits a warm embedder, assembles a sharded durable server in a
// temporary directory, preloads the catalog and replays the mixed load.
func LoadEval(opts LoadOptions) (*LoadResult, error) {
	if err := opts.fillDefaults(); err != nil {
		return nil, err
	}
	ds, err := catalog.Synthetic(opts.Columns, opts.Seed).Load()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	warm, err := core.NewEmbedder(opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	if err := warm.Fit(ds); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	fp, err := warm.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}

	// The measured path is the durable one: per-shard snapshot+journal
	// stores on real files, exactly what gemserve -shards N serves from.
	dir, err := os.MkdirTemp("", "gemload")
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	defer os.RemoveAll(dir)
	p := pool.New(opts.Workers)
	idxs := make([]ann.Index, opts.Shards)
	stores := make([]*catalog.Store, opts.Shards)
	defer func() {
		for _, st := range stores {
			if st != nil {
				st.Close()
			}
		}
	}()
	for i := range idxs {
		if idxs[i], err = ann.NewHNSW(ann.HNSWConfig{Metric: ann.Cosine, Seed: opts.Seed}, p); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRun, err)
		}
		stores[i], err = catalog.Open(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)),
			serve.StoreIdentityShard(fp, idxs[i], i, opts.Shards))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrRun, err)
		}
	}
	cat, err := shard.New(shard.Config{Indexes: idxs, Stores: stores, Pool: p})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	srv, err := serve.New(warm, serve.Config{Catalog: cat})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	defer srv.Close()
	if _, err := srv.AddColumns(context.Background(), ds.Columns); err != nil {
		return nil, fmt.Errorf("%w: preloading catalog: %v", ErrRun, err)
	}

	streams, counts := loadStreams(opts, ds)
	result := &LoadResult{
		Columns: opts.Columns, Ops: opts.Ops, Clients: opts.Clients,
		Shards: opts.Shards, K: opts.K, Dim: srv.Dim(),
		SearchFrac: opts.SearchFrac, AddFrac: opts.AddFrac, RemoveFrac: opts.RemoveFrac,
		Searches: counts[0], Adds: counts[1], Removes: counts[2],
		OpenLoopQPS: math.Max(opts.OpenLoopQPS, 0),
		SLO:         opts.SLO,
	}

	// Replay: closed-loop clients drain their streams back to back while
	// the open-loop probe fires at its fixed rate until they finish.
	var (
		wg         sync.WaitGroup
		mu         sync.Mutex
		searchLat  []float64
		mutateLat  []float64
		clientErrs = make([]error, len(streams))
	)
	done := make(chan struct{})
	var probeLat []float64
	var probeCount int
	probeDone := make(chan struct{})
	start := time.Now()
	if opts.OpenLoopQPS > 0 {
		go func() {
			defer close(probeDone)
			interval := time.Duration(float64(time.Second) / opts.OpenLoopQPS)
			rng := rand.New(rand.NewSource(opts.Seed ^ 0x09e2))
			next := time.Now()
			for {
				select {
				case <-done:
					return
				default:
				}
				if d := time.Until(next); d > 0 {
					time.Sleep(d)
				}
				next = next.Add(interval)
				col := ds.Columns[rng.Intn(len(ds.Columns))]
				t0 := time.Now()
				if _, err := srv.Search(context.Background(), col, opts.K); err != nil {
					continue // probe errors surface via the closed loop
				}
				probeLat = append(probeLat, float64(time.Since(t0))/float64(time.Millisecond))
				probeCount++
			}
		}()
	} else {
		close(probeDone)
	}
	for c, ops := range streams {
		wg.Add(1)
		go func(c int, ops []loadOp) {
			defer wg.Done()
			sl := make([]float64, 0, len(ops))
			ml := make([]float64, 0, len(ops))
			for _, op := range ops {
				t0 := time.Now()
				var err error
				switch op.kind {
				case 's':
					_, err = srv.Search(context.Background(), op.col, opts.K)
					sl = append(sl, float64(time.Since(t0))/float64(time.Millisecond))
				case 'a':
					_, err = srv.AddColumns(context.Background(), []table.Column{op.col})
					ml = append(ml, float64(time.Since(t0))/float64(time.Millisecond))
				case 'r':
					_, err = srv.RemoveColumns(op.name)
					ml = append(ml, float64(time.Since(t0))/float64(time.Millisecond))
				}
				if err != nil {
					clientErrs[c] = fmt.Errorf("client %d %c op: %w", c, op.kind, err)
					return
				}
			}
			mu.Lock()
			searchLat = append(searchLat, sl...)
			mutateLat = append(mutateLat, ml...)
			mu.Unlock()
		}(c, ops)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	close(done)
	<-probeDone
	for _, err := range clientErrs {
		if err != nil {
			return nil, fmt.Errorf("%w: load replay: %v", ErrRun, err)
		}
	}

	sort.Float64s(searchLat)
	sort.Float64s(mutateLat)
	sort.Float64s(probeLat)
	result.QPS = float64(result.Searches+result.Adds+result.Removes) / elapsed
	result.SearchP50Ms = percentileMs(searchLat, 0.50)
	result.SearchP95Ms = percentileMs(searchLat, 0.95)
	result.SearchP99Ms = percentileMs(searchLat, 0.99)
	result.MutateP99Ms = percentileMs(mutateLat, 0.99)
	if opts.OpenLoopQPS > 0 && elapsed > 0 {
		result.OpenLoopAchievedQPS = float64(probeCount) / elapsed
		result.OpenLoopP99Ms = percentileMs(probeLat, 0.99)
	}
	result.LiveColumns = srv.IndexLen()
	if want := opts.Columns + result.Adds - result.Removes; result.LiveColumns != want {
		return nil, fmt.Errorf("%w: load replay left %d live columns, want %d", ErrRun, result.LiveColumns, want)
	}
	result.SLOViolations = checkSLO(opts.SLO, result)
	return result, nil
}

// loadStreams pregenerates one deterministic op stream per client and
// returns the realized (searches, adds, removes) counts. Removals target
// columns the same client added earlier, by name, so every op is valid
// under any interleaving; a remove drawn before its client has live adds
// degrades to an add.
func loadStreams(opts LoadOptions, ds *table.Dataset) ([][]loadOp, [3]int) {
	streams := make([][]loadOp, opts.Clients)
	var counts [3]int
	per := opts.Ops / opts.Clients
	extra := opts.Ops % opts.Clients
	for c := range streams {
		n := per
		if c < extra {
			n++
		}
		rng := rand.New(rand.NewSource(opts.Seed ^ int64(0x10ad<<16) ^ int64(c)))
		ops := make([]loadOp, 0, n)
		var pending []string // this client's live added columns
		seq := 0
		for len(ops) < n {
			r := rng.Float64()
			switch {
			case r < opts.SearchFrac:
				ops = append(ops, loadOp{kind: 's', col: ds.Columns[rng.Intn(len(ds.Columns))]})
				counts[0]++
			case r < opts.SearchFrac+opts.AddFrac || len(pending) == 0:
				name := fmt.Sprintf("load-c%d-%d", c, seq)
				seq++
				vals := make([]float64, 48)
				for i := range vals {
					vals[i] = rng.NormFloat64() * float64(1+c)
				}
				ops = append(ops, loadOp{kind: 'a', col: table.Column{Name: name, Values: vals}})
				pending = append(pending, name)
				counts[1]++
			default:
				name := pending[len(pending)-1]
				pending = pending[:len(pending)-1]
				ops = append(ops, loadOp{kind: 'r', name: name})
				counts[2]++
			}
		}
		streams[c] = ops
	}
	return streams, counts
}

// percentileMs linearly interpolates the p-th percentile of a sorted
// sample (p in [0,1]); empty samples report 0.
func percentileMs(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// checkSLO lists the configured latency ceilings the run breached.
func checkSLO(slo LoadSLO, r *LoadResult) []string {
	var v []string
	for _, c := range []struct {
		name       string
		limit, got float64
	}{
		{"search p50", slo.P50Ms, r.SearchP50Ms},
		{"search p95", slo.P95Ms, r.SearchP95Ms},
		{"search p99", slo.P99Ms, r.SearchP99Ms},
	} {
		if c.limit > 0 && c.got > c.limit {
			v = append(v, fmt.Sprintf("%s %.3f ms exceeds SLO %.3f ms", c.name, c.got, c.limit))
		}
	}
	return v
}
