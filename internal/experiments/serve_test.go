package experiments

import (
	"strings"
	"testing"
)

func TestServeEval(t *testing.T) {
	res, err := ServeEval(ServeOptions{
		Options:      Options{Seed: 1, Components: 8, Restarts: 1, SubsampleStack: 2000, Workers: 2},
		Columns:      40,
		Clients:      4,
		DupFractions: []float64{0, 0.8},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("got %d points, want 2", len(res.Points))
	}
	if res.Dim == 0 {
		t.Error("dim not reported")
	}
	p0, p1 := res.Points[0], res.Points[1]
	if p0.HitRate > 0.05 {
		t.Errorf("all-fresh stream hit rate = %v, want ~0", p0.HitRate)
	}
	if p1.HitRate < 0.5 {
		t.Errorf("0.8-duplicate stream hit rate = %v, want >= 0.5", p1.HitRate)
	}
	for i, p := range res.Points {
		if p.QPS <= 0 {
			t.Errorf("point %d: qps = %v", i, p.QPS)
		}
		if p.MeanBatch < 1 && p.HitRate < 1 {
			t.Errorf("point %d: mean batch = %v", i, p.MeanBatch)
		}
	}

	out := res.String()
	for _, want := range []string{"serve eval", "qps", "hit", "mean batch"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestServeOptionsDefaults(t *testing.T) {
	var o ServeOptions
	o.fillDefaults()
	if o.Columns != 50 {
		// Scale defaults to 0.25 → 200·0.25 = 50.
		t.Errorf("default Columns = %d, want 50", o.Columns)
	}
	if o.Requests != o.Columns {
		t.Errorf("default Requests = %d, want Columns (%d)", o.Requests, o.Columns)
	}
	if o.Clients != 8 || len(o.DupFractions) != 3 {
		t.Errorf("defaults: %+v", o)
	}
}
