package experiments

import (
	"strings"
	"testing"
)

// tinyOpts keeps every experiment fast enough for unit tests while retaining
// the full structure.
func tinyOpts() Options {
	return Options{
		Seed:           1,
		Scale:          0.04,
		Components:     10,
		Restarts:       2,
		SubsampleStack: 3000,
		HeaderDim:      48,
	}
}

func TestOptionsDefaults(t *testing.T) {
	var o Options
	o.FillDefaults()
	if o.Scale != 0.25 || o.Components != 50 || o.Restarts != 3 ||
		o.SubsampleStack != 8000 || o.HeaderDim != 128 {
		t.Errorf("defaults wrong: %+v", o)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]Table1Row{}
	for _, r := range rows {
		byName[r.Dataset] = r
		if r.Columns < 2 || r.CoarseTypes < 2 || r.TotalCells < r.Columns {
			t.Errorf("implausible row %+v", r)
		}
	}
	if byName["GDS"].FineTypes <= byName["GDS"].CoarseTypes {
		t.Error("GDS fine types must exceed coarse types")
	}
	if byName["WDC"].FineTypes < 2*byName["WDC"].CoarseTypes {
		t.Error("WDC fine types should be ≳2x coarse types")
	}
	out := RenderTable1(rows)
	if !strings.Contains(out, "GDS") || !strings.Contains(out, "Git Tables") {
		t.Errorf("render missing datasets:\n%s", out)
	}
}

func TestTable2ShapeAndHeadline(t *testing.T) {
	// Table 2 needs a slightly larger corpus than the other tests: at
	// minuscule scales per-type column counts hit the floor of 2 and the
	// precision@k estimates get too noisy to rank methods.
	opts := tinyOpts()
	opts.Scale = 0.1
	res, err := Table2(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 4 {
		t.Fatalf("datasets = %v", res.Datasets)
	}
	if len(res.Methods) != 6 {
		t.Fatalf("methods = %v", res.Methods)
	}
	if res.Methods[len(res.Methods)-1] != "Gem (D+S)" {
		t.Errorf("last row should be Gem (D+S), got %q", res.Methods[len(res.Methods)-1])
	}
	for _, m := range res.Methods {
		for _, ds := range res.Datasets {
			s := res.Scores[m][ds]
			if s < 0 || s > 1 {
				t.Errorf("%s on %s: score %v outside [0,1]", m, ds, s)
			}
		}
	}
	// The headline claim at this scale: Gem (D+S) wins on a majority of
	// corpora (the full-scale benches check all four; a tiny corpus can
	// make single baselines lucky on one dataset).
	wins := 0
	for _, ds := range res.Datasets {
		gem := res.Scores["Gem (D+S)"][ds]
		best := true
		for _, m := range res.Methods {
			if m == "Gem (D+S)" {
				continue
			}
			if res.Scores[m][ds] > gem {
				best = false
				break
			}
		}
		if best {
			wins++
		}
	}
	if wins < 3 {
		t.Errorf("Gem (D+S) wins on only %d/4 corpora at tiny scale:\n%s", wins, res)
	}
	out := res.String()
	if !strings.Contains(out, "Gem (D+S)") || !strings.Contains(out, "Squashing_GMM") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestTable3ShapeAndHeadline(t *testing.T) {
	res, err := Table3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 8 {
		t.Fatalf("methods = %v", res.Methods)
	}
	if len(res.Datasets) != 2 {
		t.Fatalf("datasets = %v", res.Datasets)
	}
	// Headline 1: headers-only does far better on GDS than on WDC
	// (distinct vs overlapping header vocabularies).
	sb := res.Scores["SBERT (headers only)"]
	if sb["GDS"] <= sb["WDC"] {
		t.Errorf("headers-only should be much stronger on GDS: GDS=%v WDC=%v", sb["GDS"], sb["WDC"])
	}
	// Headline 2: composing values with headers (concatenation) beats
	// headers alone on both corpora.
	cc := res.Scores["Gem D+S+C (concatenation)"]
	for _, ds := range res.Datasets {
		if cc[ds] < sb[ds] {
			t.Errorf("%s: concat (%v) should be >= headers-only (%v)", ds, cc[ds], sb[ds])
		}
	}
	out := res.String()
	if !strings.Contains(out, "concatenation") {
		t.Errorf("render incomplete:\n%s", out)
	}
}

func TestFigure3ShapeAndOrdering(t *testing.T) {
	res, err := Figure3(tinyOpts())
	if err != nil {
		t.Fatal(err)
	}
	wantCombos := []string{"D", "S", "C", "D+S", "C+S", "D+C", "D+C+S"}
	if len(res.Combos) != len(wantCombos) {
		t.Fatalf("combos = %v", res.Combos)
	}
	for i, c := range wantCombos {
		if res.Combos[i] != c {
			t.Fatalf("combos order = %v, want %v", res.Combos, wantCombos)
		}
	}
	for ds, scores := range res.Scores {
		// D+S must improve on, or at least match, D alone (the paper's key
		// combination claim). On the synthetic GDS the statistical block is
		// weaker than in the paper, so D+S lands within noise of D rather
		// than strictly above it (recorded in EXPERIMENTS.md); the 0.07
		// tolerance admits that while still catching real regressions.
		if scores["D+S"] < scores["D"]-0.07 {
			t.Errorf("%s: D+S (%v) should be >= D (%v)", ds, scores["D+S"], scores["D"])
		}
		// Full combination beats or matches C+S.
		if scores["D+C+S"] < scores["C+S"]-0.02 {
			t.Errorf("%s: D+C+S (%v) should be >= C+S (%v)", ds, scores["D+C+S"], scores["C+S"])
		}
	}
	if !strings.Contains(res.String(), "D+C+S") {
		t.Error("render incomplete")
	}
}

func TestFigure4Stability(t *testing.T) {
	res, err := Figure4(tinyOpts(), []int{5, 15, 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Components) != 3 {
		t.Fatalf("components = %v", res.Components)
	}
	// The paper's finding: precision is stable across component counts.
	for ds, scores := range res.Scores {
		lo, hi := 2.0, -1.0
		for _, m := range res.Components {
			s := scores[m]
			if s < lo {
				lo = s
			}
			if s > hi {
				hi = s
			}
		}
		if hi-lo > 0.25 {
			t.Errorf("%s: precision swings too much across components: [%v, %v]", ds, lo, hi)
		}
	}
	if !strings.Contains(res.String(), "Components") {
		t.Error("render incomplete")
	}
}

func TestFigure5RuntimeShape(t *testing.T) {
	res, err := Figure5(tinyOpts(), []int{50, 150}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Methods) != 4 {
		t.Fatalf("methods = %v", res.Methods)
	}
	for _, m := range res.Methods {
		for _, n := range res.ColumnCounts {
			if res.Seconds[m][n] < 0 {
				t.Errorf("%s at %d columns: negative runtime", m, n)
			}
		}
	}
	// KS grows with column count (it is per-column linear with real work per
	// column); check it is monotone here.
	ks := res.Seconds["KS statistic"]
	if ks[150] < ks[50] {
		t.Errorf("KS runtime should grow with columns: %v vs %v", ks[50], ks[150])
	}
	if !strings.Contains(res.String(), "Columns") {
		t.Error("render incomplete")
	}
}

func TestTable4ShapeAndHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("deep clustering is slow; skipped in -short mode")
	}
	opts := tinyOpts()
	res, err := Table4(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Datasets) != 2 {
		t.Fatalf("datasets = %v", res.Datasets)
	}
	// Shape: Gem has all three settings; SOM lacks headers-only.
	for _, ds := range res.Datasets {
		for _, algo := range []string{"TableDC", "SDCN"} {
			if _, ok := res.Cells["Gem"][ds][algo+"/Headers only"]; !ok {
				t.Errorf("missing Gem %s headers-only on %s", algo, ds)
			}
			if _, ok := res.Cells["Squashing_SOM"][ds][algo+"/Headers only"]; ok {
				t.Errorf("SOM should have no headers-only cell on %s", ds)
			}
		}
	}
	// Metrics in range.
	for emb, byDS := range res.Cells {
		for ds, cells := range byDS {
			for key, cell := range cells {
				if cell.ACC < 0 || cell.ACC > 1 || cell.ARI < -1 || cell.ARI > 1 {
					t.Errorf("%s/%s/%s: out-of-range metrics %+v", emb, ds, key, cell)
				}
			}
		}
	}
	// Headline: on GDS, Gem headers+values at least matches Gem values-only
	// (TableDC); a 0.03 tolerance absorbs tiny-scale noise.
	gds := res.Cells["Gem"]["GDS"]
	if gds["TableDC/Headers + Values"].ACC < gds["TableDC/Values only"].ACC-0.03 {
		t.Errorf("GDS TableDC: headers+values ACC (%v) should be >= values-only (%v)",
			gds["TableDC/Headers + Values"].ACC, gds["TableDC/Values only"].ACC)
	}
	if !strings.Contains(res.String(), "TableDC") {
		t.Error("render incomplete")
	}
}
