package experiments

// Serving-throughput evaluation: the deployment mode at "heavy traffic"
// grain. One corpus-level embedder is fitted, persisted and reloaded warm;
// concurrent clients then replay single-column requests whose duplicate
// fraction is swept, measuring how the serve layer's content-hash cache and
// micro-batching convert repetition and concurrency into throughput. QPS
// and latency are wall-clock (machine-dependent); hit rate and batch shape
// are deterministic in (options, seed). cmd/gembench's -exp serve is a thin
// wrapper around this.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"time"

	"github.com/gem-embeddings/gem/internal/catalog"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/serve"
	"github.com/gem-embeddings/gem/internal/table"
)

// ServeOptions scales the serving evaluation.
type ServeOptions struct {
	Options
	// Columns is the catalog size the embedder is fitted on and requests
	// draw from. 0 defaults to 200·Scale (min 40).
	Columns int
	// Requests is the number of single-column requests per sweep point.
	// 0 defaults to Columns, so at duplicate fraction 0 every request is
	// a fresh column and the measured hit rate tracks the sweep fraction.
	Requests int
	// Clients is the number of concurrent requesters. Default 8.
	Clients int
	// DupFractions are the duplicate fractions swept. Default 0, 0.5, 0.9.
	DupFractions []float64
}

func (o *ServeOptions) fillDefaults() {
	o.Options.FillDefaults()
	if o.Columns <= 0 {
		o.Columns = int(200 * o.Scale)
		if o.Columns < 40 {
			o.Columns = 40
		}
	}
	if o.Requests <= 0 {
		o.Requests = o.Columns
	}
	if o.Clients <= 0 {
		o.Clients = 8
	}
	if len(o.DupFractions) == 0 {
		o.DupFractions = []float64{0, 0.5, 0.9}
	}
}

// ServePoint is one sweep point of the serving evaluation.
type ServePoint struct {
	// DupFraction is the requested duplicate fraction of the stream.
	DupFraction float64
	// QPS is requests per wall-clock second over the whole replay.
	QPS float64
	// HitRate is the server-measured cache hit rate.
	HitRate float64
	// MeanBatch is the mean coalesced-batch width (unique columns per
	// pooled signature pass).
	MeanBatch float64
	// P50Ms and P99Ms are request latency percentiles in milliseconds.
	P50Ms, P99Ms float64
}

// ServeResult reports one serving evaluation run.
type ServeResult struct {
	Columns, Requests, Clients, Dim int
	Points                          []ServePoint
}

// String renders the result as a small paper-style text table.
func (r *ServeResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "serve eval: %d-column catalog, %d requests x %d clients, dim %d\n",
		r.Columns, r.Requests, r.Clients, r.Dim)
	fmt.Fprintf(&b, "  %6s  %8s  %6s  %10s  %8s  %8s\n",
		"dup", "qps", "hit", "mean batch", "p50 ms", "p99 ms")
	for _, p := range r.Points {
		fmt.Fprintf(&b, "  %6.2f  %8.0f  %6.3f  %10.2f  %8.3f  %8.3f\n",
			p.DupFraction, p.QPS, p.HitRate, p.MeanBatch, p.P50Ms, p.P99Ms)
	}
	return b.String()
}

// ServeEval fits and persists an embedder, reloads it warm, and replays a
// concurrent request stream against a fresh serve.Server per duplicate
// fraction.
func ServeEval(opts ServeOptions) (*ServeResult, error) {
	opts.fillDefaults()
	ds, err := catalog.Synthetic(opts.Columns, opts.Seed).Load()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	e, err := core.NewEmbedder(opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	if err := e.Fit(ds); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	// Round-trip through persistence: the serve layer's deployment mode is
	// a LOADED embedder, so the eval must exercise exactly that path.
	var buf bytes.Buffer
	if err := e.Save(&buf); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	warm, err := core.LoadEmbedder(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrRun, err)
	}
	warm.SetWorkers(opts.Workers)

	result := &ServeResult{Columns: opts.Columns, Requests: opts.Requests, Clients: opts.Clients}
	for _, dup := range opts.DupFractions {
		point, dim, err := serveSweepPoint(warm, ds, opts, dup)
		if err != nil {
			return nil, err
		}
		result.Dim = dim
		result.Points = append(result.Points, *point)
	}
	return result, nil
}

// serveSweepPoint replays one request stream at the given duplicate
// fraction against a cold server on the shared warm embedder.
func serveSweepPoint(warm *core.Embedder, ds *table.Dataset, opts ServeOptions, dup float64) (*ServePoint, int, error) {
	srv, err := serve.New(warm, serve.Config{})
	if err != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrRun, err)
	}
	defer srv.Close()

	// Deterministic stream: with probability dup, repeat a column already
	// requested; otherwise take the next fresh catalog column. Fresh
	// columns advance only on fresh draws, so the stream never wraps and
	// the realized duplicate share tracks dup.
	rng := rand.New(rand.NewSource(opts.Seed ^ 0x5e12e))
	stream := make([]table.Column, opts.Requests)
	fresh := 0
	for i := range stream {
		if fresh > 0 && (fresh == len(ds.Columns) || rng.Float64() < dup) {
			stream[i] = ds.Columns[rng.Intn(fresh)]
			continue
		}
		stream[i] = ds.Columns[fresh]
		fresh++
	}

	jobs := make(chan table.Column)
	var wg sync.WaitGroup
	errs := make([]error, opts.Clients)
	start := time.Now()
	for c := 0; c < opts.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for col := range jobs {
				if errs[c] != nil {
					continue // keep draining so the producer never blocks
				}
				if _, err := srv.Embed(context.Background(), []table.Column{col}); err != nil {
					errs[c] = err
				}
			}
		}(c)
	}
	for _, col := range stream {
		jobs <- col
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("%w: serve replay: %v", ErrRun, err)
		}
	}
	st := srv.Stats()
	return &ServePoint{
		DupFraction: dup,
		QPS:         float64(opts.Requests) / elapsed,
		HitRate:     st.HitRate,
		MeanBatch:   st.MeanBatch,
		P50Ms:       st.LatencyP50Ms,
		P99Ms:       st.LatencyP99Ms,
	}, srv.Dim(), nil
}
