package experiments

import (
	"fmt"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/deepcluster"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// MethodScore is one (method, dataset) average-precision cell.
type MethodScore struct {
	Method  string
	Dataset string
	Score   float64
}

// Table2Result holds the numeric-only comparison (paper Table 2): average
// precision of six methods across the four corpora at coarse granularity.
type Table2Result struct {
	// Datasets in column order (Git Tables, Sato Tables, WDC, GDS).
	Datasets []string
	// Methods in row order.
	Methods []string
	// Scores[method][dataset] = average precision.
	Scores map[string]map[string]float64
}

// Table2 reproduces the numeric-only experiment: Gem (D+S) against the five
// numeric-only baselines on all four corpora with coarse labels.
func Table2(opts Options) (*Table2Result, error) {
	opts.FillDefaults()
	corpora := data.AllCorpora(opts.corpusConfig(data.Coarse))

	methods := []baselines.Method{
		&baselines.SquashingGMM{Components: opts.Components, Restarts: opts.Restarts,
			SubsampleStack: opts.SubsampleStack, Seed: opts.Seed},
		&baselines.SquashingSOM{Units: opts.Components, Epochs: 10,
			SubsampleStack: opts.SubsampleStack, Seed: opts.Seed},
		&baselines.PLE{Bins: opts.Components},
		&baselines.PAF{Frequencies: opts.Components},
		&baselines.KSStatistic{},
		&GemMethod{DisplayName: "Gem (D+S)",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation)},
	}

	res := &Table2Result{Scores: make(map[string]map[string]float64)}
	for _, ds := range corpora {
		res.Datasets = append(res.Datasets, ds.Name)
	}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.Name())
		res.Scores[m.Name()] = make(map[string]float64)
		for _, ds := range corpora {
			ap, err := scoreMethod(m, ds)
			if err != nil {
				return nil, fmt.Errorf("%w: table2 %s on %s: %v", ErrRun, m.Name(), ds.Name, err)
			}
			res.Scores[m.Name()][ds.Name] = ap
		}
	}
	return res, nil
}

// scoreMethod embeds ds with m and returns macro-averaged precision@k.
func scoreMethod(m baselines.Method, ds *table.Dataset) (float64, error) {
	emb, err := m.Embed(ds)
	if err != nil {
		return 0, err
	}
	return eval.AveragePrecisionByType(emb, ds.Labels())
}

// Table3Result holds the headers+values comparison (paper Table 3) on the
// fine-grained GDS and WDC corpora.
type Table3Result struct {
	Datasets []string // WDC, GDS
	Methods  []string
	Scores   map[string]map[string]float64
}

// Table3 reproduces the headers+values experiment: header-only SBERT
// (substitute), the three learned single-column baselines, Gem (D+S), and
// Gem D+S+C under the three composition modes, on fine-grained WDC and GDS.
func Table3(opts Options) (*Table3Result, error) {
	opts.FillDefaults()
	corpora := []*table.Dataset{
		data.WDC(opts.corpusConfig(data.Fine)),
		data.GDS(opts.corpusConfig(data.Fine)),
	}

	methods := []baselines.Method{
		&baselines.HeadersOnly{HeaderDim: opts.HeaderDim},
		&baselines.PythagorasSC{HeaderDim: opts.HeaderDim, Epochs: 20, Seed: opts.Seed},
		&baselines.SherlockSC{HeaderDim: opts.HeaderDim, Epochs: 20, Seed: opts.Seed},
		&baselines.SatoSC{HeaderDim: opts.HeaderDim, Epochs: 20, Seed: opts.Seed},
		&GemMethod{DisplayName: "Gem (D+S)",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation)},
		&GemMethod{DisplayName: "Gem D+S+C (aggregation)",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical|core.Contextual, core.Aggregation)},
		&GemMethod{DisplayName: "Gem D+S+C (AE)",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical|core.Contextual, core.AE)},
		&GemMethod{DisplayName: "Gem D+S+C (concatenation)",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical|core.Contextual, core.Concatenation)},
	}

	res := &Table3Result{Scores: make(map[string]map[string]float64)}
	for _, ds := range corpora {
		res.Datasets = append(res.Datasets, ds.Name)
	}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.Name())
		res.Scores[m.Name()] = make(map[string]float64)
		for _, ds := range corpora {
			ap, err := scoreMethod(m, ds)
			if err != nil {
				return nil, fmt.Errorf("%w: table3 %s on %s: %v", ErrRun, m.Name(), ds.Name, err)
			}
			res.Scores[m.Name()][ds.Name] = ap
		}
	}
	return res, nil
}

// Table4Cell is one clustering outcome.
type Table4Cell struct {
	ARI float64
	ACC float64
}

// Table4Result holds the deep-clustering comparison (paper Table 4):
// {Gem, Squashing_SOM} embeddings × {TableDC, SDCN} × three input settings
// on GDS and WDC.
type Table4Result struct {
	Datasets []string // GDS, WDC
	Settings []string // "Headers only", "Values only", "Headers + Values"
	// Cells[embedding][dataset][algorithm][setting]
	Cells map[string]map[string]map[string]Table4Cell
}

// Table4 reproduces the clustering experiment. Following the paper,
// Squashing_SOM has no headers-only setting (its mechanism is value-based);
// that cell is absent from the result map.
func Table4(opts Options) (*Table4Result, error) {
	opts.FillDefaults()
	corpora := []*table.Dataset{
		data.GDS(opts.corpusConfig(data.Fine)),
		data.WDC(opts.corpusConfig(data.Fine)),
	}

	res := &Table4Result{
		Settings: []string{"Headers only", "Values only", "Headers + Values"},
		Cells:    make(map[string]map[string]map[string]Table4Cell),
	}
	for _, emb := range []string{"Gem", "Squashing_SOM"} {
		res.Cells[emb] = make(map[string]map[string]Table4Cell)
	}

	for _, ds := range corpora {
		res.Datasets = append(res.Datasets, ds.Name)
		k := ds.NumTypes()
		labels := ds.Labels()

		// Build the three input representations per embedding family.
		headerRows, err := (&baselines.HeadersOnly{HeaderDim: opts.HeaderDim}).Embed(ds)
		if err != nil {
			return nil, fmt.Errorf("%w: table4 headers on %s: %v", ErrRun, ds.Name, err)
		}
		gemValues, err := (&GemMethod{DisplayName: "gem",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation)}).Embed(ds)
		if err != nil {
			return nil, fmt.Errorf("%w: table4 gem values on %s: %v", ErrRun, ds.Name, err)
		}
		somValues, err := (&baselines.SquashingSOM{Units: opts.Components, Epochs: 10,
			SubsampleStack: opts.SubsampleStack, Seed: opts.Seed}).Embed(ds)
		if err != nil {
			return nil, fmt.Errorf("%w: table4 som values on %s: %v", ErrRun, ds.Name, err)
		}

		inputs := map[string]map[string][][]float64{
			"Gem": {
				"Headers only":     headerRows,
				"Values only":      gemValues,
				"Headers + Values": concat(gemValues, headerRows),
			},
			"Squashing_SOM": {
				"Values only":      somValues,
				"Headers + Values": concat(somValues, headerRows),
			},
		}

		for embName, settings := range inputs {
			if res.Cells[embName][ds.Name] == nil {
				res.Cells[embName][ds.Name] = make(map[string]Table4Cell)
			}
			for setting, rows := range settings {
				for algo, run := range map[string]func([][]float64, deepcluster.Config) (*deepcluster.Result, error){
					"TableDC": deepcluster.TableDC,
					"SDCN":    deepcluster.SDCN,
				} {
					dcRes, err := run(rows, deepcluster.Config{
						K:              k,
						LatentDim:      32,
						Hidden:         []int{128},
						PretrainEpochs: 20,
						RefineIters:    15,
						Seed:           opts.Seed,
					})
					if err != nil {
						return nil, fmt.Errorf("%w: table4 %s/%s/%s: %v", ErrRun, embName, algo, setting, err)
					}
					ari, err := eval.AdjustedRandIndex(labels, dcRes.Assignments)
					if err != nil {
						return nil, fmt.Errorf("%w: table4 ARI: %v", ErrRun, err)
					}
					acc, err := eval.ClusterACC(labels, dcRes.Assignments)
					if err != nil {
						return nil, fmt.Errorf("%w: table4 ACC: %v", ErrRun, err)
					}
					key := algo + "/" + setting
					cell := res.Cells[embName][ds.Name]
					cur := cell[key]
					cur.ARI = ari
					cur.ACC = acc
					cell[key] = cur
				}
			}
		}
	}
	return res, nil
}

// concat composes value and header rows the way Gem's Eq. 11 does: each part
// is L1-normalized and the parts are joined side by side. The L1 geometry
// makes the denser header block a gentle tiebreaker rather than an equal
// partner, which is exactly how the paper's combined embeddings behave
// downstream.
func concat(a, b [][]float64) [][]float64 {
	out := make([][]float64, len(a))
	for i := range a {
		na := stats.L1Normalize(a[i])
		nb := stats.L1Normalize(b[i])
		row := make([]float64, 0, len(na)+len(nb))
		row = append(row, na...)
		row = append(row, nb...)
		out[i] = row
	}
	return out
}
