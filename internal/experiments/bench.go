package experiments

// Machine-readable benchmark reporting. gembench -json writes one
// BenchReport per run (CI uploads it as the BENCH_10 artifact and diffs it
// against the checked-in BENCH_10.json baseline), so the performance
// trajectory — QPS, recall@k, latency percentiles — is recorded and gated
// per commit instead of scrolling away in build logs.

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/gem-embeddings/gem/internal/gmm"
)

// BenchReport is the machine-readable result of one gembench run. Only
// the experiments that actually ran are present.
type BenchReport struct {
	// Schema versions the report layout for downstream tooling.
	Schema int `json:"schema"`
	// Seed and Scale reproduce the run.
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Workers is the requested worker-pool bound (0 = GOMAXPROCS).
	Workers int `json:"workers"`

	Search *SearchReport `json:"search,omitempty"`
	Serve  *ServeReport  `json:"serve,omitempty"`
	Load   *LoadReport   `json:"load,omitempty"`
}

// BenchSchemaVersion is the current BenchReport schema. Version 2 added
// fit_seconds and the per-precision tiers list to the search section;
// version 3 added the load section (sharded closed-loop load harness with
// SLO ceilings); version 4 added EM fit telemetry (per-restart iterations
// and likelihoods, winning restart, E/M-step wall-clock) to the search
// section; version 5 added the batched-search section (SearchBatch QPS and
// allocations per query over a batch-size × workers grid, plus the proxy
// single-vs-batched round-trip comparison).
const BenchSchemaVersion = 5

// SearchReport is the JSON form of a SearchResult. The top-level recall and
// QPS fields mirror the first precision tier (float64 by default); Tiers
// holds the full sweep.
type SearchReport struct {
	Columns      int          `json:"columns"`
	Dim          int          `json:"dim"`
	K            int          `json:"k"`
	Metric       string       `json:"metric"`
	RecallAtK    float64      `json:"recall_at_k"`
	EmbedSeconds float64      `json:"embed_seconds"`
	FitSeconds   float64      `json:"fit_seconds"`
	BuildSeconds float64      `json:"build_seconds"`
	FlatQPS      float64      `json:"flat_qps"`
	HNSWQPS      float64      `json:"hnsw_qps"`
	Tiers        []TierReport `json:"tiers,omitempty"`
	// Batch is the batched-search sweep (schema 5+).
	Batch *BatchReport `json:"batch,omitempty"`
	// Fit is the EM fit telemetry of the model behind the catalog
	// embeddings (schema 4+).
	Fit *gmm.FitStats `json:"fit,omitempty"`
}

// BatchReport is the JSON form of a BatchResult.
type BatchReport struct {
	K      int                `json:"k"`
	Points []BatchPointReport `json:"points"`
	// The proxy fields are zero when the run skipped the proxy
	// round-trip comparison.
	ProxyBatchSize int     `json:"proxy_batch_size,omitempty"`
	ProxyQueries   int     `json:"proxy_queries,omitempty"`
	ProxySingleQPS float64 `json:"proxy_single_qps,omitempty"`
	ProxyBatchQPS  float64 `json:"proxy_batch_qps,omitempty"`
	ProxySpeedup   float64 `json:"proxy_speedup,omitempty"`
}

// BatchPointReport is one batch-size × workers sweep point.
type BatchPointReport struct {
	BatchSize  int     `json:"batch_size"`
	Workers    int     `json:"workers"`
	FlatQPS    float64 `json:"flat_qps"`
	HNSWQPS    float64 `json:"hnsw_qps"`
	FlatAllocs float64 `json:"flat_allocs_per_query"`
	HNSWAllocs float64 `json:"hnsw_allocs_per_query"`
}

// NewBatchReport converts a BatchResult (nil-safe).
func NewBatchReport(r *BatchResult) *BatchReport {
	if r == nil {
		return nil
	}
	out := &BatchReport{
		K:              r.K,
		Points:         make([]BatchPointReport, len(r.Points)),
		ProxyBatchSize: r.ProxyBatchSize,
		ProxyQueries:   r.ProxyQueries,
		ProxySingleQPS: r.ProxySingleQPS,
		ProxyBatchQPS:  r.ProxyBatchQPS,
		ProxySpeedup:   r.ProxySpeedup,
	}
	for i, p := range r.Points {
		out.Points[i] = BatchPointReport{
			BatchSize:  p.BatchSize,
			Workers:    p.Workers,
			FlatQPS:    p.FlatQPS,
			HNSWQPS:    p.HNSWQPS,
			FlatAllocs: p.FlatAllocs,
			HNSWAllocs: p.HNSWAllocs,
		}
	}
	return out
}

// TierReport is the JSON form of one precision tier.
type TierReport struct {
	Precision     string  `json:"precision"`
	BuildSeconds  float64 `json:"build_seconds"`
	FlatRecallAtK float64 `json:"flat_recall_at_k"`
	RecallAtK     float64 `json:"recall_at_k"`
	FlatQPS       float64 `json:"flat_qps"`
	HNSWQPS       float64 `json:"hnsw_qps"`
}

// NewSearchReport converts a SearchResult.
func NewSearchReport(r *SearchResult) *SearchReport {
	out := &SearchReport{
		Columns:      r.Columns,
		Dim:          r.Dim,
		K:            r.K,
		Metric:       r.Metric.String(),
		RecallAtK:    r.Recall,
		EmbedSeconds: r.EmbedSeconds,
		FitSeconds:   r.FitSeconds,
		BuildSeconds: r.BuildSeconds,
		FlatQPS:      r.FlatQPS,
		HNSWQPS:      r.HNSWQPS,
		Batch:        NewBatchReport(r.Batch),
		Fit:          r.FitStats,
	}
	for _, tr := range r.Tiers {
		out.Tiers = append(out.Tiers, TierReport{
			Precision:     tr.Precision.String(),
			BuildSeconds:  tr.BuildSeconds,
			FlatRecallAtK: tr.FlatRecall,
			RecallAtK:     tr.HNSWRecall,
			FlatQPS:       tr.FlatQPS,
			HNSWQPS:       tr.HNSWQPS,
		})
	}
	return out
}

// ServeReport is the JSON form of a ServeResult.
type ServeReport struct {
	Columns  int                `json:"columns"`
	Requests int                `json:"requests"`
	Clients  int                `json:"clients"`
	Dim      int                `json:"dim"`
	Points   []ServePointReport `json:"points"`
}

// ServePointReport is one duplicate-fraction sweep point.
type ServePointReport struct {
	DupFraction float64 `json:"dup_fraction"`
	QPS         float64 `json:"qps"`
	HitRate     float64 `json:"hit_rate"`
	MeanBatch   float64 `json:"mean_batch"`
	LatencyP50  float64 `json:"latency_p50_ms"`
	LatencyP99  float64 `json:"latency_p99_ms"`
}

// NewServeReport converts a ServeResult.
func NewServeReport(r *ServeResult) *ServeReport {
	out := &ServeReport{
		Columns:  r.Columns,
		Requests: r.Requests,
		Clients:  r.Clients,
		Dim:      r.Dim,
		Points:   make([]ServePointReport, len(r.Points)),
	}
	for i, p := range r.Points {
		out.Points[i] = ServePointReport{
			DupFraction: p.DupFraction,
			QPS:         p.QPS,
			HitRate:     p.HitRate,
			MeanBatch:   p.MeanBatch,
			LatencyP50:  p.P50Ms,
			LatencyP99:  p.P99Ms,
		}
	}
	return out
}

// LoadReport is the JSON form of a LoadResult. The SLO fields carry the
// configured ceilings: a checked-in baseline with SLOs makes the CI gate
// enforce them against every fresh run's measured percentiles.
type LoadReport struct {
	Columns     int     `json:"columns"`
	Ops         int     `json:"ops"`
	Clients     int     `json:"clients"`
	Shards      int     `json:"shards"`
	K           int     `json:"k"`
	Dim         int     `json:"dim"`
	SearchFrac  float64 `json:"search_frac"`
	AddFrac     float64 `json:"add_frac"`
	RemoveFrac  float64 `json:"remove_frac"`
	Searches    int     `json:"searches"`
	Adds        int     `json:"adds"`
	Removes     int     `json:"removes"`
	LiveColumns int     `json:"live_columns"`
	QPS         float64 `json:"qps"`
	SearchP50Ms float64 `json:"search_p50_ms"`
	SearchP95Ms float64 `json:"search_p95_ms"`
	SearchP99Ms float64 `json:"search_p99_ms"`
	MutateP99Ms float64 `json:"mutate_p99_ms"`

	OpenLoopQPS         float64 `json:"open_loop_qps,omitempty"`
	OpenLoopAchievedQPS float64 `json:"open_loop_achieved_qps,omitempty"`
	OpenLoopP99Ms       float64 `json:"open_loop_p99_ms,omitempty"`

	SLOP50Ms      float64  `json:"slo_p50_ms,omitempty"`
	SLOP95Ms      float64  `json:"slo_p95_ms,omitempty"`
	SLOP99Ms      float64  `json:"slo_p99_ms,omitempty"`
	SLOViolations []string `json:"slo_violations,omitempty"`
}

// NewLoadReport converts a LoadResult.
func NewLoadReport(r *LoadResult) *LoadReport {
	return &LoadReport{
		Columns:     r.Columns,
		Ops:         r.Ops,
		Clients:     r.Clients,
		Shards:      r.Shards,
		K:           r.K,
		Dim:         r.Dim,
		SearchFrac:  r.SearchFrac,
		AddFrac:     r.AddFrac,
		RemoveFrac:  r.RemoveFrac,
		Searches:    r.Searches,
		Adds:        r.Adds,
		Removes:     r.Removes,
		LiveColumns: r.LiveColumns,
		QPS:         r.QPS,
		SearchP50Ms: r.SearchP50Ms,
		SearchP95Ms: r.SearchP95Ms,
		SearchP99Ms: r.SearchP99Ms,
		MutateP99Ms: r.MutateP99Ms,

		OpenLoopQPS:         r.OpenLoopQPS,
		OpenLoopAchievedQPS: r.OpenLoopAchievedQPS,
		OpenLoopP99Ms:       r.OpenLoopP99Ms,

		SLOP50Ms:      r.SLO.P50Ms,
		SLOP95Ms:      r.SLO.P95Ms,
		SLOP99Ms:      r.SLO.P99Ms,
		SLOViolations: r.SLOViolations,
	}
}

// Write renders the report as indented JSON.
func (b *BenchReport) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(b); err != nil {
		return fmt.Errorf("experiments: writing bench report: %w", err)
	}
	return nil
}
