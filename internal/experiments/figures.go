package experiments

import (
	"fmt"
	"time"

	"github.com/gem-embeddings/gem/internal/baselines"
	"github.com/gem-embeddings/gem/internal/core"
	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/table"
)

// Figure3Result holds the feature-ablation series (paper Figure 3): average
// precision of every D/S/C combination on fine-grained WDC and GDS.
type Figure3Result struct {
	// Combos in the paper's x-axis order: D, S, C, D+S, C+S, D+C, D+C+S.
	Combos []string
	// Scores[dataset][combo] = average precision.
	Scores map[string]map[string]float64
}

// figure3Combos lists the ablation feature sets in the paper's order.
func figure3Combos() []struct {
	label string
	feats core.Features
} {
	return []struct {
		label string
		feats core.Features
	}{
		{"D", core.Distributional},
		{"S", core.Statistical},
		{"C", core.Contextual},
		{"D+S", core.Distributional | core.Statistical},
		{"C+S", core.Contextual | core.Statistical},
		{"D+C", core.Distributional | core.Contextual},
		{"D+C+S", core.Distributional | core.Contextual | core.Statistical},
	}
}

// Figure3 reproduces the ablation study over feature combinations.
func Figure3(opts Options) (*Figure3Result, error) {
	opts.FillDefaults()
	corpora := []*table.Dataset{
		data.WDC(opts.corpusConfig(data.Fine)),
		data.GDS(opts.corpusConfig(data.Fine)),
	}
	res := &Figure3Result{Scores: make(map[string]map[string]float64)}
	for _, combo := range figure3Combos() {
		res.Combos = append(res.Combos, combo.label)
	}
	for _, ds := range corpora {
		res.Scores[ds.Name] = make(map[string]float64)
		for _, combo := range figure3Combos() {
			m := &GemMethod{
				DisplayName: "Gem (" + combo.label + ")",
				Cfg:         opts.gemConfig(combo.feats, core.Concatenation),
			}
			ap, err := scoreMethod(m, ds)
			if err != nil {
				return nil, fmt.Errorf("%w: figure3 %s on %s: %v", ErrRun, combo.label, ds.Name, err)
			}
			res.Scores[ds.Name][combo.label] = ap
		}
	}
	return res, nil
}

// Figure4Result holds the GMM-component sweep (paper Figure 4): Gem (D+S)
// precision as a function of the number of components on all four corpora.
type Figure4Result struct {
	Components []int
	// Scores[dataset][m] = average precision with m components.
	Scores map[string]map[int]float64
}

// Figure4 reproduces the component-count robustness sweep. components
// defaults to the paper's grid 10, 20, ..., 100 when nil.
func Figure4(opts Options, components []int) (*Figure4Result, error) {
	opts.FillDefaults()
	if len(components) == 0 {
		components = []int{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	}
	corpora := data.AllCorpora(opts.corpusConfig(data.Coarse))
	res := &Figure4Result{Components: components, Scores: make(map[string]map[int]float64)}
	for _, ds := range corpora {
		res.Scores[ds.Name] = make(map[int]float64)
		for _, m := range components {
			o := opts
			o.Components = m
			method := &GemMethod{
				DisplayName: fmt.Sprintf("Gem m=%d", m),
				Cfg:         o.gemConfig(core.Distributional|core.Statistical, core.Concatenation),
			}
			ap, err := scoreMethod(method, ds)
			if err != nil {
				return nil, fmt.Errorf("%w: figure4 m=%d on %s: %v", ErrRun, m, ds.Name, err)
			}
			res.Scores[ds.Name][m] = ap
		}
	}
	return res, nil
}

// Figure5Result holds the scalability sweep (paper Figure 5): embedding
// runtime against column count for Gem, PLE, Squashing GMM and the KS
// statistic.
type Figure5Result struct {
	ColumnCounts []int
	Methods      []string
	// Seconds[method][nColumns] = mean wall-clock seconds to embed.
	Seconds map[string]map[int]float64
}

// Figure5 reproduces the runtime scaling experiment. columnCounts defaults
// to 200..2000 step 400; reps is the number of timed repetitions per point
// (the paper uses 5; default 3).
func Figure5(opts Options, columnCounts []int, reps int) (*Figure5Result, error) {
	opts.FillDefaults()
	if len(columnCounts) == 0 {
		columnCounts = []int{200, 600, 1000, 1400, 1800}
	}
	if reps <= 0 {
		reps = 3
	}
	methods := []baselines.Method{
		&GemMethod{DisplayName: "Gem",
			Cfg: opts.gemConfig(core.Distributional|core.Statistical, core.Concatenation)},
		&baselines.PLE{Bins: opts.Components},
		&baselines.SquashingGMM{Components: opts.Components, Restarts: opts.Restarts,
			SubsampleStack: opts.SubsampleStack, Seed: opts.Seed},
		&baselines.KSStatistic{},
	}
	res := &Figure5Result{
		ColumnCounts: columnCounts,
		Seconds:      make(map[string]map[int]float64),
	}
	for _, m := range methods {
		res.Methods = append(res.Methods, m.Name())
		res.Seconds[m.Name()] = make(map[int]float64)
	}
	for _, n := range columnCounts {
		ds := data.ScalabilityDataset(n, opts.Seed)
		for _, m := range methods {
			var total time.Duration
			for r := 0; r < reps; r++ {
				start := time.Now()
				if _, err := m.Embed(ds); err != nil {
					return nil, fmt.Errorf("%w: figure5 %s at n=%d: %v", ErrRun, m.Name(), n, err)
				}
				total += time.Since(start)
			}
			res.Seconds[m.Name()][n] = total.Seconds() / float64(reps)
		}
	}
	return res, nil
}
