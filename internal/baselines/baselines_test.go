package baselines

import (
	"errors"
	"math"
	"testing"

	"github.com/gem-embeddings/gem/internal/data"
	"github.com/gem-embeddings/gem/internal/eval"
	"github.com/gem-embeddings/gem/internal/table"
)

func corpus(t *testing.T) *table.Dataset {
	t.Helper()
	ds := data.GitTables(data.Config{Seed: 1, Scale: 0.08})
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// allMethods returns every baseline with test-speed settings.
func allMethods() []Method {
	return []Method{
		&PLE{Bins: 20},
		&PAF{Frequencies: 20},
		&SquashingGMM{Components: 10, Restarts: 2, SubsampleStack: 3000, Seed: 1},
		&SquashingSOM{Units: 20, Epochs: 5, SubsampleStack: 3000, Seed: 1},
		&KSStatistic{},
		&SherlockSC{HeaderDim: 48, Epochs: 10, Seed: 1},
		&SatoSC{HeaderDim: 48, Epochs: 10, Seed: 1},
		&PythagorasSC{HeaderDim: 48, Epochs: 10, Seed: 1},
		&HeadersOnly{HeaderDim: 48},
	}
}

func TestAllMethodsProduceFiniteEmbeddings(t *testing.T) {
	ds := corpus(t)
	for _, m := range allMethods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			emb, err := m.Embed(ds)
			if err != nil {
				t.Fatal(err)
			}
			if len(emb) != len(ds.Columns) {
				t.Fatalf("%d embeddings for %d columns", len(emb), len(ds.Columns))
			}
			dim := len(emb[0])
			if dim == 0 {
				t.Fatal("zero-width embedding")
			}
			for i, row := range emb {
				if len(row) != dim {
					t.Fatalf("row %d has dim %d, want %d", i, len(row), dim)
				}
				for _, v := range row {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("row %d has non-finite value", i)
					}
				}
			}
		})
	}
}

func TestAllMethodsRejectEmptyDataset(t *testing.T) {
	for _, m := range allMethods() {
		if _, err := m.Embed(&table.Dataset{}); !errors.Is(err, ErrInput) {
			t.Errorf("%s: want ErrInput, got %v", m.Name(), err)
		}
		if _, err := m.Embed(nil); !errors.Is(err, ErrInput) {
			t.Errorf("%s nil: want ErrInput, got %v", m.Name(), err)
		}
	}
}

func TestMethodNames(t *testing.T) {
	want := map[string]bool{
		"PLE": true, "PAF": true, "Squashing_GMM": true, "Squashing_SOM": true,
		"KS statistic": true, "Sherlock_SC": true, "Sato_SC": true,
		"Pythagoras_SC": true, "SBERT (headers only)": true,
	}
	for _, m := range allMethods() {
		if !want[m.Name()] {
			t.Errorf("unexpected method name %q", m.Name())
		}
	}
}

func TestPLEEncode(t *testing.T) {
	edges := []float64{0, 1, 2, 3}
	tests := []struct {
		v    float64
		want []float64
	}{
		{-1, []float64{0, 0, 0}},
		{0.5, []float64{0.5, 0, 0}},
		{1.5, []float64{1, 0.5, 0}},
		{3, []float64{1, 1, 1}},
		{10, []float64{1, 1, 1}},
	}
	for _, tc := range tests {
		got := pleEncode(tc.v, edges)
		for j := range tc.want {
			if math.Abs(got[j]-tc.want[j]) > 1e-12 {
				t.Errorf("pleEncode(%v) = %v, want %v", tc.v, got, tc.want)
				break
			}
		}
	}
}

func TestPLEMonotoneInValue(t *testing.T) {
	edges, err := quantileEdges([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 5)
	if err != nil {
		t.Fatal(err)
	}
	prevSum := -1.0
	for v := 0.0; v <= 11; v += 0.5 {
		enc := pleEncode(v, edges)
		var s float64
		for _, x := range enc {
			s += x
		}
		if s < prevSum-1e-12 {
			t.Fatalf("PLE total encoding decreased at v=%v", v)
		}
		prevSum = s
	}
}

func TestQuantileEdgesSorted(t *testing.T) {
	edges, err := quantileEdges([]float64{5, 1, 9, 3, 7, 2, 8}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) != 5 {
		t.Fatalf("got %d edges, want 5", len(edges))
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] < edges[i-1] {
			t.Fatalf("edges not sorted: %v", edges)
		}
	}
	if edges[0] != 1 || edges[4] != 9 {
		t.Errorf("extreme edges = %v, %v; want 1, 9", edges[0], edges[4])
	}
	if _, err := quantileEdges(nil, 3); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
}

func TestSquash(t *testing.T) {
	if squash(0) != 0 {
		t.Error("squash(0) != 0")
	}
	if squash(math.E-1) != 1 {
		t.Errorf("squash(e-1) = %v, want 1", squash(math.E-1))
	}
	if squash(-3) != -squash(3) {
		t.Error("squash must be odd")
	}
	// Monotone.
	prev := math.Inf(-1)
	for x := -100.0; x <= 100; x += 1 {
		s := squash(x)
		if s <= prev {
			t.Fatalf("squash not strictly increasing at %v", x)
		}
		prev = s
	}
}

func TestSquashingGMMDistinguishesScales(t *testing.T) {
	// Columns at very different scales should embed differently after
	// squashing.
	ds := &table.Dataset{Name: "scales", Columns: []table.Column{
		{Name: "small", Values: []float64{1, 2, 3, 2, 1}, Type: "small"},
		{Name: "small2", Values: []float64{2, 1, 3, 1, 2}, Type: "small"},
		{Name: "big", Values: []float64{1e6, 2e6, 1.5e6}, Type: "big"},
		{Name: "big2", Values: []float64{1.2e6, 1.8e6, 2.1e6}, Type: "big"},
	}}
	m := &SquashingGMM{Components: 2, Restarts: 2, Seed: 3}
	emb, err := m.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	simSame, _ := eval.CosineSimilarity(emb[0], emb[1])
	simDiff, _ := eval.CosineSimilarity(emb[0], emb[2])
	if simSame <= simDiff {
		t.Errorf("same-scale sim (%v) should beat cross-scale sim (%v)", simSame, simDiff)
	}
}

func TestHeadersOnlySeparatesDistinctHeaders(t *testing.T) {
	ds := &table.Dataset{Name: "h", Columns: []table.Column{
		{Name: "engine_power", Values: []float64{1}, Type: "a"},
		{Name: "engine_power_kw", Values: []float64{1}, Type: "a"},
		{Name: "publication_year", Values: []float64{1}, Type: "b"},
	}}
	m := &HeadersOnly{HeaderDim: 64}
	emb, err := m.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	simSame, _ := eval.CosineSimilarity(emb[0], emb[1])
	simDiff, _ := eval.CosineSimilarity(emb[0], emb[2])
	if simSame <= simDiff {
		t.Errorf("related headers sim (%v) should beat unrelated (%v)", simSame, simDiff)
	}
}

func TestLearnedBaselinesDeterministic(t *testing.T) {
	ds := corpus(t)
	m1 := &SherlockSC{HeaderDim: 32, Epochs: 5, Seed: 9}
	m2 := &SherlockSC{HeaderDim: 32, Epochs: 5, Seed: 9}
	a, err := m1.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m2.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("Sherlock_SC not deterministic under fixed seed")
			}
		}
	}
}

func TestSherlockStatsLength(t *testing.T) {
	f := sherlockStats([]float64{1, 2, 3, 4})
	if len(f) != 9 {
		t.Fatalf("sherlockStats length = %d, want 9", len(f))
	}
	for _, v := range f {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("sherlockStats produced non-finite value")
		}
	}
}

func TestKSStatisticEmbeddingRange(t *testing.T) {
	ds := corpus(t)
	m := &KSStatistic{}
	emb, err := m.Embed(ds)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range emb {
		if len(row) != 7 {
			t.Fatalf("KS row %d has dim %d, want 7", i, len(row))
		}
		for _, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("KS feature %v outside [0,1] (inverted stat)", v)
			}
		}
	}
}
