package baselines

import (
	"fmt"
	"math"

	"github.com/gem-embeddings/gem/internal/matrix"
	"github.com/gem-embeddings/gem/internal/nn"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
	"github.com/gem-embeddings/gem/internal/textembed"
)

// The three learned baselines below are the paper's single-column (*_SC)
// re-implementations of Sherlock, Sato and Pythagoras (§4.1.3): all
// multi-column/table context is removed; each method consumes the column's
// statistical features plus an SBERT-substitute header embedding, trains its
// own network architecture against the ground-truth semantic types, and
// emits penultimate-layer activations as the column embedding — mirroring
// how the paper extracted comparable embeddings from supervised methods.

// sherlockStats computes the Sherlock-style numeric feature vector of a
// column: mean, variance, skewness, kurtosis, min, max, median, sum and
// unique fraction.
func sherlockStats(values []float64) []float64 {
	mean, _ := stats.Mean(values)
	variance, _ := stats.Variance(values)
	skew, _ := stats.Skewness(values)
	kurt, _ := stats.Kurtosis(values)
	lo, _ := stats.Min(values)
	hi, _ := stats.Max(values)
	med, _ := stats.Median(values)
	var sum float64
	for _, v := range values {
		sum += v
	}
	uniq := float64(stats.UniqueCount(values)) / float64(len(values))
	return []float64{mean, variance, skew, kurt, lo, hi, med, sum, uniq}
}

// learnedInputs assembles the feature matrix (standardized statistics ‖
// header embedding) and one-hot labels shared by all three learned
// baselines.
func learnedInputs(ds *table.Dataset, headerDim int) (x *matrix.Dense, y *matrix.Dense, numClasses int, err error) {
	if err := validate(ds); err != nil {
		return nil, nil, 0, err
	}
	raw := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		raw[i] = sherlockStats(col.Values)
	}
	std, err := stats.Standardize(raw)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("baselines: standardizing: %w", err)
	}
	emb, err := textembed.New(headerDim)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("baselines: %w", err)
	}
	rows := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		h := emb.Embed(col.Name)
		row := make([]float64, 0, len(std[i])+len(h))
		row = append(row, std[i]...)
		row = append(row, h...)
		rows[i] = row
	}
	x, err = matrix.FromRows(rows)
	if err != nil {
		return nil, nil, 0, fmt.Errorf("baselines: %w", err)
	}

	classIdx := make(map[string]int)
	labels := make([]int, len(ds.Columns))
	for i, col := range ds.Columns {
		id, ok := classIdx[col.Type]
		if !ok {
			id = len(classIdx)
			classIdx[col.Type] = id
		}
		labels[i] = id
	}
	y, err = nn.OneHot(labels, len(classIdx))
	if err != nil {
		return nil, nil, 0, fmt.Errorf("baselines: %w", err)
	}
	return x, y, len(classIdx), nil
}

// trainAndEmbed trains net on (x, y) and returns the penultimate-layer
// activations as embeddings.
func trainAndEmbed(net *nn.Network, x, y *matrix.Dense, epochs int, lr float64, seed int64) ([][]float64, error) {
	_, err := net.Train(x, y, nn.TrainConfig{
		Epochs:       epochs,
		BatchSize:    64,
		LearningRate: lr,
		Loss:         nn.CrossEntropy,
		Seed:         seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: training: %w", err)
	}
	h, err := net.HiddenActivations(x, net.NumLayers()-1)
	if err != nil {
		return nil, fmt.Errorf("baselines: embedding: %w", err)
	}
	return h.ToRows(), nil
}

// SherlockSC is the paper's Sherlock_SC: statistical features + header
// embeddings through dense layers with dropout and a softmax classifier;
// embeddings come from the penultimate dense layer.
type SherlockSC struct {
	// HeaderDim is the header-embedding width. Default 96.
	HeaderDim int
	// Epochs of training. Default 30.
	Epochs int
	// Seed makes the run deterministic.
	Seed int64
}

// Name implements Method.
func (s *SherlockSC) Name() string { return "Sherlock_SC" }

// Embed implements Method.
func (s *SherlockSC) Embed(ds *table.Dataset) ([][]float64, error) {
	headerDim := s.HeaderDim
	if headerDim <= 0 {
		headerDim = 96
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 30
	}
	x, y, classes, err := learnedInputs(ds, headerDim)
	if err != nil {
		return nil, err
	}
	net, err := nn.New(nn.Config{
		Sizes:   []int{x.Cols(), 128, 64, classes},
		Hidden:  nn.ReLU,
		Output:  nn.Identity,
		Dropout: 0.3,
		Seed:    s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: Sherlock_SC: %w", err)
	}
	return trainAndEmbed(net, x, y, epochs, 1e-3, s.Seed)
}

// SatoSC is the paper's Sato_SC: the same single-column features processed
// through Sato's (context-stripped) architecture — a wider, shallower net
// with tanh units, reflecting Sato's structured-prediction trunk without the
// topic and pairwise potentials that require neighbouring columns.
type SatoSC struct {
	// HeaderDim is the header-embedding width. Default 96.
	HeaderDim int
	// Epochs of training. Default 30.
	Epochs int
	// Seed makes the run deterministic.
	Seed int64
}

// Name implements Method.
func (s *SatoSC) Name() string { return "Sato_SC" }

// Embed implements Method.
func (s *SatoSC) Embed(ds *table.Dataset) ([][]float64, error) {
	headerDim := s.HeaderDim
	if headerDim <= 0 {
		headerDim = 96
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 30
	}
	x, y, classes, err := learnedInputs(ds, headerDim)
	if err != nil {
		return nil, err
	}
	net, err := nn.New(nn.Config{
		Sizes:   []int{x.Cols(), 256, classes},
		Hidden:  nn.Tanh,
		Output:  nn.Identity,
		Dropout: 0.2,
		Seed:    s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: Sato_SC: %w", err)
	}
	return trainAndEmbed(net, x, y, epochs, 1e-3, s.Seed)
}

// PythagorasSC is the paper's context-reduced Pythagoras: a graph neural
// network whose heterogeneous table graph degenerates, in the single-column
// setting, to isolated column nodes with self-loops. One GCN layer with a
// self-loop-only adjacency is exactly a shared dense layer over the node
// features; we keep the GCN formulation (symmetric-normalized A = I) plus a
// k-nearest-neighbour feature graph so the "graph" is not entirely vacuous,
// then classify and read embeddings off the GCN layer.
type PythagorasSC struct {
	// HeaderDim is the header-embedding width. Default 96.
	HeaderDim int
	// Epochs of training. Default 30.
	Epochs int
	// KNN is the number of neighbours in the feature graph. Default 3.
	KNN int
	// Seed makes the run deterministic.
	Seed int64
}

// Name implements Method.
func (p *PythagorasSC) Name() string { return "Pythagoras_SC" }

// Embed implements Method.
func (p *PythagorasSC) Embed(ds *table.Dataset) ([][]float64, error) {
	headerDim := p.HeaderDim
	if headerDim <= 0 {
		headerDim = 96
	}
	epochs := p.Epochs
	if epochs <= 0 {
		epochs = 30
	}
	knn := p.KNN
	if knn <= 0 {
		knn = 3
	}
	x, y, classes, err := learnedInputs(ds, headerDim)
	if err != nil {
		return nil, err
	}
	// Graph propagation: X' = Â X with Â the row-normalized KNN adjacency
	// (self-loops included). This is the fixed, parameter-free part of the
	// GCN layer; the learned part is the dense transform that follows.
	adj := knnAdjacency(x, knn)
	xProp, err := matrix.Mul(adj, x)
	if err != nil {
		return nil, fmt.Errorf("baselines: Pythagoras_SC: %w", err)
	}
	net, err := nn.New(nn.Config{
		Sizes:   []int{x.Cols(), 96, classes},
		Hidden:  nn.ReLU,
		Output:  nn.Identity,
		Dropout: 0.2,
		Seed:    p.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: Pythagoras_SC: %w", err)
	}
	return trainAndEmbed(net, xProp, y, epochs, 1e-3, p.Seed)
}

// knnAdjacency builds a row-normalized adjacency over the k nearest
// neighbours (cosine similarity) of each feature row, with self-loops.
func knnAdjacency(x *matrix.Dense, k int) *matrix.Dense {
	n := x.Rows()
	adj := matrix.New(n, n)
	norms := make([]float64, n)
	for i := 0; i < n; i++ {
		var ss float64
		for _, v := range x.RawRow(i) {
			ss += v * v
		}
		norms[i] = math.Sqrt(ss)
	}
	type cand struct {
		j   int
		sim float64
	}
	for i := 0; i < n; i++ {
		cands := make([]cand, 0, n-1)
		ri := x.RawRow(i)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			var dot float64
			rj := x.RawRow(j)
			for t := range ri {
				dot += ri[t] * rj[t]
			}
			var sim float64
			if norms[i] > 0 && norms[j] > 0 {
				sim = dot / (norms[i] * norms[j])
			}
			cands = append(cands, cand{j, sim})
		}
		// Partial selection of top-k.
		for t := 0; t < k && t < len(cands); t++ {
			best := t
			for u := t + 1; u < len(cands); u++ {
				if cands[u].sim > cands[best].sim {
					best = u
				}
			}
			cands[t], cands[best] = cands[best], cands[t]
			adj.Set(i, cands[t].j, 1)
		}
		adj.Set(i, i, 1)
		// Row-normalize.
		row := adj.RawRow(i)
		var s float64
		for _, v := range row {
			s += v
		}
		for t := range row {
			row[t] /= s
		}
	}
	return adj
}
