// Package baselines implements the eight comparison methods of the paper's
// evaluation (§4.1.3): the numeric-only encoders PLE, PAF, Squashing_GMM,
// Squashing_SOM and the KS statistic (Table 2), and the single-column
// re-implementations Sherlock_SC, Sato_SC and Pythagoras_SC that combine
// statistical features with header embeddings through learned networks
// (Table 3). Every method satisfies the Method interface: it maps a dataset
// to one embedding row per column.
package baselines

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"github.com/gem-embeddings/gem/internal/gmm"
	"github.com/gem-embeddings/gem/internal/ks"
	"github.com/gem-embeddings/gem/internal/som"
	"github.com/gem-embeddings/gem/internal/stats"
	"github.com/gem-embeddings/gem/internal/table"
)

// ErrInput is returned for invalid inputs.
var ErrInput = errors.New("baselines: invalid input")

// Method is a column-embedding method under evaluation.
type Method interface {
	// Name identifies the method in result tables.
	Name() string
	// Embed returns one embedding row per column of ds.
	Embed(ds *table.Dataset) ([][]float64, error)
}

// validate rejects empty datasets.
func validate(ds *table.Dataset) error {
	if ds == nil || len(ds.Columns) == 0 {
		return fmt.Errorf("%w: empty dataset", ErrInput)
	}
	return nil
}

// ---------------------------------------------------------------- PLE

// PLE is Piecewise Linear Encoding (Gorishniy et al., 2022) as the paper
// describes it: the numeric range of the stacked corpus values is divided
// into Bins equal-width intervals; a value encodes as a vector with 1 for
// fully-passed bins, a fractional entry for the bin it falls in, and 0
// beyond. A column embeds as the mean encoding of its values. The paper uses
// 50 bins. Equal-width segments are what make PLE collapse on heavy-tailed
// corpora (the weakness Table 2 reports); quantileEdges is also provided for
// the quantile-binned PLE variant used by the ablation bench.
type PLE struct {
	// Bins is the number of equal-width segments. Default 50.
	Bins int
	// Quantile switches to quantile-spaced segments (the stronger variant
	// from the original PLE paper; used only by the ablation bench).
	Quantile bool
}

// Name implements Method.
func (p *PLE) Name() string { return "PLE" }

// Embed implements Method.
func (p *PLE) Embed(ds *table.Dataset) ([][]float64, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	bins := p.Bins
	if bins <= 0 {
		bins = 50
	}
	var edges []float64
	var err error
	if p.Quantile {
		edges, err = quantileEdges(ds.Stack(), bins)
	} else {
		edges, err = uniformEdges(ds.Stack(), bins)
	}
	if err != nil {
		return nil, fmt.Errorf("baselines: PLE: %w", err)
	}
	out := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		emb := make([]float64, bins)
		for _, v := range col.Values {
			enc := pleEncode(v, edges)
			for j, x := range enc {
				emb[j] += x
			}
		}
		inv := 1 / float64(len(col.Values))
		for j := range emb {
			emb[j] *= inv
		}
		out[i] = emb
	}
	return out, nil
}

// uniformEdges returns bins+1 equal-width edges spanning [min(xs), max(xs)].
func uniformEdges(xs []float64, bins int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty stack", ErrInput)
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	if hi == lo {
		hi = lo + 1
	}
	edges := make([]float64, bins+1)
	for b := 0; b <= bins; b++ {
		edges[b] = lo + (hi-lo)*float64(b)/float64(bins)
	}
	return edges, nil
}

// quantileEdges returns bins+1 edges at equally spaced quantiles of xs.
// Duplicate edges (heavy ties) are nudged to remain non-decreasing.
func quantileEdges(xs []float64, bins int) ([]float64, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty stack", ErrInput)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	edges := make([]float64, bins+1)
	for b := 0; b <= bins; b++ {
		pos := float64(b) / float64(bins) * float64(len(sorted)-1)
		lo := int(pos)
		frac := pos - float64(lo)
		if lo+1 < len(sorted) {
			edges[b] = sorted[lo]*(1-frac) + sorted[lo+1]*frac
		} else {
			edges[b] = sorted[lo]
		}
	}
	return edges, nil
}

// pleEncode encodes a single value against the edges.
func pleEncode(v float64, edges []float64) []float64 {
	bins := len(edges) - 1
	out := make([]float64, bins)
	for b := 0; b < bins; b++ {
		lo, hi := edges[b], edges[b+1]
		switch {
		case v >= hi:
			out[b] = 1
		case v <= lo:
			out[b] = 0
		case hi > lo:
			out[b] = (v - lo) / (hi - lo)
		default:
			out[b] = 1 // zero-width bin below v
		}
	}
	return out
}

// ---------------------------------------------------------------- PAF

// PAF is the Periodic Activation Functions encoder (Gorishniy et al., 2022):
// a value maps to [sin(2π c_k v), cos(2π c_k v)] over Frequencies
// geometrically spaced frequencies c_k; the column embeds as the mean over
// its (standardized) values. The paper uses 50 frequencies.
type PAF struct {
	// Frequencies is the number of sinusoid frequencies. Default 50.
	Frequencies int
	// Sigma scales the geometric frequency ladder. Default 1.
	Sigma float64
}

// Name implements Method.
func (p *PAF) Name() string { return "PAF" }

// Embed implements Method.
func (p *PAF) Embed(ds *table.Dataset) ([][]float64, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	freqs := p.Frequencies
	if freqs <= 0 {
		freqs = 50
	}
	sigma := p.Sigma
	if sigma <= 0 {
		sigma = 1
	}
	// Standardize against the global stack so frequencies are comparable
	// across columns.
	stack := ds.Stack()
	mean, _ := stats.Mean(stack)
	sd, _ := stats.StdDev(stack)
	if sd == 0 {
		sd = 1
	}
	// Geometric ladder from 2^-4 to 2^(freqs/8) scaled by sigma.
	cs := make([]float64, freqs)
	for k := range cs {
		cs[k] = sigma * math.Pow(2, -4+float64(k)*0.25)
	}
	out := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		emb := make([]float64, 2*freqs)
		for _, v := range col.Values {
			z := (v - mean) / sd
			for k, c := range cs {
				emb[2*k] += math.Sin(2 * math.Pi * c * z)
				emb[2*k+1] += math.Cos(2 * math.Pi * c * z)
			}
		}
		inv := 1 / float64(len(col.Values))
		for j := range emb {
			emb[j] *= inv
		}
		out[i] = emb
	}
	return out, nil
}

// ---------------------------------------------------------------- Squashing

// squash is the log-space squashing of Jiang et al. (2020):
// sign(x) * log(1 + |x|), compressing heavy-tailed numeric ranges.
func squash(x float64) float64 {
	if x >= 0 {
		return math.Log1p(x)
	}
	return -math.Log1p(-x)
}

// SquashingGMM squashes all values into log space, fits a GMM over the
// squashed stack (prototype induction), and embeds a column as its mean
// responsibility vector over the prototypes. The paper uses the same number
// of components as Gem (50).
type SquashingGMM struct {
	// Components is the number of GMM prototypes. Default 50.
	Components int
	// Restarts for EM. Default 3.
	Restarts int
	// SubsampleStack caps the GMM fitting sample. 0 = no cap.
	SubsampleStack int
	// Seed makes the method deterministic.
	Seed int64
}

// Name implements Method.
func (s *SquashingGMM) Name() string { return "Squashing_GMM" }

// Embed implements Method.
func (s *SquashingGMM) Embed(ds *table.Dataset) ([][]float64, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	k := s.Components
	if k <= 0 {
		k = 50
	}
	restarts := s.Restarts
	if restarts <= 0 {
		restarts = 3
	}
	stack := ds.Stack()
	squashed := make([]float64, len(stack))
	for i, v := range stack {
		squashed[i] = squash(v)
	}
	if s.SubsampleStack > 0 && len(squashed) > s.SubsampleStack {
		squashed = deterministicSample(squashed, s.SubsampleStack, s.Seed)
	}
	model, err := gmm.Fit(squashed, gmm.Config{
		K:        k,
		Restarts: restarts,
		Seed:     s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("baselines: Squashing_GMM: %w", err)
	}
	out := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		sq := make([]float64, len(col.Values))
		for j, v := range col.Values {
			sq[j] = squash(v)
		}
		mr, err := model.MeanResponsibilities(sq)
		if err != nil {
			return nil, fmt.Errorf("baselines: Squashing_GMM column %d: %w", i, err)
		}
		out[i] = mr
	}
	return out, nil
}

// SquashingSOM squashes values into log space and induces prototypes with a
// 1-D self-organizing map; a column embeds as its mean soft-activation over
// the prototypes. The paper uses 50 prototypes.
type SquashingSOM struct {
	// Units is the number of SOM prototypes. Default 50.
	Units int
	// Epochs of SOM training. Default 10.
	Epochs int
	// SubsampleStack caps the SOM training sample. 0 = no cap.
	SubsampleStack int
	// Seed makes training deterministic.
	Seed int64
}

// Name implements Method.
func (s *SquashingSOM) Name() string { return "Squashing_SOM" }

// Embed implements Method.
func (s *SquashingSOM) Embed(ds *table.Dataset) ([][]float64, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	units := s.Units
	if units <= 0 {
		units = 50
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 10
	}
	stack := ds.Stack()
	squashed := make([]float64, len(stack))
	for i, v := range stack {
		squashed[i] = squash(v)
	}
	if s.SubsampleStack > 0 && len(squashed) > s.SubsampleStack {
		squashed = deterministicSample(squashed, s.SubsampleStack, s.Seed)
	}
	m, err := som.Train(squashed, som.Config{Units: units, Epochs: epochs, Seed: s.Seed})
	if err != nil {
		return nil, fmt.Errorf("baselines: Squashing_SOM: %w", err)
	}
	out := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		sq := make([]float64, len(col.Values))
		for j, v := range col.Values {
			sq[j] = squash(v)
		}
		ma, err := m.MeanActivations(sq)
		if err != nil {
			return nil, fmt.Errorf("baselines: Squashing_SOM column %d: %w", i, err)
		}
		out[i] = ma
	}
	return out, nil
}

// ---------------------------------------------------------------- KS

// KSStatistic embeds each column as its vector of Kolmogorov–Smirnov
// statistics against the seven fitted reference distributions.
type KSStatistic struct{}

// Name implements Method.
func (k *KSStatistic) Name() string { return "KS statistic" }

// Embed implements Method.
func (k *KSStatistic) Embed(ds *table.Dataset) ([][]float64, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	out := make([][]float64, len(ds.Columns))
	for i, col := range ds.Columns {
		f, err := ks.Features(col.Values)
		if err != nil {
			return nil, fmt.Errorf("baselines: KS column %d: %w", i, err)
		}
		// Invert so that "well described by family" becomes a large
		// coordinate: similar goodness-of-fit patterns → high cosine.
		for j := range f {
			f[j] = 1 - f[j]
		}
		out[i] = f
	}
	return out, nil
}

// deterministicSample takes k elements from xs deterministically in seed.
func deterministicSample(xs []float64, k int, seed int64) []float64 {
	// Simple deterministic stride sampling keyed by seed offset — cheap and
	// reproducible without materializing a permutation.
	out := make([]float64, k)
	n := len(xs)
	offset := int(uint64(seed) % uint64(n))
	stride := n / k
	if stride == 0 {
		stride = 1
	}
	for i := 0; i < k; i++ {
		out[i] = xs[(offset+i*stride)%n]
	}
	return out
}
