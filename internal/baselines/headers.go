package baselines

import (
	"fmt"

	"github.com/gem-embeddings/gem/internal/table"
	"github.com/gem-embeddings/gem/internal/textembed"
)

// HeadersOnly is the "SBERT (headers only)" row of Table 3: each column
// embeds as the (substitute) sentence embedding of its header, with no value
// information at all.
type HeadersOnly struct {
	// HeaderDim is the embedding width. Default textembed.DefaultDim.
	HeaderDim int
}

// Name implements Method.
func (h *HeadersOnly) Name() string { return "SBERT (headers only)" }

// Embed implements Method.
func (h *HeadersOnly) Embed(ds *table.Dataset) ([][]float64, error) {
	if err := validate(ds); err != nil {
		return nil, err
	}
	dim := h.HeaderDim
	if dim <= 0 {
		dim = textembed.DefaultDim
	}
	emb, err := textembed.New(dim)
	if err != nil {
		return nil, fmt.Errorf("baselines: headers-only: %w", err)
	}
	return emb.EmbedAll(ds.Headers()), nil
}
