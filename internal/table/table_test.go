package table

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name: "test",
		Columns: []Column{
			{Name: "price", Values: []float64{9.99, 20, 35.5}, Type: "cost", Table: "t1"},
			{Name: "quantity", Values: []float64{5, 30, 25}, Type: "count", Table: "t1"},
			{Name: "discount", Values: []float64{5, 10}, Type: "count", Table: "t1"},
		},
	}
}

func TestValidate(t *testing.T) {
	ds := sampleDataset()
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := &Dataset{Name: "empty"}
	if err := empty.Validate(); !errors.Is(err, ErrInput) {
		t.Errorf("empty dataset: want ErrInput, got %v", err)
	}
	bad := &Dataset{Name: "bad", Columns: []Column{{Name: "x", Values: nil}}}
	if err := bad.Validate(); !errors.Is(err, ErrInput) {
		t.Errorf("empty column: want ErrInput, got %v", err)
	}
	nan := &Dataset{Name: "nan", Columns: []Column{{Name: "x", Values: []float64{1, math.NaN()}}}}
	if err := nan.Validate(); !errors.Is(err, ErrInput) {
		t.Errorf("NaN column: want ErrInput, got %v", err)
	}
}

func TestAccessors(t *testing.T) {
	ds := sampleDataset()
	h := ds.Headers()
	if len(h) != 3 || h[0] != "price" || h[2] != "discount" {
		t.Errorf("Headers = %v", h)
	}
	l := ds.Labels()
	if len(l) != 3 || l[0] != "cost" || l[1] != "count" {
		t.Errorf("Labels = %v", l)
	}
	if ds.NumTypes() != 2 {
		t.Errorf("NumTypes = %d, want 2", ds.NumTypes())
	}
	if ds.TotalValues() != 8 {
		t.Errorf("TotalValues = %d, want 8", ds.TotalValues())
	}
}

func TestStack(t *testing.T) {
	ds := sampleDataset()
	s := ds.Stack()
	if len(s) != 8 {
		t.Fatalf("Stack length = %d, want 8", len(s))
	}
	if s[0] != 9.99 || s[3] != 5 || s[7] != 10 {
		t.Errorf("Stack order wrong: %v", s)
	}
}

func TestSubset(t *testing.T) {
	ds := sampleDataset()
	sub := ds.Subset(2)
	if len(sub.Columns) != 2 {
		t.Errorf("Subset(2) has %d columns", len(sub.Columns))
	}
	big := ds.Subset(100)
	if len(big.Columns) != 3 {
		t.Errorf("Subset beyond size should clamp, got %d", len(big.Columns))
	}
	neg := ds.Subset(-3)
	if len(neg.Columns) != 0 {
		t.Errorf("Subset(-3) should clamp to an empty dataset, got %d columns", len(neg.Columns))
	}
	if neg.Name != ds.Name {
		t.Errorf("Subset(-3) lost the name: %q", neg.Name)
	}
	zero := ds.Subset(0)
	if len(zero.Columns) != 0 {
		t.Errorf("Subset(0) has %d columns", len(zero.Columns))
	}
}

func TestReadCSVBasic(t *testing.T) {
	csvText := "price,name,quantity\n9.99,apple,5\n20,banana,30\n35.5,cherry,25\n"
	ds, err := ReadCSV(strings.NewReader(csvText), "fruits")
	if err != nil {
		t.Fatal(err)
	}
	// "name" is non-numeric and must be skipped.
	if len(ds.Columns) != 2 {
		t.Fatalf("got %d numeric columns, want 2", len(ds.Columns))
	}
	if ds.Columns[0].Name != "price" || ds.Columns[1].Name != "quantity" {
		t.Errorf("columns = %v, %v", ds.Columns[0].Name, ds.Columns[1].Name)
	}
	if ds.Columns[0].Values[2] != 35.5 {
		t.Errorf("price[2] = %v, want 35.5", ds.Columns[0].Values[2])
	}
}

func TestReadCSVWithTypeRow(t *testing.T) {
	csvText := "price,quantity\n#type:cost,#type:count\n9.99,5\n20,30\n"
	ds, err := ReadCSV(strings.NewReader(csvText), "typed")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Columns[0].Type != "cost" || ds.Columns[1].Type != "count" {
		t.Errorf("types = %q, %q", ds.Columns[0].Type, ds.Columns[1].Type)
	}
	if len(ds.Columns[0].Values) != 2 {
		t.Errorf("type row leaked into values: %v", ds.Columns[0].Values)
	}
}

func TestReadCSVTypeRowBlankFirstLabel(t *testing.T) {
	// The first column's label cell is blank: the row must still be
	// recognized as the type row (the prefix appears in a later cell), not
	// parsed as data — which would poison numeric detection for column a.
	csvText := "a,b\n,#type:count\n1,5\n2,30\n"
	ds, err := ReadCSV(strings.NewReader(csvText), "blanklabel")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Columns) != 2 {
		t.Fatalf("got %d numeric columns, want 2", len(ds.Columns))
	}
	if ds.Columns[0].Type != "" || ds.Columns[1].Type != "count" {
		t.Errorf("types = %q, %q, want \"\", \"count\"", ds.Columns[0].Type, ds.Columns[1].Type)
	}
	if len(ds.Columns[0].Values) != 2 {
		t.Errorf("type row leaked into values: %v", ds.Columns[0].Values)
	}
}

func TestReadCSVTypeRowUnprefixedCell(t *testing.T) {
	// A recognized type row with one non-prefixed cell: that cell yields an
	// empty label, never a bogus one (previously "9.99" would have become
	// column a's ground-truth type).
	csvText := "a,b\n9.99,#type:count\n1,5\n2,30\n"
	ds, err := ReadCSV(strings.NewReader(csvText), "bogus")
	if err != nil {
		t.Fatal(err)
	}
	if ds.Columns[0].Type != "" {
		t.Errorf("non-prefixed type cell produced label %q, want empty", ds.Columns[0].Type)
	}
	if ds.Columns[1].Type != "count" {
		t.Errorf("type = %q, want count", ds.Columns[1].Type)
	}
	if len(ds.Columns[0].Values) != 2 {
		t.Errorf("type row leaked into values: %v", ds.Columns[0].Values)
	}
}

func TestWriteReadRoundTripPartialLabels(t *testing.T) {
	// WriteCSV emits "#type:" for unlabeled columns of a partially labeled
	// dataset; ReadCSV must bring the empty labels back unchanged.
	ds := &Dataset{Name: "partial", Columns: []Column{
		{Name: "u", Values: []float64{1, 2, 3}},
		{Name: "v", Values: []float64{4, 5, 6}, Type: "count"},
	}}
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "partial")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Columns) != 2 {
		t.Fatalf("round trip lost columns: %d", len(back.Columns))
	}
	if back.Columns[0].Type != "" || back.Columns[1].Type != "count" {
		t.Errorf("types = %q, %q, want \"\", \"count\"", back.Columns[0].Type, back.Columns[1].Type)
	}
	if len(back.Columns[0].Values) != 3 {
		t.Errorf("values lost in round trip: %v", back.Columns[0].Values)
	}
}

func TestReadCSVBlankCellsSkipped(t *testing.T) {
	csvText := "a,b\n1,\n2,5\n,6\n"
	ds, err := ReadCSV(strings.NewReader(csvText), "blanks")
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Columns[0].Values) != 2 || len(ds.Columns[1].Values) != 2 {
		t.Errorf("blank cells should be skipped: %v / %v", ds.Columns[0].Values, ds.Columns[1].Values)
	}
}

func TestReadCSVErrors(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("only_header\n"), "x"); !errors.Is(err, ErrInput) {
		t.Errorf("header only: want ErrInput, got %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("a,b\nfoo,bar\n"), "x"); !errors.Is(err, ErrInput) {
		t.Errorf("no numeric columns: want ErrInput, got %v", err)
	}
	if _, err := ReadCSV(strings.NewReader("a\n#type:t\n"), "x"); !errors.Is(err, ErrInput) {
		t.Errorf("type row but no data: want ErrInput, got %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	ds := sampleDataset()
	var buf bytes.Buffer
	if err := ds.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Columns) != len(ds.Columns) {
		t.Fatalf("round trip lost columns: %d vs %d", len(back.Columns), len(ds.Columns))
	}
	for i, c := range ds.Columns {
		got := back.Columns[i]
		if got.Name != c.Name || got.Type != c.Type {
			t.Errorf("column %d metadata: got %q/%q, want %q/%q", i, got.Name, got.Type, c.Name, c.Type)
		}
		if len(got.Values) != len(c.Values) {
			t.Errorf("column %d length: got %d, want %d", i, len(got.Values), len(c.Values))
			continue
		}
		for j := range c.Values {
			if got.Values[j] != c.Values[j] {
				t.Errorf("column %d value %d: got %v, want %v", i, j, got.Values[j], c.Values[j])
			}
		}
	}
}

func TestWriteCSVEmptyDataset(t *testing.T) {
	var buf bytes.Buffer
	ds := &Dataset{Name: "empty"}
	if err := ds.WriteCSV(&buf); !errors.Is(err, ErrInput) {
		t.Errorf("want ErrInput, got %v", err)
	}
}
