// Package table defines the tabular data model the whole reproduction works
// over: numeric columns with headers and ground-truth semantic type labels,
// grouped into datasets, plus CSV import/export so the CLIs can run on real
// data as well as the synthetic corpora.
package table

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ErrInput is returned for malformed datasets and I/O payloads.
var ErrInput = errors.New("table: invalid input")

// Column is one numeric column extracted from some table.
type Column struct {
	// Name is the column header (attribute name), e.g. "engine_power_car".
	Name string
	// Values are the numeric cell values.
	Values []float64
	// Type is the ground-truth semantic type label used for evaluation;
	// empty when unknown.
	Type string
	// Table identifies the source table; informational only.
	Table string
}

// Dataset is a named collection of numeric columns with ground truth.
type Dataset struct {
	// Name identifies the corpus, e.g. "GDS".
	Name string
	// Columns are the numeric columns of the corpus.
	Columns []Column
}

// Validate checks that every column is non-empty and finite-valued.
func (d *Dataset) Validate() error {
	if len(d.Columns) == 0 {
		return fmt.Errorf("%w: dataset %q has no columns", ErrInput, d.Name)
	}
	for i, c := range d.Columns {
		if len(c.Values) == 0 {
			return fmt.Errorf("%w: dataset %q column %d (%q) is empty", ErrInput, d.Name, i, c.Name)
		}
		for j, v := range c.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: dataset %q column %d (%q) value %d is not finite",
					ErrInput, d.Name, i, c.Name, j)
			}
		}
	}
	return nil
}

// Headers returns the column headers in order.
func (d *Dataset) Headers() []string {
	out := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		out[i] = c.Name
	}
	return out
}

// Labels returns the ground-truth type labels in column order.
func (d *Dataset) Labels() []string {
	out := make([]string, len(d.Columns))
	for i, c := range d.Columns {
		out[i] = c.Type
	}
	return out
}

// NumTypes returns the number of distinct ground-truth labels.
func (d *Dataset) NumTypes() int {
	seen := make(map[string]struct{})
	for _, c := range d.Columns {
		seen[c.Type] = struct{}{}
	}
	return len(seen)
}

// Stack concatenates the values of all columns into one 1-D sample, the form
// the paper's GMM is fitted on ("treats all numerical values from the
// columns as a single stack", §3.2).
func (d *Dataset) Stack() []float64 {
	var n int
	for _, c := range d.Columns {
		n += len(c.Values)
	}
	out := make([]float64, 0, n)
	for _, c := range d.Columns {
		out = append(out, c.Values...)
	}
	return out
}

// TotalValues returns the number of cells across all columns.
func (d *Dataset) TotalValues() int {
	var n int
	for _, c := range d.Columns {
		n += len(c.Values)
	}
	return n
}

// Subset returns a new dataset containing only the first n columns (or all
// if n exceeds the count; none if n is negative). Columns are shared, not
// copied.
func (d *Dataset) Subset(n int) *Dataset {
	if n < 0 {
		n = 0
	}
	if n > len(d.Columns) {
		n = len(d.Columns)
	}
	return &Dataset{Name: d.Name, Columns: d.Columns[:n]}
}

// ReadCSV parses a CSV stream where the first row holds headers and every
// subsequent row holds cell values. Columns in which every non-empty cell
// parses as a float are returned as numeric columns; other columns are
// skipped. Blank cells are skipped, not imputed. An optional second header
// row prefixed with "#type:" assigns ground-truth labels, e.g.
//
//	price,quantity
//	#type:cost,#type:count
//	9.99,5
func ReadCSV(r io.Reader, name string) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: reading csv: %w", err)
	}
	if len(records) < 2 {
		return nil, fmt.Errorf("%w: csv needs a header row and at least one data row", ErrInput)
	}
	headers := records[0]
	body := records[1:]
	types := make([]string, len(headers))
	// The type row is recognized when ANY cell carries the "#type:" prefix,
	// not just the first: a labeled CSV whose first column has a blank label
	// must still have its type row consumed, or the row's cells would be
	// parsed as data and break numeric detection. Cells without the prefix
	// contribute an empty label rather than passing through as a bogus one.
	if len(body) > 0 && isTypeRow(body[0]) {
		for i, cell := range body[0] {
			if i < len(types) && strings.HasPrefix(cell, "#type:") {
				types[i] = strings.TrimPrefix(cell, "#type:")
			}
		}
		body = body[1:]
	}
	if len(body) == 0 {
		return nil, fmt.Errorf("%w: csv has no data rows", ErrInput)
	}

	ds := &Dataset{Name: name}
	for j, h := range headers {
		var values []float64
		numeric := true
		for _, row := range body {
			if j >= len(row) {
				continue
			}
			cell := strings.TrimSpace(row[j])
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				numeric = false
				break
			}
			values = append(values, v)
		}
		if numeric && len(values) > 0 {
			ds.Columns = append(ds.Columns, Column{Name: h, Values: values, Type: types[j], Table: name})
		}
	}
	if len(ds.Columns) == 0 {
		return nil, fmt.Errorf("%w: csv contains no numeric columns", ErrInput)
	}
	return ds, nil
}

// isTypeRow reports whether row is a ground-truth label row: at least one
// cell carries the "#type:" prefix.
func isTypeRow(row []string) bool {
	for _, cell := range row {
		if strings.HasPrefix(cell, "#type:") {
			return true
		}
	}
	return false
}

// WriteCSV writes the dataset in the format ReadCSV parses: header row,
// "#type:" row when any column carries a label, then data rows padded with
// blanks where columns have unequal lengths.
func (d *Dataset) WriteCSV(w io.Writer) error {
	if len(d.Columns) == 0 {
		return fmt.Errorf("%w: dataset %q has no columns", ErrInput, d.Name)
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(d.Headers()); err != nil {
		return fmt.Errorf("table: writing header: %w", err)
	}
	hasTypes := false
	for _, c := range d.Columns {
		if c.Type != "" {
			hasTypes = true
			break
		}
	}
	if hasTypes {
		row := make([]string, len(d.Columns))
		for i, c := range d.Columns {
			row[i] = "#type:" + c.Type
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("table: writing type row: %w", err)
		}
	}
	maxLen := 0
	for _, c := range d.Columns {
		if len(c.Values) > maxLen {
			maxLen = len(c.Values)
		}
	}
	row := make([]string, len(d.Columns))
	for i := 0; i < maxLen; i++ {
		for j, c := range d.Columns {
			if i < len(c.Values) {
				row[j] = strconv.FormatFloat(c.Values[i], 'g', -1, 64)
			} else {
				row[j] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("table: writing row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("table: flushing csv: %w", err)
	}
	return nil
}
