package gmm

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// modelJSON is the stable on-disk representation of a fitted model.
type modelJSON struct {
	Weights       []float64 `json:"weights"`
	Means         []float64 `json:"means"`
	Variances     []float64 `json:"variances"`
	LogLikelihood float64   `json:"log_likelihood"`
	Iterations    int       `json:"iterations"`
	Converged     bool      `json:"converged"`
	N             int       `json:"n"`
}

// Save writes the model as JSON. A saved model can be reloaded with Load and
// used to embed new columns without refitting — the paper's deployment mode
// where one corpus-level mixture serves many incoming tables.
func (m *Model) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(modelJSON{
		Weights:       m.Weights,
		Means:         m.Means,
		Variances:     m.Variances,
		LogLikelihood: m.LogLikelihood,
		Iterations:    m.Iterations,
		Converged:     m.Converged,
		N:             m.N,
	}); err != nil {
		return fmt.Errorf("gmm: saving model: %w", err)
	}
	return nil
}

// Load reads a model saved by Save and validates it.
func Load(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("gmm: loading model: %w", err)
	}
	m := &Model{
		Weights:       mj.Weights,
		Means:         mj.Means,
		Variances:     mj.Variances,
		LogLikelihood: mj.LogLikelihood,
		Iterations:    mj.Iterations,
		Converged:     mj.Converged,
		N:             mj.N,
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Validate checks structural invariants: equal-length parameter slices, at
// least one component, weights forming a probability vector, positive finite
// variances.
func (m *Model) Validate() error {
	k := len(m.Weights)
	if k == 0 {
		return fmt.Errorf("%w: no components", ErrInput)
	}
	if len(m.Means) != k || len(m.Variances) != k {
		return fmt.Errorf("%w: %d weights, %d means, %d variances",
			ErrInput, k, len(m.Means), len(m.Variances))
	}
	var sum float64
	for j := 0; j < k; j++ {
		w := m.Weights[j]
		if math.IsNaN(w) || w < 0 || w > 1 {
			return fmt.Errorf("%w: weight[%d] = %v", ErrInput, j, w)
		}
		sum += w
		if math.IsNaN(m.Means[j]) || math.IsInf(m.Means[j], 0) {
			return fmt.Errorf("%w: mean[%d] = %v", ErrInput, j, m.Means[j])
		}
		if v := m.Variances[j]; math.IsNaN(v) || v <= 0 || math.IsInf(v, 0) {
			return fmt.Errorf("%w: variance[%d] = %v", ErrInput, j, v)
		}
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("%w: weights sum to %v", ErrInput, sum)
	}
	return nil
}
