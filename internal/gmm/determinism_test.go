package gmm

import (
	"math"
	"reflect"
	"runtime"
	"strings"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

// poolWidths is the worker-count grid the determinism suite pins: the
// serial reference, small widths that force chunk interleaving, a width
// wider than most work lists, and whatever this host actually has.
func poolWidths() []int {
	return []int{1, 2, 8, runtime.GOMAXPROCS(0)}
}

// fitWith fits the same sample on a pool of the given width.
func fitWith(t *testing.T, xs []float64, cfg Config, workers int) *Model {
	t.Helper()
	cfg.Pool = pool.New(workers)
	m, err := Fit(xs, cfg)
	if err != nil {
		t.Fatalf("workers=%d: %v", workers, err)
	}
	return m
}

// requireIdenticalModels fails unless a and b match bit for bit in every
// field — parameters, likelihood, iteration count and convergence flag.
func requireIdenticalModels(t *testing.T, label string, a, b *Model) {
	t.Helper()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: models differ\n  a: %+v\n  b: %+v", label, a, b)
	}
}

// TestFitBitIdenticalAcrossWorkerCounts is the tentpole's contract: the
// selected model — weights, means, variances, log-likelihood, iteration
// count — is the same bit pattern no matter how wide the pool is, for
// every init method and for samples both smaller and larger than the
// E-step chunk size.
func TestFitBitIdenticalAcrossWorkerCounts(t *testing.T) {
	samples := map[string][]float64{
		"sub-chunk":   mixtureSample(500, 31),  // single E-step chunk
		"multi-chunk": mixtureSample(4000, 32), // several chunks per iteration
	}
	inits := map[string]InitMethod{
		"quantile": InitQuantile,
		"kmeans":   InitKMeans,
		"random":   InitRandom,
	}
	for sname, xs := range samples {
		for iname, init := range inits {
			// MaxIter keeps the grid affordable under -race; determinism
			// over a truncated run pins the same reduction code paths.
			cfg := Config{K: 8, Restarts: 4, Seed: 7, Init: init, MaxIter: 40}
			// nil pool is the reference: the pure caller-goroutine path.
			refCfg := cfg
			ref, err := Fit(xs, refCfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", sname, iname, err)
			}
			for _, w := range poolWidths() {
				got := fitWith(t, xs, cfg, w)
				requireIdenticalModels(t, sname+"/"+iname, ref, got)
			}
		}
	}
}

// TestFitBitIdenticalRepeatedOnSharedPool asserts repeated fits on one
// busy, shared pool stay identical run over run — the schedule changes,
// the bits must not.
func TestFitBitIdenticalRepeatedOnSharedPool(t *testing.T) {
	xs := mixtureSample(4000, 34)
	p := pool.New(8)
	cfg := Config{K: 6, Restarts: 4, Seed: 11, Pool: p, MaxIter: 40}
	first, err := Fit(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for run := 0; run < 5; run++ {
		again, err := Fit(xs, cfg)
		if err != nil {
			t.Fatal(err)
		}
		requireIdenticalModels(t, "repeated run", first, again)
	}
}

// TestSelectKBitIdenticalAcrossWorkerCounts pins model selection: the
// winning K, the winning model, and every BIC value match the serial
// reference for all pool widths.
func TestSelectKBitIdenticalAcrossWorkerCounts(t *testing.T) {
	xs := mixtureSample(3000, 35)
	ks := []int{1, 2, 3, 5}
	base := Config{Seed: 13, Restarts: 3}
	refModel, refBICs, err := SelectK(xs, ks, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range poolWidths() {
		cfg := base
		cfg.Pool = pool.New(w)
		m, bics, err := SelectK(xs, ks, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		requireIdenticalModels(t, "SelectK model", refModel, m)
		if !reflect.DeepEqual(refBICs, bics) {
			t.Fatalf("workers=%d: BIC map differs: %v vs %v", w, refBICs, bics)
		}
	}
}

// TestSelectKErrorDeterministicUnderParallelism asserts the reported
// error is the lowest-candidate one regardless of scheduling: with K=0
// invalid at two positions, the first position's error must surface.
func TestSelectKErrorDeterministicUnderParallelism(t *testing.T) {
	xs := mixtureSample(200, 36)
	cases := []struct {
		ks   []int
		want string
	}{
		{[]int{2, 0, 3, 0}, "SelectK at K=0"}, // failure behind a success
		{[]int{-1, 2, 0}, "SelectK at K=-1"},  // failure first, another behind it
		{[]int{3, 2, -2}, "SelectK at K=-2"},  // failure last
	}
	for _, tc := range cases {
		for _, w := range poolWidths() {
			// count=3 gives the schedule a few chances to misbehave.
			for run := 0; run < 3; run++ {
				_, _, err := SelectK(xs, tc.ks, Config{Seed: 1, Restarts: 1, Pool: pool.New(w)})
				if err == nil {
					t.Fatalf("ks=%v workers=%d: want error", tc.ks, w)
				}
				if got := err.Error(); !strings.Contains(got, tc.want) {
					t.Fatalf("ks=%v workers=%d: error %q does not name the first failing candidate (%s)",
						tc.ks, w, got, tc.want)
				}
			}
		}
	}
}

// TestMeanResponsibilitiesUnaffectedByPool guards the signature path:
// inference depends only on the fitted model, and identical models give
// identical responsibilities (sanity link between Fit determinism and the
// embedding fingerprint).
func TestMeanResponsibilitiesUnaffectedByPool(t *testing.T) {
	xs := mixtureSample(2000, 37)
	col := mixtureSample(300, 38)
	var ref []float64
	for _, w := range poolWidths() {
		m := fitWith(t, xs, Config{K: 4, Restarts: 3, Seed: 17}, w)
		mr, err := m.MeanResponsibilities(col)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = mr
			continue
		}
		for j := range ref {
			if math.Float64bits(ref[j]) != math.Float64bits(mr[j]) {
				t.Fatalf("workers=%d: responsibility %d differs: %v vs %v", w, j, ref[j], mr[j])
			}
		}
	}
}
