package gmm

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	xs := mixtureSample(800, 31)
	m, err := Fit(xs, Config{K: 3, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.K(); j++ {
		if back.Weights[j] != m.Weights[j] || back.Means[j] != m.Means[j] ||
			back.Variances[j] != m.Variances[j] {
			t.Fatalf("component %d not preserved", j)
		}
	}
	if back.LogLikelihood != m.LogLikelihood || back.N != m.N ||
		back.Converged != m.Converged || back.Iterations != m.Iterations {
		t.Error("metadata not preserved")
	}
	// The reloaded model must produce identical responsibilities.
	for _, x := range []float64{-5, 0, 5} {
		a := m.Responsibilities(x)
		b := back.Responsibilities(x)
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("responsibilities differ at x=%v", x)
			}
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		`not json`,
		`{}`,
		`{"weights":[0.5,0.5],"means":[0],"variances":[1,1]}`,
		`{"weights":[0.5,0.6],"means":[0,1],"variances":[1,1]}`,
		`{"weights":[0.5,0.5],"means":[0,1],"variances":[1,-1]}`,
		`{"weights":[0.5,0.5],"means":[0,1],"variances":[1,0]}`,
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail to load", i)
		}
	}
}

func TestValidateGoodModel(t *testing.T) {
	m := &Model{
		Weights:   []float64{0.4, 0.6},
		Means:     []float64{0, 5},
		Variances: []float64{1, 2},
	}
	if err := m.Validate(); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
	bad := &Model{}
	if err := bad.Validate(); !errors.Is(err, ErrInput) {
		t.Errorf("empty model: want ErrInput, got %v", err)
	}
}
