package gmm

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"github.com/gem-embeddings/gem/internal/mathx"
	"github.com/gem-embeddings/gem/internal/pool"
)

// randomSample draws a random EM input: a mixture with a random number of
// modes, random spreads, and occasional heavy right tails — the column
// shapes Gem actually sees.
func randomSample(rng *rand.Rand) []float64 {
	n := 200 + rng.Intn(3000)
	modes := 1 + rng.Intn(4)
	centers := make([]float64, modes)
	scales := make([]float64, modes)
	for j := range centers {
		centers[j] = rng.NormFloat64() * 20
		scales[j] = 0.1 + rng.Float64()*3
	}
	heavy := rng.Float64() < 0.3
	xs := make([]float64, n)
	for i := range xs {
		j := rng.Intn(modes)
		xs[i] = centers[j] + scales[j]*rng.NormFloat64()
		if heavy && rng.Float64() < 0.05 {
			xs[i] = math.Exp(1 + rng.Float64()*6) // lognormal-ish outlier
		}
	}
	return xs
}

// TestPropertyFitInvariants fits random inputs and asserts the model
// invariants every downstream consumer relies on: weights form a
// probability vector, variances respect the collapse floor, components
// are sorted by mean, and all parameters are finite.
func TestPropertyFitInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	p := pool.New(runtime.GOMAXPROCS(0))
	for trial := 0; trial < 25; trial++ {
		xs := randomSample(rng)
		k := 1 + rng.Intn(10)
		m, err := Fit(xs, Config{K: k, Restarts: 2, Seed: int64(trial), Pool: p})
		if err != nil {
			t.Fatalf("trial %d (n=%d, k=%d): %v", trial, len(xs), k, err)
		}
		floor := math.Max(sampleVariance(xs)*varianceFloorFrac, minVariance)
		var sum float64
		for j := 0; j < m.K(); j++ {
			w, mu, v := m.Weights[j], m.Means[j], m.Variances[j]
			if math.IsNaN(w) || math.IsNaN(mu) || math.IsNaN(v) ||
				math.IsInf(w, 0) || math.IsInf(mu, 0) || math.IsInf(v, 0) {
				t.Fatalf("trial %d: non-finite parameter in component %d: w=%v mu=%v v=%v", trial, j, w, mu, v)
			}
			if w < 0 || w > 1 {
				t.Fatalf("trial %d: weight %d out of [0,1]: %v", trial, j, w)
			}
			// The floor is applied before the final weight renormalization,
			// so allow for one ulp of slack.
			if v < floor*(1-1e-12) {
				t.Fatalf("trial %d: variance %d = %v below floor %v", trial, j, v, floor)
			}
			if j > 0 && m.Means[j] < m.Means[j-1] {
				t.Fatalf("trial %d: means not sorted: %v", trial, m.Means)
			}
			sum += w
		}
		if !mathx.AlmostEqual(sum, 1, 1e-9) {
			t.Fatalf("trial %d: weights sum to %v", trial, sum)
		}
	}
}

// TestPropertyLogLikelihoodMonotone asserts EM's defining property on
// random inputs: the log-likelihood observed at each E-step never
// decreases across iterations of a restart. The variance floor and
// dead-component reseeding can break exact monotonicity in pathological
// fits, so the check allows a vanishing relative tolerance — real
// regressions (a wrong reduction, a stale parameter read) show up as
// macroscopic drops.
func TestPropertyLogLikelihoodMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	p := pool.New(runtime.GOMAXPROCS(0))
	for trial := 0; trial < 15; trial++ {
		xs := randomSample(rng)
		k := 1 + rng.Intn(6)
		var lls []float64
		cfg := Config{
			K:        k,
			Restarts: 1, // one restart so the trace is a single sequence
			Seed:     int64(trial),
			Pool:     p,
			iterHook: func(iter int, ll float64) { lls = append(lls, ll) },
		}
		if _, err := Fit(xs, cfg); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(lls) == 0 {
			t.Fatalf("trial %d: iterHook never called", trial)
		}
		for i := 1; i < len(lls); i++ {
			tol := 1e-9 * (1 + math.Abs(lls[i-1]))
			if lls[i] < lls[i-1]-tol {
				t.Fatalf("trial %d: logL decreased at iter %d: %v -> %v", trial, i, lls[i-1], lls[i])
			}
		}
	}
}

// TestPropertyIterHookMatchesFinalLikelihood ties the per-iteration trace
// to the reported model: the last observed log-likelihood is the one the
// winning single-restart model stores.
func TestPropertyIterHookMatchesFinalLikelihood(t *testing.T) {
	xs := mixtureSample(1500, 55)
	var lls []float64
	m, err := Fit(xs, Config{
		K:        3,
		Restarts: 1,
		Seed:     5,
		iterHook: func(iter int, ll float64) { lls = append(lls, ll) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := lls[len(lls)-1]; got != m.LogLikelihood {
		t.Fatalf("last traced logL %v != model logL %v", got, m.LogLikelihood)
	}
	if m.Iterations != len(lls)-1 && m.Iterations != len(lls) {
		// Converged runs break after the E-step: iterations = len(lls)-1.
		// MaxIter runs exhaust the loop: iterations = len(lls).
		t.Fatalf("Iterations = %d inconsistent with %d traced E-steps", m.Iterations, len(lls))
	}
}

// TestPropertyResponsibilityRowsSumToOne checks, on random inputs, the
// E-step's row constraint through the public inference API.
func TestPropertyResponsibilityRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 10; trial++ {
		xs := randomSample(rng)
		m, err := Fit(xs, Config{K: 1 + rng.Intn(8), Restarts: 1, Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 20; probe++ {
			x := xs[rng.Intn(len(xs))]
			var s float64
			for _, v := range m.Responsibilities(x) {
				s += v
			}
			if !mathx.AlmostEqual(s, 1, 1e-9) {
				t.Fatalf("trial %d: responsibilities at %v sum to %v", trial, x, s)
			}
		}
	}
}
