package gmm

import (
	"math"
	"testing"
)

// TestSampleVarianceEdgeCases pins the explicit n <= 1 contract: no NaN
// from the empty sample, zero spread for a singleton.
func TestSampleVarianceEdgeCases(t *testing.T) {
	if got := sampleVariance(nil); got != 0 {
		t.Errorf("sampleVariance(nil) = %v, want 0", got)
	}
	if got := sampleVariance([]float64{}); got != 0 {
		t.Errorf("sampleVariance([]) = %v, want 0", got)
	}
	if got := sampleVariance([]float64{42}); got != 0 {
		t.Errorf("sampleVariance([42]) = %v, want 0", got)
	}
	if got := sampleVariance([]float64{3, 3, 3, 3}); got != 0 {
		t.Errorf("sampleVariance(all-equal) = %v, want 0", got)
	}
	if got := sampleVariance([]float64{-1, 1}); got != 1 {
		t.Errorf("sampleVariance([-1,1]) = %v, want 1", got)
	}
}

// TestNearestGapEdgeCases pins the explicit no-positive-gap contract:
// empty input, singleton input, and all-equal input return 0, never ±Inf.
func TestNearestGapEdgeCases(t *testing.T) {
	if got := nearestGap(5, nil); got != 0 {
		t.Errorf("nearestGap(5, nil) = %v, want 0", got)
	}
	if got := nearestGap(5, []float64{5}); got != 0 {
		t.Errorf("nearestGap over singleton = %v, want 0", got)
	}
	if got := nearestGap(7, []float64{7, 7, 7}); got != 0 {
		t.Errorf("nearestGap over all-equal = %v, want 0", got)
	}
	if got := nearestGap(5, []float64{1, 5, 9}); got != 4 {
		t.Errorf("nearestGap(5, [1 5 9]) = %v, want 4", got)
	}
	// mu absent from the slice still measures to the closest neighbor.
	if got := nearestGap(6, []float64{1, 5, 9}); got != 1 {
		t.Errorf("nearestGap(6, [1 5 9]) = %v, want 1", got)
	}
	if math.IsInf(nearestGap(0, []float64{0, 0}), 0) {
		t.Error("nearestGap leaked an infinity")
	}
}

// TestFitSingleValue fits the degenerate one-point sample: K clamps to 1,
// the mean is the point, and the variance lands on the floor instead of
// collapsing to zero or NaN.
func TestFitSingleValue(t *testing.T) {
	m, err := Fit([]float64{3.5}, Config{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 1 {
		t.Fatalf("K = %d, want 1", m.K())
	}
	if m.Means[0] != 3.5 {
		t.Errorf("mean = %v, want 3.5", m.Means[0])
	}
	if v := m.Variances[0]; !(v > 0) || math.IsNaN(v) {
		t.Errorf("variance = %v, want positive and finite", v)
	}
	if w := m.Weights[0]; w != 1 {
		t.Errorf("weight = %v, want 1", w)
	}
}

// TestFitTwoEqualValues covers n=2 all-equal: sample variance is 0, so
// everything rides on the variance floor.
func TestFitTwoEqualValues(t *testing.T) {
	m, err := Fit([]float64{-2, -2}, Config{K: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < m.K(); j++ {
		if m.Means[j] != -2 {
			t.Errorf("mean[%d] = %v, want -2", j, m.Means[j])
		}
		if v := m.Variances[j]; !(v > 0) || math.IsNaN(v) {
			t.Errorf("variance[%d] = %v, want positive and finite", j, v)
		}
	}
}

// TestFitAllEqualColumnEveryInit runs the all-equal column through each
// init method: quantile seeding exercises the nearestGap fallback, the
// others the zero total-variance guard.
func TestFitAllEqualColumnEveryInit(t *testing.T) {
	xs := []float64{9, 9, 9, 9, 9, 9, 9, 9}
	for name, init := range map[string]InitMethod{
		"quantile": InitQuantile,
		"kmeans":   InitKMeans,
		"random":   InitRandom,
	} {
		m, err := Fit(xs, Config{K: 3, Seed: 3, Init: init})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.IsNaN(m.LogLikelihood) || math.IsInf(m.LogLikelihood, 0) {
			t.Errorf("%s: logL = %v, want finite", name, m.LogLikelihood)
		}
		for j := 0; j < m.K(); j++ {
			if math.Abs(m.Means[j]-9) > 1e-9 {
				t.Errorf("%s: mean[%d] = %v, want 9", name, j, m.Means[j])
			}
			if v := m.Variances[j]; !(v > 0) {
				t.Errorf("%s: variance[%d] = %v, want > 0", name, j, v)
			}
		}
	}
}

// TestSelectKOnTinySample asserts model selection degrades gracefully
// when candidates exceed the sample size (K clamps inside Fit).
func TestSelectKOnTinySample(t *testing.T) {
	xs := []float64{1, 2, 3}
	best, bics, err := SelectK(xs, []int{1, 2, 10}, Config{Seed: 4, Restarts: 2})
	if err != nil {
		t.Fatal(err)
	}
	if best == nil || best.K() > 3 {
		t.Fatalf("best K = %v, want <= 3", best.K())
	}
	if len(bics) != 3 {
		t.Fatalf("got %d BIC entries, want 3", len(bics))
	}
	for k, b := range bics {
		if math.IsNaN(b) {
			t.Errorf("BIC[%d] = NaN", k)
		}
	}
}
