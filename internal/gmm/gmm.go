// Package gmm implements the univariate Gaussian Mixture Model and the
// Expectation–Maximization algorithm at the core of Gem (paper §3.1,
// Equations 1–6). All numeric column values are stacked into a single 1-D
// sample; EM fits m Gaussian components to it; responsibilities of each
// component for each value then drive the signature mechanism.
//
// The implementation follows the paper's setup: convergence when the change
// in log-likelihood falls below a threshold (default 1e-3), multiple EM
// restarts (default 10) keeping the best likelihood, and model selection via
// the Bayesian Information Criterion. E-step arithmetic is carried out in
// log-space with log-sum-exp so that far-flung values cannot underflow.
package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"github.com/gem-embeddings/gem/internal/kmeans"
	"github.com/gem-embeddings/gem/internal/mathx"
)

// ErrInput is returned for invalid fitting inputs.
var ErrInput = errors.New("gmm: invalid input")

// ErrNoConverge is returned when no EM restart produced a usable model.
var ErrNoConverge = errors.New("gmm: EM failed to produce a model")

const (
	log2Pi = 1.8378770664093453 // log(2*pi)
	// varianceFloorFrac keeps component variances from collapsing onto a
	// single point, relative to the total sample variance.
	varianceFloorFrac = 1e-8
	minVariance       = 1e-12
)

// InitMethod selects how EM is initialized.
type InitMethod int

const (
	// InitQuantile (the default) seeds component means at equally spaced
	// sample quantiles, which allocates components proportionally to data
	// mass. On heavy-tailed 1-D data this avoids the k-means failure mode
	// where squared distance pulls nearly all centers into the extreme
	// tail. The init choice is benchmarked by BenchmarkAblationEMInit.
	InitQuantile InitMethod = iota
	// InitKMeans seeds component means with k-means++ cluster centers.
	InitKMeans
	// InitRandom seeds component means with random sample points.
	InitRandom
)

// Config controls EM fitting.
type Config struct {
	// K is the number of Gaussian components (required, >= 1). The paper
	// uses 50 by default and shows 5–100 behave the same (Figure 4).
	K int
	// Tol is the absolute log-likelihood improvement below which EM stops.
	// Default 1e-3 (the paper's threshold).
	Tol float64
	// MaxIter caps EM iterations per restart. Default 200.
	MaxIter int
	// Restarts runs EM this many times and keeps the best log-likelihood.
	// Default 10 (the paper's setting).
	Restarts int
	// Seed makes the run deterministic.
	Seed int64
	// Init selects the initialization method. Default InitKMeans.
	Init InitMethod
}

func (c *Config) fillDefaults() {
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Restarts <= 0 {
		c.Restarts = 10
	}
}

// Model is a fitted univariate Gaussian mixture. Components are sorted by
// ascending mean so that models fitted on similar data have comparable
// component order.
type Model struct {
	// Weights are the mixing coefficients, summing to 1.
	Weights []float64
	// Means are the component means.
	Means []float64
	// Variances are the component variances.
	Variances []float64
	// LogLikelihood is the total log-likelihood of the training sample.
	LogLikelihood float64
	// Iterations is the number of EM iterations of the winning restart.
	Iterations int
	// Converged reports whether the winning restart met the tolerance
	// before MaxIter.
	Converged bool
	// N is the number of training values.
	N int
}

// K returns the number of components.
func (m *Model) K() int { return len(m.Weights) }

// Fit runs EM on xs with cfg and returns the best model across restarts.
func Fit(xs []float64, cfg Config) (*Model, error) {
	if len(xs) == 0 {
		return nil, fmt.Errorf("%w: empty sample", ErrInput)
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("%w: K = %d", ErrInput, cfg.K)
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("%w: non-finite value at index %d", ErrInput, i)
		}
	}
	k := cfg.K
	if k > len(xs) {
		k = len(xs) // cannot support more components than points
	}
	cfg.fillDefaults()

	totalVar := sampleVariance(xs)
	varFloor := math.Max(totalVar*varianceFloorFrac, minVariance)

	var best *Model
	for r := 0; r < cfg.Restarts; r++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*104729))
		init := initialize(xs, k, cfg, rng, totalVar)
		m := emLoop(xs, init, cfg, varFloor)
		if m == nil {
			continue
		}
		if best == nil || m.LogLikelihood > best.LogLikelihood {
			best = m
		}
	}
	if best == nil {
		return nil, ErrNoConverge
	}
	best.sortByMean()
	return best, nil
}

// nearestGap returns the distance from mu to its closest other value in the
// sorted slice (0 if duplicated).
func nearestGap(mu float64, sorted []float64) float64 {
	idx := sort.SearchFloat64s(sorted, mu)
	best := math.Inf(1)
	for _, t := range []int{idx - 1, idx, idx + 1} {
		if t < 0 || t >= len(sorted) {
			continue
		}
		d := math.Abs(sorted[t] - mu)
		if d > 0 && d < best {
			best = d
		}
	}
	return best
}

// sampleVariance returns the population variance of xs.
func sampleVariance(xs []float64) float64 {
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(xs))
}

// initialize builds starting parameters for one EM restart.
func initialize(xs []float64, k int, cfg Config, rng *rand.Rand, totalVar float64) *Model {
	means := make([]float64, k)
	switch cfg.Init {
	case InitRandom:
		for j := range means {
			means[j] = xs[rng.Intn(len(xs))]
		}
	case InitKMeans:
		pts := make([][]float64, len(xs))
		for i, x := range xs {
			pts[i] = []float64{x}
		}
		res, err := kmeans.Run(pts, kmeans.Config{K: k, MaxIter: 25, Seed: rng.Int63()})
		if err != nil {
			for j := range means {
				means[j] = xs[rng.Intn(len(xs))]
			}
			break
		}
		for j := range means {
			means[j] = res.Centroids[j][0]
		}
	default: // InitQuantile
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Jittered mid-quantiles: each restart perturbs the quantile grid
		// so restarts explore different bulk allocations.
		for j := range means {
			q := (float64(j) + 0.5 + 0.4*(rng.Float64()-0.5)) / float64(k)
			if q < 0 {
				q = 0
			}
			if q > 1 {
				q = 1
			}
			means[j] = sorted[int(q*float64(len(sorted)-1))]
		}
	}
	weights := make([]float64, k)
	variances := make([]float64, k)
	v := totalVar
	if v <= 0 {
		v = 1
	}
	for j := range weights {
		weights[j] = 1 / float64(k)
		variances[j] = v
	}
	if cfg.Init == InitQuantile && k > 1 {
		// Local bandwidths: the squared gap to the nearest neighbouring
		// mean. A global variance would make every component cover the
		// whole heavy-tailed range and stall EM.
		sortedMeans := append([]float64(nil), means...)
		sort.Float64s(sortedMeans)
		for j := range variances {
			gap := math.Inf(1)
			for t := 1; t < len(sortedMeans); t++ {
				g := sortedMeans[t] - sortedMeans[t-1]
				if g > 0 && g < gap {
					gap = g
				}
			}
			local := nearestGap(means[j], sortedMeans)
			if local <= 0 || math.IsInf(local, 1) {
				local = math.Sqrt(v)
			}
			variances[j] = math.Max(local*local, v*1e-8)
			_ = gap
		}
	}
	return &Model{Weights: weights, Means: means, Variances: variances}
}

// emLoop runs EM until convergence (|Δ logL| < tol) or MaxIter.
func emLoop(xs []float64, m *Model, cfg Config, varFloor float64) *Model {
	n := len(xs)
	k := len(m.Weights)
	resp := make([][]float64, n)
	for i := range resp {
		resp[i] = make([]float64, k)
	}
	logw := make([]float64, k)
	prevLL := math.Inf(-1)
	converged := false
	iter := 0

	for ; iter < cfg.MaxIter; iter++ {
		// E-step in log space.
		for j := 0; j < k; j++ {
			logw[j] = math.Log(m.Weights[j])
		}
		var ll float64
		buf := make([]float64, k)
		for i, x := range xs {
			for j := 0; j < k; j++ {
				buf[j] = logw[j] + logNormPDF(x, m.Means[j], m.Variances[j])
			}
			lse := mathx.LogSumExp(buf)
			ll += lse
			for j := 0; j < k; j++ {
				resp[i][j] = math.Exp(buf[j] - lse)
			}
		}
		if math.IsNaN(ll) {
			return nil
		}
		// Convergence check on the change in log-likelihood (paper: 1e-3).
		if math.Abs(ll-prevLL) < cfg.Tol {
			prevLL = ll
			converged = true
			break
		}
		prevLL = ll

		// M-step (Equations 3–5).
		for j := 0; j < k; j++ {
			var nk, mu float64
			for i := 0; i < n; i++ {
				nk += resp[i][j]
				mu += resp[i][j] * xs[i]
			}
			if nk < 1e-10 {
				// Dead component: re-center on a random-ish point and reset.
				m.Means[j] = xs[(j*2654435761)%n]
				m.Variances[j] = math.Max(varFloor, 1)
				m.Weights[j] = 1e-6
				continue
			}
			mu /= nk
			var v float64
			for i := 0; i < n; i++ {
				d := xs[i] - mu
				v += resp[i][j] * d * d
			}
			v /= nk
			if v < varFloor {
				v = varFloor
			}
			m.Means[j] = mu
			m.Variances[j] = v
			m.Weights[j] = nk / float64(n)
		}
		normalizeWeights(m.Weights)
	}
	m.LogLikelihood = prevLL
	m.Iterations = iter
	m.Converged = converged
	m.N = n
	return m
}

func normalizeWeights(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	if s <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= s
	}
}

// sortByMean orders components ascending by mean, keeping weights and
// variances aligned.
func (m *Model) sortByMean() {
	idx := make([]int, len(m.Means))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return m.Means[idx[a]] < m.Means[idx[b]] })
	w := make([]float64, len(idx))
	mu := make([]float64, len(idx))
	v := make([]float64, len(idx))
	for i, j := range idx {
		w[i] = m.Weights[j]
		mu[i] = m.Means[j]
		v[i] = m.Variances[j]
	}
	m.Weights, m.Means, m.Variances = w, mu, v
}

// logNormPDF is the log of the normal density at x.
func logNormPDF(x, mean, variance float64) float64 {
	d := x - mean
	return -0.5 * (log2Pi + math.Log(variance) + d*d/variance)
}

// PDF returns the mixture density at x (Equation 1).
func (m *Model) PDF(x float64) float64 {
	var s float64
	for j := range m.Weights {
		s += m.Weights[j] * math.Exp(logNormPDF(x, m.Means[j], m.Variances[j]))
	}
	return s
}

// LogPDF returns the log mixture density at x, computed stably.
func (m *Model) LogPDF(x float64) float64 {
	buf := make([]float64, len(m.Weights))
	for j := range m.Weights {
		buf[j] = math.Log(m.Weights[j]) + logNormPDF(x, m.Means[j], m.Variances[j])
	}
	return mathx.LogSumExp(buf)
}

// ComponentLogPDF returns log N(x | mu_j, sigma_j^2) for component j
// (Equation 6 in log space).
func (m *Model) ComponentLogPDF(x float64, j int) float64 {
	return logNormPDF(x, m.Means[j], m.Variances[j])
}

// Responsibilities returns gamma(z_j) for a single value x (Equation 2):
// the posterior probability that x was generated by each component.
// The returned slice sums to 1.
func (m *Model) Responsibilities(x float64) []float64 {
	k := len(m.Weights)
	buf := make([]float64, k)
	for j := 0; j < k; j++ {
		buf[j] = math.Log(m.Weights[j]) + logNormPDF(x, m.Means[j], m.Variances[j])
	}
	lse := mathx.LogSumExp(buf)
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		out[j] = math.Exp(buf[j] - lse)
	}
	return out
}

// MeanResponsibilities averages the per-value responsibilities over a column
// of values: mu_{C_j} = (1/N) * sum_i gamma(z_ij). This is the distributional
// part of Gem's signature (Figure 2). The result sums to 1 for a non-empty
// column.
//
// This is the embedding hot path (columns × values × components), so the
// per-value E-step is inlined against precomputed per-component constants
// (log weight, log variance) and a single reused scratch buffer — the
// arithmetic is term-for-term identical to Responsibilities, without its two
// heap allocations and k logarithms per value.
func (m *Model) MeanResponsibilities(values []float64) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empty column", ErrInput)
	}
	k := len(m.Weights)
	logW := make([]float64, k)
	logVar := make([]float64, k)
	for j := 0; j < k; j++ {
		logW[j] = math.Log(m.Weights[j])
		logVar[j] = math.Log(m.Variances[j])
	}
	out := make([]float64, k)
	buf := make([]float64, k)
	for _, x := range values {
		for j := 0; j < k; j++ {
			d := x - m.Means[j]
			buf[j] = logW[j] + -0.5*(log2Pi+logVar[j]+d*d/m.Variances[j])
		}
		lse := mathx.LogSumExp(buf)
		for j := 0; j < k; j++ {
			out[j] += math.Exp(buf[j] - lse)
		}
	}
	inv := 1 / float64(len(values))
	for j := range out {
		out[j] *= inv
	}
	return out, nil
}

// Sample draws n values from the mixture using rng.
func (m *Model) Sample(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		j := sampleCategorical(m.Weights, rng)
		out[i] = m.Means[j] + math.Sqrt(m.Variances[j])*rng.NormFloat64()
	}
	return out
}

func sampleCategorical(w []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for j, v := range w {
		cum += v
		if u <= cum {
			return j
		}
	}
	return len(w) - 1
}

// ScoreSamples returns the total log-likelihood of xs under the model.
func (m *Model) ScoreSamples(xs []float64) float64 {
	var ll float64
	for _, x := range xs {
		ll += m.LogPDF(x)
	}
	return ll
}

// NumParams returns the number of free parameters: (K-1) weights + K means +
// K variances.
func (m *Model) NumParams() int { return 3*len(m.Weights) - 1 }

// BIC returns the Bayesian Information Criterion on the training sample
// (lower is better).
func (m *Model) BIC() float64 {
	return float64(m.NumParams())*math.Log(float64(m.N)) - 2*m.LogLikelihood
}

// AIC returns the Akaike Information Criterion on the training sample
// (lower is better).
func (m *Model) AIC() float64 {
	return 2*float64(m.NumParams()) - 2*m.LogLikelihood
}

// SelectK fits models for every K in ks and returns the one with the lowest
// BIC, along with the BIC value per K. This mirrors the paper's model
// selection discussion (§4.1.4).
func SelectK(xs []float64, ks []int, base Config) (*Model, map[int]float64, error) {
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("%w: no candidate K values", ErrInput)
	}
	bics := make(map[int]float64, len(ks))
	var best *Model
	for _, k := range ks {
		cfg := base
		cfg.K = k
		m, err := Fit(xs, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("gmm: SelectK at K=%d: %w", k, err)
		}
		bics[k] = m.BIC()
		if best == nil || m.BIC() < best.BIC() {
			best = m
		}
	}
	return best, bics, nil
}
