// Package gmm implements the univariate Gaussian Mixture Model and the
// Expectation–Maximization algorithm at the core of Gem (paper §3.1,
// Equations 1–6). All numeric column values are stacked into a single 1-D
// sample; EM fits m Gaussian components to it; responsibilities of each
// component for each value then drive the signature mechanism.
//
// The implementation follows the paper's setup: convergence when the change
// in log-likelihood falls below a threshold (default 1e-3), multiple EM
// restarts (default 10) keeping the best likelihood, and model selection via
// the Bayesian Information Criterion. E-step arithmetic is carried out in
// log-space with log-sum-exp so that far-flung values cannot underflow.
//
// Fitting parallelizes at three levels when Config.Pool is set — EM restarts,
// the per-iteration E-step (in fixed-boundary chunks), and SelectK's
// candidate models — and is engineered to be bit-identical for every pool
// width: per-restart RNGs are derived from a seed sequence, partial sums are
// reduced in index order, and winners are selected by scanning results in
// index order. The determinism test suite pins this property, and the
// gemlint analyzers detmaprange and detnondet (see internal/lint) enforce
// its preconditions statically: no unordered map iteration feeds output
// and no wall clock or unseeded randomness enters the fit. The pooled
// fan-out discipline is checked by poolgo.
//
//gem:deterministic
//gem:pooled
package gmm

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync/atomic"
	"time"

	"github.com/gem-embeddings/gem/internal/kmeans"
	"github.com/gem-embeddings/gem/internal/mathx"
	"github.com/gem-embeddings/gem/internal/pool"
)

// ErrInput is returned for invalid fitting inputs.
var ErrInput = errors.New("gmm: invalid input")

// ErrNoConverge is returned when no EM restart produced a usable model.
var ErrNoConverge = errors.New("gmm: EM failed to produce a model")

const (
	log2Pi = 1.8378770664093453 // log(2*pi)
	// varianceFloorFrac keeps component variances from collapsing onto a
	// single point, relative to the total sample variance.
	varianceFloorFrac = 1e-8
	minVariance       = 1e-12
)

// InitMethod selects how EM is initialized.
type InitMethod int

const (
	// InitQuantile (the default) seeds component means at equally spaced
	// sample quantiles, which allocates components proportionally to data
	// mass. On heavy-tailed 1-D data this avoids the k-means failure mode
	// where squared distance pulls nearly all centers into the extreme
	// tail. The init choice is benchmarked by BenchmarkAblationEMInit.
	InitQuantile InitMethod = iota
	// InitKMeans seeds component means with k-means++ cluster centers.
	InitKMeans
	// InitRandom seeds component means with random sample points.
	InitRandom
)

// Config controls EM fitting.
type Config struct {
	// K is the number of Gaussian components (required, >= 1). The paper
	// uses 50 by default and shows 5–100 behave the same (Figure 4).
	K int
	// Tol is the absolute log-likelihood improvement below which EM stops.
	// Default 1e-3 (the paper's threshold).
	Tol float64
	// MaxIter caps EM iterations per restart. Default 200.
	MaxIter int
	// Restarts runs EM this many times and keeps the best log-likelihood.
	// Default 10 (the paper's setting).
	Restarts int
	// Seed makes the run deterministic.
	Seed int64
	// Init selects the initialization method. Default InitKMeans.
	Init InitMethod
	// Pool schedules restart-, chunk- and candidate-level parallelism. A
	// nil Pool (the default) runs everything on the calling goroutine. The
	// same Pool may be shared with the caller's own fan-out (core shares
	// its column pool): nested For calls are safe and total concurrency
	// stays bounded by the pool width. Output is bit-identical for every
	// pool width, including nil.
	//
	// Memory trade-off: each concurrently running restart holds its own
	// n×K responsibility matrix, so peak memory grows by up to
	// min(pool width, Restarts) such matrices versus serial fitting.
	// For large stacks, bound n via subsampling (core.Config's
	// SubsampleStack) or use a narrower pool.
	Pool *pool.Pool
	// iterHook, when set, observes every EM iteration of every restart
	// (the iteration index and the log-likelihood after that E-step).
	// Test-only: it is how the property suite checks EM monotonicity.
	// With a parallel Pool and Restarts > 1 it is called concurrently.
	iterHook func(iter int, ll float64)
}

func (c *Config) fillDefaults() {
	if c.Tol <= 0 {
		c.Tol = 1e-3
	}
	if c.MaxIter <= 0 {
		c.MaxIter = 200
	}
	if c.Restarts <= 0 {
		c.Restarts = 10
	}
}

// Model is a fitted univariate Gaussian mixture. Components are sorted by
// ascending mean so that models fitted on similar data have comparable
// component order.
type Model struct {
	// Weights are the mixing coefficients, summing to 1.
	Weights []float64
	// Means are the component means.
	Means []float64
	// Variances are the component variances.
	Variances []float64
	// LogLikelihood is the total log-likelihood of the training sample.
	LogLikelihood float64
	// Iterations is the number of EM iterations of the winning restart.
	Iterations int
	// Converged reports whether the winning restart met the tolerance
	// before MaxIter.
	Converged bool
	// N is the number of training values.
	N int
}

// K returns the number of components.
func (m *Model) K() int { return len(m.Weights) }

// RestartStats describes one EM restart of a Fit run.
type RestartStats struct {
	// Iterations is how many EM iterations the restart ran.
	Iterations int `json:"iterations"`
	// LogLikelihood is the restart's final training log-likelihood (NaN
	// for a restart that diverged and produced no model).
	LogLikelihood float64 `json:"log_likelihood"`
	// Converged reports whether the restart met the tolerance before
	// MaxIter.
	Converged bool `json:"converged"`
}

// FitStats is the fit telemetry of one Fit run — the convergence
// behaviour an operator watches as a feedback signal (how hard did EM
// work, did restarts agree, where did the wall-clock go). It is
// observational only: nothing in it feeds back into the fitted model, and
// it is not persisted with the model.
type FitStats struct {
	// Restarts holds one entry per EM restart, in restart order.
	Restarts []RestartStats `json:"restarts"`
	// Winner is the index of the restart whose model was kept (-1 when
	// every restart diverged).
	Winner int `json:"winner"`
	// Trajectory is the winning restart's log-likelihood after every EM
	// iteration — the convergence curve.
	Trajectory []float64 `json:"trajectory,omitempty"`
	// EStepSeconds and MStepSeconds are wall-clock totals across all
	// restarts. With a parallel pool restarts overlap, so the sums can
	// exceed the elapsed fit time — they measure work, not latency.
	EStepSeconds float64 `json:"estep_seconds"`
	MStepSeconds float64 `json:"mstep_seconds"`
}

// Iterations sums the EM iterations across all restarts.
func (s *FitStats) Iterations() int {
	n := 0
	for _, r := range s.Restarts {
		n += r.Iterations
	}
	return n
}

// Fit runs EM on xs with cfg and returns the best model across restarts.
func Fit(xs []float64, cfg Config) (*Model, error) {
	m, _, err := FitWithStats(xs, cfg)
	return m, err
}

// FitWithStats is Fit returning the run's telemetry alongside the model.
// The telemetry is purely observational: the returned model is
// bit-identical to Fit's for every pool width.
func FitWithStats(xs []float64, cfg Config) (*Model, *FitStats, error) {
	if len(xs) == 0 {
		return nil, nil, fmt.Errorf("%w: empty sample", ErrInput)
	}
	if cfg.K < 1 {
		return nil, nil, fmt.Errorf("%w: K = %d", ErrInput, cfg.K)
	}
	for i, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, nil, fmt.Errorf("%w: non-finite value at index %d", ErrInput, i)
		}
	}
	k := cfg.K
	if k > len(xs) {
		k = len(xs) // cannot support more components than points
	}
	cfg.fillDefaults()

	totalVar := sampleVariance(xs)
	varFloor := math.Max(totalVar*varianceFloorFrac, minVariance)

	// Restarts are independent given their RNGs, so they fan out across
	// the pool: restart r always seeds its RNG from the same point of the
	// seed sequence, and each restart writes only its own slot. The winner
	// is then selected by scanning slots in restart order with a strict
	// comparison — exactly what the serial loop does — so the selected
	// model does not depend on scheduling.
	models := make([]*Model, cfg.Restarts)
	tels := make([]emTelemetry, cfg.Restarts)
	_ = cfg.Pool.For(cfg.Restarts, func(r int) error {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(r)*104729))
		init := initialize(xs, k, cfg, rng, totalVar)
		models[r], tels[r] = emLoop(xs, init, cfg, varFloor)
		return nil
	})
	st := &FitStats{Restarts: make([]RestartStats, cfg.Restarts), Winner: -1}
	var best *Model
	for r, m := range models {
		st.EStepSeconds += tels[r].eSeconds
		st.MStepSeconds += tels[r].mSeconds
		st.Restarts[r] = RestartStats{
			Iterations:    tels[r].iterations,
			LogLikelihood: math.NaN(),
		}
		if m == nil {
			continue
		}
		st.Restarts[r] = RestartStats{
			Iterations:    m.Iterations,
			LogLikelihood: m.LogLikelihood,
			Converged:     m.Converged,
		}
		if best == nil || m.LogLikelihood > best.LogLikelihood {
			best = m
			st.Winner = r
		}
	}
	if best == nil {
		return nil, st, ErrNoConverge
	}
	st.Trajectory = tels[st.Winner].trajectory
	best.sortByMean()
	return best, st, nil
}

// nearestGap returns the distance from mu to the closest distinct
// neighboring value in the sorted slice. It returns 0 — never ±Inf — when
// no positive gap exists: an empty slice, a single value, or a slice whose
// neighbors of mu all equal mu (the all-equal column). Callers treat 0 as
// "no usable local bandwidth" and fall back to the global scale.
func nearestGap(mu float64, sorted []float64) float64 {
	idx := sort.SearchFloat64s(sorted, mu)
	best := math.Inf(1)
	for _, t := range []int{idx - 1, idx, idx + 1} {
		if t < 0 || t >= len(sorted) {
			continue
		}
		d := math.Abs(sorted[t] - mu)
		if d > 0 && d < best {
			best = d
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// sampleVariance returns the population variance of xs. Samples with fewer
// than two values carry no spread information, so n <= 1 returns 0 rather
// than NaN (the empty sample would otherwise divide 0/0).
func sampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(xs))
}

// initialize builds starting parameters for one EM restart.
func initialize(xs []float64, k int, cfg Config, rng *rand.Rand, totalVar float64) *Model {
	means := make([]float64, k)
	switch cfg.Init {
	case InitRandom:
		for j := range means {
			means[j] = xs[rng.Intn(len(xs))]
		}
	case InitKMeans:
		pts := make([][]float64, len(xs))
		for i, x := range xs {
			pts[i] = []float64{x}
		}
		res, err := kmeans.Run(pts, kmeans.Config{K: k, MaxIter: 25, Seed: rng.Int63()})
		if err != nil {
			for j := range means {
				means[j] = xs[rng.Intn(len(xs))]
			}
			break
		}
		for j := range means {
			means[j] = res.Centroids[j][0]
		}
	default: // InitQuantile
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		// Jittered mid-quantiles: each restart perturbs the quantile grid
		// so restarts explore different bulk allocations.
		for j := range means {
			q := (float64(j) + 0.5 + 0.4*(rng.Float64()-0.5)) / float64(k)
			if q < 0 {
				q = 0
			}
			if q > 1 {
				q = 1
			}
			means[j] = sorted[int(q*float64(len(sorted)-1))]
		}
	}
	weights := make([]float64, k)
	variances := make([]float64, k)
	v := totalVar
	if v <= 0 {
		v = 1
	}
	for j := range weights {
		weights[j] = 1 / float64(k)
		variances[j] = v
	}
	if cfg.Init == InitQuantile && k > 1 {
		// Local bandwidths: the squared gap to the nearest neighbouring
		// mean. A global variance would make every component cover the
		// whole heavy-tailed range and stall EM.
		sortedMeans := append([]float64(nil), means...)
		sort.Float64s(sortedMeans)
		for j := range variances {
			local := nearestGap(means[j], sortedMeans)
			if local <= 0 {
				local = math.Sqrt(v)
			}
			variances[j] = math.Max(local*local, v*1e-8)
		}
	}
	return &Model{Weights: weights, Means: means, Variances: variances}
}

// estepChunk is the number of values per E-step chunk. Chunk boundaries
// depend only on n — never on the pool width — so the ordered reduction of
// per-chunk partial log-likelihoods performs float additions in an order
// that is invariant under scheduling. The size is large enough that a
// chunk's work dwarfs the goroutine handoff, and small enough that a 10k
// stack still splits across a typical pool.
const estepChunk = 1024

// emTelemetry is one restart's observational record: the log-likelihood
// after every iteration and where the wall-clock went. Recording it costs
// two time.Now calls and one slice append per iteration — invisible next
// to an E-step pass over the sample — and cannot affect the fitted
// parameters.
type emTelemetry struct {
	trajectory []float64
	iterations int
	eSeconds   float64
	mSeconds   float64
}

// emLoop runs EM until convergence (|Δ logL| < tol) or MaxIter.
//
// Both halves of each iteration fan out across cfg.Pool with index-slot
// writes only: the E-step is chunked over values (each chunk fills its own
// rows of the responsibility matrix and one partial-likelihood slot), and
// the M-step is parallel over components (component j reads the whole
// matrix but writes only parameter j, accumulating over values in the same
// serial order as the classic loop). The chunked reduction is the single
// code path — pool width 1 and nil pools sum in the identical order — so
// results are bit-identical for every worker count.
func emLoop(xs []float64, m *Model, cfg Config, varFloor float64) (*Model, emTelemetry) {
	n := len(xs)
	k := len(m.Weights)
	resp := make([]float64, n*k) // row-major n×k responsibilities
	c1 := make([]float64, k)
	c2 := make([]float64, k)
	nChunks := (n + estepChunk - 1) / estepChunk
	llPart := make([]float64, nChunks)
	// One scratch stripe per chunk, allocated once for the whole run:
	// chunks write disjoint stripes, so reuse across iterations is
	// race-free and keeps the hot loop allocation-free. Stripes are
	// padded to whole 64-byte cache lines so adjacent chunks running on
	// different cores never false-share a boundary line.
	stride := (k + 7) / 8 * 8
	scratch := make([]float64, nChunks*stride)
	prevLL := math.Inf(-1)
	converged := false
	iter := 0
	var tel emTelemetry

	for ; iter < cfg.MaxIter; iter++ {
		// E-step in log space. The density folds into two per-component
		// constants (see weightedLogPDFs), hoisted out of the value loop;
		// the arithmetic stays term-for-term identical to logNormPDF.
		//lint:gemallow detnondet E-step timing feeds emTelemetry only, never the model
		eStart := time.Now()
		for j := 0; j < k; j++ {
			c1[j] = math.Log(m.Weights[j]) - 0.5*(log2Pi+math.Log(m.Variances[j]))
			c2[j] = -0.5 / m.Variances[j]
		}
		_ = cfg.Pool.For(nChunks, func(c int) error {
			lo := c * estepChunk
			hi := lo + estepChunk
			if hi > n {
				hi = n
			}
			buf := scratch[c*stride : c*stride+k]
			var ll float64
			for i := lo; i < hi; i++ {
				x := xs[i]
				row := resp[i*k : i*k+k]
				weightedLogPDFs(x, m.Means, c1, c2, buf)
				lse := mathx.LogSumExp(buf)
				ll += lse
				for j := 0; j < k; j++ {
					row[j] = math.Exp(buf[j] - lse)
				}
			}
			llPart[c] = ll
			return nil
		})
		var ll float64
		for _, part := range llPart {
			ll += part
		}
		//lint:gemallow detnondet E-step timing feeds emTelemetry only, never the model
		tel.eSeconds += time.Since(eStart).Seconds()
		if math.IsNaN(ll) {
			tel.iterations = iter + 1
			return nil, tel
		}
		tel.trajectory = append(tel.trajectory, ll)
		if cfg.iterHook != nil {
			cfg.iterHook(iter, ll)
		}
		// Convergence check on the change in log-likelihood (paper: 1e-3).
		if math.Abs(ll-prevLL) < cfg.Tol {
			prevLL = ll
			converged = true
			break
		}
		prevLL = ll

		// M-step (Equations 3–5), parallel over components.
		//lint:gemallow detnondet M-step timing feeds emTelemetry only, never the model
		mStart := time.Now()
		_ = cfg.Pool.For(k, func(j int) error {
			var nk, mu float64
			for i := 0; i < n; i++ {
				nk += resp[i*k+j]
				mu += resp[i*k+j] * xs[i]
			}
			if nk < 1e-10 {
				// Dead component: re-center on a random-ish point and reset.
				// Unsigned math: the Knuth constant overflows int on 32-bit
				// targets; the value is identical on 64-bit.
				m.Means[j] = xs[int(uint64(j)*2654435761%uint64(n))]
				m.Variances[j] = math.Max(varFloor, 1)
				m.Weights[j] = 1e-6
				return nil
			}
			mu /= nk
			var v float64
			for i := 0; i < n; i++ {
				d := xs[i] - mu
				v += resp[i*k+j] * d * d
			}
			v /= nk
			if v < varFloor {
				v = varFloor
			}
			m.Means[j] = mu
			m.Variances[j] = v
			m.Weights[j] = nk / float64(n)
			return nil
		})
		normalizeWeights(m.Weights)
		//lint:gemallow detnondet M-step timing feeds emTelemetry only, never the model
		tel.mSeconds += time.Since(mStart).Seconds()
	}
	m.LogLikelihood = prevLL
	m.Iterations = iter
	m.Converged = converged
	m.N = n
	tel.iterations = iter
	return m, tel
}

func normalizeWeights(w []float64) {
	var s float64
	for _, v := range w {
		s += v
	}
	if s <= 0 {
		for i := range w {
			w[i] = 1 / float64(len(w))
		}
		return
	}
	for i := range w {
		w[i] /= s
	}
}

// sortByMean orders components ascending by mean, keeping weights and
// variances aligned.
func (m *Model) sortByMean() {
	idx := make([]int, len(m.Means))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return m.Means[idx[a]] < m.Means[idx[b]] })
	w := make([]float64, len(idx))
	mu := make([]float64, len(idx))
	v := make([]float64, len(idx))
	for i, j := range idx {
		w[i] = m.Weights[j]
		mu[i] = m.Means[j]
		v[i] = m.Variances[j]
	}
	m.Weights, m.Means, m.Variances = w, mu, v
}

// logNormPDF is the log of the normal density at x. It delegates to
// logWeightedNormPDF (log-weight 0 adds bit-identically) so the density
// expression exists exactly once.
func logNormPDF(x, mean, variance float64) float64 {
	return logWeightedNormPDF(x, mean, variance, 0, math.Log(variance))
}

// logWeightedNormPDF is log(w · N(x | mean, variance)) against precomputed
// log-weight and log-variance — the single source of the density
// expression, shared by the EM E-step, MeanResponsibilities and (via
// logNormPDF) every inference path, so training-time and inference-time
// responsibilities stay bit-identical by construction. The grouping is the
// folded form c1 + d²·c2 the hot loops use (see weightedLogPDFs): the two
// constants depend on the component alone, so the per-value work is one
// subtract, two multiplies and one add. The compiler inlines the call.
func logWeightedNormPDF(x, mean, variance, logWeight, logVariance float64) float64 {
	d := x - mean
	return logWeight - 0.5*(log2Pi+logVariance) + d*d*(-0.5/variance)
}

// weightedLogPDFs fills buf[j] = log(w_j · N(x | mean_j, var_j)) against the
// folded per-component constants c1[j] = log w_j − ½(log 2π + log var_j) and
// c2[j] = −½/var_j. This is the E-step and embedding inner loop, unrolled
// four components wide: each lane is an independent write (no cross-lane
// accumulation), so the unroll cannot change a single bit — buf[j] is
// exactly logWeightedNormPDF for every j — while the four FMA-shaped chains
// overlap instead of serializing.
func weightedLogPDFs(x float64, means, c1, c2, buf []float64) {
	means = means[:len(buf)]
	c1 = c1[:len(buf)]
	c2 = c2[:len(buf)]
	j := 0
	for ; j+3 < len(buf); j += 4 {
		d0 := x - means[j]
		d1 := x - means[j+1]
		d2 := x - means[j+2]
		d3 := x - means[j+3]
		buf[j] = c1[j] + d0*d0*c2[j]
		buf[j+1] = c1[j+1] + d1*d1*c2[j+1]
		buf[j+2] = c1[j+2] + d2*d2*c2[j+2]
		buf[j+3] = c1[j+3] + d3*d3*c2[j+3]
	}
	for ; j < len(buf); j++ {
		d := x - means[j]
		buf[j] = c1[j] + d*d*c2[j]
	}
}

// PDF returns the mixture density at x (Equation 1).
func (m *Model) PDF(x float64) float64 {
	var s float64
	for j := range m.Weights {
		s += m.Weights[j] * math.Exp(logNormPDF(x, m.Means[j], m.Variances[j]))
	}
	return s
}

// LogPDF returns the log mixture density at x, computed stably. The
// per-component terms use the same grouping as Responsibilities and the
// E-step, so the mixture likelihood agrees bit-for-bit with training.
func (m *Model) LogPDF(x float64) float64 {
	buf := make([]float64, len(m.Weights))
	for j := range m.Weights {
		buf[j] = logWeightedNormPDF(x, m.Means[j], m.Variances[j], math.Log(m.Weights[j]), math.Log(m.Variances[j]))
	}
	return mathx.LogSumExp(buf)
}

// ComponentLogPDF returns log N(x | mu_j, sigma_j^2) for component j
// (Equation 6 in log space).
func (m *Model) ComponentLogPDF(x float64, j int) float64 {
	return logNormPDF(x, m.Means[j], m.Variances[j])
}

// Responsibilities returns gamma(z_j) for a single value x (Equation 2):
// the posterior probability that x was generated by each component.
// The returned slice sums to 1.
func (m *Model) Responsibilities(x float64) []float64 {
	k := len(m.Weights)
	buf := make([]float64, k)
	// The log weight goes through logWeightedNormPDF rather than being
	// added outside: the grouping must match the E-step's folded form so
	// training-time and inference-time responsibilities stay bit-identical.
	for j := 0; j < k; j++ {
		buf[j] = logWeightedNormPDF(x, m.Means[j], m.Variances[j], math.Log(m.Weights[j]), math.Log(m.Variances[j]))
	}
	lse := mathx.LogSumExp(buf)
	out := make([]float64, k)
	for j := 0; j < k; j++ {
		out[j] = math.Exp(buf[j] - lse)
	}
	return out
}

// MeanResponsibilities averages the per-value responsibilities over a column
// of values: mu_{C_j} = (1/N) * sum_i gamma(z_ij). This is the distributional
// part of Gem's signature (Figure 2). The result sums to 1 for a non-empty
// column.
//
// This is the embedding hot path (columns × values × components), so the
// per-value E-step runs the blocked weightedLogPDFs kernel against the
// folded per-component constants and a single reused scratch buffer — the
// arithmetic is term-for-term identical to Responsibilities, without its two
// heap allocations and k logarithms per value.
func (m *Model) MeanResponsibilities(values []float64) ([]float64, error) {
	if len(values) == 0 {
		return nil, fmt.Errorf("%w: empty column", ErrInput)
	}
	k := len(m.Weights)
	c1 := make([]float64, k)
	c2 := make([]float64, k)
	for j := 0; j < k; j++ {
		c1[j] = math.Log(m.Weights[j]) - 0.5*(log2Pi+math.Log(m.Variances[j]))
		c2[j] = -0.5 / m.Variances[j]
	}
	out := make([]float64, k)
	buf := make([]float64, k)
	for _, x := range values {
		weightedLogPDFs(x, m.Means, c1, c2, buf)
		lse := mathx.LogSumExp(buf)
		for j := 0; j < k; j++ {
			out[j] += math.Exp(buf[j] - lse)
		}
	}
	inv := 1 / float64(len(values))
	for j := range out {
		out[j] *= inv
	}
	return out, nil
}

// Sample draws n values from the mixture using rng.
func (m *Model) Sample(n int, rng *rand.Rand) []float64 {
	out := make([]float64, n)
	for i := range out {
		j := sampleCategorical(m.Weights, rng)
		out[i] = m.Means[j] + math.Sqrt(m.Variances[j])*rng.NormFloat64()
	}
	return out
}

func sampleCategorical(w []float64, rng *rand.Rand) int {
	u := rng.Float64()
	var cum float64
	for j, v := range w {
		cum += v
		if u <= cum {
			return j
		}
	}
	return len(w) - 1
}

// ScoreSamples returns the total log-likelihood of xs under the model.
func (m *Model) ScoreSamples(xs []float64) float64 {
	var ll float64
	for _, x := range xs {
		ll += m.LogPDF(x)
	}
	return ll
}

// NumParams returns the number of free parameters: (K-1) weights + K means +
// K variances.
func (m *Model) NumParams() int { return 3*len(m.Weights) - 1 }

// BIC returns the Bayesian Information Criterion on the training sample
// (lower is better).
func (m *Model) BIC() float64 {
	return float64(m.NumParams())*math.Log(float64(m.N)) - 2*m.LogLikelihood
}

// AIC returns the Akaike Information Criterion on the training sample
// (lower is better).
func (m *Model) AIC() float64 {
	return 2*float64(m.NumParams()) - 2*m.LogLikelihood
}

// SelectK fits models for every K in ks and returns the one with the lowest
// BIC, along with the BIC value per K. This mirrors the paper's model
// selection discussion (§4.1.4).
//
// Candidates are evaluated concurrently on base.Pool (each Fit's own
// restart/chunk parallelism shares the same pool, so total concurrency
// stays bounded). Errors are recorded per slot and scanned in candidate
// order, and a failure at index f lets every candidate AFTER f skip its
// fit — so the serial path still stops paying at the first error, like
// the old loop. The skip condition is "a strictly lower index already
// failed", tracked as an atomic minimum: a candidate below the lowest
// recorded failure is never skipped, so the lowest recorded failure is
// the true lowest failing candidate and the reported error is exactly
// the serial loop's, independent of scheduling.
func SelectK(xs []float64, ks []int, base Config) (*Model, map[int]float64, error) {
	if len(ks) == 0 {
		return nil, nil, fmt.Errorf("%w: no candidate K values", ErrInput)
	}
	models := make([]*Model, len(ks))
	errs := make([]error, len(ks))
	var firstFailed atomic.Int64
	firstFailed.Store(int64(len(ks)))
	_ = base.Pool.For(len(ks), func(i int) error {
		if firstFailed.Load() < int64(i) {
			return nil
		}
		cfg := base
		cfg.K = ks[i]
		models[i], errs[i] = Fit(xs, cfg)
		if errs[i] != nil {
			for {
				cur := firstFailed.Load()
				if cur <= int64(i) || firstFailed.CompareAndSwap(cur, int64(i)) {
					break
				}
			}
		}
		return nil
	})
	for i, err := range errs {
		if err != nil {
			return nil, nil, fmt.Errorf("gmm: SelectK at K=%d: %w", ks[i], err)
		}
	}
	bics := make(map[int]float64, len(ks))
	var best *Model
	for i, m := range models {
		bics[ks[i]] = m.BIC()
		if best == nil || m.BIC() < best.BIC() {
			best = m
		}
	}
	return best, bics, nil
}
