package gmm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/gem-embeddings/gem/internal/mathx"
)

// mixtureSample draws n values from a known two-component mixture.
func mixtureSample(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		if rng.Float64() < 0.4 {
			xs[i] = -5 + rng.NormFloat64()
		} else {
			xs[i] = 5 + 0.5*rng.NormFloat64()
		}
	}
	return xs
}

func TestFitRecoversTwoComponents(t *testing.T) {
	xs := mixtureSample(4000, 1)
	m, err := Fit(xs, Config{K: 2, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() != 2 {
		t.Fatalf("K = %d, want 2", m.K())
	}
	// Components are sorted by mean: first ≈ -5, second ≈ +5.
	if math.Abs(m.Means[0]+5) > 0.2 || math.Abs(m.Means[1]-5) > 0.2 {
		t.Errorf("means = %v, want ≈ [-5, 5]", m.Means)
	}
	if math.Abs(m.Weights[0]-0.4) > 0.05 || math.Abs(m.Weights[1]-0.6) > 0.05 {
		t.Errorf("weights = %v, want ≈ [0.4, 0.6]", m.Weights)
	}
	if math.Abs(math.Sqrt(m.Variances[0])-1) > 0.15 {
		t.Errorf("sigma[0] = %v, want ≈ 1", math.Sqrt(m.Variances[0]))
	}
	if math.Abs(math.Sqrt(m.Variances[1])-0.5) > 0.1 {
		t.Errorf("sigma[1] = %v, want ≈ 0.5", math.Sqrt(m.Variances[1]))
	}
	if !m.Converged {
		t.Error("EM should converge on an easy mixture")
	}
}

func TestFitValidation(t *testing.T) {
	if _, err := Fit(nil, Config{K: 2}); !errors.Is(err, ErrInput) {
		t.Errorf("empty: want ErrInput, got %v", err)
	}
	if _, err := Fit([]float64{1, 2}, Config{K: 0}); !errors.Is(err, ErrInput) {
		t.Errorf("K=0: want ErrInput, got %v", err)
	}
	if _, err := Fit([]float64{1, math.NaN()}, Config{K: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("NaN: want ErrInput, got %v", err)
	}
	if _, err := Fit([]float64{1, math.Inf(1)}, Config{K: 1}); !errors.Is(err, ErrInput) {
		t.Errorf("Inf: want ErrInput, got %v", err)
	}
}

func TestFitKGreaterThanNClamps(t *testing.T) {
	m, err := Fit([]float64{1, 2, 3}, Config{K: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.K() > 3 {
		t.Errorf("K = %d, want clamped to <= 3", m.K())
	}
}

func TestFitDeterministicWithSeed(t *testing.T) {
	xs := mixtureSample(500, 2)
	a, err := Fit(xs, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(xs, Config{K: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Means {
		if a.Means[j] != b.Means[j] || a.Weights[j] != b.Weights[j] {
			t.Fatalf("same seed produced different models: %v vs %v", a.Means, b.Means)
		}
	}
}

func TestFitConstantSample(t *testing.T) {
	xs := []float64{7, 7, 7, 7, 7, 7}
	m, err := Fit(xs, Config{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, mu := range m.Means {
		if math.Abs(mu-7) > 1e-6 {
			t.Errorf("constant sample mean = %v, want 7", mu)
		}
	}
	for _, v := range m.Variances {
		if v <= 0 {
			t.Errorf("variance must stay positive, got %v", v)
		}
	}
}

func TestWeightsSumToOne(t *testing.T) {
	xs := mixtureSample(800, 4)
	for _, k := range []int{1, 2, 5, 10} {
		m, err := Fit(xs, Config{K: k, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for _, w := range m.Weights {
			s += w
		}
		if !mathx.AlmostEqual(s, 1, 1e-9) {
			t.Errorf("K=%d: weights sum to %v", k, s)
		}
	}
}

func TestMeansSortedAscending(t *testing.T) {
	xs := mixtureSample(500, 6)
	m, err := Fit(xs, Config{K: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	for j := 1; j < m.K(); j++ {
		if m.Means[j] < m.Means[j-1] {
			t.Fatalf("means not sorted: %v", m.Means)
		}
	}
}

func TestResponsibilitiesSumToOneProperty(t *testing.T) {
	xs := mixtureSample(300, 7)
	m, err := Fit(xs, Config{K: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f := func(x float64) bool {
		x = math.Mod(x, 100)
		if math.IsNaN(x) {
			return true
		}
		r := m.Responsibilities(x)
		var s float64
		for _, v := range r {
			if v < -1e-12 || v > 1+1e-12 {
				return false
			}
			s += v
		}
		return mathx.AlmostEqual(s, 1, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestResponsibilitiesFavorNearestComponent(t *testing.T) {
	xs := mixtureSample(2000, 8)
	m, err := Fit(xs, Config{K: 2, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	// A point at -5 must be claimed by the low-mean component (index 0).
	r := m.Responsibilities(-5)
	if r[0] < 0.99 {
		t.Errorf("resp(-5) = %v, want component 0 dominant", r)
	}
	r = m.Responsibilities(5)
	if r[1] < 0.99 {
		t.Errorf("resp(5) = %v, want component 1 dominant", r)
	}
}

func TestMeanResponsibilities(t *testing.T) {
	xs := mixtureSample(2000, 9)
	m, err := Fit(xs, Config{K: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// A column drawn only from the low mode should average ≈ [1, 0].
	col := make([]float64, 200)
	rng := rand.New(rand.NewSource(10))
	for i := range col {
		col[i] = -5 + rng.NormFloat64()*0.5
	}
	mr, err := m.MeanResponsibilities(col)
	if err != nil {
		t.Fatal(err)
	}
	if mr[0] < 0.95 {
		t.Errorf("mean responsibilities = %v, want component 0 ≈ 1", mr)
	}
	var s float64
	for _, v := range mr {
		s += v
	}
	if !mathx.AlmostEqual(s, 1, 1e-9) {
		t.Errorf("mean responsibilities sum = %v, want 1", s)
	}
	if _, err := m.MeanResponsibilities(nil); !errors.Is(err, ErrInput) {
		t.Errorf("empty column: want ErrInput, got %v", err)
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	xs := mixtureSample(1000, 11)
	m, err := Fit(xs, Config{K: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	const lo, hi, steps = -30.0, 30.0, 60000
	h := (hi - lo) / steps
	var sum float64
	for i := 0; i <= steps; i++ {
		w := 1.0
		if i == 0 || i == steps {
			w = 0.5
		}
		sum += w * m.PDF(lo+float64(i)*h)
	}
	if math.Abs(sum*h-1) > 1e-3 {
		t.Errorf("mixture PDF integral = %v, want 1", sum*h)
	}
}

func TestLogPDFMatchesPDF(t *testing.T) {
	xs := mixtureSample(500, 12)
	m, err := Fit(xs, Config{K: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-5, 0, 5, 2.3} {
		if !mathx.AlmostEqual(math.Exp(m.LogPDF(x)), m.PDF(x), 1e-9) {
			t.Errorf("exp(LogPDF(%v)) = %v, PDF = %v", x, math.Exp(m.LogPDF(x)), m.PDF(x))
		}
	}
}

func TestScoreSamplesAndInformationCriteria(t *testing.T) {
	xs := mixtureSample(1000, 13)
	m, err := Fit(xs, Config{K: 2, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// ScoreSamples on the training set should be close to the stored
	// training log-likelihood.
	if !mathx.AlmostEqual(m.ScoreSamples(xs), m.LogLikelihood, 1e-3) {
		t.Errorf("ScoreSamples = %v, LogLikelihood = %v", m.ScoreSamples(xs), m.LogLikelihood)
	}
	if m.NumParams() != 5 {
		t.Errorf("NumParams = %d, want 5 for K=2", m.NumParams())
	}
	if m.BIC() <= m.AIC() {
		// For n = 1000, log(n) > 2, so BIC penalty exceeds AIC penalty.
		t.Errorf("BIC (%v) should exceed AIC (%v) at n=1000", m.BIC(), m.AIC())
	}
}

func TestMoreComponentsNeverHurtLikelihoodMuch(t *testing.T) {
	xs := mixtureSample(800, 14)
	m1, err := Fit(xs, Config{K: 1, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	m4, err := Fit(xs, Config{K: 4, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	if m4.LogLikelihood < m1.LogLikelihood-1 {
		t.Errorf("K=4 logL %v much worse than K=1 %v", m4.LogLikelihood, m1.LogLikelihood)
	}
}

func TestSelectKPicksTwoForBimodal(t *testing.T) {
	xs := mixtureSample(1500, 15)
	best, bics, err := SelectK(xs, []int{1, 2, 3}, Config{Seed: 15, Restarts: 4})
	if err != nil {
		t.Fatal(err)
	}
	if bics[2] >= bics[1] {
		t.Errorf("BIC(2)=%v should beat BIC(1)=%v on bimodal data", bics[2], bics[1])
	}
	if best.K() < 2 {
		t.Errorf("SelectK picked K=%d, want >= 2", best.K())
	}
	if _, _, err := SelectK(xs, nil, Config{}); !errors.Is(err, ErrInput) {
		t.Errorf("no candidates: want ErrInput, got %v", err)
	}
}

func TestSampleRoundTrip(t *testing.T) {
	xs := mixtureSample(2000, 16)
	m, err := Fit(xs, Config{K: 2, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	ys := m.Sample(4000, rng)
	m2, err := Fit(ys, Config{K: 2, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if math.Abs(m.Means[j]-m2.Means[j]) > 0.3 {
			t.Errorf("refit mean[%d] = %v, want ≈ %v", j, m2.Means[j], m.Means[j])
		}
	}
}

func TestInitRandomAlsoWorks(t *testing.T) {
	xs := mixtureSample(1000, 19)
	m, err := Fit(xs, Config{K: 2, Seed: 19, Init: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.Means[0]+5) > 0.5 || math.Abs(m.Means[1]-5) > 0.5 {
		t.Errorf("random init means = %v, want ≈ [-5, 5]", m.Means)
	}
}

func TestRestartsImproveLikelihood(t *testing.T) {
	xs := mixtureSample(600, 20)
	single, err := Fit(xs, Config{K: 4, Seed: 21, Restarts: 1, Init: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Fit(xs, Config{K: 4, Seed: 21, Restarts: 10, Init: InitRandom})
	if err != nil {
		t.Fatal(err)
	}
	if multi.LogLikelihood < single.LogLikelihood-1e-9 {
		t.Errorf("10 restarts logL %v < 1 restart %v", multi.LogLikelihood, single.LogLikelihood)
	}
}
