package gmm

import (
	"math"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/pool"
)

func telemetrySample() []float64 {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 600)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = rng.NormFloat64()
		} else {
			xs[i] = 10 + 2*rng.NormFloat64()
		}
	}
	return xs
}

// TestFitWithStatsTelemetry pins the observational contract: one entry
// per restart, a winner whose recorded likelihood is the model's, a
// trajectory that ends at that likelihood and never decreases, and
// stage wall-clocks that actually accumulated.
func TestFitWithStatsTelemetry(t *testing.T) {
	xs := telemetrySample()
	cfg := Config{K: 4, Seed: 3, Restarts: 3, MaxIter: 100}
	m, st, err := FitWithStats(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Restarts) != cfg.Restarts {
		t.Fatalf("restart stats = %d entries, want %d", len(st.Restarts), cfg.Restarts)
	}
	if st.Winner < 0 || st.Winner >= cfg.Restarts {
		t.Fatalf("winner = %d out of range", st.Winner)
	}
	w := st.Restarts[st.Winner]
	if w.LogLikelihood != m.LogLikelihood {
		t.Errorf("winner logL %v != model logL %v", w.LogLikelihood, m.LogLikelihood)
	}
	if w.Iterations != m.Iterations {
		t.Errorf("winner iterations %d != model iterations %d", w.Iterations, m.Iterations)
	}
	for r, rs := range st.Restarts {
		if rs.LogLikelihood > w.LogLikelihood {
			t.Errorf("restart %d logL %v beats recorded winner %v", r, rs.LogLikelihood, w.LogLikelihood)
		}
		if rs.Iterations <= 0 {
			t.Errorf("restart %d ran %d iterations", r, rs.Iterations)
		}
	}
	if len(st.Trajectory) == 0 {
		t.Fatal("empty trajectory")
	}
	if got := st.Trajectory[len(st.Trajectory)-1]; got != m.LogLikelihood {
		t.Errorf("trajectory ends at %v, model logL %v", got, m.LogLikelihood)
	}
	for i := 1; i < len(st.Trajectory); i++ {
		if st.Trajectory[i] < st.Trajectory[i-1]-1e-9 {
			t.Errorf("trajectory decreased at %d: %v -> %v", i, st.Trajectory[i-1], st.Trajectory[i])
		}
	}
	if st.EStepSeconds <= 0 {
		t.Errorf("E-step seconds = %v, want > 0", st.EStepSeconds)
	}
	if st.Iterations() < m.Iterations {
		t.Errorf("total iterations %d < winner's %d", st.Iterations(), m.Iterations)
	}
}

// TestFitWithStatsNeutral pins that recording telemetry changes no bit of
// the fitted model, at several pool widths.
func TestFitWithStatsNeutral(t *testing.T) {
	xs := telemetrySample()
	cfg := Config{K: 4, Seed: 3, Restarts: 2, MaxIter: 60}
	ref, err := Fit(xs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.Pool = pool.New(workers)
		m, st, err := FitWithStats(xs, c)
		if err != nil {
			t.Fatal(err)
		}
		if st == nil || len(st.Restarts) != c.Restarts {
			t.Fatalf("workers %d: missing telemetry", workers)
		}
		for j := range ref.Weights {
			if math.Float64bits(ref.Weights[j]) != math.Float64bits(m.Weights[j]) ||
				math.Float64bits(ref.Means[j]) != math.Float64bits(m.Means[j]) ||
				math.Float64bits(ref.Variances[j]) != math.Float64bits(m.Variances[j]) {
				t.Fatalf("workers %d: component %d differs from Fit reference", workers, j)
			}
		}
	}
}
