package lint

// poolgo: in //gem:pooled packages — the hot paths whose parallel
// fan-out is contracted to internal/pool's caller-runs discipline — a
// naked go statement bypasses the shared w-1 token budget, so nested
// parallelism can oversubscribe the machine; and constructing a fresh
// Pool inside a function that already receives one splits the budget
// into independent pools, which is the same bug with extra steps. Both
// are flagged; legitimately unpooled goroutines (a long-lived
// dispatcher, an I/O-bound network fan-out) take a per-site
// //lint:gemallow poolgo with the justification.

import (
	"go/ast"
	"go/types"
)

// PoolGo flags naked goroutines and nested Pool construction in
// pool-contracted packages.
var PoolGo = &Analyzer{
	Name: "poolgo",
	Doc: "flag go statements and nested pool.New inside functions already " +
		"receiving a *pool.Pool in //gem:pooled packages",
	Run: runPoolGo,
}

func runPoolGo(pass *Pass) error {
	if !pass.Markers["pooled"] {
		return nil
	}
	info := pass.TypesInfo
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.GoStmt:
				pass.Report(Diagnostic{Pos: e.Pos(),
					Message: "naked goroutine in a pool-contracted package: fan-out " +
						"goes through (*pool.Pool).For so nested parallelism stays " +
						"inside the shared worker budget [POOL-GO]"})
			case *ast.FuncDecl:
				if e.Body != nil && funcReceivesPool(info, e.Type) {
					flagNestedPoolNew(pass, e.Body)
				}
			case *ast.FuncLit:
				if funcReceivesPool(info, e.Type) {
					flagNestedPoolNew(pass, e.Body)
				}
			}
			return true
		})
	}
	return nil
}

// funcReceivesPool reports whether the function type has a *pool.Pool
// (or pool.Pool) parameter.
func funcReceivesPool(info *types.Info, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		if isPoolType(info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

func isPoolType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Name() == "pool"
}

// flagNestedPoolNew reports pool.New calls inside a body that already
// has a pool in scope.
func flagNestedPoolNew(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "New" {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[pkgID].(*types.PkgName); ok && pn.Imported().Name() == "pool" {
			pass.Report(Diagnostic{Pos: call.Pos(),
				Message: "pool.New inside a function already receiving a *pool.Pool: " +
					"nested pools split the shared worker budget; reuse the caller's " +
					"pool (a nested For degrades to caller-runs, never deadlocks) [POOL-NEST]"})
		}
		return true
	})
}
