// Package detmaprange_unmarked carries no //gem:deterministic marker,
// so the determinism analyzers must stay silent here even on shapes
// that would fire in a marked package.
package detmaprange_unmarked

import "time"

func appendNoSort(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // ok: package is not determinism-contracted
	}
	return out
}

func wallClock() time.Time {
	return time.Now() // ok: package is not determinism-contracted
}
