// Package detnondet exercises the detnondet analyzer: wall clocks,
// process environment, unseeded randomness and racing sends must not
// reach determinism-contracted code outside telemetry gates.
//
//gem:deterministic
package detnondet

import (
	"math/rand"
	"os"
	"time"
)

type server struct {
	trace bool
	obs   func(float64)
	start time.Time
}

// naked fires: an ungated wall-clock read.
func naked() time.Duration {
	t0 := time.Now()      // want `time.Now in a deterministic package outside a telemetry gate`
	return time.Since(t0) // want `time.Since in a deterministic package outside a telemetry gate`
}

// gated passes: the PR 8 telemetry-gate pattern.
func (s *server) gated() {
	var t0 time.Time
	if s.trace {
		t0 = time.Now() // ok: trace-gated telemetry
	}
	if s.trace {
		_ = time.Since(t0) // ok: trace-gated telemetry
	}
	if s.obs != nil {
		s.obs(time.Since(t0).Seconds()) // ok: obs-gated telemetry
	}
}

// suppressed passes via an explicit, justified allow.
func (s *server) suppressed() {
	//lint:gemallow detnondet uptime feeds only the stats endpoint, never response bodies
	s.start = time.Now()
}

// env fires: environment must not influence output.
func env() string {
	return os.Getenv("GEM_MODE") // want `os.Getenv in a deterministic package`
}

// globalRand fires; a seeded source passes.
func globalRand() (int, int) {
	a := rand.Intn(10) // want `rand.Intn draws from unseeded global state`
	rng := rand.New(rand.NewSource(7))
	b := rng.Intn(10) // ok: explicitly seeded source
	return a, b
}

// selects: two ready sends race; one send with a default does not.
func selects(a, b chan int) {
	select { // want `select with multiple sends`
	case a <- 1:
	case b <- 2:
	}
	select { // ok: single send, non-blocking
	case a <- 1:
	default:
	}
}

// receives pass: the two-receive wait shape (done vs ctx) is not a
// multi-send race.
func receives(done, quit chan struct{}) {
	select { // ok: receives only
	case <-done:
	case <-quit:
	}
}
