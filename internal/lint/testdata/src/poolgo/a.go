// Package poolgo exercises the poolgo analyzer: hot-path fan-out goes
// through the shared pool, and a function already holding a pool never
// builds another one.
//
//gem:pooled
package poolgo

import "pool"

// naked fires: a raw goroutine bypasses the worker budget.
func naked(xs []float64, out []float64) {
	done := make(chan struct{})
	go func() { // want `naked goroutine in a pool-contracted package`
		for i, x := range xs {
			out[i] = 2 * x
		}
		close(done)
	}()
	<-done
}

// nested fires: the caller's pool is the budget; a second pool splits it.
func nested(p *pool.Pool, xs []float64, out []float64) error {
	q := pool.New(4) // want `pool.New inside a function already receiving a \*pool.Pool`
	return q.For(len(xs), func(i int) error {
		out[i] = 2 * xs[i]
		return nil
	})
}

// pooled passes: fan-out through the received pool.
func pooled(p *pool.Pool, xs []float64, out []float64) error {
	return p.For(len(xs), func(i int) error { // ok: caller-runs fan-out
		out[i] = 2 * xs[i]
		return nil
	})
}

// fresh passes: constructing a pool where none is in scope is how every
// pipeline entry point starts.
func fresh(workers int) *pool.Pool {
	return pool.New(workers) // ok: no pool parameter in scope
}

// dispatcher passes via a justified suppression: a single long-lived
// goroutine is not index-parallel fan-out.
func dispatcher(ch chan int) {
	//lint:gemallow poolgo long-lived dispatcher goroutine, not CPU fan-out
	go func() {
		for range ch {
		}
	}()
}
