// Package detmaprange exercises the detmaprange analyzer: map iteration
// order must not escape the loop in determinism-marked packages.
//
//gem:deterministic
package detmaprange

import "sort"

// appendNoSort is the firing shape: collected values are used unsorted.
func appendNoSort(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want `append to out inside a map range without sorting`
	}
	return out
}

// collectThenSort is the blessed idiom: the collected slice is sorted
// before use.
func collectThenSort(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // ok: sorted below
	}
	sort.Ints(out)
	return out
}

// sortedKeys is the other blessed idiom: sort the keys, then iterate.
func sortedKeys(m map[string]float64) []float64 {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k) // ok: sorted below
	}
	sort.Strings(ks)
	out := make([]float64, 0, len(ks))
	for _, k := range ks {
		out = append(out, m[k]) // ok: ranging a sorted slice, not a map
	}
	return out
}

// floatAccumulate fires: float reductions must run in fixed order.
func floatAccumulate(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `non-integer accumulation into sum`
	}
	return sum
}

// intCounter passes: integer accumulation commutes exactly.
func intCounter(m map[string]int) (int, int) {
	n, total := 0, 0
	for _, v := range m {
		n++        // ok: integer counter
		total += v // ok: integer accumulation
	}
	return n, total
}

// keyedWrites passes: map and slice index writes address independent
// slots, so order cannot change the result.
func keyedWrites(m map[int]float64, out []float64) map[int]float64 {
	inv := make(map[int]float64, len(m))
	for k, v := range m {
		inv[k] = v // ok: keyed write
		out[k] = v // ok: index-addressed slot
	}
	return inv
}

// lastWriter fires: the surviving value depends on iteration order.
func lastWriter(m map[string]int) string {
	var last string
	for k := range m {
		last = k // want `assignment to last inside a map range`
	}
	return last
}

// send fires: the channel consumer observes iteration order.
func send(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside a map range`
	}
}

// firstMatch fires: which element returns first is order-dependent.
func firstMatch(m map[string]int, want int) string {
	for k, v := range m {
		if v == want {
			return k // want `return of a map-iteration-dependent value`
		}
	}
	return ""
}
