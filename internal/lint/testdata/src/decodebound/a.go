// Package decodebound exercises the decodebound analyzer: lengths
// decoded from untrusted bytes must be bound-checked before they size an
// allocation.
package decodebound

import (
	"encoding/binary"
	"errors"
	"io"
)

const maxCount = 1 << 20

var errFormat = errors.New("format")

// crasher reproduces the PR 6 unvalidated-length decode crasher shape
// (the ann index loader before hardening): the vector count comes
// straight off the wire and sizes the allocation, so a corrupt header
// claiming 2^32 vectors drives a multi-gigabyte make before one payload
// byte is read.
func crasher(r io.Reader) ([][]float64, error) {
	var dim, n uint32
	if err := binary.Read(r, binary.LittleEndian, &dim); err != nil {
		return nil, err
	}
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	vecs := make([][]float64, n) // want `make sized by a decoded length with no bound check`
	for i := range vecs {
		vecs[i] = make([]float64, dim) // want `make sized by a decoded length with no bound check`
		if err := binary.Read(r, binary.LittleEndian, vecs[i]); err != nil {
			return nil, err
		}
	}
	return vecs, nil
}

// bounded is the hardened shape: the cap comparison clears the taint.
func bounded(r io.Reader) ([]byte, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n > maxCount {
		return nil, errFormat
	}
	buf := make([]byte, n) // ok: bound-checked above
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// manual fires: length-prefix parsing without a check.
func manual(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	out := make([]byte, n) // want `make sized by a decoded length with no bound check`
	copy(out, b[4:])
	return out
}

// inline fires: the decode call sizing the make directly.
func inline(b []byte) []byte {
	return make([]byte, binary.LittleEndian.Uint32(b)) // want `make sized by a decoded length with no bound check`
}

// manualBounded passes: any comparison on the decoded value counts as
// the guard (the journal's `dim == 0 || dim > maxJournalDim` chain).
func manualBounded(b []byte) []byte {
	n := binary.LittleEndian.Uint32(b)
	if n == 0 || n > maxCount || int(n) > len(b)-4 {
		return nil
	}
	out := make([]byte, n) // ok: bound-checked above
	copy(out, b[4:])
	return out
}

// readLE mirrors the repo's helper: decoding into its pointer arguments
// taints them at the caller.
func readLE(r io.Reader, vs ...any) error {
	for _, v := range vs {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

// viaHelper fires: readLE is a decode, and cnt reaches make unchecked.
func viaHelper(r io.Reader) ([]int32, error) {
	var cnt uint32
	if err := readLE(r, &cnt); err != nil {
		return nil, err
	}
	nbs := make([]int32, cnt) // want `make sized by a decoded length with no bound check`
	return nbs, readLE(r, nbs)
}

// count owns its bound check and returns a safe value.
func count(r io.Reader) (int, error) {
	var n uint32
	if err := readLE(r, &n); err != nil {
		return 0, err
	}
	if n > maxCount {
		return 0, errFormat
	}
	return int(n), nil
}

// laundered passes: a helper call's result is treated as checked — the
// helper is analyzed on its own (ann's readCount pattern).
func laundered(r io.Reader) ([]byte, error) {
	n, err := count(r)
	if err != nil {
		return nil, err
	}
	return make([]byte, n), nil // ok: count bound-checks its result
}

// fixedSizes passes: allocations sized by trusted values never fire.
func fixedSizes(xs []float64) []float64 {
	out := make([]float64, len(xs)) // ok: trusted length
	tmp := make([]byte, 64)         // ok: constant length
	_ = tmp
	copy(out, xs)
	return out
}
