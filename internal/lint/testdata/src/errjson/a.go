// Package errjson exercises the errjson analyzer: every error answer is
// the JSON {"error": ...} body written by the blessed writer.
//
//gem:jsonerrors
package errjson

import (
	"encoding/json"
	"net/http"
)

// plainText fires: http.Error writes text/plain.
func plainText(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusBadRequest) // want `http.Error writes text/plain`
}

// rawHeader fires: a bare WriteHeader invents its own error shape.
func rawHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusInternalServerError) // want `raw WriteHeader outside a //gem:errwriter function`
	_, _ = w.Write([]byte("boom"))
}

// writeError is the blessed JSON error writer.
//
//gem:errwriter
func writeError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code) // ok: inside the contract writer
	_ = json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

// contract passes: the handler routes its error through writeError.
func contract(w http.ResponseWriter, r *http.Request) {
	if r.ContentLength == 0 {
		writeError(w, http.StatusBadRequest, "empty body") // ok: blessed writer
		return
	}
	_ = json.NewEncoder(w).Encode(map[string]string{"status": "ok"})
}
