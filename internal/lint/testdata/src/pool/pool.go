// Package pool is a fixture stub of the repo's internal/pool: just
// enough surface (New, For) for the poolgo fixtures to typecheck.
package pool

// Pool is a bounded worker pool (stub).
type Pool struct{ workers int }

// New returns a Pool bounded to workers concurrent loop bodies (stub).
func New(workers int) *Pool { return &Pool{workers: workers} }

// For runs fn(i) for every i in [0, n) (stub: serial).
func (p *Pool) For(n int, fn func(i int) error) error {
	for i := 0; i < n; i++ {
		if err := fn(i); err != nil {
			return err
		}
	}
	return nil
}
