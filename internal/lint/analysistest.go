package lint

// An analysistest-style fixture runner: RunFixture loads one package
// from testdata/src/<path> (imports resolved GOPATH-style under
// testdata/src, standard library from source), runs one analyzer, and
// matches its diagnostics against the fixture's expectations —
// `// want "regexp"` comments on the line the diagnostic lands on,
// exactly the upstream golang.org/x/tools/go/analysis/analysistest
// convention, so fixtures survive a later swap to the real framework.

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
)

// wantRe extracts the expectation pattern from a `// want "pat"` or
// `// want `+"`pat`"+“ comment.
var wantRe = regexp.MustCompile("// want (?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

// Testing is the subset of *testing.T the runner needs.
type Testing interface {
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
	Helper()
}

// fixtureLoaders shares one loader per testdata root so the standard
// library is typechecked once per test process, not once per fixture.
// RunFixture is not safe for parallel use from one root.
var (
	fixtureMu      sync.Mutex
	fixtureLoaders = map[string]*Loader{}
)

func fixtureLoader(srcRoot string) *Loader {
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if l, ok := fixtureLoaders[srcRoot]; ok {
		return l
	}
	l := NewFixtureLoader(srcRoot)
	fixtureLoaders[srcRoot] = l
	return l
}

// RunFixture runs analyzer over the fixture package at
// testdata/src/<pkgPath> and checks its diagnostics against the
// fixture's want comments. Suppressions (//lint:gemallow) are applied
// first, as in the real driver; a stale suppression fails the fixture.
func RunFixture(t Testing, testdata string, analyzer *Analyzer, pkgPath string) {
	t.Helper()
	loader := fixtureLoader(filepath.Join(testdata, "src"))
	pkg, err := loader.Load(pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", pkgPath, err)
		return
	}
	diags, stale, err := RunPackage(pkg, []*Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s over %s: %v", analyzer.Name, pkgPath, err)
		return
	}
	for _, a := range stale {
		if a.Malformed != "" {
			t.Errorf("%s:%d: malformed suppression: %s", a.File, a.Line, a.Malformed)
		} else {
			t.Errorf("%s:%d: stale suppression (%s: %s)", a.File, a.Line, a.Analyzer, a.Reason)
		}
	}

	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	wants := map[string][]*want{} // "file:line" → expectations
	key := func(pos token.Position) string {
		return fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				} else {
					pat = strings.ReplaceAll(pat, `\"`, `"`)
					pat = strings.ReplaceAll(pat, `\\`, `\`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("bad want pattern %q: %v", pat, err)
					return
				}
				pos := pkg.Fset.Position(c.Pos())
				wants[key(pos)] = append(wants[key(pos)], &want{re: re})
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key(pos)
		matched := false
		for _, w := range wants[k] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched, matched = true, true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected diagnostic: %s: %s", k, d.Analyzer, d.Message)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", k, w.re)
			}
		}
	}
}
