// Package lint is gemlint: a family of static analyzers that turn this
// repository's prose contracts — the ones its determinism, pool,
// error-shape and decode-hardening guarantees rest on — into
// build-breaking checks. The determinism suites and golden fingerprints
// can only catch a contract violation after a test happens to exercise
// it; these analyzers reject the violating code itself.
//
// # Contract catalog
//
// Diagnostics name the contract they enforce with one of these tags, so
// a CI failure points straight at the rule (and the doc that defines it)
// rather than at a mysterious style preference:
//
//	[DET-ORDER]   Deterministic packages must not let map iteration
//	              order reach any output: no appends, accumulations,
//	              sends, plain assignments or returns that depend on
//	              the order of a range over a map, unless the collected
//	              values are sorted before use. Defined in the
//	              internal/pool package doc ("Determinism") and the
//	              serve package doc (byte-identity contract).
//
//	[DET-WALLCLOCK], [DET-ENV], [DET-RAND], [DET-SELECT]
//	              Deterministic packages must not read wall clocks,
//	              process environment, or unseeded global randomness,
//	              and must not race multiple ready channel sends, in
//	              code that can influence output bytes. Telemetry reads
//	              are exempt when they sit behind a recognised
//	              telemetry gate (an if whose condition mentions a
//	              trace/metrics/obs/slow/reg guard — the PR 8
//	              determinism-neutral pattern) or an explicit allowlist
//	              entry (the slow-log middleware).
//
//	[POOL-GO]     Hot-path packages under the internal/pool caller-runs
//	              contract must not spawn naked goroutines: fan-out
//	              goes through (*pool.Pool).For so nested parallelism
//	              cannot oversubscribe the machine (pool package doc,
//	              "no-oversubscription contract").
//
//	[POOL-NEST]   A function that already receives a *pool.Pool must
//	              not construct another Pool: nesting pools breaks the
//	              shared-slot accounting that makes columns × restarts
//	              × chunks collapse onto one width-w budget.
//
//	[DECODE-BOUND] Persistence/decode code must compare any length or
//	              count decoded from input bytes against a cap before
//	              sizing an allocation with it. This is the exact class
//	              of the two fuzz-found crashers fixed in PR 6
//	              (internal/ann persist.go, internal/catalog
//	              journal.go): a corrupt header claiming 2^32 elements
//	              must not drive a huge make.
//
//	[ERR-JSON]    serve and the proxy answer every error as the JSON
//	              {"error": ...} body with the mapped status (the
//	              contract table-tested in PR 8). Handlers must route
//	              errors through the blessed writers (marked
//	              //gem:errwriter) instead of calling http.Error or
//	              touching WriteHeader directly.
//
// # Markers
//
// Analyzers scope themselves by package-doc markers, so new packages opt
// in explicitly instead of being guessed at:
//
//	//gem:deterministic   the package's outputs are bit-identity
//	                      contracted (detmaprange, detnondet apply)
//	//gem:pooled          the package's parallel fan-out must go
//	                      through internal/pool (poolgo applies)
//	//gem:jsonerrors      the package serves the JSON error contract
//	                      (errjson applies)
//
// A marker is any comment line in a file's package doc group. The
// decodebound analyzer needs no marker: it self-scopes to functions that
// decode untrusted bytes.
//
// Function-level marker:
//
//	//gem:errwriter       this function is the sanctioned error/status
//	                      writer; errjson permits raw WriteHeader here.
//
// # Suppressions
//
// A finding that is triaged as intentional is silenced in place:
//
//	//lint:gemallow <analyzer> <reason>        this or the next line
//	//lint:gemallow-file <analyzer> <reason>   the whole file
//
// The reason is mandatory. The driver (cmd/gemlint) errors on any
// suppression that matches no diagnostic — a stale allow is itself a
// finding, so suppressions cannot rot after refactors.
//
// # Running
//
//	go run ./cmd/gemlint ./...
//
// The analyzers are written against a minimal in-repo mirror of the
// golang.org/x/tools/go/analysis API (Analyzer, Pass, Diagnostic), so
// each Run function is source-compatible with the upstream framework;
// when the x/tools dependency can be vendored, cmd/gemlint becomes a
// stock multichecker and the fixtures keep working unchanged.
package lint
