package lint

// Package loading and typechecking over the standard library only. The
// loader resolves module-local imports by mapping the module path onto
// the module directory (read from go.mod), fixture imports GOPATH-style
// under explicit source roots (analysistest's testdata/src), and
// everything else — the standard library — through go/importer's source
// importer. No go list subprocess, no external dependency: the same
// loader serves cmd/gemlint over the real tree and the fixture tests.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and typechecks packages. It caches by import path, so a
// process typechecks the standard library and shared internal packages
// once no matter how many roots it analyzes.
type Loader struct {
	Fset *token.FileSet
	// ModulePath maps onto ModuleDir for module-local imports; empty
	// when loading fixtures only.
	ModulePath string
	ModuleDir  string
	// SrcRoots are GOPATH-style roots (dir/<import path>/*.go), used by
	// the fixture tests.
	SrcRoots []string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module containing dir (found
// by walking up to go.mod).
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir := abs
	for {
		if _, err := os.Stat(filepath.Join(modDir, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(modDir)
		if parent == modDir {
			return nil, fmt.Errorf("lint: no go.mod at or above %s", abs)
		}
		modDir = parent
	}
	data, err := os.ReadFile(filepath.Join(modDir, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", modDir)
	}
	l := newLoader()
	l.ModulePath = modPath
	l.ModuleDir = modDir
	return l, nil
}

// NewFixtureLoader returns a loader that resolves imports GOPATH-style
// under srcRoot (testdata/src in the fixture tests).
func NewFixtureLoader(srcRoot string) *Loader {
	l := newLoader()
	l.SrcRoots = []string{srcRoot}
	return l
}

func newLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		std:     importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
}

// Load returns the typechecked package at importPath.
func (l *Loader) Load(importPath string) (*Package, error) {
	if p, ok := l.pkgs[importPath]; ok {
		return p, nil
	}
	dir, ok := l.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("lint: cannot resolve import %q", importPath)
	}
	return l.loadDir(dir, importPath)
}

// dirFor maps an import path to a source directory via the module
// mapping or the fixture roots.
func (l *Loader) dirFor(importPath string) (string, bool) {
	if l.ModulePath != "" {
		if importPath == l.ModulePath {
			return l.ModuleDir, true
		}
		if rest, ok := strings.CutPrefix(importPath, l.ModulePath+"/"); ok {
			return filepath.Join(l.ModuleDir, filepath.FromSlash(rest)), true
		}
	}
	for _, root := range l.SrcRoots {
		dir := filepath.Join(root, filepath.FromSlash(importPath))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// loadDir parses and typechecks the non-test files of one directory.
func (l *Loader) loadDir(dir, importPath string) (*Package, error) {
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	names, err := sourceFiles(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil,
			parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: l,
		Error: func(err error) {
			if len(typeErrs) < 10 {
				typeErrs = append(typeErrs, err.Error())
			}
		},
	}
	tpkg, _ := conf.Check(importPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: typechecking %s:\n  %s",
			importPath, strings.Join(typeErrs, "\n  "))
	}
	p := &Package{Path: importPath, Dir: dir, Fset: l.Fset,
		Files: files, Types: tpkg, Info: info}
	l.pkgs[importPath] = p
	return p, nil
}

// Import implements types.Importer for the typechecker: module-local and
// fixture imports load through this Loader; everything else falls back
// to the standard library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if dir, ok := l.dirFor(path); ok {
		p, err := l.loadDir(dir, path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// sourceFiles lists a directory's non-test .go files, sorted for stable
// positions, skipping ignore-tagged files.
func sourceFiles(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		if buildIgnored(string(data)) {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// buildIgnored reports whether src carries an ignore build constraint.
// Only constraint lines above the package clause count — the same string
// inside a declaration (or a string literal, as in this very file) does
// not ignore the file.
func buildIgnored(src string) bool {
	for _, line := range strings.Split(src, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "package ") {
			return false
		}
		if strings.HasPrefix(line, "//go:build ") &&
			strings.Contains(line[len("//go:build "):], "ignore") {
			return true
		}
	}
	return false
}

// DiscoverPackages walks the module tree under root and returns the
// import paths of every directory holding at least one non-test Go file,
// skipping testdata, hidden and VCS directories. root must be inside the
// loader's module.
func (l *Loader) DiscoverPackages(root string) ([]string, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	var paths []string
	err = filepath.WalkDir(abs, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != abs && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := sourceFiles(path)
		if err != nil || len(names) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleDir, path)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.ModulePath)
		} else {
			paths = append(paths, l.ModulePath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
