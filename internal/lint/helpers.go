package lint

// Small AST/type helpers shared by the analyzers.

import (
	"go/ast"
	"go/types"
)

// calleeObject resolves the object a call expression invokes, looking
// through parentheses: the Uses entry for a selector's Sel or a plain
// ident. Returns nil for builtins wrapped oddly, method values, etc.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	case *ast.Ident:
		return info.Uses[fun]
	}
	return nil
}

// isPkgFunc reports whether call invokes one of the named functions from
// the package with the given import path.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return false
	}
	for _, n := range names {
		if obj.Name() == n {
			return true
		}
	}
	return false
}

// mentionsObject reports whether expr contains an identifier resolving
// to obj.
func mentionsObject(info *types.Info, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// rootIdent descends through selector, index, star, and paren wrappers
// to the base identifier of an assignable expression (s.f[i] → s);
// nil when the base is not a plain identifier.
func rootIdent(expr ast.Expr) *ast.Ident {
	for {
		switch e := expr.(type) {
		case *ast.Ident:
			return e
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.ParenExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// isIntegerType reports whether t's core type is an integer (including
// unsigned): the accumulation operators that commute exactly.
func isIntegerType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// isMakeCall reports whether call is the builtin make.
func isMakeCall(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	_, ok = info.Uses[id].(*types.Builtin)
	return ok && id.Name == "make"
}
