package lint

// errjson: packages marked //gem:jsonerrors answer every error with the
// JSON {"error": ...} body and the status mapped by the error-contract
// table (table-tested in PR 8 on both the shard server and the proxy).
// http.Error writes text/plain and a bare WriteHeader+Write invents its
// own shape, so both bypass the contract; error paths route through the
// blessed writers instead — functions carrying a //gem:errwriter doc
// marker (serve's writeError, the middleware's response recorder), the
// only places allowed to touch the raw status line.

import (
	"go/ast"
)

// ErrJSON flags error responses that bypass the JSON error contract.
var ErrJSON = &Analyzer{
	Name: "errjson",
	Doc: "flag http.Error and raw WriteHeader outside //gem:errwriter " +
		"functions in //gem:jsonerrors packages",
	Run: runErrJSON,
}

func runErrJSON(pass *Pass) error {
	if !pass.Markers["jsonerrors"] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if funcHasMarker(fd.Doc, "errwriter") {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if isPkgFunc(pass.TypesInfo, call, "net/http", "Error") {
					pass.Report(Diagnostic{Pos: call.Pos(),
						Message: "http.Error writes text/plain, bypassing the JSON " +
							`{"error":...} contract; use the package's //gem:errwriter ` +
							"helper [ERR-JSON]"})
					return true
				}
				if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "WriteHeader" {
					pass.Report(Diagnostic{Pos: call.Pos(),
						Message: "raw WriteHeader outside a //gem:errwriter function: " +
							"status codes and error bodies are set together by the " +
							"contract writer [ERR-JSON]"})
				}
				return true
			})
		}
	}
	return nil
}
