package lint

// detnondet: in //gem:deterministic packages, non-test code must not
// read wall clocks (time.Now/Since/Until), the process environment, or
// the unseeded global math/rand state, and must not race multiple ready
// channel sends in one select — each of those lets something outside the
// input influence the output.
//
// Two escape hatches keep the proven-neutral telemetry honest instead of
// silencing the analyzer wholesale:
//
//   - the telemetry-gate pattern: a call lexically inside an if whose
//     condition mentions a trace/metrics/obs/slow/reg guard (serve's
//     `if s.trace { t0 = time.Now() }`, shard's `if c.searchObs != nil`)
//     is instrumentation that PR 8 pinned byte-neutral, and passes;
//   - the built-in allowlist for the slow-log middleware, whose timings
//     feed only logs and metrics.
//
// Everything else needs a per-site //lint:gemallow detnondet <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// DetNonDet flags wall-clock, environment, global-randomness and racing
// multi-send selects in determinism-contracted packages.
var DetNonDet = &Analyzer{
	Name: "detnondet",
	Doc: "flag time.Now/Since/Until, os.Getenv, unseeded math/rand and " +
		"multi-send selects outside telemetry gates in //gem:deterministic packages",
	Run: runDetNonDet,
}

// telemetryGateRe matches identifier names that mark an if-condition as
// a telemetry gate (the PR 8 determinism-neutral pattern).
var telemetryGateRe = regexp.MustCompile(`(?i)(trace|slow|metric|obs|telemetr|reg)`)

// nonDetAllowFuncs is the explicit allowlist: functions whose wall-clock
// reads are part of the observability contract, keyed by package-path
// suffix. The slow-log middleware is the canonical entry — its timings
// exist only in log lines and metric series (PR 8).
var nonDetAllowFuncs = map[string][]string{
	"internal/serve": {"wrap"},
}

// randFlagged are the math/rand (and v2) top-level functions drawing
// from shared, unseeded state; rand.New/NewSource with an explicit seed
// stay legal — that is how the repo's deterministic fitting works.
var randFlagged = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "IntN": true, "N": true,
	"Uint32": true, "Uint64": true, "Uint32N": true, "Uint64N": true,
	"UintN": true, "Uint": true, "Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true, "Perm": true,
	"Shuffle": true, "Read": true, "Seed": true,
}

func runDetNonDet(pass *Pass) error {
	if !pass.Markers["deterministic"] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if allowedNonDetFunc(pass.PkgPath, fd.Name.Name) {
				continue
			}
			gates := telemetryGatedSpans(fd.Body)
			checkNonDet(pass, fd.Body, gates)
		}
	}
	return nil
}

func allowedNonDetFunc(pkgPath, fn string) bool {
	for suffix, fns := range nonDetAllowFuncs {
		if !strings.HasSuffix(pkgPath, suffix) {
			continue
		}
		for _, name := range fns {
			if name == fn {
				return true
			}
		}
	}
	return false
}

type span struct{ lo, hi token.Pos }

// telemetryGatedSpans collects the body spans of if-statements whose
// condition mentions a telemetry guard.
func telemetryGatedSpans(body *ast.BlockStmt) []span {
	var spans []span
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		gated := false
		ast.Inspect(ifs.Cond, func(cn ast.Node) bool {
			if id, ok := cn.(*ast.Ident); ok && telemetryGateRe.MatchString(id.Name) {
				gated = true
			}
			return !gated
		})
		if gated {
			spans = append(spans, span{ifs.Body.Pos(), ifs.Body.End()})
		}
		return true
	})
	return spans
}

func inSpans(spans []span, pos token.Pos) bool {
	for _, s := range spans {
		if pos >= s.lo && pos <= s.hi {
			return true
		}
	}
	return false
}

func checkNonDet(pass *Pass, body *ast.BlockStmt, gates []span) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			obj := calleeObject(info, e)
			if obj == nil || obj.Pkg() == nil {
				return true
			}
			switch obj.Pkg().Path() {
			case "time":
				if name := obj.Name(); name == "Now" || name == "Since" || name == "Until" {
					if !inSpans(gates, e.Pos()) {
						pass.Report(Diagnostic{Pos: e.Pos(),
							Message: "time." + name + " in a deterministic package outside a " +
								"telemetry gate: wall clocks must not influence output [DET-WALLCLOCK]"})
					}
				}
			case "os":
				if name := obj.Name(); name == "Getenv" || name == "LookupEnv" || name == "Environ" {
					pass.Report(Diagnostic{Pos: e.Pos(),
						Message: "os." + name + " in a deterministic package: process " +
							"environment must not influence output [DET-ENV]"})
				}
			case "math/rand", "math/rand/v2":
				if randFlagged[obj.Name()] {
					if _, isFunc := obj.(*types.Func); isFunc && obj.Parent() == obj.Pkg().Scope() {
						pass.Report(Diagnostic{Pos: e.Pos(),
							Message: "rand." + obj.Name() + " draws from unseeded global state; " +
								"use rand.New(rand.NewSource(seed)) [DET-RAND]"})
					}
				}
			}
		case *ast.SelectStmt:
			sends := 0
			for _, clause := range e.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok {
					if _, isSend := cc.Comm.(*ast.SendStmt); isSend {
						sends++
					}
				}
			}
			if sends >= 2 {
				pass.Report(Diagnostic{Pos: e.Pos(),
					Message: "select with multiple sends: when more than one channel is " +
						"ready the winner is scheduling-dependent [DET-SELECT]"})
			}
		}
		return true
	})
}
