package lint

// Suppression handling. A triaged finding is silenced in place with
//
//	//lint:gemallow <analyzer> <reason>        (this line or the next)
//	//lint:gemallow-file <analyzer> <reason>   (the whole file)
//
// The reason is mandatory — an allow without a justification is reported
// as malformed — and the driver treats an allow that matched no
// diagnostic as stale, so suppressions cannot outlive the code they
// excused.

import (
	"go/ast"
	"go/token"
	"strings"
)

// Allow is one parsed //lint:gemallow directive.
type Allow struct {
	// Analyzer is the analyzer the allow silences; "*" silences all
	// (reserved for generated code, discouraged elsewhere).
	Analyzer string
	// Reason is the mandatory justification.
	Reason string
	// File and Line locate the directive. A line-scoped allow matches
	// diagnostics on its own line (trailing comment) or the next line
	// (comment-above style).
	File string
	Line int
	// FileWide is true for //lint:gemallow-file.
	FileWide bool
	// Malformed carries a parse problem ("missing reason"); malformed
	// allows silence nothing and are reported.
	Malformed string
}

const (
	allowPrefix     = "lint:gemallow "
	allowFilePrefix = "lint:gemallow-file "
)

// collectAllows parses every gemallow directive in the files.
func collectAllows(fset *token.FileSet, files []*ast.File) []Allow {
	var out []Allow
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				fileWide := false
				var rest string
				switch {
				case strings.HasPrefix(text, allowFilePrefix):
					fileWide, rest = true, strings.TrimPrefix(text, allowFilePrefix)
				case strings.HasPrefix(text, allowPrefix):
					rest = strings.TrimPrefix(text, allowPrefix)
				case text == strings.TrimSpace(allowPrefix), text == strings.TrimSpace(allowFilePrefix):
					pos := fset.Position(c.Pos())
					out = append(out, Allow{File: pos.Filename, Line: pos.Line,
						Malformed: "missing analyzer and reason"})
					continue
				default:
					continue
				}
				pos := fset.Position(c.Pos())
				a := Allow{File: pos.Filename, Line: pos.Line, FileWide: fileWide}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					a.Malformed = "missing analyzer and reason"
				} else {
					a.Analyzer = fields[0]
					if len(fields) < 2 {
						a.Malformed = "missing reason (a justification is mandatory)"
					} else {
						a.Reason = strings.Join(fields[1:], " ")
					}
				}
				out = append(out, a)
			}
		}
	}
	return out
}

// applyAllows drops diagnostics matched by a well-formed allow and
// returns the survivors plus the allows that matched nothing (stale) or
// failed to parse (malformed) — both of which the driver reports.
func applyAllows(fset *token.FileSet, diags []Diagnostic, allows []Allow) ([]Diagnostic, []Allow) {
	used := make([]bool, len(allows))
	var kept []Diagnostic
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		suppressed := false
		for i, a := range allows {
			if a.Malformed != "" || a.File != pos.Filename {
				continue
			}
			if a.Analyzer != "*" && a.Analyzer != d.Analyzer {
				continue
			}
			if a.FileWide || a.Line == pos.Line || a.Line+1 == pos.Line {
				used[i] = true
				suppressed = true
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	var bad []Allow
	for i, a := range allows {
		if a.Malformed != "" || !used[i] {
			bad = append(bad, a)
		}
	}
	return kept, bad
}
