package lint

// The analyzer framework: a deliberately minimal mirror of the
// golang.org/x/tools/go/analysis surface (Analyzer, Pass, Diagnostic)
// over the standard library's go/ast + go/types. Run functions written
// here port to the upstream framework by swapping the import; nothing in
// the analyzers depends on more than what both APIs share.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:gemallow suppressions.
	Name string
	// Doc is a one-paragraph description; the first line is the summary.
	Doc string
	// Run applies the check to one package and reports findings via
	// pass.Report.
	Run func(*Pass) error
}

// Pass carries one analyzed package to an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// PkgPath is the package's import path (fixture packages use their
	// path under testdata/src).
	PkgPath string
	// Markers holds the package's //gem: markers ("deterministic",
	// "pooled", "jsonerrors").
	Markers map[string]bool
	// Report records one finding.
	Report func(Diagnostic)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos token.Pos
	// Analyzer is the reporting analyzer's name.
	Analyzer string
	// Message states the violation; it ends with the violated
	// contract's tag, e.g. "[DET-ORDER]" (see package doc).
	Message string
}

// Analyzers is the gemlint suite in reporting order.
var Analyzers = []*Analyzer{
	DetMapRange,
	DetNonDet,
	PoolGo,
	DecodeBound,
	ErrJSON,
}

// RunPackage applies every analyzer in suite to pkg, resolves
// //lint:gemallow suppressions, and returns the surviving diagnostics
// (sorted by position) plus any suppressions that matched nothing.
// A stale suppression is the caller's error to report: an allow that
// silences no finding is rot and must not linger.
func RunPackage(pkg *Package, suite []*Analyzer) (diags []Diagnostic, stale []Allow, err error) {
	markers := packageMarkers(pkg.Files)
	allows := collectAllows(pkg.Fset, pkg.Files)
	for _, a := range suite {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			PkgPath:   pkg.Path,
			Markers:   markers,
			Report: func(d Diagnostic) {
				d.Analyzer = a.Name
				diags = append(diags, d)
			},
		}
		if err := a.Run(pass); err != nil {
			return nil, nil, fmt.Errorf("%s: %s: %w", pkg.Path, a.Name, err)
		}
	}
	diags, stale = applyAllows(pkg.Fset, diags, allows)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	// Nested scopes can report one site twice (a range inside a range, a
	// closure inside a pool-receiving function); keep the first.
	dedup := diags[:0]
	for i, d := range diags {
		if i == 0 || d != diags[i-1] {
			dedup = append(dedup, d)
		}
	}
	return dedup, stale, nil
}

// packageMarkers scans every file's package doc group for //gem:<name>
// marker lines.
func packageMarkers(files []*ast.File) map[string]bool {
	m := map[string]bool{}
	for _, f := range files {
		if f.Doc == nil {
			continue
		}
		for _, c := range f.Doc.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if name, ok := strings.CutPrefix(text, "gem:"); ok {
				m[strings.TrimSpace(name)] = true
			}
		}
	}
	return m
}

// funcHasMarker reports whether a function's doc comment carries
// //gem:<name> (e.g. //gem:errwriter on the blessed error writer).
func funcHasMarker(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if after, ok := strings.CutPrefix(text, "gem:"); ok &&
			strings.TrimSpace(after) == name {
			return true
		}
	}
	return false
}
