package lint

// detmaprange: in //gem:deterministic packages, no map iteration order
// may reach anything that escapes the loop. Go randomizes map range
// order per run, so an append, accumulation, channel send, plain
// assignment or value return driven by a map range produces
// run-dependent output — exactly what the byte-identity contracts
// forbid. The blessed patterns pass: writes to keyed slots (map or slice
// indexing is order-independent), integer counters (integer += and ++
// commute exactly; float accumulation does not), and the collect-then-
// sort idiom (append into a slice that is sorted before use later in the
// same function).

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMapRange flags map iteration whose order can escape the loop in
// determinism-contracted packages.
var DetMapRange = &Analyzer{
	Name: "detmaprange",
	Doc: "flag range-over-map bodies that let iteration order escape " +
		"(append without a later sort, non-integer accumulation, sends, " +
		"assignments, returns) in //gem:deterministic packages",
	Run: runDetMapRange,
}

func runDetMapRange(pass *Pass) error {
	if !pass.Markers["deterministic"] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if t := pass.TypesInfo.TypeOf(rs.X); t != nil {
					if _, isMap := t.Underlying().(*types.Map); isMap {
						checkMapRange(pass, fd, rs)
					}
				}
				return true
			})
		}
	}
	return nil
}

func checkMapRange(pass *Pass, fn *ast.FuncDecl, rs *ast.RangeStmt) {
	info := pass.TypesInfo
	body := rs.Body

	// The loop's own key/value variables: writes to them are loop-local.
	loopVars := map[types.Object]bool{}
	for _, e := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	// outer reports whether obj is declared outside the loop body (so a
	// write to it escapes the iteration).
	outer := func(obj types.Object) bool {
		if obj == nil || loopVars[obj] {
			return false
		}
		return obj.Pos() < body.Pos() || obj.Pos() > body.End()
	}

	report := func(pos token.Pos, msg string) {
		pass.Report(Diagnostic{Pos: pos, Message: msg + " [DET-ORDER]"})
	}

	// appendTargets collects outer slices that the body only appends to;
	// they pass if sorted later in the function, before any other use.
	type appendSite struct {
		obj types.Object
		pos token.Pos
	}
	var appends []appendSite

	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				// x = append(x, ...) into an outer slice: candidate for
				// the collect-then-sort idiom, judged after the walk.
				if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && i < len(s.Rhs) {
					if call, ok := ast.Unparen(s.Rhs[i]).(*ast.CallExpr); ok {
						if fid, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && fid.Name == "append" {
							if _, isBuiltin := info.Uses[fid].(*types.Builtin); isBuiltin && len(call.Args) > 0 {
								if base, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok &&
									info.ObjectOf(base) == info.ObjectOf(id) && outer(info.ObjectOf(id)) {
									appends = append(appends, appendSite{info.ObjectOf(id), s.Pos()})
									continue
								}
							}
						}
					}
				}
				checkWrite(pass, info, outer, report, lhs, s.Tok)
			}
		case *ast.IncDecStmt:
			if id := rootIdent(s.X); id != nil && outer(info.ObjectOf(id)) {
				if t := info.TypeOf(s.X); t != nil && !isIntegerType(t) {
					report(s.Pos(), "non-integer ++/-- on "+id.Name+
						" inside a map range accumulates in iteration order")
				}
			}
		case *ast.SendStmt:
			report(s.Pos(), "channel send inside a map range publishes values in iteration order")
		case *ast.ReturnStmt:
			for _, res := range s.Results {
				for lv := range loopVars {
					if mentionsObject(info, res, lv) {
						report(s.Pos(), "return of a map-iteration-dependent value: "+
							"which element returns first depends on range order")
						return true
					}
				}
			}
		}
		return true
	})

	// Judge the collect-then-sort candidates: an append passes only when
	// a sort call mentioning the slice appears after the loop.
	for _, a := range appends {
		if !sortedAfter(info, fn.Body, rs.End(), a.obj) {
			report(a.pos, "append to "+a.obj.Name()+
				" inside a map range without sorting it afterwards; "+
				"sort the keys first or sort "+a.obj.Name()+" before use")
		}
	}
}

// checkWrite classifies one assignment target inside the loop body.
func checkWrite(pass *Pass, info *types.Info, outer func(types.Object) bool,
	report func(token.Pos, string), lhs ast.Expr, tok token.Token) {
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}
	// Keyed writes (m[k] = v, out[i] = v) address independent slots, so
	// iteration order cannot change the result; deletes likewise.
	if _, ok := lhs.(*ast.IndexExpr); ok {
		return
	}
	id := rootIdent(lhs)
	if id == nil || !outer(info.ObjectOf(id)) {
		return
	}
	switch tok {
	case token.DEFINE:
		return
	case token.ASSIGN:
		report(lhs.Pos(), "assignment to "+id.Name+
			" inside a map range: the surviving value depends on iteration order")
	default:
		// Compound assignment: integer accumulation commutes exactly;
		// floats (and strings) do not.
		if t := info.TypeOf(lhs); t != nil && !isIntegerType(t) {
			report(lhs.Pos(), "non-integer accumulation into "+id.Name+
				" inside a map range depends on iteration order "+
				"(float reductions must run in fixed order)")
		}
	}
}

// sortedAfter reports whether a sort/slices sorting call whose first
// argument mentions obj appears after pos within body.
func sortedAfter(info *types.Info, body *ast.BlockStmt, pos token.Pos, obj types.Object) bool {
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || sorted {
			return !sorted
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := ast.Unparen(sel.X).(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[pkgID].(*types.PkgName); !ok ||
			(pn.Imported().Path() != "sort" && pn.Imported().Path() != "slices") {
			return true
		}
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints",
			"Float64s", "SortFunc", "SortStableFunc":
		default:
			return true
		}
		if len(call.Args) > 0 && mentionsObject(info, call.Args[0], obj) {
			sorted = true
		}
		return !sorted
	})
	return sorted
}
