package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// The five analyzers, each against a fixture with firing and non-firing
// cases (the `// want` comments in testdata/src/...).

func TestDetMapRangeFixture(t *testing.T) {
	RunFixture(t, "testdata", DetMapRange, "detmaprange")
}

func TestDetMapRangeUnmarkedPackageIsSilent(t *testing.T) {
	RunFixture(t, "testdata", DetMapRange, "detmaprange_unmarked")
}

func TestDetNonDetFixture(t *testing.T) {
	RunFixture(t, "testdata", DetNonDet, "detnondet")
}

func TestDetNonDetUnmarkedPackageIsSilent(t *testing.T) {
	// The same unmarked fixture holds a naked time.Now: no marker, no
	// diagnostics.
	RunFixture(t, "testdata", DetNonDet, "detmaprange_unmarked")
}

func TestPoolGoFixture(t *testing.T) {
	RunFixture(t, "testdata", PoolGo, "poolgo")
}

func TestDecodeBoundFixture(t *testing.T) {
	RunFixture(t, "testdata", DecodeBound, "decodebound")
}

func TestErrJSONFixture(t *testing.T) {
	RunFixture(t, "testdata", ErrJSON, "errjson")
}

// Marker and suppression parsing, on synthetic sources.

func parse(t *testing.T, src string) (*token.FileSet, []Allow, map[string]bool) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	files := []*ast.File{f}
	return fset, collectAllows(fset, files), packageMarkers(files)
}

func TestPackageMarkers(t *testing.T) {
	src := `// Package x does things.
//
//gem:deterministic
//gem:pooled
package x
`
	_, _, markers := parse(t, src)
	if !markers["deterministic"] || !markers["pooled"] {
		t.Fatalf("markers = %v, want deterministic and pooled", markers)
	}
	if markers["jsonerrors"] {
		t.Fatalf("unexpected jsonerrors marker")
	}
}

func TestAllowParsing(t *testing.T) {
	src := `package x

func f() {
	//lint:gemallow detnondet uptime counter only
	g()
	//lint:gemallow-file poolgo generated shim
	//lint:gemallow errjson
	h()
}

func g() {}
func h() {}
`
	_, allows, _ := parse(t, src)
	if len(allows) != 3 {
		t.Fatalf("got %d allows, want 3", len(allows))
	}
	if allows[0].Analyzer != "detnondet" || allows[0].Reason != "uptime counter only" || allows[0].FileWide {
		t.Fatalf("allow[0] = %+v", allows[0])
	}
	if !allows[1].FileWide || allows[1].Analyzer != "poolgo" {
		t.Fatalf("allow[1] = %+v", allows[1])
	}
	if allows[2].Malformed == "" || !strings.Contains(allows[2].Malformed, "reason") {
		t.Fatalf("allow[2] should be malformed for missing reason, got %+v", allows[2])
	}
}

func TestApplyAllows(t *testing.T) {
	src := `package x

func f() {
	//lint:gemallow detnondet justified reason
	g()
}

func g() {}
`
	fset, allows, _ := parse(t, src)
	// One diagnostic on the g() line (5), one on an unrelated line (7).
	mk := func(line int) Diagnostic {
		// Reconstruct a Pos on the wanted line via the fset's only file.
		var pos token.Pos
		fset.Iterate(func(f *token.File) bool {
			pos = f.LineStart(line)
			return false
		})
		return Diagnostic{Pos: pos, Analyzer: "detnondet", Message: "m"}
	}
	kept, stale := applyAllows(fset, []Diagnostic{mk(5), mk(7)}, allows)
	if len(kept) != 1 {
		t.Fatalf("kept %d diagnostics, want 1 (only the unsuppressed line)", len(kept))
	}
	if len(stale) != 0 {
		t.Fatalf("stale = %+v, want none (the allow matched line 5)", stale)
	}
	// With no diagnostic to silence, the same allow is stale.
	_, stale = applyAllows(fset, nil, allows)
	if len(stale) != 1 {
		t.Fatalf("stale = %+v, want the unused allow", stale)
	}
}
