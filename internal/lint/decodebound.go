package lint

// decodebound: any length or count decoded from input bytes must be
// compared against something before it sizes an allocation. This is the
// exact class of the two fuzz-found crashers fixed in PR 6: a corrupt
// index header or journal frame claiming 2^32 elements drove make into
// a multi-gigabyte allocation (or an OOM kill) before a single payload
// byte was read. The analyzer needs no marker — it self-scopes to
// functions that actually decode untrusted bytes.
//
// Taint sources (per function, intraprocedural):
//   - v in binary.Read(r, order, &v), and &v arguments to any local
//     read* helper (the repo's readLE);
//   - results of binary.LittleEndian/BigEndian/NativeEndian.UintNN and
//     binary.ReadUvarint/ReadVarint;
//   - values computed from tainted values (conversions, arithmetic).
//
// A taint clears once the value is mentioned in a comparison — an if or
// switch-case guard such as `if n > maxCount { return err }` or
// `if dim == 0 || dim > maxDim || len(rest) != 8*int(dim)`. Results of
// other function calls count as clean: a helper like ann's readCount
// owns its own bound check and is analyzed on its own.
//
// Flagged: make whose length or capacity mentions a still-tainted value
// (or inlines a decode call directly).

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DecodeBound flags allocations sized by unvalidated decoded lengths.
var DecodeBound = &Analyzer{
	Name: "decodebound",
	Doc: "flag make sized by a length decoded from input bytes with no " +
		"intervening bound check (the PR 6 fuzz-crasher class)",
	Run: runDecodeBound,
}

func runDecodeBound(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				st := &taintState{pass: pass, tainted: map[types.Object]bool{}}
				st.walkStmts(fd.Body.List)
			}
		}
	}
	return nil
}

type taintState struct {
	pass    *Pass
	tainted map[types.Object]bool
}

func (st *taintState) info() *types.Info { return st.pass.TypesInfo }

// walkStmts processes statements in order, tracking taint.
func (st *taintState) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		st.walkStmt(s)
	}
}

func (st *taintState) walkStmt(s ast.Stmt) {
	switch e := s.(type) {
	case *ast.AssignStmt:
		// Flag makes with the pre-assignment state, then update taint.
		st.checkMakes(e)
		st.taintReaderArgs(e)
		st.propagate(e)
	case *ast.IfStmt:
		if e.Init != nil {
			st.walkStmt(e.Init)
		}
		st.checkMakes(e.Cond)
		st.taintReaderArgs(e.Cond)
		st.sanitizeFromCond(e.Cond)
		st.walkStmt(e.Body)
		if e.Else != nil {
			st.walkStmt(e.Else)
		}
	case *ast.BlockStmt:
		st.walkStmts(e.List)
	case *ast.ForStmt:
		if e.Init != nil {
			st.walkStmt(e.Init)
		}
		if e.Cond != nil {
			st.sanitizeFromCond(e.Cond)
		}
		st.walkStmt(e.Body)
		if e.Post != nil {
			st.walkStmt(e.Post)
		}
	case *ast.RangeStmt:
		st.checkMakes(e.X)
		st.walkStmt(e.Body)
	case *ast.SwitchStmt:
		if e.Init != nil {
			st.walkStmt(e.Init)
		}
		for _, c := range e.Body.List {
			cc := c.(*ast.CaseClause)
			// A `case n > max:` or `switch n { case 0: }` guard counts as
			// the bound check for the values it compares.
			for _, ce := range cc.List {
				st.sanitizeFromCond(ce)
			}
			st.walkStmts(cc.Body)
		}
	case *ast.TypeSwitchStmt:
		st.walkStmt(e.Body)
	case *ast.SelectStmt:
		st.walkStmt(e.Body)
	case *ast.LabeledStmt:
		st.walkStmt(e.Stmt)
	case *ast.DeclStmt:
		st.checkMakes(e)
	case *ast.ExprStmt:
		st.checkMakes(e)
		st.taintReaderArgs(e)
	case *ast.ReturnStmt, *ast.DeferStmt, *ast.GoStmt, *ast.SendStmt, *ast.IncDecStmt:
		st.checkMakes(s)
		st.taintReaderArgs(s)
	}
}

// taintReaderArgs taints x for every &x passed to a byte-reading call
// (binary.Read or a local read* helper) anywhere in n.
func (st *taintState) taintReaderArgs(n ast.Node) {
	ast.Inspect(n, func(cn ast.Node) bool {
		call, ok := cn.(*ast.CallExpr)
		if !ok || !isByteReaderCall(st.info(), call) {
			return true
		}
		for _, arg := range call.Args {
			if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND {
				if id, ok := ast.Unparen(ue.X).(*ast.Ident); ok {
					if obj := st.info().ObjectOf(id); obj != nil {
						st.tainted[obj] = true
					}
				}
			}
		}
		return true
	})
}

// isByteReaderCall reports whether call decodes bytes into its pointer
// arguments: encoding/binary.Read, or a helper whose name starts with
// "read" (the repo's readLE convention).
func isByteReaderCall(info *types.Info, call *ast.CallExpr) bool {
	if isPkgFunc(info, call, "encoding/binary", "Read") {
		return true
	}
	obj := calleeObject(info, call)
	return obj != nil && strings.HasPrefix(obj.Name(), "read")
}

// decodeResultCall reports whether call's result is a value decoded
// straight from bytes (endian UintNN, ReadUvarint/ReadVarint).
func decodeResultCall(info *types.Info, call *ast.CallExpr) bool {
	if isPkgFunc(info, call, "encoding/binary", "ReadUvarint", "ReadVarint") {
		return true
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !strings.HasPrefix(sel.Sel.Name, "Uint") {
		return false
	}
	// Receiver must be one of encoding/binary's byte-order values
	// (binary.LittleEndian.Uint32(...)).
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[inner.Sel]
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "encoding/binary"
}

// propagate updates taint for one assignment: decoded-result calls taint
// their targets, other calls clean them, and plain expressions carry the
// taint of whatever they mention.
func (st *taintState) propagate(a *ast.AssignStmt) {
	set := func(lhs ast.Expr, tainted bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := st.info().ObjectOf(id)
		if obj == nil {
			return
		}
		if tainted {
			st.tainted[obj] = true
		} else {
			delete(st.tainted, obj)
		}
	}
	if len(a.Rhs) == 1 && len(a.Lhs) > 1 {
		// Tuple assignment from one call: n, err := binary.ReadUvarint(r)
		// taints the first target; any other call cleans all targets.
		if call, ok := ast.Unparen(a.Rhs[0]).(*ast.CallExpr); ok {
			dec := decodeResultCall(st.info(), call)
			for i, lhs := range a.Lhs {
				set(lhs, dec && i == 0)
			}
			return
		}
	}
	for i, lhs := range a.Lhs {
		if i >= len(a.Rhs) {
			break
		}
		rhs := ast.Unparen(a.Rhs[i])
		if call, ok := rhs.(*ast.CallExpr); ok {
			// A conversion like int(n) is syntactically a call; treat it
			// as expression taint, real calls as laundering boundaries.
			if tv, ok := st.info().Types[call.Fun]; ok && tv.IsType() {
				set(lhs, st.mentionsTainted(call))
			} else {
				set(lhs, decodeResultCall(st.info(), call))
			}
			continue
		}
		set(lhs, st.mentionsTainted(rhs))
	}
}

func (st *taintState) mentionsTainted(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := st.info().ObjectOf(id); obj != nil && st.tainted[obj] {
				found = true
			}
		}
		return !found
	})
	return found
}

// sanitizeFromCond clears the taint of every value mentioned in a
// comparison inside cond: the guard IS the bound check.
func (st *taintState) sanitizeFromCond(cond ast.Expr) {
	ast.Inspect(cond, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch be.Op {
		case token.GTR, token.GEQ, token.LSS, token.LEQ, token.EQL, token.NEQ:
			for _, side := range []ast.Expr{be.X, be.Y} {
				ast.Inspect(side, func(sn ast.Node) bool {
					if id, ok := sn.(*ast.Ident); ok {
						if obj := st.info().ObjectOf(id); obj != nil {
							delete(st.tainted, obj)
						}
					}
					return true
				})
			}
		}
		return true
	})
}

// checkMakes flags make calls in n whose size arguments mention a
// tainted value or inline a decode call.
func (st *taintState) checkMakes(n ast.Node) {
	ast.Inspect(n, func(cn ast.Node) bool {
		call, ok := cn.(*ast.CallExpr)
		if !ok || !isMakeCall(st.info(), call) || len(call.Args) < 2 {
			return true
		}
		for _, sizeArg := range call.Args[1:] {
			bad := st.mentionsTainted(sizeArg)
			if !bad {
				ast.Inspect(sizeArg, func(an ast.Node) bool {
					if c, ok := an.(*ast.CallExpr); ok && decodeResultCall(st.info(), c) {
						bad = true
					}
					return !bad
				})
			}
			if bad {
				st.pass.Report(Diagnostic{Pos: call.Pos(),
					Message: "make sized by a decoded length with no bound check: a " +
						"corrupt input claiming a huge count drives the allocation " +
						"(the PR 6 fuzz-crasher class); compare against a cap first " +
						"[DECODE-BOUND]"})
				return true
			}
		}
		return true
	})
}
