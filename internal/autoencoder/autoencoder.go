// Package autoencoder builds symmetric bottleneck autoencoders on the nn
// substrate. Two consumers in the reproduction: the Gem D+S+C (AE)
// composition mode of Table 3, which compresses the concatenated
// distributional+statistical+contextual vector into a latent code, and the
// deep-clustering models of Table 4 (SDCN, TableDC), which pretrain an AE
// and refine its latent space.
package autoencoder

import (
	"errors"
	"fmt"

	"github.com/gem-embeddings/gem/internal/matrix"
	"github.com/gem-embeddings/gem/internal/nn"
)

// ErrConfig is returned for invalid autoencoder configuration.
var ErrConfig = errors.New("autoencoder: invalid configuration")

// Config describes a symmetric autoencoder.
type Config struct {
	// InputDim is the width of the input vectors (required).
	InputDim int
	// Hidden lists encoder hidden widths, mirrored in the decoder.
	// May be empty for a single-bottleneck AE.
	Hidden []int
	// LatentDim is the bottleneck width (required).
	LatentDim int
	// Activation for hidden layers. Default nn.ReLU.
	Activation nn.Activation
	// Seed makes initialization deterministic.
	Seed int64
}

// AE is a trained or trainable autoencoder.
type AE struct {
	net          *nn.Network
	encodeLayers int // number of dense layers from input to bottleneck
	latentDim    int
	inputDim     int
}

// New constructs an untrained autoencoder with mirrored encoder/decoder.
func New(cfg Config) (*AE, error) {
	if cfg.InputDim < 1 {
		return nil, fmt.Errorf("%w: input dim %d", ErrConfig, cfg.InputDim)
	}
	if cfg.LatentDim < 1 {
		return nil, fmt.Errorf("%w: latent dim %d", ErrConfig, cfg.LatentDim)
	}
	for i, h := range cfg.Hidden {
		if h < 1 {
			return nil, fmt.Errorf("%w: hidden[%d] = %d", ErrConfig, i, h)
		}
	}
	sizes := []int{cfg.InputDim}
	sizes = append(sizes, cfg.Hidden...)
	sizes = append(sizes, cfg.LatentDim)
	for i := len(cfg.Hidden) - 1; i >= 0; i-- {
		sizes = append(sizes, cfg.Hidden[i])
	}
	sizes = append(sizes, cfg.InputDim)
	act := cfg.Activation
	if act == nn.Identity {
		act = nn.ReLU
	}
	net, err := nn.New(nn.Config{
		Sizes:  sizes,
		Hidden: act,
		Output: nn.Identity,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("autoencoder: %w", err)
	}
	return &AE{
		net:          net,
		encodeLayers: len(cfg.Hidden) + 1,
		latentDim:    cfg.LatentDim,
		inputDim:     cfg.InputDim,
	}, nil
}

// LatentDim returns the bottleneck width.
func (a *AE) LatentDim() int { return a.latentDim }

// InputDim returns the expected input width.
func (a *AE) InputDim() int { return a.inputDim }

// TrainConfig controls reconstruction training.
type TrainConfig struct {
	// Epochs of reconstruction training. Default 50.
	Epochs int
	// BatchSize for mini-batching. Default 32.
	BatchSize int
	// LearningRate for Adam. Default 1e-3.
	LearningRate float64
	// Seed shuffles batches deterministically.
	Seed int64
}

// Train fits the autoencoder to reconstruct rows and returns the final
// reconstruction MSE.
func (a *AE) Train(rows [][]float64, cfg TrainConfig) (float64, error) {
	x, err := matrix.FromRows(rows)
	if err != nil {
		return 0, fmt.Errorf("autoencoder: %w", err)
	}
	if x.Cols() != a.inputDim {
		return 0, fmt.Errorf("%w: rows have dim %d, AE expects %d", ErrConfig, x.Cols(), a.inputDim)
	}
	loss, err := a.net.Train(x, x, nn.TrainConfig{
		Epochs:       cfg.Epochs,
		BatchSize:    cfg.BatchSize,
		LearningRate: cfg.LearningRate,
		Loss:         nn.MSE,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return 0, fmt.Errorf("autoencoder: %w", err)
	}
	return loss, nil
}

// Encode maps rows to their latent codes.
func (a *AE) Encode(rows [][]float64) ([][]float64, error) {
	x, err := matrix.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: %w", err)
	}
	if x.Cols() != a.inputDim {
		return nil, fmt.Errorf("%w: rows have dim %d, AE expects %d", ErrConfig, x.Cols(), a.inputDim)
	}
	h, err := a.net.HiddenActivations(x, a.encodeLayers)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: %w", err)
	}
	return h.ToRows(), nil
}

// Reconstruct maps rows through the full encoder/decoder.
func (a *AE) Reconstruct(rows [][]float64) ([][]float64, error) {
	x, err := matrix.FromRows(rows)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: %w", err)
	}
	out, err := a.net.Forward(x)
	if err != nil {
		return nil, fmt.Errorf("autoencoder: %w", err)
	}
	return out.ToRows(), nil
}

// ReconstructionError returns the mean squared reconstruction error on rows.
func (a *AE) ReconstructionError(rows [][]float64) (float64, error) {
	rec, err := a.Reconstruct(rows)
	if err != nil {
		return 0, err
	}
	var sum float64
	var count int
	for i, r := range rows {
		for j := range r {
			d := rec[i][j] - r[j]
			sum += d * d
			count++
		}
	}
	return sum / float64(count), nil
}
