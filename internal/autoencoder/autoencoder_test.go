package autoencoder

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/gem-embeddings/gem/internal/nn"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{InputDim: 0, LatentDim: 2}); !errors.Is(err, ErrConfig) {
		t.Errorf("input 0: want ErrConfig, got %v", err)
	}
	if _, err := New(Config{InputDim: 4, LatentDim: 0}); !errors.Is(err, ErrConfig) {
		t.Errorf("latent 0: want ErrConfig, got %v", err)
	}
	if _, err := New(Config{InputDim: 4, LatentDim: 2, Hidden: []int{0}}); !errors.Is(err, ErrConfig) {
		t.Errorf("hidden 0: want ErrConfig, got %v", err)
	}
	a, err := New(Config{InputDim: 10, Hidden: []int{8}, LatentDim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.LatentDim() != 3 || a.InputDim() != 10 {
		t.Errorf("dims wrong: latent %d, input %d", a.LatentDim(), a.InputDim())
	}
}

// lowRankData generates points lying near a 2-D plane inside R^6, which an
// AE with a 2-wide bottleneck can compress well.
func lowRankData(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	basis := [2][6]float64{
		{1, 0.5, -0.2, 0.8, 0.1, -0.5},
		{-0.3, 1, 0.7, -0.1, 0.9, 0.2},
	}
	rows := make([][]float64, n)
	for i := range rows {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		row := make([]float64, 6)
		for j := 0; j < 6; j++ {
			row[j] = a*basis[0][j] + b*basis[1][j]
		}
		rows[i] = row
	}
	return rows
}

func TestTrainReducesReconstructionError(t *testing.T) {
	rows := lowRankData(200, 2)
	a, err := New(Config{InputDim: 6, Hidden: []int{8}, LatentDim: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	before, err := a.ReconstructionError(rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(rows, TrainConfig{Epochs: 200, BatchSize: 32, LearningRate: 0.005, Seed: 4}); err != nil {
		t.Fatal(err)
	}
	after, err := a.ReconstructionError(rows)
	if err != nil {
		t.Fatal(err)
	}
	if after >= before {
		t.Errorf("training did not reduce error: %v -> %v", before, after)
	}
	if after > before*0.25 {
		t.Errorf("low-rank data should compress well: %v -> %v", before, after)
	}
}

func TestEncodeShape(t *testing.T) {
	rows := lowRankData(50, 5)
	a, err := New(Config{InputDim: 6, Hidden: []int{8, 4}, LatentDim: 2, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	z, err := a.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(z) != 50 || len(z[0]) != 2 {
		t.Fatalf("Encode shape %dx%d, want 50x2", len(z), len(z[0]))
	}
}

func TestEncodeDeterministic(t *testing.T) {
	rows := lowRankData(20, 7)
	a, _ := New(Config{InputDim: 6, LatentDim: 3, Seed: 8})
	z1, err := a.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	z2, _ := a.Encode(rows)
	for i := range z1 {
		for j := range z1[i] {
			if z1[i][j] != z2[i][j] {
				t.Fatal("Encode not deterministic")
			}
		}
	}
}

func TestDimensionMismatchErrors(t *testing.T) {
	a, _ := New(Config{InputDim: 6, LatentDim: 2, Seed: 9})
	bad := [][]float64{{1, 2, 3}}
	if _, err := a.Encode(bad); !errors.Is(err, ErrConfig) {
		t.Errorf("Encode dim mismatch: want ErrConfig, got %v", err)
	}
	if _, err := a.Train(bad, TrainConfig{Epochs: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("Train dim mismatch: want ErrConfig, got %v", err)
	}
}

func TestReconstructShape(t *testing.T) {
	rows := lowRankData(10, 10)
	a, _ := New(Config{InputDim: 6, LatentDim: 2, Seed: 11})
	rec, err := a.Reconstruct(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 10 || len(rec[0]) != 6 {
		t.Fatalf("Reconstruct shape %dx%d, want 10x6", len(rec), len(rec[0]))
	}
	for _, r := range rec {
		for _, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("Reconstruct produced non-finite values")
			}
		}
	}
}

func TestTanhActivationOption(t *testing.T) {
	rows := lowRankData(80, 12)
	a, err := New(Config{InputDim: 6, Hidden: []int{6}, LatentDim: 2, Activation: nn.Tanh, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Train(rows, TrainConfig{Epochs: 50, Seed: 14}); err != nil {
		t.Fatal(err)
	}
	z, err := a.Encode(rows)
	if err != nil {
		t.Fatal(err)
	}
	if len(z[0]) != 2 {
		t.Errorf("latent width %d, want 2", len(z[0]))
	}
}
