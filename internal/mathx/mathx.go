// Package mathx provides numerical special functions and numerically stable
// primitives that the rest of the library builds on: log-sum-exp, Kahan
// summation, regularized incomplete gamma and beta functions, and stable
// one-pass moment accumulation.
//
// Everything here is implemented from scratch on top of the Go standard
// library math package; accuracy targets are ~1e-10 relative error in the
// well-conditioned regions, which is far beyond what the statistical
// machinery above it requires.
package mathx

import (
	"errors"
	"math"
)

// ErrDomain is returned (wrapped) when an argument lies outside a function's
// mathematical domain.
var ErrDomain = errors.New("mathx: argument outside domain")

// LogSumExp returns log(sum(exp(xs))) computed without overflow.
// It returns -Inf for an empty slice, matching the sum of zero terms.
func LogSumExp(xs []float64) float64 {
	if len(xs) == 0 {
		return math.Inf(-1)
	}
	maxV := math.Inf(-1)
	for _, x := range xs {
		if x > maxV {
			maxV = x
		}
	}
	if math.IsInf(maxV, -1) {
		return maxV
	}
	var sum float64
	for _, x := range xs {
		sum += math.Exp(x - maxV)
	}
	return maxV + math.Log(sum)
}

// LogSumExp2 is a two-argument log-sum-exp: log(exp(a) + exp(b)).
func LogSumExp2(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if math.IsInf(a, -1) {
		return a
	}
	return a + math.Log1p(math.Exp(b-a))
}

// KahanSum sums xs using Kahan–Babuška compensated summation, which keeps the
// error independent of the number of terms.
func KahanSum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

const (
	igamEps      = 1e-14
	igamMaxIters = 500
)

// GammaIncP returns the regularized lower incomplete gamma function
// P(a, x) = gamma(a, x) / Gamma(a), for a > 0, x >= 0.
func GammaIncP(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), errDomainf("GammaIncP(a=%v, x=%v)", a, x)
	case x < 0:
		return math.NaN(), errDomainf("GammaIncP(a=%v, x=%v)", a, x)
	case x == 0:
		return 0, nil
	case math.IsInf(x, 1):
		return 1, nil
	}
	if x < a+1 {
		p, err := gammaIncSeries(a, x)
		return p, err
	}
	q, err := gammaIncCF(a, x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - q, nil
}

// GammaIncQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaIncQ(a, x float64) (float64, error) {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN(), errDomainf("GammaIncQ(a=%v, x=%v)", a, x)
	case x < 0:
		return math.NaN(), errDomainf("GammaIncQ(a=%v, x=%v)", a, x)
	case x == 0:
		return 1, nil
	case math.IsInf(x, 1):
		return 0, nil
	}
	if x < a+1 {
		p, err := gammaIncSeries(a, x)
		if err != nil {
			return math.NaN(), err
		}
		return 1 - p, nil
	}
	return gammaIncCF(a, x)
}

// gammaIncSeries evaluates P(a,x) by its power series, valid for x < a+1.
func gammaIncSeries(a, x float64) (float64, error) {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < igamMaxIters; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*igamEps {
			return sum * math.Exp(-x+a*math.Log(x)-lg), nil
		}
	}
	return math.NaN(), errDomainf("GammaIncP series did not converge (a=%v, x=%v)", a, x)
}

// gammaIncCF evaluates Q(a,x) by a modified Lentz continued fraction, valid
// for x >= a+1.
func gammaIncCF(a, x float64) (float64, error) {
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= igamMaxIters; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEps {
			return math.Exp(-x+a*math.Log(x)-lg) * h, nil
		}
	}
	return math.NaN(), errDomainf("GammaIncQ continued fraction did not converge (a=%v, x=%v)", a, x)
}

// BetaInc returns the regularized incomplete beta function I_x(a, b) for
// a, b > 0 and x in [0, 1].
func BetaInc(a, b, x float64) (float64, error) {
	switch {
	case a <= 0 || b <= 0 || math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN(), errDomainf("BetaInc(a=%v, b=%v, x=%v)", a, b, x)
	case x < 0 || x > 1:
		return math.NaN(), errDomainf("BetaInc(a=%v, b=%v, x=%v)", a, b, x)
	case x == 0:
		return 0, nil
	case x == 1:
		return 1, nil
	}
	lbeta := lbetaFn(a, b)
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - lbeta)
	// Use the continued fraction in the region where it converges fastest and
	// the symmetry relation I_x(a,b) = 1 - I_{1-x}(b,a) elsewhere.
	if x < (a+1)/(a+b+2) {
		cf, err := betaCF(a, b, x)
		if err != nil {
			return math.NaN(), err
		}
		return front * cf / a, nil
	}
	cf, err := betaCF(b, a, 1-x)
	if err != nil {
		return math.NaN(), err
	}
	return 1 - front*cf/b, nil
}

// lbetaFn returns log(Beta(a,b)).
func lbetaFn(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// LogBeta returns the natural log of the Beta function B(a,b) for a,b > 0.
func LogBeta(a, b float64) (float64, error) {
	if a <= 0 || b <= 0 {
		return math.NaN(), errDomainf("LogBeta(a=%v, b=%v)", a, b)
	}
	return lbetaFn(a, b), nil
}

// betaCF evaluates the continued fraction for the incomplete beta function by
// the modified Lentz method.
func betaCF(a, b, x float64) (float64, error) {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= igamMaxIters; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < igamEps {
			return h, nil
		}
	}
	return math.NaN(), errDomainf("BetaInc continued fraction did not converge (a=%v, b=%v, x=%v)", a, b, x)
}

// NormalCDF returns the standard normal CDF at z.
func NormalCDF(z float64) float64 {
	return 0.5 * math.Erfc(-z/math.Sqrt2)
}

// NormalQuantile returns the standard normal quantile (inverse CDF) at
// p in (0, 1), using the Acklam rational approximation refined by one
// Halley step; absolute error is below 1e-12 across the open interval.
func NormalQuantile(p float64) (float64, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1), nil
		}
		if p == 1 {
			return math.Inf(1), nil
		}
		return math.NaN(), errDomainf("NormalQuantile(p=%v)", p)
	}
	x := acklam(p)
	// One Halley refinement step using the exact CDF.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x, nil
}

// acklam is Peter Acklam's rational approximation to the normal quantile.
func acklam(p float64) float64 {
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const plow = 0.02425
	const phigh = 1 - plow
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// AlmostEqual reports whether a and b agree to within tol either absolutely
// or relative to the larger magnitude.
func AlmostEqual(a, b, tol float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	larger := math.Max(math.Abs(a), math.Abs(b))
	return diff <= tol*larger
}
