package mathx

import "fmt"

// errDomainf wraps ErrDomain with a formatted description of the offending
// call so callers can both match on errors.Is(err, ErrDomain) and read the
// argument values from the message.
func errDomainf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrDomain, fmt.Sprintf(format, args...))
}
